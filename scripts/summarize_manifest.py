#!/usr/bin/env python3
"""Summarize a sweep run manifest (quicbench.sweep.manifest/v6) as a
per-pair table: transport (simulation) wall time, finalize time
(aggregation + cache store), cache status, simulator throughput
(events/sec), engine sizing peaks, loss rate, bottleneck queue
high-watermark and CCA phase residency — plus a per-scenario table
(flow count, Jain fairness, churn counters) for sweeps with N-flow
scenario cells, and a PE-evaluation time breakdown across the sweep's
conformance cells.

Usage:
    python3 scripts/summarize_manifest.py bench_out/manifests/fig06.json
    python3 scripts/summarize_manifest.py bench_out/manifests/*.json

Stdlib only.
"""
import json
import sys


def fmt_bytes(n):
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024


def fmt_rate(events_per_sec):
    v = float(events_per_sec)
    if v <= 0:
        return "-"
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.0f}k"
    return f"{v:.0f}"


def fmt_phases(phases):
    total = sum(phases.values())
    if total <= 0:
        return "-"
    parts = sorted(phases.items(), key=lambda kv: -kv[1])
    return " ".join(f"{name}:{100 * sec / total:.0f}%" for name, sec in parts)


def summarize(path):
    with open(path) as f:
        m = json.load(f)

    schema = m.get("schema", "?")
    print(f"== {m.get('sweep', path)} ({schema}) ==")
    if not schema.endswith("/v6"):
        print(f"  warning: expected quicbench.sweep.manifest/v6, got {schema}")
    cache = m.get("cache", {})
    print(
        f"  wall {m.get('wall_sec', 0):.2f}s on {m.get('threads', '?')} threads"
        f" ({100 * m.get('thread_utilization', 0):.0f}% busy),"
        f" {m.get('simulations_executed', 0)} trials simulated,"
        f" cache {cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses"
    )
    if m.get("events_executed"):
        print(
            f"  {m['events_executed']} simulator events"
            f" at {fmt_rate(m.get('events_per_sec', 0))} events/sec overall"
        )
    obs = m.get("observability", {})
    if obs.get("qlog_dir"):
        print(f"  qlog: {obs['qlog_dir']}")
    if obs.get("profile"):
        print(f"  profile: {obs['profile']}")

    rows = []
    for p in m.get("pairs", []):
        d = p.get("diagnostics", {})
        flows = d.get("flows", [{}, {}])
        loss = flows[0].get("loss_rate")
        eng = p.get("engine", {})
        # Cached pairs never ran a simulator: no throughput, no peaks.
        cached = p.get("cached")
        rows.append(
            (
                f"{p.get('a', '?')} vs {p.get('b', '?')}",
                "hit" if cached else f"{p.get('wall_sec', 0):.2f}s",
                "-" if cached else f"{p.get('finalize_sec', 0) * 1e3:.0f}ms",
                "-" if cached else fmt_rate(p.get("events_per_sec", 0)),
                "-"
                if cached
                else f"{eng.get('heap_peak', 0)}/{eng.get('wheel_peak', 0)}",
                f"{100 * loss:.2f}%" if loss is not None and d.get("valid") else "-",
                fmt_bytes(d.get("queue_hwm_bytes", 0)) if d.get("valid") else "-",
                f"{100 * d.get('utilization', 0):.0f}%" if d.get("valid") else "-",
                fmt_phases(flows[0].get("phase_residency_sec", {}))
                if d.get("valid")
                else "-",
            )
        )

    if rows:
        headers = (
            "pair",
            "transport",
            "finalize",
            "ev/s",
            "heap/wheel pk",
            "loss",
            "queue hwm",
            "util",
            "flow-0 phase residency",
        )
        widths = [
            max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
            for i in range(len(headers))
        ]
        print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        for r in rows:
            print("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))

    def fmt_count(v):
        # Churn counters are means across trials, so they may be
        # fractional; render integers without a trailing ".0".
        return f"{float(v):g}"

    scen_rows = []
    for s in m.get("scenarios", []):
        res = s.get("result", {})
        churn = res.get("churn", {})
        roles = s.get("roles", {})
        scen_rows.append(
            (
                f"{s.get('n_flows', '?')} flows"
                f" ({roles.get('test', 0)}t/{roles.get('reference', 0)}r"
                f"/{roles.get('background', 0)}b)",
                f"{s.get('wall_sec', 0):.2f}s",
                fmt_rate(s.get("events_per_sec", 0)),
                f"{res.get('jain_overall', 0):.3f}",
                f"{fmt_count(churn.get('arrivals', 0))}"
                f"/{fmt_count(churn.get('departures', 0))}",
                fmt_count(churn.get("peak_concurrent", 0)),
                fmt_bytes(res.get("queue_hwm_bytes", 0)),
                f"{100 * res.get('utilization', 0):.0f}%",
            )
        )
    if scen_rows:
        scen_headers = (
            "scenario",
            "transport",
            "ev/s",
            "jain",
            "arr/dep",
            "peak",
            "queue hwm",
            "util",
        )
        swidths = [
            max(len(scen_headers[i]), max(len(r[i]) for r in scen_rows))
            for i in range(len(scen_headers))
        ]
        print("  " + "  ".join(h.ljust(w) for h, w in zip(scen_headers, swidths)))
        for r in scen_rows:
            print("  " + "  ".join(c.ljust(w) for c, w in zip(r, swidths)))

    # Where the non-transport time went: per-pair finalize plus per-cell
    # PE evaluation (conformance kinds only; pair/scenario cells have no
    # eval).
    finalize_total = sum(
        p.get("finalize_sec", 0) for p in m.get("pairs", []) if not p.get("cached")
    )
    evals = [
        c.get("eval_sec", 0)
        for c in m.get("cells", [])
        if c.get("kind") in ("conformance", "scenario_conformance")
    ]
    if evals or finalize_total:
        eval_total = sum(evals)
        eval_max = max(evals, default=0.0)
        print(
            f"  breakdown: finalize {finalize_total:.2f}s across pairs,"
            f" PE eval {eval_total:.2f}s across {len(evals)} cells"
            f" (max {eval_max:.2f}s)"
        )
    print()


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        try:
            summarize(path)
        except BrokenPipeError:
            raise
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)  # e.g. piped into head
