#!/usr/bin/env python3
"""Gate a quicbench.bench.* result JSON against its committed baseline.

Works for any of the bench/perf probe binaries (bench_engine,
bench_transport, bench_eval): the result and baseline must carry the
same quicbench.bench.<family>/v1 schema, and every benchmark in the
baseline is checked two ways with very different strictness:

  * events    HARD: the work count of every benchmark is a pure
              function of the simulation (integer time, fixed seeds),
              so any mismatch vs the baseline means event/ack ordering
              or the analysis pipeline changed — fail immediately.
  * events/s  SOFT: wall-clock throughput must not regress below
              --min-ratio (default 0.70, i.e. fail on a >30% drop) of
              the baseline on any benchmark. Wall time itself is only
              reported, never gated: CI machines vary.
  * floors    HARD: a baseline may carry a top-level "floors" object
              mapping benchmark name -> absolute minimum events/sec
              (a ratchet: committed after a datapath speedup so the
              benchmark can never drift back toward its old cost, even
              across many baseline refreshes). Repeatable
              --floor name=ev_per_sec flags override/extend it.
              Floors are set well below the measured value so ordinary
              machine variance passes; only a structural regression
              (e.g. the batched ack path degrading to scalar work)
              trips them.

Usage:
  scripts/check_perf.py RESULT.json [--baseline bench/perf/BENCH_engine.baseline.json]
                        [--min-ratio 0.70] [--floor trial_bbr=5.0e6]

Exit status: 0 ok, 1 regression/mismatch, 2 bad input.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema")
    if not isinstance(schema, str) or not schema.startswith("quicbench.bench."):
        print(f"error: {path}: unexpected schema {schema!r}",
              file=sys.stderr)
        sys.exit(2)
    return schema, {b["name"]: b for b in doc.get("benchmarks", [])}, \
        doc.get("floors", {})


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("result", help="BENCH_engine.json from this run")
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(__file__), "..",
                                         "bench", "perf",
                                         "BENCH_engine.baseline.json"))
    ap.add_argument("--min-ratio", type=float,
                    default=float(os.environ.get("QB_PERF_MIN_RATIO", 0.70)),
                    help="minimum events/sec vs baseline (default 0.70)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="NAME=EV_PER_SEC",
                    help="absolute events/sec floor for one benchmark "
                         "(hard ratchet; repeatable; overrides the "
                         "baseline's committed floors)")
    args = ap.parse_args()

    result_schema, result, _ = load(args.result)
    baseline_schema, baseline, floors = load(args.baseline)
    for spec in args.floor:
        name, sep, value = spec.partition("=")
        if not sep:
            print(f"error: bad --floor {spec!r} (want NAME=EV_PER_SEC)",
                  file=sys.stderr)
            return 2
        try:
            floors[name] = float(value)
        except ValueError:
            print(f"error: bad --floor value {value!r}", file=sys.stderr)
            return 2
    if result_schema != baseline_schema:
        print(f"error: schema mismatch: result {result_schema!r} vs "
              f"baseline {baseline_schema!r}", file=sys.stderr)
        return 2

    failures = []
    print(f"{'benchmark':<26}{'events':>12}{'base ev/s':>14}"
          f"{'run ev/s':>14}{'ratio':>8}")
    for name, base in baseline.items():
        run = result.get(name)
        if run is None:
            failures.append(f"{name}: missing from result")
            continue
        if run["events"] != base["events"]:
            failures.append(
                f"{name}: event count {run['events']} != baseline "
                f"{base['events']} (determinism violation)")
        ratio = (run["events_per_sec"] / base["events_per_sec"]
                 if base["events_per_sec"] else float("inf"))
        print(f"{name:<26}{run['events']:>12}"
              f"{base['events_per_sec']:>14.0f}"
              f"{run['events_per_sec']:>14.0f}{ratio:>8.2f}")
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: events/sec ratio {ratio:.2f} below "
                f"{args.min_ratio:.2f} "
                f"({run['events_per_sec']:.0f} vs {base['events_per_sec']:.0f})")
    for name, floor in sorted(floors.items()):
        run = result.get(name)
        if run is None:
            failures.append(f"{name}: floored benchmark missing from result")
            continue
        if run["events_per_sec"] < floor:
            failures.append(
                f"{name}: events/sec {run['events_per_sec']:.0f} below hard "
                f"floor {floor:.0f} (ratchet)")
        else:
            print(f"floor: {name} {run['events_per_sec']:.0f} >= {floor:.0f}")
    for name in result:
        if name not in baseline:
            print(f"note: {name} not in baseline (new benchmark, not gated)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: event counts identical, throughput within margin")
    return 0


if __name__ == "__main__":
    sys.exit(main())
