#!/usr/bin/env python3
"""Summarize a bench_attrib run (quicbench.bench.attrib/v1): where the
cycles of each canonical trial go, and what makes one CCA's trial slower
than another's.

Per trial, a table of scopes sorted by exclusive share (the cycles a
subsystem spent itself, not in nested scopes), with wall-clock seconds
derived from the trial's cycle calibration and an inclusive ns/call cost
per scope entry. Then a cross-CCA comparison against the baseline trial
(trial_cubic unless --vs says otherwise): per-scope per-event costs side
by side with the scope contributing most of the slowdown called out —
"which subsystem, what per-event cost" instead of "BBR is 3x slower".

Usage:
    python3 scripts/summarize_attrib.py bench_out/BENCH_attrib.json
    python3 scripts/summarize_attrib.py BENCH_attrib.json --check \
        --min-coverage 0.90

--check validates the schema and, with --min-coverage, fails (exit 1)
when any trial's instrumentation explains less of its wall time than the
threshold — the CI gate that keeps the attribution honest.

Stdlib only.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "quicbench.bench.attrib/v1":
        print(
            f"error: {path}: expected quicbench.bench.attrib/v1, got "
            f"{doc.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return doc


def check_schema(doc, path):
    """Structural validation for --check: required keys, sane types."""
    problems = []
    if not isinstance(doc.get("compiled_in"), bool):
        problems.append("missing/invalid 'compiled_in'")
    if doc.get("timer") not in ("rdtsc", "steady_clock"):
        problems.append(f"unknown timer {doc.get('timer')!r}")
    trials = doc.get("trials")
    if not isinstance(trials, list) or not trials:
        problems.append("missing/empty 'trials'")
        trials = []
    for t in trials:
        name = t.get("name", "?")
        for key in ("cca", "events", "wall_sec", "events_per_sec",
                    "cycles_per_sec", "coverage", "scopes"):
            if key not in t:
                problems.append(f"trial {name}: missing '{key}'")
        if not t.get("scopes"):
            problems.append(f"trial {name}: no scopes recorded")
        for s in t.get("scopes", []):
            for key in ("scope", "calls", "cycles", "excl_cycles",
                        "excl_sec", "excl_frac", "ns_per_call"):
                if key not in s:
                    problems.append(
                        f"trial {name}: scope "
                        f"{s.get('scope', '?')}: missing '{key}'")
        if not any(s.get("scope") == "trial" for s in t.get("scopes", [])):
            problems.append(f"trial {name}: no root 'trial' scope")
    for p in problems:
        print(f"check: {path}: {p}", file=sys.stderr)
    return not problems


def per_event_ns(trial):
    """Exclusive nanoseconds per simulator event, per scope."""
    events = float(trial.get("events", 0)) or 1.0
    return {
        s["scope"]: 1e9 * float(s.get("excl_sec", 0)) / events
        for s in trial.get("scopes", [])
    }


def print_trial(t):
    print(
        f"\n{t['name']} ({t['cca']}): {t['events']} events in "
        f"{t['wall_sec']:.2f}s ({t['events_per_sec'] / 1e6:.2f}M ev/s), "
        f"coverage {100 * t['coverage']:.1f}%"
    )
    print(f"  {'scope':<17}{'calls':>14}{'excl_ms':>10}{'excl%':>8}"
          f"{'ns/call':>10}")
    scopes = sorted(t["scopes"], key=lambda s: -s["excl_frac"])
    for s in scopes:
        print(
            f"  {s['scope']:<17}{s['calls']:>14}"
            f"{1e3 * s['excl_sec']:>10.1f}{100 * s['excl_frac']:>7.1f}%"
            f"{s['ns_per_call']:>10.1f}"
        )


def print_comparison(trials, base_name):
    base = next((t for t in trials if t["name"] == base_name), None)
    others = [t for t in trials if t["name"] != base_name]
    if base is None or not others:
        return
    base_ns = per_event_ns(base)
    base_total = 1e9 * base["wall_sec"] / (float(base["events"]) or 1.0)
    for t in others:
        t_ns = per_event_ns(t)
        t_total = 1e9 * t["wall_sec"] / (float(t["events"]) or 1.0)
        print(
            f"\n== {t['name']} vs {base_name}: "
            f"{t_total:.0f} vs {base_total:.0f} ns/event "
            f"({t_total / base_total:.2f}x) =="
        )
        print(f"  {'scope':<17}{t['name']:>14}{base_name:>14}{'delta':>10}"
              "   (excl ns/event)")
        rows = []
        for scope in sorted(set(t_ns) | set(base_ns)):
            if scope == "trial":
                continue
            a, b = t_ns.get(scope, 0.0), base_ns.get(scope, 0.0)
            rows.append((a - b, scope, a, b))
        rows.sort(reverse=True)
        for delta, scope, a, b in rows:
            print(f"  {scope:<17}{a:>14.1f}{b:>14.1f}{delta:>+10.1f}")
        if rows and rows[0][0] > 0:
            delta, scope, a, b = rows[0]
            gap = t_total - base_total
            print(
                f"  dominant cost: {scope} (+{delta:.0f} ns/event, "
                f"{100 * delta / gap:.0f}% of the "
                f"{gap:.0f} ns/event gap)" if gap > 0 else
                f"  dominant cost: {scope} (+{delta:.0f} ns/event)"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("result", help="bench_out/BENCH_attrib.json")
    ap.add_argument("--vs", default="trial_cubic",
                    help="baseline trial for the per-event comparison "
                         "(default: trial_cubic)")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema; exit 1 on problems")
    ap.add_argument("--min-coverage", type=float, default=None,
                    help="with --check: fail if any trial's coverage is "
                         "below this fraction (e.g. 0.90)")
    args = ap.parse_args()

    doc = load(args.result)
    ok = True
    if args.check:
        ok = check_schema(doc, args.result)

    trials = doc.get("trials", [])
    print(f"bench_attrib summary ({doc.get('timer')} timer)")
    for t in trials:
        print_trial(t)
    print_comparison(trials, args.vs)

    if args.check and args.min_coverage is not None:
        for t in trials:
            cov = float(t.get("coverage", 0))
            if cov < args.min_coverage:
                print(
                    f"check: {t.get('name')}: coverage {cov:.3f} below "
                    f"--min-coverage {args.min_coverage}",
                    file=sys.stderr,
                )
                ok = False
    if args.check:
        print(f"\ncheck: {'OK' if ok else 'FAILED'}")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
