#!/usr/bin/env python3
"""Summarize a bench_attrib run (quicbench.bench.attrib/v1): where the
cycles of each canonical trial go, and what makes one CCA's trial slower
than another's.

Per trial, a table of scopes sorted by exclusive share (the cycles a
subsystem spent itself, not in nested scopes), with wall-clock seconds
derived from the trial's cycle calibration and an inclusive ns/call cost
per scope entry. Then a cross-CCA comparison against the baseline trial
(trial_cubic unless --vs says otherwise): per-scope per-event costs side
by side with the scope contributing most of the slowdown called out —
"which subsystem, what per-event cost" instead of "BBR is 3x slower".

Usage:
    python3 scripts/summarize_attrib.py bench_out/BENCH_attrib.json
    python3 scripts/summarize_attrib.py BENCH_attrib.json --check \
        --min-coverage 0.90
    python3 scripts/summarize_attrib.py BENCH_attrib.json \
        --diff bench/perf/BENCH_attrib.baseline.json
    python3 scripts/summarize_attrib.py BENCH_attrib.json \
        --max-share 'trial_bbr:sender.ack+sender.ack_range+sender.ack_merge+sender.loss:0.30'

--check validates the schema and, with --min-coverage, fails (exit 1)
when any trial's instrumentation explains less of its wall time than the
threshold — the CI gate that keeps the attribution honest.

--diff prints, for every trial present in both files, the per-scope
exclusive ns/event deltas against a baseline attrib JSON. The
normalization is per simulator event, so a QB_FAST run diffs cleanly
against the committed full-length baseline (trial lengths differ, per-
event costs should not); machine-speed skew still shows up as a uniform
scale factor, so deltas are a triage log, not a gate.

--max-share TRIAL:SCOPE[+SCOPE...]:FRAC (repeatable) is the gate: fail
(exit 1) when the summed exclusive share of the named scopes in TRIAL
exceeds FRAC. This pins structural wins — e.g. the batched ack datapath
keeps sender.ack+sender.ack_range+sender.ack_merge+sender.loss below
30% of a BBR trial, where the scalar path spent 45% — with a bound
robust to machine speed (shares, not nanoseconds).

Stdlib only.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "quicbench.bench.attrib/v1":
        print(
            f"error: {path}: expected quicbench.bench.attrib/v1, got "
            f"{doc.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return doc


def check_schema(doc, path):
    """Structural validation for --check: required keys, sane types."""
    problems = []
    if not isinstance(doc.get("compiled_in"), bool):
        problems.append("missing/invalid 'compiled_in'")
    if doc.get("timer") not in ("rdtsc", "steady_clock"):
        problems.append(f"unknown timer {doc.get('timer')!r}")
    trials = doc.get("trials")
    if not isinstance(trials, list) or not trials:
        problems.append("missing/empty 'trials'")
        trials = []
    for t in trials:
        name = t.get("name", "?")
        for key in ("cca", "events", "wall_sec", "events_per_sec",
                    "cycles_per_sec", "coverage", "scopes"):
            if key not in t:
                problems.append(f"trial {name}: missing '{key}'")
        if not t.get("scopes"):
            problems.append(f"trial {name}: no scopes recorded")
        for s in t.get("scopes", []):
            for key in ("scope", "calls", "cycles", "excl_cycles",
                        "excl_sec", "excl_frac", "ns_per_call"):
                if key not in s:
                    problems.append(
                        f"trial {name}: scope "
                        f"{s.get('scope', '?')}: missing '{key}'")
        if not any(s.get("scope") == "trial" for s in t.get("scopes", [])):
            problems.append(f"trial {name}: no root 'trial' scope")
    for p in problems:
        print(f"check: {path}: {p}", file=sys.stderr)
    return not problems


def per_event_ns(trial):
    """Exclusive nanoseconds per simulator event, per scope."""
    events = float(trial.get("events", 0)) or 1.0
    return {
        s["scope"]: 1e9 * float(s.get("excl_sec", 0)) / events
        for s in trial.get("scopes", [])
    }


def print_trial(t):
    print(
        f"\n{t['name']} ({t['cca']}): {t['events']} events in "
        f"{t['wall_sec']:.2f}s ({t['events_per_sec'] / 1e6:.2f}M ev/s), "
        f"coverage {100 * t['coverage']:.1f}%"
    )
    print(f"  {'scope':<17}{'calls':>14}{'excl_ms':>10}{'excl%':>8}"
          f"{'ns/call':>10}")
    scopes = sorted(t["scopes"], key=lambda s: -s["excl_frac"])
    for s in scopes:
        print(
            f"  {s['scope']:<17}{s['calls']:>14}"
            f"{1e3 * s['excl_sec']:>10.1f}{100 * s['excl_frac']:>7.1f}%"
            f"{s['ns_per_call']:>10.1f}"
        )


def print_comparison(trials, base_name):
    base = next((t for t in trials if t["name"] == base_name), None)
    others = [t for t in trials if t["name"] != base_name]
    if base is None or not others:
        return
    base_ns = per_event_ns(base)
    base_total = 1e9 * base["wall_sec"] / (float(base["events"]) or 1.0)
    for t in others:
        t_ns = per_event_ns(t)
        t_total = 1e9 * t["wall_sec"] / (float(t["events"]) or 1.0)
        print(
            f"\n== {t['name']} vs {base_name}: "
            f"{t_total:.0f} vs {base_total:.0f} ns/event "
            f"({t_total / base_total:.2f}x) =="
        )
        print(f"  {'scope':<17}{t['name']:>14}{base_name:>14}{'delta':>10}"
              "   (excl ns/event)")
        rows = []
        for scope in sorted(set(t_ns) | set(base_ns)):
            if scope == "trial":
                continue
            a, b = t_ns.get(scope, 0.0), base_ns.get(scope, 0.0)
            rows.append((a - b, scope, a, b))
        rows.sort(reverse=True)
        for delta, scope, a, b in rows:
            print(f"  {scope:<17}{a:>14.1f}{b:>14.1f}{delta:>+10.1f}")
        if rows and rows[0][0] > 0:
            delta, scope, a, b = rows[0]
            gap = t_total - base_total
            print(
                f"  dominant cost: {scope} (+{delta:.0f} ns/event, "
                f"{100 * delta / gap:.0f}% of the "
                f"{gap:.0f} ns/event gap)" if gap > 0 else
                f"  dominant cost: {scope} (+{delta:.0f} ns/event)"
            )


def print_diff(trials, baseline_doc, baseline_path):
    """Per-scope exclusive ns/event deltas: this run vs a baseline JSON."""
    base_trials = {t["name"]: t for t in baseline_doc.get("trials", [])}
    for t in trials:
        base = base_trials.get(t["name"])
        if base is None:
            print(f"\ndiff: {t['name']}: not in baseline, skipped")
            continue
        t_ns, b_ns = per_event_ns(t), per_event_ns(base)
        t_total = 1e9 * t["wall_sec"] / (float(t["events"]) or 1.0)
        b_total = 1e9 * base["wall_sec"] / (float(base["events"]) or 1.0)
        print(
            f"\n== diff {t['name']} vs {baseline_path}: "
            f"{t_total:.0f} vs {b_total:.0f} ns/event "
            f"({t_total / b_total:.2f}x) =="
        )
        print(f"  {'scope':<17}{'run':>12}{'baseline':>12}{'delta':>10}"
              "   (excl ns/event)")
        rows = []
        for scope in sorted(set(t_ns) | set(b_ns)):
            if scope == "trial":
                continue
            a, b = t_ns.get(scope, 0.0), b_ns.get(scope, 0.0)
            rows.append((a - b, scope, a, b))
        rows.sort(reverse=True)
        for delta, scope, a, b in rows:
            tag = ""
            if scope not in b_ns:
                tag = "   (new scope)"
            elif scope not in t_ns:
                tag = "   (gone)"
            print(f"  {scope:<17}{a:>12.1f}{b:>12.1f}{delta:>+10.1f}{tag}")


def check_max_shares(trials, specs):
    """Gate summed exclusive shares: TRIAL:SCOPE[+SCOPE...]:FRAC."""
    by_name = {t["name"]: t for t in trials}
    ok = True
    for spec in specs:
        parts = spec.rsplit(":", 1)
        head = parts[0].split(":", 1)
        if len(parts) != 2 or len(head) != 2:
            print(f"max-share: bad spec {spec!r} "
                  "(want TRIAL:SCOPE[+SCOPE...]:FRAC)", file=sys.stderr)
            ok = False
            continue
        trial_name, scope_expr = head
        try:
            bound = float(parts[1])
        except ValueError:
            print(f"max-share: bad bound in {spec!r}", file=sys.stderr)
            ok = False
            continue
        trial = by_name.get(trial_name)
        if trial is None:
            print(f"max-share: trial {trial_name!r} not in result",
                  file=sys.stderr)
            ok = False
            continue
        fracs = {s["scope"]: float(s.get("excl_frac", 0))
                 for s in trial.get("scopes", [])}
        # A scope absent from the profile costs nothing; only a typo that
        # matches *no* recorded scope at all is an error.
        scopes = scope_expr.split("+")
        if not any(s in fracs for s in scopes):
            print(f"max-share: none of {scopes} recorded in {trial_name}",
                  file=sys.stderr)
            ok = False
            continue
        share = sum(fracs.get(s, 0.0) for s in scopes)
        verdict = "OK" if share <= bound else "FAIL"
        print(f"max-share: {trial_name}: {scope_expr} = "
              f"{100 * share:.1f}% (bound {100 * bound:.1f}%) {verdict}")
        if share > bound:
            ok = False
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("result", help="bench_out/BENCH_attrib.json")
    ap.add_argument("--vs", default="trial_cubic",
                    help="baseline trial for the per-event comparison "
                         "(default: trial_cubic)")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema; exit 1 on problems")
    ap.add_argument("--min-coverage", type=float, default=None,
                    help="with --check: fail if any trial's coverage is "
                         "below this fraction (e.g. 0.90)")
    ap.add_argument("--diff", metavar="BASELINE.json", default=None,
                    help="print per-scope exclusive ns/event deltas "
                         "against a baseline attrib JSON")
    ap.add_argument("--max-share", action="append", default=[],
                    metavar="TRIAL:SCOPE[+SCOPE...]:FRAC",
                    help="fail if the summed exclusive share of the "
                         "named scopes exceeds FRAC (repeatable)")
    args = ap.parse_args()

    doc = load(args.result)
    ok = True
    if args.check:
        ok = check_schema(doc, args.result)

    trials = doc.get("trials", [])
    print(f"bench_attrib summary ({doc.get('timer')} timer)")
    for t in trials:
        print_trial(t)
    print_comparison(trials, args.vs)
    if args.diff:
        print_diff(trials, load(args.diff), args.diff)
    if args.max_share:
        ok = check_max_shares(trials, args.max_share) and ok

    if args.check and args.min_coverage is not None:
        for t in trials:
            cov = float(t.get("coverage", 0))
            if cov < args.min_coverage:
                print(
                    f"check: {t.get('name')}: coverage {cov:.3f} below "
                    f"--min-coverage {args.min_coverage}",
                    file=sys.stderr,
                )
                ok = False
    if args.check or args.max_share:
        print(f"\ncheck: {'OK' if ok else 'FAILED'}")
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
