#!/usr/bin/env python3
"""Plot the CSVs the bench binaries drop into bench_out/.

Usage:
    python3 scripts/plot_bench.py bench_out/           # everything found
    python3 scripts/plot_bench.py bench_out/fig05.csv  # one file

Produces PNGs next to each CSV. Requires matplotlib + pandas.
"""
import sys
from pathlib import Path

import pandas as pd
import matplotlib

matplotlib.use("Agg")
import matplotlib.pyplot as plt  # noqa: E402


def plot_fig05(df, out):
    fig, ax1 = plt.subplots(figsize=(6, 4))
    ax1.plot(df.cwnd_gain, df.conformance, "o-", label="Conformance")
    ax1.plot(df.cwnd_gain, df.conformance_t, "s--", label="Conformance-T")
    ax1.set_xlabel("cwnd gain")
    ax1.set_ylabel("conformance")
    ax1.axvline(2.0, color="grey", ls=":")
    ax1.legend()
    ax1.set_title("Fig 5: modified kernel BBR")
    fig.savefig(out, dpi=150, bbox_inches="tight")


def plot_points(df, out, title):
    fig, ax = plt.subplots(figsize=(6, 4))
    if "cca" in df.columns:
        for cca, gr in df.groupby("cca"):
            ax.scatter(gr.delay_ms, gr.tput_mbps, s=4, label=cca)
        ax.legend()
    else:
        ax.scatter(df.delay_ms, df.tput_mbps, s=4)
    ax.set_xlabel("delay (ms)")
    ax.set_ylabel("throughput (Mbps)")
    ax.set_title(title)
    fig.savefig(out, dpi=150, bbox_inches="tight")


def plot_heat(df, out, title, index, columns, values):
    pivot = df.pivot_table(index=index, columns=columns, values=values)
    fig, ax = plt.subplots(figsize=(1 + 0.5 * len(pivot.columns),
                                    1 + 0.3 * len(pivot.index)))
    im = ax.imshow(pivot.values, vmin=0, vmax=1, cmap="RdYlGn")
    ax.set_xticks(range(len(pivot.columns)), pivot.columns, rotation=90)
    ax.set_yticks(range(len(pivot.index)), pivot.index)
    fig.colorbar(im)
    ax.set_title(title)
    fig.savefig(out, dpi=150, bbox_inches="tight")


def plot_cwnd(df, out):
    fig, ax = plt.subplots(figsize=(8, 4))
    for variant, gr in df.groupby("variant"):
        ax.plot(gr.t_sec, gr.cwnd_bytes / 1448, label=variant, lw=0.8)
    ax.set_xlabel("time (s)")
    ax.set_ylabel("cwnd (segments)")
    ax.legend()
    ax.set_title("Fig 15: quiche CUBIC cwnd, original vs fixed")
    fig.savefig(out, dpi=150, bbox_inches="tight")


def handle(path: Path):
    df = pd.read_csv(path)
    out = path.with_suffix(".png")
    name = path.stem
    try:
        if name == "fig05":
            plot_fig05(df, out)
        elif name in ("fig02", "fig03"):
            plot_points(df, out, name)
        elif name == "fig06":
            plot_heat(df, out, "Fig 6 conformance",
                      df.stack + " " + df.cca if False else "stack",
                      "buffer_bdp", "conformance")
        elif name == "fig12":
            for cca, gr in df.groupby("cca"):
                plot_heat(gr, path.with_name(f"fig12_{cca}.png"),
                          f"Fig 12 ({cca}) row share", "row", "col",
                          "row_share")
        elif name == "fig13":
            for buf, gr in df.groupby("buffer_bdp"):
                plot_heat(gr, path.with_name(f"fig13_{buf}.png"),
                          f"Fig 13 BBR share ({buf} BDP)", "cubic", "bbr",
                          "bbr_share")
        elif name == "fig15_cwnd":
            plot_cwnd(df, out)
        else:
            return f"skip {name} (no plotter)"
        return f"wrote {out}"
    except Exception as exc:  # pragma: no cover - best effort tooling
        return f"failed {name}: {exc}"


def main():
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("bench_out")
    files = [target] if target.is_file() else sorted(target.glob("*.csv"))
    for f in files:
        print(handle(f))


if __name__ == "__main__":
    main()
