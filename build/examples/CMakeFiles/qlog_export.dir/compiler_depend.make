# Empty compiler generated dependencies file for qlog_export.
# This may be replaced when dependencies are built.
