file(REMOVE_RECURSE
  "CMakeFiles/qlog_export.dir/qlog_export.cpp.o"
  "CMakeFiles/qlog_export.dir/qlog_export.cpp.o.d"
  "qlog_export"
  "qlog_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlog_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
