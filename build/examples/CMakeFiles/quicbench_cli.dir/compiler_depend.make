# Empty compiler generated dependencies file for quicbench_cli.
# This may be replaced when dependencies are built.
