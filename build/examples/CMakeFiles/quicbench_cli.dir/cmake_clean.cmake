file(REMOVE_RECURSE
  "CMakeFiles/quicbench_cli.dir/quicbench_cli.cpp.o"
  "CMakeFiles/quicbench_cli.dir/quicbench_cli.cpp.o.d"
  "quicbench_cli"
  "quicbench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
