file(REMOVE_RECURSE
  "CMakeFiles/pair_stats.dir/pair_stats.cpp.o"
  "CMakeFiles/pair_stats.dir/pair_stats.cpp.o.d"
  "pair_stats"
  "pair_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
