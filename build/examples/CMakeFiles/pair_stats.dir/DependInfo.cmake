
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pair_stats.cpp" "examples/CMakeFiles/pair_stats.dir/pair_stats.cpp.o" "gcc" "examples/CMakeFiles/pair_stats.dir/pair_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/qb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/conformance/CMakeFiles/qb_conformance.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/qb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/qb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/qb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stacks/CMakeFiles/qb_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/qb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/qb_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/qb_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
