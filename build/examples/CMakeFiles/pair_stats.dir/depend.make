# Empty dependencies file for pair_stats.
# This may be replaced when dependencies are built.
