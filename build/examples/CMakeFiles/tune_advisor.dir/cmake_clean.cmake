file(REMOVE_RECURSE
  "CMakeFiles/tune_advisor.dir/tune_advisor.cpp.o"
  "CMakeFiles/tune_advisor.dir/tune_advisor.cpp.o.d"
  "tune_advisor"
  "tune_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
