# Empty dependencies file for tune_advisor.
# This may be replaced when dependencies are built.
