file(REMOVE_RECURSE
  "CMakeFiles/wild_probe.dir/wild_probe.cpp.o"
  "CMakeFiles/wild_probe.dir/wild_probe.cpp.o.d"
  "wild_probe"
  "wild_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
