# Empty dependencies file for wild_probe.
# This may be replaced when dependencies are built.
