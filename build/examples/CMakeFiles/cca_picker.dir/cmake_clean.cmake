file(REMOVE_RECURSE
  "CMakeFiles/cca_picker.dir/cca_picker.cpp.o"
  "CMakeFiles/cca_picker.dir/cca_picker.cpp.o.d"
  "cca_picker"
  "cca_picker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_picker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
