# Empty dependencies file for cca_picker.
# This may be replaced when dependencies are built.
