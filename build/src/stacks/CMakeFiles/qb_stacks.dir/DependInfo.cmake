
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stacks/registry.cpp" "src/stacks/CMakeFiles/qb_stacks.dir/registry.cpp.o" "gcc" "src/stacks/CMakeFiles/qb_stacks.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cca/CMakeFiles/qb_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/qb_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/qb_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
