file(REMOVE_RECURSE
  "libqb_stacks.a"
)
