# Empty compiler generated dependencies file for qb_stacks.
# This may be replaced when dependencies are built.
