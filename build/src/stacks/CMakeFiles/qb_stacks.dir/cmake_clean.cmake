file(REMOVE_RECURSE
  "CMakeFiles/qb_stacks.dir/registry.cpp.o"
  "CMakeFiles/qb_stacks.dir/registry.cpp.o.d"
  "libqb_stacks.a"
  "libqb_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
