file(REMOVE_RECURSE
  "CMakeFiles/qb_conformance.dir/conformance.cpp.o"
  "CMakeFiles/qb_conformance.dir/conformance.cpp.o.d"
  "CMakeFiles/qb_conformance.dir/pe.cpp.o"
  "CMakeFiles/qb_conformance.dir/pe.cpp.o.d"
  "libqb_conformance.a"
  "libqb_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
