file(REMOVE_RECURSE
  "libqb_conformance.a"
)
