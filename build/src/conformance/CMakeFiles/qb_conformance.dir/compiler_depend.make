# Empty compiler generated dependencies file for qb_conformance.
# This may be replaced when dependencies are built.
