file(REMOVE_RECURSE
  "libqb_trace.a"
)
