# Empty compiler generated dependencies file for qb_trace.
# This may be replaced when dependencies are built.
