file(REMOVE_RECURSE
  "CMakeFiles/qb_trace.dir/qlog.cpp.o"
  "CMakeFiles/qb_trace.dir/qlog.cpp.o.d"
  "CMakeFiles/qb_trace.dir/trace.cpp.o"
  "CMakeFiles/qb_trace.dir/trace.cpp.o.d"
  "libqb_trace.a"
  "libqb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
