file(REMOVE_RECURSE
  "libqb_util.a"
)
