# Empty dependencies file for qb_util.
# This may be replaced when dependencies are built.
