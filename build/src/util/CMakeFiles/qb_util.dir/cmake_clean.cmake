file(REMOVE_RECURSE
  "CMakeFiles/qb_util.dir/csv.cpp.o"
  "CMakeFiles/qb_util.dir/csv.cpp.o.d"
  "CMakeFiles/qb_util.dir/rng.cpp.o"
  "CMakeFiles/qb_util.dir/rng.cpp.o.d"
  "CMakeFiles/qb_util.dir/stats.cpp.o"
  "CMakeFiles/qb_util.dir/stats.cpp.o.d"
  "libqb_util.a"
  "libqb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
