file(REMOVE_RECURSE
  "libqb_transport.a"
)
