# Empty dependencies file for qb_transport.
# This may be replaced when dependencies are built.
