file(REMOVE_RECURSE
  "CMakeFiles/qb_transport.dir/profile.cpp.o"
  "CMakeFiles/qb_transport.dir/profile.cpp.o.d"
  "CMakeFiles/qb_transport.dir/receiver.cpp.o"
  "CMakeFiles/qb_transport.dir/receiver.cpp.o.d"
  "CMakeFiles/qb_transport.dir/sender.cpp.o"
  "CMakeFiles/qb_transport.dir/sender.cpp.o.d"
  "libqb_transport.a"
  "libqb_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
