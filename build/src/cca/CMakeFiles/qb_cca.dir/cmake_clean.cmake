file(REMOVE_RECURSE
  "CMakeFiles/qb_cca.dir/bbr.cpp.o"
  "CMakeFiles/qb_cca.dir/bbr.cpp.o.d"
  "CMakeFiles/qb_cca.dir/cubic.cpp.o"
  "CMakeFiles/qb_cca.dir/cubic.cpp.o.d"
  "CMakeFiles/qb_cca.dir/reno.cpp.o"
  "CMakeFiles/qb_cca.dir/reno.cpp.o.d"
  "libqb_cca.a"
  "libqb_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
