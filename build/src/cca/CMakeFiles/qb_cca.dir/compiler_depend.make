# Empty compiler generated dependencies file for qb_cca.
# This may be replaced when dependencies are built.
