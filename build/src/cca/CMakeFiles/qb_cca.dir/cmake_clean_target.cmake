file(REMOVE_RECURSE
  "libqb_cca.a"
)
