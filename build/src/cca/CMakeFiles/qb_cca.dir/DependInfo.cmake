
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cca/bbr.cpp" "src/cca/CMakeFiles/qb_cca.dir/bbr.cpp.o" "gcc" "src/cca/CMakeFiles/qb_cca.dir/bbr.cpp.o.d"
  "/root/repo/src/cca/cubic.cpp" "src/cca/CMakeFiles/qb_cca.dir/cubic.cpp.o" "gcc" "src/cca/CMakeFiles/qb_cca.dir/cubic.cpp.o.d"
  "/root/repo/src/cca/reno.cpp" "src/cca/CMakeFiles/qb_cca.dir/reno.cpp.o" "gcc" "src/cca/CMakeFiles/qb_cca.dir/reno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
