file(REMOVE_RECURSE
  "libqb_netsim.a"
)
