# Empty dependencies file for qb_netsim.
# This may be replaced when dependencies are built.
