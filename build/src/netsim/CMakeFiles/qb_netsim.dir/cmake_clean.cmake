file(REMOVE_RECURSE
  "CMakeFiles/qb_netsim.dir/event.cpp.o"
  "CMakeFiles/qb_netsim.dir/event.cpp.o.d"
  "CMakeFiles/qb_netsim.dir/link.cpp.o"
  "CMakeFiles/qb_netsim.dir/link.cpp.o.d"
  "CMakeFiles/qb_netsim.dir/topology.cpp.o"
  "CMakeFiles/qb_netsim.dir/topology.cpp.o.d"
  "CMakeFiles/qb_netsim.dir/tracelink.cpp.o"
  "CMakeFiles/qb_netsim.dir/tracelink.cpp.o.d"
  "libqb_netsim.a"
  "libqb_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
