file(REMOVE_RECURSE
  "libqb_geom.a"
)
