# Empty dependencies file for qb_geom.
# This may be replaced when dependencies are built.
