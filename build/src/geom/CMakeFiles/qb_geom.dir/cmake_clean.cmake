file(REMOVE_RECURSE
  "CMakeFiles/qb_geom.dir/geom.cpp.o"
  "CMakeFiles/qb_geom.dir/geom.cpp.o.d"
  "libqb_geom.a"
  "libqb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
