file(REMOVE_RECURSE
  "CMakeFiles/qb_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/qb_cluster.dir/kmeans.cpp.o.d"
  "libqb_cluster.a"
  "libqb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
