file(REMOVE_RECURSE
  "libqb_cluster.a"
)
