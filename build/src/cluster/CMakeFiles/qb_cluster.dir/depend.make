# Empty dependencies file for qb_cluster.
# This may be replaced when dependencies are built.
