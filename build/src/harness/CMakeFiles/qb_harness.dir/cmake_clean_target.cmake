file(REMOVE_RECURSE
  "libqb_harness.a"
)
