# Empty dependencies file for qb_harness.
# This may be replaced when dependencies are built.
