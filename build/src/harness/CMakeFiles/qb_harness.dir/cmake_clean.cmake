file(REMOVE_RECURSE
  "CMakeFiles/qb_harness.dir/experiment.cpp.o"
  "CMakeFiles/qb_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/qb_harness.dir/report.cpp.o"
  "CMakeFiles/qb_harness.dir/report.cpp.o.d"
  "libqb_harness.a"
  "libqb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
