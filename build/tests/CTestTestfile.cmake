# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_cca[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_stacks[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
