file(REMOVE_RECURSE
  "CMakeFiles/test_conformance.dir/conformance/conformance_test.cpp.o"
  "CMakeFiles/test_conformance.dir/conformance/conformance_test.cpp.o.d"
  "CMakeFiles/test_conformance.dir/conformance/pe_test.cpp.o"
  "CMakeFiles/test_conformance.dir/conformance/pe_test.cpp.o.d"
  "CMakeFiles/test_conformance.dir/conformance/quorum_test.cpp.o"
  "CMakeFiles/test_conformance.dir/conformance/quorum_test.cpp.o.d"
  "test_conformance"
  "test_conformance.pdb"
  "test_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
