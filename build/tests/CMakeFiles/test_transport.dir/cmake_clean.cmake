file(REMOVE_RECURSE
  "CMakeFiles/test_transport.dir/transport/endpoints_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/endpoints_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/loss_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/loss_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/profile_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/profile_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/rtt_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/rtt_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/sender_internals_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/sender_internals_test.cpp.o.d"
  "test_transport"
  "test_transport.pdb"
  "test_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
