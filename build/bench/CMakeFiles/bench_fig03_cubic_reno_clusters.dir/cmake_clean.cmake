file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_cubic_reno_clusters.dir/bench_fig03_cubic_reno_clusters.cpp.o"
  "CMakeFiles/bench_fig03_cubic_reno_clusters.dir/bench_fig03_cubic_reno_clusters.cpp.o.d"
  "bench_fig03_cubic_reno_clusters"
  "bench_fig03_cubic_reno_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_cubic_reno_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
