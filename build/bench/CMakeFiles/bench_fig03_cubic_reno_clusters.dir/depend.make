# Empty dependencies file for bench_fig03_cubic_reno_clusters.
# This may be replaced when dependencies are built.
