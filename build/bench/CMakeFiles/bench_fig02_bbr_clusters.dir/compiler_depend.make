# Empty compiler generated dependencies file for bench_fig02_bbr_clusters.
# This may be replaced when dependencies are built.
