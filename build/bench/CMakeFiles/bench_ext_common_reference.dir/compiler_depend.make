# Empty compiler generated dependencies file for bench_ext_common_reference.
# This may be replaced when dependencies are built.
