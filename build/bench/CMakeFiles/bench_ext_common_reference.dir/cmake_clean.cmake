file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_common_reference.dir/bench_ext_common_reference.cpp.o"
  "CMakeFiles/bench_ext_common_reference.dir/bench_ext_common_reference.cpp.o.d"
  "bench_ext_common_reference"
  "bench_ext_common_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_common_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
