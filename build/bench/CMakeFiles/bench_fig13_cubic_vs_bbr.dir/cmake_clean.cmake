file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_cubic_vs_bbr.dir/bench_fig13_cubic_vs_bbr.cpp.o"
  "CMakeFiles/bench_fig13_cubic_vs_bbr.dir/bench_fig13_cubic_vs_bbr.cpp.o.d"
  "bench_fig13_cubic_vs_bbr"
  "bench_fig13_cubic_vs_bbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cubic_vs_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
