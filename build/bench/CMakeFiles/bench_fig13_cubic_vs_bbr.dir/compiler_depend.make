# Empty compiler generated dependencies file for bench_fig13_cubic_vs_bbr.
# This may be replaced when dependencies are built.
