file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_wild.dir/bench_fig11_wild.cpp.o"
  "CMakeFiles/bench_fig11_wild.dir/bench_fig11_wild.cpp.o.d"
  "bench_fig11_wild"
  "bench_fig11_wild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_wild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
