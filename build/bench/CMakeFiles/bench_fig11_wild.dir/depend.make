# Empty dependencies file for bench_fig11_wild.
# This may be replaced when dependencies are built.
