# Empty compiler generated dependencies file for bench_fig14_fix_xquic_bbr.
# This may be replaced when dependencies are built.
