file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_fix_xquic_bbr.dir/bench_fig14_fix_xquic_bbr.cpp.o"
  "CMakeFiles/bench_fig14_fix_xquic_bbr.dir/bench_fig14_fix_xquic_bbr.cpp.o.d"
  "bench_fig14_fix_xquic_bbr"
  "bench_fig14_fix_xquic_bbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fix_xquic_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
