# Empty dependencies file for bench_fig01_hull_vs_cluster.
# This may be replaced when dependencies are built.
