file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_cubic_pes.dir/bench_fig07_cubic_pes.cpp.o"
  "CMakeFiles/bench_fig07_cubic_pes.dir/bench_fig07_cubic_pes.cpp.o.d"
  "bench_fig07_cubic_pes"
  "bench_fig07_cubic_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_cubic_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
