# Empty compiler generated dependencies file for bench_fig07_cubic_pes.
# This may be replaced when dependencies are built.
