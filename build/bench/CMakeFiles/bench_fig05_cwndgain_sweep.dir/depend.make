# Empty dependencies file for bench_fig05_cwndgain_sweep.
# This may be replaced when dependencies are built.
