# Empty compiler generated dependencies file for bench_fig04_k_selection.
# This may be replaced when dependencies are built.
