file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_k_selection.dir/bench_fig04_k_selection.cpp.o"
  "CMakeFiles/bench_fig04_k_selection.dir/bench_fig04_k_selection.cpp.o.d"
  "bench_fig04_k_selection"
  "bench_fig04_k_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_k_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
