# Empty dependencies file for bench_fig06_conformance_heatmap.
# This may be replaced when dependencies are built.
