file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_low_conformance.dir/bench_table3_low_conformance.cpp.o"
  "CMakeFiles/bench_table3_low_conformance.dir/bench_table3_low_conformance.cpp.o.d"
  "bench_table3_low_conformance"
  "bench_table3_low_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_low_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
