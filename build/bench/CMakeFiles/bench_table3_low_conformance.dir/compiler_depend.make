# Empty compiler generated dependencies file for bench_table3_low_conformance.
# This may be replaced when dependencies are built.
