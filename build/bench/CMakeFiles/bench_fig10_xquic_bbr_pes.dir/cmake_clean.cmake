file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_xquic_bbr_pes.dir/bench_fig10_xquic_bbr_pes.cpp.o"
  "CMakeFiles/bench_fig10_xquic_bbr_pes.dir/bench_fig10_xquic_bbr_pes.cpp.o.d"
  "bench_fig10_xquic_bbr_pes"
  "bench_fig10_xquic_bbr_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_xquic_bbr_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
