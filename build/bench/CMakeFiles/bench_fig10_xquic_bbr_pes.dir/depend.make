# Empty dependencies file for bench_fig10_xquic_bbr_pes.
# This may be replaced when dependencies are built.
