file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_transitivity.dir/bench_ext_transitivity.cpp.o"
  "CMakeFiles/bench_ext_transitivity.dir/bench_ext_transitivity.cpp.o.d"
  "bench_ext_transitivity"
  "bench_ext_transitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_transitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
