# Empty compiler generated dependencies file for bench_fig08_xquic_reno_pes.
# This may be replaced when dependencies are built.
