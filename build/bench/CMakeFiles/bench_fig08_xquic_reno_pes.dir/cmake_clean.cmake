file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_xquic_reno_pes.dir/bench_fig08_xquic_reno_pes.cpp.o"
  "CMakeFiles/bench_fig08_xquic_reno_pes.dir/bench_fig08_xquic_reno_pes.cpp.o.d"
  "bench_fig08_xquic_reno_pes"
  "bench_fig08_xquic_reno_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_xquic_reno_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
