file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fairness_matrix.dir/bench_fig12_fairness_matrix.cpp.o"
  "CMakeFiles/bench_fig12_fairness_matrix.dir/bench_fig12_fairness_matrix.cpp.o.d"
  "bench_fig12_fairness_matrix"
  "bench_fig12_fairness_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fairness_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
