# Empty dependencies file for bench_fig09_mvfst_bbr_pes.
# This may be replaced when dependencies are built.
