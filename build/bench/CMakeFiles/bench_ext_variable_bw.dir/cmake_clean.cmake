file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_variable_bw.dir/bench_ext_variable_bw.cpp.o"
  "CMakeFiles/bench_ext_variable_bw.dir/bench_ext_variable_bw.cpp.o.d"
  "bench_ext_variable_bw"
  "bench_ext_variable_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_variable_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
