# Empty dependencies file for bench_ext_variable_bw.
# This may be replaced when dependencies are built.
