# Empty dependencies file for bench_table4_fixes.
# This may be replaced when dependencies are built.
