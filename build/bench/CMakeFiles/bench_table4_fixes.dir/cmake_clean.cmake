file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fixes.dir/bench_table4_fixes.cpp.o"
  "CMakeFiles/bench_table4_fixes.dir/bench_table4_fixes.cpp.o.d"
  "bench_table4_fixes"
  "bench_table4_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
