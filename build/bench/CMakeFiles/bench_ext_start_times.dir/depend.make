# Empty dependencies file for bench_ext_start_times.
# This may be replaced when dependencies are built.
