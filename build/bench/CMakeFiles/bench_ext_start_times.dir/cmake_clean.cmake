file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_start_times.dir/bench_ext_start_times.cpp.o"
  "CMakeFiles/bench_ext_start_times.dir/bench_ext_start_times.cpp.o.d"
  "bench_ext_start_times"
  "bench_ext_start_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_start_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
