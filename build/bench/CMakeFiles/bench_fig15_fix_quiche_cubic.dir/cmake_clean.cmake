file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_fix_quiche_cubic.dir/bench_fig15_fix_quiche_cubic.cpp.o"
  "CMakeFiles/bench_fig15_fix_quiche_cubic.dir/bench_fig15_fix_quiche_cubic.cpp.o.d"
  "bench_fig15_fix_quiche_cubic"
  "bench_fig15_fix_quiche_cubic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_fix_quiche_cubic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
