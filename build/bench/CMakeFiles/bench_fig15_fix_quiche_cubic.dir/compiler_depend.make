# Empty compiler generated dependencies file for bench_fig15_fix_quiche_cubic.
# This may be replaced when dependencies are built.
