// Property-based tests over the geometry kernel: randomized point sets,
// with invariants that must hold for any input.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/geom.h"
#include "util/rng.h"

namespace quicbench::geom {
namespace {

std::vector<Point> random_points(Rng& rng, int n, double lo, double hi) {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(lo, hi), rng.uniform(lo, hi)});
  }
  return pts;
}

class HullProperty : public ::testing::TestWithParam<int> {};

TEST_P(HullProperty, HullContainsEveryInputPoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto pts = random_points(rng, 50 + GetParam() * 13, 0, 100);
  const Polygon hull = convex_hull(pts);
  if (hull.size() < 3) return;  // degenerate input
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_convex(hull, p, 1e-7));
  }
}

TEST_P(HullProperty, HullIsConvex) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const auto pts = random_points(rng, 80, -50, 50);
  const Polygon hull = convex_hull(pts);
  if (hull.size() < 3) return;
  const std::size_t n = hull.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(cross(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]), 0)
        << "strictly convex, CCW, no collinear runs";
  }
}

TEST_P(HullProperty, HullVerticesAreInputPoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const auto pts = random_points(rng, 60, 0, 10);
  const Polygon hull = convex_hull(pts);
  for (const auto& v : hull) {
    bool found = false;
    for (const auto& p : pts) {
      if (p == v) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(HullProperty, HullAreaNoLargerThanBoundingBox) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const auto pts = random_points(rng, 40, 0, 7);
  const Polygon hull = convex_hull(pts);
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const auto& p : pts) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_LE(polygon_area(hull), (max_x - min_x) * (max_y - min_y) + 1e-9);
}

TEST_P(HullProperty, ClipIdempotent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  const Polygon a = convex_hull(random_points(rng, 30, 0, 10));
  if (a.size() < 3) return;
  const Polygon self = clip_convex(a, a);
  EXPECT_NEAR(polygon_area(self), polygon_area(a),
              1e-6 * std::max(1.0, polygon_area(a)));
}

TEST_P(HullProperty, ClipMonotone) {
  // area(A ∩ B) <= min(area(A), area(B)) and every vertex of the
  // intersection lies in both inputs.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  const Polygon a = convex_hull(random_points(rng, 25, 0, 10));
  const Polygon b = convex_hull(random_points(rng, 25, 4, 14));
  if (a.size() < 3 || b.size() < 3) return;
  const Polygon inter = clip_convex(a, b);
  EXPECT_LE(polygon_area(inter),
            std::min(polygon_area(a), polygon_area(b)) + 1e-7);
  for (const auto& v : inter) {
    EXPECT_TRUE(point_in_convex(a, v, 1e-6));
    EXPECT_TRUE(point_in_convex(b, v, 1e-6));
  }
}

TEST_P(HullProperty, TranslationPreservesArea) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
  const Polygon a = convex_hull(random_points(rng, 30, 0, 10));
  const double dx = rng.uniform(-100, 100);
  const double dy = rng.uniform(-100, 100);
  EXPECT_NEAR(polygon_area(translate(a, dx, dy)), polygon_area(a), 1e-7);
}

TEST_P(HullProperty, CentroidInsideHull) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const Polygon a = convex_hull(random_points(rng, 30, 0, 10));
  if (a.size() < 3) return;
  EXPECT_TRUE(point_in_convex(a, polygon_centroid(a), 1e-7));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HullProperty,
                         ::testing::Range(0, 12));

} // namespace
} // namespace quicbench::geom
