#include <gtest/gtest.h>

#include <cmath>

#include "geom/geom.h"
#include "util/rng.h"

namespace quicbench::geom {
namespace {

Polygon unit_square() { return {{0, 0}, {1, 0}, {1, 1}, {0, 1}}; }

TEST(ConvexHull, SquareWithInteriorPoints) {
  std::vector<Point> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5},
                         {0.2, 0.7}};
  const Polygon hull = convex_hull(pts);
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 1.0);
}

TEST(ConvexHull, CollinearPointsDegenerate) {
  std::vector<Point> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const Polygon hull = convex_hull(pts);
  EXPECT_LT(hull.size(), 3u);
  EXPECT_DOUBLE_EQ(polygon_area(hull), 0.0);
}

TEST(ConvexHull, DuplicatesRemoved) {
  std::vector<Point> pts{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}};
  const Polygon hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, IsCounterClockwise) {
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  const Polygon hull = convex_hull(pts);
  EXPECT_GT(signed_area(hull), 0.0);
}

TEST(ConvexHull, AllInputPointsInsideHull) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 5)});
  }
  const Polygon hull = convex_hull(pts);
  for (const auto& p : pts) {
    EXPECT_TRUE(point_in_convex(hull, p, 1e-9));
  }
}

TEST(Area, TriangleAndSquare) {
  const Polygon tri{{0, 0}, {2, 0}, {0, 2}};
  EXPECT_DOUBLE_EQ(polygon_area(tri), 2.0);
  EXPECT_DOUBLE_EQ(polygon_area(unit_square()), 1.0);
}

TEST(Centroid, Square) {
  const Point c = polygon_centroid(unit_square());
  EXPECT_DOUBLE_EQ(c.x, 0.5);
  EXPECT_DOUBLE_EQ(c.y, 0.5);
}

TEST(Centroid, PointsCentroid) {
  const std::vector<Point> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Point c = points_centroid(pts);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

TEST(PointInConvex, InsideOutsideBoundary) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(point_in_convex(sq, {0.5, 0.5}));
  EXPECT_TRUE(point_in_convex(sq, {0.0, 0.0}));   // vertex
  EXPECT_TRUE(point_in_convex(sq, {0.5, 0.0}));   // edge
  EXPECT_FALSE(point_in_convex(sq, {1.5, 0.5}));
  EXPECT_FALSE(point_in_convex(sq, {-0.01, 0.5}));
}

TEST(PointInConvex, DegeneratePolygonContainsNothing) {
  const Polygon line{{0, 0}, {1, 1}};
  EXPECT_FALSE(point_in_convex(line, {0.5, 0.5}));
}

TEST(Clip, OverlappingSquares) {
  const Polygon a = unit_square();
  const Polygon b = translate(a, 0.5, 0.5);
  const Polygon inter = clip_convex(a, b);
  ASSERT_GE(inter.size(), 3u);
  EXPECT_NEAR(polygon_area(inter), 0.25, 1e-9);
}

TEST(Clip, DisjointIsEmpty) {
  const Polygon a = unit_square();
  const Polygon b = translate(a, 5, 5);
  EXPECT_TRUE(clip_convex(a, b).empty());
}

TEST(Clip, ContainedPolygonIsItself) {
  const Polygon outer{{-1, -1}, {2, -1}, {2, 2}, {-1, 2}};
  const Polygon inter = clip_convex(unit_square(), outer);
  EXPECT_NEAR(polygon_area(inter), 1.0, 1e-9);
}

TEST(Clip, CommutativeArea) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pa, pb;
    for (int i = 0; i < 30; ++i) {
      pa.push_back({rng.uniform(0, 4), rng.uniform(0, 4)});
      pb.push_back({rng.uniform(2, 6), rng.uniform(2, 6)});
    }
    const Polygon a = convex_hull(pa);
    const Polygon b = convex_hull(pb);
    const double ab = polygon_area(clip_convex(a, b));
    const double ba = polygon_area(clip_convex(b, a));
    EXPECT_NEAR(ab, ba, 1e-6);
  }
}

TEST(Clip, IntersectionNoLargerThanEither) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> pa, pb;
    for (int i = 0; i < 25; ++i) {
      pa.push_back({rng.uniform(0, 3), rng.uniform(0, 3)});
      pb.push_back({rng.uniform(1, 5), rng.uniform(1, 5)});
    }
    const Polygon a = convex_hull(pa);
    const Polygon b = convex_hull(pb);
    const double inter = polygon_area(clip_convex(a, b));
    EXPECT_LE(inter, polygon_area(a) + 1e-9);
    EXPECT_LE(inter, polygon_area(b) + 1e-9);
  }
}

TEST(Clip, DegenerateInputsEmpty) {
  const Polygon line{{0, 0}, {1, 1}};
  EXPECT_TRUE(clip_convex(line, unit_square()).empty());
  EXPECT_TRUE(clip_convex(unit_square(), line).empty());
}

TEST(IntersectAll, ChainOfSquares) {
  const std::vector<Polygon> polys{
      unit_square(), translate(unit_square(), 0.2, 0.0),
      translate(unit_square(), 0.0, 0.2)};
  const Polygon inter = intersect_all(polys);
  EXPECT_NEAR(polygon_area(inter), 0.8 * 0.8, 1e-9);
}

TEST(IntersectAll, EmptyInput) {
  EXPECT_TRUE(intersect_all(std::vector<Polygon>{}).empty());
}

TEST(Translate, ShiftsAllVertices) {
  const Polygon t = translate(unit_square(), 3, -2);
  EXPECT_DOUBLE_EQ(t[0].x, 3.0);
  EXPECT_DOUBLE_EQ(t[0].y, -2.0);
  EXPECT_DOUBLE_EQ(polygon_area(t), 1.0);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

} // namespace
} // namespace quicbench::geom
