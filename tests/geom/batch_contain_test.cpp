// Batched point-in-convex scans vs the scalar contains() loops: the
// mask kernels must agree point-for-point with PreparedConvex::contains
// and contains_boxed on randomized hulls and clouds — including points
// constructed exactly on hull edges and just inside/outside the eps
// band, where any reordering of the half-plane tests would show up.

#include "geom/geom.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace quicbench::geom {
namespace {

Polygon random_hull(Rng& rng, int n_pts) {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n_pts));
  for (int i = 0; i < n_pts; ++i) {
    pts.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-4.0, 4.0)});
  }
  return convex_hull(std::move(pts));
}

// Random cloud plus adversarial points: hull vertices, edge midpoints
// (exactly on the boundary), and slight eps-band perturbations of them.
std::vector<Point> make_queries(Rng& rng, const Polygon& hull, int n_random) {
  std::vector<Point> q;
  for (int i = 0; i < n_random; ++i) {
    q.push_back({rng.uniform(-7.0, 7.0), rng.uniform(-6.0, 6.0)});
  }
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Point a = hull[i];
    const Point b = hull[(i + 1) % hull.size()];
    const Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
    q.push_back(a);
    q.push_back(mid);
    q.push_back({mid.x + 5e-10, mid.y - 5e-10});
    q.push_back({mid.x - 2e-9, mid.y + 2e-9});
  }
  return q;
}

TEST(BatchContain, MasksMatchScalarContains) {
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    const Polygon hull = random_hull(rng, 3 + static_cast<int>(rng.uniform_int(12)));
    if (hull.size() < 3) continue;
    const PreparedConvex prep(hull);
    const std::vector<Point> q = make_queries(rng, hull, 200);
    BatchPoints soa;
    soa.assign(q);

    std::vector<std::uint8_t> mask(q.size(), 1);
    prep.mask_and_contains(soa.xs.data(), soa.ys.data(), q.size(),
                           mask.data());
    std::vector<std::uint8_t> boxed(q.size(), 1);
    prep.mask_and_contains_boxed(soa.xs.data(), soa.ys.data(), q.size(),
                                 boxed.data());
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(mask[i] != 0, prep.contains(q[i])) << "point " << i;
      EXPECT_EQ(boxed[i] != 0, prep.contains_boxed(q[i])) << "point " << i;
    }
  }
}

TEST(BatchContain, CountInAnyMatchesScalarLoop) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Polygon> hulls;
    std::vector<PreparedConvex> prep;
    for (int h = 0; h < 4; ++h) {
      Polygon hull = random_hull(rng, 4 + static_cast<int>(rng.uniform_int(10)));
      if (hull.size() < 3) continue;
      prep.emplace_back(hull);
      hulls.push_back(std::move(hull));
    }
    if (prep.empty()) continue;
    std::vector<Point> q = make_queries(rng, hulls[0], 500);
    for (std::size_t h = 1; h < hulls.size(); ++h) {
      const auto extra = make_queries(rng, hulls[h], 0);
      q.insert(q.end(), extra.begin(), extra.end());
    }

    std::size_t want = 0;
    for (const Point& p : q) {
      for (const PreparedConvex& pc : prep) {
        if (pc.contains(p)) {
          ++want;
          break;
        }
      }
    }
    EXPECT_EQ(count_in_any(prep, q), want);
  }
}

TEST(BatchContain, DegenerateAndEmptyInputs) {
  const PreparedConvex empty{Polygon{}};
  EXPECT_EQ(count_in_any(std::vector<PreparedConvex>{}, std::vector<Point>{{0, 0}}), 0u);
  std::vector<PreparedConvex> hs;
  hs.push_back(empty);
  const std::vector<Point> pts{{0, 0}, {1, 1}};
  EXPECT_EQ(count_in_any(hs, pts), 0u);
  EXPECT_EQ(count_in_any(hs, std::vector<Point>{}), 0u);

  BatchPoints soa;
  soa.assign(pts);
  std::vector<std::uint8_t> mask(pts.size(), 1);
  empty.mask_and_contains(soa.xs.data(), soa.ys.data(), pts.size(),
                          mask.data());
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{0, 0}));
}

} // namespace
} // namespace quicbench::geom
