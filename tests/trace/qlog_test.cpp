#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/qlog.h"
#include "util/json.h"

namespace quicbench::trace {
namespace {

TEST(Qlog, EmptyDocumentIsValidSkeleton) {
  QlogWriter w("t", "cubic");
  std::ostringstream os;
  w.write_to(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"qlog_version\":\"0.3\""), std::string::npos);
  EXPECT_NE(s.find("\"congestion_control\":\"cubic\""), std::string::npos);
  EXPECT_NE(s.find("\"events\":[]"), std::string::npos);
}

TEST(Qlog, EventsSerialised) {
  QlogWriter w("t", "bbr");
  w.packet_sent(time::ms(1), 0, 1500, false);
  w.packet_sent(time::ms(2), 1, 1500, true);
  w.packet_received(time::ms(11), 0, 1500);
  w.packet_lost(time::ms(30), 1);
  w.metrics_updated(time::ms(31), 14480, 7000, time::ms(10));
  EXPECT_EQ(w.event_count(), 5u);

  std::ostringstream os;
  w.write_to(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"packet_sent\""), std::string::npos);
  EXPECT_NE(s.find("\"is_retransmission\":true"), std::string::npos);
  EXPECT_NE(s.find("\"packet_received\""), std::string::npos);
  EXPECT_NE(s.find("\"packet_lost\""), std::string::npos);
  EXPECT_NE(s.find("\"metrics_updated\""), std::string::npos);
  EXPECT_NE(s.find("\"congestion_window\":14480"), std::string::npos);
  EXPECT_NE(s.find("\"smoothed_rtt\":10"), std::string::npos);
}

TEST(Qlog, RetransmissionFlagOnlyWhenSet) {
  QlogWriter w("t", "reno");
  w.packet_sent(time::ms(1), 0, 1500, false);
  std::ostringstream os;
  w.write_to(os);
  EXPECT_EQ(os.str().find("is_retransmission"), std::string::npos);
}

TEST(Qlog, BalancedBracesAndBrackets) {
  QlogWriter w("t", "cubic");
  for (int i = 0; i < 50; ++i) {
    w.packet_sent(time::ms(i), static_cast<std::uint64_t>(i), 1200,
                  i % 7 == 0);
    if (i % 3 == 0) w.packet_received(time::ms(i + 10), static_cast<std::uint64_t>(i), 1200);
    if (i % 11 == 0) w.packet_lost(time::ms(i + 20), static_cast<std::uint64_t>(i));
  }
  std::ostringstream os;
  w.write_to(os);
  const std::string s = os.str();
  long depth_brace = 0, depth_bracket = 0;
  for (char ch : s) {
    if (ch == '{') ++depth_brace;
    if (ch == '}') --depth_brace;
    if (ch == '[') ++depth_bracket;
    if (ch == ']') --depth_bracket;
    EXPECT_GE(depth_brace, 0);
    EXPECT_GE(depth_bracket, 0);
  }
  EXPECT_EQ(depth_brace, 0);
  EXPECT_EQ(depth_bracket, 0);
}

TEST(Qlog, RecoveryEventsSerialised) {
  QlogWriter w("t", "cubic");
  w.congestion_state_updated(time::ms(1), "slow_start",
                             "congestion_avoidance");
  w.loss_timer_updated(time::ms(2), QlogWriter::TimerType::kPto,
                       QlogWriter::TimerEvent::kSet, time::ms(42));
  w.loss_timer_updated(time::ms(3), QlogWriter::TimerType::kLossDetection,
                       QlogWriter::TimerEvent::kExpired);
  w.spurious_loss_detected(time::ms(4), 17);
  std::ostringstream os;
  w.write_to(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"congestion_state_updated\""), std::string::npos);
  EXPECT_NE(s.find("\"old\":\"slow_start\""), std::string::npos);
  EXPECT_NE(s.find("\"new\":\"congestion_avoidance\""), std::string::npos);
  EXPECT_NE(s.find("\"loss_timer_updated\""), std::string::npos);
  EXPECT_NE(s.find("\"pto\""), std::string::npos);
  EXPECT_NE(s.find("\"spurious_loss_detected\""), std::string::npos);
}

TEST(Qlog, DocumentParsesWithJsonParser) {
  QlogWriter w("parse \"me\"", "cu\\bic");
  w.packet_sent(time::ms(1), 0, 1500, false);
  w.packet_sent(time::ms(2), 1, 1500, true);
  w.packet_received(time::ms(11), 0, 1500);
  w.packet_lost(time::ms(30), 1);
  w.metrics_updated(time::ms(31), 14480, 7000, time::ms(10));
  w.congestion_state_updated(time::ms(32), "slow_start", "recovery");
  w.loss_timer_updated(time::ms(33), QlogWriter::TimerType::kLossDetection,
                       QlogWriter::TimerEvent::kCancelled);
  w.spurious_loss_detected(time::ms(34), 1);
  std::ostringstream os;
  w.write_to(os);

  std::string err;
  const auto doc = json_parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* traces = doc->find("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_TRUE(traces->is_array());
  ASSERT_EQ(traces->array.size(), 1u);
  const JsonValue* events = traces->array[0].find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), w.event_count());
  // Events are [time_ms, category, name, data] rows.
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_array());
    ASSERT_EQ(e.array.size(), 4u);
    EXPECT_TRUE(e.array[0].is_number());
    EXPECT_TRUE(e.array[1].is_string());
    EXPECT_TRUE(e.array[2].is_string());
    EXPECT_TRUE(e.array[3].is_object());
  }
  const JsonValue& state_change = events->array[5];
  EXPECT_EQ(state_change.array[1].string, "recovery");
  EXPECT_EQ(state_change.array[2].string, "congestion_state_updated");
  EXPECT_EQ(state_change.array[3].find("new")->string, "recovery");
}

TEST(Qlog, WriteFileRoundTrip) {
  QlogWriter w("file-test", "cubic");
  w.packet_sent(time::ms(1), 0, 1500, false);
  const std::string path = ::testing::TempDir() + "/test.qlog";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("file-test"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Qlog, BadPathFails) {
  QlogWriter w("t", "cubic");
  EXPECT_FALSE(w.write_file("/nonexistent-dir-xyz/x.qlog"));
}

} // namespace
} // namespace quicbench::trace
