#include <gtest/gtest.h>

#include "trace/trace.h"

namespace quicbench::trace {
namespace {

// A steady flow: `rate_mbps` delivered smoothly, constant RTT.
FlowTrace steady_trace(double rate_mbps, Time rtt, Time duration) {
  FlowTrace tr;
  const Bytes per_ms = static_cast<Bytes>(rate_mbps * 1e6 / 8 / 1000);
  for (Time t = 0; t < duration; t += time::ms(1)) {
    tr.record_delivery(t, per_ms);
    tr.record_rtt(t, rtt);
  }
  return tr;
}

TEST(Trace, TotalDelivered) {
  FlowTrace tr;
  tr.record_delivery(0, 100);
  tr.record_delivery(time::ms(1), 200);
  EXPECT_EQ(tr.total_delivered(), 300);
}

TEST(Sampling, SteadyFlowProducesConstantPoints) {
  const FlowTrace tr = steady_trace(20.0, time::ms(10), time::sec(10));
  const auto pts = sample_series(tr, time::sec(10), time::ms(10));
  ASSERT_FALSE(pts.empty());
  for (const auto& p : pts) {
    EXPECT_NEAR(p.tput_mbps, 20.0, 0.5);
    EXPECT_NEAR(p.delay_ms, 10.0, 0.01);
  }
}

TEST(Sampling, WindowCountMatchesConfig) {
  const FlowTrace tr = steady_trace(20.0, time::ms(10), time::sec(10));
  // Truncated span = 8 s; window = 10 RTTs = 100 ms -> 80 windows.
  const auto pts = sample_series(tr, time::sec(10), time::ms(10));
  EXPECT_EQ(pts.size(), 80u);
}

TEST(Sampling, TruncationDropsEnds) {
  FlowTrace tr;
  // Deliveries only in the first 5% and last 5% of the run.
  for (Time t = 0; t < time::ms(400); t += time::ms(1)) {
    tr.record_delivery(t, 1000);
    tr.record_rtt(t, time::ms(10));
  }
  for (Time t = time::ms(9600); t < time::sec(10); t += time::ms(1)) {
    tr.record_delivery(t, 1000);
    tr.record_rtt(t, time::ms(10));
  }
  const auto pts = sample_series(tr, time::sec(10), time::ms(10));
  EXPECT_TRUE(pts.empty());
}

TEST(Sampling, SkipsEmptyWindows) {
  FlowTrace tr;
  // One burst in the middle only.
  for (Time t = time::sec(5); t < time::sec(5) + time::ms(100);
       t += time::ms(1)) {
    tr.record_delivery(t, 1000);
    tr.record_rtt(t, time::ms(20));
  }
  const auto pts = sample_series(tr, time::sec(10), time::ms(10));
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 2u);
  EXPECT_NEAR(pts[0].delay_ms, 20.0, 1e-9);
}

TEST(Sampling, CustomSamplingPeriod) {
  const FlowTrace tr = steady_trace(10.0, time::ms(10), time::sec(10));
  SamplingConfig cfg;
  cfg.rtts_per_sample = 20;  // 200 ms windows -> half as many points
  const auto pts = sample_series(tr, time::sec(10), time::ms(10), cfg);
  EXPECT_EQ(pts.size(), 40u);
}

TEST(Sampling, DegenerateInputs) {
  const FlowTrace tr = steady_trace(10.0, time::ms(10), time::sec(1));
  EXPECT_TRUE(sample_series(tr, 0, time::ms(10)).empty());
  EXPECT_TRUE(sample_series(tr, time::sec(1), 0).empty());
  EXPECT_TRUE(sample_series(FlowTrace{}, time::sec(1), time::ms(10)).empty());
}

TEST(Sampling, DelayAveragesRttSamplesInWindow) {
  FlowTrace tr;
  // Window 1: RTTs 10 and 30 -> mean 20 ms.
  tr.record_delivery(time::ms(1000), 50'000);
  tr.record_rtt(time::ms(1000), time::ms(10));
  tr.record_rtt(time::ms(1050), time::ms(30));
  const auto pts = sample_series(tr, time::sec(10), time::ms(10));
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].delay_ms, 20.0, 1e-9);
}

TEST(AverageThroughput, ExactWindow) {
  FlowTrace tr;
  tr.record_delivery(time::ms(100), 12'500);  // inside
  tr.record_delivery(time::ms(150), 12'500);  // inside
  tr.record_delivery(time::ms(900), 99'999);  // outside
  const Rate r = average_throughput(tr, time::ms(100), time::ms(200));
  // 25,000 bytes over 100 ms = 2 Mbps.
  EXPECT_DOUBLE_EQ(rate::to_mbps(r), 2.0);
}

TEST(AverageThroughput, EmptyOrInvalidRange) {
  FlowTrace tr;
  tr.record_delivery(time::ms(100), 1000);
  EXPECT_DOUBLE_EQ(average_throughput(tr, time::ms(200), time::ms(100)), 0.0);
}

} // namespace
} // namespace quicbench::trace
