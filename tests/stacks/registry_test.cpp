#include <gtest/gtest.h>

#include "cca/bbr.h"
#include "cca/cubic.h"
#include "cca/reno.h"
#include "stacks/registry.h"

namespace quicbench::stacks {
namespace {

TEST(Registry, Table1Population) {
  const auto& reg = Registry::instance();
  // 11 QUIC stacks (26 implementations) + 5 kernel references = 31.
  EXPECT_EQ(reg.all().size(), 31u);
  // Table 1 CCA columns (extended population).
  EXPECT_EQ(reg.with_cca(CcaType::kCubic, false).size(), 11u);
  EXPECT_EQ(reg.with_cca(CcaType::kBbr, false).size(), 4u);
  EXPECT_EQ(reg.with_cca(CcaType::kReno, false).size(), 7u);
  EXPECT_EQ(reg.with_cca(CcaType::kBbr2, false).size(), 3u);
  EXPECT_EQ(reg.with_cca(CcaType::kCubicRack, false).size(), 1u);
  // include_reference adds exactly the kernel row.
  EXPECT_EQ(reg.with_cca(CcaType::kBbr2, true).size(), 4u);
  EXPECT_EQ(reg.with_cca(CcaType::kCubicRack, true).size(), 2u);
}

TEST(Registry, ReferencesAreKernel) {
  const auto& reg = Registry::instance();
  for (CcaType t : {CcaType::kCubic, CcaType::kBbr, CcaType::kReno,
                    CcaType::kBbr2, CcaType::kCubicRack}) {
    const Implementation& ref = reg.reference(t);
    EXPECT_EQ(ref.stack, "tcp");
    EXPECT_TRUE(ref.is_reference);
    // Kernel internal pacing at tcp_pacing_ca_ratio = 120%.
    EXPECT_DOUBLE_EQ(ref.profile.sender.window_pacing_factor, 1.2);
  }
}

TEST(Registry, Table1Gaps) {
  const auto& reg = Registry::instance();
  // Table 1: msquic has no BBR/Reno; chromium has no Reno; quiche no BBR.
  EXPECT_EQ(reg.find("msquic", CcaType::kBbr), nullptr);
  EXPECT_EQ(reg.find("msquic", CcaType::kReno), nullptr);
  EXPECT_EQ(reg.find("chromium", CcaType::kReno), nullptr);
  EXPECT_EQ(reg.find("quiche", CcaType::kBbr), nullptr);
  EXPECT_NE(reg.find("xquic", CcaType::kBbr), nullptr);
  EXPECT_NE(reg.find("lsquic", CcaType::kBbr), nullptr);
  // New columns: only mvfst/chromium/xquic ported BBRv2; only msquic runs
  // RACK-style loss detection under CUBIC. Everything else is a gap.
  EXPECT_NE(reg.find("mvfst", CcaType::kBbr2), nullptr);
  EXPECT_NE(reg.find("chromium", CcaType::kBbr2), nullptr);
  EXPECT_NE(reg.find("xquic", CcaType::kBbr2), nullptr);
  EXPECT_EQ(reg.find("quiche", CcaType::kBbr2), nullptr);
  EXPECT_EQ(reg.find("lsquic", CcaType::kBbr2), nullptr);
  EXPECT_EQ(reg.find("neqo", CcaType::kBbr2), nullptr);
  EXPECT_NE(reg.find("msquic", CcaType::kCubicRack), nullptr);
  EXPECT_EQ(reg.find("chromium", CcaType::kCubicRack), nullptr);
  EXPECT_EQ(reg.find("quicgo", CcaType::kCubicRack), nullptr);
  // find() on an unknown stack name is also a gap, not a throw.
  EXPECT_EQ(reg.find("nosuchstack", CcaType::kBbr2), nullptr);
}

TEST(Registry, DocumentedDeviationsEncoded) {
  const auto& reg = Registry::instance();
  EXPECT_EQ(reg.find("chromium", CcaType::kCubic)->cubic.emulated_flows, 2);
  EXPECT_TRUE(reg.find("quiche", CcaType::kCubic)
                  ->cubic.spurious_loss_rollback);
  EXPECT_FALSE(reg.find("xquic", CcaType::kCubic)->cubic.hystart);
  EXPECT_DOUBLE_EQ(reg.find("xquic", CcaType::kBbr)->bbr.cwnd_gain, 2.5);
  EXPECT_DOUBLE_EQ(reg.find("mvfst", CcaType::kBbr)->bbr.pacing_rate_scale,
                   1.2);
  EXPECT_GT(reg.find("neqo", CcaType::kCubic)
                ->profile.sender.flow_control_window, 0);
  // xquic's in-flight cap applies to its loss-based CCAs but not BBR
  // (the paper measured xquic BBR overshooting while CUBIC/Reno
  // undershoot).
  EXPECT_GT(reg.find("xquic", CcaType::kReno)
                ->profile.sender.flow_control_window, 0);
  EXPECT_GT(reg.find("xquic", CcaType::kCubic)
                ->profile.sender.flow_control_window, 0);
  EXPECT_EQ(reg.find("xquic", CcaType::kBbr)
                ->profile.sender.flow_control_window, 0);
  // Kernel CUBIC uses classic HyStart; QUIC stacks use HyStart++.
  EXPECT_TRUE(reg.reference(CcaType::kCubic).cubic.classic_hystart);
  EXPECT_FALSE(reg.find("msquic", CcaType::kCubic)->cubic.classic_hystart);
  // BBRv2 deviations: mvfst keeps its 1.2x pacer overdrive, xquic drops
  // the cruise headroom and relaxes the loss threshold to 5%.
  EXPECT_DOUBLE_EQ(reg.find("mvfst", CcaType::kBbr2)->bbr2.pacing_rate_scale,
                   1.2);
  EXPECT_DOUBLE_EQ(reg.find("xquic", CcaType::kBbr2)->bbr2.inflight_headroom,
                   0.0);
  EXPECT_DOUBLE_EQ(reg.find("xquic", CcaType::kBbr2)->bbr2.loss_thresh, 0.05);
  EXPECT_DOUBLE_EQ(reg.find("chromium", CcaType::kBbr2)->bbr2.loss_thresh,
                   0.02);
  // RACK-TLP rides the loss-detection axis, not the CCA config.
  EXPECT_EQ(reg.reference(CcaType::kCubicRack).profile.sender.loss_detection,
            transport::LossDetection::kRackTlp);
  EXPECT_EQ(reg.find("msquic", CcaType::kCubicRack)
                ->profile.sender.loss_detection,
            transport::LossDetection::kRackTlp);
  // The plain references keep RFC 9002 loss detection.
  EXPECT_EQ(reg.reference(CcaType::kCubic).profile.sender.loss_detection,
            transport::LossDetection::kRfc9002);
  EXPECT_EQ(reg.reference(CcaType::kBbr2).profile.sender.loss_detection,
            transport::LossDetection::kRfc9002);
}

TEST(Registry, ConformantStacksUseDefaults) {
  const auto& reg = Registry::instance();
  for (const char* stack : {"msquic", "quicgo", "quicly", "quinn", "s2n"}) {
    const Implementation* impl = reg.find(stack, CcaType::kCubic);
    ASSERT_NE(impl, nullptr) << stack;
    EXPECT_EQ(impl->cubic.emulated_flows, 1);
    EXPECT_TRUE(impl->cubic.hystart);
    EXPECT_FALSE(impl->cubic.spurious_loss_rollback);
    EXPECT_EQ(impl->profile.sender.flow_control_window, 0);
  }
}

TEST(Registry, MakeCcaProducesRightAlgorithm) {
  const auto& reg = Registry::instance();
  auto cubic = reg.find("msquic", CcaType::kCubic)->make_cca();
  EXPECT_EQ(cubic->name(), "cubic");
  auto bbr = reg.find("xquic", CcaType::kBbr)->make_cca();
  EXPECT_EQ(bbr->name(), "bbr");
  auto reno = reg.find("quinn", CcaType::kReno)->make_cca();
  EXPECT_EQ(reno->name(), "reno");
  auto bbr2 = reg.find("chromium", CcaType::kBbr2)->make_cca();
  EXPECT_EQ(bbr2->name(), "bbr2");
  auto cubic_rack = reg.find("msquic", CcaType::kCubicRack)->make_cca();
  EXPECT_EQ(cubic_rack->name(), "cubic_rack");
}

TEST(Registry, MakeCcaUsesProfileMss) {
  const auto& reg = Registry::instance();
  const Implementation* impl = reg.find("quicgo", CcaType::kReno);
  auto cca = impl->make_cca();
  EXPECT_EQ(cca->cwnd(), impl->profile.sender.mss *
                             impl->profile.sender.initial_cwnd_packets);
}

TEST(FixedVariant, KnownFixes) {
  const auto& reg = Registry::instance();
  const auto chromium = fixed_variant(*reg.find("chromium", CcaType::kCubic));
  ASSERT_TRUE(chromium.has_value());
  EXPECT_EQ(chromium->cubic.emulated_flows, 1);

  const auto mvfst = fixed_variant(*reg.find("mvfst", CcaType::kBbr));
  ASSERT_TRUE(mvfst.has_value());
  EXPECT_DOUBLE_EQ(mvfst->bbr.pacing_rate_scale, 1.0);

  const auto xquic = fixed_variant(*reg.find("xquic", CcaType::kBbr));
  ASSERT_TRUE(xquic.has_value());
  EXPECT_DOUBLE_EQ(xquic->bbr.cwnd_gain, 2.0);

  const auto quiche = fixed_variant(*reg.find("quiche", CcaType::kCubic));
  ASSERT_TRUE(quiche.has_value());
  EXPECT_FALSE(quiche->cubic.spurious_loss_rollback);

  const auto mvfst2 = fixed_variant(*reg.find("mvfst", CcaType::kBbr2));
  ASSERT_TRUE(mvfst2.has_value());
  EXPECT_DOUBLE_EQ(mvfst2->bbr2.pacing_rate_scale, 1.0);

  const auto xquic2 = fixed_variant(*reg.find("xquic", CcaType::kBbr2));
  ASSERT_TRUE(xquic2.has_value());
  EXPECT_DOUBLE_EQ(xquic2->bbr2.inflight_headroom, 0.15);
  EXPECT_DOUBLE_EQ(xquic2->bbr2.loss_thresh, 0.02);
}

TEST(FixedVariant, NoFixForConformantImpl) {
  const auto& reg = Registry::instance();
  EXPECT_FALSE(fixed_variant(*reg.find("quinn", CcaType::kReno)).has_value());
  EXPECT_FALSE(fixed_variant(*reg.find("xquic", CcaType::kReno)).has_value());
}

TEST(SpecialVariants, NoHystartReference) {
  const Implementation impl = reference_cubic_no_hystart();
  EXPECT_FALSE(impl.cubic.hystart);
  EXPECT_EQ(impl.stack, "tcp");
}

TEST(SpecialVariants, ModifiedKernelBbr) {
  const Implementation impl = modified_kernel_bbr(3.5);
  EXPECT_DOUBLE_EQ(impl.bbr.cwnd_gain, 3.5);
  EXPECT_EQ(impl.stack, "tcp");
}

TEST(Registry, DisplayNames) {
  const auto& reg = Registry::instance();
  EXPECT_EQ(reg.find("quiche", CcaType::kCubic)->display, "quiche cubic");
  EXPECT_EQ(to_string(CcaType::kBbr), "bbr");
  EXPECT_EQ(to_string(CcaType::kBbr2), "bbr2");
  EXPECT_EQ(to_string(CcaType::kCubicRack), "cubic-rack");
  EXPECT_EQ(reg.find("tcp", CcaType::kCubicRack)->display, "tcp cubic-rack");
  EXPECT_EQ(reg.find("xquic", CcaType::kBbr2)->display, "xquic bbr2");
}

} // namespace
} // namespace quicbench::stacks
