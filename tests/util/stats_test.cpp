#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace quicbench::stats {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmpty) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, PercentileSingleAndEmpty) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7}, 90), 7.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Stats, RunningMatchesBatch) {
  const std::vector<double> xs{1.5, 2.5, 3.0, 8.0, -2.0};
  Running r;
  for (double x : xs) r.add(x);
  EXPECT_EQ(r.count(), xs.size());
  EXPECT_NEAR(r.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(r.variance(), variance(xs), 1e-12);
}

TEST(WindowedFilter, MaxTracksWindow) {
  stats::WindowedMax<double> f(10);
  f.update(0, 5.0);
  EXPECT_DOUBLE_EQ(f.get(), 5.0);
  f.update(1, 3.0);
  EXPECT_DOUBLE_EQ(f.get(), 5.0);
  f.update(2, 8.0);
  EXPECT_DOUBLE_EQ(f.get(), 8.0);
  // Window expiry: the 8.0 at t=2 expires once now-window > 2.
  f.update(13, 1.0);
  EXPECT_DOUBLE_EQ(f.get(), 1.0);
}

TEST(WindowedFilter, MinTracksWindow) {
  stats::WindowedMin<long long> f(100);
  f.update(0, 50);
  f.update(10, 70);
  EXPECT_EQ(f.get(), 50);
  f.update(20, 30);
  EXPECT_EQ(f.get(), 30);
  f.update(130, 90);
  EXPECT_EQ(f.get(), 90);
}

TEST(WindowedFilter, EmptyAndClear) {
  stats::WindowedMax<double> f(5);
  EXPECT_TRUE(f.empty());
  f.update(0, 1.0);
  EXPECT_FALSE(f.empty());
  f.clear();
  EXPECT_TRUE(f.empty());
}

} // namespace
} // namespace quicbench::stats
