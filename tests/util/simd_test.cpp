// Two-world equivalence for the vectorized kernels in util/simd.h:
// every kernel must produce results bitwise-identical to its `_scalar`
// twin on randomized inputs, in every build mode (with -DQB_NO_SIMD the
// unsuffixed entry IS the scalar loop, so the test degenerates to a
// self-check — asserted equality either way keeps the harness honest).

#include "util/simd.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace quicbench::util::simd {
namespace {

// Odd lengths on purpose: remainders after any vector width must match.
constexpr std::size_t kLens[] = {0, 1, 2, 3, 7, 17, 64, 129, 1000, 4099};

TEST(SimdKernels, IntegerRangeKernelsMatchScalar) {
  Rng rng(1234);
  for (const std::size_t n : kLens) {
    std::vector<std::uint32_t> w(n);
    std::vector<std::uint8_t> f(n);
    for (auto& v : w) v = static_cast<std::uint32_t>(rng.next_u64() >> 32);
    for (auto& v : f) v = static_cast<std::uint8_t>(rng.next_u64() & 0x3f);

    EXPECT_EQ(sum_u32(w.data(), n), sum_u32_scalar(w.data(), n));
    EXPECT_EQ(or_u8(f.data(), n), or_u8_scalar(f.data(), n));

    std::vector<std::uint8_t> a = f, b = f;
    or_assign_u8(a.data(), n, 0x21);
    or_assign_u8_scalar(b.data(), n, 0x21);
    EXPECT_EQ(a, b);

    std::vector<std::uint64_t> u(n), v(n);
    const std::uint64_t start = rng.next_u64();
    fill_affine_u64(u.data(), n, start);
    fill_affine_u64_scalar(v.data(), n, start);
    EXPECT_EQ(u, v);
  }
}

// Bitwise equality of doubles: NaN-free inputs here, so == is exact.
void expect_doubles_identical(const std::vector<double>& a,
                              const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

TEST(SimdKernels, DistanceKernelsMatchScalarBitwise) {
  Rng rng(99);
  for (const std::size_t n : kLens) {
    std::vector<double> px(n), py(n);
    for (std::size_t i = 0; i < n; ++i) {
      px[i] = rng.normal(20.0, 15.0);
      py[i] = rng.normal(10.0, 8.0);
    }
    const double cx = rng.normal(20.0, 10.0);
    const double cy = rng.normal(10.0, 5.0);

    std::vector<double> d2v(n), d2s(n);
    sqdist_init(px.data(), py.data(), n, cx, cy, d2v.data());
    sqdist_init_scalar(px.data(), py.data(), n, cx, cy, d2s.data());
    expect_doubles_identical(d2v, d2s);

    sqdist_fold_min(px.data(), py.data(), n, cy, cx, d2v.data());
    sqdist_fold_min_scalar(px.data(), py.data(), n, cy, cx, d2s.data());
    expect_doubles_identical(d2v, d2s);

    std::vector<std::int32_t> bv(n, 0), bs(n, 0);
    std::vector<double> bdv = d2v, bds = d2s;
    assign_fold_best(px.data(), py.data(), n, cx + 1.0, cy - 2.0, 3,
                     bdv.data(), bv.data());
    assign_fold_best_scalar(px.data(), py.data(), n, cx + 1.0, cy - 2.0, 3,
                            bds.data(), bs.data());
    expect_doubles_identical(bdv, bds);
    EXPECT_EQ(bv, bs);
  }
}

TEST(SimdKernels, MaskKernelsMatchScalar) {
  Rng rng(7);
  for (const std::size_t n : kLens) {
    std::vector<double> px(n), py(n);
    for (std::size_t i = 0; i < n; ++i) {
      px[i] = rng.normal(0.0, 2.0);
      py[i] = rng.normal(0.0, 2.0);
    }
    std::vector<std::uint8_t> mv(n, 1), ms(n, 1);
    mask_halfplane(px.data(), py.data(), n, 0.1, -0.2, 1.5, 0.7, 1e-9,
                   mv.data());
    mask_halfplane_scalar(px.data(), py.data(), n, 0.1, -0.2, 1.5, 0.7, 1e-9,
                          ms.data());
    EXPECT_EQ(mv, ms);

    mask_box(px.data(), py.data(), n, -1.0, -1.5, 1.0, 1.5, mv.data());
    mask_box_scalar(px.data(), py.data(), n, -1.0, -1.5, 1.0, 1.5, ms.data());
    EXPECT_EQ(mv, ms);

    std::vector<std::uint8_t> ov(n), os(n);
    for (std::size_t i = 0; i < n; ++i) ov[i] = os[i] = (rng.next_u64() & 1);
    std::vector<std::uint8_t> src(n);
    for (auto& v : src) v = (rng.next_u64() & 1);
    or_arrays_u8(ov.data(), src.data(), n);
    or_arrays_u8_scalar(os.data(), src.data(), n);
    EXPECT_EQ(ov, os);

    EXPECT_EQ(count_and_mask(mv.data(), ov.data(), n),
              count_and_mask_scalar(ms.data(), os.data(), n));
    EXPECT_EQ(count_mask(mv.data(), n), count_mask_scalar(ms.data(), n));
  }
}

} // namespace
} // namespace quicbench::util::simd
