#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace quicbench {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({1.0, 2.5});
    w.row({3.0, 4.0});
  }
  const std::string content = read_file(path_);
  EXPECT_EQ(content, "a,b\n1,2.5\n3,4\n");
}

TEST_F(CsvTest, StringRows) {
  {
    CsvWriter w(path_, {"name", "value"});
    w.row(std::vector<std::string>{"plain", "1"});
    w.row(std::vector<std::string>{"with,comma", "q\"uote"});
  }
  const std::string content = read_file(path_);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"q\"\"uote\""), std::string::npos);
}

TEST_F(CsvTest, ColumnMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::runtime_error);
  EXPECT_THROW(w.row(std::vector<std::string>{"x", "y", "z"}),
               std::runtime_error);
}

TEST_F(CsvTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(CsvEscape, PassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

} // namespace
} // namespace quicbench
