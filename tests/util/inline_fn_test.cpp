// InlineFn semantics plus the zero-allocation guarantee the event engine
// is built on, verified with a counting global allocator: steady-state
// schedule/fire of [this]-capture callbacks must not touch the heap.
//
// This file overrides global operator new/delete, so it gets its own
// test binary (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "netsim/event.h"
#include "netsim/link.h"
#include "netsim/packet.h"
#include "util/inline_fn.h"
#include "util/rng.h"
#include "util/units.h"

namespace {
std::atomic<long> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace quicbench {
namespace {

using util::InlineFn;
using util::kInlineFnBytes;

long allocs() { return g_news.load(std::memory_order_relaxed); }

TEST(InlineFn, SmallCallableStoredInlineWithoutAllocation) {
  int hits = 0;
  int* p = &hits;
  const long before = allocs();
  InlineFn<void()> fn([p] { ++*p; });  // pointer capture, like [this]
  EXPECT_EQ(allocs(), before);
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveOfInlineCallableDoesNotAllocate) {
  int hits = 0;
  int* p = &hits;
  InlineFn<void()> a([p] { ++*p; });
  const long before = allocs();
  InlineFn<void()> b(std::move(a));
  InlineFn<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, CapturesUpToInlineCapacityStayInline) {
  struct Big {
    char bytes[kInlineFnBytes - 8];
    void* self;
  };
  static_assert(sizeof(Big) <= kInlineFnBytes);
  Big big{};
  big.self = &big;
  const long before = allocs();
  InlineFn<int()> fn([big]() -> int { return big.self != nullptr; });
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 1);
  EXPECT_EQ(allocs(), before);
}

TEST(InlineFn, OversizedCaptureFallsBackToOneHeapAllocation) {
  struct Huge {
    char bytes[kInlineFnBytes + 1];
  };
  Huge h{};
  h.bytes[0] = 7;
  const long before = allocs();
  InlineFn<int()> fn([h]() -> int { return h.bytes[0]; });
  EXPECT_EQ(allocs(), before + 1);
  EXPECT_FALSE(fn.is_inline());
  // Moves of a heap-backed InlineFn relocate the pointer: no further
  // allocations.
  InlineFn<int()> moved(std::move(fn));
  EXPECT_EQ(allocs(), before + 1);
  EXPECT_EQ(moved(), 7);
}

TEST(InlineFn, EmptyAndResetBehaviour) {
  InlineFn<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = [] {};
  EXPECT_TRUE(static_cast<bool>(fn));
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFn, ReturnsValuesAndTakesArguments) {
  InlineFn<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

// The network-element callbacks migrated from std::function must keep
// the same guarantee: installing a small-capture drop callback / jitter
// sampler allocates nothing, and neither does invoking them per packet.
TEST(InlineFn, LinkAndDelayLineCallbacksAreAllocationFree) {
  netsim::Simulator sim;

  struct CountSink : netsim::PacketSink {
    long delivered = 0;
    void deliver(netsim::Packet) override { ++delivered; }
  };
  CountSink sink;
  // Tiny buffer so the burst below overflows and drops fire.
  netsim::Link link(sim, rate::mbps(10), time::ms(1), 3000, &sink);
  netsim::DelayLine line(sim, time::ms(1), &sink);

  long drops_seen = 0;
  Rng rng(5);
  const long before = allocs();
  link.set_drop_callback([&drops_seen](const netsim::Packet&) {
    ++drops_seen;
  });
  line.set_jitter(time::us(100), [&rng] { return rng.uniform(); });
  EXPECT_EQ(allocs(), before) << "installing the callbacks allocated";

  netsim::Packet p;
  p.kind = netsim::PacketKind::kData;
  p.flow = 0;
  p.size = 1500;
  for (int i = 0; i < 64; ++i) {
    link.deliver(p);
    line.deliver(p);
  }
  sim.run_until(time::sec(1));
  EXPECT_GT(drops_seen, 0);
  EXPECT_GT(sink.delivered, 0L);
  EXPECT_EQ(link.stats().packets_dropped, drops_seen);

  // Steady state: with queues and timers warmed, a second identical burst
  // (per-packet drop callbacks and jitter draws included) is allocation-free.
  const long warmed = allocs();
  for (int i = 0; i < 64; ++i) {
    link.deliver(p);
    line.deliver(p);
  }
  sim.run_until(time::sec(2));
  EXPECT_EQ(allocs(), warmed);
}

// The headline guarantee: after warm-up, a simulator dispatching
// [this]-capture callbacks performs zero heap allocations per event —
// across schedule_in chains, Timer rearm cycles, and cancels.
TEST(EventEngine, SteadyStateDispatchIsAllocationFree) {
  netsim::Simulator sim;

  struct Chain {
    netsim::Simulator* sim;
    long fires = 0;
    void tick() {
      ++fires;
      sim->schedule_in(time::us(3), [this] { tick(); });
    }
  };
  Chain chain{&sim};

  netsim::Timer timer(sim);
  long timer_fires = 0;
  timer.set([&sim, &timer, &timer_fires] {
    ++timer_fires;
    timer.rearm_in(time::us(7));
  });

  // Warm-up: size the slot table, heap, and wheel buckets.
  chain.tick();
  timer.rearm_in(time::us(7));
  sim.run_until(time::ms(50));
  const long warm_fires = chain.fires + timer_fires;
  ASSERT_GT(warm_fires, 1000L);

  // Steady state: tens of thousands of schedule+fire and rearm cycles,
  // plus periodic cancel/re-arm churn, with zero allocations.
  const long before = allocs();
  for (int round = 0; round < 10; ++round) {
    sim.run_until(sim.now() + time::ms(10));
    timer.cancel();
    timer.rearm_in(time::us(5));
  }
  const long after = allocs();
  EXPECT_EQ(after, before);
  EXPECT_GT(chain.fires + timer_fires, warm_fires + 10000L);
  // The workload never outgrows the pre-sized slot table.
  EXPECT_LE(sim.stats().slot_count, netsim::Simulator::kDefaultSizeHint);
}

} // namespace
} // namespace quicbench
