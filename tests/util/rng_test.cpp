#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace quicbench {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(9);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_int(17), 17u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200'000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  const int n = 200'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng fork1 = a.fork(1);
  Rng a2(5);
  Rng fork2 = a2.fork(1);
  // Same parent state + stream id => same stream.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fork1.next_u64(), fork2.next_u64());
  // Different stream ids differ.
  Rng a3(5);
  Rng fork3 = a3.fork(2);
  Rng a4(5);
  Rng fork4 = a4.fork(1);
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (fork3.next_u64() == fork4.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMix64KnownProgression) {
  std::uint64_t s = 0;
  const std::uint64_t v1 = splitmix64(s);
  const std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, 0u);
}

} // namespace
} // namespace quicbench
