#include <gtest/gtest.h>

#include "conformance/conformance.h"
#include "util/rng.h"

namespace quicbench::conformance {
namespace {

using geom::Point;

TrialPoints blob(Point c, double r, int n, Rng& rng) {
  TrialPoints pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({c.x + rng.uniform(-r, r), c.y + rng.uniform(-r, r)});
  }
  return pts;
}

std::vector<TrialPoints> trials_at(Point c, double r, int n_trials, Rng& rng,
                                   int n_points = 100) {
  std::vector<TrialPoints> out;
  for (int t = 0; t < n_trials; ++t) out.push_back(blob(c, r, n_points, rng));
  return out;
}

TEST(Conformance, IdenticalDistributionsNearOne) {
  Rng rng(1);
  const auto ref = trials_at({10, 10}, 2, 3, rng);
  const auto test = trials_at({10, 10}, 2, 3, rng);
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_GT(rep.conformance, 0.75);
  EXPECT_GE(rep.conformance_t, rep.conformance);
}

TEST(Conformance, DisjointDistributionsZero) {
  Rng rng(2);
  const auto ref = trials_at({10, 10}, 1, 3, rng);
  const auto test = trials_at({40, 40}, 1, 3, rng);
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_NEAR(rep.conformance, 0.0, 1e-9);
}

TEST(Conformance, TranslatedDistributionHighConformanceT) {
  // The Conformance-T design goal (Fig 5): a pure shift has low
  // conformance but high conformance-T, and the delta reports the shift.
  Rng rng(3);
  const auto ref = trials_at({10, 10}, 2, 3, rng);
  const auto test = trials_at({10, 19}, 2, 3, rng);  // +9 Mbps offset
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_LT(rep.conformance, 0.1);
  EXPECT_GT(rep.conformance_t, 0.55);
  EXPECT_NEAR(rep.delta_tput_mbps, 9.0, 1.5);
  EXPECT_NEAR(rep.delta_delay_ms, 0.0, 1.5);
}

TEST(Conformance, DeltaSignConvention) {
  // Test slower and lower-delay than reference: both deltas negative.
  Rng rng(4);
  const auto ref = trials_at({20, 15}, 2, 3, rng);
  const auto test = trials_at({15, 9}, 2, 3, rng);
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_LT(rep.delta_tput_mbps, -3.0);
  EXPECT_LT(rep.delta_delay_ms, -2.0);
}

TEST(Conformance, BoundedZeroOne) {
  Rng rng(5);
  const auto ref = trials_at({10, 10}, 3, 2, rng);
  const auto test = trials_at({12, 11}, 3, 2, rng);
  const PerformanceEnvelope pe_ref = build_pe(ref);
  const PerformanceEnvelope pe_test = build_pe(test);
  const double c = conformance(pe_ref, pe_test);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

TEST(Conformance, SymmetricUnderSwap) {
  Rng rng(6);
  const auto a = trials_at({10, 10}, 2, 3, rng);
  const auto b = trials_at({11, 11}, 2, 3, rng);
  const PerformanceEnvelope pa = build_pe(a);
  const PerformanceEnvelope pb = build_pe(b);
  EXPECT_DOUBLE_EQ(conformance(pa, pb), conformance(pb, pa));
}

TEST(Conformance, PartialOverlapIsIntermediate) {
  Rng rng(7);
  const auto ref = trials_at({10, 10}, 3, 3, rng);
  const auto test = trials_at({13, 10}, 3, 3, rng);  // half-overlapping
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_GT(rep.conformance, 0.05);
  EXPECT_LT(rep.conformance, 0.9);
}

TEST(ConformanceT, NeverBelowPlainConformance) {
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    const auto ref = trials_at({10 + i, 10}, 2, 2, rng, 60);
    const auto test = trials_at({12, 11 + i}, 2, 2, rng, 60);
    const PerformanceEnvelope pr = build_pe(ref);
    const PerformanceEnvelope pt = build_pe(test);
    const double c = conformance(pr, pt);
    const TranslationResult tr = best_translation(pr, pt);
    EXPECT_GE(tr.conformance_t, c - 1e-12);
  }
}

TEST(ConformanceT, IdentityWhenAlreadyAligned) {
  Rng rng(9);
  const auto ref = trials_at({10, 10}, 2, 3, rng);
  const auto test = trials_at({10, 10}, 2, 3, rng);
  const PerformanceEnvelope pr = build_pe(ref);
  const PerformanceEnvelope pt = build_pe(test);
  const TranslationResult tr = best_translation(pr, pt);
  EXPECT_NEAR(tr.dx_delay_ms, 0.0, 1.0);
  EXPECT_NEAR(tr.dy_tput_mbps, 0.0, 1.0);
}

TEST(ConformanceT, TwoClusterShiftRecovered) {
  // Both clusters shifted by the same vector: conformance-T recovers it.
  Rng rng(10);
  std::vector<TrialPoints> ref, test;
  for (int t = 0; t < 3; ++t) {
    TrialPoints r = blob({10, 18}, 1.5, 80, rng);
    TrialPoints r2 = blob({25, 3}, 1.5, 40, rng);
    r.insert(r.end(), r2.begin(), r2.end());
    ref.push_back(std::move(r));
    TrialPoints s = blob({10, 24}, 1.5, 80, rng);  // +6 tput
    TrialPoints s2 = blob({25, 9}, 1.5, 40, rng);
    s.insert(s.end(), s2.begin(), s2.end());
    test.push_back(std::move(s));
  }
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_LT(rep.conformance, 0.2);
  EXPECT_GT(rep.conformance_t, 0.5);
  EXPECT_NEAR(rep.delta_tput_mbps, 6.0, 1.5);
}

TEST(TranslatePe, ShiftsEverything) {
  Rng rng(11);
  const auto trials = trials_at({10, 10}, 2, 2, rng);
  const PerformanceEnvelope pe = build_pe(trials);
  const PerformanceEnvelope moved = translate_pe(pe, 5, -3);
  ASSERT_EQ(moved.all_points.size(), pe.all_points.size());
  EXPECT_DOUBLE_EQ(moved.all_points[0].x, pe.all_points[0].x + 5);
  EXPECT_DOUBLE_EQ(moved.all_points[0].y, pe.all_points[0].y - 3);
  EXPECT_TRUE(moved.contains({15, 7}));
}

TEST(Conformance, OldVsNewOnHollowCloud) {
  // The Figure 1 scenario: the test cloud sits in two lobes whose single
  // hull overlaps the reference heavily, but the clustered definition
  // sees through the empty middle.
  Rng rng(12);
  std::vector<TrialPoints> ref, test;
  for (int t = 0; t < 3; ++t) {
    ref.push_back(blob({15, 10}, 2.5, 120, rng));
    TrialPoints s = blob({15, 16}, 1.2, 60, rng);   // above the reference
    TrialPoints s2 = blob({15, 4}, 1.2, 60, rng);   // below the reference
    s.insert(s.end(), s2.begin(), s2.end());
    test.push_back(std::move(s));
  }
  const ConformanceReport rep = evaluate(ref, test);
  EXPECT_LT(rep.conformance, rep.conformance_old + 0.05)
      << "clustered conformance should not exceed the single-hull estimate "
         "on a hollow cloud";
}

} // namespace
} // namespace quicbench::conformance
