// Tests for the quorum-based cross-trial combination: the final PE region
// is the area covered by >= ceil(quorum x trials) of the per-trial hulls.
// quorum = 1.0 reproduces the paper's strict intersection.

#include <gtest/gtest.h>

#include "conformance/pe.h"
#include "util/rng.h"

namespace quicbench::conformance {
namespace {

using geom::Point;

TrialPoints blob(Point c, double r, int n, Rng& rng) {
  TrialPoints pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({c.x + rng.uniform(-r, r), c.y + rng.uniform(-r, r)});
  }
  return pts;
}

TEST(Quorum, StrictEqualsPaperIntersection) {
  Rng rng(1);
  std::vector<TrialPoints> trials;
  for (int t = 0; t < 4; ++t) trials.push_back(blob({10, 10}, 2, 80, rng));

  PeConfig strict;
  strict.trial_quorum = 1.0;
  const auto pe = build_pe_fixed_k(trials, 1, strict);
  ASSERT_EQ(pe.hulls.size(), 1u);
  // Strict intersection must be inside every per-trial hull.
  for (const auto& t : trials) {
    const auto hull = geom::convex_hull(t);
    for (const auto& v : pe.hulls[0]) {
      EXPECT_TRUE(geom::point_in_convex(hull, v, 1e-6));
    }
  }
}

TEST(Quorum, TolerantCoversOutlierTrial) {
  // Four trials overlap; a fifth sits far away (a BBR trial that locked
  // onto the losing share). Strict intersection dies; quorum 0.6 keeps
  // the common region.
  Rng rng(2);
  std::vector<TrialPoints> trials;
  for (int t = 0; t < 4; ++t) trials.push_back(blob({10, 10}, 2, 80, rng));
  trials.push_back(blob({30, 30}, 2, 80, rng));

  PeConfig strict;
  strict.trial_quorum = 1.0;
  const auto strict_pe = build_pe_fixed_k(trials, 1, strict);
  EXPECT_TRUE(strict_pe.hulls.empty());

  PeConfig tolerant;
  tolerant.trial_quorum = 0.6;
  const auto pe = build_pe_fixed_k(trials, 1, tolerant);
  ASSERT_FALSE(pe.hulls.empty());
  EXPECT_TRUE(pe.contains({10, 10}));
}

TEST(Quorum, LowerQuorumRetainsMorePoints) {
  Rng rng(3);
  std::vector<TrialPoints> trials;
  for (int t = 0; t < 5; ++t) {
    trials.push_back(
        blob({10.0 + 0.8 * t, 10.0}, 2, 80, rng));  // drifting trials
  }
  double prev_iou = -1;
  for (const double q : {1.0, 0.8, 0.6, 0.4}) {
    PeConfig cfg;
    cfg.trial_quorum = q;
    const auto pe = build_pe_fixed_k(trials, 1, cfg);
    EXPECT_GE(pe.iou, prev_iou - 1e-9)
        << "IOU must not decrease as the quorum relaxes (q=" << q << ")";
    prev_iou = pe.iou;
  }
}

TEST(Quorum, RegionIsCoveredByEnoughHulls) {
  // Every vertex of every quorum region must lie inside at least
  // ceil(q * trials) per-trial hulls.
  Rng rng(4);
  std::vector<TrialPoints> trials;
  for (int t = 0; t < 5; ++t) {
    trials.push_back(blob({10.0 + 1.5 * t, 10.0}, 3, 60, rng));
  }
  PeConfig cfg;
  cfg.trial_quorum = 0.6;
  const auto pe = build_pe_fixed_k(trials, 1, cfg);
  std::vector<geom::Polygon> hulls;
  for (const auto& t : trials) hulls.push_back(geom::convex_hull(t));
  const int need = 3;  // ceil(0.6 * 5)
  for (const auto& region : pe.hulls) {
    const geom::Point c = geom::polygon_centroid(region);
    int covered = 0;
    for (const auto& h : hulls) {
      if (geom::point_in_convex(h, c, 1e-6)) ++covered;
    }
    EXPECT_GE(covered, need);
  }
}

TEST(Quorum, SingleTrialUnaffected) {
  Rng rng(5);
  const std::vector<TrialPoints> one{blob({5, 5}, 2, 60, rng)};
  for (const double q : {1.0, 0.5}) {
    PeConfig cfg;
    cfg.trial_quorum = q;
    const auto pe = build_pe_fixed_k(one, 1, cfg);
    ASSERT_EQ(pe.hulls.size(), 1u);
    EXPECT_GT(pe.iou, 0.95);
  }
}

} // namespace
} // namespace quicbench::conformance
