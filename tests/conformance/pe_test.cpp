#include <gtest/gtest.h>

#include "conformance/pe.h"
#include "util/rng.h"

namespace quicbench::conformance {
namespace {

using geom::Point;

TrialPoints blob(Point c, double r, int n, Rng& rng) {
  TrialPoints pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({c.x + rng.uniform(-r, r), c.y + rng.uniform(-r, r)});
  }
  return pts;
}

// Trials drawn from two well-separated clusters (BBR-like: ProbeBW +
// ProbeRTT).
std::vector<TrialPoints> two_cluster_trials(int n_trials, Rng& rng) {
  std::vector<TrialPoints> trials;
  for (int t = 0; t < n_trials; ++t) {
    TrialPoints pts = blob({10, 18}, 1.5, 80, rng);
    const TrialPoints low = blob({25, 3}, 1.5, 40, rng);
    pts.insert(pts.end(), low.begin(), low.end());
    trials.push_back(std::move(pts));
  }
  return trials;
}

std::vector<TrialPoints> one_cluster_trials(int n_trials, Rng& rng) {
  std::vector<TrialPoints> trials;
  for (int t = 0; t < n_trials; ++t) {
    trials.push_back(blob({15, 10}, 2.0, 120, rng));
  }
  return trials;
}

TEST(Pe, FixedKBuildsRequestedClusters) {
  Rng rng(1);
  const auto trials = two_cluster_trials(3, rng);
  const PerformanceEnvelope pe = build_pe_fixed_k(trials, 2);
  EXPECT_EQ(pe.k, 2);
  // Quorum regions may split a cluster into several polygons, but the
  // cluster count itself is bounded by k.
  EXPECT_GE(pe.hulls.size(), 1u);
  EXPECT_LE(pe.cluster_centroids.size(), 2u);
  EXPECT_GT(pe.iou, 0.5);
}

TEST(Pe, IouDecreasesWithK) {
  Rng rng(2);
  const auto trials = two_cluster_trials(3, rng);
  const auto curve = iou_curve(trials);
  ASSERT_GE(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 0.12)
        << "R(k) should be (approximately) decreasing";
  }
}

TEST(Pe, SelectKFindsTwoClusters) {
  Rng rng(3);
  const auto trials = two_cluster_trials(4, rng);
  const auto curve = iou_curve(trials);
  const int k = select_k(curve);
  EXPECT_EQ(k, 2);
}

TEST(Pe, SelectKSingleBlob) {
  Rng rng(4);
  const auto trials = one_cluster_trials(4, rng);
  const auto curve = iou_curve(trials);
  const int k = select_k(curve);
  EXPECT_LE(k, 2);
}

TEST(Pe, SelectKEdgeCases) {
  EXPECT_EQ(select_k(std::vector<double>{}), 1);
  EXPECT_EQ(select_k(std::vector<double>{0.9}), 1);
  EXPECT_EQ(select_k(std::vector<double>{0.9, 0.85, 0.4, 0.35}), 2);
}

TEST(Pe, CrossTrialIntersectionShrinksHull) {
  // Two trials shifted against each other: the intersected PE must be
  // smaller than either trial's own hull.
  Rng rng(5);
  TrialPoints t1 = blob({10, 10}, 2.0, 100, rng);
  TrialPoints t2 = blob({11.5, 10}, 2.0, 100, rng);
  const std::vector<TrialPoints> both{t1, t2};
  const PerformanceEnvelope pe = build_pe_fixed_k(both, 1);
  ASSERT_EQ(pe.hulls.size(), 1u);
  const double inter_area = geom::polygon_area(pe.hulls[0]);
  const double h1 = geom::polygon_area(geom::convex_hull(t1));
  EXPECT_LT(inter_area, h1);
}

TEST(Pe, IntersectionActsAsOutlierFilter) {
  // An extreme outlier in one trial must not survive the intersection.
  Rng rng(6);
  TrialPoints t1 = blob({10, 10}, 2.0, 100, rng);
  t1.push_back({50, 50});  // outlier
  const TrialPoints t2 = blob({10, 10}, 2.0, 100, rng);
  const std::vector<TrialPoints> both{t1, t2};
  const PerformanceEnvelope pe = build_pe_fixed_k(both, 1);
  ASSERT_EQ(pe.hulls.size(), 1u);
  EXPECT_FALSE(pe.contains({50, 50}));
}

TEST(Pe, ContainsAndPointsInside) {
  Rng rng(7);
  const auto trials = one_cluster_trials(2, rng);
  const PerformanceEnvelope pe = build_pe_fixed_k(trials, 1);
  EXPECT_TRUE(pe.contains({15, 10}));
  EXPECT_FALSE(pe.contains({100, 100}));
  EXPECT_EQ(pe.points_inside(),
            static_cast<std::size_t>(pe.iou * pe.all_points.size() + 0.5));
}

TEST(Pe, EmptyTrials) {
  const std::vector<TrialPoints> none;
  const PerformanceEnvelope pe = build_pe(none);
  EXPECT_TRUE(pe.hulls.empty());
  EXPECT_EQ(pe.iou, 0.0);
}

TEST(Pe, SingleTrialWorks) {
  Rng rng(8);
  const std::vector<TrialPoints> one{blob({5, 5}, 1.0, 60, rng)};
  const PerformanceEnvelope pe = build_pe(one);
  EXPECT_GE(pe.hulls.size(), 1u);
  EXPECT_GT(pe.iou, 0.9);
}

TEST(Pe, OldDefinitionSingleHull) {
  Rng rng(9);
  const auto trials = two_cluster_trials(3, rng);
  const PerformanceEnvelope pe = build_pe_old(trials);
  EXPECT_EQ(pe.hulls.size(), 1u);
  // A single hull over two separated blobs covers (almost) everything.
  EXPECT_GT(pe.iou, 0.9);
}

TEST(Pe, OldDefinitionTrimsOutliers) {
  Rng rng(10);
  TrialPoints t = blob({10, 10}, 1.0, 100, rng);
  t.push_back({99, 99});
  const std::vector<TrialPoints> trials{t};
  const PerformanceEnvelope pe = build_pe_old(trials, 0.05);
  ASSERT_EQ(pe.hulls.size(), 1u);
  EXPECT_FALSE(pe.contains({99, 99}));
}

TEST(Pe, DeterministicForSeed) {
  Rng rng(11);
  const auto trials = two_cluster_trials(3, rng);
  PeConfig cfg;
  cfg.seed = 123;
  const PerformanceEnvelope a = build_pe(trials, cfg);
  const PerformanceEnvelope b = build_pe(trials, cfg);
  EXPECT_EQ(a.k, b.k);
  ASSERT_EQ(a.hulls.size(), b.hulls.size());
  EXPECT_DOUBLE_EQ(a.iou, b.iou);
}

} // namespace
} // namespace quicbench::conformance
