// Golden-trace regression corpus: one short canonical trial per CCA plus
// one impaired variant each, with event-count and final-stats snapshots
// compared against committed fixtures in tests/golden/. The simulation is
// integer-time and fully seeded, so every snapshot integer is bit-stable
// across platforms; any diff means behaviour actually changed.
//
// Regenerating fixtures after an INTENDED behaviour change:
//
//   QB_REGEN_GOLDEN=1 ./test_golden   (or ctest -R Golden)
//
// then inspect `git diff tests/golden/` and commit the new fixtures with
// an explanation of why behaviour moved. On mismatch the observed
// snapshot is written to ./golden_diff/<scenario>.json (relative to the
// test's working directory) so CI can upload it for triage.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "stacks/registry.h"
#include "util/json.h"

namespace quicbench {
namespace {

struct Scenario {
  std::string name;
  stacks::CcaType cca;
  bool impaired;
};

harness::ExperimentConfig golden_config(bool impaired) {
  harness::ExperimentConfig cfg;  // paper-default dumbbell
  cfg.duration = time::sec(2);
  cfg.trials = 1;
  cfg.seed = 7;
  if (impaired) {
    netsim::ImpairmentConfig& imp = cfg.net.impairment;
    imp.loss_rate = 0.02;
    imp.reorder_rate = 0.01;
    imp.reorder_gap = 3;
    imp.duplicate_rate = 0.005;
    imp.ack_loss_rate = 0.01;
    imp.rtt_step_at = time::sec(1);
    imp.rtt_step_delta = time::ms(20);
  }
  return cfg;
}

std::string snapshot_json(const harness::TrialResult& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "quicbench.golden/v1");
  w.key("flows");
  w.begin_array();
  for (const auto& f : r.flow) {
    const auto& s = f.sender_stats;
    w.begin_object();
    w.kv("packets_sent", s.packets_sent);
    w.kv("retransmissions", s.retransmissions);
    w.kv("losses_detected", s.losses_detected);
    w.kv("spurious_losses", s.spurious_losses);
    w.kv("ptos_fired", s.ptos_fired);
    w.kv("avg_throughput_mbps", rate::to_mbps(f.avg_throughput));
    w.end_object();
  }
  w.end_array();
  w.key("bottleneck");
  w.begin_object();
  w.kv("packets_in", r.bottleneck.packets_in);
  w.kv("packets_out", r.bottleneck.packets_out);
  w.kv("drops", r.bottleneck.drops);
  w.end_object();
  w.kv("sim_events", r.sim_events);
  w.end_object();
  return w.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(QB_GOLDEN_DIR) + "/" + name + ".json";
}

void compare_number(const JsonValue& want, const JsonValue& got,
                    const std::string& where) {
  ASSERT_TRUE(want.is_number() && got.is_number()) << where;
  if (where.find("throughput") != std::string::npos) {
    // Doubles: same arithmetic on every platform, but allow last-ulp
    // wiggle from round-tripping through the fixture text.
    EXPECT_NEAR(got.number, want.number,
                1e-9 * std::max(1.0, std::abs(want.number)))
        << where;
  } else {
    // Event counts and stats are integers: exact or it's a regression.
    EXPECT_EQ(got.number, want.number) << where;
  }
}

void compare_json(const JsonValue& want, const JsonValue& got,
                  const std::string& where) {
  ASSERT_EQ(static_cast<int>(want.type), static_cast<int>(got.type)) << where;
  switch (want.type) {
    case JsonValue::Type::kNumber:
      compare_number(want, got, where);
      break;
    case JsonValue::Type::kString:
      EXPECT_EQ(got.string, want.string) << where;
      break;
    case JsonValue::Type::kArray:
      ASSERT_EQ(got.array.size(), want.array.size()) << where;
      for (std::size_t i = 0; i < want.array.size(); ++i) {
        compare_json(want.array[i], got.array[i],
                     where + "[" + std::to_string(i) + "]");
      }
      break;
    case JsonValue::Type::kObject:
      ASSERT_EQ(got.object.size(), want.object.size()) << where;
      for (std::size_t i = 0; i < want.object.size(); ++i) {
        EXPECT_EQ(got.object[i].first, want.object[i].first) << where;
        compare_json(want.object[i].second, got.object[i].second,
                     where + "." + want.object[i].first);
      }
      break;
    default:
      break;
  }
}

void run_scenario(const Scenario& sc) {
  const auto& ref = stacks::Registry::instance().reference(sc.cca);
  const harness::ExperimentConfig cfg = golden_config(sc.impaired);
  const harness::TrialResult r = harness::run_trial(ref, ref, cfg, 0);
  const std::string observed = snapshot_json(r);

  if (std::getenv("QB_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(fixture_path(sc.name));
    ASSERT_TRUE(out.good()) << "cannot write " << fixture_path(sc.name);
    out << observed << '\n';
    GTEST_SKIP() << "regenerated " << fixture_path(sc.name);
  }

  std::ifstream in(fixture_path(sc.name));
  ASSERT_TRUE(in.good())
      << "missing fixture " << fixture_path(sc.name)
      << " — run with QB_REGEN_GOLDEN=1 and commit tests/golden/";
  std::stringstream buf;
  buf << in.rdbuf();

  std::string err;
  const auto want = json_parse(buf.str(), &err);
  ASSERT_TRUE(want.has_value()) << "bad fixture: " << err;
  const auto got = json_parse(observed, &err);
  ASSERT_TRUE(got.has_value()) << err;

  compare_json(*want, *got, sc.name);
  if (::testing::Test::HasFailure()) {
    // Leave the observed snapshot where CI can pick it up.
    std::filesystem::create_directories("golden_diff");
    std::ofstream diff("golden_diff/" + sc.name + ".json");
    diff << observed << '\n';
    ADD_FAILURE() << "golden mismatch for " << sc.name
                  << "; observed snapshot written to golden_diff/" << sc.name
                  << ".json (regen: QB_REGEN_GOLDEN=1)";
  }
}

TEST(GoldenTrace, RenoCanonical) {
  run_scenario({"reno_canonical", stacks::CcaType::kReno, false});
}
TEST(GoldenTrace, CubicCanonical) {
  run_scenario({"cubic_canonical", stacks::CcaType::kCubic, false});
}
TEST(GoldenTrace, BbrCanonical) {
  run_scenario({"bbr_canonical", stacks::CcaType::kBbr, false});
}
TEST(GoldenTrace, RenoImpaired) {
  run_scenario({"reno_impaired", stacks::CcaType::kReno, true});
}
TEST(GoldenTrace, CubicImpaired) {
  run_scenario({"cubic_impaired", stacks::CcaType::kCubic, true});
}
TEST(GoldenTrace, BbrImpaired) {
  run_scenario({"bbr_impaired", stacks::CcaType::kBbr, true});
}
TEST(GoldenTrace, Bbr2Canonical) {
  run_scenario({"bbr2_canonical", stacks::CcaType::kBbr2, false});
}
TEST(GoldenTrace, Bbr2Impaired) {
  run_scenario({"bbr2_impaired", stacks::CcaType::kBbr2, true});
}
TEST(GoldenTrace, CubicRackCanonical) {
  run_scenario({"cubic_rack_canonical", stacks::CcaType::kCubicRack, false});
}
TEST(GoldenTrace, CubicRackImpaired) {
  run_scenario({"cubic_rack_impaired", stacks::CcaType::kCubicRack, true});
}

} // namespace
} // namespace quicbench
