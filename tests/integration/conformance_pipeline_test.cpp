// The full paper pipeline on the simulator: measure conformance of QUIC
// implementations against the kernel reference and check that the key
// qualitative findings hold (conformant stacks score high, the documented
// deviants score low, and fixes recover conformance).
//
// These use shorter runs / fewer trials than the benches, so thresholds
// are deliberately loose.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace quicbench::harness {
namespace {

using stacks::CcaType;
using stacks::Registry;

ExperimentConfig quick_config(double buffer_bdp) {
  ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(20);
  cfg.net.base_rtt = time::ms(10);
  cfg.net.buffer_bdp = buffer_bdp;
  cfg.duration = time::sec(40);
  cfg.trials = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(ConformancePipeline, ReferenceAgainstItselfIsHigh) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto rep = measure_conformance(ref, ref, quick_config(1.0));
  EXPECT_GT(rep.conformance, 0.5);
}

TEST(ConformancePipeline, ConformantQuicCubicScoresWell) {
  const auto* msquic = Registry::instance().find("msquic", CcaType::kCubic);
  ASSERT_NE(msquic, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto rep = measure_conformance(*msquic, ref, quick_config(1.0));
  EXPECT_GT(rep.conformance, 0.4);
}

TEST(ConformancePipeline, MvfstBbrLowConformanceHighConfT) {
  const auto* mvfst = Registry::instance().find("mvfst", CcaType::kBbr);
  ASSERT_NE(mvfst, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kBbr);
  const auto rep = measure_conformance(*mvfst, ref, quick_config(1.0));
  EXPECT_LT(rep.conformance, 0.45);
  EXPECT_GT(rep.conformance_t, rep.conformance + 0.1);
  EXPECT_GT(rep.delta_tput_mbps, 1.0) << "mvfst BBR sends hot";
}

TEST(ConformancePipeline, NeqoCubicZeroConformanceNegativeDelta) {
  const auto* neqo = Registry::instance().find("neqo", CcaType::kCubic);
  ASSERT_NE(neqo, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto rep = measure_conformance(*neqo, ref, quick_config(1.0));
  EXPECT_LT(rep.conformance, 0.25);
  EXPECT_LT(rep.delta_tput_mbps, -1.0) << "neqo undershoots";
}

TEST(ConformancePipeline, MvfstFixRecoversConformance) {
  const auto* mvfst = Registry::instance().find("mvfst", CcaType::kBbr);
  ASSERT_NE(mvfst, nullptr);
  const auto fixed = stacks::fixed_variant(*mvfst);
  ASSERT_TRUE(fixed.has_value());
  const auto& ref = Registry::instance().reference(CcaType::kBbr);
  ExperimentConfig cfg = quick_config(1.0);
  cfg.duration = time::sec(60);  // BBR PEs need longer runs to stabilise
  cfg.trials = 4;
  const auto before = measure_conformance(*mvfst, ref, cfg);
  const auto after = measure_conformance(*fixed, ref, cfg);
  EXPECT_GT(after.conformance, before.conformance + 0.05);
}

TEST(ConformancePipeline, ReportFieldsPopulated) {
  const auto* quinn = Registry::instance().find("quinn", CcaType::kReno);
  ASSERT_NE(quinn, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kReno);
  const auto rep = measure_conformance(*quinn, ref, quick_config(1.0));
  EXPECT_FALSE(rep.ref_pe.all_points.empty());
  EXPECT_FALSE(rep.test_pe.all_points.empty());
  EXPECT_GE(rep.conformance_t, rep.conformance - 1e-12);
  EXPECT_GE(rep.conformance, 0.0);
  EXPECT_LE(rep.conformance, 1.0);
}

} // namespace
} // namespace quicbench::harness
