// Registry-wide sweep: every (stack, CCA) implementation of Table 1 must
// drive a flow end-to-end — sane throughput, no PTO storms, bounded
// retransmissions — both solo and against its kernel reference. Catches
// profile misconfigurations (e.g. a flow-control cap that deadlocks).

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace quicbench::harness {
namespace {

using stacks::Implementation;
using stacks::Registry;

class EveryImplementation
    : public ::testing::TestWithParam<const Implementation*> {};

TEST_P(EveryImplementation, SoloFlowMakesProgress) {
  const Implementation& impl = *GetParam();
  ExperimentConfig cfg;
  cfg.duration = time::sec(15);
  cfg.trials = 1;
  // Solo: run against itself (two flows of the same implementation).
  const TrialResult tr = run_trial(impl, impl, cfg, 0);
  const double total = rate::to_mbps(tr.flow[0].avg_throughput) +
                       rate::to_mbps(tr.flow[1].avg_throughput);
  EXPECT_GT(total, 5.0) << impl.display << " underutilises the link";
  EXPECT_LE(total, 20.3) << impl.display << " exceeds link capacity";
}

TEST_P(EveryImplementation, AgainstReferenceIsLive) {
  const Implementation& impl = *GetParam();
  const Implementation& ref = Registry::instance().reference(impl.cca);
  ExperimentConfig cfg;
  cfg.duration = time::sec(15);
  cfg.trials = 1;
  const TrialResult tr = run_trial(impl, ref, cfg, 0);
  // Both flows deliver something; no starvation-to-zero.
  EXPECT_GT(rate::to_mbps(tr.flow[0].avg_throughput), 0.2) << impl.display;
  EXPECT_GT(rate::to_mbps(tr.flow[1].avg_throughput), 0.2)
      << "reference starved by " << impl.display;
  // No PTO storm (the flow stays ack-clocked).
  EXPECT_LT(tr.flow[0].sender_stats.ptos_fired, 20) << impl.display;
  // Retransmissions bounded (< 40% of packets even for the deviants).
  const auto& st = tr.flow[0].sender_stats;
  EXPECT_LT(st.retransmissions,
            std::max<std::int64_t>(st.packets_sent * 2 / 5, 50))
      << impl.display;
}

TEST_P(EveryImplementation, PointCloudsNonEmpty) {
  const Implementation& impl = *GetParam();
  const Implementation& ref = Registry::instance().reference(impl.cca);
  ExperimentConfig cfg;
  cfg.duration = time::sec(15);
  cfg.trials = 1;
  const TrialResult tr = run_trial(impl, ref, cfg, 0);
  EXPECT_GT(tr.flow[0].points.size(), 50u) << impl.display;
  for (const auto& p : tr.flow[0].points) {
    EXPECT_GT(p.delay_ms, 0) << impl.display;
    EXPECT_GE(p.tput_mbps, 0) << impl.display;
    EXPECT_LE(p.tput_mbps, 20.5) << impl.display;
  }
}

std::vector<const Implementation*> all_impls() {
  std::vector<const Implementation*> out;
  for (const auto& impl : Registry::instance().all()) out.push_back(&impl);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EveryImplementation, ::testing::ValuesIn(all_impls()),
    [](const ::testing::TestParamInfo<const Implementation*>& info) {
      std::string name = info.param->stack + "_" +
                         stacks::to_string(info.param->cca);
      for (char& c : name) {
        if (c == '-') c = '_';  // gtest names reject '-' (cubic-rack)
      }
      return name;
    });

} // namespace
} // namespace quicbench::harness
