// End-to-end behaviour of complete two-flow experiments: utilisation,
// fair sharing between identical implementations, and the classic
// CUBIC-vs-BBR buffer-dependent outcomes the paper's §4.4 relies on.

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace quicbench::harness {
namespace {

using stacks::CcaType;
using stacks::Registry;

ExperimentConfig quick_config(double buffer_bdp, Rate bw = rate::mbps(20),
                              Time rtt = time::ms(10)) {
  ExperimentConfig cfg;
  cfg.net.bandwidth = bw;
  cfg.net.base_rtt = rtt;
  cfg.net.buffer_bdp = buffer_bdp;
  cfg.duration = time::sec(30);
  cfg.trials = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(Convergence, TwoKernelCubicFlowsShareFairly) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const PairResult pr = run_pair(ref, ref, quick_config(1.0));
  EXPECT_NEAR(pr.share_a, 0.5, 0.12);
  // Link near-saturated.
  EXPECT_GT(pr.tput_a_mbps + pr.tput_b_mbps, 17.0);
}

TEST(Convergence, TwoKernelRenoFlowsShareFairly) {
  const auto& ref = Registry::instance().reference(CcaType::kReno);
  const PairResult pr = run_pair(ref, ref, quick_config(1.0));
  EXPECT_NEAR(pr.share_a, 0.5, 0.15);
  EXPECT_GT(pr.tput_a_mbps + pr.tput_b_mbps, 16.0);
}

TEST(Convergence, TwoKernelBbrFlowsShareFairly) {
  const auto& ref = Registry::instance().reference(CcaType::kBbr);
  const PairResult pr = run_pair(ref, ref, quick_config(1.0));
  EXPECT_NEAR(pr.share_a, 0.5, 0.15);
  EXPECT_GT(pr.tput_a_mbps + pr.tput_b_mbps, 16.0);
}

TEST(Convergence, BbrBeatsCubicInShallowBuffer) {
  // §4.4: "BBR will achieve higher bandwidth than CUBIC ... in shallow
  // buffers due to CUBIC backing off frequently and BBR being largely
  // loss-agnostic."
  const auto& cubic = Registry::instance().reference(CcaType::kCubic);
  const auto& bbr = Registry::instance().reference(CcaType::kBbr);
  const PairResult pr = run_pair(bbr, cubic, quick_config(0.5));
  EXPECT_GT(pr.share_a, 0.55) << "BBR should win in shallow buffers";
}

TEST(Convergence, CubicBeatsBbrInDeepBuffer) {
  // §4.4: "CUBIC is expected to achieve higher throughput than BBR in
  // deep buffers since CUBIC is a buffer-filler."
  const auto& cubic = Registry::instance().reference(CcaType::kCubic);
  const auto& bbr = Registry::instance().reference(CcaType::kBbr);
  const PairResult pr = run_pair(cubic, bbr, quick_config(5.0));
  EXPECT_GT(pr.share_a, 0.55) << "CUBIC should win in deep buffers";
}

TEST(Convergence, DeepBufferInflatesDelay) {
  const auto& cubic = Registry::instance().reference(CcaType::kCubic);
  const PairResult shallow = run_pair(cubic, cubic, quick_config(0.5));
  const PairResult deep = run_pair(cubic, cubic, quick_config(5.0));
  const auto mean_delay = [](const PairResult& pr) {
    double sum = 0;
    int n = 0;
    for (const auto& trial : pr.points_a) {
      for (const auto& p : trial) {
        sum += p.x;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  EXPECT_GT(mean_delay(deep), mean_delay(shallow) * 1.5);
}

TEST(Convergence, TrialsDifferButAreDeterministic) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const ExperimentConfig cfg = quick_config(1.0);
  const TrialResult t0 = run_trial(ref, ref, cfg, 0);
  const TrialResult t1 = run_trial(ref, ref, cfg, 1);
  const TrialResult t0_again = run_trial(ref, ref, cfg, 0);
  // Same trial index reproduces exactly.
  ASSERT_EQ(t0.flow[0].points.size(), t0_again.flow[0].points.size());
  for (std::size_t i = 0; i < t0.flow[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(t0.flow[0].points[i].tput_mbps,
                     t0_again.flow[0].points[i].tput_mbps);
  }
  // Different trial indices differ.
  bool differs = t0.flow[0].points.size() != t1.flow[0].points.size();
  for (std::size_t i = 0;
       !differs && i < t0.flow[0].points.size() && i < t1.flow[0].points.size();
       ++i) {
    differs = t0.flow[0].points[i].tput_mbps != t1.flow[0].points[i].tput_mbps;
  }
  EXPECT_TRUE(differs);
}

TEST(Convergence, MvfstBbrOverTakesReference) {
  // mvfst BBR paces 20% hot: against the kernel BBR it takes the larger
  // share (the root of its Table 3 entry).
  const auto* mvfst = Registry::instance().find("mvfst", CcaType::kBbr);
  ASSERT_NE(mvfst, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kBbr);
  const PairResult pr = run_pair(*mvfst, ref, quick_config(1.0));
  EXPECT_GT(pr.share_a, 0.55);
}

TEST(Convergence, NeqoCubicStarvedByFlowControl) {
  const auto* neqo = Registry::instance().find("neqo", CcaType::kCubic);
  ASSERT_NE(neqo, nullptr);
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const PairResult pr = run_pair(*neqo, ref, quick_config(1.0));
  EXPECT_LT(pr.share_a, 0.45);
}

TEST(Convergence, WildConfigRunsWithCrossTraffic) {
  ExperimentConfig cfg = quick_config(1.0, rate::mbps(20), time::ms(10));
  cfg.net.path_jitter = time::ms(1);
  cfg.net.cross_traffic_rate = rate::mbps(2);
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const PairResult pr = run_pair(ref, ref, cfg);
  EXPECT_GT(pr.tput_a_mbps + pr.tput_b_mbps, 10.0);
  EXPECT_LT(pr.tput_a_mbps + pr.tput_b_mbps, 20.5);
}

} // namespace
} // namespace quicbench::harness
