#include <gtest/gtest.h>

#include "util/units.h"

namespace quicbench {
namespace {

TEST(Units, TimeConstructors) {
  EXPECT_EQ(time::ns(5), 5);
  EXPECT_EQ(time::us(5), 5'000);
  EXPECT_EQ(time::ms(5), 5'000'000);
  EXPECT_EQ(time::sec(5), 5'000'000'000LL);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(time::to_sec(time::sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(time::to_ms(time::ms(250)), 250.0);
  EXPECT_DOUBLE_EQ(time::to_us(time::us(7)), 7.0);
  EXPECT_EQ(time::from_sec(1.5), time::ms(1500));
  EXPECT_EQ(time::from_ms(2.5), time::us(2500));
}

TEST(Units, RateConstructors) {
  EXPECT_DOUBLE_EQ(rate::mbps(20), 20e6);
  EXPECT_DOUBLE_EQ(rate::kbps(3), 3e3);
  EXPECT_DOUBLE_EQ(rate::gbps(1), 1e9);
  EXPECT_DOUBLE_EQ(rate::to_mbps(rate::mbps(42)), 42.0);
}

TEST(Units, SerializationTime) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(serialization_time(1500, rate::mbps(12)), time::ms(1));
  // 1 byte at 8 Gbps = 1 ns.
  EXPECT_EQ(serialization_time(1, rate::gbps(8)), 1);
}

TEST(Units, BdpBytes) {
  // 20 Mbps x 10 ms = 25,000 bytes.
  EXPECT_EQ(bdp_bytes(rate::mbps(20), time::ms(10)), 25'000);
  // 100 Mbps x 50 ms = 625,000 bytes.
  EXPECT_EQ(bdp_bytes(rate::mbps(100), time::ms(50)), 625'000);
}

TEST(Units, RateOf) {
  // 25,000 bytes over 10 ms = 20 Mbps.
  EXPECT_DOUBLE_EQ(rate_of(25'000, time::ms(10)), 20e6);
  EXPECT_DOUBLE_EQ(rate_of(1000, 0), 0.0);
}

} // namespace
} // namespace quicbench
