// Two-world equivalence for the vectorized kmeans: a plain scalar
// reference implementation of the full pipeline (kmeans++ seeding,
// restarts, Lloyd with nearest-centroid assignment) is run against
// cluster::kmeans on randomized clouds with identically seeded RNGs.
// Assignments, centroids, and inertia must match exactly — bitwise for
// the doubles — because the vector kernels perform the same IEEE ops
// per lane and all order-dependent accumulations stay scalar.

#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace quicbench::cluster {
namespace {

using geom::Point;

double ref_sqdist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::vector<Point> ref_seed(std::span<const Point> pts, int k, Rng& rng) {
  std::vector<Point> centroids;
  centroids.push_back(pts[rng.uniform_int(pts.size())]);
  const std::size_t n = pts.size();
  std::vector<double> d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    d2[i] = ref_sqdist(pts[i], centroids[0]);
  }
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0;
    for (const double d : d2) total += d;
    if (total <= 0) {
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      r -= d2[i];
      if (r <= 0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(pts[pick]);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = ref_sqdist(pts[i], centroids.back());
      if (d < d2[i]) d2[i] = d;
    }
  }
  return centroids;
}

KMeansResult ref_lloyd(std::span<const Point> pts,
                       std::vector<Point> centroids, int max_iters) {
  const std::size_t n = pts.size();
  const int k = static_cast<int>(centroids.size());
  KMeansResult res;
  res.assignment.assign(n, 0);
  std::vector<Point> sums(static_cast<std::size_t>(k));
  std::vector<int> counts(static_cast<std::size_t>(k), 0);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double bd = std::numeric_limits<double>::max();
      int b = 0;
      for (int c = 0; c < k; ++c) {
        const double d = ref_sqdist(pts[i], centroids[static_cast<std::size_t>(c)]);
        if (d < bd) {
          bd = d;
          b = c;
        }
      }
      if (res.assignment[i] != b) {
        res.assignment[i] = b;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::fill(sums.begin(), sums.end(), Point{});
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      sums[c].x += pts[i].x;
      sums[c].y += pts[i].y;
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (counts[ci] == 0) {
        std::size_t far = 0;
        double fard = -1;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = ref_sqdist(
              pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
          if (d > fard) {
            fard = d;
            far = i;
          }
        }
        centroids[ci] = pts[far];
      } else {
        centroids[ci] = {sums[ci].x / counts[ci], sums[ci].y / counts[ci]};
      }
    }
  }

  res.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia += ref_sqdist(
        pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
  }
  res.centroids = std::move(centroids);
  return res;
}

KMeansResult ref_kmeans(std::span<const Point> pts, int k, Rng& rng,
                        const KMeansConfig& cfg = {}) {
  KMeansResult best;
  if (pts.empty() || k <= 0) return best;
  {
    std::vector<Point> seen;
    for (const Point& p : pts) {
      if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
        seen.push_back(p);
        if (static_cast<int>(seen.size()) >= k) break;
      }
    }
    k = std::min<int>(k, static_cast<int>(seen.size()));
  }
  if (k <= 0) return best;
  best.inertia = std::numeric_limits<double>::max();
  for (int r = 0; r < std::max(cfg.restarts, 1); ++r) {
    KMeansResult cand = ref_lloyd(pts, ref_seed(pts, k, rng), cfg.max_iters);
    if (cand.inertia < best.inertia) best = std::move(cand);
  }
  return best;
}

std::vector<Point> make_cloud(Rng& rng, int n) {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Three loose blobs plus a few exact repeats (tie coverage).
    const int blob = static_cast<int>(rng.uniform_int(3));
    const double cx = 10.0 * blob;
    const double cy = 5.0 * blob;
    pts.push_back({rng.normal(cx, 2.0), rng.normal(cy, 1.5)});
    if (i % 17 == 0 && !pts.empty()) pts.push_back(pts.front());
  }
  return pts;
}

TEST(KMeansEquivalence, MatchesScalarReferenceExactly) {
  Rng meta(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30 + static_cast<int>(meta.uniform_int(400));
    const int k = 1 + static_cast<int>(meta.uniform_int(6));
    const std::uint64_t seed = meta.next_u64();
    Rng cloud_rng(seed);
    const std::vector<Point> pts = make_cloud(cloud_rng, n);

    Rng ra(seed ^ 0x9e3779b97f4a7c15ull);
    Rng rb(seed ^ 0x9e3779b97f4a7c15ull);
    const KMeansResult got = kmeans(pts, k, ra);
    const KMeansResult want = ref_kmeans(pts, k, rb);

    ASSERT_EQ(got.assignment, want.assignment)
        << "trial " << trial << " n=" << n << " k=" << k;
    ASSERT_EQ(got.centroids.size(), want.centroids.size());
    for (std::size_t c = 0; c < got.centroids.size(); ++c) {
      EXPECT_EQ(got.centroids[c].x, want.centroids[c].x);
      EXPECT_EQ(got.centroids[c].y, want.centroids[c].y);
    }
    EXPECT_EQ(got.inertia, want.inertia);
  }
}

} // namespace
} // namespace quicbench::cluster
