#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"

namespace quicbench::cluster {
namespace {

using geom::Point;

std::vector<Point> blob(Point center, double radius, int n, Rng& rng) {
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({center.x + rng.uniform(-radius, radius),
                   center.y + rng.uniform(-radius, radius)});
  }
  return pts;
}

TEST(KMeans, TwoWellSeparatedBlobs) {
  Rng rng(1);
  std::vector<Point> pts = blob({0, 0}, 1, 100, rng);
  const auto b2 = blob({10, 10}, 1, 100, rng);
  pts.insert(pts.end(), b2.begin(), b2.end());

  Rng krng(2);
  const KMeansResult res = kmeans(pts, 2, krng);
  ASSERT_EQ(res.centroids.size(), 2u);
  // One centroid near each blob.
  std::vector<double> d0, d1;
  for (const auto& c : res.centroids) {
    d0.push_back(geom::distance(c, {0, 0}));
    d1.push_back(geom::distance(c, {10, 10}));
  }
  EXPECT_LT(*std::min_element(d0.begin(), d0.end()), 1.0);
  EXPECT_LT(*std::min_element(d1.begin(), d1.end()), 1.0);
  // Assignments consistent: first 100 together, last 100 together.
  for (int i = 1; i < 100; ++i) EXPECT_EQ(res.assignment[0], res.assignment[i]);
  for (int i = 101; i < 200; ++i) {
    EXPECT_EQ(res.assignment[100], res.assignment[i]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[100]);
}

TEST(KMeans, InertiaDecreasesWithK) {
  Rng rng(3);
  std::vector<Point> pts = blob({0, 0}, 2, 80, rng);
  auto more = blob({6, 1}, 2, 80, rng);
  pts.insert(pts.end(), more.begin(), more.end());
  more = blob({3, 8}, 2, 80, rng);
  pts.insert(pts.end(), more.begin(), more.end());

  double prev = 1e300;
  for (int k = 1; k <= 5; ++k) {
    Rng krng(10 + static_cast<std::uint64_t>(k));
    const KMeansResult res = kmeans(pts, k, krng);
    EXPECT_LE(res.inertia, prev + 1e-9);
    prev = res.inertia;
  }
}

TEST(KMeans, KClampedToDistinctPoints) {
  std::vector<Point> pts{{1, 1}, {1, 1}, {2, 2}};
  Rng rng(4);
  const KMeansResult res = kmeans(pts, 5, rng);
  EXPECT_EQ(res.centroids.size(), 2u);
}

TEST(KMeans, EmptyInput) {
  Rng rng(5);
  const KMeansResult res = kmeans(std::vector<Point>{}, 3, rng);
  EXPECT_TRUE(res.centroids.empty());
  EXPECT_TRUE(res.assignment.empty());
}

TEST(KMeans, SinglePointSingleCluster) {
  std::vector<Point> pts{{3, 4}};
  Rng rng(6);
  const KMeansResult res = kmeans(pts, 1, rng);
  ASSERT_EQ(res.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(res.centroids[0].x, 3);
  EXPECT_DOUBLE_EQ(res.centroids[0].y, 4);
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng data_rng(7);
  std::vector<Point> pts = blob({0, 0}, 3, 200, data_rng);
  Rng r1(42), r2(42);
  const KMeansResult a = kmeans(pts, 3, r1);
  const KMeansResult b = kmeans(pts, 3, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(MatchClusters, IdentityWhenEqual) {
  const std::vector<Point> c{{0, 0}, {5, 5}, {9, 0}};
  const auto m = match_clusters(c, c);
  EXPECT_EQ(m, (std::vector<int>{0, 1, 2}));
}

TEST(MatchClusters, FindsPermutation) {
  const std::vector<Point> ref{{0, 0}, {5, 5}, {9, 0}};
  const std::vector<Point> cand{{9.1, 0.1}, {0.1, -0.1}, {5.2, 4.9}};
  const auto m = match_clusters(ref, cand);
  EXPECT_EQ(m, (std::vector<int>{1, 2, 0}));
}

TEST(MatchClusters, FewerCandidatesLeaveUnmatched) {
  const std::vector<Point> ref{{0, 0}, {5, 5}, {9, 0}};
  const std::vector<Point> cand{{5, 5}};
  const auto m = match_clusters(ref, cand);
  int matched = 0;
  for (int v : m) {
    if (v >= 0) ++matched;
  }
  EXPECT_EQ(matched, 1);
  EXPECT_EQ(m[1], 0);
}

TEST(MatchClusters, GreedyPathForLargeK) {
  std::vector<Point> ref, cand;
  for (int i = 0; i < 9; ++i) {
    ref.push_back({static_cast<double>(i) * 10, 0});
    cand.push_back({static_cast<double>(8 - i) * 10 + 0.5, 0.1});
  }
  const auto m = match_clusters(ref, cand);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(m[static_cast<std::size_t>(i)], 8 - i);
}

TEST(Normalizer, ZScoresData) {
  std::vector<Point> pts{{0, 100}, {10, 200}, {20, 300}};
  const Normalizer n = Normalizer::fit(pts);
  const auto out = n.apply_all(pts);
  // Mean should be ~0 in both axes.
  double mx = 0, my = 0;
  for (const auto& p : out) {
    mx += p.x;
    my += p.y;
  }
  EXPECT_NEAR(mx / 3, 0, 1e-12);
  EXPECT_NEAR(my / 3, 0, 1e-12);
  // Symmetric spread.
  EXPECT_NEAR(out[0].x, -out[2].x, 1e-12);
  EXPECT_NEAR(out[0].y, -out[2].y, 1e-12);
}

TEST(Normalizer, ConstantAxisSafe) {
  std::vector<Point> pts{{5, 1}, {5, 2}, {5, 3}};
  const Normalizer n = Normalizer::fit(pts);
  const auto out = n.apply_all(pts);
  for (const auto& p : out) EXPECT_TRUE(std::isfinite(p.x));
}

} // namespace
} // namespace quicbench::cluster
