// Randomized impairment stress: 1000 seeded scenarios sweeping loss /
// reorder / duplication / burst / ACK-loss / RTT-step parameters through
// the full harness, rotating the CCA under test. Every trial runs with
// the invariant checker live (run_trial throws std::logic_error on any
// accounting violation), so "the test passes" means one thousand
// adversarial trials with zero invariant hits — including total
// blackouts (100% forward loss, 100% ACK loss), where the assertion is
// simply that the trial terminates instead of livelocking.
//
// Scenario parameters are a pure function of the scenario index via a
// seeded Rng, so a failure reproduces from its index alone. Sharded into
// four gtest cases so ctest -j runs them in parallel.

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.h"
#include "netsim/impairment.h"
#include "stacks/registry.h"
#include "util/rng.h"

namespace quicbench {
namespace {

constexpr int kScenarios = 1000;
constexpr int kShards = 4;

harness::ExperimentConfig scenario_config(int idx) {
  // Derive every knob from the scenario index; uniform() draws happen in
  // a fixed order so configs are stable across runs and platforms.
  Rng rng(0xABCDEF00u + static_cast<std::uint64_t>(idx));
  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(10 + 30 * rng.uniform());
  cfg.net.base_rtt = time::ms(5 + static_cast<std::int64_t>(25 * rng.uniform()));
  cfg.net.buffer_bdp = 0.5 + 1.5 * rng.uniform();
  cfg.duration = time::ms(150);
  cfg.trials = 1;
  cfg.seed = 1000 + static_cast<std::uint64_t>(idx);

  netsim::ImpairmentConfig& imp = cfg.net.impairment;
  imp.loss_rate = 0.1 * rng.uniform();
  if (rng.uniform() < 0.3) {
    imp.ge_p_good_to_bad = 0.05 * rng.uniform();
    imp.ge_p_bad_to_good = 0.1 + 0.4 * rng.uniform();
    imp.ge_loss_bad = 0.3 + 0.7 * rng.uniform();
  }
  imp.reorder_rate = 0.05 * rng.uniform();
  imp.reorder_gap = 1 + static_cast<int>(8 * rng.uniform());
  imp.duplicate_rate = 0.02 * rng.uniform();
  imp.ack_loss_rate = 0.1 * rng.uniform();
  if (rng.uniform() < 0.25) {
    imp.rtt_step_at = time::ms(static_cast<std::int64_t>(100 * rng.uniform()));
    imp.rtt_step_delta =
        time::ms(1 + static_cast<std::int64_t>(20 * rng.uniform()));
  }
  // Blackout corners: no data ever delivered / no ACK ever returned. The
  // trial must still terminate (PTO backoff, bounded duration).
  if (idx % 97 == 0) imp.loss_rate = 1.0;
  if (idx % 101 == 0) imp.ack_loss_rate = 1.0;
  return cfg;
}

void run_shard(int shard) {
  const auto& reg = stacks::Registry::instance();
  const stacks::CcaType ccas[] = {stacks::CcaType::kReno,
                                  stacks::CcaType::kCubic,
                                  stacks::CcaType::kBbr};
  for (int idx = shard; idx < kScenarios; idx += kShards) {
    const harness::ExperimentConfig cfg = scenario_config(idx);
    const auto& impl = reg.reference(ccas[idx % 3]);
    ASSERT_NO_THROW({
      const harness::TrialResult r = harness::run_trial(impl, impl, cfg, 0);
      EXPECT_GT(r.sim_events, 0u);
    }) << "scenario " << idx << " [" << cfg.net.impairment.describe() << "]";
  }
}

TEST(ImpairmentStress, Shard0) { run_shard(0); }
TEST(ImpairmentStress, Shard1) { run_shard(1); }
TEST(ImpairmentStress, Shard2) { run_shard(2); }
TEST(ImpairmentStress, Shard3) { run_shard(3); }

} // namespace
} // namespace quicbench
