// Two-world equivalence for the Link's same-tick delivery batching: with
// serialization collapsed to zero (tiny packets over a huge-bandwidth
// link) every queued packet arrives at the same propagation tick, and
// the batched world must produce the identical delivery stream — same
// packets, same order, same arrival ticks — while firing strictly fewer
// events. A foreign event pending at the arrival tick must disable the
// drain (the probe-gated bail path is byte-identical to the unbatched
// code).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netsim/event.h"
#include "netsim/link.h"
#include "util/units.h"

namespace quicbench::netsim {
namespace {

class Recorder : public PacketSink {
 public:
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override {
    times.push_back(sim_.now());
    pns.push_back(p.pn);
  }
  std::vector<Time> times;
  std::vector<std::uint64_t> pns;

 private:
  Simulator& sim_;
};

struct World {
  std::uint64_t events = 0;
  std::int64_t batched = 0;
  std::vector<Time> times;
  std::vector<std::uint64_t> pns;
};

// `foreign` schedules a no-op event at the arrival tick with a sequence
// number above the propagation timer's, so it is pending when the first
// prop fire runs its probe and the drain must bail on that fire.
World run_world(bool batch, int n_packets, bool foreign) {
  Simulator sim;
  Recorder rec(sim);
  Link link(sim, rate::gbps(1000), time::ms(2), 1 << 20, &rec);
  link.set_batch_same_tick_delivery(batch);
  sim.schedule_in(0, [&sim, &link, n_packets, foreign] {
    for (int i = 0; i < n_packets; ++i) {
      Packet p;
      p.kind = PacketKind::kData;
      p.flow = 0;
      p.size = 100;  // 100 B at 1 Tbps: serialization rounds to 0 ns
      p.pn = static_cast<std::uint64_t>(i);
      link.deliver(std::move(p));
    }
    if (foreign) {
      // Nested so the no-op is scheduled after the first transmit
      // completion armed the prop timer (later sequence number).
      sim.schedule_in(0, [&sim] { sim.schedule_in(time::ms(2), [] {}); });
    }
  });
  sim.run_until(time::ms(10));
  World w;
  w.events = sim.events_fired();
  w.batched = link.stats().same_tick_batched;
  w.times = rec.times;
  w.pns = rec.pns;
  return w;
}

TEST(LinkBatchSameTick, IdenticalDeliveriesFewerEvents) {
  const World off = run_world(false, 16, false);
  const World on = run_world(true, 16, false);

  ASSERT_EQ(off.pns.size(), 16u);
  EXPECT_EQ(on.pns, off.pns);
  EXPECT_EQ(on.times, off.times);
  // All 16 arrive at the same tick, so one fire drains 15 extra packets.
  EXPECT_EQ(off.batched, 0);
  EXPECT_EQ(on.batched, 15);
  EXPECT_EQ(on.events, off.events - 15);
}

TEST(LinkBatchSameTick, ForeignPendingEventDisablesDrain) {
  // A foreign no-op pending at the arrival tick forces the first prop
  // fire down the unbatched bail path (delivering exactly one packet).
  // Once the no-op has fired the probe clears and the second fire drains
  // the remaining six — so of 8 same-tick packets, 6 batch instead of 7,
  // and the delivery stream is still identical.
  const World off = run_world(false, 8, true);
  const World on = run_world(true, 8, true);

  ASSERT_EQ(off.pns.size(), 8u);
  EXPECT_EQ(on.pns, off.pns);
  EXPECT_EQ(on.times, off.times);
  EXPECT_EQ(off.batched, 0);
  EXPECT_EQ(on.batched, 6);
  EXPECT_EQ(on.events, off.events - 6);
}

TEST(LinkBatchSameTick, DistinctTicksNeverBatch) {
  // Realistic serialization (distinct completion times): batching can
  // never engage, and the worlds are identical in every respect.
  auto run = [](bool batch) {
    Simulator sim;
    Recorder rec(sim);
    Link link(sim, rate::mbps(40), time::ms(2), 1 << 20, &rec);
    link.set_batch_same_tick_delivery(batch);
    sim.schedule_in(0, [&] {
      for (int i = 0; i < 12; ++i) {
        Packet p;
        p.kind = PacketKind::kData;
        p.flow = 0;
        p.size = 1500;
        p.pn = static_cast<std::uint64_t>(i);
        link.deliver(std::move(p));
      }
    });
    sim.run_until(time::ms(50));
    World w;
    w.events = sim.events_fired();
    w.batched = link.stats().same_tick_batched;
    w.times = rec.times;
    w.pns = rec.pns;
    return w;
  };
  const World off = run(false);
  const World on = run(true);
  EXPECT_EQ(on.pns, off.pns);
  EXPECT_EQ(on.times, off.times);
  EXPECT_EQ(on.events, off.events);
  EXPECT_EQ(on.batched, 0);
}

} // namespace
} // namespace quicbench::netsim
