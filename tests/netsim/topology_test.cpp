#include <gtest/gtest.h>

#include <stdexcept>

#include "netsim/topology.h"

namespace quicbench::netsim {
namespace {

class Recorder : public PacketSink {
 public:
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override {
    count += 1;
    last_time = sim_.now();
    last = std::move(p);
  }
  Simulator& sim_;
  int count = 0;
  Time last_time = -1;
  Packet last;
};

Packet data_packet(int flow, std::uint64_t pn = 0) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = flow;
  p.size = 1000;
  p.pn = pn;
  return p;
}

DumbbellConfig basic_config() {
  DumbbellConfig cfg;
  cfg.bandwidth = rate::mbps(10);
  cfg.base_rtt = time::ms(20);
  cfg.buffer_bytes = 100'000;
  return cfg;
}

TEST(FlowDemux, RoutesByFlowId) {
  Simulator sim;
  Recorder r0(sim), r1(sim);
  FlowDemux demux;
  demux.register_flow(0, &r0);
  demux.register_flow(1, &r1);
  demux.deliver(data_packet(0));
  demux.deliver(data_packet(1));
  demux.deliver(data_packet(1));
  EXPECT_EQ(r0.count, 1);
  EXPECT_EQ(r1.count, 2);
}

TEST(FlowDemux, UnknownFlowDropped) {
  Simulator sim;
  Recorder r0(sim);
  FlowDemux demux;
  demux.register_flow(0, &r0);
  demux.deliver(data_packet(7));
  demux.deliver(data_packet(-1));  // cross traffic sentinel
  EXPECT_EQ(r0.count, 0);
}

TEST(FlowDemux, SparseIdsRouteCorrectly) {
  // Flow ids need not be registered densely or in order; the table must
  // grow to the highest id and route around the holes.
  Simulator sim;
  Recorder r2(sim), r9(sim);
  FlowDemux demux;
  demux.register_flow(9, &r9);
  demux.register_flow(2, &r2);
  demux.deliver(data_packet(9));
  demux.deliver(data_packet(2));
  demux.deliver(data_packet(5));  // a hole: silently dropped
  EXPECT_EQ(r2.count, 1);
  EXPECT_EQ(r9.count, 1);
}

TEST(FlowDemux, RejectsDuplicateRegistration) {
  Simulator sim;
  Recorder r0(sim), r1(sim);
  FlowDemux demux;
  demux.register_flow(0, &r0);
  EXPECT_THROW(demux.register_flow(0, &r1), std::logic_error);
}

TEST(FlowDemux, RejectsNegativeFlowAndNullSink) {
  Simulator sim;
  Recorder r0(sim);
  FlowDemux demux;
  EXPECT_THROW(demux.register_flow(-1, &r0), std::logic_error);
  EXPECT_THROW(demux.register_flow(0, nullptr), std::logic_error);
}

TEST(FlowDemux, CapacityBoundsRegistration) {
  Simulator sim;
  Recorder r0(sim);
  FlowDemux demux;
  demux.set_capacity(2);
  EXPECT_NO_THROW(demux.register_flow(1, &r0));
  EXPECT_THROW(demux.register_flow(2, &r0), std::logic_error);
}

TEST(Dumbbell, RejectsNonPositiveFlowCount) {
  Simulator sim;
  EXPECT_THROW(Dumbbell(sim, basic_config(), 0), std::invalid_argument);
}

TEST(Dumbbell, RejectsOutOfRangeEndpointRegistration) {
  Simulator sim;
  Recorder r(sim);
  Dumbbell db(sim, basic_config(), 2);
  EXPECT_THROW(db.attach_receiver(2, &r), std::logic_error);
}

TEST(Dumbbell, ForwardPathDeliversToReceiver) {
  Simulator sim;
  Dumbbell db(sim, basic_config(), 2);
  Recorder recv0(sim), recv1(sim);
  db.attach_receiver(0, &recv0);
  db.attach_receiver(1, &recv1);
  db.forward_in()->deliver(data_packet(0, 5));
  sim.run_until(time::sec(1));
  EXPECT_EQ(recv0.count, 1);
  EXPECT_EQ(recv1.count, 0);
  EXPECT_EQ(recv0.last.pn, 5u);
  // Forward delay = serialization (0.8 ms) + half the base RTT (10 ms).
  EXPECT_EQ(recv0.last_time, time::us(800) + time::ms(10));
}

TEST(Dumbbell, ReversePathDeliversAckToSender) {
  Simulator sim;
  Dumbbell db(sim, basic_config(), 2);
  Recorder sender1(sim);
  db.attach_sender_ack_sink(1, &sender1);
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 1;
  ack.size = 80;
  db.reverse_in(1)->deliver(ack);
  sim.run_until(time::sec(1));
  EXPECT_EQ(sender1.count, 1);
  // Reverse delay = half the base RTT, no bandwidth constraint.
  EXPECT_EQ(sender1.last_time, time::ms(10));
}

TEST(Dumbbell, RoundTripEqualsBaseRttPlusSerialization) {
  Simulator sim;
  DumbbellConfig cfg = basic_config();
  Dumbbell db(sim, cfg, 1);

  class Echo : public PacketSink {
   public:
    Echo(Simulator& s, Dumbbell& d) : sim_(s), db_(d) {}
    void deliver(Packet p) override {
      Packet ack;
      ack.kind = PacketKind::kAck;
      ack.flow = p.flow;
      ack.size = 80;
      db_.reverse_in(p.flow)->deliver(ack);
    }
    Simulator& sim_;
    Dumbbell& db_;
  } echo(sim, db);

  Recorder sender(sim);
  db.attach_receiver(0, &echo);
  db.attach_sender_ack_sink(0, &sender);
  db.forward_in()->deliver(data_packet(0));
  sim.run_until(time::sec(1));
  ASSERT_EQ(sender.count, 1);
  EXPECT_EQ(sender.last_time, time::ms(20) + time::us(800));
}

TEST(Dumbbell, InvalidConfigThrows) {
  Simulator sim;
  DumbbellConfig cfg;  // zeros
  EXPECT_THROW(Dumbbell(sim, cfg, 2), std::invalid_argument);
}

TEST(Dumbbell, JitterRequiresRng) {
  Simulator sim;
  DumbbellConfig cfg = basic_config();
  cfg.path_jitter = time::ms(1);
  EXPECT_THROW(Dumbbell(sim, cfg, 2), std::invalid_argument);
  Rng rng(1);
  EXPECT_NO_THROW(Dumbbell(sim, cfg, 2, &rng));
}

TEST(CrossTraffic, GeneratesApproximatelyConfiguredRate) {
  Simulator sim;
  Recorder sink(sim);
  Rng rng(33);
  // Always-on (mean_off tiny relative to on) at 5 Mbps.
  CrossTrafficSource src(sim, &sink, rate::mbps(5), 1200, time::sec(100),
                         time::ms(1), rng);
  src.start();
  sim.run_until(time::sec(10));
  const double bits = static_cast<double>(sink.count) * 1200 * 8;
  const double mbps = bits / 10 / 1e6;
  EXPECT_NEAR(mbps, 5.0, 1.0);
}

TEST(CrossTraffic, OnOffProducesLessThanFullRate) {
  Simulator sim;
  Recorder sink(sim);
  Rng rng(34);
  // 50% duty cycle.
  CrossTrafficSource src(sim, &sink, rate::mbps(8), 1200, time::ms(100),
                         time::ms(100), rng);
  src.start();
  sim.run_until(time::sec(20));
  const double mbps = static_cast<double>(sink.count) * 1200 * 8 / 20 / 1e6;
  EXPECT_GT(mbps, 2.0);
  EXPECT_LT(mbps, 6.5);
}

} // namespace
} // namespace quicbench::netsim
