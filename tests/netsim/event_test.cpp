#include <gtest/gtest.h>

#include <vector>

#include "netsim/event.h"

namespace quicbench::netsim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(time::ms(30), [&] { order.push_back(3); });
  sim.schedule(time::ms(10), [&] { order.push_back(1); });
  sim.schedule(time::ms(20), [&] { order.push_back(2); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule(time::ms(42), [&] { seen = sim.now(); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(seen, time::ms(42));
  EXPECT_EQ(sim.now(), time::sec(1));
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule(time::ms(100), [&] { fired = true; });
  sim.run_until(time::ms(50));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), time::ms(50));
  sim.run_until(time::ms(200));
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator sim;
  sim.cancel(kInvalidEvent);
  sim.cancel(9999);
  EXPECT_FALSE(sim.run_next());
}

TEST(Simulator, StaleCancelOfFiredEventIsNoop) {
  // Regression: cancel() on an already-fired id used to park the id in
  // the lazy-deletion set forever, making pending_events() underflow
  // (heap size minus cancelled-set size, on size_t).
  Simulator sim;
  const EventId id = sim.schedule(time::ms(1), [] {});
  sim.run_until(time::ms(5));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // already fired: must be a no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule(time::ms(10), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, DoubleCancelIsNoop) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(1), [&] { fired = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // second cancel of the same id
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, StaleCancelDoesNotKillRecycledSlot) {
  // A cancelled id must never cancel a later event that happens to reuse
  // its slot: generations retire old ids on reuse.
  Simulator sim;
  const EventId a = sim.schedule(time::ms(1), [] {});
  sim.cancel(a);
  bool fired = false;
  const EventId b = sim.schedule(time::ms(2), [&] { fired = true; });
  EXPECT_NE(a, b);
  sim.cancel(a);  // stale: must not touch b even if b reuses a's slot
  sim.run_until(time::sec(1));
  EXPECT_TRUE(fired);
}

TEST(Simulator, FifoPreservedAcrossSlotRecycling) {
  // Slot recycling must not disturb FIFO ordering among equal timestamps
  // (ordering rides on a separate monotonic sequence, not the id).
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule(time::ms(5), [&] { order.push_back(-1); });
  const EventId b = sim.schedule(time::ms(5), [&] { order.push_back(-2); });
  sim.cancel(b);
  sim.cancel(a);
  for (int i = 0; i < 4; ++i) {
    sim.schedule(time::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, PendingEventsTracksLifecycle) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule(time::ms(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  sim.cancel(ids[3]);
  sim.cancel(ids[7]);
  EXPECT_EQ(sim.pending_events(), 8u);
  sim.run_until(time::ms(5));  // fires 1,2,4,5 ms (3 ms was cancelled)
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.run_until(time::sec(1));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsScheduledDuringEventsFire) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(time::ms(1), chain);
  };
  sim.schedule(0, chain);
  sim.run_until(time::sec(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule(time::ms(10), [&] {
    sim.schedule_in(time::ms(5), [&] { fired_at = sim.now(); });
  });
  sim.run_until(time::sec(1));
  EXPECT_EQ(fired_at, time::ms(15));
}

TEST(Timer, ArmAndFire) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  t.arm_in(time::ms(5), [&] { ++fires; });
  EXPECT_TRUE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fire_times;
  t.arm_in(time::ms(5), [&] { fire_times.push_back(sim.now()); });
  t.arm_in(time::ms(9), [&] { fire_times.push_back(sim.now()); });
  sim.run_until(time::sec(1));
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], time::ms(9));
}

TEST(Timer, CancelStopsFiring) {
  Simulator sim;
  Timer t(sim);
  bool fired = false;
  t.arm_in(time::ms(5), [&] { fired = true; });
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsScheduledAndFiredEvents) {
  Simulator sim;
  EXPECT_EQ(sim.events_scheduled(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(i + 1), [] {});
  }
  sim.schedule(time::ms(900), [] {});  // beyond the run window
  EXPECT_EQ(sim.events_scheduled(), 6u);
  sim.run_until(time::ms(100));
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Timer, RearmFromWithinCallback) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) t.arm_in(time::ms(1), tick);
  };
  t.arm_in(time::ms(1), tick);
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 3);
}

TEST(Timer, SetThenRearmRunsInstalledCallback) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fires;
  t.set([&] { fires.push_back(sim.now()); });
  t.rearm(time::ms(5));
  t.rearm(time::ms(9));  // postpone: reschedule fast path
  sim.run_until(time::sec(1));
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], time::ms(9));
}

TEST(Timer, CallbackSurvivesFireWithoutRearm) {
  // Regression: the installed callback must remain usable after a fire
  // in which the callback did not re-arm (it is moved out for the call
  // and restored afterwards).
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  t.set([&] { ++fires; });
  t.rearm_in(time::ms(1));
  sim.run_until(time::ms(10));
  EXPECT_EQ(fires, 1);
  t.rearm_in(time::ms(1));  // same callback, no new set()
  sim.run_until(time::ms(20));
  EXPECT_EQ(fires, 2);
}

TEST(Timer, SelfRearmingPeriodicViaSet) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fires;
  t.set([&] {
    fires.push_back(sim.now());
    if (fires.size() < 4) t.rearm_in(time::ms(2));
  });
  t.rearm(time::ms(2));
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, (std::vector<Time>{time::ms(2), time::ms(4), time::ms(6),
                                      time::ms(8)}));
}

TEST(Timer, RearmToEarlierTimeFires) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fires;
  t.set([&] { fires.push_back(sim.now()); });
  t.rearm(time::ms(9));
  t.rearm(time::ms(2));  // earlier: cancel + fresh schedule internally
  sim.run_until(time::sec(1));
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], time::ms(2));
}

TEST(Timer, RearmRekeysFifoOrderLikeCancelPlusSchedule) {
  // A postponed timer must order among equal timestamps as if it had
  // been cancelled and re-scheduled at rearm() time, not at its original
  // position.
  Simulator sim;
  Timer t(sim);
  std::vector<int> order;
  t.set([&] { order.push_back(0); });
  t.rearm(time::ms(3));
  sim.schedule(time::ms(5), [&] { order.push_back(1); });
  t.rearm(time::ms(5));  // after the plain event: must fire second
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Timer, CancelFromSameTimestampEvent) {
  // An event can cancel a timer scheduled for the same instant, as long
  // as it runs first (FIFO): the timer must not fire.
  Simulator sim;
  Timer t(sim);
  bool timer_fired = false;
  sim.schedule(time::ms(5), [&] { t.cancel(); });
  t.arm(time::ms(5), [&] { timer_fired = true; });
  sim.run_until(time::sec(1));
  EXPECT_FALSE(timer_fired);
  EXPECT_FALSE(t.armed());
}

TEST(Simulator, CancelFromSameTimestampEvent) {
  Simulator sim;
  bool fired = false;
  EventId victim = kInvalidEvent;
  sim.schedule(time::ms(5), [&] { sim.cancel(victim); });
  victim = sim.schedule(time::ms(5), [&] { fired = true; });
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, ReschedulePostponesAndKeepsId) {
  Simulator sim;
  std::vector<Time> fires;
  const EventId id = sim.schedule(time::ms(2), [&] {
    fires.push_back(sim.now());
  });
  EXPECT_TRUE(sim.reschedule(id, time::ms(7)));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(time::sec(1));
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], time::ms(7));
}

TEST(Simulator, RescheduleStaleIdReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(time::ms(1), [] {});
  sim.run_until(time::ms(5));
  EXPECT_FALSE(sim.reschedule(id, time::ms(10)));
  sim.cancel(id);  // still a no-op
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelAfterRescheduleStillCancels) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(2), [&] { fired = true; });
  EXPECT_TRUE(sim.reschedule(id, time::ms(8)));
  sim.cancel(id);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RescheduleCountsAsScheduled) {
  // One reschedule replaces one cancel+schedule pair, and is counted in
  // events_scheduled() accordingly.
  Simulator sim;
  const EventId id = sim.schedule(time::ms(1), [] {});
  EXPECT_EQ(sim.events_scheduled(), 1u);
  EXPECT_TRUE(sim.reschedule(id, time::ms(2)));
  EXPECT_EQ(sim.events_scheduled(), 2u);
  sim.run_until(time::sec(1));
  EXPECT_EQ(sim.events_fired(), 1u);
}

TEST(Simulator, WheelAndHeapInterleaveInGlobalOrder) {
  // Near-future events land in the wheel, far-future in the heap; the
  // fire order must still be globally sorted by (time, seq).
  Simulator sim;
  std::vector<Time> fires;
  const auto rec = [&] { fires.push_back(sim.now()); };
  sim.schedule(time::ms(50), rec);   // heap (beyond wheel horizon)
  sim.schedule(time::us(40), rec);   // wheel
  sim.schedule(time::us(2), rec);    // current bucket: heap
  sim.schedule(time::ms(1), rec);    // wheel
  sim.schedule(time::us(40), rec);   // wheel, same time: FIFO after #2
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, (std::vector<Time>{time::us(2), time::us(40),
                                      time::us(40), time::ms(1),
                                      time::ms(50)}));
}

TEST(Simulator, StatsReportPeaksAndSlots) {
  Simulator sim;
  for (int i = 0; i < 20; ++i) {
    sim.schedule(time::us(i + 1), [] {});      // wheel-horizon events
    sim.schedule(time::sec(i + 1), [] {});     // heap events
  }
  const Simulator::Stats st = sim.stats();
  EXPECT_GT(st.heap_peak, 0u);
  EXPECT_GT(st.wheel_peak, 0u);
  EXPECT_GE(st.slot_count, 40u);
  sim.run_until(time::sec(30));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorDeathTest, ScheduleIntoPastClampsOrAsserts) {
  // Contract: t < now() is clamped to now() (and asserts in debug
  // builds) — an event can never fire before the clock.
  Simulator sim;
  sim.schedule(time::ms(10), [] {});
  sim.run_until(time::ms(20));
  ASSERT_EQ(sim.now(), time::ms(20));
#ifdef NDEBUG
  Time fired_at = -1;
  sim.schedule(time::ms(5), [&] { fired_at = sim.now(); });
  sim.run_next();
  EXPECT_EQ(fired_at, time::ms(20));  // clamped, not fired in the past
#else
  EXPECT_DEATH(sim.schedule(time::ms(5), [] {}), "past");
#endif
}

TEST(SimulatorDeathTest, RescheduleIntoPastClampsOrAsserts) {
  Simulator sim;
  sim.schedule(time::ms(10), [] {});
  sim.run_until(time::ms(20));
#ifdef NDEBUG
  // Clamp path: reschedule to the past from a same-timestamp event —
  // the target clamps to now() and the event still fires, at now().
  Time fired_at = -1;
  EventId id = kInvalidEvent;
  sim.schedule(time::ms(30), [&] {
    EXPECT_TRUE(sim.reschedule(id, time::ms(5)));  // clamped to 30 ms
  });
  id = sim.schedule(time::ms(30), [&] { fired_at = sim.now(); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(fired_at, time::ms(30));
#else
  const EventId id = sim.schedule(time::ms(30), [] {});
  EXPECT_DEATH(sim.reschedule(id, time::ms(5)), "past");
#endif
}

} // namespace
} // namespace quicbench::netsim
