#include <gtest/gtest.h>

#include <vector>

#include "netsim/event.h"

namespace quicbench::netsim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(time::ms(30), [&] { order.push_back(3); });
  sim.schedule(time::ms(10), [&] { order.push_back(1); });
  sim.schedule(time::ms(20), [&] { order.push_back(2); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule(time::ms(42), [&] { seen = sim.now(); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(seen, time::ms(42));
  EXPECT_EQ(sim.now(), time::sec(1));
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule(time::ms(100), [&] { fired = true; });
  sim.run_until(time::ms(50));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), time::ms(50));
  sim.run_until(time::ms(200));
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator sim;
  sim.cancel(kInvalidEvent);
  sim.cancel(9999);
  EXPECT_FALSE(sim.run_next());
}

TEST(Simulator, StaleCancelOfFiredEventIsNoop) {
  // Regression: cancel() on an already-fired id used to park the id in
  // the lazy-deletion set forever, making pending_events() underflow
  // (heap size minus cancelled-set size, on size_t).
  Simulator sim;
  const EventId id = sim.schedule(time::ms(1), [] {});
  sim.run_until(time::ms(5));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // already fired: must be a no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule(time::ms(10), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, DoubleCancelIsNoop) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(1), [&] { fired = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // second cancel of the same id
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, StaleCancelDoesNotKillRecycledSlot) {
  // A cancelled id must never cancel a later event that happens to reuse
  // its slot: generations retire old ids on reuse.
  Simulator sim;
  const EventId a = sim.schedule(time::ms(1), [] {});
  sim.cancel(a);
  bool fired = false;
  const EventId b = sim.schedule(time::ms(2), [&] { fired = true; });
  EXPECT_NE(a, b);
  sim.cancel(a);  // stale: must not touch b even if b reuses a's slot
  sim.run_until(time::sec(1));
  EXPECT_TRUE(fired);
}

TEST(Simulator, FifoPreservedAcrossSlotRecycling) {
  // Slot recycling must not disturb FIFO ordering among equal timestamps
  // (ordering rides on a separate monotonic sequence, not the id).
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule(time::ms(5), [&] { order.push_back(-1); });
  const EventId b = sim.schedule(time::ms(5), [&] { order.push_back(-2); });
  sim.cancel(b);
  sim.cancel(a);
  for (int i = 0; i < 4; ++i) {
    sim.schedule(time::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, PendingEventsTracksLifecycle) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(sim.schedule(time::ms(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 10u);
  sim.cancel(ids[3]);
  sim.cancel(ids[7]);
  EXPECT_EQ(sim.pending_events(), 8u);
  sim.run_until(time::ms(5));  // fires 1,2,4,5 ms (3 ms was cancelled)
  EXPECT_EQ(sim.pending_events(), 4u);
  sim.run_until(time::sec(1));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsScheduledDuringEventsFire) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(time::ms(1), chain);
  };
  sim.schedule(0, chain);
  sim.run_until(time::sec(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule(time::ms(10), [&] {
    sim.schedule_in(time::ms(5), [&] { fired_at = sim.now(); });
  });
  sim.run_until(time::sec(1));
  EXPECT_EQ(fired_at, time::ms(15));
}

TEST(Timer, ArmAndFire) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  t.arm_in(time::ms(5), [&] { ++fires; });
  EXPECT_TRUE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fire_times;
  t.arm_in(time::ms(5), [&] { fire_times.push_back(sim.now()); });
  t.arm_in(time::ms(9), [&] { fire_times.push_back(sim.now()); });
  sim.run_until(time::sec(1));
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], time::ms(9));
}

TEST(Timer, CancelStopsFiring) {
  Simulator sim;
  Timer t(sim);
  bool fired = false;
  t.arm_in(time::ms(5), [&] { fired = true; });
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsScheduledAndFiredEvents) {
  Simulator sim;
  EXPECT_EQ(sim.events_scheduled(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(i + 1), [] {});
  }
  sim.schedule(time::ms(900), [] {});  // beyond the run window
  EXPECT_EQ(sim.events_scheduled(), 6u);
  sim.run_until(time::ms(100));
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Timer, RearmFromWithinCallback) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) t.arm_in(time::ms(1), tick);
  };
  t.arm_in(time::ms(1), tick);
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 3);
}

} // namespace
} // namespace quicbench::netsim
