#include <gtest/gtest.h>

#include <vector>

#include "netsim/event.h"

namespace quicbench::netsim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(time::ms(30), [&] { order.push_back(3); });
  sim.schedule(time::ms(10), [&] { order.push_back(1); });
  sim.schedule(time::ms(20), [&] { order.push_back(2); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1;
  sim.schedule(time::ms(42), [&] { seen = sim.now(); });
  sim.run_until(time::sec(1));
  EXPECT_EQ(seen, time::ms(42));
  EXPECT_EQ(sim.now(), time::sec(1));
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule(time::ms(100), [&] { fired = true; });
  sim.run_until(time::ms(50));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), time::ms(50));
  sim.run_until(time::ms(200));
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(time::ms(10), [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator sim;
  sim.cancel(kInvalidEvent);
  sim.cancel(9999);
  EXPECT_FALSE(sim.run_next());
}

TEST(Simulator, EventsScheduledDuringEventsFire) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_in(time::ms(1), chain);
  };
  sim.schedule(0, chain);
  sim.run_until(time::sec(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule(time::ms(10), [&] {
    sim.schedule_in(time::ms(5), [&] { fired_at = sim.now(); });
  });
  sim.run_until(time::sec(1));
  EXPECT_EQ(fired_at, time::ms(15));
}

TEST(Timer, ArmAndFire) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  t.arm_in(time::ms(5), [&] { ++fires; });
  EXPECT_TRUE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPrevious) {
  Simulator sim;
  Timer t(sim);
  std::vector<Time> fire_times;
  t.arm_in(time::ms(5), [&] { fire_times.push_back(sim.now()); });
  t.arm_in(time::ms(9), [&] { fire_times.push_back(sim.now()); });
  sim.run_until(time::sec(1));
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], time::ms(9));
}

TEST(Timer, CancelStopsFiring) {
  Simulator sim;
  Timer t(sim);
  bool fired = false;
  t.arm_in(time::ms(5), [&] { fired = true; });
  t.cancel();
  EXPECT_FALSE(t.armed());
  sim.run_until(time::sec(1));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CountsScheduledAndFiredEvents) {
  Simulator sim;
  EXPECT_EQ(sim.events_scheduled(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
  for (int i = 0; i < 5; ++i) {
    sim.schedule(time::ms(i + 1), [] {});
  }
  sim.schedule(time::ms(900), [] {});  // beyond the run window
  EXPECT_EQ(sim.events_scheduled(), 6u);
  sim.run_until(time::ms(100));
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Timer, RearmFromWithinCallback) {
  Simulator sim;
  Timer t(sim);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) t.arm_in(time::ms(1), tick);
  };
  t.arm_in(time::ms(1), tick);
  sim.run_until(time::sec(1));
  EXPECT_EQ(fires, 3);
}

} // namespace
} // namespace quicbench::netsim
