#include <gtest/gtest.h>

#include <vector>

#include "netsim/event.h"
#include "netsim/link.h"
#include "util/rng.h"

namespace quicbench::netsim {
namespace {

class Collector : public PacketSink {
 public:
  void deliver(Packet p) override {
    arrival_times.push_back(now ? *now : 0);
    packets.push_back(std::move(p));
  }
  std::vector<Packet> packets;
  std::vector<Time> arrival_times;
  const Time* now = nullptr;
};

Packet data_packet(int flow, Bytes size, std::uint64_t pn = 0) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = flow;
  p.size = size;
  p.pn = pn;
  return p;
}

TEST(Link, DeliversWithSerializationPlusPropagation) {
  Simulator sim;
  Collector sink;
  // 12 Mbps, 5 ms prop: a 1500-byte packet serializes in 1 ms.
  Link link(sim, rate::mbps(12), time::ms(5), 100'000, &sink);
  Time arrival = -1;
  class Probe : public PacketSink {
   public:
    explicit Probe(Simulator& s, Time& t) : sim(s), arrival(t) {}
    void deliver(Packet) override { arrival = sim.now(); }
    Simulator& sim;
    Time& arrival;
  } probe(sim, arrival);
  Link link2(sim, rate::mbps(12), time::ms(5), 100'000, &probe);
  link2.deliver(data_packet(0, 1500));
  sim.run_until(time::sec(1));
  EXPECT_EQ(arrival, time::ms(6));
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  Simulator sim;
  std::vector<Time> arrivals;
  class Probe : public PacketSink {
   public:
    Probe(Simulator& s, std::vector<Time>& a) : sim(s), arrivals(a) {}
    void deliver(Packet) override { arrivals.push_back(sim.now()); }
    Simulator& sim;
    std::vector<Time>& arrivals;
  } probe(sim, arrivals);
  Link link(sim, rate::mbps(12), 0, 100'000, &probe);
  for (int i = 0; i < 3; ++i) link.deliver(data_packet(0, 1500, i));
  sim.run_until(time::sec(1));
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], time::ms(1));
  EXPECT_EQ(arrivals[2] - arrivals[1], time::ms(1));
}

TEST(Link, DropsWhenBufferFull) {
  Simulator sim;
  Collector sink;
  // Buffer of 3000 bytes: holds two queued 1500B packets beyond the one
  // in transmission.
  Link link(sim, rate::mbps(1), 0, 3000, &sink);
  int drops = 0;
  link.set_drop_callback([&](const Packet&) { ++drops; });
  for (int i = 0; i < 5; ++i) link.deliver(data_packet(0, 1500, i));
  sim.run_until(time::sec(1));
  // First goes straight to the transmitter, two queue, two drop.
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(link.stats().packets_dropped, 2);
  EXPECT_EQ(link.stats().packets_out, 3);
}

TEST(Link, FifoOrderPreserved) {
  Simulator sim;
  Collector sink;
  Link link(sim, rate::mbps(10), time::ms(1), 1'000'000, &sink);
  for (std::uint64_t i = 0; i < 10; ++i) link.deliver(data_packet(0, 500, i));
  sim.run_until(time::sec(1));
  ASSERT_EQ(sink.packets.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sink.packets[i].pn, i);
}

TEST(Link, StatsCountBytes) {
  Simulator sim;
  Collector sink;
  Link link(sim, rate::mbps(10), 0, 1'000'000, &sink);
  link.deliver(data_packet(0, 700));
  link.deliver(data_packet(0, 800));
  sim.run_until(time::sec(1));
  EXPECT_EQ(link.stats().packets_in, 2);
  EXPECT_EQ(link.stats().bytes_out, 1500);
}

TEST(Link, ThroughputMatchesRate) {
  Simulator sim;
  Collector sink;
  const Rate bw = rate::mbps(20);
  Link link(sim, bw, 0, 10'000'000, &sink);
  const int n = 2000;
  for (int i = 0; i < n; ++i) link.deliver(data_packet(0, 1500, i));
  sim.run_until(time::sec(10));
  // n*1500*8 bits at 20 Mbps = 1.2 s.
  const double expect_sec = n * 1500 * 8 / rate::to_mbps(bw) / 1e6;
  ASSERT_EQ(link.stats().packets_out, n);
  // Last arrival should be at ~expect_sec.
  EXPECT_EQ(link.stats().bytes_out, n * 1500);
  EXPECT_NEAR(expect_sec, 1.2, 1e-9);
}

TEST(DelayLine, PureDelay) {
  Simulator sim;
  std::vector<Time> arrivals;
  class Probe : public PacketSink {
   public:
    Probe(Simulator& s, std::vector<Time>& a) : sim(s), arrivals(a) {}
    void deliver(Packet) override { arrivals.push_back(sim.now()); }
    Simulator& sim;
    std::vector<Time>& arrivals;
  } probe(sim, arrivals);
  DelayLine line(sim, time::ms(25), &probe);
  sim.schedule(time::ms(5), [&] { line.deliver(data_packet(0, 100)); });
  sim.run_until(time::sec(1));
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], time::ms(30));
}

TEST(DelayLine, JitterWithoutReorderIsMonotonic) {
  Simulator sim;
  std::vector<std::uint64_t> order;
  class Probe : public PacketSink {
   public:
    explicit Probe(std::vector<std::uint64_t>& o) : order(o) {}
    void deliver(Packet p) override { order.push_back(p.pn); }
    std::vector<std::uint64_t>& order;
  } probe(order);
  DelayLine line(sim, time::ms(1), &probe);
  Rng rng(17);
  line.set_jitter(time::ms(5), [&rng] { return rng.uniform(); },
                  /*allow_reorder=*/false);
  for (std::uint64_t i = 0; i < 50; ++i) {
    sim.schedule(static_cast<Time>(i) * time::us(100),
                 [&line, i] { line.deliver(data_packet(0, 100, i)); });
  }
  sim.run_until(time::sec(1));
  ASSERT_EQ(order.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(DelayLine, JitterWithReorderCanReorder) {
  Simulator sim;
  std::vector<std::uint64_t> order;
  class Probe : public PacketSink {
   public:
    explicit Probe(std::vector<std::uint64_t>& o) : order(o) {}
    void deliver(Packet p) override { order.push_back(p.pn); }
    std::vector<std::uint64_t>& order;
  } probe(order);
  DelayLine line(sim, time::ms(1), &probe);
  Rng rng(17);
  line.set_jitter(time::ms(5), [&rng] { return rng.uniform(); },
                  /*allow_reorder=*/true);
  for (std::uint64_t i = 0; i < 200; ++i) {
    sim.schedule(static_cast<Time>(i) * time::us(50),
                 [&line, i] { line.deliver(data_packet(0, 100, i)); });
  }
  sim.run_until(time::sec(1));
  ASSERT_EQ(order.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

} // namespace
} // namespace quicbench::netsim
