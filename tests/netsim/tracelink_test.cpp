#include <gtest/gtest.h>

#include "netsim/topology.h"
#include "netsim/tracelink.h"

namespace quicbench::netsim {
namespace {

class Counter : public PacketSink {
 public:
  explicit Counter(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override {
    ++count;
    bytes += p.size;
    last_time = sim_.now();
  }
  Simulator& sim_;
  int count = 0;
  Bytes bytes = 0;
  Time last_time = -1;
};

Packet pkt(Bytes size, std::uint64_t pn = 0) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = 0;
  p.size = size;
  p.pn = pn;
  return p;
}

TEST(TraceGen, ConstantRateCount) {
  // 12 Mbps at 1500-byte MTU = 1000 opportunities per second.
  const auto trace = traces::constant_rate(rate::mbps(12));
  EXPECT_EQ(trace.size(), 1000u);
  EXPECT_EQ(trace.front(), 0);
  // Strictly increasing within [0, 1s).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i], trace[i - 1]);
    EXPECT_LT(trace[i], time::sec(1));
  }
}

TEST(TraceGen, RandomWalkBounded) {
  Rng rng(5);
  const auto trace = traces::random_walk(rate::mbps(5), rate::mbps(35),
                                         time::ms(100), time::sec(2), rng);
  ASSERT_GT(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i], trace[i - 1]);
    EXPECT_LT(trace[i], time::sec(2));
  }
  // Average rate within the configured band.
  const double mbps =
      rate::to_mbps(rate_of(static_cast<Bytes>(trace.size()) * 1500,
                            time::sec(2)));
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 36.0);
}

TEST(TraceLinkTest, ConstantTraceMatchesRate) {
  Simulator sim;
  Counter sink(sim);
  TraceLink link(sim, traces::constant_rate(rate::mbps(12)), time::sec(1),
                 0, 10'000'000, &sink);
  EXPECT_NEAR(rate::to_mbps(link.average_rate()), 12.0, 0.2);
  // Saturate for 2 seconds (pre-queued; buffer sized to hold everything).
  for (int i = 0; i < 3000; ++i) link.deliver(pkt(1500, i));
  sim.run_until(time::sec(2));
  const double mbps = rate::to_mbps(rate_of(sink.bytes, time::sec(2)));
  EXPECT_NEAR(mbps, 12.0, 0.5);
}

TEST(TraceLinkTest, TraceRepeatsAcrossPeriods) {
  Simulator sim;
  Counter sink(sim);
  // Two opportunities in a 10 ms period = 200 pkts/sec.
  TraceLink link(sim, {time::ms(1), time::ms(6)}, time::ms(10), 0,
                 1'000'000, &sink);
  for (int i = 0; i < 1000; ++i) link.deliver(pkt(1500, i));
  sim.run_until(time::sec(1));
  EXPECT_NEAR(sink.count, 200, 3);
}

TEST(TraceLinkTest, DropsWhenBufferFull) {
  Simulator sim;
  Counter sink(sim);
  TraceLink link(sim, traces::constant_rate(rate::mbps(8)), time::sec(1), 0,
                 4500, &sink);  // 3-packet buffer
  for (int i = 0; i < 10; ++i) link.deliver(pkt(1500, i));
  EXPECT_EQ(link.stats().packets_dropped, 7);
  sim.run_until(time::sec(1));
  EXPECT_EQ(sink.count, 3);
}

TEST(TraceLinkTest, PropagationDelayApplied) {
  Simulator sim;
  Counter sink(sim);
  TraceLink link(sim, {0}, time::ms(100), time::ms(25), 1'000'000, &sink);
  link.deliver(pkt(1500));
  sim.run_until(time::sec(1));
  ASSERT_EQ(sink.count, 1);
  // First opportunity of the *next* cycle is at 100 ms (the t=0 one is
  // armed at construction and fires at t=0) — plus 25 ms propagation.
  EXPECT_LE(sink.last_time, time::ms(125));
  EXPECT_GE(sink.last_time, time::ms(25));
}

TEST(TraceLinkTest, SmallPacketsShareOpportunity) {
  Simulator sim;
  Counter sink(sim);
  // One opportunity per 10 ms; two 700-byte packets fit in one MTU.
  TraceLink link(sim, {0}, time::ms(10), 0, 1'000'000, &sink);
  link.deliver(pkt(700, 0));
  link.deliver(pkt(700, 1));
  link.deliver(pkt(700, 2));
  sim.run_until(time::ms(9));
  EXPECT_EQ(sink.count, 2);  // 1500 credit covers two 700B packets
  sim.run_until(time::ms(19));
  EXPECT_EQ(sink.count, 3);
}

TEST(TraceLinkTest, InvalidTraceThrows) {
  Simulator sim;
  Counter sink(sim);
  EXPECT_THROW(TraceLink(sim, {}, time::sec(1), 0, 1000, &sink),
               std::invalid_argument);
  EXPECT_THROW(TraceLink(sim, {time::ms(5), time::ms(5)}, time::sec(1), 0,
                         1000, &sink),
               std::invalid_argument);
  EXPECT_THROW(TraceLink(sim, {time::sec(2)}, time::sec(1), 0, 1000, &sink),
               std::invalid_argument);
}

TEST(TraceLinkTest, DumbbellIntegration) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.base_rtt = time::ms(20);
  cfg.buffer_bytes = 200'000;  // holds all 100 pre-queued packets
  cfg.trace_opportunities = traces::constant_rate(rate::mbps(10));
  cfg.trace_period = time::sec(1);
  Dumbbell db(sim, cfg, 1);
  EXPECT_NE(db.trace_bottleneck(), nullptr);
  Counter recv(sim);
  db.attach_receiver(0, &recv);
  for (int i = 0; i < 100; ++i) {
    Packet p = pkt(1500, i);
    p.flow = 0;
    db.forward_in()->deliver(std::move(p));
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(recv.count, 100);
}

} // namespace
} // namespace quicbench::netsim
