// Unit tests for the adversarial impairment stage: config validation,
// per-feature behaviour (loss, Gilbert–Elliott bursts, reordering with
// flush, duplication, RTT step), determinism, and the conservation
// identity the invariant checker relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netsim/event.h"
#include "netsim/impairment.h"
#include "netsim/packet.h"

namespace quicbench::netsim {
namespace {

// Records (arrival time, pn) for every delivered packet.
class Collector : public PacketSink {
 public:
  explicit Collector(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override { got.emplace_back(sim_.now(), p.pn); }
  std::vector<std::pair<Time, std::uint64_t>> got;

 private:
  Simulator& sim_;
};

Packet data_packet(std::uint64_t pn) {
  Packet p;
  p.kind = PacketKind::kData;
  p.flow = 0;
  p.size = 1500;
  p.pn = pn;
  return p;
}

// Feeds `n` packets, one every `gap`, starting at t=`gap`.
void feed(Simulator& sim, ImpairmentStage& stage, int n,
          Time gap = time::ms(1)) {
  for (int i = 0; i < n; ++i) {
    sim.schedule(gap * (i + 1),
                 [&stage, i] { stage.deliver(data_packet(
                     static_cast<std::uint64_t>(i))); });
  }
}

TEST(ImpairmentConfig, DisabledByDefault) {
  ImpairmentConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_EQ(cfg.describe(), "none");
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ImpairmentConfig, ValidationRejectsBadValues) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.ack_loss_rate = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.reorder_rate = 0.1;
  cfg.reorder_gap = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.reorder_rate = 0.1;
  cfg.reorder_flush = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rtt_step_delta = -time::ms(1);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // A bad state that never recovers is disallowed.
  cfg = {};
  cfg.ge_p_good_to_bad = 0.1;
  cfg.ge_p_bad_to_good = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ImpairmentConfig, DescribeMentionsActiveFeatures) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.02;
  cfg.reorder_rate = 0.01;
  cfg.ack_loss_rate = 0.05;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("loss="), std::string::npos);
  EXPECT_NE(d.find("reorder="), std::string::npos);
  EXPECT_NE(d.find("ack_loss="), std::string::npos);
  EXPECT_EQ(d.find("dup="), std::string::npos);
}

TEST(ImpairmentConfig, AckPathViewKeepsOnlyAckLoss) {
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.5;
  cfg.reorder_rate = 0.5;
  cfg.ack_loss_rate = 0.125;
  const ImpairmentConfig v = cfg.ack_path_view();
  EXPECT_DOUBLE_EQ(v.loss_rate, 0.125);
  EXPECT_DOUBLE_EQ(v.reorder_rate, 0);
  EXPECT_DOUBLE_EQ(v.duplicate_rate, 0);
  EXPECT_DOUBLE_EQ(v.ack_loss_rate, 0);
}

TEST(ImpairmentStage, PassthroughWhenNothingConfigured) {
  Simulator sim;
  Collector out(sim);
  ImpairmentStage stage(sim, {}, &out, Rng(7));
  feed(sim, stage, 10);
  sim.run_until(time::ms(100));
  ASSERT_EQ(out.got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out.got[i].second, i);
  EXPECT_EQ(stage.stats().dropped, 0);
  EXPECT_EQ(stage.stats().forwarded, 10);
}

TEST(ImpairmentStage, FullLossDropsEverything) {
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 1.0;
  ImpairmentStage stage(sim, cfg, &out, Rng(7));
  feed(sim, stage, 50);
  sim.run_until(time::ms(100));
  EXPECT_TRUE(out.got.empty());
  EXPECT_EQ(stage.stats().dropped, 50);
  EXPECT_EQ(stage.packets_resident(), 0);
}

TEST(ImpairmentStage, IidLossNearConfiguredRate) {
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.3;
  ImpairmentStage stage(sim, cfg, &out, Rng(11));
  const int n = 10000;
  feed(sim, stage, n, time::us(10));
  sim.run_until(time::sec(1));
  const double observed =
      static_cast<double>(stage.stats().dropped) / n;
  EXPECT_NEAR(observed, 0.3, 0.02);
  EXPECT_EQ(out.got.size(), static_cast<std::size_t>(n) -
                                static_cast<std::size_t>(
                                    stage.stats().dropped));
}

TEST(ImpairmentStage, GilbertElliottBurstsLoseMoreInBadState) {
  // Mostly-good chain with a lossy bad state: overall loss must sit well
  // below ge_loss_bad but above zero, and bursts mean consecutive drops.
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.ge_p_good_to_bad = 0.05;
  cfg.ge_p_bad_to_good = 0.2;
  cfg.ge_loss_good = 0;
  cfg.ge_loss_bad = 1.0;
  ImpairmentStage stage(sim, cfg, &out, Rng(13));
  const int n = 10000;
  feed(sim, stage, n, time::us(10));
  sim.run_until(time::sec(1));
  // Stationary bad-state share = p_gb / (p_gb + p_bg) = 0.2.
  const double observed = static_cast<double>(stage.stats().dropped) / n;
  EXPECT_NEAR(observed, 0.2, 0.04);
  // Burstiness: consecutive pn gaps in the delivered sequence.
  int burst2 = 0;
  for (std::size_t i = 1; i < out.got.size(); ++i) {
    if (out.got[i].second >= out.got[i - 1].second + 3) ++burst2;
  }
  EXPECT_GT(burst2, 0) << "expected multi-packet loss bursts";
}

TEST(ImpairmentStage, ReorderHoldsPacketBehindGapPassers) {
  // With reorder_rate just high enough to trip for some packets under a
  // fixed seed, delivery must be a permutation of the input with at least
  // one inversion, and held packets must re-enter after exactly
  // reorder_gap passers (or the flush).
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.reorder_rate = 0.2;
  cfg.reorder_gap = 3;
  ImpairmentStage stage(sim, cfg, &out, Rng(17));
  const int n = 200;
  feed(sim, stage, n);
  sim.run_until(time::sec(2));
  ASSERT_EQ(out.got.size(), static_cast<std::size_t>(n));
  std::vector<std::uint64_t> pns;
  pns.reserve(out.got.size());
  for (const auto& [t, pn] : out.got) pns.push_back(pn);
  std::vector<std::uint64_t> sorted = pns;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    EXPECT_EQ(sorted[i], i);  // nothing lost, nothing duplicated
  }
  EXPECT_FALSE(std::is_sorted(pns.begin(), pns.end()));
  EXPECT_GT(stage.stats().reordered, 0);
  EXPECT_EQ(stage.packets_resident(), 0);
}

TEST(ImpairmentStage, FlushTimerReleasesStrandedHeldPacket) {
  // reorder_rate=1 with a huge gap: every packet is held and no passers
  // exist, so only the flush deadline can release them.
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.reorder_rate = 1.0;
  cfg.reorder_gap = 1000;
  cfg.reorder_flush = time::ms(50);
  ImpairmentStage stage(sim, cfg, &out, Rng(19));
  feed(sim, stage, 3);
  sim.run_until(time::ms(20));
  EXPECT_TRUE(out.got.empty());
  EXPECT_EQ(stage.packets_resident(), 3);
  sim.run_until(time::sec(1));
  EXPECT_EQ(out.got.size(), 3u);
  EXPECT_EQ(stage.stats().flushed, 3);
  EXPECT_EQ(stage.packets_resident(), 0);
}

TEST(ImpairmentStage, DuplicationDeliversEveryPacketTwice) {
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.duplicate_rate = 1.0;
  ImpairmentStage stage(sim, cfg, &out, Rng(23));
  feed(sim, stage, 10);
  sim.run_until(time::ms(100));
  EXPECT_EQ(out.got.size(), 20u);
  EXPECT_EQ(stage.stats().duplicated, 10);
  // Copies arrive back to back with the original.
  for (std::size_t i = 0; i + 1 < out.got.size(); i += 2) {
    EXPECT_EQ(out.got[i].second, out.got[i + 1].second);
  }
}

TEST(ImpairmentStage, RttStepDelaysPacketsAfterStepTime) {
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.rtt_step_at = time::ms(5);
  cfg.rtt_step_delta = time::ms(20);
  ImpairmentStage stage(sim, cfg, &out, Rng(29));
  feed(sim, stage, 10);  // arrivals at 1ms..10ms
  sim.run_until(time::sec(1));
  ASSERT_EQ(out.got.size(), 10u);
  for (const auto& [t, pn] : out.got) {
    const Time arrival = time::ms(static_cast<std::int64_t>(pn) + 1);
    if (arrival < time::ms(5)) {
      EXPECT_EQ(t, arrival) << "pn " << pn;
    } else {
      EXPECT_EQ(t, arrival + time::ms(20)) << "pn " << pn;
    }
  }
  // Order preserved: the extra delay is constant.
  for (std::size_t i = 1; i < out.got.size(); ++i) {
    EXPECT_LT(out.got[i - 1].second, out.got[i].second);
  }
  EXPECT_EQ(stage.stats().delayed, 6);
}

TEST(ImpairmentStage, DeterministicAcrossRuns) {
  const auto run = [] {
    Simulator sim;
    Collector out(sim);
    ImpairmentConfig cfg;
    cfg.loss_rate = 0.1;
    cfg.reorder_rate = 0.1;
    cfg.duplicate_rate = 0.05;
    cfg.ge_p_good_to_bad = 0.02;
    cfg.ge_p_bad_to_good = 0.3;
    ImpairmentStage stage(sim, cfg, &out, Rng(31));
    feed(sim, stage, 500);
    sim.run_until(time::sec(2));
    return out.got;
  };
  EXPECT_EQ(run(), run());
}

TEST(ImpairmentStage, ConservationIdentityHolds) {
  Simulator sim;
  Collector out(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.2;
  cfg.reorder_rate = 0.3;
  cfg.reorder_gap = 5;
  cfg.duplicate_rate = 0.1;
  ImpairmentStage stage(sim, cfg, &out, Rng(37));
  feed(sim, stage, 300);
  // Stop mid-stream: the identity must hold at any instant, including
  // with packets still held.
  sim.run_until(time::ms(150));
  const ImpairmentStats& s = stage.stats();
  EXPECT_EQ(s.packets_in + s.duplicated,
            s.forwarded + s.dropped + stage.packets_resident());
  EXPECT_EQ(static_cast<std::int64_t>(out.got.size()), s.forwarded);
  sim.run_until(time::sec(2));
  EXPECT_EQ(s.packets_in + s.duplicated,
            s.forwarded + s.dropped + stage.packets_resident());
  EXPECT_EQ(stage.packets_resident(), 0);
}

} // namespace
} // namespace quicbench::netsim
