// Randomized stress for the two-tier event engine: 10k seeded
// schedule/cancel/rearm interleavings checked step-by-step against a
// naive reference model (a flat list fired in (deadline, seq) order).
// The model encodes the engine's contract exactly:
//   * schedule(t)   -> pending {deadline=max(t, now), seq=next_seq++}
//   * cancel(id)    -> remove (no-op when stale)
//   * rearm(t)      -> remove + insert with a fresh seq (the engine's
//                      lazy-revalidation fast path must be
//                      indistinguishable from cancel+schedule)
//   * run_next()    -> fire the (deadline, seq)-minimum pending event
// Any divergence in fired identity, fire time, or pending count fails.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "netsim/event.h"

namespace quicbench::netsim {
namespace {

struct ModelEntry {
  Time deadline = 0;
  std::uint64_t seq = 0;
};

class StressHarness {
 public:
  explicit StressHarness(std::uint64_t seed) : rng_(seed) {}

  void run(int ops) {
    for (int i = 0; i < ops; ++i) {
      switch (pick(0, 5)) {
        case 0:
        case 1:
          do_schedule();
          break;
        case 2:
          do_rearm();
          break;
        case 3:
          do_cancel();
          break;
        default:
          do_run_next();
          break;
      }
      ASSERT_EQ(sim_.pending_events(), model_.size() + timer_model_.size())
          << "op " << i;
    }
    // Drain: every remaining event must fire in model order.
    while (!model_.empty() || !timer_model_.empty()) do_run_next();
    ASSERT_FALSE(sim_.run_next());
  }

 private:
  static constexpr int kTimers = 16;

  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  Time random_future_time() {
    // Mix of near-future (wheel), far-future (heap) and now-exact times.
    switch (pick(0, 3)) {
      case 0:
        return sim_.now() + static_cast<Time>(pick(0, 2000));  // ns scale
      case 1:
        return sim_.now() + time::us(static_cast<std::int64_t>(pick(0, 500)));
      case 2:
        return sim_.now() + time::ms(static_cast<std::int64_t>(pick(0, 20)));
      default:
        return sim_.now();  // same-timestamp FIFO pressure
    }
  }

  void do_schedule() {
    const Time t = random_future_time();
    const int key = next_key_++;
    const EventId id = sim_.schedule(t, [this, key] { fired_.push_back(key); });
    ids_[key] = id;
    model_[key] = ModelEntry{std::max(t, sim_.now()), model_seq_++};
  }

  void do_rearm() {
    ensure_timer_armed_or_schedule();
    const int slot = pick(0, kTimers - 1);
    auto it = timer_model_.find(slot);
    if (it == timer_model_.end()) return;
    const Time t = random_future_time();
    timers_[static_cast<std::size_t>(slot)]->rearm(t);
    it->second = ModelEntry{std::max(t, sim_.now()), model_seq_++};
  }

  void do_cancel() {
    if (pick(0, 1) == 0 && !model_.empty()) {
      auto it = model_.begin();
      std::advance(it, pick(0, static_cast<int>(model_.size()) - 1));
      sim_.cancel(ids_[it->first]);
      sim_.cancel(ids_[it->first]);  // double cancel must be a no-op
      model_.erase(it);
    } else if (!timer_model_.empty()) {
      auto it = timer_model_.begin();
      std::advance(it,
                   pick(0, static_cast<int>(timer_model_.size()) - 1));
      timers_[static_cast<std::size_t>(it->first)]->cancel();
      timer_model_.erase(it);
    }
  }

  void ensure_timer_armed_or_schedule() {
    const int slot = pick(0, kTimers - 1);
    if (timers_[static_cast<std::size_t>(slot)] == nullptr) {
      timers_[static_cast<std::size_t>(slot)] =
          std::make_unique<Timer>(sim_);
      timers_[static_cast<std::size_t>(slot)]->set(
          [this, slot] { fired_.push_back(-1 - slot); });
    }
    if (timer_model_.find(slot) == timer_model_.end()) {
      const Time t = random_future_time();
      timers_[static_cast<std::size_t>(slot)]->rearm(t);
      timer_model_[slot] = ModelEntry{std::max(t, sim_.now()), model_seq_++};
    }
  }

  void do_run_next() {
    if (model_.empty() && timer_model_.empty()) {
      ASSERT_FALSE(sim_.run_next());
      return;
    }
    // Model winner: (deadline, seq)-minimum across plain events and
    // timers. Keys < 0 are timers (key = -1 - slot).
    int win_key = 0;
    const ModelEntry* win = nullptr;
    bool win_is_timer = false;
    for (const auto& [key, e] : model_) {
      if (win == nullptr || e.deadline < win->deadline ||
          (e.deadline == win->deadline && e.seq < win->seq)) {
        win = &e;
        win_key = key;
        win_is_timer = false;
      }
    }
    for (const auto& [slot, e] : timer_model_) {
      if (win == nullptr || e.deadline < win->deadline ||
          (e.deadline == win->deadline && e.seq < win->seq)) {
        win = &e;
        win_key = -1 - slot;
        win_is_timer = true;
      }
    }
    const Time expect_time = win->deadline;
    const std::size_t fired_before = fired_.size();
    ASSERT_TRUE(sim_.run_next());
    ASSERT_EQ(fired_.size(), fired_before + 1);
    EXPECT_EQ(fired_.back(), win_key);
    EXPECT_EQ(sim_.now(), expect_time);
    if (win_is_timer) {
      timer_model_.erase(-1 - win_key);
    } else {
      model_.erase(win_key);
    }
  }

  Simulator sim_;
  std::mt19937_64 rng_;
  std::uint64_t model_seq_ = 0;
  int next_key_ = 0;
  std::vector<int> fired_;
  std::map<int, EventId> ids_;
  std::map<int, ModelEntry> model_;        // plain events by key
  std::map<int, ModelEntry> timer_model_;  // armed timers by slot
  std::unique_ptr<Timer> timers_[kTimers];
};

TEST(EventStress, TenThousandRandomOpsMatchReferenceModel) {
  StressHarness h(0xC0FFEE);
  h.run(10000);
}

TEST(EventStress, AlternateSeedsMatchReferenceModel) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    StressHarness h(seed);
    h.run(3000);
  }
}

} // namespace
} // namespace quicbench::netsim
