#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "runner/parallel.h"

namespace quicbench::runner {
namespace {

TEST(ParallelFor, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndNegative) {
  int count = 0;
  parallel_for(0, [&](int) { ++count; });
  parallel_for(-5, [&](int) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelFor, ExplicitThreadCount) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(
      64, [&](int i) { hits[static_cast<std::size_t>(i)]++; },
      /*threads=*/3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<int> order;
  parallel_for(
      10, [&](int i) { order.push_back(i); }, /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::set<int> seen;
  std::mutex mu;
  parallel_for(
      3,
      [&](int i) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(i);
      },
      /*threads=*/16);
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2}));
}

} // namespace
} // namespace quicbench::runner
