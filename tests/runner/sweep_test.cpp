#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "runner/fingerprint.h"
#include "runner/sweep.h"
#include "util/json.h"

namespace quicbench::runner {
namespace {

using stacks::CcaType;
using stacks::Registry;

harness::ExperimentConfig quick_cfg() {
  harness::ExperimentConfig cfg;
  cfg.duration = time::sec(3);
  cfg.trials = 2;
  return cfg;
}

std::string temp_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("qb_sweep_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

SweepOptions no_cache_opts(int threads = 0) {
  SweepOptions opts;
  opts.threads = threads;
  opts.use_cache = false;
  opts.manifest_dir = temp_dir("manifests");
  return opts;
}

void expect_bit_identical(const harness::PairResult& a,
                          const harness::PairResult& b) {
  EXPECT_EQ(a.points_a, b.points_a);
  EXPECT_EQ(a.points_b, b.points_b);
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  EXPECT_EQ(bits(a.tput_a_mbps), bits(b.tput_a_mbps));
  EXPECT_EQ(bits(a.tput_b_mbps), bits(b.tput_b_mbps));
  EXPECT_EQ(bits(a.share_a), bits(b.share_a));
  EXPECT_EQ(bits(a.share_b), bits(b.share_b));
}

TEST(Sweep, MatchesDirectRunPair) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* quiche = reg.find("quiche", CcaType::kCubic);
  const auto cfg = quick_cfg();

  Sweep sweep("direct", no_cache_opts());
  const auto id = sweep.add_pair(*quiche, ref, cfg);
  sweep.run();

  // Trial-parallel scheduling must reproduce the serial path bit for bit.
  expect_bit_identical(sweep.pair_result(id),
                       harness::run_pair(*quiche, ref, cfg));
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kBbr);
  const auto* mvfst = reg.find("mvfst", CcaType::kBbr);
  const auto cfg = quick_cfg();

  Sweep serial("t1", no_cache_opts(1));
  Sweep parallel4("t4", no_cache_opts(4));
  const auto p1 = serial.add_pair(*mvfst, ref, cfg);
  const auto c1 = serial.add_conformance(*mvfst, ref, cfg);
  const auto p4 = parallel4.add_pair(*mvfst, ref, cfg);
  const auto c4 = parallel4.add_conformance(*mvfst, ref, cfg);
  serial.run();
  parallel4.run();

  expect_bit_identical(serial.pair_result(p1), parallel4.pair_result(p4));
  EXPECT_EQ(serial.conformance_result(c1).conformance,
            parallel4.conformance_result(c4).conformance);
  EXPECT_EQ(serial.conformance_result(c1).conformance_t,
            parallel4.conformance_result(c4).conformance_t);
}

TEST(Sweep, DeduplicatesIdenticalPairs) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* quiche = reg.find("quiche", CcaType::kCubic);
  const auto* chromium = reg.find("chromium", CcaType::kCubic);
  const auto cfg = quick_cfg();

  Sweep sweep("dedup", no_cache_opts());
  // Two conformance cells sharing a reference: 3 unique pairs, not 4.
  sweep.add_conformance(*quiche, ref, cfg);
  sweep.add_conformance(*chromium, ref, cfg);
  sweep.run();
  EXPECT_EQ(sweep.stats().cells, 2);
  EXPECT_EQ(sweep.stats().unique_pairs, 3);
  EXPECT_EQ(sweep.stats().simulations_executed,
            static_cast<long long>(3 * cfg.trials));
}

TEST(Sweep, WarmCacheRunPerformsNoSimulations) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kReno);
  const auto* xquic = reg.find("xquic", CcaType::kReno);
  const auto cfg = quick_cfg();
  const std::string cache_dir = temp_dir("warm_cache");

  SweepOptions opts;
  opts.cache_dir = cache_dir;
  opts.manifest_dir = temp_dir("warm_manifests");

  Sweep cold("cold", opts);
  const auto cold_id = cold.add_conformance(*xquic, ref, cfg);
  cold.run();
  EXPECT_GT(cold.stats().simulations_executed, 0);
  EXPECT_EQ(cold.stats().cache_hits, 0);
  EXPECT_EQ(cold.stats().cache_misses, 2);

  Sweep warm("warm", opts);
  const auto warm_id = warm.add_conformance(*xquic, ref, cfg);
  warm.run();
  EXPECT_EQ(warm.stats().simulations_executed, 0);
  EXPECT_EQ(warm.stats().cache_hits, 2);
  EXPECT_EQ(warm.stats().cache_misses, 0);

  EXPECT_EQ(cold.conformance_result(cold_id).conformance,
            warm.conformance_result(warm_id).conformance);
}

TEST(Sweep, ImpairedPairCachesAndReproduces) {
  // An impaired trial with a fixed seed is as cacheable as a clean one:
  // the second run is served entirely from cache and reproduces the
  // first bit for bit, and the manifest records the impairment string
  // under the same fingerprint.
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  auto cfg = quick_cfg();
  cfg.net.impairment.loss_rate = 0.02;
  cfg.net.impairment.reorder_rate = 0.01;
  cfg.net.impairment.ack_loss_rate = 0.01;

  SweepOptions opts;
  opts.cache_dir = temp_dir("impaired_cache");
  opts.manifest_dir = temp_dir("impaired_manifests");

  Sweep cold("imp_cold", opts);
  const auto cold_id = cold.add_pair(ref, ref, cfg);
  cold.run();
  EXPECT_GT(cold.stats().simulations_executed, 0);
  EXPECT_EQ(cold.stats().cache_hits, 0);

  Sweep warm("imp_warm", opts);
  const auto warm_id = warm.add_pair(ref, ref, cfg);
  warm.run();
  EXPECT_EQ(warm.stats().simulations_executed, 0);
  EXPECT_EQ(warm.stats().cache_hits, 1);

  expect_bit_identical(cold.pair_result(cold_id), warm.pair_result(warm_id));
  // The impairments bit: both flows saw losses the clean dumbbell
  // (buffer_bdp=1, no impairment) would not produce in 3 s of self-play.
  EXPECT_GT(cold.pair_result(cold_id).diagnostics.flow[0].retx_rate, 0.0);

  std::ifstream f(warm.write_manifest());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("\"impairment\": \"loss=2% reorder=1%/3 "
                          "ack_loss=1%\""),
            std::string::npos);
  EXPECT_NE(ss.str().find("\"cached\": true"), std::string::npos);
}

TEST(Sweep, RejectsInvalidConfigAtAdd) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  Sweep sweep("invalid", no_cache_opts());
  auto cfg = quick_cfg();
  cfg.trials = 0;
  EXPECT_THROW(sweep.add_pair(ref, ref, cfg), std::invalid_argument);
  cfg = quick_cfg();
  cfg.duration = 0;
  EXPECT_THROW(sweep.add_conformance(ref, ref, cfg), std::invalid_argument);
}

TEST(Sweep, LifecycleErrors) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto cfg = quick_cfg();
  Sweep sweep("lifecycle", no_cache_opts());
  const auto pair_id = sweep.add_pair(ref, ref, cfg);
  EXPECT_THROW(sweep.pair_result(pair_id), std::logic_error);  // before run
  sweep.run();
  EXPECT_THROW(sweep.add_pair(ref, ref, cfg), std::logic_error);
  EXPECT_THROW(sweep.run(), std::logic_error);
  // Kind mismatch: a pair cell has no conformance report.
  EXPECT_THROW(sweep.conformance_result(pair_id), std::logic_error);
  EXPECT_THROW(sweep.pair_result(999), std::logic_error);
}

TEST(Sweep, ManifestReportsSchemaAndCounts) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  Sweep sweep("manifest", no_cache_opts());
  sweep.add_pair(ref, ref, quick_cfg());
  sweep.run();
  const std::string path = sweep.write_manifest();
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("\"schema\": \"quicbench.sweep.manifest/v6\""),
            std::string::npos);
  EXPECT_NE(body.find("\"finalize_sec\""), std::string::npos);
  EXPECT_NE(body.find("\"impairment\": \"none\""), std::string::npos);
  EXPECT_NE(body.find("\"simulations_executed\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(body.find("\"cache\""), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Sweep, ManifestCarriesDiagnostics) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* quiche = reg.find("quiche", CcaType::kCubic);
  Sweep sweep("diag", no_cache_opts());
  sweep.add_conformance(*quiche, ref, quick_cfg());
  sweep.run();

  std::string err;
  const auto doc = json_parse(slurp(sweep.write_manifest()), &err);
  ASSERT_TRUE(doc.has_value()) << err;

  const JsonValue* pairs = doc->find("pairs");
  ASSERT_NE(pairs, nullptr);
  ASSERT_FALSE(pairs->array.empty());
  for (const JsonValue& p : pairs->array) {
    const JsonValue* d = p.find("diagnostics");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->find("valid")->boolean);
    const JsonValue* flows = d->find("flows");
    ASSERT_NE(flows, nullptr);
    ASSERT_EQ(flows->array.size(), 2u);
    // 3 s of CUBIC at 20 Mbps always leaves slow start and sees loss.
    EXPECT_GT(flows->array[0].find("loss_rate")->number, 0.0);
    const JsonValue* phases = flows->array[0].find("phase_residency_sec");
    ASSERT_NE(phases, nullptr);
    EXPECT_FALSE(phases->object.empty());
    EXPECT_GT(d->find("queue_hwm_bytes")->number, 0.0);
    EXPECT_GT(d->find("utilization")->number, 0.0);
  }

  const JsonValue* cells = doc->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->array.size(), 1u);
  const JsonValue* vs_ref = cells->array[0].find("diagnostics_vs_ref");
  ASSERT_NE(vs_ref, nullptr);
  EXPECT_NE(vs_ref->find("loss_rate_delta"), nullptr);
  EXPECT_NE(vs_ref->find("queue_hwm_delta_bytes"), nullptr);
  EXPECT_NE(vs_ref->find("utilization_delta"), nullptr);

  const JsonValue* obs = doc->find("observability");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->find("qlog_dir")->string, "");
  EXPECT_EQ(obs->find("profile")->string, "");
}

TEST(Sweep, DiagnosticsSurviveTheCache) {
  const auto& ref = Registry::instance().reference(CcaType::kReno);
  const auto cfg = quick_cfg();
  SweepOptions opts;
  opts.cache_dir = temp_dir("diag_cache");
  opts.manifest_dir = temp_dir("diag_cache_manifests");

  Sweep cold("diag_cold", opts);
  cold.add_pair(ref, ref, cfg);
  cold.run();

  Sweep warm("diag_warm", opts);
  warm.add_pair(ref, ref, cfg);
  warm.run();
  ASSERT_EQ(warm.stats().cache_hits, 1);

  EXPECT_TRUE(cold.pair_result(0).diagnostics.valid);
  const harness::PairDiagnostics& cd = cold.pair_result(0).diagnostics;
  const harness::PairDiagnostics& wd = warm.pair_result(0).diagnostics;
  ASSERT_TRUE(wd.valid);
  EXPECT_EQ(cd.queue_hwm_bytes, wd.queue_hwm_bytes);
  EXPECT_EQ(cd.bottleneck_drops, wd.bottleneck_drops);
  EXPECT_EQ(cd.utilization, wd.utilization);
  for (int f = 0; f < 2; ++f) {
    EXPECT_EQ(cd.flow[f].loss_rate, wd.flow[f].loss_rate);
    EXPECT_EQ(cd.flow[f].phase_residency_sec,
              wd.flow[f].phase_residency_sec);
  }
}

TEST(Sweep, FlightRecorderEmitsQlogAndProfile) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kBbr);
  const auto cfg = quick_cfg();

  SweepOptions opts = no_cache_opts();
  opts.qlog_dir = temp_dir("fr_qlog");
  opts.profile = true;
  opts.profile_dir = temp_dir("fr_profile");

  Sweep sweep("fr", opts);
  sweep.add_pair(ref, ref, cfg);
  sweep.run();

  // Per flow per trial: one event qlog carrying phase transitions, one
  // flight-recorder qlog of periodic metrics_updated samples, and one
  // flight-recorder CSV — all parseable.
  int qlogs = 0, flight_qlogs = 0, flight_csvs = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           sweep.qlog_dir_used())) {
    const std::string path = entry.path().string();
    const bool flight =
        path.find("_flight.") != std::string::npos;
    if (entry.path().extension() == ".csv") {
      if (!flight) continue;
      ++flight_csvs;
      EXPECT_NE(slurp(path).find("t_ms,cwnd_bytes"), std::string::npos)
          << path;
      continue;
    }
    if (entry.path().extension() != ".qlog") continue;
    std::string err;
    const auto doc = json_parse(slurp(path), &err);
    ASSERT_TRUE(doc.has_value()) << path << ": " << err;
    if (flight) {
      ++flight_qlogs;
      EXPECT_NE(slurp(path).find("metrics_updated"), std::string::npos)
          << path;
    } else {
      ++qlogs;
      EXPECT_NE(slurp(path).find("congestion_state_updated"),
                std::string::npos)
          << path;
    }
  }
  EXPECT_EQ(qlogs, 2 * cfg.trials);
  EXPECT_EQ(flight_qlogs, 2 * cfg.trials);
  EXPECT_EQ(flight_csvs, 2 * cfg.trials);

  // The profile has one "trial" span per simulation executed.
  ASSERT_FALSE(sweep.profile_path().empty());
  std::string err;
  const auto prof = json_parse(slurp(sweep.profile_path()), &err);
  ASSERT_TRUE(prof.has_value()) << err;
  int trial_spans = 0;
  for (const JsonValue& e : prof->find("traceEvents")->array) {
    const JsonValue* cat = e.find("cat");
    if (cat != nullptr && cat->string == "trial") ++trial_spans;
  }
  EXPECT_EQ(trial_spans, cfg.trials);

  // And the manifest points at both.
  const auto doc = json_parse(slurp(sweep.write_manifest()), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* obs = doc->find("observability");
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->find("qlog_dir")->string, opts.qlog_dir);
  EXPECT_EQ(obs->find("profile")->string, sweep.profile_path());
}

TEST(Sweep, FlightRecorderKeepsResultsBitIdentical) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* chromium = reg.find("chromium", CcaType::kCubic);
  const auto cfg = quick_cfg();

  Sweep plain("fr_plain", no_cache_opts());
  const auto p_id = plain.add_pair(*chromium, ref, cfg);
  plain.run();

  SweepOptions opts = no_cache_opts();
  opts.qlog_dir = temp_dir("fr_bitident_qlog");
  opts.profile = true;
  opts.profile_dir = temp_dir("fr_bitident_profile");
  Sweep recorded("fr_rec", opts);
  const auto r_id = recorded.add_pair(*chromium, ref, cfg);
  recorded.run();

  expect_bit_identical(plain.pair_result(p_id), recorded.pair_result(r_id));
}

harness::ScenarioConfig quick_scenario(int n_flows, bool churn) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  harness::ScenarioConfig sc;
  sc.duration = time::sec(3);
  sc.trials = 2;
  for (int i = 0; i < n_flows; ++i) {
    harness::FlowSpec f;
    f.impl = ref;
    f.role = i == 0 ? harness::FlowRole::kTest
                    : harness::FlowRole::kReference;
    if (churn && i > 0) {
      f.role = harness::FlowRole::kBackground;
      f.arrival_rate = static_cast<double>(n_flows - 1) / 1.8;
      f.sample_size = true;
    }
    sc.flows.push_back(f);
  }
  if (churn) {
    sc.size_dist.min_bytes = 100'000;
    sc.size_dist.max_bytes = 500'000;
  }
  return sc;
}

void expect_scenarios_identical(const harness::ScenarioResult& a,
                                const harness::ScenarioResult& b) {
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].points, b.flows[i].points) << "flow " << i;
    EXPECT_EQ(bits(a.flows[i].tput_mbps), bits(b.flows[i].tput_mbps));
    EXPECT_EQ(bits(a.flows[i].share), bits(b.flows[i].share));
    EXPECT_EQ(bits(a.flows[i].completed_frac),
              bits(b.flows[i].completed_frac));
  }
  EXPECT_EQ(bits(a.jain_overall), bits(b.jain_overall));
  EXPECT_EQ(bits(a.churn.arrivals), bits(b.churn.arrivals));
  EXPECT_EQ(bits(a.churn.departures), bits(b.churn.departures));
  EXPECT_EQ(a.churn.peak_concurrent, b.churn.peak_concurrent);
  EXPECT_EQ(a.queue_hwm_bytes, b.queue_hwm_bytes);
  EXPECT_EQ(a.bottleneck_drops, b.bottleneck_drops);
}

TEST(Sweep, ScenarioMatchesDirectRunScenario) {
  const auto sc = quick_scenario(4, false);
  Sweep sweep("scen_direct", no_cache_opts());
  const auto id = sweep.add_scenario(sc);
  sweep.run();
  EXPECT_EQ(sweep.stats().unique_scenarios, 1);
  EXPECT_EQ(sweep.stats().simulations_executed,
            static_cast<long long>(sc.trials));
  expect_scenarios_identical(sweep.scenario_result(id),
                             harness::run_scenario(sc));
}

// The sweep-level half of the churn-determinism gate: the same churning
// scenario run at 1 worker and at 4 reproduces per-flow byte totals and
// fairness bit for bit.
TEST(Sweep, ChurnScenarioDeterministicAcrossThreadCounts) {
  const auto sc = quick_scenario(8, true);
  Sweep serial("scen_t1", no_cache_opts(1));
  Sweep parallel4("scen_t4", no_cache_opts(4));
  const auto s1 = serial.add_scenario(sc);
  const auto c1 = serial.add_scenario_conformance(sc, sc);
  const auto s4 = parallel4.add_scenario(sc);
  const auto c4 = parallel4.add_scenario_conformance(sc, sc);
  serial.run();
  parallel4.run();
  expect_scenarios_identical(serial.scenario_result(s1),
                             parallel4.scenario_result(s4));
  EXPECT_EQ(serial.conformance_result(c1).conformance,
            parallel4.conformance_result(c4).conformance);
}

TEST(Sweep, DeduplicatesSharedScenarios) {
  // Two conformance cells against the same reference scenario: 3 unique
  // scenarios, not 4 — and a raw cell for one of them adds nothing.
  const auto& reg = Registry::instance();
  auto test_a = quick_scenario(3, false);
  test_a.flows[0].impl = *reg.find("quiche", CcaType::kCubic);
  auto test_b = quick_scenario(3, false);
  test_b.flows[0].impl = reg.reference(CcaType::kBbr);
  const auto ref_sc = quick_scenario(3, false);
  Sweep sweep("scen_dedup", no_cache_opts());
  sweep.add_scenario_conformance(test_a, ref_sc);
  sweep.add_scenario_conformance(test_b, ref_sc);
  sweep.add_scenario(ref_sc);
  sweep.run();
  EXPECT_EQ(sweep.stats().cells, 3);
  EXPECT_EQ(sweep.stats().unique_scenarios, 3);
  EXPECT_EQ(sweep.stats().unique_pairs, 0);
}

TEST(Sweep, ScenarioLifecycleAndKindErrors) {
  const auto sc = quick_scenario(2, false);
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  Sweep sweep("scen_kinds", no_cache_opts());
  const auto scen_id = sweep.add_scenario(sc);
  const auto pair_id = sweep.add_pair(ref, ref, quick_cfg());
  EXPECT_THROW(sweep.scenario_result(scen_id), std::logic_error);
  sweep.run();
  EXPECT_THROW(sweep.add_scenario(sc), std::logic_error);
  EXPECT_THROW(sweep.pair_result(scen_id), std::logic_error);
  EXPECT_THROW(sweep.scenario_result(pair_id), std::logic_error);
  EXPECT_THROW(sweep.conformance_result(scen_id), std::logic_error);
}

TEST(Sweep, RejectsInvalidScenarioAtAdd) {
  auto sc = quick_scenario(2, false);
  sc.flows.clear();
  Sweep sweep("scen_invalid", no_cache_opts());
  EXPECT_THROW(sweep.add_scenario(sc), std::invalid_argument);
  auto sc2 = quick_scenario(2, false);
  sc2.flows[1].flow_size = 0;
  EXPECT_THROW(sweep.add_scenario_conformance(sc2, quick_scenario(2, false)),
               std::invalid_argument);
}

TEST(Sweep, ManifestCarriesScenarioSections) {
  const auto sc = quick_scenario(4, true);
  Sweep sweep("scen_manifest", no_cache_opts());
  sweep.add_scenario_conformance(sc, sc);
  sweep.run();

  std::string err;
  const auto doc = json_parse(slurp(sweep.write_manifest()), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* scenarios = doc->find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_EQ(scenarios->array.size(), 1u);  // test == ref: deduplicated
  const JsonValue& s = scenarios->array[0];
  EXPECT_EQ(s.find("n_flows")->number, 4.0);
  EXPECT_EQ(s.find("roles")->find("test")->number, 1.0);
  EXPECT_EQ(s.find("roles")->find("background")->number, 3.0);
  const JsonValue* result = s.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->find("jain_overall")->number, 0.0);
  EXPECT_NE(result->find("churn")->find("peak_concurrent"), nullptr);

  const JsonValue* cells = doc->find("cells");
  ASSERT_EQ(cells->array.size(), 1u);
  const JsonValue& c = cells->array[0];
  EXPECT_EQ(c.find("kind")->string, "scenario_conformance");
  EXPECT_EQ(c.find("n_flows")->number, 4.0);
  ASSERT_NE(c.find("scenario_fingerprints"), nullptr);
  ASSERT_NE(c.find("fairness"), nullptr);
  EXPECT_GT(c.find("fairness")->find("test_jain")->number, 0.0);
}

TEST(RefPairCache, MemoizesAndSharesViaDisk) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto cfg = quick_cfg();
  ResultCache disk(temp_dir("refpair_disk"));

  RefPairCache first(&disk);
  const auto& a = first.get(ref, cfg);
  const auto& b = first.get(ref, cfg);
  EXPECT_EQ(&a, &b);  // in-memory memoization returns the same object
  EXPECT_EQ(disk.stores(), 1u);

  // A fresh instance (another binary, conceptually) loads from disk.
  RefPairCache second(&disk);
  expect_bit_identical(a, second.get(ref, cfg));
  EXPECT_EQ(disk.hits(), 1u);
}

TEST(RefPairCache, DistinguishesConfigsTheOldKeyConflated) {
  // Regression: the old string key ignored start_spread; two configs
  // differing only there must not share a cache slot.
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  auto cfg_a = quick_cfg();
  auto cfg_b = quick_cfg();
  cfg_b.start_spread = time::ms(40);
  RefPairCache cache(nullptr);
  const auto& ra = cache.get(ref, cfg_a);
  const auto& rb = cache.get(ref, cfg_b);
  EXPECT_NE(&ra, &rb);
}

TEST(ConformanceCell, MatchesMeasureConformance) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* quiche = reg.find("quiche", CcaType::kCubic);
  const auto cfg = quick_cfg();
  RefPairCache cache(nullptr);
  const auto via_cell = conformance_cell(*quiche, ref, cfg, cache);
  const auto direct = harness::measure_conformance(*quiche, ref, cfg);
  EXPECT_EQ(via_cell.conformance, direct.conformance);
  EXPECT_EQ(via_cell.conformance_t, direct.conformance_t);
}

} // namespace
} // namespace quicbench::runner
