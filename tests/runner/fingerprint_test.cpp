#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "runner/fingerprint.h"

namespace quicbench::runner {
namespace {

using stacks::CcaType;
using stacks::Registry;

harness::ExperimentConfig base_cfg() {
  harness::ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  cfg.trials = 2;
  return cfg;
}

TEST(Fingerprint, StableAcrossCalls) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto cfg = base_cfg();
  EXPECT_EQ(pair_fingerprint(ref, ref, cfg), pair_fingerprint(ref, ref, cfg));
  EXPECT_EQ(fingerprint(ref, cfg), fingerprint(ref, cfg));
  EXPECT_EQ(conformance_fingerprint(ref, ref, cfg, {}),
            conformance_fingerprint(ref, ref, cfg, {}));
}

TEST(Fingerprint, HexFormat) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const std::string fp = pair_fingerprint(ref, ref, base_cfg());
  ASSERT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << fp;
  }
}

TEST(Fingerprint, DistinguishesImplementations) {
  const auto& reg = Registry::instance();
  const auto cfg = base_cfg();
  std::set<std::string> fps;
  for (const auto& impl : reg.all()) {
    fps.insert(fingerprint(impl, cfg));
  }
  EXPECT_EQ(fps.size(), reg.all().size());
}

TEST(Fingerprint, PairOrderSensitive) {
  const auto& reg = Registry::instance();
  const auto& ref = reg.reference(CcaType::kCubic);
  const auto* quiche = reg.find("quiche", CcaType::kCubic);
  const auto cfg = base_cfg();
  EXPECT_NE(pair_fingerprint(*quiche, ref, cfg),
            pair_fingerprint(ref, *quiche, cfg));
}

// Every ExperimentConfig field must perturb the pair fingerprint. The
// last four (sampling, start_spread, flow_b_start, record_cwnd) are the
// regression for the old bench_common RefPairCache key, which omitted
// them and silently shared results between differing configs.
TEST(Fingerprint, EveryExperimentConfigFieldPerturbs) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto cfg = base_cfg();
  const std::string base = pair_fingerprint(ref, ref, cfg);

  std::vector<harness::ExperimentConfig> variants;
  const auto vary = [&](auto&& mutate) {
    harness::ExperimentConfig v = cfg;
    mutate(v);
    variants.push_back(v);
  };
  vary([](auto& v) { v.net.bandwidth = rate::mbps(21); });
  vary([](auto& v) { v.net.base_rtt = time::ms(11); });
  vary([](auto& v) { v.net.buffer_bdp = 2.0; });
  vary([](auto& v) { v.net.base_jitter = time::us(300); });
  vary([](auto& v) { v.net.path_jitter = time::ms(1); });
  vary([](auto& v) { v.net.jitter_reorder = true; });
  vary([](auto& v) { v.net.cross_traffic_rate = rate::mbps(1); });
  vary([](auto& v) { v.net.cross_on = time::ms(100); });
  vary([](auto& v) { v.net.cross_off = time::ms(900); });
  vary([](auto& v) {
    v.net.trace_opportunities = {time::ms(1), time::ms(2)};
    v.net.trace_period = time::ms(3);
  });
  vary([](auto& v) {
    v.net.trace_opportunities = {time::ms(1), time::ms(3)};
    v.net.trace_period = time::ms(3);
  });
  vary([](auto& v) { v.net.impairment.loss_rate = 0.01; });
  vary([](auto& v) { v.net.impairment.ge_loss_good = 0.001; });
  vary([](auto& v) { v.net.impairment.ge_loss_bad = 0.6; });
  vary([](auto& v) { v.net.impairment.ge_p_good_to_bad = 0.02; });
  vary([](auto& v) { v.net.impairment.ge_p_bad_to_good = 0.2; });
  vary([](auto& v) { v.net.impairment.reorder_rate = 0.01; });
  vary([](auto& v) { v.net.impairment.reorder_gap = 5; });
  vary([](auto& v) { v.net.impairment.reorder_flush = time::ms(75); });
  vary([](auto& v) { v.net.impairment.duplicate_rate = 0.01; });
  vary([](auto& v) { v.net.impairment.rtt_step_at = time::sec(1); });
  vary([](auto& v) { v.net.impairment.rtt_step_delta = time::ms(20); });
  vary([](auto& v) { v.net.impairment.ack_loss_rate = 0.01; });
  vary([](auto& v) { v.duration = time::sec(11); });
  vary([](auto& v) { v.trials = 3; });
  vary([](auto& v) { v.seed = 43; });
  vary([](auto& v) { v.sampling.truncate_fraction = 0.2; });
  vary([](auto& v) { v.sampling.rtts_per_sample = 5; });
  vary([](auto& v) { v.start_spread = time::ms(40); });
  vary([](auto& v) { v.flow_b_start = time::ms(5); });
  vary([](auto& v) { v.record_cwnd = true; });

  std::set<std::string> fps{base};
  for (const auto& v : variants) {
    const std::string fp = pair_fingerprint(ref, ref, v);
    EXPECT_NE(fp, base);
    fps.insert(fp);
  }
  // All variants must also differ from each other.
  EXPECT_EQ(fps.size(), variants.size() + 1);
}

TEST(Fingerprint, PairFingerprintIgnoresPeConfig) {
  // The simulated PairResult does not depend on PE extraction settings,
  // so pair_fingerprint takes no PeConfig at all — but the cell-level
  // fingerprints must include it.
  const auto& ref = Registry::instance().reference(CcaType::kBbr);
  const auto cfg = base_cfg();
  conformance::PeConfig pe;
  pe.max_k = 4;
  EXPECT_NE(conformance_fingerprint(ref, ref, cfg, {}),
            conformance_fingerprint(ref, ref, cfg, pe));
  EXPECT_NE(fingerprint(ref, cfg, {}), fingerprint(ref, cfg, pe));
}

TEST(Fingerprint, PeConfigFieldsPerturb) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  const auto cfg = base_cfg();
  const std::string base = conformance_fingerprint(ref, ref, cfg, {});

  std::vector<conformance::PeConfig> variants;
  const auto vary = [&](auto&& mutate) {
    conformance::PeConfig v;
    mutate(v);
    variants.push_back(v);
  };
  vary([](auto& v) { v.max_k = 3; });
  vary([](auto& v) { v.normalize = false; });
  vary([](auto& v) { v.seed = 8; });
  vary([](auto& v) { v.min_cluster_share = 0.05; });
  vary([](auto& v) { v.per_trial_clustering = false; });
  vary([](auto& v) { v.trial_quorum = 1.0; });
  vary([](auto& v) { v.min_iou_drop = 0.1; });

  std::set<std::string> fps{base};
  for (const auto& v : variants) {
    fps.insert(conformance_fingerprint(ref, ref, cfg, v));
  }
  EXPECT_EQ(fps.size(), variants.size() + 1);
}

harness::ScenarioConfig base_scenario() {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  harness::ScenarioConfig sc;
  sc.duration = time::sec(10);
  sc.trials = 2;
  harness::FlowSpec f;
  f.impl = ref;
  f.role = harness::FlowRole::kTest;
  sc.flows.push_back(f);
  f.role = harness::FlowRole::kReference;
  sc.flows.push_back(f);
  return sc;
}

TEST(Fingerprint, ScenarioStableAcrossCalls) {
  const auto sc = base_scenario();
  EXPECT_EQ(scenario_fingerprint(sc), scenario_fingerprint(sc));
  EXPECT_EQ(scenario_conformance_fingerprint(sc, sc, {}),
            scenario_conformance_fingerprint(sc, sc, {}));
}

// Every ScenarioConfig field — including every per-FlowSpec field and the
// size distribution — must perturb the scenario fingerprint.
TEST(Fingerprint, EveryScenarioConfigFieldPerturbs) {
  const auto sc = base_scenario();
  const std::string base = scenario_fingerprint(sc);

  std::vector<harness::ScenarioConfig> variants;
  const auto vary = [&](auto&& mutate) {
    harness::ScenarioConfig v = sc;
    mutate(v);
    variants.push_back(v);
  };
  vary([](auto& v) { v.net.bandwidth = rate::mbps(21); });
  vary([](auto& v) { v.duration = time::sec(11); });
  vary([](auto& v) { v.trials = 3; });
  vary([](auto& v) { v.seed = 43; });
  vary([](auto& v) { v.sampling.truncate_fraction = 0.2; });
  vary([](auto& v) { v.sampling.rtts_per_sample = 5; });
  vary([](auto& v) { v.record_cwnd = true; });
  vary([](auto& v) { v.flows.push_back(v.flows.back()); });
  vary([](auto& v) { v.flows.pop_back(); });
  vary([](auto& v) {
    v.flows[1].impl = Registry::instance().reference(CcaType::kBbr);
  });
  vary([](auto& v) { v.flows[1].role = harness::FlowRole::kBackground; });
  vary([](auto& v) { v.flows[1].start_at = time::sec(1); });
  vary([](auto& v) { v.flows[1].start_spread = time::ms(40); });
  vary([](auto& v) { v.flows[1].arrival_rate = 0.5; });
  vary([](auto& v) { v.flows[1].flow_size = 1'000'000; });
  vary([](auto& v) { v.flows[1].sample_size = true; });
  vary([](auto& v) { v.size_dist.shape = 1.5; });
  vary([](auto& v) { v.size_dist.min_bytes = 100'000; });
  vary([](auto& v) { v.size_dist.max_bytes = 900'000; });
  vary([](auto& v) { v.fairness_window = time::sec(5); });

  std::set<std::string> fps{base};
  for (const auto& v : variants) {
    const std::string fp = scenario_fingerprint(v);
    EXPECT_NE(fp, base);
    fps.insert(fp);
  }
  EXPECT_EQ(fps.size(), variants.size() + 1);
}

TEST(Fingerprint, ScenarioFlowOrderSensitive) {
  auto sc = base_scenario();
  sc.flows[1].impl = Registry::instance().reference(CcaType::kBbr);
  auto swapped = sc;
  std::swap(swapped.flows[0].impl, swapped.flows[1].impl);
  EXPECT_NE(scenario_fingerprint(sc), scenario_fingerprint(swapped));
}

TEST(Fingerprint, ScenarioFingerprintIgnoresPeConfig) {
  // As with pair_fingerprint: the simulated ScenarioResult does not
  // depend on PE extraction settings, but the cell fingerprint must.
  const auto sc = base_scenario();
  conformance::PeConfig pe;
  pe.max_k = 4;
  EXPECT_NE(scenario_conformance_fingerprint(sc, sc, {}),
            scenario_conformance_fingerprint(sc, sc, pe));
}

TEST(Fingerprint, ScenarioConformanceDistinguishesTestAndRef) {
  const auto test_sc = base_scenario();
  auto ref_sc = base_scenario();
  ref_sc.flows[0].impl = Registry::instance().reference(CcaType::kBbr);
  EXPECT_NE(scenario_conformance_fingerprint(test_sc, ref_sc, {}),
            scenario_conformance_fingerprint(ref_sc, test_sc, {}));
}

TEST(Fingerprint, ImplementationTweaksPerturb) {
  const auto& reg = Registry::instance();
  const auto cfg = base_cfg();
  const auto& ref = reg.reference(CcaType::kBbr);
  const std::string base = fingerprint(ref, cfg);

  stacks::Implementation tweaked = ref;
  tweaked.bbr.cwnd_gain += 0.25;
  EXPECT_NE(fingerprint(tweaked, cfg), base);

  // The Figure 5 modified-kernel variants must all key differently.
  std::set<std::string> fps;
  for (const double gain : {1.5, 2.0, 2.5, 3.0}) {
    fps.insert(fingerprint(stacks::modified_kernel_bbr(gain), cfg));
  }
  EXPECT_EQ(fps.size(), 4u);
}

TEST(Fingerprint, Bbr2AndRackFieldsPerturb) {
  const auto& reg = Registry::instance();
  const auto cfg = base_cfg();

  // Bbr2Config knobs the registry's deviation rows actually vary.
  const auto& b2 = reg.reference(CcaType::kBbr2);
  const std::string b2_base = fingerprint(b2, cfg);
  std::set<std::string> fps{b2_base};
  const auto vary_b2 = [&](auto&& mutate) {
    stacks::Implementation v = b2;
    mutate(v.bbr2);
    const std::string fp = fingerprint(v, cfg);
    EXPECT_NE(fp, b2_base);
    fps.insert(fp);
  };
  vary_b2([](auto& c) { c.pacing_rate_scale = 1.2; });
  vary_b2([](auto& c) { c.inflight_headroom = 0.0; });
  vary_b2([](auto& c) { c.loss_thresh = 0.05; });
  vary_b2([](auto& c) { c.beta = 0.8; });
  vary_b2([](auto& c) { c.bw_probe_wait = time::sec(3); });
  vary_b2([](auto& c) { c.probe_rtt_interval = time::sec(10); });
  vary_b2([](auto& c) { c.probe_rtt_cwnd_gain = 0.75; });
  EXPECT_EQ(fps.size(), 8u);

  // The loss-detection axis: cubic-rack must not collide with plain
  // cubic on the same stack, and each RACK knob must perturb.
  const auto& rack = reg.reference(CcaType::kCubicRack);
  const auto& cubic = reg.reference(CcaType::kCubic);
  EXPECT_NE(fingerprint(rack, cfg), fingerprint(cubic, cfg));
  const std::string rack_base = fingerprint(rack, cfg);
  const auto vary_rack = [&](auto&& mutate) {
    stacks::Implementation v = rack;
    mutate(v.profile.sender);
    EXPECT_NE(fingerprint(v, cfg), rack_base);
  };
  vary_rack([](auto& s) { s.rack_reo_wnd_fraction = 0.5; });
  vary_rack([](auto& s) { s.rack_max_reo_wnd_mult = 8; });
  vary_rack([](auto& s) { s.tlp_srtt_factor = 1.5; });
}

} // namespace
} // namespace quicbench::runner
