#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "runner/cache.h"

namespace quicbench::runner {
namespace {

std::string temp_cache_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("qb_cache_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

harness::PairResult sample_result() {
  harness::PairResult pr;
  // Values chosen to exercise exact bit patterns (0.1 is not
  // representable; the cache must round-trip the stored bits, not a
  // decimal rendering).
  pr.points_a = {{{1.5, 2.25}, {0.1, 1.0 / 3.0}}, {{-4.0, 19.75}}};
  pr.points_b = {{{2.0, 3.0}}, {}};
  pr.tput_a_mbps = 9.300000000000001;
  pr.tput_b_mbps = 10.7;
  pr.share_a = 9.300000000000001 / 20.0;
  pr.share_b = 1.0 - pr.share_a;
  return pr;
}

void expect_bit_identical(const harness::PairResult& a,
                          const harness::PairResult& b) {
  EXPECT_EQ(a.points_a, b.points_a);
  EXPECT_EQ(a.points_b, b.points_b);
  const auto bits = [](double v) {
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  EXPECT_EQ(bits(a.tput_a_mbps), bits(b.tput_a_mbps));
  EXPECT_EQ(bits(a.tput_b_mbps), bits(b.tput_b_mbps));
  EXPECT_EQ(bits(a.share_a), bits(b.share_a));
  EXPECT_EQ(bits(a.share_b), bits(b.share_b));
}

TEST(ResultCache, RoundTripBitIdentical) {
  ResultCache cache(temp_cache_dir("roundtrip"));
  const auto pr = sample_result();
  ASSERT_TRUE(cache.store("0123456789abcdef", pr));
  const auto loaded = cache.load("0123456789abcdef");
  ASSERT_TRUE(loaded.has_value());
  expect_bit_identical(pr, *loaded);
  EXPECT_TRUE(loaded->trials.empty());
}

TEST(ResultCache, MissOnAbsentKey) {
  ResultCache cache(temp_cache_dir("absent"));
  EXPECT_FALSE(cache.load("feedfacefeedface").has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ResultCache, CorruptEntryIsAMissNotAnError) {
  ResultCache cache(temp_cache_dir("corrupt"));
  ASSERT_TRUE(cache.store("aaaabbbbccccdddd", sample_result()));
  {
    std::ofstream f(std::filesystem::path(cache.dir()) /
                        "aaaabbbbccccdddd.qbr",
                    std::ios::binary | std::ios::trunc);
    f << "not a cache entry";
  }
  EXPECT_FALSE(cache.load("aaaabbbbccccdddd").has_value());
}

TEST(ResultCache, TruncatedEntryIsAMiss) {
  ResultCache cache(temp_cache_dir("truncated"));
  ASSERT_TRUE(cache.store("1111222233334444", sample_result()));
  const auto path =
      std::filesystem::path(cache.dir()) / "1111222233334444.qbr";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_FALSE(cache.load("1111222233334444").has_value());
}

TEST(ResultCache, WrongMagicIsAMiss) {
  ResultCache cache(temp_cache_dir("magic"));
  ASSERT_TRUE(cache.store("5555666677778888", sample_result()));
  const auto path =
      std::filesystem::path(cache.dir()) / "5555666677778888.qbr";
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f.write("XXXX", 4);  // clobber the magic, leave the rest intact
  }
  EXPECT_FALSE(cache.load("5555666677778888").has_value());
}

TEST(ResultCache, DeclinesResultsWithRetainedTrials) {
  ResultCache cache(temp_cache_dir("trials"));
  auto pr = sample_result();
  pr.trials.emplace_back();  // record_cwnd-style retained traces
  EXPECT_FALSE(cache.store("9999aaaabbbbcccc", pr));
  EXPECT_FALSE(cache.load("9999aaaabbbbcccc").has_value());
}

TEST(ResultCache, CountsHitsMissesStores) {
  ResultCache cache(temp_cache_dir("counters"));
  EXPECT_FALSE(cache.load("e0e0e0e0e0e0e0e0").has_value());
  ASSERT_TRUE(cache.store("e0e0e0e0e0e0e0e0", sample_result()));
  EXPECT_TRUE(cache.load("e0e0e0e0e0e0e0e0").has_value());
  EXPECT_TRUE(cache.load("e0e0e0e0e0e0e0e0").has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.stores(), 1u);
}

TEST(ResultCache, SeparateInstancesShareTheDirectory) {
  const std::string dir = temp_cache_dir("shared");
  ResultCache writer(dir);
  ASSERT_TRUE(writer.store("d1d2d3d4d5d6d7d8", sample_result()));
  ResultCache reader(dir);  // fresh instance, same directory (new binary)
  const auto loaded = reader.load("d1d2d3d4d5d6d7d8");
  ASSERT_TRUE(loaded.has_value());
  expect_bit_identical(sample_result(), *loaded);
}

} // namespace
} // namespace quicbench::runner
