#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json.h"

namespace quicbench {
namespace {

TEST(JsonEscape, ControlAndSpecialChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonWriter, EmptyObjectAndArray) {
  // Documents end with a trailing newline.
  JsonWriter o;
  o.begin_object().end_object();
  EXPECT_EQ(o.str(), "{}\n");
  JsonWriter a;
  a.begin_array().end_array();
  EXPECT_EQ(a.str(), "[]\n");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "sweep");
  w.kv("threads", 4);
  w.kv("enabled", true);
  w.key("items").begin_array();
  w.value(std::int64_t{1});
  w.begin_object().kv("x", 2.5).end_object();
  w.null();
  w.end_array();
  w.end_object();
  const std::string s = w.str();
  EXPECT_NE(s.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(s.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(s.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(s.find("\"x\": 2.5"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter w;
  w.begin_array().value(0.1).value(1.0 / 3.0).end_array();
  const std::string s = w.str();
  // %.17g preserves the exact value.
  EXPECT_NE(s.find("0.1000000000000000"), std::string::npos);
  EXPECT_NE(s.find("0.3333333333333333"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  const std::string s = w.str();
  EXPECT_EQ(s.find("nan"), std::string::npos);
  EXPECT_EQ(s.find("inf"), std::string::npos);
  EXPECT_NE(s.find("null"), std::string::npos);
}

TEST(JsonWriter, EscapesKeysAndValues) {
  JsonWriter w;
  w.begin_object().kv("we\"ird", "line\nbreak").end_object();
  const std::string s = w.str();
  EXPECT_NE(s.find("\"we\\\"ird\""), std::string::npos);
  EXPECT_NE(s.find("line\\nbreak"), std::string::npos);
}

} // namespace
} // namespace quicbench
