// Two-world equivalence for the receiver's same-tick duplicate-ACK
// coalescing: the same traffic — in-order runs, a gap, a gap fill,
// same-tick duplicates of both the just-acked largest pn and of older
// pns — is replayed with coalescing on and off, and every observable
// must match exactly: the full ACK stream (every frame field and range),
// the delivery and per-packet callback streams, and all stats except
// dups_coalesced (which must be positive in the on-world when dups of
// the just-immediate-acked packet land in the same tick).

#include "transport/receiver.h"

#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/event.h"
#include "netsim/packet.h"
#include "transport/profile.h"
#include "util/units.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::PacketSink;
using netsim::Simulator;

struct AckRec {
  Time t = 0;
  Packet p;
};

class AckCapture : public PacketSink {
 public:
  explicit AckCapture(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override { recs.push_back({sim_.now(), p}); }
  std::vector<AckRec> recs;

 private:
  Simulator& sim_;
};

struct World {
  std::vector<AckRec> acks;
  std::vector<std::tuple<Time, Bytes, Time>> deliveries;
  std::vector<std::tuple<Time, std::uint64_t, Bytes>> packets;
  ReceiverStats stats;
};

// Deterministic traffic; duplicates are separate events scheduled at the
// same tick as the original, so the engine's pending-event probe sees
// them and the stash can arm.
World run_world(bool coalesce, int ack_every_n) {
  Simulator sim;
  AckCapture cap(sim);
  ReceiverProfile prof;
  prof.ack_every_n = ack_every_n;
  prof.ack_on_gap = true;
  ReceiverEndpoint rx(sim, 0, prof, &cap);
  rx.set_coalesce_same_tick_dups(coalesce);

  World w;
  rx.set_delivery_callback([&w](Time now, Bytes payload, Time owd) {
    w.deliveries.emplace_back(now, payload, owd);
  });
  rx.set_packet_callback([&w](Time now, std::uint64_t pn, Bytes size) {
    w.packets.emplace_back(now, pn, size);
  });

  auto send = [&sim, &rx](Time at, std::uint64_t pn) {
    sim.schedule_in(at, [&rx, pn, at] {
      Packet p;
      p.kind = PacketKind::kData;
      p.flow = 0;
      p.pn = pn;
      p.size = 1200;
      p.payload = 1200;
      p.sent_time = at / 2;
      rx.deliver(std::move(p));
    });
  };

  // In-order warmup.
  for (std::uint64_t pn = 0; pn <= 4; ++pn) {
    send(time::ms(static_cast<std::int64_t>(pn) + 1), pn);
  }
  // pn 5 skipped: 6 opens a gap (multi-range ACKs from here on) and is
  // duplicated in-tick — the absorbable case.
  send(time::ms(6), 6);
  send(time::ms(6), 6);
  // Two same-tick dups in a row: the stash must survive the first absorb
  // while more same-tick work is pending.
  send(time::ms(7), 7);
  send(time::ms(7), 7);
  send(time::ms(7), 7);
  // Gap fill, plus a same-tick dup of a NON-largest pn: must never be
  // absorbed (full duplicate path, still byte-identical ACK behavior).
  send(time::ms(8), 5);
  send(time::ms(8), 5);
  // Clean tail with one more absorbable dup.
  send(time::ms(9), 8);
  send(time::ms(9), 8);
  send(time::ms(10), 9);

  sim.run_until(time::ms(200));

  w.acks = std::move(cap.recs);
  w.stats = rx.stats();
  return w;
}

void expect_ack_streams_equal(const std::vector<AckRec>& a,
                              const std::vector<AckRec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "ack " << i;
    EXPECT_EQ(a[i].p.kind, b[i].p.kind) << "ack " << i;
    EXPECT_EQ(a[i].p.flow, b[i].p.flow) << "ack " << i;
    EXPECT_EQ(a[i].p.size, b[i].p.size) << "ack " << i;
    EXPECT_EQ(a[i].p.largest_acked, b[i].p.largest_acked) << "ack " << i;
    EXPECT_EQ(a[i].p.ack_delay, b[i].p.ack_delay) << "ack " << i;
    EXPECT_EQ(a[i].p.largest_recv_time, b[i].p.largest_recv_time)
        << "ack " << i;
    ASSERT_EQ(a[i].p.n_ranges, b[i].p.n_ranges) << "ack " << i;
    for (int r = 0; r < a[i].p.n_ranges; ++r) {
      EXPECT_EQ(a[i].p.range(r).first, b[i].p.range(r).first)
          << "ack " << i << " range " << r;
      EXPECT_EQ(a[i].p.range(r).last, b[i].p.range(r).last)
          << "ack " << i << " range " << r;
    }
  }
}

void expect_worlds_equal(const World& on, const World& off) {
  expect_ack_streams_equal(on.acks, off.acks);
  EXPECT_EQ(on.deliveries, off.deliveries);
  EXPECT_EQ(on.packets, off.packets);
  EXPECT_EQ(on.stats.packets_received, off.stats.packets_received);
  EXPECT_EQ(on.stats.bytes_received, off.stats.bytes_received);
  EXPECT_EQ(on.stats.acks_sent, off.stats.acks_sent);
  EXPECT_EQ(on.stats.duplicate_packets, off.stats.duplicate_packets);
  EXPECT_EQ(off.stats.dups_coalesced, 0);
}

TEST(ReceiverDupCoalesce, AckEveryPacketWorldsIdentical) {
  const World off = run_world(false, /*ack_every_n=*/1);
  const World on = run_world(true, /*ack_every_n=*/1);
  expect_worlds_equal(on, off);
  // Absorbable dups: one of pn 6, two of pn 7, one of pn 8. The dup of
  // pn 5 (non-largest at its tick) must have gone down the full path.
  EXPECT_EQ(on.stats.dups_coalesced, 4);
  EXPECT_EQ(on.stats.duplicate_packets, 5);
}

TEST(ReceiverDupCoalesce, DelayedAckProfileWorldsIdentical) {
  // With ack-every-2 the immediate branch only fires on gaps and
  // out-of-order arrivals; the delayed-ack timer path must stay
  // untouched by the stash machinery.
  const World off = run_world(false, /*ack_every_n=*/2);
  const World on = run_world(true, /*ack_every_n=*/2);
  expect_worlds_equal(on, off);
  EXPECT_GT(on.stats.dups_coalesced, 0);
  EXPECT_EQ(on.stats.duplicate_packets, 5);
}

} // namespace
} // namespace quicbench::transport
