// Reorder-threshold adaptation and the spurious-loss undo path. A
// spurious loss (late ack of a packet already declared lost) widens the
// sender's packet reorder threshold RACK-style, up to the profile cap;
// with rollback enabled CUBIC undoes the matching backoff. Hand-driven
// network as in loss_test.cpp so acks land exactly where we want them.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "cca/cubic.h"
#include "netsim/event.h"
#include "transport/sender.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

class ReorderNet : public netsim::PacketSink {
 public:
  void deliver(Packet p) override { sent.push_back(std::move(p)); }
  std::deque<Packet> sent;
};

struct ReorderFixture {
  Simulator sim;
  ReorderNet net;
  cca::Cubic* cubic = nullptr;  // owned by sender
  std::unique_ptr<SenderEndpoint> sender;

  explicit ReorderFixture(SenderProfile profile = kernel_tcp_profile().sender,
                          cca::CubicConfig ccfg = {}) {
    ccfg.mss = profile.mss;
    auto cc = std::make_unique<cca::Cubic>(ccfg);
    cubic = cc.get();
    sender = std::make_unique<SenderEndpoint>(sim, 0, profile, std::move(cc),
                                              &net, Rng(2));
    sender->start(0);
    sim.run_until(time::ms(1));
  }

  void ack_ranges(std::initializer_list<std::pair<std::uint64_t, std::uint64_t>>
                      ranges) {
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.flow = 0;
    ack.size = 80;
    int n = 0;
    std::uint64_t largest = 0;
    for (const auto& [first, last] : ranges) {
      ack.set_range(n++, first, last);
      largest = std::max(largest, last);
    }
    ack.n_ranges = static_cast<std::uint8_t>(n);
    ack.largest_acked = largest;
    sender->deliver(ack);
  }

  void advance(Time dt) { sim.run_until(sim.now() + dt); }

  // One reorder episode: pn 2 declared lost by packet threshold, then its
  // ack arrives late => one spurious loss.
  void spurious_episode() {
    advance(time::ms(10));
    ack_ranges({{0, 1}, {3, 6}});
    advance(time::ms(5));
    ack_ranges({{0, 6}});
  }
};

TEST(ReorderThreshold, StartsAtProfileValue) {
  ReorderFixture f;
  EXPECT_EQ(f.sender->reorder_threshold(), 3);
}

TEST(ReorderThreshold, WidensByOnePerSpuriousLoss) {
  ReorderFixture f;
  f.spurious_episode();
  ASSERT_EQ(f.sender->stats().spurious_losses, 1);
  EXPECT_EQ(f.sender->reorder_threshold(), 4);
}

TEST(ReorderThreshold, CapsAtProfileMaximum) {
  SenderProfile p = kernel_tcp_profile().sender;
  p.max_packet_reorder_threshold = 4;
  ReorderFixture f(p);
  f.spurious_episode();
  EXPECT_EQ(f.sender->reorder_threshold(), 4);

  // Second episode on fresher packet numbers: pn 11 trails largest 15 by
  // the adapted threshold 4 => lost, then acked late => spurious again.
  f.advance(time::ms(2));
  ASSERT_GE(f.net.sent.back().pn, 15u);
  f.ack_ranges({{0, 10}, {12, 15}});
  f.advance(time::ms(2));
  f.ack_ranges({{0, 15}});
  ASSERT_EQ(f.sender->stats().spurious_losses, 2);
  EXPECT_EQ(f.sender->reorder_threshold(), 4) << "must not exceed the cap";
}

TEST(ReorderThreshold, FixedWhenAdaptationDisabled) {
  SenderProfile p = kernel_tcp_profile().sender;
  p.adapt_reorder_threshold = false;
  ReorderFixture f(p);
  f.spurious_episode();
  ASSERT_EQ(f.sender->stats().spurious_losses, 1);
  EXPECT_EQ(f.sender->reorder_threshold(), 3);
}

TEST(ReorderThreshold, WiderProfileThresholdSuppressesLoss) {
  // Gap of exactly 3 behind the largest acked: lost at threshold 3,
  // tolerated at threshold 4 (same timing, so the time threshold is out
  // of the picture — see loss_test GapWithinThresholdNotLostYet).
  ReorderFixture tight;
  tight.advance(time::ms(10));
  tight.ack_ranges({{0, 1}, {3, 5}});
  EXPECT_EQ(tight.sender->stats().losses_detected, 1);

  SenderProfile wide_p = kernel_tcp_profile().sender;
  wide_p.packet_reorder_threshold = 4;
  ReorderFixture wide(wide_p);
  wide.advance(time::ms(10));
  wide.ack_ranges({{0, 1}, {3, 5}});
  EXPECT_EQ(wide.sender->stats().losses_detected, 0);
}

TEST(ReorderThreshold, AdaptedThresholdSuppressesNextLoss) {
  ReorderFixture f;
  f.spurious_episode();  // threshold now 4
  ASSERT_EQ(f.sender->reorder_threshold(), 4);
  const auto losses = f.sender->stats().losses_detected;

  // New gap at exactly the old threshold distance: pn 10 vs largest 13.
  f.advance(time::ms(2));
  ASSERT_GE(f.net.sent.back().pn, 13u);
  f.ack_ranges({{0, 9}, {11, 13}});
  EXPECT_EQ(f.sender->stats().losses_detected, losses)
      << "gap of 3 must be tolerated after widening to 4";

  // One packet further and the adapted threshold trips.
  f.ack_ranges({{0, 9}, {11, 14}});
  EXPECT_EQ(f.sender->stats().losses_detected, losses + 1);
}

TEST(SpuriousUndo, CubicRollsBackReductionWhenEnabled) {
  cca::CubicConfig ccfg;
  ccfg.spurious_loss_rollback = true;
  ReorderFixture f(kernel_tcp_profile().sender, ccfg);
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});  // acks grow cwnd, then pn 2 backoff
  ASSERT_EQ(f.sender->stats().losses_detected, 1);
  const Bytes reduced = f.cubic->cwnd();
  const Bytes reduced_ssthresh = f.cubic->ssthresh();

  f.advance(time::ms(5));
  f.ack_ranges({{0, 6}});  // late ack: spurious, undo the backoff
  ASSERT_EQ(f.sender->stats().spurious_losses, 1);
  EXPECT_GT(f.cubic->cwnd(), reduced);
  EXPECT_GT(f.cubic->ssthresh(), reduced_ssthresh);
}

TEST(SpuriousUndo, ReductionSticksWhenDisabled) {
  cca::CubicConfig ccfg;
  ccfg.spurious_loss_rollback = false;  // kernel default
  ReorderFixture f(kernel_tcp_profile().sender, ccfg);
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});
  ASSERT_EQ(f.sender->stats().losses_detected, 1);
  const Bytes reduced = f.cubic->cwnd();

  f.advance(time::ms(5));
  f.ack_ranges({{0, 6}});
  ASSERT_EQ(f.sender->stats().spurious_losses, 1);
  EXPECT_EQ(f.cubic->cwnd(), reduced);
}

} // namespace
} // namespace quicbench::transport
