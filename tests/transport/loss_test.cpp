// Loss-detection behaviour of the sender: packet-threshold losses,
// spurious-loss recognition under reordering, and PTO probing. These use a
// hand-driven network (a sink we control) instead of the dumbbell so we
// can drop and reorder precisely.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "cca/cubic.h"
#include "netsim/event.h"
#include "transport/sender.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

// Captures everything the sender emits; the test acks selectively.
class ManualNetwork : public netsim::PacketSink {
 public:
  void deliver(Packet p) override { sent.push_back(std::move(p)); }
  std::deque<Packet> sent;
};

struct Fixture {
  Simulator sim;
  ManualNetwork net;
  std::unique_ptr<SenderEndpoint> sender;

  explicit Fixture(SenderProfile profile = kernel_tcp_profile().sender) {
    cca::CubicConfig ccfg;
    ccfg.mss = profile.mss;
    sender = std::make_unique<SenderEndpoint>(
        sim, 0, profile, std::make_unique<cca::Cubic>(ccfg), &net, Rng(2));
    sender->start(0);
    sim.run_until(time::ms(1));
  }

  // Builds an ack frame covering exactly `ranges` (ascending pairs) and
  // delivers it to the sender at the current time.
  void ack_ranges(std::initializer_list<std::pair<std::uint64_t, std::uint64_t>>
                      ranges) {
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.flow = 0;
    ack.size = 80;
    int n = 0;
    std::uint64_t largest = 0;
    for (const auto& [first, last] : ranges) {
      ack.set_range(n++, first, last);
      largest = std::max(largest, last);
    }
    ack.n_ranges = static_cast<std::uint8_t>(n);
    ack.largest_acked = largest;
    sender->deliver(ack);
  }

  void advance(Time dt) { sim.run_until(sim.now() + dt); }
};

TEST(LossDetection, PacketThresholdMarksGapLost) {
  Fixture f;
  ASSERT_GE(f.net.sent.size(), 9u);  // initial window burst
  // Ack 0..1, skip 2, ack 3..6: pn 2 trails largest by >= 3 => lost.
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});
  EXPECT_EQ(f.sender->stats().losses_detected, 1);
}

TEST(LossDetection, GapWithinThresholdNotLostYet) {
  Fixture f;
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 4}});  // gap of one, largest - 2 = 2 < 3
  EXPECT_EQ(f.sender->stats().losses_detected, 0);
}

TEST(LossDetection, TimeThresholdFiresViaTimer) {
  Fixture f;
  f.advance(time::ms(10));
  // Establish an RTT estimate, leave pn 2 unacked with a small gap.
  f.ack_ranges({{0, 1}, {3, 4}});
  EXPECT_EQ(f.sender->stats().losses_detected, 0);
  // After well over 9/8 RTT with no further acks the loss timer fires.
  f.advance(time::ms(100));
  EXPECT_EQ(f.sender->stats().losses_detected, 1);
}

TEST(LossDetection, SpuriousLossRecognised) {
  Fixture f;
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});  // pn 2 declared lost
  ASSERT_EQ(f.sender->stats().losses_detected, 1);
  // The "lost" packet's ack arrives late.
  f.advance(time::ms(5));
  f.ack_ranges({{0, 6}});
  EXPECT_EQ(f.sender->stats().spurious_losses, 1);
}

TEST(LossDetection, LostBytesLeaveFlight) {
  Fixture f;
  const Bytes before = f.sender->bytes_in_flight();
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});
  // 6 acked + 1 lost leave flight (minus whatever new sends happened).
  EXPECT_LT(f.sender->bytes_in_flight(),
            before + 20 * 1500);  // sanity: no double-count explosion
  EXPECT_GE(f.sender->bytes_in_flight(), 0);
}

TEST(LossDetection, RetransmissionsFollowLoss) {
  Fixture f;
  f.advance(time::ms(10));
  const auto sent_before = f.sender->stats().packets_sent;
  f.ack_ranges({{0, 1}, {3, 6}});
  f.advance(time::ms(5));
  EXPECT_GT(f.sender->stats().packets_sent, sent_before);
  EXPECT_GE(f.sender->stats().retransmissions, 1);
}

TEST(LossDetection, PtoFiresWithoutAcks) {
  Fixture f;
  // Never ack anything: the PTO must fire and send probes.
  f.advance(time::sec(3));
  EXPECT_GT(f.sender->stats().ptos_fired, 0);
}

TEST(LossDetection, PersistentCongestionAfterRepeatedPtos) {
  Fixture f;
  f.advance(time::sec(30));
  EXPECT_GT(f.sender->stats().persistent_congestion_events, 0);
}

TEST(LossDetection, AckOfEverythingKeepsFlightZeroed) {
  Fixture f;
  f.advance(time::ms(10));
  const std::uint64_t highest = f.net.sent.back().pn;
  f.ack_ranges({{0, highest}});
  // Acking everything triggers fresh sends; ack those too.
  f.advance(time::ms(10));
  if (!f.net.sent.empty()) {
    const std::uint64_t h2 = f.net.sent.back().pn;
    f.ack_ranges({{0, h2}});
  }
  EXPECT_EQ(f.sender->stats().spurious_losses, 0);
  EXPECT_GE(f.sender->bytes_in_flight(), 0);
}

TEST(LossDetection, DuplicateAckFramesAreIdempotent) {
  Fixture f;
  f.advance(time::ms(10));
  f.ack_ranges({{0, 4}});
  const auto inflight = f.sender->bytes_in_flight();
  const auto sent = f.sender->stats().packets_sent;
  f.ack_ranges({{0, 4}});
  f.ack_ranges({{0, 4}});
  // Nothing newly acked: no state change, no new sends triggered by cwnd
  // growth (cwnd unchanged).
  EXPECT_EQ(f.sender->stats().packets_sent, sent);
  EXPECT_EQ(f.sender->bytes_in_flight(), inflight);
}

// --- RACK-TLP (profile loss_detection = kRackTlp) ---

SenderProfile rack_profile() {
  SenderProfile p = kernel_tcp_profile().sender;
  p.loss_detection = LossDetection::kRackTlp;
  return p;
}

TEST(RackTlp, PacketThresholdSuppressedTimeStillFires) {
  // RACK is purely time-based: a 3-packet gap alone declares nothing;
  // only age beyond srtt + reo_wnd does.
  Fixture f(rack_profile());
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});  // would be an instant loss under RFC 9002
  EXPECT_EQ(f.sender->stats().losses_detected, 0);
  // Once pn 2 outlives the reordering window the loss timer fires.
  f.advance(time::ms(100));
  EXPECT_GE(f.sender->stats().losses_detected, 1);
}

TEST(RackTlp, SpuriousLossWidensReorderWindow) {
  Fixture f(rack_profile());
  EXPECT_EQ(f.sender->rack_reo_mult(), 1);
  f.advance(time::ms(10));
  f.ack_ranges({{0, 1}, {3, 6}});
  f.advance(time::ms(100));  // time-based loss of pn 2
  ASSERT_GE(f.sender->stats().losses_detected, 1);
  f.ack_ranges({{0, 6}});  // the "lost" packet's ack arrives late
  ASSERT_GE(f.sender->stats().spurious_losses, 1);
  // RACK adapts by doubling the reo_wnd multiplier, not the (suppressed)
  // packet threshold.
  EXPECT_EQ(f.sender->rack_reo_mult(), 2);
  EXPECT_EQ(f.sender->reorder_threshold(),
            rack_profile().packet_reorder_threshold);
}

TEST(RackTlp, ReorderWindowMultiplierIsCapped) {
  SenderProfile p = rack_profile();
  p.rack_max_reo_wnd_mult = 4;
  Fixture f(p);
  std::uint64_t lo = 0;
  for (int round = 0; round < 5; ++round) {
    // Manufacture one spurious loss per round: gap, age-out, late ack.
    f.advance(time::ms(10));
    const std::uint64_t hi = f.net.sent.back().pn;
    if (hi < lo + 3) continue;
    f.ack_ranges({{0, lo}, {lo + 2, hi}});
    f.advance(time::ms(400));
    f.ack_ranges({{0, hi}});
    lo = hi;
  }
  EXPECT_GT(f.sender->stats().spurious_losses, 2);
  EXPECT_EQ(f.sender->rack_reo_mult(), 4);  // capped, not 8 or 16
}

TEST(RackTlp, TailLossProbeFiresAfterSilence) {
  Fixture f(rack_profile());
  f.advance(time::ms(10));
  const std::uint64_t hi = f.net.sent.back().pn;
  f.ack_ranges({{0, hi}});  // RTT sample establishes the TLP interval
  // Silence: the 2 x srtt tail probe must fire well before an RFC 9002
  // PTO backoff series would give up.
  f.advance(time::sec(1));
  EXPECT_GE(f.sender->stats().ptos_fired, 1);
}

TEST(LossDetection, MinRttTimeBaseIsMoreAggressive) {
  // With the min-RTT time base, queued packets are declared lost while
  // smoothed-RTT-based detection stays quiet. We simulate RTT inflation by
  // acking with large real delays.
  SenderProfile aggressive = kernel_tcp_profile().sender;
  aggressive.time_threshold_base = TimeThresholdBase::kMinRtt;
  aggressive.time_reorder_fraction = 9.0 / 8.0;

  Fixture fa(aggressive);
  // First ack quickly: min_rtt small.
  fa.advance(time::ms(10));
  fa.ack_ranges({{0, 0}});
  // Now a gap appears and the remaining packets are older than
  // 9/8 x min_rtt.
  fa.advance(time::ms(30));
  fa.ack_ranges({{0, 0}, {2, 2}});
  EXPECT_GE(fa.sender->stats().losses_detected, 1);
}

} // namespace
} // namespace quicbench::transport
