#include <gtest/gtest.h>

#include <memory>

#include "cca/cubic.h"
#include "cca/reno.h"
#include "netsim/topology.h"
#include "transport/receiver.h"
#include "transport/sender.h"

namespace quicbench::transport {
namespace {

using netsim::Dumbbell;
using netsim::DumbbellConfig;
using netsim::Simulator;

struct Harness {
  Simulator sim;
  std::unique_ptr<Dumbbell> db;
  std::unique_ptr<SenderEndpoint> sender;
  std::unique_ptr<ReceiverEndpoint> receiver;
  Bytes delivered = 0;
  int deliveries = 0;

  Harness(Rate bw, Time rtt, Bytes buffer,
          std::unique_ptr<cca::CongestionController> cca,
          StackProfile profile = kernel_tcp_profile()) {
    DumbbellConfig dc;
    dc.bandwidth = bw;
    dc.base_rtt = rtt;
    dc.buffer_bytes = buffer;
    db = std::make_unique<Dumbbell>(sim, dc, 1);
    receiver = std::make_unique<ReceiverEndpoint>(sim, 0, profile.receiver,
                                                  db->reverse_in(0));
    sender = std::make_unique<SenderEndpoint>(sim, 0, profile.sender,
                                              std::move(cca),
                                              db->forward_in(), Rng(1));
    receiver->set_delivery_callback([this](Time, Bytes payload, Time) {
      delivered += payload;
      ++deliveries;
    });
    db->attach_receiver(0, receiver.get());
    db->attach_sender_ack_sink(0, sender.get());
  }
};

std::unique_ptr<cca::CongestionController> make_reno() {
  cca::RenoConfig cfg;
  return std::make_unique<cca::Reno>(cfg);
}

std::unique_ptr<cca::CongestionController> make_cubic() {
  cca::CubicConfig cfg;
  return std::make_unique<cca::Cubic>(cfg);
}

TEST(Endpoints, SingleFlowSaturatesLink) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic());
  h.sender->start(0);
  h.sim.run_until(time::sec(20));
  // Utilisation should be near line rate (>90%) over the run.
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(20)));
  EXPECT_GT(mbps, 18.0);
  EXPECT_LE(mbps, 20.0 + 0.1);
}

TEST(Endpoints, RenoAlsoSaturates) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_reno());
  h.sender->start(0);
  h.sim.run_until(time::sec(20));
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(20)));
  EXPECT_GT(mbps, 17.0);
}

TEST(Endpoints, RttSamplesNearBaseRttWithBigBuffer) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, 10 * bdp_bytes(bw, rtt), make_cubic());
  std::vector<Time> rtts;
  h.sender->set_rtt_callback([&](Time, Time r) { rtts.push_back(r); });
  h.sender->start(0);
  h.sim.run_until(time::sec(5));
  ASSERT_FALSE(rtts.empty());
  // Every sample at least the base RTT, none below.
  for (Time r : rtts) EXPECT_GE(r, rtt);
  EXPECT_GE(*std::max_element(rtts.begin(), rtts.end()), rtt);
}

TEST(Endpoints, BytesInFlightBounded) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic());
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  EXPECT_LE(h.sender->bytes_in_flight(),
            h.sender->controller().cwnd() + 3000);
  EXPECT_GE(h.sender->bytes_in_flight(), 0);
}

TEST(Endpoints, FlowControlCapsInflight) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  StackProfile p = kernel_tcp_profile();
  p.sender.flow_control_window = 12'000;  // well below BDP (25 kB)
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic(), p);
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  // Throughput capped around fc_window / rtt.
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(10)));
  const double cap_mbps = 12'000 * 8.0 / time::to_sec(rtt) / 1e6;
  EXPECT_LT(mbps, cap_mbps * 1.1);
  EXPECT_GT(mbps, cap_mbps * 0.5);
}

TEST(Endpoints, LossesDetectedInTinyBuffer) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, 5000, make_cubic());  // ~0.2 BDP: heavy overflow
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  EXPECT_GT(h.sender->stats().losses_detected, 0);
  EXPECT_GT(h.sender->stats().retransmissions, 0);
  // The flow keeps making progress regardless.
  EXPECT_GT(h.delivered, 0);
}

TEST(Endpoints, PacedSenderSmoothsBursts) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  StackProfile p = default_quic_profile();
  ASSERT_TRUE(p.sender.pace_window_ccas);
  Harness h(bw, rtt, bdp_bytes(bw, rtt) / 2, make_cubic(), p);
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(10)));
  EXPECT_GT(mbps, 16.0);
}

TEST(Endpoints, QuantumBatchingStillDelivers) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  StackProfile p = default_quic_profile();
  p.sender.send_quantum = time::ms(2);
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic(), p);
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(10)));
  EXPECT_GT(mbps, 10.0);
}

TEST(Endpoints, EgressJitterDoesNotBreakDelivery) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  StackProfile p = default_quic_profile();
  p.sender.egress_jitter = time::us(700);
  p.sender.egress_reorder = true;
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic(), p);
  h.sender->start(0);
  h.sim.run_until(time::sec(10));
  const double mbps = rate::to_mbps(rate_of(h.delivered, time::sec(10)));
  EXPECT_GT(mbps, 14.0);
}

TEST(Endpoints, StartTimeRespected) {
  const Rate bw = rate::mbps(20);
  const Time rtt = time::ms(10);
  Harness h(bw, rtt, bdp_bytes(bw, rtt), make_cubic());
  h.sender->start(time::sec(1));
  h.sim.run_until(time::ms(900));
  EXPECT_EQ(h.delivered, 0);
  h.sim.run_until(time::sec(3));
  EXPECT_GT(h.delivered, 0);
}

TEST(Receiver, AcksEveryNthPacket) {
  Simulator sim;
  class AckCounter : public netsim::PacketSink {
   public:
    void deliver(netsim::Packet p) override {
      ++acks;
      last = p;
    }
    int acks = 0;
    netsim::Packet last;
  } counter;

  ReceiverProfile prof;
  prof.ack_every_n = 2;
  ReceiverEndpoint recv(sim, 0, prof, &counter);
  for (std::uint64_t pn = 0; pn < 10; ++pn) {
    netsim::Packet p;
    p.kind = netsim::PacketKind::kData;
    p.flow = 0;
    p.size = 1500;
    p.pn = pn;
    p.payload = 1448;
    recv.deliver(p);
  }
  sim.run_until(time::sec(1));
  EXPECT_EQ(counter.acks, 5);
  EXPECT_EQ(counter.last.largest_acked, 9u);
  EXPECT_EQ(counter.last.n_ranges, 1);
}

TEST(Receiver, ImmediateAckOnGap) {
  Simulator sim;
  class AckCounter : public netsim::PacketSink {
   public:
    void deliver(netsim::Packet p) override {
      ++acks;
      last = p;
    }
    int acks = 0;
    netsim::Packet last;
  } counter;

  ReceiverProfile prof;
  prof.ack_every_n = 10;  // large, so only the gap triggers
  ReceiverEndpoint recv(sim, 0, prof, &counter);
  const auto send = [&](std::uint64_t pn) {
    netsim::Packet p;
    p.kind = netsim::PacketKind::kData;
    p.flow = 0;
    p.size = 1500;
    p.pn = pn;
    recv.deliver(p);
  };
  send(0);
  EXPECT_EQ(counter.acks, 0);
  send(2);  // gap at pn=1
  EXPECT_EQ(counter.acks, 1);
  EXPECT_EQ(counter.last.largest_acked, 2u);
  EXPECT_EQ(counter.last.n_ranges, 2);
}

TEST(Receiver, MaxAckDelayTimerFires) {
  Simulator sim;
  class AckCounter : public netsim::PacketSink {
   public:
    void deliver(netsim::Packet) override { ++acks; }
    int acks = 0;
  } counter;

  ReceiverProfile prof;
  prof.ack_every_n = 100;
  prof.max_ack_delay = time::ms(25);
  ReceiverEndpoint recv(sim, 0, prof, &counter);
  netsim::Packet p;
  p.kind = netsim::PacketKind::kData;
  p.flow = 0;
  p.size = 1500;
  p.pn = 0;
  recv.deliver(p);
  sim.run_until(time::ms(24));
  EXPECT_EQ(counter.acks, 0);
  sim.run_until(time::ms(26));
  EXPECT_EQ(counter.acks, 1);
}

TEST(Receiver, TracksDuplicates) {
  Simulator sim;
  class Sink : public netsim::PacketSink {
   public:
    void deliver(netsim::Packet) override {}
  } sink;
  ReceiverProfile prof;
  ReceiverEndpoint recv(sim, 0, prof, &sink);
  netsim::Packet p;
  p.kind = netsim::PacketKind::kData;
  p.flow = 0;
  p.size = 1500;
  p.pn = 3;
  recv.deliver(p);
  recv.deliver(p);
  EXPECT_EQ(recv.stats().duplicate_packets, 1);
  EXPECT_EQ(recv.stats().packets_received, 2);
}

} // namespace
} // namespace quicbench::transport
