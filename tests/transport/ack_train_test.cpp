// Randomized ack-train equivalence: replay seeded ack/loss/reorder
// patterns through two senders that differ only in which ack-path
// implementation they exercise —
//
//   * the "batched" world runs the production fast path: range ops over
//     the SoA scoreboard (no per-pn ack observer installed) plus
//     same-tick duplicate-frame coalescing;
//   * the "scalar" world pins the reference path: a per-pn acked
//     observer forces ack_run into its pn-by-pn loop, and coalescing is
//     left off so duplicate frames are fully reprocessed.
//
// Both worlds receive byte-identical frame schedules, so every
// externally visible outcome must match exactly: CCA decisions (the
// cwnd sequence after each ack/loss event), RTT samples, per-pn
// scoreboard flags, SenderStats, and the ScoreboardCounters work
// tallies. The driver injects gaps (withheld pns), late releases
// (stragglers and spurious acks), stale re-deliveries, and same-tick
// duplicates, so the train walks every branch of the batched path:
// clean ranges, gap runs, the lost-set merge, and the coalescing stash.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "cca/bbr.h"
#include "cca/bbr2.h"
#include "cca/cubic.h"
#include "cca/reno.h"
#include "netsim/event.h"
#include "transport/sender.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

class RecordingNetwork : public netsim::PacketSink {
 public:
  explicit RecordingNetwork(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override {
    times.push_back(sim_.now());
    packets.push_back(std::move(p));
  }
  Simulator& sim_;
  std::vector<Time> times;
  std::vector<Packet> packets;
};

std::unique_ptr<cca::CongestionController> make_cca(int kind, Bytes mss) {
  switch (kind) {
    case 0: {
      cca::RenoConfig c;
      c.mss = mss;
      return std::make_unique<cca::Reno>(c);
    }
    case 1: {
      cca::CubicConfig c;
      c.mss = mss;
      return std::make_unique<cca::Cubic>(c);
    }
    case 2: {
      cca::BbrConfig c;
      c.mss = mss;
      return std::make_unique<cca::Bbr>(c);
    }
    case 3: {
      cca::Bbr2Config c;
      c.mss = mss;
      return std::make_unique<cca::Bbr2>(c);
    }
    default: {
      // Kind 4: CUBIC over RACK-TLP loss detection (the loss-detection
      // axis is a sender-profile property, see World's constructor).
      cca::CubicConfig c;
      c.mss = mss;
      return std::make_unique<cca::Cubic>(c);
    }
  }
}

struct World {
  Simulator sim;
  RecordingNetwork net{sim};
  std::unique_ptr<SenderEndpoint> sender;
  // One Packet per scheduled delivery, parked here because an event
  // callback only has inline capture room for {this, index}.
  std::vector<Packet> parked;
  std::vector<Bytes> cwnd_seq;
  std::vector<Time> rtt_seq;

  World(bool batched, int cca_kind, std::uint64_t seed) {
    SenderProfile profile = default_quic_profile().sender;
    if (cca_kind == 4) profile.loss_detection = LossDetection::kRackTlp;
    sender = std::make_unique<SenderEndpoint>(
        sim, 0, profile, make_cca(cca_kind, profile.mss), &net, Rng(seed));
    if (!batched) {
      // A per-pn observer pins ack_run to the scalar reference loop.
      sender->set_packet_acked_callback([](Time, std::uint64_t, Bytes) {});
    }
    sender->set_coalesce_same_tick_acks(batched);
    sender->set_cwnd_callback([this](Time, Bytes cwnd, Bytes) {
      cwnd_seq.push_back(cwnd);
    });
    sender->set_rtt_callback(
        [this](Time, Time rtt) { rtt_seq.push_back(rtt); });
    sender->start(0);
  }

  void schedule_delivery(Time at, const Packet& frame) {
    parked.push_back(frame);
    const std::size_t i = parked.size() - 1;
    sim.schedule(at, [this, i] { sender->deliver(parked[i]); });
  }
};

// One randomized ack frame covering the sent pns minus the withheld
// set, newest ranges first up to the wire cap (old holes fall off the
// end, exactly like a real receiver's bounded ack block list).
Packet build_frame(std::uint64_t largest, const std::set<std::uint64_t>& holes,
                   Time ack_delay) {
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 0;
  ack.size = 80;
  ack.largest_acked = largest;
  ack.ack_delay = ack_delay;
  int n = 0;
  std::uint64_t last = largest;
  while (n < Packet::kMaxAckRanges) {
    // Grow the range downward until a hole (or pn 0).
    std::uint64_t first = last;
    while (first > 0 && holes.count(first - 1) == 0) --first;
    ack.set_range(n++, first, last);
    if (first == 0) break;
    // Skip the hole run below `first`.
    std::uint64_t next = first - 1;
    while (holes.count(next) != 0) {
      if (next == 0) break;
      --next;
    }
    if (holes.count(next) != 0) break;  // holes reach down to pn 0
    last = next;
  }
  ack.n_ranges = static_cast<std::uint8_t>(n);
  return ack;
}

void expect_worlds_equal(const World& a, const World& b, int step) {
  ASSERT_EQ(a.sim.now(), b.sim.now()) << "step " << step;
  ASSERT_EQ(a.net.packets.size(), b.net.packets.size()) << "step " << step;
  EXPECT_EQ(a.sender->bytes_in_flight(), b.sender->bytes_in_flight())
      << "step " << step;
  EXPECT_EQ(a.sender->reorder_threshold(), b.sender->reorder_threshold())
      << "step " << step;
  EXPECT_EQ(a.sender->rack_reo_mult(), b.sender->rack_reo_mult())
      << "step " << step;
  EXPECT_EQ(a.sender->controller().cwnd(), b.sender->controller().cwnd())
      << "step " << step;
  const SenderStats& sa = a.sender->stats();
  const SenderStats& sb = b.sender->stats();
  EXPECT_EQ(sa.packets_sent, sb.packets_sent) << "step " << step;
  EXPECT_EQ(sa.bytes_sent, sb.bytes_sent) << "step " << step;
  EXPECT_EQ(sa.retransmissions, sb.retransmissions) << "step " << step;
  EXPECT_EQ(sa.losses_detected, sb.losses_detected) << "step " << step;
  EXPECT_EQ(sa.loss_events, sb.loss_events) << "step " << step;
  EXPECT_EQ(sa.spurious_losses, sb.spurious_losses) << "step " << step;
  EXPECT_EQ(sa.ptos_fired, sb.ptos_fired) << "step " << step;
  EXPECT_EQ(sa.persistent_congestion_events, sb.persistent_congestion_events)
      << "step " << step;
  const ScoreboardCounters& ca = a.sender->scoreboard_counters();
  const ScoreboardCounters& cb = b.sender->scoreboard_counters();
  // A coalesced duplicate skips the whole frame pipeline, including its
  // (no-op) compact call; every other counter must agree exactly.
  EXPECT_EQ(ca.compact_calls + static_cast<std::uint64_t>(sa.acks_coalesced),
            cb.compact_calls)
      << "step " << step;
  EXPECT_EQ(ca.compact_pops, cb.compact_pops) << "step " << step;
  EXPECT_EQ(ca.storage_moves, cb.storage_moves) << "step " << step;
  EXPECT_EQ(ca.link_inserts, cb.link_inserts) << "step " << step;
  EXPECT_EQ(ca.link_walk_steps, cb.link_walk_steps) << "step " << step;
  // CCA decision streams (cwnd after every ack/loss event) and RTT
  // samples must be byte-identical, not merely end-equal.
  ASSERT_EQ(a.cwnd_seq, b.cwnd_seq) << "step " << step;
  ASSERT_EQ(a.rtt_seq, b.rtt_seq) << "step " << step;
  // Per-pn scoreboard flags over the retained window.
  const SentLog& la = a.sender->sent_log();
  const SentLog& lb = b.sender->sent_log();
  ASSERT_EQ(la.base_pn(), lb.base_pn()) << "step " << step;
  ASSERT_EQ(la.next_pn(), lb.next_pn()) << "step " << step;
  for (std::uint64_t pn = la.base_pn(); pn < la.next_pn(); ++pn) {
    ASSERT_EQ(la.flags(pn), lb.flags(pn)) << "pn " << pn << " step " << step;
  }
}

// The shared driver: both worlds get the identical frame schedule.
void run_equivalence(int cca_kind, std::uint64_t seed, bool* coalesced,
                     bool* spurious, bool* losses) {
  World batched(/*batched=*/true, cca_kind, /*sender seed=*/seed);
  World scalar(/*batched=*/false, cca_kind, /*sender seed=*/seed);

  Rng rng(seed * 0x9E3779B9u + 17);
  std::set<std::uint64_t> holes;     // withheld (never-yet-acked) pns
  std::uint64_t acked_floor = 0;     // below this everything was covered

  constexpr Time kStep = time::ms(2);
  constexpr int kSteps = 220;
  for (int step = 0; step < kSteps; ++step) {
    const Time t_end = static_cast<Time>(step + 1) * kStep;
    batched.sim.run_until(t_end);
    scalar.sim.run_until(t_end);
    ASSERT_EQ(batched.net.packets.size(), scalar.net.packets.size())
        << "send divergence at step " << step;
    if (batched.net.packets.empty()) continue;

    // Newly sent pns become holes with ~15% probability. Only data
    // packets are in net.packets (the sender emits nothing else).
    const std::uint64_t highest = batched.net.packets.back().pn;
    for (std::uint64_t pn = acked_floor; pn <= highest; ++pn) {
      if (holes.count(pn) == 0 && rng.uniform() < 0.15) holes.insert(pn);
    }

    // Occasionally release old holes: late arrivals that show up as
    // stragglers (still live) or spurious acks (already marked lost).
    if (!holes.empty() && rng.uniform() < 0.5) {
      auto it = holes.begin();
      const std::size_t n_release = 1 + rng.uniform_int(2);
      for (std::size_t i = 0; i < n_release && it != holes.end();) {
        it = holes.erase(it);
        ++i;
      }
    }

    // A burst of quiet steps starves the ack clock and lets the PTO
    // path fire in both worlds.
    if (step % 97 == 96) continue;

    // Ack up to a jittered largest (reordering: sometimes an older
    // frame arrives after a newer one was already processed).
    std::uint64_t largest = highest;
    if (rng.uniform() < 0.2 && largest > acked_floor + 4) {
      largest -= 1 + rng.uniform_int(3);
    }
    while (holes.count(largest) != 0 && largest > 0) --largest;
    if (largest == 0 && holes.count(0) != 0) continue;
    const Time ack_delay =
        rng.uniform() < 0.3 ? time::us(25 + rng.uniform_int(200)) : 0;
    const Packet frame = build_frame(largest, holes, ack_delay);
    const Time at = t_end + time::us(1 + rng.uniform_int(900));
    batched.schedule_delivery(at, frame);
    scalar.schedule_delivery(at, frame);

    // Same-tick duplicate (coalesced by the batched world, reprocessed
    // as a provable no-op by the scalar world).
    if (rng.uniform() < 0.35) {
      batched.schedule_delivery(at, frame);
      scalar.schedule_delivery(at, frame);
    }
    // Stale re-delivery of a strictly older frame at a later instant
    // (no coalescing: different bytes), exercising the no-newly path.
    if (rng.uniform() < 0.2 && acked_floor > 0) {
      const Packet stale = build_frame(acked_floor, holes, 0);
      const Time stale_at = at + time::us(1 + rng.uniform_int(50));
      batched.schedule_delivery(stale_at, stale);
      scalar.schedule_delivery(stale_at, stale);
    }
    acked_floor = largest;

    if (step % 10 == 9) {
      expect_worlds_equal(batched, scalar, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  batched.sim.run_until(static_cast<Time>(kSteps + 5) * kStep);
  scalar.sim.run_until(static_cast<Time>(kSteps + 5) * kStep);
  expect_worlds_equal(batched, scalar, kSteps);

  // The scalar world never coalesces; the batched one must have, or the
  // schedule failed to exercise the stash at all.
  EXPECT_EQ(scalar.sender->stats().acks_coalesced, 0);
  *coalesced = batched.sender->stats().acks_coalesced > 0;
  *spurious = batched.sender->stats().spurious_losses > 0;
  *losses = batched.sender->stats().losses_detected > 0;
}

class AckTrainEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AckTrainEquivalence, BatchedMatchesScalarAcrossSeeds) {
  // Coverage flags are OR-ed across seeds: every seed must agree on
  // state, and the seed family as a whole must have walked the loss,
  // spurious-ack and coalescing branches.
  bool any_coalesced = false, any_spurious = false, any_losses = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    bool c = false, s = false, l = false;
    run_equivalence(GetParam(), seed, &c, &s, &l);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "divergence with seed " << seed;
    }
    any_coalesced |= c;
    any_spurious |= s;
    any_losses |= l;
  }
  EXPECT_TRUE(any_coalesced) << "no seed exercised same-tick coalescing";
  EXPECT_TRUE(any_spurious) << "no seed exercised spurious acks";
  EXPECT_TRUE(any_losses) << "no seed exercised loss detection";
}

INSTANTIATE_TEST_SUITE_P(AllCcas, AckTrainEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return "reno";
                             case 1: return "cubic";
                             case 2: return "bbr";
                             case 3: return "bbr2";
                             default: return "cubic_rack";
                           }
                         });

} // namespace
} // namespace quicbench::transport
