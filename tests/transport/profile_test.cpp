#include <gtest/gtest.h>

#include "transport/profile.h"

namespace quicbench::transport {
namespace {

TEST(Profiles, KernelTcpDefaults) {
  const StackProfile p = kernel_tcp_profile();
  EXPECT_EQ(p.sender.mss, 1448);
  EXPECT_EQ(p.sender.mss + p.sender.header_overhead, 1500);
  EXPECT_EQ(p.sender.initial_cwnd_packets, 10);
  // Internal pacing at tcp_pacing_ca_ratio = 120%.
  EXPECT_TRUE(p.sender.pace_window_ccas);
  EXPECT_DOUBLE_EQ(p.sender.window_pacing_factor, 1.2);
  EXPECT_EQ(p.receiver.ack_every_n, 2);
}

TEST(Profiles, QuicDefaults) {
  const StackProfile p = default_quic_profile();
  EXPECT_LT(p.sender.mss, 1448);           // smaller UDP payload
  EXPECT_GT(p.sender.header_overhead, 52); // more header overhead
  EXPECT_TRUE(p.sender.pace_window_ccas);
  EXPECT_EQ(p.receiver.ack_every_n, 2);    // RFC 9000 recommendation
  EXPECT_EQ(p.receiver.max_ack_delay, time::ms(25));
}

TEST(Profiles, NoArtifactsByDefault) {
  for (const StackProfile& p :
       {kernel_tcp_profile(), default_quic_profile()}) {
    EXPECT_EQ(p.sender.flow_control_window, 0);
    EXPECT_EQ(p.sender.egress_jitter, 0);
    EXPECT_EQ(p.sender.send_quantum, 0);
    EXPECT_TRUE(p.sender.adapt_reorder_threshold);
  }
}

TEST(Profiles, Rfc9002LossDefaults) {
  const StackProfile p = default_quic_profile();
  EXPECT_EQ(p.sender.packet_reorder_threshold, 3);
  EXPECT_DOUBLE_EQ(p.sender.time_reorder_fraction, 9.0 / 8.0);
  EXPECT_EQ(p.sender.time_threshold_base,
            TimeThresholdBase::kSmoothedOrLatest);
}

TEST(Profiles, DescribeMentionsArtifacts) {
  SenderProfile p = default_quic_profile().sender;
  EXPECT_EQ(p.describe().find("fc="), std::string::npos);
  p.flow_control_window = 1234;
  p.egress_jitter = time::us(500);
  p.send_quantum = time::ms(1);
  const std::string d = p.describe();
  EXPECT_NE(d.find("fc=1234"), std::string::npos);
  EXPECT_NE(d.find("jitter=500"), std::string::npos);
  EXPECT_NE(d.find("quantum=1000"), std::string::npos);
}

} // namespace
} // namespace quicbench::transport
