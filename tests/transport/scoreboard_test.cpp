// Scoreboard (SentLog) regression tests: unresolved-list ordering and
// compaction stability at the unit level, the historical
// iterate-while-acking hazard at the sender level, and the amortization
// guarantees the ScoreboardCounters expose (compaction and list
// maintenance stay O(packets sent) no matter how many ACK frames
// arrive).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cca/cubic.h"
#include "netsim/event.h"
#include "netsim/packet.h"
#include "transport/sender.h"
#include "transport/sent_log.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

std::vector<std::uint64_t> unresolved_pns(const SentLog& log) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t pn = log.unres_head(); pn != SentLog::kNone;
       pn = log.unres_next(pn)) {
    out.push_back(pn);
  }
  return out;
}

TEST(SentLogScoreboard, LinkKeepsAscendingOrderForAnyInsertOrder) {
  SentLog log;
  for (int i = 0; i < 6; ++i) log.push(time::ms(i), 1500, false, 0, 0);
  // Tail-first, then middle, then head — the walk-backward insert must
  // produce the same ascending list regardless.
  log.link_unresolved(5);
  log.link_unresolved(1);
  log.link_unresolved(3);
  log.link_unresolved(0);
  log.link_unresolved(3);  // duplicate: no-op
  EXPECT_EQ(unresolved_pns(log), (std::vector<std::uint64_t>{0, 1, 3, 5}));

  log.unlink_unresolved(0);  // head
  log.unlink_unresolved(5);  // tail
  log.unlink_unresolved(3);  // middle
  EXPECT_EQ(unresolved_pns(log), (std::vector<std::uint64_t>{1}));
  log.unlink_unresolved(1);
  EXPECT_EQ(log.unres_head(), SentLog::kNone);
  log.unlink_unresolved(2);   // never linked: no-op
  log.unlink_unresolved(99);  // out of the log: no-op
}

TEST(SentLogScoreboard, LinksSurviveStorageCompaction) {
  // Links are keyed by pn, not by ring index, so a prefix erase must not
  // disturb the list. Build a log whose acked prefix is large enough to
  // trip the erase path (>= 64 dead entries, dead >= live).
  SentLog log;
  for (int i = 0; i < 200; ++i) log.push(time::ms(1), 1500, false, 0, 0);
  log.link_unresolved(150);
  log.link_unresolved(170);
  log.link_unresolved(199);
  for (std::uint64_t pn = 0; pn < 150; ++pn) log.add_flags(pn, kSentAcked);
  log.compact(time::ms(2), time::sec(2));
  ASSERT_EQ(log.base_pn(), 150u);
  EXPECT_GT(log.counters().storage_moves, 0u) << "prefix erase did not run";
  EXPECT_EQ(unresolved_pns(log),
            (std::vector<std::uint64_t>{150, 170, 199}));
  EXPECT_EQ(log.sent_time(150), time::ms(1));
  // The list stays operable after the move.
  log.unlink_unresolved(170);
  EXPECT_EQ(unresolved_pns(log), (std::vector<std::uint64_t>{150, 199}));
}

TEST(SentLogScoreboard, CompactRetiresGracedLostEntries) {
  SentLog log;
  log.push(time::ms(0), 1500, false, 0, 0);  // pn 0: lost, grace expires
  log.push(time::ms(0), 1500, false, 0, 0);  // pn 1: still unresolved
  log.link_unresolved(0);
  log.link_unresolved(1);
  log.mark_lost(0);  // unlinks from the live list, parks in the lost set
  EXPECT_EQ(unresolved_pns(log), (std::vector<std::uint64_t>{1}));
  ASSERT_EQ(log.lost_size(), 1u);
  EXPECT_EQ(log.lost_at(0), 0u);
  log.compact(time::ms(1), time::sec(2));
  EXPECT_EQ(log.base_pn(), 0u) << "grace period not yet over";
  EXPECT_EQ(log.lost_size(), 1u);
  log.compact(time::sec(3), time::sec(2));
  EXPECT_EQ(log.base_pn(), 1u);
  EXPECT_TRUE(log.lost_empty()) << "graced lost pn left the lost set";
  EXPECT_EQ(unresolved_pns(log), (std::vector<std::uint64_t>{1}));
}

TEST(SentLogScoreboard, SpuriousAckLeavesLostSet) {
  SentLog log;
  for (int i = 0; i < 4; ++i) log.push(time::ms(i), 1500, false, 0, 0);
  log.link_unresolved(1);
  log.link_unresolved(2);
  log.mark_lost(1);
  log.mark_lost(2);
  ASSERT_EQ(log.lost_size(), 2u);
  log.note_spurious_ack(1);
  ASSERT_EQ(log.lost_size(), 1u);
  EXPECT_EQ(log.lost_at(0), 2u);
  EXPECT_EQ(log.flags(1) & (kSentAcked | kSentLost), kSentAcked | kSentLost);
  // The spurious-acked pn retires through the acked branch; the graced
  // one through the lost branch. Both leave the ring and the lost set.
  log.push(time::sec(10), 1500, false, 0, 0);
  log.add_flags(0, kSentAcked);
  log.add_flags(3, kSentAcked);
  log.compact(time::sec(10), time::sec(2));
  EXPECT_EQ(log.base_pn(), 4u);
  EXPECT_TRUE(log.lost_empty());
}

TEST(SentLogScoreboard, MarkLostKeepsLostSetSortedUnderInterleave) {
  // Persistent congestion can declare losses below an earlier loss;
  // the sorted-insert fallback must keep the set ascending.
  SentLog log;
  for (int i = 0; i < 6; ++i) log.push(time::ms(i), 1500, false, 0, 0);
  log.mark_lost(2);
  log.mark_lost(4);
  log.mark_lost(1);  // below both: sorted insert
  log.mark_lost(5);  // above all: append
  ASSERT_EQ(log.lost_size(), 4u);
  EXPECT_EQ(log.lost_at(0), 1u);
  EXPECT_EQ(log.lost_at(1), 2u);
  EXPECT_EQ(log.lost_at(2), 4u);
  EXPECT_EQ(log.lost_at(3), 5u);
  EXPECT_EQ(log.max_lost_pn(), 5u);
}

TEST(SentLogScoreboard, RangeOpsMatchScalarResolution) {
  // ack_clean_range/link_gap_run over a window == per-pn flags/link
  // calls: summed bytes, flags, and the live list all agree.
  SentLog a;
  SentLog b;
  for (int i = 0; i < 32; ++i) {
    a.push(time::ms(i), 1200 + i, false, 0, 0);
    b.push(time::ms(i), 1200 + i, false, 0, 0);
  }
  // Segment [8, 19] acked, [4, 7] and [20, 23] noted as gaps.
  Bytes scalar_sum = 0;
  for (std::uint64_t pn = 8; pn <= 19; ++pn) {
    scalar_sum += a.wire_size(pn);
    a.add_flags(pn, kSentAcked);
  }
  for (std::uint64_t pn = 4; pn <= 7; ++pn) a.link_unresolved(pn);
  for (std::uint64_t pn = 20; pn <= 23; ++pn) a.link_unresolved(pn);

  b.link_gap_run(4, 7);
  const Bytes batched_sum = b.ack_clean_range(8, 19);
  b.link_gap_run(20, 23);

  EXPECT_EQ(batched_sum, scalar_sum);
  for (std::uint64_t pn = 0; pn < 32; ++pn) {
    EXPECT_EQ(a.flags(pn) & ~kSentUnres, b.flags(pn) & ~kSentUnres) << pn;
  }
  EXPECT_EQ(unresolved_pns(b),
            (std::vector<std::uint64_t>{4, 5, 6, 7, 20, 21, 22, 23}));
  EXPECT_EQ(a.counters().link_inserts, b.counters().link_inserts);
  EXPECT_EQ(a.counters().link_walk_steps, b.counters().link_walk_steps);
}

TEST(SentLogScoreboard, CompactionWorkBoundedByPushes) {
  // Hammer compact() after every push/ack: total pops and storage moves
  // must stay O(pushes), not O(pushes x compact calls).
  SentLog log;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t pn = log.push(time::ms(i), 1500, false, 0, 0);
    log.compact(time::ms(i), time::sec(2));
    if (i % 2 == 0) {
      log.add_flags(pn, kSentAcked);
      log.compact(time::ms(i), time::sec(2));
    } else {
      log.add_flags(pn, kSentAcked);
    }
  }
  for (std::uint64_t pn = log.base_pn(); pn < log.next_pn(); ++pn) {
    log.add_flags(pn, kSentAcked);
  }
  log.compact(time::sec(60), time::sec(2));
  const ScoreboardCounters& c = log.counters();
  EXPECT_EQ(c.compact_pops, static_cast<std::uint64_t>(kN));
  EXPECT_LE(c.storage_moves, static_cast<std::uint64_t>(kN));
  EXPECT_GE(c.compact_calls, static_cast<std::uint64_t>(kN));
}

// --- sender-level tests ---

class RecordingNetwork : public netsim::PacketSink {
 public:
  void deliver(Packet p) override { packets.push_back(std::move(p)); }
  std::vector<Packet> packets;
};

struct Fixture {
  Simulator sim;
  RecordingNetwork net;
  std::unique_ptr<SenderEndpoint> sender;

  explicit Fixture(SenderProfile profile) {
    cca::CubicConfig ccfg;
    ccfg.mss = profile.mss;
    sender = std::make_unique<SenderEndpoint>(
        sim, 0, profile, std::make_unique<cca::Cubic>(ccfg), &net, Rng(3));
    sender->start(0);
  }

  void deliver_ack(std::initializer_list<netsim::AckRange> ranges) {
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.flow = 0;
    ack.size = 80;
    int i = 0;
    for (const auto& r : ranges) {
      ack.largest_acked = std::max(ack.largest_acked, r.last);
      ack.set_range(i++, r.first, r.last);
    }
    ack.n_ranges = static_cast<std::uint8_t>(i);
    sender->deliver(ack);
  }
};

TEST(SenderScoreboard, AckRangesResolvingTrackedPnsMidScan) {
  // Regression for the pre-SentLog hazard: ACK processing used to erase
  // pns from the unresolved std::set while range handling and loss
  // detection were iterating it. Deliver ACK frames whose ranges ack,
  // loss-mark and spuriously-recover pns that sit on the unresolved list
  // in the same frame, and check the byte ledger stays exact.
  SenderProfile p = default_quic_profile().sender;
  Fixture f(p);
  f.sim.run_until(time::ms(5));
  ASSERT_GE(f.net.packets.back().pn, 8u);

  // Gap ack: pns 0-2 and 5 stay unresolved; 3-4 and 6-8 resolve while
  // the scoreboard walk crosses both sides of the gap.
  f.deliver_ack({{6, 8}, {3, 4}});
  const auto losses_after_gap = f.sender->stats().losses_detected;
  EXPECT_GE(losses_after_gap, 1) << "packet threshold should fire";

  // Healing ack: the same frame acks a lost-marked pn (spurious
  // recovery, unlinks mid-list) and a still-in-flight pn.
  f.deliver_ack({{0, 8}});
  EXPECT_GE(f.sender->stats().spurious_losses, 1);

  // Duplicate of an already-consumed frame: every pn resolved, no
  // double accounting.
  f.deliver_ack({{0, 8}});
  f.sim.run_until(time::ms(20));

  Bytes expected = 0;
  for (const auto& pkt : f.net.packets) {
    if (pkt.pn > 8) expected += pkt.size;
  }
  EXPECT_EQ(f.sender->bytes_in_flight(), expected);
}

TEST(SenderScoreboard, PerAckWorkAmortizedAcrossManyFrames) {
  // Satellite guarantee: an adversarial ACK pattern (one frame per
  // packet, each advancing the window by a single pn) must not make
  // compaction quadratic. Every pushed entry is retired exactly once
  // and prefix erases move each entry at most once on average.
  SenderProfile p = default_quic_profile().sender;
  // Nothing throttles the synthetic ack loop, so cap the flight — else
  // slow start doubles the window every round for the whole test.
  p.flow_control_window = 64 * (p.mss + p.header_overhead);
  Fixture f(p);
  std::uint64_t acked = 0;
  for (int round = 0; round < 400; ++round) {
    f.sim.run_until(time::ms(round + 1));
    const std::uint64_t largest =
        f.net.packets.empty() ? 0 : f.net.packets.back().pn;
    // One ACK frame per outstanding pn: worst-case frame count.
    while (acked < largest) {
      ++acked;
      Packet ack;
      ack.kind = PacketKind::kAck;
      ack.flow = 0;
      ack.size = 80;
      ack.largest_acked = acked;
      ack.set_range(0, 0, acked);
      ack.n_ranges = 1;
      f.sender->deliver(ack);
    }
  }
  const auto sent = static_cast<std::uint64_t>(f.sender->stats().packets_sent);
  const ScoreboardCounters& c = f.sender->scoreboard_counters();
  ASSERT_GT(sent, 1000u) << "scenario too small to exercise amortization";
  EXPECT_LE(c.compact_pops, sent) << "entries may be retired once each";
  EXPECT_LE(c.storage_moves, sent)
      << "prefix erases must amortize to <= one move per packet";
  EXPECT_LE(c.link_walk_steps, 8 * c.link_inserts)
      << "unresolved-list inserts must stay near the tail";
}

TEST(SenderScoreboard, PacketStaysTwoCacheLinesAndRangesRoundTrip) {
  static_assert(sizeof(Packet) == 128);
  Packet ack;
  ack.kind = PacketKind::kAck;
  for (int i = 0; i < Packet::kMaxAckRanges; ++i) {
    ack.set_range(i, 10 * i + 1, 10 * i + 7);
  }
  ack.n_ranges = Packet::kMaxAckRanges;
  for (int i = 0; i < Packet::kMaxAckRanges; ++i) {
    EXPECT_EQ(ack.range(i).first, static_cast<std::uint64_t>(10 * i + 1));
    EXPECT_EQ(ack.range(i).last, static_cast<std::uint64_t>(10 * i + 7));
  }
}

} // namespace
} // namespace quicbench::transport
