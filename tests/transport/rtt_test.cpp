#include <gtest/gtest.h>

#include "transport/rtt.h"

namespace quicbench::transport {
namespace {

TEST(RttEstimator, NoSampleUsesInitial) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.smoothed(), RttEstimator::kInitialRtt);
  EXPECT_EQ(e.min_rtt(), RttEstimator::kInitialRtt);
}

TEST(RttEstimator, FirstSampleInitialises) {
  RttEstimator e;
  e.update(time::ms(20), 0);
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.smoothed(), time::ms(20));
  EXPECT_EQ(e.rttvar(), time::ms(10));
  EXPECT_EQ(e.min_rtt(), time::ms(20));
  EXPECT_EQ(e.latest(), time::ms(20));
}

TEST(RttEstimator, EwmaSmoothing) {
  RttEstimator e;
  e.update(time::ms(16), 0);
  e.update(time::ms(24), 0);
  // srtt = 7/8*16 + 1/8*24 = 17 ms.
  EXPECT_EQ(e.smoothed(), time::ms(17));
}

TEST(RttEstimator, MinTracksSmallest) {
  RttEstimator e;
  e.update(time::ms(30), 0);
  e.update(time::ms(10), 0);
  e.update(time::ms(50), 0);
  EXPECT_EQ(e.min_rtt(), time::ms(10));
  EXPECT_EQ(e.latest(), time::ms(50));
}

TEST(RttEstimator, AckDelaySubtracted) {
  RttEstimator e;
  e.update(time::ms(10), 0);  // establish min = 10ms
  e.update(time::ms(40), time::ms(20));
  // adjusted = 20 ms (40 - 20 >= min); srtt = 7/8*10 + 1/8*20 = 11.25 ms.
  EXPECT_EQ(e.smoothed(), time::us(11250));
}

TEST(RttEstimator, AckDelayNotSubtractedBelowMin) {
  RttEstimator e;
  e.update(time::ms(10), 0);
  // Subtracting 8 ms would go below min (10): keep the raw sample.
  e.update(time::ms(12), time::ms(8));
  EXPECT_EQ(e.smoothed(), (7 * time::ms(10) + time::ms(12)) / 8);
}

TEST(RttEstimator, PtoGrowsWithVariance) {
  RttEstimator stable, jittery;
  for (int i = 0; i < 20; ++i) {
    stable.update(time::ms(20), 0);
    jittery.update(i % 2 == 0 ? time::ms(10) : time::ms(30), 0);
  }
  EXPECT_GT(jittery.pto_interval(0), stable.pto_interval(0));
  // PTO includes max_ack_delay.
  EXPECT_EQ(stable.pto_interval(time::ms(25)) - stable.pto_interval(0),
            time::ms(25));
}

TEST(RttEstimator, PtoHasMinimumGranularity) {
  RttEstimator e;
  for (int i = 0; i < 50; ++i) e.update(time::ms(20), 0);
  // rttvar decays toward 0; the 1 ms floor keeps PTO > srtt.
  EXPECT_GE(e.pto_interval(0), e.smoothed() + time::ms(1));
}

} // namespace
} // namespace quicbench::transport
