// Focused tests on sender mechanics: pacing spacing, quantum batching,
// bookkeeping bounds, observability callbacks, and the adaptive reorder
// threshold.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "cca/cubic.h"
#include "cca/reno.h"
#include "netsim/event.h"
#include "transport/sender.h"

namespace quicbench::transport {
namespace {

using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

class RecordingNetwork : public netsim::PacketSink {
 public:
  explicit RecordingNetwork(Simulator& sim) : sim_(sim) {}
  void deliver(Packet p) override {
    times.push_back(sim_.now());
    packets.push_back(std::move(p));
  }
  Simulator& sim_;
  std::vector<Time> times;
  std::vector<Packet> packets;
};

struct Fixture {
  Simulator sim;
  RecordingNetwork net{sim};
  std::unique_ptr<SenderEndpoint> sender;

  explicit Fixture(SenderProfile profile) {
    cca::CubicConfig ccfg;
    ccfg.mss = profile.mss;
    sender = std::make_unique<SenderEndpoint>(
        sim, 0, profile, std::make_unique<cca::Cubic>(ccfg), &net, Rng(3));
    sender->start(0);
  }

  void ack_up_to(std::uint64_t largest) {
    Packet ack;
    ack.kind = PacketKind::kAck;
    ack.flow = 0;
    ack.size = 80;
    ack.largest_acked = largest;
    ack.set_range(0, 0, largest);
    ack.n_ranges = 1;
    sender->deliver(ack);
  }
};

TEST(SenderInternals, InitialWindowBurstSize) {
  SenderProfile p = kernel_tcp_profile().sender;
  p.pace_window_ccas = false;  // pure window-limited burst
  Fixture f(p);
  f.sim.run_until(time::ms(1));
  // 10 x 1448 cwnd over 1500-byte wire packets -> 9 packets.
  EXPECT_EQ(f.net.packets.size(), 9u);
}

TEST(SenderInternals, PacingSpacesPackets) {
  SenderProfile p = default_quic_profile().sender;
  Fixture f(p);
  f.sim.run_until(time::ms(1));
  const auto unpaced_count = f.net.packets.size();
  // With an RTT sample the pacer kicks in; ack everything to trigger more
  // sends at the now-known rate.
  f.sim.run_until(time::ms(10));
  f.ack_up_to(f.net.packets.back().pn);
  const std::size_t before = f.net.times.size();
  f.sim.run_until(time::ms(30));
  ASSERT_GT(f.net.times.size(), before + 3);
  // Inter-send gaps beyond the burst allowance must be non-zero.
  int nonzero_gaps = 0;
  for (std::size_t i = before + 1; i < f.net.times.size(); ++i) {
    if (f.net.times[i] - f.net.times[i - 1] > 0) ++nonzero_gaps;
  }
  EXPECT_GT(nonzero_gaps, 0);
  EXPECT_GE(unpaced_count, 1u);
}

TEST(SenderInternals, QuantumBatchesSends) {
  SenderProfile p = default_quic_profile().sender;
  p.send_quantum = time::ms(2);
  Fixture f(p);
  f.sim.run_until(time::ms(10));
  ASSERT_FALSE(f.net.times.empty());
  // All sends land on (multiples of) the quantum grid.
  for (const Time t : f.net.times) {
    EXPECT_EQ(t % time::ms(2), 0) << "send at " << t;
  }
}

TEST(SenderInternals, SentLogCompacted) {
  // After acking everything, the bookkeeping must drain: bytes in flight
  // return to zero. (Few ack rounds only — with no bottleneck the window
  // doubles per round.)
  SenderProfile p = default_quic_profile().sender;
  Fixture f(p);
  for (int round = 1; round <= 6; ++round) {
    f.sim.run_until(time::ms(round));
    if (!f.net.packets.empty()) f.ack_up_to(f.net.packets.back().pn);
  }
  f.sim.run_until(time::ms(10));
  const std::uint64_t last_acked = f.net.packets.back().pn;
  f.ack_up_to(last_acked);
  // The ack itself opens the window and triggers fresh sends; in-flight
  // must equal exactly the wire bytes of packets sent after that ack.
  Bytes expected = 0;
  for (const auto& p : f.net.packets) {
    if (p.pn > last_acked) expected += p.size;
  }
  EXPECT_EQ(f.sender->bytes_in_flight(), expected);
}

TEST(SenderInternals, CallbacksFire) {
  SenderProfile p = default_quic_profile().sender;
  Fixture f(p);
  int sent = 0, lost = 0;
  f.sender->set_packet_sent_callback(
      [&](Time, std::uint64_t, Bytes, bool) { ++sent; });
  f.sender->set_packet_lost_callback([&](Time, std::uint64_t) { ++lost; });
  f.sim.run_until(time::ms(5));
  EXPECT_GT(sent, 0) << "initial burst reported through the callback";
  // Trigger new sends.
  f.ack_up_to(f.net.packets.back().pn);
  f.sim.run_until(time::ms(10));
  // Create a gap: ack a later packet, skip an earlier one.
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 0;
  ack.size = 80;
  const std::uint64_t last = f.net.packets.back().pn;
  ack.largest_acked = last;
  ack.set_range(0, last - 1, last);
  ack.n_ranges = 1;
  // Make earlier pns overdue.
  f.sim.run_until(time::ms(60));
  f.sender->deliver(ack);
  f.sim.run_until(time::ms(200));
  EXPECT_GT(lost, 0);
}

TEST(SenderInternals, ReorderThresholdAdapts) {
  SenderProfile p = default_quic_profile().sender;
  ASSERT_TRUE(p.adapt_reorder_threshold);
  Fixture f(p);
  f.sim.run_until(time::ms(5));
  // Declare pn 0 lost via a gap, then ack it late (spurious).
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 0;
  ack.size = 80;
  ack.largest_acked = 5;
  ack.set_range(0, 1, 5);
  ack.n_ranges = 1;
  f.sender->deliver(ack);
  ASSERT_GE(f.sender->stats().losses_detected, 1);
  f.ack_up_to(5);  // covers pn 0 -> spurious
  EXPECT_EQ(f.sender->stats().spurious_losses, 1);

  // Clear the rest of the initial burst so no stale packets can trip the
  // time threshold, and let fresh sends (pn >= 9) go out.
  f.sim.run_until(time::ms(6));
  f.ack_up_to(8);
  f.sim.run_until(time::ms(7));
  ASSERT_GT(f.net.packets.back().pn, 12u);

  // A gap of exactly 3 recent packets (pns 9-11 missing below largest
  // 12): the original threshold of 3 would declare pn 9 lost
  // immediately; the widened threshold (4) must not.
  const auto losses_before = f.sender->stats().losses_detected;
  Packet ack2 = ack;
  ack2.largest_acked = 12;
  ack2.set_range(0, 12, 12);
  ack2.set_range(1, 0, 8);
  ack2.n_ranges = 2;
  f.sender->deliver(ack2);
  EXPECT_EQ(f.sender->stats().losses_detected, losses_before);
}

TEST(SenderInternals, RetransmissionsCarryRetxFlagInQlogHook) {
  SenderProfile p = default_quic_profile().sender;
  Fixture f(p);
  bool saw_retx = false;
  f.sender->set_packet_sent_callback(
      [&](Time, std::uint64_t, Bytes, bool retx) { saw_retx |= retx; });
  f.sim.run_until(time::ms(5));
  // Gap -> loss -> retransmission.
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.flow = 0;
  ack.size = 80;
  ack.largest_acked = 7;
  ack.set_range(0, 4, 7);
  ack.n_ranges = 1;
  f.sender->deliver(ack);
  f.sim.run_until(time::ms(20));
  EXPECT_TRUE(saw_retx);
}

} // namespace
} // namespace quicbench::transport
