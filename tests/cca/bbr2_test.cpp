#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cca/bbr2.h"

namespace quicbench::cca {
namespace {

constexpr Bytes kMss = 1448;

Bbr2Config config() {
  Bbr2Config cfg;
  cfg.mss = kMss;
  cfg.initial_cwnd_packets = 10;
  return cfg;
}

// Drives a Bbr2 instance with a synthetic steady link: delivery rate
// `rate_bps`, round-trip `rtt`. Mirrors BbrDriver in bbr_test.cpp.
class Bbr2Driver {
 public:
  explicit Bbr2Driver(Bbr2& bbr) : bbr_(bbr) {}

  void run_rounds(int rounds, Rate rate_bps, Time rtt, Bytes in_flight = 0,
                  Bytes lost_per_round = 0) {
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t round_end = pn_ + 10;
      for (int i = 0; i < 10; ++i) {
        AckEvent ev;
        now_ += rtt / 10;
        ev.now = now_;
        ev.bytes_acked = 2 * kMss;
        ev.bytes_in_flight =
            in_flight > 0 ? in_flight
                          : static_cast<Bytes>(rate_bps / 8.0 *
                                               time::to_sec(rtt));
        ev.rtt = rtt;
        ev.smoothed_rtt = rtt;
        ev.min_rtt = rtt;
        ev.largest_newly_acked = ++pn_;
        ev.largest_sent_pn = round_end + 10;
        ev.rate_valid = true;
        ev.delivery_rate = rate_bps;
        bbr_.on_ack(ev);
      }
      if (lost_per_round > 0) {
        LossEvent lev;
        lev.now = now_;
        lev.bytes_lost = lost_per_round;
        lev.bytes_in_flight = in_flight;
        lev.largest_lost_sent_time = now_ - rtt;
        bbr_.on_loss(lev);
      }
    }
  }

  Time now() const { return now_; }

 private:
  Bbr2& bbr_;
  Time now_ = 0;
  std::uint64_t pn_ = 0;
};

TEST(Bbr2, StartsInStartup) {
  Bbr2 bbr(config());
  EXPECT_EQ(bbr.mode(), Bbr2::Mode::kStartup);
  EXPECT_TRUE(bbr.in_slow_start());
  EXPECT_EQ(bbr.phase(), "startup");
  EXPECT_FALSE(bbr.pacing_rate().has_value());  // no estimates yet
  EXPECT_EQ(bbr.cwnd(), 10 * kMss);
}

TEST(Bbr2, TracksBottleneckBandwidth) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  d.run_rounds(5, rate::mbps(20), time::ms(10));
  EXPECT_NEAR(rate::to_mbps(bbr.max_bw()), 20.0, 0.1);
  EXPECT_EQ(bbr.rt_prop(), time::ms(10));
}

TEST(Bbr2, ExitsStartupWhenBandwidthPlateaus) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  d.run_rounds(2, rate::mbps(5), time::ms(10));
  d.run_rounds(2, rate::mbps(10), time::ms(10));
  EXPECT_EQ(bbr.mode(), Bbr2::Mode::kStartup);
  d.run_rounds(6, rate::mbps(20), time::ms(10));
  EXPECT_TRUE(bbr.filled_pipe());
  EXPECT_NE(bbr.mode(), Bbr2::Mode::kStartup);
}

TEST(Bbr2, StartupLossExitCapsInflightHi) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  // Bandwidth keeps doubling, so the plateau detector never fires —
  // only sustained per-round loss (1 MSS lost per ~20 acked, ~4.8%) can
  // end startup, and that path is the one that seeds inflight_hi.
  Rate bw = rate::mbps(2);
  for (int r = 0; r < 8 && !bbr.filled_pipe(); ++r) {
    d.run_rounds(1, bw, time::ms(10), /*in_flight=*/0,
                 /*lost_per_round=*/kMss);
    bw *= 2.0;
  }
  EXPECT_TRUE(bbr.filled_pipe());
  EXPECT_NE(bbr.inflight_hi(), Bbr2::kInfBytes);
}

TEST(Bbr2, ReachesProbeBwAndPacesAtEstimate) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  d.run_rounds(12, rate::mbps(20), time::ms(10),
               /*in_flight=*/bdp_bytes(rate::mbps(20), time::ms(10)) / 2);
  EXPECT_EQ(bbr.mode(), Bbr2::Mode::kProbeBw);
  ASSERT_TRUE(bbr.pacing_rate().has_value());
  // Pacing rate = gain x bw with gain in [0.9, 1.25].
  const double mbps = rate::to_mbps(*bbr.pacing_rate());
  EXPECT_GE(mbps, 0.89 * 20);
  EXPECT_LE(mbps, 1.26 * 20);
}

TEST(Bbr2, CyclesThroughDownCruiseRefillUp) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(12, rate::mbps(20), time::ms(10), bdp / 2);
  ASSERT_EQ(bbr.mode(), Bbr2::Mode::kProbeBw);
  // Track in-flight to the phase the cycle asks for: drain below the
  // headroom line in Down/Cruise, fill past the probe target in
  // Refill/Up. 400 rounds = 4 s, beyond the 2.5 s bw_probe_wait.
  std::set<std::string> phases;
  for (int i = 0; i < 400; ++i) {
    const bool filling = bbr.cycle_phase() == Bbr2::CyclePhase::kRefill ||
                         bbr.cycle_phase() == Bbr2::CyclePhase::kUp;
    d.run_rounds(1, rate::mbps(20), time::ms(10),
                 filling ? bdp * 13 / 10 : bdp * 7 / 10);
    phases.insert(std::string(bbr.phase()));
  }
  EXPECT_TRUE(phases.count("probe_bw_down"));
  EXPECT_TRUE(phases.count("probe_bw_cruise"));
  EXPECT_TRUE(phases.count("probe_bw_refill"));
  EXPECT_TRUE(phases.count("probe_bw_up"));
}

TEST(Bbr2, CwndTracksGainTimesBdp) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(30, rate::mbps(20), time::ms(10), bdp);
  // cwnd converges to cwnd_gain x BDP (2.0), modulo the volume bounds.
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()), 2.0 * static_cast<double>(bdp),
              static_cast<double>(bdp) * 0.3);
}

TEST(Bbr2, PacingRateScaleMultiplier) {
  Bbr2Config fast = config();
  fast.pacing_rate_scale = 1.2;
  Bbr2 def(config()), mod(fast);
  Bbr2Driver d1(def), d2(mod);
  d1.run_rounds(30, rate::mbps(20), time::ms(10));
  d2.run_rounds(30, rate::mbps(20), time::ms(10));
  ASSERT_TRUE(def.pacing_rate().has_value());
  ASSERT_TRUE(mod.pacing_rate().has_value());
  EXPECT_NEAR(*mod.pacing_rate() / *def.pacing_rate(), 1.2, 1e-9);
}

TEST(Bbr2, LossShrinksShortTermBounds) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(30, rate::mbps(20), time::ms(10), bdp);
  const Bytes before = bbr.cwnd();
  const Rate bw_before = bbr.bw();
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = 4 * kMss;
  ev.bytes_in_flight = bdp;
  ev.largest_lost_sent_time = d.now() - time::ms(5);
  bbr.on_loss(ev);
  // Unlike BBRv1 (loss-agnostic), v2 applies beta to the short-term
  // bounds: cwnd is clamped to inflight_lo and bw to bw_lo.
  EXPECT_NE(bbr.inflight_lo(), Bbr2::kInfBytes);
  EXPECT_LT(bbr.cwnd(), before);
  EXPECT_LT(bbr.bw(), bw_before);
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
}

TEST(Bbr2, LossBoundsMoveOncePerRound) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(30, rate::mbps(20), time::ms(10), bdp);
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = kMss;
  ev.bytes_in_flight = bdp;
  ev.largest_lost_sent_time = d.now() - time::ms(5);
  bbr.on_loss(ev);
  const Bytes after_first = bbr.inflight_lo();
  bbr.on_loss(ev);  // same round: no further decrease
  EXPECT_EQ(bbr.inflight_lo(), after_first);
}

TEST(Bbr2, SpuriousLossRestoresBounds) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(30, rate::mbps(20), time::ms(10), bdp);
  const Rate bw_clean = bbr.bw();
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = 4 * kMss;
  ev.bytes_in_flight = bdp;
  ev.largest_lost_sent_time = d.now() - time::ms(5);
  bbr.on_loss(ev);
  ASSERT_LT(bbr.bw(), bw_clean);
  bbr.on_spurious_loss({d.now(), 1, kMss, d.now() - time::ms(5)});
  EXPECT_EQ(bbr.inflight_lo(), Bbr2::kInfBytes);
  EXPECT_EQ(bbr.bw(), bw_clean);
}

TEST(Bbr2, ProbeUpLossClampsInflightHi) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  d.run_rounds(12, rate::mbps(20), time::ms(10), bdp / 2);
  ASSERT_EQ(bbr.mode(), Bbr2::Mode::kProbeBw);
  // Walk the cycle into Up.
  for (int i = 0; i < 400 && bbr.cycle_phase() != Bbr2::CyclePhase::kUp;
       ++i) {
    const bool filling = bbr.cycle_phase() == Bbr2::CyclePhase::kRefill;
    d.run_rounds(1, rate::mbps(20), time::ms(10),
                 filling ? bdp * 13 / 10 : bdp * 7 / 10);
  }
  ASSERT_EQ(bbr.cycle_phase(), Bbr2::CyclePhase::kUp);
  // The probe hits a loss burst well above loss_thresh: inflight_hi must
  // clamp to what the path carried and the cycle must fall back to Down.
  d.run_rounds(1, rate::mbps(20), time::ms(10), bdp * 13 / 10,
               /*lost_per_round=*/6 * kMss);
  EXPECT_NE(bbr.inflight_hi(), Bbr2::kInfBytes);
  EXPECT_LE(bbr.inflight_hi(), bdp * 13 / 10);
  EXPECT_EQ(bbr.cycle_phase(), Bbr2::CyclePhase::kDown);
}

TEST(Bbr2, PersistentCongestionCollapses) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  d.run_rounds(30, rate::mbps(20), time::ms(10));
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = 10 * kMss;
  ev.is_persistent_congestion = true;
  bbr.on_loss(ev);
  EXPECT_EQ(bbr.cwnd(), 4 * kMss);
}

TEST(Bbr2, ProbeRttAfterMinRttExpiry) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(12));
  d.run_rounds(12, rate::mbps(20), time::ms(10), bdp);
  ASSERT_TRUE(bbr.filled_pipe());
  // Keep the measured RTT above the initial min for > 5 s (v2 interval).
  bool saw_probe_rtt = false;
  for (int i = 0; i < 600 && !saw_probe_rtt; ++i) {
    d.run_rounds(1, rate::mbps(20), time::ms(12), bdp);
    if (bbr.mode() == Bbr2::Mode::kProbeRtt) saw_probe_rtt = true;
  }
  ASSERT_TRUE(saw_probe_rtt);
  // v2 floor: 0.5x estimated BDP, not 4 packets.
  EXPECT_GE(bbr.cwnd(), 4 * kMss);
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              0.5 * static_cast<double>(bdp_bytes(rate::mbps(20),
                                                  time::ms(12))),
              static_cast<double>(bdp) * 0.25);
  EXPECT_LT(bbr.cwnd(), bdp);
}

TEST(Bbr2, ProbeRttExitsBackToProbeBw) {
  Bbr2 bbr(config());
  Bbr2Driver d(bbr);
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(12));
  d.run_rounds(12, rate::mbps(20), time::ms(10), bdp);
  while (bbr.mode() != Bbr2::Mode::kProbeRtt) {
    d.run_rounds(1, rate::mbps(20), time::ms(12), bdp);
  }
  const Bytes floor_cwnd = bbr.cwnd();
  // Drain below the floor and run past the 200 ms dwell.
  for (int i = 0; i < 100 && bbr.mode() == Bbr2::Mode::kProbeRtt; ++i) {
    d.run_rounds(1, rate::mbps(20), time::ms(12), /*in_flight=*/2 * kMss);
  }
  EXPECT_EQ(bbr.mode(), Bbr2::Mode::kProbeBw);
  // Exit lands in Down; the drained in-flight may legitimately advance
  // the cycle to Cruise within the same ack round.
  EXPECT_TRUE(bbr.cycle_phase() == Bbr2::CyclePhase::kDown ||
              bbr.cycle_phase() == Bbr2::CyclePhase::kCruise);
  EXPECT_GT(bbr.cwnd(), floor_cwnd);  // prior cwnd restored
}

TEST(Bbr2, HeadroomKnobShavesCruiseCap) {
  // With inflight_hi pinned by a startup loss exit, the cruise-phase
  // cwnd cap is inflight_hi less the configured headroom — the xquic
  // deviation (headroom 0) cruises a strictly larger window. Both
  // instances get a byte-identical drive, so they hold identical
  // inflight_hi and walk the cycle in lockstep; only the headroom knob
  // can separate their windows.
  Bbr2Config tight = config();
  tight.inflight_headroom = 0.15;
  Bbr2Config loose = config();
  loose.inflight_headroom = 0.0;
  Bbr2 a(tight), b(loose);
  Bbr2Driver da(a), db(b);
  Rate bw = rate::mbps(2);
  for (int r = 0; r < 8 && !a.filled_pipe(); ++r) {
    da.run_rounds(1, bw, time::ms(10), 0, /*lost_per_round=*/kMss);
    db.run_rounds(1, bw, time::ms(10), 0, /*lost_per_round=*/kMss);
    bw *= 2.0;
  }
  ASSERT_TRUE(a.filled_pipe());
  ASSERT_TRUE(b.filled_pipe());
  ASSERT_EQ(a.inflight_hi(), b.inflight_hi());
  // The startup losses left a short-term inflight_lo below both cruise
  // caps; declare them spurious so only the long-term cap (inflight_hi
  // shaved by headroom) binds the window.
  a.on_spurious_loss({da.now(), 1, kMss, da.now() - time::ms(5)});
  b.on_spurious_loss({db.now(), 1, kMss, db.now() - time::ms(5)});
  const Bytes park = std::max<Bytes>(a.inflight_hi() / 2, 2 * kMss);
  bool compared = false;
  for (int i = 0; i < 60; ++i) {
    da.run_rounds(1, rate::mbps(20), time::ms(10), park);
    db.run_rounds(1, rate::mbps(20), time::ms(10), park);
    if (a.phase() == "probe_bw_cruise" && b.phase() == "probe_bw_cruise" &&
        a.cwnd() < b.cwnd()) {
      compared = true;
      break;
    }
  }
  EXPECT_TRUE(compared) << "headroom shave never separated the windows";
}

} // namespace
} // namespace quicbench::cca
