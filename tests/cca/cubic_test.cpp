#include <gtest/gtest.h>

#include <cmath>

#include "cca/cubic.h"

namespace quicbench::cca {
namespace {

constexpr Bytes kMss = 1448;

CubicConfig config() {
  CubicConfig cfg;
  cfg.mss = kMss;
  cfg.initial_cwnd_packets = 10;
  return cfg;
}

AckEvent ack(Time now, Bytes bytes_acked, Time rtt = time::ms(10),
             std::uint64_t largest_newly = 0, std::uint64_t largest_sent = 0) {
  AckEvent ev;
  ev.now = now;
  ev.bytes_acked = bytes_acked;
  ev.rtt = rtt;
  ev.smoothed_rtt = rtt;
  ev.min_rtt = rtt;
  ev.largest_newly_acked = largest_newly;
  ev.largest_sent_pn = largest_sent;
  return ev;
}

LossEvent loss(Time now, Time sent_time, Bytes bytes = kMss) {
  LossEvent ev;
  ev.now = now;
  ev.bytes_lost = bytes;
  ev.largest_lost_sent_time = sent_time;
  return ev;
}

TEST(Cubic, InitialState) {
  Cubic cubic(config());
  EXPECT_EQ(cubic.cwnd(), 10 * kMss);
  EXPECT_TRUE(cubic.in_slow_start());
}

TEST(Cubic, SlowStartDoubles) {
  Cubic cubic(config());
  const Bytes before = cubic.cwnd();
  cubic.on_ack(ack(time::ms(1), before));
  EXPECT_EQ(cubic.cwnd(), 2 * before);
}

TEST(Cubic, BackoffUsesBeta) {
  Cubic cubic(config());
  cubic.on_ack(ack(time::ms(1), 20 * kMss));
  const Bytes before = cubic.cwnd();
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  EXPECT_EQ(cubic.cwnd(),
            static_cast<Bytes>(static_cast<double>(before) * 0.7));
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, EmulatedFlowsShallowerBackoff) {
  CubicConfig two = config();
  two.emulated_flows = 2;
  Cubic one(config()), dup(two);
  one.on_ack(ack(time::ms(1), 20 * kMss));
  dup.on_ack(ack(time::ms(1), 20 * kMss));
  one.on_loss(loss(time::ms(30), time::ms(25)));
  dup.on_loss(loss(time::ms(30), time::ms(25)));
  // beta_hat = (1 + 0.7) / 2 = 0.85 > 0.7.
  EXPECT_GT(dup.cwnd(), one.cwnd());
}

TEST(Cubic, OneReductionPerCongestionEvent) {
  Cubic cubic(config());
  cubic.on_ack(ack(time::ms(1), 20 * kMss));
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  const Bytes after = cubic.cwnd();
  cubic.on_loss(loss(time::ms(31), time::ms(26)));
  EXPECT_EQ(cubic.cwnd(), after);
}

TEST(Cubic, ConcaveGrowthTowardWmax) {
  Cubic cubic(config());
  // Build a large window, then back off and watch cubic growth approach
  // (and eventually exceed) the previous w_max.
  cubic.on_ack(ack(time::ms(1), 60 * kMss));
  const Bytes w_max = cubic.cwnd();
  cubic.on_loss(loss(time::ms(20), time::ms(15)));
  const Bytes floor = cubic.cwnd();
  EXPECT_LT(floor, w_max);

  Time now = time::ms(30);
  Bytes prev = cubic.cwnd();
  bool crossed = false;
  for (int i = 0; i < 4000; ++i) {
    now += time::ms(1);
    cubic.on_ack(ack(now, kMss));
    EXPECT_GE(cubic.cwnd(), prev);  // monotone during concave/convex growth
    prev = cubic.cwnd();
    if (prev > w_max) {
      crossed = true;
      break;
    }
  }
  EXPECT_TRUE(crossed) << "cubic should eventually exceed w_max";
}

TEST(Cubic, GrowthSlowsNearWmax) {
  // The defining CUBIC property: growth decelerates approaching w_max and
  // accelerates beyond it.
  Cubic cubic(config());
  cubic.on_ack(ack(time::ms(1), 100 * kMss));
  cubic.on_loss(loss(time::ms(20), time::ms(15)));
  const Bytes floor = cubic.cwnd();

  Time now = time::ms(30);
  std::vector<Bytes> series{floor};
  for (int i = 0; i < 3000; ++i) {
    now += time::ms(2);
    cubic.on_ack(ack(now, kMss));
    series.push_back(cubic.cwnd());
  }
  // Compare early growth rate vs growth rate near the plateau (around K).
  const Bytes early = series[300] - series[0];
  const Bytes mid = series[1500] - series[1200];
  EXPECT_GT(early, mid);
}

TEST(Cubic, FastConvergenceReducesWmax) {
  CubicConfig no_fc = config();
  no_fc.fast_convergence = false;
  Cubic with_fc(config()), without_fc(no_fc);
  for (Cubic* c : {&with_fc, &without_fc}) {
    c->on_ack(ack(time::ms(1), 60 * kMss));
    c->on_loss(loss(time::ms(20), time::ms(15)));      // w_max = 70 MSS
    c->on_loss(loss(time::ms(100), time::ms(95)));     // second event below w_max
  }
  // With fast convergence the second w_max is scaled down further.
  EXPECT_LT(with_fc.w_max_segments(), without_fc.w_max_segments());
}

TEST(Cubic, HystartExitsOnDelayIncrease) {
  Cubic cubic(config());
  // Round 1: baseline RTT 10 ms, 8+ samples.
  std::uint64_t pn = 0;
  Time now = 0;
  const auto run_round = [&](Time rtt, int samples) {
    const std::uint64_t round_end = pn + 100;
    for (int i = 0; i < samples; ++i) {
      now += time::ms(1);
      pn += 10;
      cubic.on_ack(ack(now, kMss, rtt, pn, round_end));
    }
    pn = round_end + 1;
  };
  run_round(time::ms(10), 10);
  run_round(time::ms(10), 10);
  EXPECT_TRUE(cubic.in_slow_start());
  EXPECT_FALSE(cubic.in_css());
  // RTT jumps by 4 ms (>= eta = max(10ms/8, 4ms)): HyStart moves to CSS.
  run_round(time::ms(15), 10);
  EXPECT_TRUE(cubic.in_css());
  // Five CSS rounds with the elevated RTT confirm: exit slow start.
  for (int r = 0; r < 6; ++r) run_round(time::ms(15), 10);
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, HystartSpuriousExitResumesSlowStart) {
  Cubic cubic(config());
  std::uint64_t pn = 0;
  Time now = 0;
  const auto run_round = [&](Time rtt, int samples) {
    const std::uint64_t round_end = pn + 100;
    for (int i = 0; i < samples; ++i) {
      now += time::ms(1);
      pn += 10;
      cubic.on_ack(ack(now, kMss, rtt, pn, round_end));
    }
    pn = round_end + 1;
  };
  run_round(time::ms(10), 10);
  run_round(time::ms(10), 10);
  run_round(time::ms(15), 10);  // enter CSS
  EXPECT_TRUE(cubic.in_css());
  // RTT back below the CSS baseline: spurious, resume slow start.
  run_round(time::ms(8), 10);
  EXPECT_TRUE(cubic.in_slow_start());
  EXPECT_FALSE(cubic.in_css());
}

TEST(Cubic, ClassicHystartExitsOnDelayIncrease) {
  CubicConfig cfg = config();
  cfg.classic_hystart = true;
  Cubic cubic(cfg);
  std::uint64_t pn = 0;
  Time now = 0;
  const auto run_round = [&](Time rtt, int samples) {
    const std::uint64_t round_end = pn + 100;
    for (int i = 0; i < samples; ++i) {
      now += time::ms(3);  // spaced acks: no ack-train trigger
      pn += 10;
      cubic.on_ack(ack(now, kMss, rtt, pn, round_end));
    }
    pn = round_end + 1;
  };
  run_round(time::ms(10), 10);
  run_round(time::ms(10), 10);
  EXPECT_TRUE(cubic.in_slow_start());
  // Delay detector: classic HyStart exits straight to avoidance (no CSS).
  run_round(time::ms(15), 10);
  EXPECT_FALSE(cubic.in_slow_start());
  EXPECT_FALSE(cubic.in_css());
}

TEST(Cubic, ClassicHystartAckTrainExits) {
  CubicConfig cfg = config();
  cfg.classic_hystart = true;
  cfg.hystart_ack_train = true;
  Cubic cubic(cfg);
  std::uint64_t pn = 0;
  Time now = 0;
  // One spaced round to establish delay_min = 10 ms.
  const std::uint64_t round1_end = pn + 100;
  for (int i = 0; i < 10; ++i) {
    now += time::ms(3);
    pn += 10;
    cubic.on_ack(ack(now, kMss, time::ms(10), pn, round1_end));
  }
  pn = round1_end + 1;
  ASSERT_TRUE(cubic.in_slow_start());
  // Next round: a dense ack train (1 ms spacing) spanning more than
  // delay_min/2 = 5 ms triggers the train detector even with flat RTTs.
  const std::uint64_t round2_end = pn + 100;
  for (int i = 0; i < 10; ++i) {
    now += time::ms(1);
    pn += 10;
    cubic.on_ack(ack(now, kMss, time::ms(10), pn, round2_end));
  }
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, NoHystartIgnoresDelay) {
  CubicConfig cfg = config();
  cfg.hystart = false;
  Cubic cubic(cfg);
  std::uint64_t pn = 0;
  Time now = 0;
  for (int r = 0; r < 10; ++r) {
    const std::uint64_t round_end = pn + 100;
    for (int i = 0; i < 10; ++i) {
      now += time::ms(1);
      pn += 10;
      cubic.on_ack(ack(now, kMss, time::ms(10 + 5 * r), pn, round_end));
    }
    pn = round_end + 1;
  }
  EXPECT_TRUE(cubic.in_slow_start());
}

TEST(Cubic, SpuriousRollbackRestoresWindow) {
  CubicConfig cfg = config();
  cfg.spurious_loss_rollback = true;
  Cubic cubic(cfg);
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  const Bytes before = cubic.cwnd();
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  EXPECT_LT(cubic.cwnd(), before);
  // A packet sent before the backoff turns out to be spurious.
  cubic.on_spurious_loss({time::ms(35), 7, kMss, time::ms(26)});
  EXPECT_EQ(cubic.cwnd(), before);
}

TEST(Cubic, SpuriousRollbackOnlyOncePerEvent) {
  CubicConfig cfg = config();
  cfg.spurious_loss_rollback = true;
  Cubic cubic(cfg);
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  cubic.on_spurious_loss({time::ms(35), 7, kMss, time::ms(26)});
  const Bytes restored = cubic.cwnd();
  cubic.on_spurious_loss({time::ms(36), 8, kMss, time::ms(27)});
  EXPECT_EQ(cubic.cwnd(), restored);
}

TEST(Cubic, SpuriousIgnoredWhenDisabled) {
  Cubic cubic(config());
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  const Bytes reduced = cubic.cwnd();
  cubic.on_spurious_loss({time::ms(35), 7, kMss, time::ms(26)});
  EXPECT_EQ(cubic.cwnd(), reduced);
}

TEST(Cubic, SpuriousFromAfterBackoffDoesNotRollBack) {
  CubicConfig cfg = config();
  cfg.spurious_loss_rollback = true;
  Cubic cubic(cfg);
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  cubic.on_loss(loss(time::ms(30), time::ms(25)));
  const Bytes reduced = cubic.cwnd();
  // Packet sent after the backoff: not part of that congestion event.
  cubic.on_spurious_loss({time::ms(50), 9, kMss, time::ms(40)});
  EXPECT_EQ(cubic.cwnd(), reduced);
}

TEST(Cubic, PersistentCongestionCollapses) {
  Cubic cubic(config());
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  LossEvent ev = loss(time::ms(200), time::ms(190));
  ev.is_persistent_congestion = true;
  cubic.on_loss(ev);
  EXPECT_EQ(cubic.cwnd(), 2 * kMss);
  EXPECT_TRUE(cubic.in_slow_start());
}

} // namespace
} // namespace quicbench::cca
