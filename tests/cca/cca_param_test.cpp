// Parameterized sweeps over CCA configuration knobs: monotonicity and
// bound properties that must hold across the whole parameter range the
// variant registry uses.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "cca/bbr.h"
#include "cca/bbr2.h"
#include "cca/cubic.h"
#include "cca/reno.h"

namespace quicbench::cca {
namespace {

constexpr Bytes kMss = 1448;

AckEvent ack(Time now, Bytes bytes_acked, Time rtt = time::ms(10)) {
  AckEvent ev;
  ev.now = now;
  ev.bytes_acked = bytes_acked;
  ev.rtt = rtt;
  ev.smoothed_rtt = rtt;
  ev.min_rtt = rtt;
  return ev;
}

LossEvent loss(Time now, Time sent_time) {
  LossEvent ev;
  ev.now = now;
  ev.bytes_lost = kMss;
  ev.largest_lost_sent_time = sent_time;
  return ev;
}

// --- CUBIC beta sweep: higher beta => shallower backoff ---

class CubicBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(CubicBetaSweep, BackoffMatchesBeta) {
  CubicConfig cfg;
  cfg.mss = kMss;
  cfg.beta = GetParam();
  Cubic cubic(cfg);
  cubic.on_ack(ack(time::ms(1), 40 * kMss));
  const Bytes before = cubic.cwnd();
  cubic.on_loss(loss(time::ms(20), time::ms(15)));
  EXPECT_EQ(cubic.cwnd(),
            static_cast<Bytes>(static_cast<double>(before) * GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Betas, CubicBetaSweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.85));

// --- CUBIC emulated flows sweep (chromium-style) ---

class CubicFlowsSweep : public ::testing::TestWithParam<int> {};

TEST_P(CubicFlowsSweep, MoreFlowsMoreAggressive) {
  CubicConfig base;
  base.mss = kMss;
  CubicConfig multi = base;
  multi.emulated_flows = GetParam();
  Cubic one(base), n(multi);
  for (Cubic* c : {&one, &n}) {
    c->on_ack(ack(time::ms(1), 40 * kMss));
    c->on_loss(loss(time::ms(20), time::ms(15)));
  }
  EXPECT_GE(n.cwnd(), one.cwnd());
  // Growth after the backoff is at least as fast too.
  Time now = time::ms(30);
  for (int i = 0; i < 300; ++i) {
    now += time::ms(1);
    one.on_ack(ack(now, kMss));
    n.on_ack(ack(now, kMss));
  }
  EXPECT_GE(n.cwnd(), one.cwnd());
}

INSTANTIATE_TEST_SUITE_P(Flows, CubicFlowsSweep, ::testing::Values(2, 3, 4));

// --- BBR cwnd gain sweep: window scales with the gain ---

class BbrGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(BbrGainSweep, SteadyWindowProportionalToGain) {
  const double gain = GetParam();
  BbrConfig cfg;
  cfg.mss = kMss;
  cfg.cwnd_gain = gain;
  Bbr bbr(cfg);
  // Drive to steady ProbeBW at 20 Mbps / 10 ms.
  Time now = 0;
  std::uint64_t pn = 0;
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t round_end = pn + 10;
    for (int i = 0; i < 10; ++i) {
      AckEvent ev = ack(now += time::ms(1), 2 * kMss);
      ev.bytes_in_flight = bdp;
      ev.largest_newly_acked = ++pn;
      ev.largest_sent_pn = round_end + 10;
      ev.rate_valid = true;
      ev.delivery_rate = rate::mbps(20);
      bbr.on_ack(ev);
    }
  }
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              gain * static_cast<double>(bdp),
              0.25 * static_cast<double>(bdp))
      << "gain=" << gain;
}

INSTANTIATE_TEST_SUITE_P(Gains, BbrGainSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 4.0));

// --- BBRv2 beta sweep: short-term bound backoff matches beta ---

class Bbr2BetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(Bbr2BetaSweep, LossBoundMatchesBeta) {
  const double beta = GetParam();
  Bbr2Config cfg;
  cfg.mss = kMss;
  cfg.beta = beta;
  Bbr2 bbr(cfg);
  // One valid sample so the volume model has estimates, then a loss.
  AckEvent ev = ack(time::ms(1), 20 * kMss);
  ev.bytes_in_flight = 30 * kMss;
  ev.largest_newly_acked = 1;
  ev.largest_sent_pn = 20;
  ev.rate_valid = true;
  ev.delivery_rate = rate::mbps(20);
  bbr.on_ack(ev);
  const Bytes before = bbr.cwnd();
  bbr.on_loss(loss(time::ms(20), time::ms(15)));
  // inflight_lo = beta x cwnd (floored at min_cwnd), and cwnd is clamped
  // to it.
  const Bytes expect =
      std::max(static_cast<Bytes>(beta * static_cast<double>(before)),
               static_cast<Bytes>(cfg.min_cwnd_packets * kMss));
  EXPECT_EQ(bbr.inflight_lo(), expect);
  EXPECT_LE(bbr.cwnd(), expect);
}

INSTANTIATE_TEST_SUITE_P(Betas, Bbr2BetaSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9));

// --- BBRv2 cwnd gain sweep: steady window scales with the gain ---

class Bbr2GainSweep : public ::testing::TestWithParam<double> {};

TEST_P(Bbr2GainSweep, SteadyWindowProportionalToGain) {
  const double gain = GetParam();
  Bbr2Config cfg;
  cfg.mss = kMss;
  cfg.cwnd_gain = gain;
  Bbr2 bbr(cfg);
  Time now = 0;
  std::uint64_t pn = 0;
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t round_end = pn + 10;
    for (int i = 0; i < 10; ++i) {
      AckEvent ev = ack(now += time::ms(1), 2 * kMss);
      ev.bytes_in_flight = bdp;
      ev.largest_newly_acked = ++pn;
      ev.largest_sent_pn = round_end + 10;
      ev.rate_valid = true;
      ev.delivery_rate = rate::mbps(20);
      bbr.on_ack(ev);
    }
  }
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()),
              gain * static_cast<double>(bdp),
              0.25 * static_cast<double>(bdp))
      << "gain=" << gain;
}

INSTANTIATE_TEST_SUITE_P(Gains, Bbr2GainSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

// --- Reno beta sweep ---

class RenoBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(RenoBetaSweep, BackoffMatchesBeta) {
  RenoConfig cfg;
  cfg.mss = kMss;
  cfg.beta = GetParam();
  Reno reno(cfg);
  reno.on_ack(ack(time::ms(1), 40 * kMss));
  const Bytes before = reno.cwnd();
  reno.on_loss(loss(time::ms(20), time::ms(15)));
  EXPECT_EQ(reno.cwnd(),
            static_cast<Bytes>(static_cast<double>(before) * GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Betas, RenoBetaSweep,
                         ::testing::Values(0.5, 0.7, 0.8));

// --- Cross-CCA invariants ---

class AnyCcaConfig : public ::testing::TestWithParam<int> {};

TEST_P(AnyCcaConfig, WindowAlwaysPositiveUnderLossStorm) {
  std::unique_ptr<CongestionController> cca;
  switch (GetParam()) {
    case 0: cca = std::make_unique<Reno>(RenoConfig{}); break;
    case 1: cca = std::make_unique<Cubic>(CubicConfig{}); break;
    case 2: cca = std::make_unique<Bbr>(BbrConfig{}); break;
    default: cca = std::make_unique<Bbr2>(Bbr2Config{}); break;
  }
  Time now = time::ms(1);
  for (int i = 0; i < 200; ++i) {
    cca->on_ack(ack(now += time::ms(1), kMss));
    LossEvent ev = loss(now += time::ms(1), now - time::ms(1));
    if (i % 10 == 9) ev.is_persistent_congestion = true;
    cca->on_loss(ev);
    EXPECT_GT(cca->cwnd(), 0);
  }
}

TEST_P(AnyCcaConfig, SpuriousEventsNeverCrash) {
  std::unique_ptr<CongestionController> cca;
  switch (GetParam()) {
    case 0: cca = std::make_unique<Reno>(RenoConfig{}); break;
    case 1: {
      CubicConfig cfg;
      cfg.spurious_loss_rollback = true;
      cca = std::make_unique<Cubic>(cfg);
      break;
    }
    case 2: cca = std::make_unique<Bbr>(BbrConfig{}); break;
    default: cca = std::make_unique<Bbr2>(Bbr2Config{}); break;
  }
  // Spurious events with no preceding loss must be harmless.
  cca->on_spurious_loss({time::ms(5), 1, kMss, time::ms(1)});
  cca->on_ack(ack(time::ms(10), kMss));
  EXPECT_GT(cca->cwnd(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllCcas, AnyCcaConfig,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace quicbench::cca
