// Differential CCA suite: every registered implementation, across
// impairment seeds, must satisfy the shared property set in
// differential_harness.h. A seeded mutant (probe_rtt skipped, runaway
// pacer) must FAIL the harness — the negative control that proves the
// properties have teeth. Finally, randomized cross-CCA scenarios fuzz
// the whole population together with the runtime invariant checker
// live (violations throw at trial end).

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "differential_harness.h"
#include "harness/scenario.h"
#include "util/rng.h"

namespace quicbench::difftest {
namespace {

using stacks::Implementation;
using stacks::Registry;

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ' || c == '-' || c == '(' || c == ')' || c == '.') c = '_';
  }
  return s;
}

// --- Property suite over (implementation x impairment seed) ------------

class EveryImplProperties
    : public ::testing::TestWithParam<
          std::tuple<const Implementation*, std::size_t>> {};

TEST_P(EveryImplProperties, SatisfiesSharedInvariants) {
  const Implementation& impl = *std::get<0>(GetParam());
  const ImpairmentCase& c = impairment_cases()[std::get<1>(GetParam())];
  const DiffRun run = run_solo(impl, diff_config(c, time::sec(15)));
  ASSERT_GT(run.samples.size(), 50u) << impl.display << " under-sampled";
  EXPECT_TRUE(check_cwnd_bounds(impl, run));
  EXPECT_TRUE(check_pacing_tracks_delivery(impl, run));
  EXPECT_TRUE(check_recovery_exit(impl, run));
}

std::vector<std::tuple<const Implementation*, std::size_t>> property_grid() {
  std::vector<std::tuple<const Implementation*, std::size_t>> grid;
  for (const auto& impl : Registry::instance().all()) {
    for (std::size_t ci = 0; ci < impairment_cases().size(); ++ci) {
      grid.emplace_back(&impl, ci);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Population, EveryImplProperties, ::testing::ValuesIn(property_grid()),
    [](const ::testing::TestParamInfo<
        std::tuple<const Implementation*, std::size_t>>& info) {
      return sanitize(std::get<0>(info.param)->display) + "_" +
             impairment_cases()[std::get<1>(info.param)].name;
    });

// --- probe_rtt cadence: rate-based implementations, longer clean run ---

class RateBasedProbeRtt
    : public ::testing::TestWithParam<const Implementation*> {};

TEST_P(RateBasedProbeRtt, VisitsProbeRttPeriodically) {
  const Implementation& impl = *GetParam();
  const DiffRun run =
      run_solo(impl, diff_config(impairment_cases()[0], time::sec(30)));
  EXPECT_TRUE(check_probe_rtt(impl, run));
}

std::vector<const Implementation*> rate_based_impls() {
  std::vector<const Implementation*> out;
  for (const auto& impl : Registry::instance().all()) {
    if (is_rate_based(impl)) out.push_back(&impl);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Population, RateBasedProbeRtt, ::testing::ValuesIn(rate_based_impls()),
    [](const ::testing::TestParamInfo<const Implementation*>& info) {
      return sanitize(info.param->display);
    });

// --- spurious-loss replay: seeded impaired trials are deterministic ----

class EveryImplReplay
    : public ::testing::TestWithParam<const Implementation*> {};

TEST_P(EveryImplReplay, ImpairedReplayIsBitIdentical) {
  const Implementation& impl = *GetParam();
  // Reorder-heavy impairment: maximizes spurious-loss traffic, the
  // history-dependent path most likely to diverge on replay.
  harness::ExperimentConfig cfg =
      diff_config(impairment_cases()[1], time::sec(5));
  cfg.net.impairment.reorder_rate = 0.05;
  EXPECT_TRUE(check_replay_determinism(impl, cfg));
}

std::vector<const Implementation*> all_impls() {
  std::vector<const Implementation*> out;
  for (const auto& impl : Registry::instance().all()) out.push_back(&impl);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Population, EveryImplReplay, ::testing::ValuesIn(all_impls()),
    [](const ::testing::TestParamInfo<const Implementation*>& info) {
      return sanitize(info.param->display);
    });

// --- Negative controls: seeded mutants must fail the harness -----------

TEST(DifferentialMutant, ProbeRttSkippedIsCaught) {
  // Mutant: a "bbr2" whose state machine never reaches probe_rtt
  // (emulated by pushing the interval past the trial horizon). Judged
  // against the cadence the reference config claims, the periodicity
  // property must reject it — proof the harness detects this class of
  // implementation bug.
  const Implementation& ref = Registry::instance().reference(
      stacks::CcaType::kBbr2);
  Implementation mutant = ref;
  mutant.display = "tcp bbr2 (mutant: probe_rtt skipped)";
  mutant.bbr2.probe_rtt_interval = time::sec(1000);
  const DiffRun run =
      run_solo(mutant, diff_config(impairment_cases()[0], time::sec(30)));
  EXPECT_FALSE(
      check_probe_rtt(mutant, run, ref.bbr2.probe_rtt_interval));
  // The unmutated reference passes the identical check.
  const DiffRun ok =
      run_solo(ref, diff_config(impairment_cases()[0], time::sec(30)));
  EXPECT_TRUE(check_probe_rtt(ref, ok, ref.bbr2.probe_rtt_interval));
}

TEST(DifferentialMutant, RunawayPacerIsCaught) {
  // Mutant: a pacer scaled 10x past its delivery rate (a unit-slip bug).
  const Implementation& ref =
      Registry::instance().reference(stacks::CcaType::kBbr2);
  Implementation mutant = ref;
  mutant.display = "tcp bbr2 (mutant: runaway pacer)";
  mutant.bbr2.pacing_rate_scale = 10.0;
  const DiffRun run =
      run_solo(mutant, diff_config(impairment_cases()[0], time::sec(15)));
  EXPECT_FALSE(check_pacing_tracks_delivery(mutant, run));
}

// --- Randomized cross-CCA scenario fuzz --------------------------------

class CrossCcaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossCcaFuzz, InvariantCheckerStaysClean) {
  // 3-5 flows drawn across the whole population (every CcaType can land
  // in the mix), random starts and impairments. The runtime invariant
  // checkers attached to every flow throw at trial end on any ledger,
  // conservation or RTT-floor violation — completing the trial IS the
  // assertion.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 17);
  const auto& impls = Registry::instance().all();
  harness::ScenarioConfig cfg;
  cfg.duration = time::sec(6);
  cfg.trials = 1;
  cfg.seed = seed;
  if (rng.uniform() < 0.5) {
    cfg.net.impairment.loss_rate = rng.uniform(0.0, 0.02);
    cfg.net.impairment.reorder_rate = rng.uniform(0.0, 0.03);
    cfg.net.impairment.reorder_gap = 3;
    cfg.net.impairment.duplicate_rate = rng.uniform(0.0, 0.01);
    cfg.net.impairment.ack_loss_rate = rng.uniform(0.0, 0.01);
  }
  const int flows = 3 + static_cast<int>(rng.uniform_int(3));
  for (int i = 0; i < flows; ++i) {
    harness::FlowSpec spec;
    spec.impl = impls[rng.uniform_int(impls.size())];
    spec.role = i == 0 ? harness::FlowRole::kTest
                       : harness::FlowRole::kBackground;
    spec.start_at = static_cast<Time>(rng.uniform_int(time::sec(2)));
    cfg.flows.push_back(std::move(spec));
  }
  const harness::ScenarioTrialResult tr =
      harness::run_scenario_trial(cfg, 0);
  // Liveness floor on top of the invariants: the scenario moved data.
  Bytes delivered = 0;
  for (const auto& f : tr.flows) delivered += f.bytes_delivered;
  EXPECT_GT(delivered, 0) << "seed " << seed << " moved no data";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCcaFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace quicbench::difftest
