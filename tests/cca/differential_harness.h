#pragma once
// Differential CCA test harness: the shared property suite every
// registered (stack, CCA) implementation must satisfy, parameterized
// over impairment seeds. Adding a CCA to the population means
// "implement + satisfy this harness", not "implement + hope".
//
// Each property is a pure predicate over one observed solo trial (the
// implementation competing with itself on the paper-default dumbbell,
// flight-recorded at a fine interval):
//
//   cwnd_bounds          cwnd > 0 everywhere, bounded by the profile's
//                        flow-control cap (in-flight) and an absolute
//                        sanity ceiling
//   pacing_tracks_rate   the median pacing rate stays within the CCA
//                        gain envelope of the median delivery rate
//   probe_rtt            rate-based CCAs visit probe_rtt periodically
//                        (within interval + slack) and dwell there
//   recovery_exit        a loss backoff is not undone within its own
//                        recovery span (skipped for implementations
//                        that deliberately roll back, e.g. quiche)
//   replay_determinism   the same seeded impaired trial replayed twice
//                        produces bit-identical stats and cwnd series
//
// The negative control in differential_test.cpp feeds a seeded mutant
// (a bbr2 config that skips probe_rtt) through the same predicates and
// asserts the harness rejects it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.h"
#include "obs/flight.h"
#include "stacks/registry.h"

namespace quicbench::difftest {

// One impairment point of the (implementation x impairment) grid.
struct ImpairmentCase {
  const char* name;
  std::uint64_t seed;
  bool impaired;  // seeded loss + reordering + duplication + ACK loss
};

inline const std::vector<ImpairmentCase>& impairment_cases() {
  static const std::vector<ImpairmentCase> cases = {
      {"clean", 3, false},
      {"impaired_a", 11, true},
      {"impaired_b", 23, true},
  };
  return cases;
}

inline harness::ExperimentConfig diff_config(const ImpairmentCase& c,
                                             Time duration) {
  harness::ExperimentConfig cfg;  // paper-default dumbbell
  cfg.duration = duration;
  cfg.trials = 1;
  cfg.seed = c.seed;
  if (c.impaired) {
    netsim::ImpairmentConfig& imp = cfg.net.impairment;
    imp.loss_rate = 0.01;
    imp.reorder_rate = 0.02;
    imp.reorder_gap = 3;
    imp.duplicate_rate = 0.005;
    imp.ack_loss_rate = 0.01;
  }
  return cfg;
}

// One observed solo trial: results plus the fine-grained flight series.
struct DiffRun {
  harness::TrialResult trial;
  std::vector<obs::FlowSampler::Sample> samples;
  std::vector<std::string> phase_names;
};

inline DiffRun run_solo(const stacks::Implementation& impl,
                        const harness::ExperimentConfig& cfg) {
  obs::FlowSampler sampler(time::ms(25), /*capacity=*/65536);
  harness::TrialObservers obs;
  obs.flight[0] = &sampler;
  DiffRun run;
  run.trial = harness::run_trial(impl, impl, cfg, 0, obs);
  run.samples = sampler.samples();
  run.phase_names = sampler.phase_names();
  return run;
}

inline std::string_view phase_of(const DiffRun& run,
                                 const obs::FlowSampler::Sample& s) {
  if (s.phase < 0 ||
      static_cast<std::size_t>(s.phase) >= run.phase_names.size()) {
    return "";
  }
  return run.phase_names[static_cast<std::size_t>(s.phase)];
}

inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

// --- Property: cwnd positive and bounded -------------------------------

inline ::testing::AssertionResult check_cwnd_bounds(
    const stacks::Implementation& impl, const DiffRun& run) {
  // Absolute sanity ceiling: the dumbbell's BDP is ~25 KB; no sane
  // window on this path approaches 4 MiB.
  constexpr Bytes kCeiling = 4 * 1024 * 1024;
  const Bytes fc = impl.profile.sender.flow_control_window;
  const Bytes slack = impl.profile.sender.mss +
                      impl.profile.sender.header_overhead;
  for (const auto& s : run.samples) {
    if (s.cwnd <= 0) {
      return ::testing::AssertionFailure()
             << impl.display << ": cwnd " << s.cwnd << " <= 0 at t="
             << time::to_sec(s.t) << "s";
    }
    // Bound the EFFECTIVE window: flow-control-limited stacks (e.g.
    // xquic, neqo) let the raw cwnd counter drift upward while fc caps
    // what is actually sent — only min(cwnd, fc) governs the path.
    const Bytes effective = fc > 0 ? std::min(s.cwnd, fc) : s.cwnd;
    if (effective > kCeiling) {
      return ::testing::AssertionFailure()
             << impl.display << ": effective window " << effective
             << " exceeds the sanity ceiling at t=" << time::to_sec(s.t)
             << "s";
    }
    if (fc > 0 && s.bytes_in_flight > fc + slack) {
      return ::testing::AssertionFailure()
             << impl.display << ": in-flight " << s.bytes_in_flight
             << " exceeds the flow-control cap " << fc << " at t="
             << time::to_sec(s.t) << "s";
    }
  }
  return ::testing::AssertionSuccess();
}

// --- Property: pacing rate tracks delivery rate ------------------------

inline ::testing::AssertionResult check_pacing_tracks_delivery(
    const stacks::Implementation& impl, const DiffRun& run) {
  // Steady-state samples only (skip startup's intentional overshoot).
  std::vector<double> pacing, delivery;
  const Time cutoff = run.samples.empty() ? 0 : run.samples.back().t / 4;
  for (const auto& s : run.samples) {
    if (s.t < cutoff) continue;
    if (s.pacing_mbps >= 0) pacing.push_back(s.pacing_mbps);
    if (s.delivery_mbps >= 0) delivery.push_back(s.delivery_mbps);
  }
  if (pacing.empty()) {
    // Ack-clocked implementation (no pacing rate exposed): vacuous.
    return ::testing::AssertionSuccess();
  }
  if (delivery.size() < 8) {
    return ::testing::AssertionFailure()
           << impl.display << ": too few delivery samples ("
           << delivery.size() << ") to judge pacing";
  }
  const double p = median(pacing);
  const double d = median(delivery);
  // Gain envelope: the largest steady gain in the population is BBR's
  // startup 2.773 x a 1.2 stack scale; the smallest sustained gain is
  // ProbeRTT / drain throttling. Median-over-steady-state keeps the
  // bound tight enough to catch a runaway pacer while tolerating the
  // cycle's excursions.
  if (p < 0.4 * d || p > 3.6 * d) {
    return ::testing::AssertionFailure()
           << impl.display << ": median pacing " << p
           << " Mbps outside the gain envelope of median delivery " << d
           << " Mbps";
  }
  return ::testing::AssertionSuccess();
}

// --- Property: probe_rtt periodicity and residency ---------------------

inline bool is_rate_based(const stacks::Implementation& impl) {
  return impl.cca == stacks::CcaType::kBbr ||
         impl.cca == stacks::CcaType::kBbr2;
}

inline Time probe_rtt_interval_of(const stacks::Implementation& impl) {
  return impl.cca == stacks::CcaType::kBbr2 ? impl.bbr2.probe_rtt_interval
                                            : impl.bbr.probe_rtt_interval;
}

// `expected_interval` overrides the implementation's own configured
// interval (0 = use the config). The override exists for the negative
// control: a mutant that skips probe_rtt is judged against the cadence
// its algorithm claims, not whatever its broken state machine delivers.
inline ::testing::AssertionResult check_probe_rtt(
    const stacks::Implementation& impl, const DiffRun& run,
    Time expected_interval = 0) {
  if (!is_rate_based(impl)) return ::testing::AssertionSuccess();
  // Visit = maximal sample span whose phase is probe_rtt.
  std::vector<std::pair<Time, Time>> visits;  // [start, end]
  bool in_visit = false;
  for (const auto& s : run.samples) {
    const bool probing = phase_of(run, s) == "probe_rtt";
    if (probing && !in_visit) {
      visits.emplace_back(s.t, s.t);
      in_visit = true;
    } else if (probing) {
      visits.back().second = s.t;
    } else {
      in_visit = false;
    }
  }
  const Time interval = expected_interval > 0 ? expected_interval
                                              : probe_rtt_interval_of(impl);
  const Time duration = run.samples.empty() ? 0 : run.samples.back().t;
  // Entry slack: a min_rtt refresh just after a visit restarts the
  // expiry clock, so consecutive visits can sit one refresh past the
  // interval apart, plus the dwell + drain of the visit itself.
  const Time slack = time::sec(8);
  if (duration < interval + slack) return ::testing::AssertionSuccess();
  if (visits.empty()) {
    return ::testing::AssertionFailure()
           << impl.display << ": no probe_rtt visit in "
           << time::to_sec(duration) << "s (interval "
           << time::to_sec(interval) << "s)";
  }
  // Periodicity: no gap between consecutive visit starts (or from trial
  // start to the first visit) may exceed interval + slack.
  Time prev = 0;
  for (const auto& v : visits) {
    if (v.first - prev > interval + slack) {
      return ::testing::AssertionFailure()
             << impl.display << ": " << time::to_sec(v.first - prev)
             << "s between probe_rtt visits exceeds interval + slack";
    }
    prev = v.first;
  }
  if (duration - prev > interval + slack) {
    return ::testing::AssertionFailure()
           << impl.display << ": last " << time::to_sec(duration - prev)
           << "s of the trial have no probe_rtt visit";
  }
  // Residency: at least one visit must span the configured dwell (the
  // 25 ms sampling grid resolves the 200 ms probe_rtt_duration).
  const Time dwell = impl.cca == stacks::CcaType::kBbr2
                         ? impl.bbr2.probe_rtt_duration
                         : impl.bbr.probe_rtt_duration;
  Time longest = 0;
  for (const auto& v : visits) longest = std::max(longest, v.second - v.first);
  if (longest + time::ms(50) < dwell) {
    return ::testing::AssertionFailure()
           << impl.display << ": longest probe_rtt visit "
           << time::to_sec(longest) << "s never covers the "
           << time::to_sec(dwell) << "s dwell";
  }
  return ::testing::AssertionSuccess();
}

// --- Property: recovery exits do not undo the backoff ------------------

inline ::testing::AssertionResult check_recovery_exit(
    const stacks::Implementation& impl, const DiffRun& run) {
  if (impl.cubic.spurious_loss_rollback) {
    // quiche CUBIC rolls its backoffs back by design (the Fig 15
    // deviation); the property intentionally does not apply.
    return ::testing::AssertionSuccess();
  }
  const Bytes slack = impl.profile.sender.mss * 2;
  for (std::size_t i = 0; i < run.samples.size();) {
    if (phase_of(run, run.samples[i]) != "recovery" || i == 0) {
      ++i;
      continue;
    }
    // Monotonicity within the span: cwnd must not climb back above the
    // (already backed-off) level it entered recovery with. A pre-span
    // sample is unusable as the baseline — during slow start the window
    // grows a burst between samples, so the backoff target is computed
    // from a larger cwnd than the last sample recorded.
    const Bytes entry = run.samples[i].cwnd;
    std::size_t j = i;
    while (j < run.samples.size() &&
           phase_of(run, run.samples[j]) == "recovery") {
      ++j;
    }
    const Bytes exit_cwnd = run.samples[j - 1].cwnd;
    if (exit_cwnd > entry + slack) {
      return ::testing::AssertionFailure()
             << impl.display << ": recovery span ending at t="
             << time::to_sec(run.samples[j - 1].t) << "s exits with cwnd "
             << exit_cwnd << " above its entry level " << entry;
    }
    i = j;
  }
  return ::testing::AssertionSuccess();
}

// --- Property: seeded impaired replay is bit-identical -----------------

inline ::testing::AssertionResult check_replay_determinism(
    const stacks::Implementation& impl,
    const harness::ExperimentConfig& cfg) {
  const DiffRun a = run_solo(impl, cfg);
  const DiffRun b = run_solo(impl, cfg);
  const auto& sa = a.trial.flow[0].sender_stats;
  const auto& sb = b.trial.flow[0].sender_stats;
  if (sa.packets_sent != sb.packets_sent ||
      sa.retransmissions != sb.retransmissions ||
      sa.losses_detected != sb.losses_detected ||
      sa.spurious_losses != sb.spurious_losses ||
      sa.ptos_fired != sb.ptos_fired ||
      a.trial.sim_events != b.trial.sim_events ||
      a.trial.flow[0].avg_throughput != b.trial.flow[0].avg_throughput) {
    return ::testing::AssertionFailure()
           << impl.display << ": replay diverged (stats/events)";
  }
  if (a.samples.size() != b.samples.size()) {
    return ::testing::AssertionFailure()
           << impl.display << ": replay diverged (sample counts "
           << a.samples.size() << " vs " << b.samples.size() << ")";
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (a.samples[i].cwnd != b.samples[i].cwnd ||
        a.samples[i].t != b.samples[i].t ||
        a.samples[i].bytes_in_flight != b.samples[i].bytes_in_flight) {
      return ::testing::AssertionFailure()
             << impl.display << ": replay diverged at sample " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

} // namespace quicbench::difftest
