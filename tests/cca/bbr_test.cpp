#include <gtest/gtest.h>

#include "cca/bbr.h"

namespace quicbench::cca {
namespace {

constexpr Bytes kMss = 1448;

BbrConfig config() {
  BbrConfig cfg;
  cfg.mss = kMss;
  cfg.initial_cwnd_packets = 10;
  return cfg;
}

// Drives a BBR instance with a synthetic steady link: delivery rate
// `rate_bps`, round-trip `rtt`. Returns the simulated clock.
class BbrDriver {
 public:
  explicit BbrDriver(Bbr& bbr) : bbr_(bbr) {}

  void run_rounds(int rounds, Rate rate_bps, Time rtt,
                  Bytes in_flight = 0) {
    for (int r = 0; r < rounds; ++r) {
      // ~10 acks per round. Keep largest_sent one round ahead of the acks
      // (as a real transport with packets in flight does) so BBR counts
      // exactly one round per driver round.
      const std::uint64_t round_end = pn_ + 10;
      for (int i = 0; i < 10; ++i) {
        AckEvent ev;
        now_ += rtt / 10;
        ev.now = now_;
        ev.bytes_acked = 2 * kMss;
        ev.bytes_in_flight =
            in_flight > 0 ? in_flight
                          : static_cast<Bytes>(rate_bps / 8.0 *
                                               time::to_sec(rtt));
        ev.rtt = rtt;
        ev.smoothed_rtt = rtt;
        ev.min_rtt = rtt;
        ev.largest_newly_acked = ++pn_;
        ev.largest_sent_pn = round_end + 10;
        ev.rate_valid = true;
        ev.delivery_rate = rate_bps;
        bbr_.on_ack(ev);
      }
    }
  }

  Time now() const { return now_; }

 private:
  Bbr& bbr_;
  Time now_ = 0;
  std::uint64_t pn_ = 0;
};

TEST(Bbr, StartsInStartup) {
  Bbr bbr(config());
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_TRUE(bbr.in_slow_start());
  EXPECT_FALSE(bbr.pacing_rate().has_value());  // no estimates yet
}

TEST(Bbr, TracksBottleneckBandwidth) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(5, rate::mbps(20), time::ms(10));
  EXPECT_NEAR(rate::to_mbps(bbr.btl_bw()), 20.0, 0.1);
  EXPECT_EQ(bbr.rt_prop(), time::ms(10));
}

TEST(Bbr, ExitsStartupWhenBandwidthPlateaus) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  // Growing bandwidth keeps it in startup.
  d.run_rounds(2, rate::mbps(5), time::ms(10));
  d.run_rounds(2, rate::mbps(10), time::ms(10));
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  // Plateau for >= 3 rounds: full pipe, drain, then probe.
  d.run_rounds(6, rate::mbps(20), time::ms(10));
  EXPECT_TRUE(bbr.filled_pipe());
  EXPECT_NE(bbr.mode(), Bbr::Mode::kStartup);
}

TEST(Bbr, ReachesProbeBwAndPacesAtEstimate) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(12, rate::mbps(20), time::ms(10),
               /*in_flight=*/bdp_bytes(rate::mbps(20), time::ms(10)) / 2);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  ASSERT_TRUE(bbr.pacing_rate().has_value());
  // Pacing rate = gain x btlbw with gain in [0.75, 1.25].
  const double mbps = rate::to_mbps(*bbr.pacing_rate());
  EXPECT_GE(mbps, 0.74 * 20);
  EXPECT_LE(mbps, 1.26 * 20);
}

TEST(Bbr, CwndIsGainTimesBdp) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(30, rate::mbps(20), time::ms(10),
               bdp_bytes(rate::mbps(20), time::ms(10)));
  const Bytes bdp = bdp_bytes(rate::mbps(20), time::ms(10));
  EXPECT_NEAR(static_cast<double>(bbr.cwnd()), 2.0 * static_cast<double>(bdp),
              static_cast<double>(bdp) * 0.25);
}

TEST(Bbr, CwndGainKnobScalesWindow) {
  BbrConfig big = config();
  big.cwnd_gain = 2.5;
  Bbr def(config()), mod(big);
  BbrDriver d1(def), d2(mod);
  d1.run_rounds(30, rate::mbps(20), time::ms(10),
                bdp_bytes(rate::mbps(20), time::ms(10)));
  d2.run_rounds(30, rate::mbps(20), time::ms(10),
                bdp_bytes(rate::mbps(20), time::ms(10)));
  EXPECT_GT(mod.cwnd(), def.cwnd());
  EXPECT_NEAR(static_cast<double>(mod.cwnd()) / static_cast<double>(def.cwnd()),
              2.5 / 2.0, 0.15);
}

TEST(Bbr, PacingRateScaleMultiplier) {
  BbrConfig fast = config();
  fast.pacing_rate_scale = 1.2;
  Bbr def(config()), mod(fast);
  BbrDriver d1(def), d2(mod);
  d1.run_rounds(30, rate::mbps(20), time::ms(10));
  d2.run_rounds(30, rate::mbps(20), time::ms(10));
  ASSERT_TRUE(def.pacing_rate().has_value());
  ASSERT_TRUE(mod.pacing_rate().has_value());
  EXPECT_NEAR(*mod.pacing_rate() / *def.pacing_rate(), 1.2, 1e-9);
}

TEST(Bbr, ProbeRttAfterMinRttExpiry) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(12, rate::mbps(20), time::ms(10));
  ASSERT_TRUE(bbr.filled_pipe());
  // Keep the measured RTT above the initial min for > 10 s.
  bool saw_probe_rtt = false;
  for (int i = 0; i < 1200 && !saw_probe_rtt; ++i) {
    d.run_rounds(1, rate::mbps(20), time::ms(12));
    if (bbr.mode() == Bbr::Mode::kProbeRtt) saw_probe_rtt = true;
  }
  EXPECT_TRUE(saw_probe_rtt);
  EXPECT_EQ(bbr.cwnd(), 4 * kMss);  // ProbeRTT floor
}

TEST(Bbr, ProbeRttExitsBackToProbeBw) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(12, rate::mbps(20), time::ms(10));
  // Force ProbeRTT.
  while (bbr.mode() != Bbr::Mode::kProbeRtt) {
    d.run_rounds(1, rate::mbps(20), time::ms(12));
  }
  // Drain in-flight below the floor and run past the 200 ms dwell.
  for (int i = 0; i < 100 && bbr.mode() == Bbr::Mode::kProbeRtt; ++i) {
    d.run_rounds(1, rate::mbps(20), time::ms(12), /*in_flight=*/2 * kMss);
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, BandwidthFilterExpiresOldSamples) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(5, rate::mbps(50), time::ms(10));
  EXPECT_NEAR(rate::to_mbps(bbr.btl_bw()), 50.0, 1.0);
  // Bandwidth halves; after >10 rounds the old max must expire.
  d.run_rounds(15, rate::mbps(25), time::ms(10));
  EXPECT_NEAR(rate::to_mbps(bbr.btl_bw()), 25.0, 1.0);
}

TEST(Bbr, LossAgnosticWindow) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(30, rate::mbps(20), time::ms(10),
               bdp_bytes(rate::mbps(20), time::ms(10)));
  const Bytes before = bbr.cwnd();
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = 10 * kMss;
  ev.largest_lost_sent_time = d.now() - time::ms(5);
  bbr.on_loss(ev);
  EXPECT_EQ(bbr.cwnd(), before);  // BBRv1 ignores ordinary loss
}

TEST(Bbr, PersistentCongestionCollapses) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(30, rate::mbps(20), time::ms(10));
  LossEvent ev;
  ev.now = d.now();
  ev.bytes_lost = 10 * kMss;
  ev.is_persistent_congestion = true;
  bbr.on_loss(ev);
  EXPECT_EQ(bbr.cwnd(), 4 * kMss);
}

TEST(Bbr, ProbeBwCyclesThroughGains) {
  Bbr bbr(config());
  BbrDriver d(bbr);
  d.run_rounds(12, rate::mbps(20), time::ms(10),
               bdp_bytes(rate::mbps(20), time::ms(10)));
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  std::set<int> phases;
  for (int i = 0; i < 40; ++i) {
    d.run_rounds(1, rate::mbps(20), time::ms(10),
                 bdp_bytes(rate::mbps(20), time::ms(10)) * 5 / 4);
    phases.insert(bbr.probe_bw_phase());
  }
  EXPECT_GE(phases.size(), 4u);  // cycles through multiple phases
}

} // namespace
} // namespace quicbench::cca
