#include <gtest/gtest.h>

#include "cca/reno.h"

namespace quicbench::cca {
namespace {

constexpr Bytes kMss = 1448;

RenoConfig config() {
  RenoConfig cfg;
  cfg.mss = kMss;
  cfg.initial_cwnd_packets = 10;
  return cfg;
}

AckEvent ack(Time now, Bytes bytes_acked, Bytes in_flight = 0) {
  AckEvent ev;
  ev.now = now;
  ev.bytes_acked = bytes_acked;
  ev.bytes_in_flight = in_flight;
  ev.rtt = time::ms(10);
  ev.smoothed_rtt = time::ms(10);
  return ev;
}

LossEvent loss(Time now, Time sent_time, Bytes bytes = kMss) {
  LossEvent ev;
  ev.now = now;
  ev.bytes_lost = bytes;
  ev.largest_lost_sent_time = sent_time;
  return ev;
}

TEST(Reno, InitialWindow) {
  Reno reno(config());
  EXPECT_EQ(reno.cwnd(), 10 * kMss);
  EXPECT_TRUE(reno.in_slow_start());
}

TEST(Reno, SlowStartGrowsByBytesAcked) {
  Reno reno(config());
  const Bytes before = reno.cwnd();
  reno.on_ack(ack(time::ms(1), 3 * kMss));
  EXPECT_EQ(reno.cwnd(), before + 3 * kMss);
}

TEST(Reno, LossHalvesWindow) {
  Reno reno(config());
  reno.on_ack(ack(time::ms(1), 10 * kMss));  // cwnd = 20 MSS
  const Bytes before = reno.cwnd();
  reno.on_loss(loss(time::ms(20), time::ms(15)));
  EXPECT_EQ(reno.cwnd(), before / 2);
  EXPECT_FALSE(reno.in_slow_start());
}

TEST(Reno, OneReductionPerCongestionEvent) {
  Reno reno(config());
  reno.on_ack(ack(time::ms(1), 10 * kMss));
  reno.on_loss(loss(time::ms(20), time::ms(15)));
  const Bytes after_first = reno.cwnd();
  // Second loss from a packet sent before the recovery started: ignored.
  reno.on_loss(loss(time::ms(21), time::ms(16)));
  EXPECT_EQ(reno.cwnd(), after_first);
  // Loss of a packet sent after recovery start: new congestion event.
  reno.on_loss(loss(time::ms(40), time::ms(30)));
  EXPECT_EQ(reno.cwnd(), after_first / 2);
}

TEST(Reno, CongestionAvoidanceAddsOneMssPerWindow) {
  Reno reno(config());
  reno.on_loss(loss(time::ms(5), time::ms(1)));  // enter CA
  EXPECT_FALSE(reno.in_slow_start());
  const Bytes cwnd0 = reno.cwnd();
  // Ack exactly one full window worth of bytes.
  Bytes acked = 0;
  while (acked < cwnd0) {
    reno.on_ack(ack(time::ms(10), kMss));
    acked += kMss;
  }
  EXPECT_NEAR(static_cast<double>(reno.cwnd()),
              static_cast<double>(cwnd0 + kMss),
              static_cast<double>(kMss) / 2);
}

TEST(Reno, AiScaleSpeedsGrowth) {
  RenoConfig fast_cfg = config();
  fast_cfg.ai_scale = 2.0;
  Reno slow(config()), fast(fast_cfg);
  slow.on_loss(loss(time::ms(5), time::ms(1)));
  fast.on_loss(loss(time::ms(5), time::ms(1)));
  for (int i = 0; i < 100; ++i) {
    slow.on_ack(ack(time::ms(10 + i), kMss));
    fast.on_ack(ack(time::ms(10 + i), kMss));
  }
  EXPECT_GT(fast.cwnd(), slow.cwnd());
}

TEST(Reno, PersistentCongestionCollapsesToMin) {
  Reno reno(config());
  reno.on_ack(ack(time::ms(1), 20 * kMss));
  LossEvent ev = loss(time::ms(100), time::ms(90));
  ev.is_persistent_congestion = true;
  reno.on_loss(ev);
  EXPECT_EQ(reno.cwnd(), 2 * kMss);
}

TEST(Reno, NeverBelowMinWindow) {
  Reno reno(config());
  for (int i = 0; i < 20; ++i) {
    reno.on_loss(loss(time::ms(10 * i + 10), time::ms(10 * i + 9)));
  }
  EXPECT_GE(reno.cwnd(), 2 * kMss);
}

TEST(Reno, SlowStartExitAtSsthresh) {
  Reno reno(config());
  reno.on_ack(ack(time::ms(1), 10 * kMss));
  reno.on_loss(loss(time::ms(20), time::ms(15)));  // ssthresh = cwnd
  const Bytes ssthresh = reno.ssthresh();
  EXPECT_EQ(reno.cwnd(), ssthresh);
  EXPECT_FALSE(reno.in_slow_start());
}

TEST(Reno, Name) {
  Reno reno(config());
  EXPECT_EQ(reno.name(), "reno");
  EXPECT_FALSE(reno.pacing_rate().has_value());
}

} // namespace
} // namespace quicbench::cca
