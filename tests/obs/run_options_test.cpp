#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/invariants.h"
#include "obs/run_options.h"

namespace quicbench::obs {
namespace {

// Save/restore one environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_ = false;
  std::string old_;
};

TEST(RunOptions, DefaultsWithEmptyEnvironment) {
  ScopedEnv e1("QB_INVARIANTS", nullptr);
  ScopedEnv e2("QB_ATTRIB", nullptr);
  ScopedEnv e3("QB_FLIGHT_MS", nullptr);
  ScopedEnv e4("QB_QLOG_DIR", nullptr);
  ScopedEnv e5("QB_PROFILE", nullptr);
  const RunOptions o = RunOptions::from_env();
  EXPECT_TRUE(o.invariants);
  EXPECT_TRUE(o.attrib);
  EXPECT_EQ(o.flight_interval_ms, 100.0);
  EXPECT_EQ(o.qlog_dir, "");
  EXPECT_FALSE(o.profile);
}

TEST(RunOptions, EnvOverridesParse) {
  ScopedEnv e1("QB_INVARIANTS", "0");
  ScopedEnv e2("QB_ATTRIB", "0");
  ScopedEnv e3("QB_FLIGHT_MS", "250.5");
  ScopedEnv e4("QB_QLOG_DIR", "/tmp/qb_ro_qlog");
  ScopedEnv e5("QB_PROFILE", "1");
  const RunOptions o = RunOptions::from_env();
  EXPECT_FALSE(o.invariants);
  EXPECT_FALSE(o.attrib);
  EXPECT_EQ(o.flight_interval_ms, 250.5);
  EXPECT_EQ(o.qlog_dir, "/tmp/qb_ro_qlog");
  EXPECT_TRUE(o.profile);
}

TEST(RunOptions, NonPositiveFlightIntervalDisables) {
  ScopedEnv e("QB_FLIGHT_MS", "0");
  EXPECT_LE(RunOptions::from_env().flight_interval_ms, 0.0);
  ScopedEnv e2("QB_FLIGHT_MS", "-5");
  EXPECT_LE(RunOptions::from_env().flight_interval_ms, 0.0);
}

TEST(RunOptions, SetCurrentRoutesTheInvariantSwitch) {
  // invariants_enabled() must follow the installed options dynamically —
  // this is the switchboard benches use instead of setenv().
  const RunOptions saved = RunOptions::current();
  RunOptions off = saved;
  off.invariants = false;
  RunOptions::set_current(off);
  EXPECT_FALSE(invariants_enabled());
  RunOptions on = saved;
  on.invariants = true;
  RunOptions::set_current(on);
  EXPECT_TRUE(invariants_enabled());
  RunOptions::set_current(saved);
}

} // namespace
} // namespace quicbench::obs
