#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace quicbench::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6);
  c.add(-2);
  EXPECT_EQ(c.value(), 4);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, TracksExtremes) {
  Gauge g;
  EXPECT_FALSE(g.seen());
  g.set(10.0);
  g.set(3.0);
  g.set(7.0);
  EXPECT_TRUE(g.seen());
  EXPECT_EQ(g.value(), 7.0);
  EXPECT_EQ(g.min(), 3.0);
  EXPECT_EQ(g.max(), 10.0);
}

TEST(Histogram, Log2Buckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.observe(0.5);   // bucket 0: [0, 1)
  h.observe(1.5);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(3.9);   // bucket 2
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 8.9);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 3.9);
  ASSERT_GE(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 2);
}

TEST(Histogram, BucketEdgesAndOverflowClamp) {
  Histogram h;
  h.observe(0.0);     // bucket 0: everything below 1
  h.observe(0.999);   // still bucket 0
  h.observe(1.0);     // exactly 1 -> bucket 1: [1, 2)
  h.observe(4.0);     // power of two lands at the bottom of [4, 8)
  const double two62 = 4611686018427387904.0;  // 2^62 -> bucket 63
  h.observe(two62);
  h.observe(1e308);   // far past the top bucket -> clamped to 63
  ASSERT_EQ(h.buckets().size(),
            static_cast<std::size_t>(Histogram::kBuckets));
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[3], 1);   // 4.0: ilogb = 2, bucket 3 = [4, 8)
  EXPECT_EQ(h.buckets()[63], 2);  // 2^62 and the overflow clamp
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1e308);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.enabled());
  Counter& a = reg.counter("x.drops");
  a.add(3);
  // Creating more instruments must not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  Counter& b = reg.counter("x.drops");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(MetricsRegistry, NoopRegistryDiscardsEverything) {
  MetricsRegistry& noop = MetricsRegistry::noop();
  EXPECT_FALSE(noop.enabled());
  noop.counter("a").add(42);
  noop.gauge("b").set(1.0);
  noop.histogram("c").observe(2.0);
  EXPECT_EQ(noop.size(), 0u);
}

TEST(MetricsRegistry, JsonIsParseableAndDeterministic) {
  const auto populate = [](MetricsRegistry& reg) {
    reg.counter("z.last").add(9);
    reg.counter("a.first").add(1);
    reg.gauge("queue").set(123.0);
    reg.histogram("rtt_ms").observe(10.0);
    reg.histogram("rtt_ms").observe(12.0);
  };
  MetricsRegistry r1, r2;
  populate(r1);
  populate(r2);
  const std::string s1 = r1.to_json_string();
  // Identical population order-independently serialises identically
  // (std::map keeps keys name-sorted).
  EXPECT_EQ(s1, r2.to_json_string());

  std::string err;
  const auto doc = json_parse(s1, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* first = counters->find("a.first");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->number, 1.0);
  const JsonValue* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* rtt = hists->find("rtt_ms");
  ASSERT_NE(rtt, nullptr);
  ASSERT_NE(rtt->find("count"), nullptr);
  EXPECT_EQ(rtt->find("count")->number, 2.0);
}

} // namespace
} // namespace quicbench::obs
