#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/profiler.h"
#include "util/json.h"

namespace quicbench::obs {
namespace {

TEST(TraceProfiler, MonotonicClock) {
  TraceProfiler p("clock");
  const auto a = p.now_us();
  const auto b = p.now_us();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(TraceProfiler, JsonParsesAndContainsSpans) {
  TraceProfiler p("my sweep");
  p.record_complete("trial A #0", "trial", 1, 100, 2500);
  p.record_complete("cache probe", "cache", 0, 0, 50);
  EXPECT_EQ(p.span_count(), 2u);

  std::string err;
  const auto doc = json_parse(p.to_json_string(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata record naming the process plus one "X" record per span.
  ASSERT_EQ(events->array.size(), 3u);
  EXPECT_EQ(events->array[0].find("ph")->string, "M");
  EXPECT_EQ(events->array[0].find("name")->string, "process_name");

  const JsonValue& span = events->array[1];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_EQ(span.find("name")->string, "trial A #0");
  EXPECT_EQ(span.find("cat")->string, "trial");
  EXPECT_EQ(span.find("tid")->number, 1.0);
  EXPECT_EQ(span.find("ts")->number, 100.0);
  EXPECT_EQ(span.find("dur")->number, 2500.0);
}

TEST(TraceProfiler, EscapesSpanNames) {
  TraceProfiler p("quo\"te");
  p.record_complete("a\nb", "c\\d", 1, 0, 1);
  std::string err;
  const auto doc = json_parse(p.to_json_string(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array[1].find("name")->string, "a\nb");
  EXPECT_EQ(events->array[1].find("cat")->string, "c\\d");
}

TEST(TraceProfiler, WriteFileRoundTripAndBadPath) {
  TraceProfiler p("file");
  p.record_complete("span", "t", 1, 0, 10);
  const std::string path = ::testing::TempDir() + "/qb_profile_test.json";
  ASSERT_TRUE(p.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());

  std::string err;
  EXPECT_FALSE(p.write_file("/nonexistent-dir-xyz/p.json", &err));
  EXPECT_NE(err.find("/nonexistent-dir-xyz/p.json"), std::string::npos);
}

} // namespace
} // namespace quicbench::obs
