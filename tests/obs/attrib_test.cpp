#include <gtest/gtest.h>

#include <cstdint>

#include "obs/attrib.h"
#include "obs/run_options.h"

namespace quicbench::obs::attrib {
namespace {

// A little measurable work so every timed scope accumulates nonzero
// cycles even on coarse fallback clocks.
std::uint64_t spin() {
  volatile std::uint64_t acc = 0;
  for (int i = 0; i < 20000; ++i) {
    acc = acc + static_cast<std::uint64_t>(i);
  }
  return acc;
}

// Each test drives ScopeTimer directly (the machinery compiles in every
// build; only the QB_ATTRIB_SCOPE macro sites are compile-gated), with
// the runtime gate forced on and the thread table reset around it.
class AttribTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = RunOptions::current();
    RunOptions on = saved_;
    on.attrib = true;
    RunOptions::set_current(on);
    reset_thread();
    ASSERT_TRUE(enabled());
  }
  void TearDown() override {
    RunOptions::set_current(saved_);
    reset_thread();
  }
  RunOptions saved_;
};

TEST_F(AttribTest, ScopeNamesRoundTrip) {
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    const Scope s = static_cast<Scope>(i);
    EXPECT_FALSE(scope_name(s).empty());
    EXPECT_EQ(scope_from_name(scope_name(s)), s);
  }
  EXPECT_EQ(scope_from_name("no.such.scope"), Scope::kCount);
  EXPECT_EQ(scope_name(Scope::kTrial), "trial");
  EXPECT_EQ(scope_name(Scope::kCcaOnAck), "cca.on_ack");
}

TEST_F(AttribTest, NestedScopesPartitionParentTime) {
  {
    ScopeTimer root(Scope::kTrial);
    {
      ScopeTimer ack(Scope::kSenderAck);
      spin();
    }
    {
      ScopeTimer cca(Scope::kCcaOnAck);
      spin();
    }
    spin();
  }
  const Report r = thread_report();
  EXPECT_EQ(r.row(Scope::kTrial).calls, 1u);
  EXPECT_EQ(r.row(Scope::kSenderAck).calls, 1u);
  EXPECT_EQ(r.row(Scope::kCcaOnAck).calls, 1u);
  EXPECT_GT(r.total_cycles(), 0u);
  // Each child's inclusive time lands, exactly, in the parent's child
  // total: exclusive(root) + sum(children inclusive) == inclusive(root).
  EXPECT_EQ(r.row(Scope::kTrial).child_cycles,
            r.row(Scope::kSenderAck).cycles + r.row(Scope::kCcaOnAck).cycles);
  EXPECT_EQ(r.row(Scope::kTrial).exclusive_cycles() +
                r.row(Scope::kTrial).child_cycles,
            r.row(Scope::kTrial).cycles);
  // Root did real work of its own (the trailing spin), so coverage is a
  // proper fraction.
  EXPECT_GT(r.coverage(), 0.0);
  EXPECT_LE(r.coverage(), 1.0);
  EXPECT_FALSE(r.empty());
}

TEST_F(AttribTest, SelfNestingStaysConsistent) {
  // Recursive scopes (e.g. compaction called from inside the ACK pass
  // that is itself re-entered) double-book inclusive cycles but keep
  // exclusive time correct: the inner activation's dt lands in the
  // outer's child_cycles.
  {
    ScopeTimer outer(Scope::kSenderAck);
    spin();
    {
      ScopeTimer inner(Scope::kSenderAck);
      spin();
    }
    spin();
  }
  const Report r = thread_report();
  const Report::Row& row = r.row(Scope::kSenderAck);
  EXPECT_EQ(row.calls, 2u);
  EXPECT_GE(row.cycles, row.child_cycles);
  EXPECT_GT(row.exclusive_cycles(), 0u);
}

TEST_F(AttribTest, RuntimeGateOffMakesScopesFree) {
  RunOptions off = RunOptions::current();
  off.attrib = false;
  RunOptions::set_current(off);
  reset_thread();
  EXPECT_FALSE(enabled());
  {
    ScopeTimer root(Scope::kTrial);
    ScopeTimer ack(Scope::kSenderAck);
    spin();
  }
  EXPECT_TRUE(thread_report().empty());
}

TEST_F(AttribTest, ResetThreadZeroesAccumulators) {
  {
    ScopeTimer root(Scope::kTrial);
    spin();
  }
  EXPECT_FALSE(thread_report().empty());
  reset_thread();
  EXPECT_TRUE(thread_report().empty());
}

TEST(AttribReport, SumAndDeltaArithmetic) {
  Report a, b;
  a.rows[0] = {10, 1000, 400, };
  a.rows[5] = {3, 300, 0};
  b.rows[0] = {4, 250, 100};

  Report sum = a;
  sum += b;
  EXPECT_EQ(sum.rows[0].calls, 14u);
  EXPECT_EQ(sum.rows[0].cycles, 1250u);
  EXPECT_EQ(sum.rows[0].child_cycles, 500u);
  EXPECT_EQ(sum.rows[5].calls, 3u);

  const Report delta = sum - a;
  EXPECT_EQ(delta.rows[0].calls, b.rows[0].calls);
  EXPECT_EQ(delta.rows[0].cycles, b.rows[0].cycles);
  EXPECT_EQ(delta.rows[5].calls, 0u);

  // Counter regressions (which cannot happen within one thread) saturate
  // at zero instead of wrapping.
  const Report neg = a - sum;
  EXPECT_EQ(neg.rows[0].calls, 0u);
  EXPECT_EQ(neg.rows[0].cycles, 0u);
}

TEST(AttribReport, ExclusiveCyclesSaturate) {
  Report::Row r{1, 100, 150};
  EXPECT_EQ(r.exclusive_cycles(), 0u);
}

TEST(AttribBuild, CompileGateIsConsistent) {
  // compiled_in() reflects the CMake QB_ATTRIB option; either way the
  // timer kind is a known source.
  const std::string_view kind = timer_kind();
  EXPECT_TRUE(kind == "rdtsc" || kind == "steady_clock");
}

} // namespace
} // namespace quicbench::obs::attrib
