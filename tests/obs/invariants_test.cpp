// Unit tests for the runtime invariant checker, feeding the hooks by
// hand: a legal event stream passes every check, each illegal transition
// or accounting mismatch is flagged, and throw_if_violated() reports
// them as std::logic_error. (Integration coverage — the checker wired
// into real trials — comes free with every harness test.)

#include <gtest/gtest.h>

#include "obs/invariants.h"
#include "transport/sender.h"

namespace quicbench::obs {
namespace {

using transport::SenderStats;

// A legal three-packet story: 0 acked, 1 lost then retransmitted as 2,
// then 1's ack arrives late (spurious). Flight drains to zero.
void feed_clean_story(InvariantChecker& c) {
  c.on_packet_sent(time::ms(1), 0, 1500, false, 1500, 15000);
  c.on_packet_sent(time::ms(1), 1, 1500, false, 3000, 15000);
  c.on_rtt_sample(time::ms(11), time::ms(10));
  c.on_packet_acked(time::ms(11), 0, 1500, 1500);
  c.on_packet_lost(time::ms(20), 1);
  c.on_packet_sent(time::ms(20), 2, 1500, true, 1500, 15000);
  c.on_cwnd_update(time::ms(20), 9000, 1500);
  c.on_spurious_loss(time::ms(25), 1);
  c.on_packet_acked(time::ms(30), 2, 1500, 0);
}

SenderStats clean_story_stats() {
  SenderStats s;
  s.packets_sent = 3;
  s.retransmissions = 1;
  s.losses_detected = 1;
  s.spurious_losses = 1;
  return s;
}

TEST(InvariantChecker, CleanStoryPasses) {
  InvariantChecker c("t", time::ms(5));
  feed_clean_story(c);
  c.final_check(clean_story_stats(), 0);
  EXPECT_TRUE(c.ok()) << c.violations().front();
  EXPECT_NO_THROW(c.throw_if_violated());
  EXPECT_EQ(c.sent(), 3);
  EXPECT_EQ(c.acked(), 2);
  EXPECT_EQ(c.lost(), 1);
  EXPECT_EQ(c.spurious(), 1);
}

TEST(InvariantChecker, ThrowListsViolations) {
  InvariantChecker c("flowX");
  c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
  c.on_packet_sent(0, 0, 1500, false, 3000, 15000);  // pn 0 sent twice
  EXPECT_FALSE(c.ok());
  EXPECT_THROW(c.throw_if_violated(), std::logic_error);
  try {
    c.throw_if_violated();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("flowX"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sent twice"), std::string::npos);
  }
}

TEST(InvariantChecker, AckOfUnknownPacketFlagged) {
  InvariantChecker c("t");
  c.on_packet_acked(time::ms(1), 7, 1500, 0);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, DoubleAckFlagged) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
  c.on_packet_acked(time::ms(1), 0, 1500, 0);
  c.on_packet_acked(time::ms(2), 0, 1500, 0);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, AckSizeMismatchFlagged) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
  c.on_packet_acked(time::ms(1), 0, 999, 501);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, FlightMismatchOnSendFlagged) {
  InvariantChecker c("t");
  // Sender claims 9999 in flight after a lone 1500-byte send.
  c.on_packet_sent(0, 0, 1500, false, 9999, 15000);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, CwndBoundViolatedByFreshSend) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 3000, false, 3000, 1500);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, CwndBoundExemptsRetransmissions) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 3000, true, 3000, 1500);  // PTO probe over cwnd
  EXPECT_TRUE(c.ok());
}

TEST(InvariantChecker, LostWhileNotOutstandingFlagged) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
  c.on_packet_acked(time::ms(1), 0, 1500, 0);
  c.on_packet_lost(time::ms(2), 0);  // already acked
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, SpuriousWithoutPriorLossFlagged) {
  InvariantChecker c("t");
  c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
  c.on_spurious_loss(time::ms(1), 0);  // never declared lost
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, ClockGoingBackwardsFlagged) {
  InvariantChecker c("t");
  c.on_rtt_sample(time::ms(10), time::ms(5));
  c.on_rtt_sample(time::ms(9), time::ms(5));
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, RttSampleChecks) {
  {
    InvariantChecker c("t");
    c.on_rtt_sample(time::ms(1), 0);  // non-positive
    EXPECT_FALSE(c.ok());
  }
  {
    InvariantChecker c("t");
    c.on_rtt_sample(time::ms(1), time::kInfinite);  // non-finite
    EXPECT_FALSE(c.ok());
  }
  {
    InvariantChecker c("t", time::ms(10));
    c.on_rtt_sample(time::ms(1), time::ms(2));  // below propagation floor
    EXPECT_FALSE(c.ok());
    EXPECT_NE(c.violations().front().find("time travel"), std::string::npos);
  }
}

TEST(InvariantChecker, NonPositiveCwndFlagged) {
  InvariantChecker c("t");
  c.on_cwnd_update(time::ms(1), 0, 0);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, PtoCountMustBePositive) {
  InvariantChecker c("t");
  c.on_pto(time::ms(1), 0);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, FinalStatsMismatchFlagged) {
  InvariantChecker c("t");
  feed_clean_story(c);
  SenderStats s = clean_story_stats();
  s.retransmissions = 0;  // sender under-reports
  c.final_check(s, 0);
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, FinalFlightMismatchFlagged) {
  InvariantChecker c("t");
  feed_clean_story(c);
  c.final_check(clean_story_stats(), 1500);  // stream implies 0
  EXPECT_FALSE(c.ok());
}

TEST(InvariantChecker, LossCountSlackOnlyUnderPersistentCongestion) {
  // Persistent congestion marks packets via the lost callback without
  // counting them in losses_detected: observed > stats is legal then,
  // and illegal otherwise.
  {
    InvariantChecker c("t");
    c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
    c.on_packet_lost(time::ms(1), 0);
    SenderStats s;
    s.packets_sent = 1;
    s.losses_detected = 0;
    s.persistent_congestion_events = 1;
    c.final_check(s, 0);
    EXPECT_TRUE(c.ok()) << c.violations().front();
  }
  {
    InvariantChecker c("t");
    c.on_packet_sent(0, 0, 1500, false, 1500, 15000);
    c.on_packet_lost(time::ms(1), 0);
    SenderStats s;
    s.packets_sent = 1;
    s.losses_detected = 0;  // no persistent congestion to excuse the gap
    c.final_check(s, 0);
    EXPECT_FALSE(c.ok());
  }
}

TEST(InvariantChecker, ElementConservation) {
  InvariantChecker c("t");
  c.check_element_conservation("link", 100, 90, 8, 2);
  EXPECT_TRUE(c.ok());
  c.check_element_conservation("link", 100, 90, 8, 1);  // one packet vanished
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.violations().front().find("link"), std::string::npos);
}

TEST(InvariantChecker, ViolationListIsBounded) {
  InvariantChecker c("t");
  for (int i = 0; i < 100; ++i) {
    c.on_packet_acked(time::ms(1), static_cast<std::uint64_t>(i), 1500, 0);
  }
  EXPECT_FALSE(c.ok());
  EXPECT_LE(c.violations().size(), 32u);
}

TEST(InvariantsEnabled, DefaultsOn) {
  // The test environment does not set QB_INVARIANTS; the cached read
  // must default to enabled.
  EXPECT_TRUE(invariants_enabled());
}

} // namespace
} // namespace quicbench::obs
