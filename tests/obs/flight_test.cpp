#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight.h"
#include "util/json.h"

namespace quicbench::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& stem) {
  const std::string p = "/tmp/qb_flight_" + stem;
  std::remove(p.c_str());
  return p;
}

TEST(FlowSampler, ThrottlesToGridAlignedIntervals) {
  FlowSampler fs(time::ms(100));
  // Due immediately; after a sample at t the next one is due at the next
  // multiple of the interval, not t + interval (no catch-up bunching).
  EXPECT_TRUE(fs.due(0));
  fs.record(time::ms(5), 10000, 5000, time::ms(10), std::nullopt, "ss");
  EXPECT_FALSE(fs.due(time::ms(99)));
  EXPECT_TRUE(fs.due(time::ms(100)));
  fs.record(time::ms(237), 10000, 5000, time::ms(10), std::nullopt, "ss");
  EXPECT_FALSE(fs.due(time::ms(299)));
  EXPECT_TRUE(fs.due(time::ms(300)));
  EXPECT_EQ(fs.total_samples(), 2u);
}

TEST(FlowSampler, DeliveryRateOverWindow) {
  FlowSampler fs(time::ms(100));
  // First sample at t=0 has no window: rate unknown (-1).
  fs.record(0, 1, 1, 0, std::nullopt, "");
  // 12500 bytes over the next 10 ms = 10 Mbps.
  fs.on_delivery(time::ms(4), 10000);
  fs.on_delivery(time::ms(9), 2500);
  fs.record(time::ms(10), 1, 1, 0, std::nullopt, "");
  // The accumulator resets at each sample: an empty follow-up window
  // reports zero, not the stale rate.
  fs.record(time::ms(110), 1, 1, 0, std::nullopt, "");
  const auto samples = fs.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].delivery_mbps, -1.0);
  EXPECT_DOUBLE_EQ(samples[1].delivery_mbps, 10.0);
  EXPECT_DOUBLE_EQ(samples[2].delivery_mbps, 0.0);
}

TEST(FlowSampler, RingKeepsMostRecentSamples) {
  FlowSampler fs(time::ms(1), 4);
  for (int i = 0; i < 10; ++i) {
    fs.record(time::ms(i), i, 0, 0, std::nullopt, "");
  }
  EXPECT_EQ(fs.total_samples(), 10u);
  const auto samples = fs.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().cwnd, 6);  // oldest retained
  EXPECT_EQ(samples.back().cwnd, 9);   // newest
}

TEST(FlowSampler, InternsPhaseNames) {
  FlowSampler fs(time::ms(1));
  fs.record(0, 0, 0, 0, std::nullopt, "slow_start");
  fs.record(time::ms(1), 0, 0, 0, std::nullopt, "avoidance");
  fs.record(time::ms(2), 0, 0, 0, std::nullopt, "slow_start");
  EXPECT_EQ(fs.phase_names().size(), 2u);
  const auto samples = fs.samples();
  EXPECT_EQ(samples[0].phase, samples[2].phase);
  EXPECT_EQ(fs.phase_name(samples[1].phase), "avoidance");
  // Empty phase = unknown, not interned.
  fs.record(time::ms(3), 0, 0, 0, std::nullopt, "");
  EXPECT_EQ(fs.samples().back().phase, -1);
  EXPECT_EQ(fs.phase_name(-1), "");
}

TEST(FlowSampler, DisabledSamplerIsInert) {
  FlowSampler fs(0);
  EXPECT_FALSE(fs.due(time::sec(100)));
  fs.on_delivery(0, 1000);
  fs.record(time::ms(5), 1, 1, 0, std::nullopt, "x");
  EXPECT_EQ(fs.total_samples(), 0u);
  EXPECT_TRUE(fs.samples().empty());
}

TEST(FlowSampler, CsvExport) {
  FlowSampler fs(time::ms(100));
  fs.record(0, 12000, 6000, time::ms(10), rate::mbps(20), "startup");
  fs.on_delivery(time::ms(50), 12500);
  fs.record(time::ms(100), 24000, 9000, time::ms(12), std::nullopt,
            "drain");
  const std::string path = temp_path("export.csv");
  std::string err;
  ASSERT_TRUE(fs.write_csv(path, &err)) << err;
  const std::string body = slurp(path);
  EXPECT_NE(body.find("t_ms,cwnd_bytes,bytes_in_flight,srtt_ms,"
                      "pacing_mbps,delivery_mbps,phase"),
            std::string::npos);
  EXPECT_NE(body.find("0.000000,12000,6000,10.000000,20.000000,"
                      "-1.000000,startup"),
            std::string::npos);
  EXPECT_NE(body.find(",drain"), std::string::npos);
}

TEST(FlowSampler, QlogExportParsesAndCarriesMetrics) {
  FlowSampler fs(time::ms(100));
  fs.record(0, 12000, 6000, time::ms(10), rate::mbps(20), "startup");
  fs.on_delivery(time::ms(40), 12500);
  fs.record(time::ms(100), 24000, 9000, time::ms(12), std::nullopt, "");
  const std::string path = temp_path("export.qlog");
  std::string err;
  ASSERT_TRUE(fs.write_qlog(path, "flight \"test\"", "bbr", &err)) << err;

  const std::string body = slurp(path);
  const auto doc = json_parse(body, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_NE(body.find("\"metrics_updated\""), std::string::npos);
  EXPECT_NE(body.find("\"congestion_window\":12000"), std::string::npos);
  // Pacing rate in bits/sec per the qlog spec; omitted when the CCA
  // exposes none (the second sample).
  EXPECT_NE(body.find("\"pacing_rate\":20000000"), std::string::npos);
  EXPECT_EQ(body.find("\"pacing_rate\":-"), std::string::npos);
  EXPECT_NE(body.find("\"congestion_state\":\"startup\""),
            std::string::npos);
  // Title with a quote survives escaping (the doc parsed above).
  EXPECT_NE(body.find("flight \\\"test\\\""), std::string::npos);
}

} // namespace
} // namespace quicbench::obs
