#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/scenario.h"

namespace quicbench::harness {
namespace {

using stacks::CcaType;
using stacks::Registry;

ScenarioConfig small_scenario(int n_flows, Time duration = time::sec(10)) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ScenarioConfig sc;
  sc.duration = duration;
  sc.trials = 1;
  for (int i = 0; i < n_flows; ++i) {
    FlowSpec f;
    f.impl = ref;
    f.role = i == 0 ? FlowRole::kTest : FlowRole::kReference;
    sc.flows.push_back(f);
  }
  return sc;
}

TEST(ToDumbbellConfig, TranslatesEveryField) {
  NetworkConfig net;
  net.bandwidth = rate::mbps(40);
  net.base_rtt = time::ms(30);
  net.buffer_bdp = 2.0;
  net.base_jitter = time::us(100);
  net.path_jitter = time::us(700);
  net.jitter_reorder = true;
  net.trace_opportunities = {time::ms(1), time::ms(2)};
  net.trace_period = time::ms(2);
  net.impairment.loss_rate = 0.01;

  const netsim::DumbbellConfig dc = to_dumbbell_config(net);
  EXPECT_EQ(dc.bandwidth, rate::mbps(40));
  EXPECT_EQ(dc.base_rtt, time::ms(30));
  EXPECT_EQ(dc.buffer_bytes, net.buffer_bytes());
  EXPECT_EQ(dc.path_jitter, time::us(700));
  EXPECT_TRUE(dc.jitter_allows_reorder);
  EXPECT_EQ(dc.trace_opportunities, net.trace_opportunities);
  EXPECT_EQ(dc.trace_period, time::ms(2));
  EXPECT_EQ(dc.impairment.loss_rate, 0.01);
}

TEST(ToDumbbellConfig, BaseJitterIsTheJitterFloor) {
  NetworkConfig net;
  net.base_jitter = time::us(250);
  net.path_jitter = 0;  // "in the wild" extra off
  EXPECT_EQ(to_dumbbell_config(net).path_jitter, time::us(250));
  net.path_jitter = time::us(100);  // below the floor
  EXPECT_EQ(to_dumbbell_config(net).path_jitter, time::us(250));
}

TEST(ScenarioValidate, AcceptsASingleUnlimitedFlow) {
  EXPECT_NO_THROW(small_scenario(1).validate());
}

void expect_rejects(ScenarioConfig cfg, const std::string& needle) {
  try {
    cfg.validate();
    FAIL() << "expected invalid_argument mentioning \"" << needle << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioValidate, RejectsEmptyFlowSet) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.flows.clear();
  expect_rejects(cfg, "flows must not be empty");
}

TEST(ScenarioValidate, RejectsNegativeArrivalRate) {
  ScenarioConfig cfg = small_scenario(2);
  cfg.flows[1].arrival_rate = -0.5;
  expect_rejects(cfg, "flows[1].arrival_rate must be >= 0");
}

TEST(ScenarioValidate, RejectsZeroSizeFiniteFlow) {
  ScenarioConfig cfg = small_scenario(2);
  cfg.flows[0].flow_size = 0;
  expect_rejects(cfg,
                 "flows[0].flow_size must not be 0: a zero-size finite "
                 "flow never sends; use FlowSpec::kUnlimited");
}

TEST(ScenarioValidate, RejectsOtherNegativeSizes) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.flows[0].flow_size = -7;
  expect_rejects(cfg, "flow_size must be positive or FlowSpec::kUnlimited");
}

TEST(ScenarioValidate, RejectsSampledSizeWithoutDistribution) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.flows[0].sample_size = true;
  expect_rejects(cfg, "size_dist is disabled");
}

TEST(ScenarioValidate, RejectsInvertedSizeDistBounds) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.flows[0].sample_size = true;
  cfg.size_dist.min_bytes = 1000;
  cfg.size_dist.max_bytes = 10;
  expect_rejects(cfg, "size_dist.max_bytes must be >= size_dist.min_bytes");
}

TEST(ScenarioValidate, RejectsNegativeFairnessWindow) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.fairness_window = -time::sec(1);
  expect_rejects(cfg, "fairness_window must be >= 0");
}

TEST(ScenarioValidate, SharedNetworkChecksApply) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.net.bandwidth = 0;
  expect_rejects(cfg, "ScenarioConfig: net.bandwidth must be positive");
}

TEST(TestFlowIndex, FirstTestRoleWins) {
  ScenarioConfig cfg = small_scenario(3);
  cfg.flows[0].role = FlowRole::kBackground;
  cfg.flows[2].role = FlowRole::kTest;
  EXPECT_EQ(test_flow_index(cfg), 2u);
  cfg.flows[2].role = FlowRole::kReference;
  EXPECT_EQ(test_flow_index(cfg), 0u);  // no kTest: fall back to flow 0
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0}), 0.5);
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
}

TEST(RunScenarioTrial, FiniteFlowCompletesAndDeparts) {
  ScenarioConfig cfg = small_scenario(2, time::sec(20));
  cfg.flows[1].flow_size = 2'000'000;  // ~0.8 s of the 20 Mbps bottleneck
  const ScenarioTrialResult tr = run_scenario_trial(cfg, 0);
  ASSERT_EQ(tr.flows.size(), 2u);
  EXPECT_GE(tr.flows[1].finish, 0);
  EXPECT_LT(tr.flows[1].finish, cfg.duration);
  EXPECT_GE(tr.flows[1].bytes_delivered, tr.flows[1].target_size);
  EXPECT_EQ(tr.flows[0].finish, -1);  // the unlimited flow never departs
  EXPECT_EQ(tr.churn.arrivals, 2);
  EXPECT_EQ(tr.churn.departures, 1);
  EXPECT_GT(tr.churn.mean_completion_sec, 0.0);
  // After the finite flow departs the survivor takes the whole link, so
  // its delivered bytes dominate.
  EXPECT_GT(tr.flows[0].bytes_delivered, tr.flows[1].bytes_delivered);
}

TEST(RunScenario, ManyFlowsShareTheBottleneck) {
  ScenarioConfig cfg = small_scenario(4, time::sec(15));
  cfg.fairness_window = time::sec(5);
  const ScenarioResult sr = run_scenario(cfg);
  ASSERT_EQ(sr.flows.size(), 4u);
  double share_sum = 0;
  for (const auto& f : sr.flows) {
    EXPECT_GT(f.tput_mbps, 0.5);
    share_sum += f.share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  // Four identical kernel-CUBIC flows started together: decently fair.
  EXPECT_GT(sr.jain_overall, 0.7);
  EXPECT_LE(sr.jain_overall, 1.0 + 1e-12);
  EXPECT_EQ(sr.jain_windows.size(), 3u);  // 15 s tiled into 5 s windows
  EXPECT_EQ(sr.churn.peak_concurrent, 4);
}

TEST(RunScenario, PoissonChurnArrivesAndDeparts) {
  ScenarioConfig cfg = small_scenario(8, time::sec(20));
  cfg.size_dist.min_bytes = 500'000;
  cfg.size_dist.max_bytes = 4'000'000;
  for (std::size_t i = 1; i < cfg.flows.size(); ++i) {
    cfg.flows[i].role = FlowRole::kBackground;
    cfg.flows[i].arrival_rate = 7.0 / 12.0;  // last arrival ~60% in
    cfg.flows[i].sample_size = true;
  }
  const ScenarioResult sr = run_scenario(cfg);
  EXPECT_GT(sr.churn.arrivals, 1.0);
  EXPECT_GT(sr.churn.departures, 0.0);
  EXPECT_GE(sr.churn.peak_concurrent, 2);
  EXPECT_GT(sr.churn.mean_completion_sec, 0.0);
  // Departed background flows free the link again for the test flow.
  EXPECT_GT(sr.flows[0].tput_mbps, 1.0);
}

void expect_scenario_trials_identical(const ScenarioTrialResult& a,
                                      const ScenarioTrialResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.sim_events, b.sim_events);
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].start, b.flows[i].start) << "flow " << i;
    EXPECT_EQ(a.flows[i].finish, b.flows[i].finish) << "flow " << i;
    EXPECT_EQ(a.flows[i].target_size, b.flows[i].target_size) << "flow " << i;
    EXPECT_EQ(a.flows[i].bytes_delivered, b.flows[i].bytes_delivered)
        << "flow " << i;
    EXPECT_EQ(a.flows[i].result.sender_stats.packets_sent,
              b.flows[i].result.sender_stats.packets_sent)
        << "flow " << i;
  }
  EXPECT_EQ(a.bottleneck.bytes_out, b.bottleneck.bytes_out);
  EXPECT_EQ(a.bottleneck.drops, b.bottleneck.drops);
  EXPECT_EQ(a.churn.arrivals, b.churn.arrivals);
  EXPECT_EQ(a.churn.departures, b.churn.departures);
  EXPECT_EQ(a.churn.peak_concurrent, b.churn.peak_concurrent);
}

// The churn determinism gate: a 64-flow Poisson-churn scenario re-run
// with the same seed reproduces event counts and per-flow byte totals
// exactly (the invariant checker is on by default throughout).
TEST(RunScenarioTrial, SixtyFourFlowChurnIsDeterministic) {
  ScenarioConfig cfg = small_scenario(64, time::sec(10));
  cfg.size_dist.min_bytes = 200'000;
  cfg.size_dist.max_bytes = 2'000'000;
  for (std::size_t i = 1; i < cfg.flows.size(); ++i) {
    cfg.flows[i].role = FlowRole::kBackground;
    cfg.flows[i].arrival_rate = 63.0 / 6.0;
    cfg.flows[i].sample_size = true;
  }
  const ScenarioTrialResult a = run_scenario_trial(cfg, 0);
  const ScenarioTrialResult b = run_scenario_trial(cfg, 0);
  EXPECT_GT(a.churn.departures, 0);
  expect_scenario_trials_identical(a, b);
  // A different trial index must not reproduce the same run.
  const ScenarioTrialResult c = run_scenario_trial(cfg, 1);
  EXPECT_NE(a.sim_events, c.sim_events);
}

// Many-flow smoke (also exercised under ASan/UBSan in CI): 256 churning
// flows through one bottleneck, invariants live, must complete cleanly.
TEST(RunScenarioTrial, TwoHundredFiftySixFlowChurnSmoke) {
  ScenarioConfig cfg = small_scenario(256, time::sec(5));
  cfg.size_dist.min_bytes = 100'000;
  cfg.size_dist.max_bytes = 1'000'000;
  for (std::size_t i = 1; i < cfg.flows.size(); ++i) {
    cfg.flows[i].role = FlowRole::kBackground;
    cfg.flows[i].arrival_rate = 255.0 / 3.0;
    cfg.flows[i].sample_size = true;
  }
  const ScenarioTrialResult tr = run_scenario_trial(cfg, 0);
  ASSERT_EQ(tr.flows.size(), 256u);
  EXPECT_GT(tr.churn.arrivals, 64);
  EXPECT_GT(tr.churn.departures, 0);
  EXPECT_GT(tr.bottleneck.bytes_out, 0);
}

TEST(RunScenario, AdapterMatchesPairHarness) {
  // The 2-flow adapter and the scenario engine are the same machinery:
  // to_scenario_config + run_scenario_trial reproduces run_trial exactly.
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig pcfg;
  pcfg.duration = time::sec(10);
  const TrialResult tr = run_trial(ref, ref, pcfg, 3);
  const ScenarioTrialResult str =
      run_scenario_trial(to_scenario_config(ref, ref, pcfg), 3);
  ASSERT_EQ(str.flows.size(), 2u);
  for (int f = 0; f < 2; ++f) {
    EXPECT_EQ(tr.flow[f].sender_stats.packets_sent,
              str.flows[f].result.sender_stats.packets_sent);
    EXPECT_EQ(tr.flow[f].points.size(), str.flows[f].result.points.size());
    EXPECT_EQ(tr.flow[f].avg_throughput,
              str.flows[f].result.avg_throughput);
  }
  EXPECT_EQ(tr.sim_events, str.sim_events);
  EXPECT_EQ(tr.bottleneck.bytes_out, str.bottleneck.bytes_out);
}

TEST(RunScenario, ValidatesAtEntry) {
  ScenarioConfig cfg = small_scenario(1);
  cfg.flows[0].flow_size = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

} // namespace
} // namespace quicbench::harness
