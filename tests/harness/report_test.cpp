#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "harness/report.h"

namespace quicbench::harness {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(RenderHeatmap, ContainsLabelsAndValues) {
  const std::string out = render_heatmap(
      "title", {"rowA", "rowB"}, {"c1", "c2"},
      {{0.5, 0.75}, {1.0, 0.0}});
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("rowA"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("0.75"), std::string::npos);
}

TEST(RenderHeatmap, MissingCellsPrintDash) {
  const std::string out =
      render_heatmap("t", {"r1", "r2"}, {"c"}, {{0.5}});
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(RenderHeatmap, NanPrintsDash) {
  const std::vector<std::vector<double>> vals{{std::nan("")}};
  const std::string out = render_heatmap("t", {"r"}, {"c"}, vals);
  // The value column must not contain "nan".
  EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(RenderTable, AlignsColumns) {
  const std::string out = render_table(
      {"a", "long-header"}, {{"x", "1"}, {"yyyy", "22"}});
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(RenderTable, ShortRowsPadded) {
  const std::string out = render_table({"a", "b"}, {{"only-one"}});
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(RenderPePlot, EmptyData) {
  conformance::PerformanceEnvelope empty;
  const std::string out = render_pe_plot("empty", empty, empty);
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(RenderPePlot, MarksPoints) {
  conformance::PerformanceEnvelope ref, test;
  ref.all_points = {{1, 1}, {2, 2}, {3, 1}};
  test.all_points = {{10, 10}};
  const std::string out = render_pe_plot("plot", ref, test, 40, 10);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("plot"), std::string::npos);
}

// The ParallelFor tests moved to tests/runner/parallel_test.cpp along
// with the implementation.

} // namespace
} // namespace quicbench::harness
