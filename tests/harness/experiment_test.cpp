#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "harness/experiment.h"
#include "obs/metrics.h"
#include "trace/qlog.h"

namespace quicbench::harness {
namespace {

using stacks::CcaType;
using stacks::Registry;

TEST(NetworkConfig, BufferBytesFromBdp) {
  NetworkConfig net;
  net.bandwidth = rate::mbps(20);
  net.base_rtt = time::ms(10);
  net.buffer_bdp = 1.0;
  EXPECT_EQ(net.buffer_bytes(), 25'000);
  net.buffer_bdp = 5.0;
  EXPECT_EQ(net.buffer_bytes(), 125'000);
}

TEST(NetworkConfig, BufferNeverBelowPacketScale) {
  NetworkConfig net;
  net.bandwidth = rate::mbps(1);
  net.base_rtt = time::ms(1);
  net.buffer_bdp = 0.1;  // 12.5 bytes raw
  EXPECT_GE(net.buffer_bytes(), 3000);
}

TEST(NetworkConfig, DescribeMentionsParameters) {
  NetworkConfig net;
  net.bandwidth = rate::mbps(100);
  net.base_rtt = time::ms(50);
  net.buffer_bdp = 3.0;
  const std::string d = net.describe();
  EXPECT_NE(d.find("100"), std::string::npos);
  EXPECT_NE(d.find("50"), std::string::npos);
  EXPECT_NE(d.find("3"), std::string::npos);
}

TEST(RunPair, SharesSumToOne) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(15);
  cfg.trials = 2;
  const PairResult pr = run_pair(ref, ref, cfg);
  EXPECT_NEAR(pr.share_a + pr.share_b, 1.0, 1e-9);
  EXPECT_EQ(pr.points_a.size(), 2u);
  EXPECT_EQ(pr.points_b.size(), 2u);
  EXPECT_TRUE(pr.trials.empty());  // record_cwnd off
}

TEST(RunPair, RecordCwndKeepsTrials) {
  const auto& ref = Registry::instance().reference(CcaType::kReno);
  ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  cfg.trials = 2;
  cfg.record_cwnd = true;
  const PairResult pr = run_pair(ref, ref, cfg);
  ASSERT_EQ(pr.trials.size(), 2u);
  EXPECT_FALSE(pr.trials[0].flow[0].trace.cwnd_samples.empty());
}

TEST(RunTrial, SamplingConfigRespected) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(20);
  cfg.trials = 1;
  cfg.sampling.rtts_per_sample = 10;
  const TrialResult a = run_trial(ref, ref, cfg, 0);
  cfg.sampling.rtts_per_sample = 20;
  const TrialResult b = run_trial(ref, ref, cfg, 0);
  EXPECT_GT(a.flow[0].points.size(), b.flow[0].points.size());
}

TEST(RunTrial, CwndTraceClearedWhenNotRequested) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  EXPECT_TRUE(tr.flow[0].trace.cwnd_samples.empty());
}

TEST(RunTrial, ThroughputBoundedByLink) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(20);
  cfg.duration = time::sec(20);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  const double total = rate::to_mbps(tr.flow[0].avg_throughput) +
                       rate::to_mbps(tr.flow[1].avg_throughput);
  EXPECT_LE(total, 20.0 + 0.2);
  EXPECT_GT(total, 10.0);
}

TEST(RunTrial, TinyBufferSurvives) {
  // Failure injection: a buffer well below one packet (clamped to the
  // minimum) must not deadlock the experiment.
  const auto& ref = Registry::instance().reference(CcaType::kReno);
  ExperimentConfig cfg;
  cfg.net.buffer_bdp = 0.01;
  cfg.duration = time::sec(10);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  EXPECT_GT(tr.flow[0].trace.deliveries.size() +
                tr.flow[1].trace.deliveries.size(),
            0u);
}

TEST(RunTrial, HighRttConfig) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.net.base_rtt = time::ms(200);
  cfg.duration = time::sec(30);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  // Slow start alone takes a while at 200 ms; just require progress and
  // sane delay samples.
  EXPECT_GT(tr.flow[0].trace.deliveries.size(), 100u);
  for (const auto& r : tr.flow[0].trace.rtt_samples) {
    EXPECT_GE(r.rtt, time::ms(200));
  }
}

TEST(Validate, AcceptsDefaults) {
  EXPECT_NO_THROW(ExperimentConfig{}.validate());
}

TEST(Validate, RejectsBadFields) {
  const auto expect_rejects = [](auto&& mutate, const std::string& needle) {
    ExperimentConfig cfg;
    mutate(cfg);
    try {
      cfg.validate();
      FAIL() << "expected invalid_argument mentioning \"" << needle << "\"";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_rejects([](auto& c) { c.trials = 0; }, "trials");
  expect_rejects([](auto& c) { c.trials = -2; }, "trials");
  expect_rejects([](auto& c) { c.duration = 0; }, "duration");
  expect_rejects([](auto& c) { c.duration = -time::sec(1); }, "duration");
  expect_rejects([](auto& c) { c.net.bandwidth = 0; }, "bandwidth");
  expect_rejects([](auto& c) { c.net.bandwidth = -1.0; }, "bandwidth");
  expect_rejects([](auto& c) { c.net.base_rtt = 0; }, "base_rtt");
  expect_rejects([](auto& c) { c.net.trace_period = time::ms(5); }, "trace");
  expect_rejects(
      [](auto& c) { c.net.trace_opportunities = {time::ms(1)}; }, "trace");
}

TEST(Validate, RunPairRejectsInvalidConfig) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(run_pair(ref, ref, cfg), std::invalid_argument);
}

TEST(RunTrial, ReportsSimulatorEvents) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(5);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  // A 5 s two-flow run fires many thousands of events.
  EXPECT_GT(tr.sim_events, 1000u);
}

// Every double compared bit-for-bit: the flight recorder must be a pure
// observer, not merely "close enough".
void expect_trials_bit_identical(const TrialResult& a, const TrialResult& b) {
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  for (int f = 0; f < 2; ++f) {
    ASSERT_EQ(a.flow[f].points.size(), b.flow[f].points.size());
    for (std::size_t i = 0; i < a.flow[f].points.size(); ++i) {
      EXPECT_EQ(bits(a.flow[f].points[i].delay_ms),
                bits(b.flow[f].points[i].delay_ms));
      EXPECT_EQ(bits(a.flow[f].points[i].tput_mbps),
                bits(b.flow[f].points[i].tput_mbps));
    }
    EXPECT_EQ(bits(a.flow[f].avg_throughput), bits(b.flow[f].avg_throughput));
    EXPECT_EQ(a.flow[f].sender_stats.packets_sent,
              b.flow[f].sender_stats.packets_sent);
    EXPECT_EQ(a.flow[f].sender_stats.losses_detected,
              b.flow[f].sender_stats.losses_detected);
    EXPECT_EQ(a.flow[f].sender_stats.retransmissions,
              b.flow[f].sender_stats.retransmissions);
    EXPECT_EQ(a.flow[f].sender_stats.ptos_fired,
              b.flow[f].sender_stats.ptos_fired);
    EXPECT_EQ(a.flow[f].sender_stats.spurious_losses,
              b.flow[f].sender_stats.spurious_losses);
    EXPECT_EQ(a.flow[f].phase_residency_sec, b.flow[f].phase_residency_sec);
  }
  EXPECT_EQ(a.bottleneck.queue_hwm_bytes, b.bottleneck.queue_hwm_bytes);
  EXPECT_EQ(a.bottleneck.drops, b.bottleneck.drops);
  EXPECT_EQ(a.bottleneck.bytes_out, b.bottleneck.bytes_out);
  EXPECT_EQ(bits(a.bottleneck.utilization), bits(b.bottleneck.utilization));
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(RunTrial, ObserversDoNotPerturbResults) {
  const auto& reg = Registry::instance();
  // Cover all three CCA families: phase hooks differ per controller.
  const stacks::Implementation* impls[] = {
      &reg.reference(CcaType::kCubic), &reg.reference(CcaType::kBbr),
      &reg.reference(CcaType::kReno)};
  for (const auto* impl : impls) {
    ExperimentConfig cfg;
    cfg.duration = time::sec(10);
    const TrialResult plain = run_trial(*impl, *impl, cfg, 0);

    trace::QlogWriter qlog_a("t flow 0", "x");
    trace::QlogWriter qlog_b("t flow 1", "x");
    obs::MetricsRegistry metrics;
    TrialObservers observers;
    observers.qlog[0] = &qlog_a;
    observers.qlog[1] = &qlog_b;
    observers.metrics = &metrics;
    const TrialResult observed = run_trial(*impl, *impl, cfg, 0, observers);

    expect_trials_bit_identical(plain, observed);
    // And the observers actually saw the trial.
    EXPECT_GT(qlog_a.event_count(), 0u);
    EXPECT_GT(qlog_b.event_count(), 0u);
    EXPECT_GT(metrics.size(), 0u);
  }
}

TEST(RunTrial, PhaseResidencyCoversTheTrial) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  for (int f = 0; f < 2; ++f) {
    ASSERT_FALSE(tr.flow[f].phase_residency_sec.empty());
    double total = 0;
    for (const auto& [phase, sec] : tr.flow[f].phase_residency_sec) {
      EXPECT_FALSE(phase.empty());
      EXPECT_GE(sec, 0.0);
      total += sec;
    }
    // Residency spans from the flow's start to the end of the trial.
    EXPECT_LE(total, time::to_sec(cfg.duration) + 1e-6);
    EXPECT_GT(total, time::to_sec(cfg.duration) * 0.5);
  }
}

TEST(RunTrial, BottleneckTelemetryPopulated) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  const TrialResult tr = run_trial(ref, ref, cfg, 0);
  EXPECT_GT(tr.bottleneck.packets_out, 0);
  EXPECT_GT(tr.bottleneck.bytes_out, 0);
  EXPECT_GT(tr.bottleneck.queue_hwm_bytes, 0);
  EXPECT_GT(tr.bottleneck.utilization, 0.3);
  // Packet-boundary quantization can nudge delivered bits a hair above
  // rate * duration.
  EXPECT_LE(tr.bottleneck.utilization, 1.05);
}

TEST(RunTrial, FlightSamplerIsStrictlyPassive) {
  // The per-flow flight recorder must be invisible to the simulation:
  // sampled and unsampled runs of the same trial are bit-identical,
  // including the executed event count, while the sampler itself fills
  // with periodic samples.
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(10);
  cfg.trials = 1;
  const TrialResult plain = run_trial(ref, ref, cfg, 0);

  obs::FlowSampler fs0(time::ms(100));
  obs::FlowSampler fs1(time::ms(100));
  TrialObservers observers;
  observers.flight[0] = &fs0;
  observers.flight[1] = &fs1;
  const TrialResult sampled = run_trial(ref, ref, cfg, 0, observers);

  EXPECT_EQ(plain.sim_events, sampled.sim_events);
  for (int f = 0; f < 2; ++f) {
    EXPECT_EQ(plain.flow[f].avg_throughput,
              sampled.flow[f].avg_throughput);
    EXPECT_EQ(plain.flow[f].sender_stats.packets_sent,
              sampled.flow[f].sender_stats.packets_sent);
    ASSERT_EQ(plain.flow[f].points.size(), sampled.flow[f].points.size());
    for (std::size_t i = 0; i < plain.flow[f].points.size(); ++i) {
      EXPECT_EQ(plain.flow[f].points[i].delay_ms,
                sampled.flow[f].points[i].delay_ms);
      EXPECT_EQ(plain.flow[f].points[i].tput_mbps,
                sampled.flow[f].points[i].tput_mbps);
    }
  }
  // ~100 samples in 10 s at 100 ms spacing (delivery-gated, so allow
  // slack); every sample carries a live cwnd and a phase label.
  EXPECT_GT(fs0.total_samples(), 50u);
  EXPECT_GT(fs1.total_samples(), 50u);
  for (const auto& s : fs0.samples()) {
    EXPECT_GT(s.cwnd, 0);
    EXPECT_GE(s.phase, 0);
  }
}

TEST(MeasureConformance, SelfConformanceReasonable) {
  const auto& ref = Registry::instance().reference(CcaType::kCubic);
  ExperimentConfig cfg;
  cfg.duration = time::sec(30);
  cfg.trials = 3;
  const auto rep = measure_conformance(ref, ref, cfg);
  // Same implementation on both sides: decently conformant even on short
  // runs.
  EXPECT_GT(rep.conformance, 0.35);
  EXPECT_LE(rep.conformance, 1.0);
}

} // namespace
} // namespace quicbench::harness
