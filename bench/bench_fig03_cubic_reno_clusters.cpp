// Figure 3: clusters for CUBIC and Reno are less distinct than BBR's and
// tend to form around different throughput levels (the flows trade the
// bandwidth share as their sawtooths interleave).

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

void show(const char* title, const stacks::Implementation& ref,
          CsvWriter& csv, const std::string& label) {
  const auto cfg = default_config(1.0);
  const auto pair = harness::run_pair(ref, ref, cfg);
  const auto curve = conformance::iou_curve(pair.points_a);
  const int k = conformance::select_k(curve);
  const auto pe = conformance::build_pe_fixed_k(pair.points_a, k);

  std::cout << title << ": selected k = " << k << ", R(k) = ";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::cout << fmt(curve[i]) << (i + 1 < curve.size() ? ", " : "\n");
  }
  std::cout << harness::render_pe_plot(title, pe,
                                       conformance::PerformanceEnvelope{});
  std::cout << "cluster centroids (delay ms, tput Mbps):\n";
  for (const auto& c : pe.cluster_centroids) {
    std::cout << "  (" << fmt(c.x) << ", " << fmt(c.y) << ")\n";
  }
  std::cout << '\n';
  for (const auto& p : pe.all_points) {
    csv.row(std::vector<std::string>{label, fmt(p.x, 4), fmt(p.y, 4)});
  }
}

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  std::cout << "Figure 3: natural clusters for loss-based CCAs ("
            << default_config(1.0).net.describe() << ")\n\n";
  CsvWriter csv(csv_path("fig03"), {"cca", "delay_ms", "tput_mbps"});
  show("(a) TCP CUBIC", reg.reference(stacks::CcaType::kCubic), csv,
       "cubic");
  show("(b) TCP Reno", reg.reference(stacks::CcaType::kReno), csv, "reno");
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
