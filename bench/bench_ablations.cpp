// Ablations over the Performance-Envelope design choices DESIGN.md calls
// out:
//   1. clustered PE vs single hull (the paper's own Fig 1 motivation)
//   2. cross-trial hull intersection vs 5% centroid-distance outlier trim
//   3. IOU-drop k selection vs fixed k
//   4. per-trial clustering + matching vs pooled clustering
//   5. sampling period sensitivity (5 / 10 / 20 RTTs per sample)
//
// Each ablation is evaluated on its ability to separate a known-deviant
// implementation (quiche CUBIC) from a known-conformant one (msquic
// CUBIC): a good metric scores the conformant stack high and the deviant
// low; the gap is the discriminative power.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

struct Clouds {
  std::vector<conformance::TrialPoints> ref, good, bad;
};

double conf(const conformance::PerformanceEnvelope& a,
            const conformance::PerformanceEnvelope& b) {
  return conformance::conformance(a, b);
}

void report(const std::string& name, double good, double bad,
            CsvWriter& csv) {
  std::cout << "  " << name << ": conformant=" << fmt(good)
            << " deviant=" << fmt(bad) << " gap=" << fmt(good - bad) << "\n";
  csv.row(std::vector<std::string>{name, fmt(good, 4), fmt(bad, 4),
                                   fmt(good - bad, 4)});
}

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kCubic);
  const auto* good_impl = reg.find("msquic", stacks::CcaType::kCubic);
  const auto* bad_impl = reg.find("quiche", stacks::CcaType::kCubic);
  const auto cfg = default_config(1.0);

  std::cout << "PE design ablations (" << cfg.net.describe()
            << "; conformant = msquic CUBIC, deviant = quiche CUBIC)\n\n";

  Clouds clouds;
  clouds.ref = harness::run_pair(ref, ref, cfg).points_a;
  clouds.good = harness::run_pair(*good_impl, ref, cfg).points_a;
  clouds.bad = harness::run_pair(*bad_impl, ref, cfg).points_a;

  CsvWriter csv(csv_path("ablations"),
                {"variant", "conformant_conf", "deviant_conf", "gap"});

  // 1+2. The paper's enhanced definition (clustered + intersection).
  {
    const auto pr = conformance::build_pe(clouds.ref);
    const auto pg = conformance::build_pe(clouds.good);
    const auto pb = conformance::build_pe(clouds.bad);
    report("clustered+intersection (paper)", conf(pr, pg), conf(pr, pb), csv);
  }
  // Single hull + 5% trim (the IMC'22 definition).
  {
    const auto pr = conformance::build_pe_old(clouds.ref);
    const auto pg = conformance::build_pe_old(clouds.good);
    const auto pb = conformance::build_pe_old(clouds.bad);
    report("single hull + 5% trim (old)", conf(pr, pg), conf(pr, pb), csv);
  }
  // 3. Fixed k instead of IOU-drop selection.
  for (const int k : {1, 2, 4}) {
    const auto pr = conformance::build_pe_fixed_k(clouds.ref, k);
    const auto pg = conformance::build_pe_fixed_k(clouds.good, k);
    const auto pb = conformance::build_pe_fixed_k(clouds.bad, k);
    report("fixed k=" + std::to_string(k), conf(pr, pg), conf(pr, pb), csv);
  }
  // 4a. Cross-trial quorum: strict intersection (the paper) vs tolerant
  // coverage regions.
  for (const double q : {1.0, 0.8, 0.6}) {
    conformance::PeConfig qc;
    qc.trial_quorum = q;
    const auto pr = conformance::build_pe(clouds.ref, qc);
    const auto pg = conformance::build_pe(clouds.good, qc);
    const auto pb = conformance::build_pe(clouds.bad, qc);
    report("trial quorum " + fmt(q, 1), conf(pr, pg), conf(pr, pb), csv);
  }
  // 4b. Pooled clustering instead of per-trial + matching.
  {
    conformance::PeConfig pooled;
    pooled.per_trial_clustering = false;
    const auto pr = conformance::build_pe(clouds.ref, pooled);
    const auto pg = conformance::build_pe(clouds.good, pooled);
    const auto pb = conformance::build_pe(clouds.bad, pooled);
    report("pooled clustering", conf(pr, pg), conf(pr, pb), csv);
  }
  // 5. Sampling-period sensitivity: rebuild the clouds with different
  // sampling periods.
  for (const int rtts : {5, 10, 20}) {
    harness::ExperimentConfig scfg = cfg;
    scfg.sampling.rtts_per_sample = rtts;
    const auto cr = harness::run_pair(ref, ref, scfg).points_a;
    const auto cg = harness::run_pair(*good_impl, ref, scfg).points_a;
    const auto cb = harness::run_pair(*bad_impl, ref, scfg).points_a;
    const auto pr = conformance::build_pe(cr);
    const auto pg = conformance::build_pe(cg);
    const auto pb = conformance::build_pe(cb);
    report("sampling " + std::to_string(rtts) + " RTTs", conf(pr, pg),
           conf(pr, pb), csv);
  }

  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}
