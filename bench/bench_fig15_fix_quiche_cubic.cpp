// Figure 15: quiche CUBIC before and after disabling its RFC 8312bis
// spurious-congestion rollback (paper: conformance 0.08 -> 0.55). Also
// dumps the cwnd time series of both variants competing with the
// reference — the broken variant's cwnd keeps snapping back up after
// every backoff, the fixed one shows the normal CUBIC sawtooth.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* broken = reg.find("quiche", stacks::CcaType::kCubic);
  const auto fixed = stacks::fixed_variant(*broken);
  const auto& ref = reg.reference(stacks::CcaType::kCubic);

  const auto cfg = default_config(1.0);
  std::cout << "Figure 15: fixing quiche CUBIC (disable RFC8312bis "
            << "rollback), " << cfg.net.describe() << "\n\n";

  RefPairCache cache;
  cache.get(ref, cfg);
  conformance::ConformanceReport before, after;
  runner::parallel_for(2, [&](int i) {
    if (i == 0) before = conformance_cell(*broken, ref, cfg, cache);
    else after = conformance_cell(*fixed, ref, cfg, cache);
  });

  for (const auto* rep : {&before, &after}) {
    std::cout << harness::render_pe_plot(
        std::string(rep == &before ? "(a) original (rollback enabled)"
                                   : "(b) modified (rollback disabled)") +
            ":  Conf=" + fmt(rep->conformance) +
            "  Conf-T=" + fmt(rep->conformance_t) +
            "  d-tput=" + fmt(rep->delta_tput_mbps),
        rep->ref_pe, rep->test_pe);
    std::cout << '\n';
  }
  std::cout << "conformance before = " << fmt(before.conformance)
            << ", after = " << fmt(after.conformance) << "\n";

  // cwnd time series for the two variants (one trial each).
  harness::ExperimentConfig ts_cfg = cfg;
  ts_cfg.record_cwnd = true;
  ts_cfg.trials = 1;
  const auto tr_broken = harness::run_trial(*broken, ref, ts_cfg, 0);
  const auto tr_fixed = harness::run_trial(*fixed, ref, ts_cfg, 0);
  CsvWriter ts_csv(csv_path("fig15_cwnd"),
                   {"variant", "t_sec", "cwnd_bytes", "in_flight"});
  const auto dump = [&](const char* name, const harness::TrialResult& tr) {
    for (const auto& s : tr.flow[0].trace.cwnd_samples) {
      ts_csv.row(std::vector<std::string>{name, fmt(time::to_sec(s.time), 4),
                                          std::to_string(s.cwnd),
                                          std::to_string(s.bytes_in_flight)});
    }
  };
  dump("original", tr_broken);
  dump("fixed", tr_fixed);

  CsvWriter csv(csv_path("fig15"),
                {"variant", "conformance", "conformance_t", "delta_tput",
                 "delta_delay"});
  csv.row(std::vector<std::string>{"original", fmt(before.conformance, 4),
                                   fmt(before.conformance_t, 4),
                                   fmt(before.delta_tput_mbps, 4),
                                   fmt(before.delta_delay_ms, 4)});
  csv.row(std::vector<std::string>{"fixed", fmt(after.conformance, 4),
                                   fmt(after.conformance_t, 4),
                                   fmt(after.delta_tput_mbps, 4),
                                   fmt(after.delta_delay_ms, 4)});
  std::cout << "CSV: " << csv.path() << " and " << ts_csv.path() << "\n";
  return 0;
}
