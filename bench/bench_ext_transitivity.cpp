// Extension (§6, "Transitivity"): the paper reports that relative
// performance is transitive *within* a CCA but not *across* CCAs — e.g.
// lsquic CUBIC beats msquic CUBIC and msquic CUBIC beats chromium BBR,
// yet lsquic CUBIC does not beat chromium BBR in deep buffers.
//
// This bench builds the full dominance relation from pairwise bandwidth
// shares and counts transitivity violations (triples i>j, j>k but not
// i>k), separately for intra-CCA and cross-CCA triples, in shallow and
// deep buffers.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

struct Impl {
  const stacks::Implementation* impl;
};

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  // The population used for the paper's transitivity observation: all
  // CUBIC and BBR implementations (kernel included).
  std::vector<const stacks::Implementation*> impls;
  for (const auto* i : reg.with_cca(stacks::CcaType::kCubic, true)) {
    impls.push_back(i);
  }
  for (const auto* i : reg.with_cca(stacks::CcaType::kBbr, true)) {
    impls.push_back(i);
  }
  const int n = static_cast<int>(impls.size());

  CsvWriter csv(csv_path("ext_transitivity"),
                {"buffer_bdp", "scope", "triples", "violations",
                 "violation_rate"});

  for (const double buf : {1.0, 5.0}) {
    harness::ExperimentConfig cfg =
        default_config(buf, rate::mbps(20), time::ms(50));
    if (!fast_mode()) {
      cfg.duration = time::sec(60);  // n^2 pairs: keep the sweep tractable
      cfg.trials = 3;
    }

    std::vector<std::vector<double>> share(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.5));
    std::vector<std::pair<int, int>> jobs;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) jobs.push_back({i, j});
    }
    runner::parallel_for(static_cast<int>(jobs.size()), [&](int idx) {
      const auto [i, j] = jobs[static_cast<std::size_t>(idx)];
      const auto pr = harness::run_pair(*impls[static_cast<std::size_t>(i)],
                                        *impls[static_cast<std::size_t>(j)],
                                        cfg);
      share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          pr.share_a;
      share[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          pr.share_b;
    });

    // beats(i, j): i takes a clearly larger share (5% margin).
    const auto beats = [&](int i, int j) {
      return share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] >
             0.55;
    };
    const auto same_cca = [&](int i, int j) {
      return impls[static_cast<std::size_t>(i)]->cca ==
             impls[static_cast<std::size_t>(j)]->cca;
    };

    long intra_triples = 0, intra_viol = 0;
    long cross_triples = 0, cross_viol = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        for (int k = 0; k < n; ++k) {
          if (i == j || j == k || i == k) continue;
          if (!beats(i, j) || !beats(j, k)) continue;
          const bool intra = same_cca(i, j) && same_cca(j, k);
          const bool violated = !beats(i, k);
          if (intra) {
            ++intra_triples;
            intra_viol += violated;
          } else {
            ++cross_triples;
            cross_viol += violated;
            if (violated && cross_viol <= 5) {
              std::cout << "  cross-CCA violation (" << fmt(buf, 0)
                        << " BDP): "
                        << impls[static_cast<std::size_t>(i)]->display
                        << " > "
                        << impls[static_cast<std::size_t>(j)]->display
                        << " > "
                        << impls[static_cast<std::size_t>(k)]->display
                        << " but not transitively\n";
            }
          }
        }
      }
    }

    const auto rate_of = [](long v, long t) {
      return t > 0 ? static_cast<double>(v) / static_cast<double>(t) : 0.0;
    };
    std::cout << fmt(buf, 0) << " BDP buffer:\n"
              << "  intra-CCA: " << intra_viol << "/" << intra_triples
              << " violations (" << fmt(rate_of(intra_viol, intra_triples))
              << ")\n"
              << "  cross-CCA: " << cross_viol << "/" << cross_triples
              << " violations (" << fmt(rate_of(cross_viol, cross_triples))
              << ")\n\n";
    csv.row(std::vector<std::string>{
        fmt(buf, 1), "intra", std::to_string(intra_triples),
        std::to_string(intra_viol),
        fmt(rate_of(intra_viol, intra_triples), 4)});
    csv.row(std::vector<std::string>{
        fmt(buf, 1), "cross", std::to_string(cross_triples),
        std::to_string(cross_viol),
        fmt(rate_of(cross_viol, cross_triples), 4)});
  }
  std::cout << "Expected (paper §6): intra-CCA dominance is (nearly) "
               "transitive; cross-CCA dominance is not.\nCSV: "
            << csv.path() << "\n";
  return 0;
}
