#pragma once
// Thin shim for the per-figure/table bench binaries. The machinery that
// used to live here (fast mode, the paper-default config, the reference
// pair cache, conformance cells, parallel scheduling) is now the runner
// library (src/runner/), shared with examples/ and tests; only the
// presentation helpers specific to bench output remain.
//
// Every bench prints the rows/series of its paper counterpart, writes a
// CSV next to the binary (./bench_out/<name>.csv) and a structured run
// manifest (./bench_out/manifests/<name>.json). Paper-fidelity
// parameters (120 s runs, 5 trials) are the default; set QB_FAST=1 for
// a quick smoke pass, QB_PROGRESS=1 for progress lines on stderr.

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "runner/env.h"
#include "runner/parallel.h"
#include "runner/sweep.h"
#include "util/csv.h"

namespace quicbench::bench {

using runner::conformance_cell;
using runner::csv_path;
using runner::default_config;
using runner::fast_mode;
using runner::out_dir;
using runner::RefPairCache;

inline std::string fmt(double v, int precision = 2) {
  return harness::format_double(v, precision);
}

// Shared driver for the "PEs across buffer sizes" figures (7, 8, 9, 10):
// plot the test implementation's PE against the reference PE for each
// buffer depth and report Conf / Conf-T / Δ per panel. One sweep (and
// manifest) per figure panel, named after the CSV.
inline void pe_across_buffers(const std::string& figure,
                              const stacks::Implementation& test,
                              const stacks::Implementation& ref,
                              const std::vector<double>& buffers,
                              const std::string& csv_name) {
  std::cout << figure << ": Performance Envelopes for " << test.display
            << " across buffer sizes\n\n";
  runner::Sweep sweep(csv_name);
  std::vector<runner::CellId> ids;
  for (const double buf : buffers) {
    ids.push_back(sweep.add_conformance(test, ref, default_config(buf)));
  }
  sweep.run();

  CsvWriter csv(csv_path(csv_name),
                {"buffer_bdp", "conformance", "conformance_t", "delta_tput",
                 "delta_delay"});
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto& rep = sweep.conformance_result(ids[i]);
    std::cout << harness::render_pe_plot(
        fmt(buffers[i], 1) + " BDP buffer:  Conf=" + fmt(rep.conformance) +
            "  Conf-T=" + fmt(rep.conformance_t) +
            "  d-tput=" + fmt(rep.delta_tput_mbps) +
            "  d-delay=" + fmt(rep.delta_delay_ms),
        rep.ref_pe, rep.test_pe);
    std::cout << '\n';
    csv.row({buffers[i], rep.conformance, rep.conformance_t,
             rep.delta_tput_mbps, rep.delta_delay_ms});
  }
  std::cout << "CSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
}

} // namespace quicbench::bench
