#pragma once
// Shared plumbing for the per-figure/table bench binaries.
//
// Every bench prints the rows/series of its paper counterpart and writes
// a CSV next to the binary (./bench_out/<name>.csv) that a plotting
// script can consume. Paper-fidelity parameters (120 s runs, 5 trials)
// are the default; set QB_FAST=1 for a quick smoke pass.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "util/csv.h"

namespace quicbench::bench {

inline bool fast_mode() {
  const char* v = std::getenv("QB_FAST");
  return v != nullptr && v[0] == '1';
}

// The paper's default network (§4: representative plots use 10 ms RTT,
// 20 Mbps; fairness experiments use 50 ms RTT).
inline harness::ExperimentConfig default_config(double buffer_bdp,
                                                Rate bw = rate::mbps(20),
                                                Time rtt = time::ms(10)) {
  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = bw;
  cfg.net.base_rtt = rtt;
  cfg.net.buffer_bdp = buffer_bdp;
  if (fast_mode()) {
    cfg.duration = time::sec(30);
    cfg.trials = 2;
  } else {
    cfg.duration = time::sec(120);  // the paper's flow duration
    cfg.trials = 5;                 // the paper's trial count
  }
  return cfg;
}

inline std::string out_dir() {
  std::filesystem::create_directories("bench_out");
  return "bench_out";
}

inline std::string csv_path(const std::string& bench_name) {
  return out_dir() + "/" + bench_name + ".csv";
}

// Reference PEs (reference vs itself) are reused by every implementation
// sharing a CCA and network config: cache them.
class RefPairCache {
 public:
  const harness::PairResult& get(const stacks::Implementation& ref,
                                 const harness::ExperimentConfig& cfg) {
    const std::string key =
        ref.display + "|" + cfg.net.describe() + "|" +
        std::to_string(time::to_sec(cfg.duration)) + "|" +
        std::to_string(cfg.trials) + "|" + std::to_string(cfg.seed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto it = cache_.find(key); it != cache_.end()) return it->second;
    }
    harness::PairResult pr = harness::run_pair(ref, ref, cfg);
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.emplace(key, std::move(pr)).first->second;
  }

 private:
  std::mutex mu_;
  std::map<std::string, harness::PairResult> cache_;
};

// Conformance of `test` given a cached reference pair.
inline conformance::ConformanceReport conformance_cell(
    const stacks::Implementation& test, const stacks::Implementation& ref,
    const harness::ExperimentConfig& cfg, RefPairCache& cache,
    const conformance::PeConfig& pe_cfg = {}) {
  const harness::PairResult& ref_pair = cache.get(ref, cfg);
  const harness::PairResult test_pair = harness::run_pair(test, ref, cfg);
  return conformance::evaluate(ref_pair.points_a, test_pair.points_a,
                               pe_cfg);
}

inline std::string fmt(double v, int precision = 2) {
  return harness::format_double(v, precision);
}

// Shared driver for the "PEs across buffer sizes" figures (7, 8, 9, 10):
// plot the test implementation's PE against the reference PE for each
// buffer depth and report Conf / Conf-T / Δ per panel.
inline void pe_across_buffers(const std::string& figure,
                              const stacks::Implementation& test,
                              const stacks::Implementation& ref,
                              const std::vector<double>& buffers,
                              const std::string& csv_name) {
  std::cout << figure << ": Performance Envelopes for " << test.display
            << " across buffer sizes\n\n";
  RefPairCache cache;
  std::vector<conformance::ConformanceReport> reports(buffers.size());
  harness::parallel_for(static_cast<int>(buffers.size()), [&](int i) {
    const auto cfg = default_config(buffers[static_cast<std::size_t>(i)]);
    reports[static_cast<std::size_t>(i)] =
        conformance_cell(test, ref, cfg, cache);
  });

  CsvWriter csv(csv_path(csv_name),
                {"buffer_bdp", "conformance", "conformance_t", "delta_tput",
                 "delta_delay"});
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto& rep = reports[i];
    std::cout << harness::render_pe_plot(
        fmt(buffers[i], 1) + " BDP buffer:  Conf=" + fmt(rep.conformance) +
            "  Conf-T=" + fmt(rep.conformance_t) +
            "  d-tput=" + fmt(rep.delta_tput_mbps) +
            "  d-delay=" + fmt(rep.delta_delay_ms),
        rep.ref_pe, rep.test_pe);
    std::cout << '\n';
    csv.row({buffers[i], rep.conformance, rep.conformance_t,
             rep.delta_tput_mbps, rep.delta_delay_ms});
  }
  std::cout << "CSV: " << csv.path() << "\n";
}

} // namespace quicbench::bench
