// Figure 12: intra-CCA fairness. Pairwise bandwidth shares for all
// implementations of the same CCA (kernel TCP included) competing over a
// 20 Mbps / 50 ms RTT / 1 BDP bottleneck. Cell (row, col) is the row
// implementation's share T_row / (T_row + T_col).
//
// Expected: the Table 3 deviants (chromium/quiche/xquic CUBIC, mvfst and
// xquic BBR) push rows above 0.5 against conformant peers; neqo rows sit
// far below; lsquic CUBIC shows mild aggression despite its high
// conformance.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

void matrix_for(stacks::CcaType cca, CsvWriter& csv) {
  const auto& reg = stacks::Registry::instance();
  const auto impls = reg.with_cca(cca, /*include_reference=*/true);
  const int n = static_cast<int>(impls.size());

  harness::ExperimentConfig cfg =
      default_config(1.0, rate::mbps(20), time::ms(50));

  // Unordered pairs including self-pairings; shares fill both triangles.
  struct Job {
    int i, j;
  };
  std::vector<Job> jobs;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) jobs.push_back({i, j});
  }
  std::vector<std::vector<double>> share(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), -1));
  harness::parallel_for(static_cast<int>(jobs.size()), [&](int idx) {
    const auto [i, j] = jobs[static_cast<std::size_t>(idx)];
    const auto pr = harness::run_pair(
        *impls[static_cast<std::size_t>(i)],
        *impls[static_cast<std::size_t>(j)], cfg);
    share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
        pr.share_a;
    share[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
        pr.share_b;
  });

  std::vector<std::string> labels;
  for (const auto* impl : impls) labels.push_back(impl->stack);
  std::cout << harness::render_heatmap(
      "Figure 12 (" + stacks::to_string(cca) +
          "): row implementation's bandwidth share vs column",
      labels, labels, share, 7, 2);
  std::cout << '\n';
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      csv.row(std::vector<std::string>{
          stacks::to_string(cca), impls[static_cast<std::size_t>(i)]->stack,
          impls[static_cast<std::size_t>(j)]->stack,
          fmt(share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
              4)});
    }
  }
}

} // namespace

int main() {
  std::cout << "Figure 12: throughput shares for competing implementations "
            << "of the same CCA (20 Mbps, 50 ms RTT, 1 BDP)\n\n";
  CsvWriter csv(csv_path("fig12"), {"cca", "row", "col", "row_share"});
  matrix_for(stacks::CcaType::kCubic, csv);
  matrix_for(stacks::CcaType::kBbr, csv);
  matrix_for(stacks::CcaType::kReno, csv);
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
