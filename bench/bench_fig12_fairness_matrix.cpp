// Figure 12: intra-CCA fairness. Pairwise bandwidth shares for all
// implementations of the same CCA (kernel TCP included) competing over a
// 20 Mbps / 50 ms RTT / 1 BDP bottleneck. Cell (row, col) is the row
// implementation's share T_row / (T_row + T_col).
//
// Expected: the Table 3 deviants (chromium/quiche/xquic CUBIC, mvfst and
// xquic BBR) push rows above 0.5 against conformant peers; neqo rows sit
// far below; lsquic CUBIC shows mild aggression despite its high
// conformance.
//
// All three CCA matrices are scheduled as one runner::Sweep so the
// worker pool stays saturated across matrix boundaries (the old
// per-matrix fan-out drained to a handful of straggler pairs three
// times per run).

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

struct Matrix {
  stacks::CcaType cca;
  std::vector<const stacks::Implementation*> impls;
  // Upper triangle including the diagonal: ids[i][j] for j >= i.
  std::vector<std::vector<runner::CellId>> ids;
};

void render_matrix(const runner::Sweep& sweep, const Matrix& m,
                   CsvWriter& csv) {
  const int n = static_cast<int>(m.impls.size());
  std::vector<std::vector<double>> share(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), -1));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const auto& pr = sweep.pair_result(
          m.ids[static_cast<std::size_t>(i)][static_cast<std::size_t>(j - i)]);
      share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          pr.share_a;
      share[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          pr.share_b;
    }
  }

  std::vector<std::string> labels;
  for (const auto* impl : m.impls) labels.push_back(impl->stack);
  std::cout << harness::render_heatmap(
      "Figure 12 (" + stacks::to_string(m.cca) +
          "): row implementation's bandwidth share vs column",
      labels, labels, share, 7, 2);
  std::cout << '\n';
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      csv.row(std::vector<std::string>{
          stacks::to_string(m.cca), m.impls[static_cast<std::size_t>(i)]->stack,
          m.impls[static_cast<std::size_t>(j)]->stack,
          fmt(share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
              4)});
    }
  }
}

} // namespace

int main() {
  std::cout << "Figure 12: throughput shares for competing implementations "
            << "of the same CCA (20 Mbps, 50 ms RTT, 1 BDP)\n\n";

  const auto& reg = stacks::Registry::instance();
  const harness::ExperimentConfig cfg =
      default_config(1.0, rate::mbps(20), time::ms(50));

  runner::Sweep sweep("fig12");
  std::vector<Matrix> matrices;
  for (const auto cca : {stacks::CcaType::kCubic, stacks::CcaType::kBbr,
                         stacks::CcaType::kReno}) {
    Matrix m;
    m.cca = cca;
    m.impls = reg.with_cca(cca, /*include_reference=*/true);
    const int n = static_cast<int>(m.impls.size());
    // Unordered pairs including self-pairings; shares fill both triangles.
    for (int i = 0; i < n; ++i) {
      std::vector<runner::CellId> row;
      for (int j = i; j < n; ++j) {
        row.push_back(sweep.add_pair(*m.impls[static_cast<std::size_t>(i)],
                                     *m.impls[static_cast<std::size_t>(j)],
                                     cfg));
      }
      m.ids.push_back(std::move(row));
    }
    matrices.push_back(std::move(m));
  }
  sweep.run();

  CsvWriter csv(csv_path("fig12"), {"cca", "row", "col", "row_share"});
  for (const auto& m : matrices) render_matrix(sweep, m, csv);
  std::cout << "CSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
