// Figure 4: determining k, the number of clusters for a Performance
// Envelope. R(k) — the share of data points retained inside the
// cross-trial-intersected PE (IOU) — is strictly decreasing in k and
// drops most steeply right after the "natural" number of clusters; the k
// before the steepest drop is selected.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto cfg = default_config(1.0);
  std::cout << "Figure 4: IOU-based selection of k (" << cfg.net.describe()
            << ")\n\n";

  CsvWriter csv(csv_path("fig04"), {"cca", "k", "iou"});
  for (const auto cca : {stacks::CcaType::kBbr, stacks::CcaType::kCubic,
                         stacks::CcaType::kReno}) {
    const auto& ref = reg.reference(cca);
    const auto pair = harness::run_pair(ref, ref, cfg);
    conformance::PeConfig pe_cfg;
    pe_cfg.max_k = 8;
    const auto curve = conformance::iou_curve(pair.points_a, pe_cfg);
    const int k = conformance::select_k(curve);

    std::cout << ref.display << ":\n  k : ";
    for (std::size_t i = 0; i < curve.size(); ++i) {
      std::cout << i + 1 << "      ";
    }
    std::cout << "\n  R : ";
    for (const double r : curve) std::cout << fmt(r) << "   ";
    std::cout << "\n  selected k = " << k << "\n\n";
    for (std::size_t i = 0; i < curve.size(); ++i) {
      csv.row(std::vector<std::string>{stacks::to_string(cca),
                                       std::to_string(i + 1),
                                       fmt(curve[i], 4)});
    }
  }
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
