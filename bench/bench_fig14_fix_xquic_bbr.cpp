// Figure 14: xquic BBR's conformance before and after reducing its cwnd
// gain from 2.5 to the RFC-recommended 2 (a 2-line fix, Table 4).
// Expected: a modest but clear improvement in conformance, with Δ-tput
// moving toward 0.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* broken = reg.find("xquic", stacks::CcaType::kBbr);
  const auto fixed = stacks::fixed_variant(*broken);
  const auto& ref = reg.reference(stacks::CcaType::kBbr);

  const auto cfg = default_config(1.0);
  std::cout << "Figure 14: fixing xquic BBR (cwnd gain 2.5 -> 2.0), "
            << cfg.net.describe() << "\n\n";

  RefPairCache cache;
  cache.get(ref, cfg);
  conformance::ConformanceReport before, after;
  runner::parallel_for(2, [&](int i) {
    if (i == 0) before = conformance_cell(*broken, ref, cfg, cache);
    else after = conformance_cell(*fixed, ref, cfg, cache);
  });

  for (const auto* rep : {&before, &after}) {
    std::cout << harness::render_pe_plot(
        std::string(rep == &before ? "(a) original (cwnd gain 2.5)"
                                   : "(b) modified (cwnd gain 2.0)") +
            ":  Conf=" + fmt(rep->conformance) +
            "  Conf-T=" + fmt(rep->conformance_t) +
            "  d-tput=" + fmt(rep->delta_tput_mbps),
        rep->ref_pe, rep->test_pe);
    std::cout << '\n';
  }
  std::cout << "conformance before = " << fmt(before.conformance)
            << ", after = " << fmt(after.conformance) << "\n";

  CsvWriter csv(csv_path("fig14"),
                {"variant", "conformance", "conformance_t", "delta_tput",
                 "delta_delay"});
  csv.row(std::vector<std::string>{"original", fmt(before.conformance, 4),
                                   fmt(before.conformance_t, 4),
                                   fmt(before.delta_tput_mbps, 4),
                                   fmt(before.delta_delay_ms, 4)});
  csv.row(std::vector<std::string>{"fixed", fmt(after.conformance, 4),
                                   fmt(after.conformance_t, 4),
                                   fmt(after.delta_tput_mbps, 4),
                                   fmt(after.delta_delay_ms, 4)});
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
