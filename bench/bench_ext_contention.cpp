// Extension (§6, "beyond 1-vs-1"): conformance under contention. The
// paper certifies implementations in a 2-flow dumbbell; here the test
// flow instead shares the bottleneck with K reference competitors —
// one long-lived anchor plus K-1 churning flows (Poisson arrivals,
// heavy-tailed sizes) — for K in {1, 4, 16, 64, 256}. The reference PE
// comes from the same scenario with the reference implementation swapped
// into the test position, so per-K conformance asks: does this
// implementation behave like the reference *in this crowd*? Jain's index
// and churn telemetry come along from the scenario engine.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

// 1 probe flow + K reference competitors. The anchor competitor starts
// with the probe (K = 1 reduces to the classic pair layout); the K-1
// churned flows arrive as a Poisson process paced so the last arrives
// around 60% of the run, each carrying a bounded-Pareto flow size.
harness::ScenarioConfig contention_scenario(
    const stacks::Implementation& probe, const stacks::Implementation& ref,
    int k, const harness::ExperimentConfig& base) {
  harness::ScenarioConfig sc;
  sc.net = base.net;
  sc.duration = base.duration;
  sc.trials = base.trials;
  sc.seed = base.seed;
  sc.sampling = base.sampling;
  sc.fairness_window = time::sec(5);

  harness::FlowSpec test;
  test.impl = probe;
  test.role = harness::FlowRole::kTest;
  sc.flows.push_back(test);

  harness::FlowSpec anchor;
  anchor.impl = ref;
  anchor.role = harness::FlowRole::kReference;
  anchor.start_spread = base.start_spread;
  sc.flows.push_back(anchor);

  const double dur_sec = time::to_sec(sc.duration);
  for (int i = 1; i < k; ++i) {
    harness::FlowSpec churned;
    churned.impl = ref;
    churned.role = harness::FlowRole::kBackground;
    churned.arrival_rate = static_cast<double>(k - 1) / (0.6 * dur_sec);
    churned.sample_size = true;
    sc.flows.push_back(churned);
  }
  if (k > 1) {
    sc.size_dist.shape = 1.2;
    sc.size_dist.min_bytes = Bytes{2} << 20;   // 2 MiB
    sc.size_dist.max_bytes = Bytes{64} << 20;  // 64 MiB
  }
  return sc;
}

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kCubic);
  const std::vector<const stacks::Implementation*> tests{
      reg.find("quiche", stacks::CcaType::kCubic),
      reg.find("mvfst", stacks::CcaType::kBbr),
      // The most deviant BBRv2 profile (no cruise headroom, 5% loss
      // threshold): does its 1-vs-1 score survive a crowd?
      reg.find("xquic", stacks::CcaType::kBbr2),
  };
  std::vector<int> ks{1, 4, 16, 64, 256};
  if (fast_mode()) ks = {1, 4, 16};

  const harness::ExperimentConfig base = default_config(1.0);

  std::cout << "Conformance under contention (20 Mbps, 10 ms RTT, 1 BDP; "
               "1 test flow vs K kernel-CUBIC competitors with churn)\n\n";

  runner::Sweep sweep("ext_contention");
  struct Row {
    const stacks::Implementation* test;
    int k;
    runner::CellId cell;
  };
  std::vector<Row> rows;
  for (const auto* t : tests) {
    for (const int k : ks) {
      rows.push_back(
          {t, k,
           sweep.add_scenario_conformance(
               contention_scenario(*t, ref, k, base),
               contention_scenario(ref, ref, k, base))});
    }
  }
  sweep.run();

  CsvWriter csv(csv_path("ext_contention"),
                {"test", "k", "conformance", "conformance_t", "delta_tput",
                 "delta_delay", "test_jain", "test_share",
                 "peak_concurrent", "arrivals", "departures"});
  std::vector<std::vector<std::string>> table;
  for (const Row& row : rows) {
    const auto& rep = sweep.conformance_result(row.cell);
    const harness::ScenarioResult& sr = sweep.scenario_result(row.cell);
    const harness::ScenarioFlowSummary& probe = sr.flows[0];
    table.push_back({row.test->display, std::to_string(row.k),
                     fmt(rep.conformance), fmt(rep.conformance_t),
                     fmt(sr.jain_overall), fmt(probe.share),
                     std::to_string(sr.churn.peak_concurrent)});
    csv.row(std::vector<std::string>{
        row.test->display, std::to_string(row.k), fmt(rep.conformance, 4),
        fmt(rep.conformance_t, 4), fmt(rep.delta_tput_mbps, 3),
        fmt(rep.delta_delay_ms, 3), fmt(sr.jain_overall, 4),
        fmt(probe.share, 4), std::to_string(sr.churn.peak_concurrent),
        fmt(sr.churn.arrivals, 1), fmt(sr.churn.departures, 1)});
  }
  std::cout << harness::render_table(
      {"test", "K", "Conf", "Conf-T", "Jain", "test share", "peak flows"},
      table);
  std::cout << "\nExpected: conformance measured 1-vs-1 is not stable "
               "under contention — scores drift as K grows and the "
               "bottleneck share per flow shrinks.\nCSV: "
            << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
