// Figure 11: conformance "in the wild". The paper ran the senders on AWS
// against lab receivers, capped at 100 Mbps with the RTT held at 50 ms
// via Mahimahi. We emulate the wide-area path with heavier jitter and
// on/off cross traffic at the bottleneck.
//
// Expected: the per-implementation conformance pattern resembles the
// 1 BDP shallow-buffer testbed results (Fig 6b) — the paper's takeaway.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

harness::ExperimentConfig wild_config() {
  harness::ExperimentConfig cfg =
      default_config(1.0, rate::mbps(100), time::ms(50));
  cfg.net.path_jitter = time::ms(2);
  cfg.net.cross_traffic_rate = rate::mbps(8);
  cfg.net.cross_on = time::ms(300);
  cfg.net.cross_off = time::ms(700);
  if (fast_mode()) {
    cfg.duration = time::sec(20);
    cfg.trials = 2;
  } else {
    cfg.duration = time::sec(60);  // 100 Mbps runs are 5x the event load
    cfg.trials = 5;
  }
  return cfg;
}

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  const std::vector<stacks::CcaType> ccas{
      stacks::CcaType::kCubic, stacks::CcaType::kBbr, stacks::CcaType::kReno};

  const auto cfg = wild_config();
  std::cout << "Figure 11: conformance on an emulated wide-area path "
            << "(100 Mbps cap, 50 ms RTT, jitter + cross traffic)\n\n";

  struct Cell {
    const stacks::Implementation* impl;
    runner::CellId id = -1;
  };
  std::vector<Cell> cells;
  for (const auto cca : ccas) {
    for (const auto* impl : reg.with_cca(cca, false)) cells.push_back({impl});
  }

  runner::Sweep sweep("fig11");
  for (auto& cell : cells) {
    cell.id =
        sweep.add_conformance(*cell.impl, reg.reference(cell.impl->cca), cfg);
  }
  sweep.run();

  CsvWriter csv(csv_path("fig11"), {"stack", "cca", "conformance"});
  std::vector<std::string> labels;
  std::vector<std::vector<double>> values;
  for (const auto& cell : cells) {
    const double conf = sweep.conformance_result(cell.id).conformance;
    labels.push_back(cell.impl->display);
    values.push_back({conf});
    csv.row(std::vector<std::string>{cell.impl->stack,
                                     stacks::to_string(cell.impl->cca),
                                     fmt(conf, 4)});
  }
  std::cout << harness::render_heatmap("conformance in the wild", labels,
                                       {"conf"}, values);
  std::cout << "\nCSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
