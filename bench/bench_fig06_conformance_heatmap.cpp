// Figure 6: conformance of every (stack, CCA) implementation against its
// kernel reference, in deep (5 BDP) and shallow (1 BDP) buffers at
// 10 ms RTT / 20 Mbps.
//
// Expected shape: most implementations conformant (> 0.5) at 1 BDP with
// the Table 3 deviants in the red zone; everything substantially worse at
// 5 BDP.
//
// Runs as a single runner::Sweep: the per-(cca, buffer) reference
// self-pairs are deduplicated by fingerprint and all trials are
// scheduled over one worker pool; a second run with a warm
// bench_out/cache/ performs no simulations at all.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const std::vector<stacks::CcaType> ccas{
      stacks::CcaType::kCubic, stacks::CcaType::kBbr, stacks::CcaType::kReno};

  // Collect all QUIC implementations, grouped by CCA.
  struct Cell {
    const stacks::Implementation* impl;
    double buffer_bdp;
    runner::CellId id = -1;
  };
  std::vector<Cell> cells;
  for (const double buf : {5.0, 1.0}) {
    for (const auto cca : ccas) {
      for (const auto* impl : reg.with_cca(cca, /*include_reference=*/false)) {
        cells.push_back({impl, buf});
      }
    }
  }

  runner::Sweep sweep("fig06");
  for (auto& cell : cells) {
    cell.id = sweep.add_conformance(*cell.impl, reg.reference(cell.impl->cca),
                                    default_config(cell.buffer_bdp));
  }
  sweep.run();

  CsvWriter csv(csv_path("fig06"),
                {"stack", "cca", "buffer_bdp", "conformance"});
  for (const double buf : {5.0, 1.0}) {
    std::vector<std::string> row_labels;
    std::vector<std::vector<double>> values;
    for (const auto cca : ccas) {
      for (const auto* impl : reg.with_cca(cca, false)) {
        double conf = -1;
        for (const auto& cell : cells) {
          if (cell.impl == impl && cell.buffer_bdp == buf) {
            conf = sweep.conformance_result(cell.id).conformance;
          }
        }
        row_labels.push_back(impl->display);
        values.push_back({conf});
        csv.row(std::vector<std::string>{impl->stack,
                                         stacks::to_string(cca),
                                         fmt(buf, 1), fmt(conf, 4)});
      }
    }
    std::cout << harness::render_heatmap(
        "Figure 6" + std::string(buf == 5.0 ? "a" : "b") + ": conformance, " +
            fmt(buf, 1) + " BDP buffer (10 ms RTT, 20 Mbps)",
        row_labels, {"conf"}, values);
    std::cout << '\n';
  }
  std::cout << "CSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
