// Figure 5: Conformance and Conformance-T for modified kernel BBR with
// cwnd gain swept from 1.0 to 4.0 (vanilla kernel BBR uses 2.0).
//
// Expected shape: both metrics peak at gain 2.0; Conformance decays as
// the gain moves away while Conformance-T stays comparatively high —
// demonstrating that Conformance-T is robust to pure parameter shifts.
// Δ-tput and Δ-delay should both grow with the gain (more packets in
// flight -> more throughput share and more queueing).

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kBbr);
  const std::vector<double> gains{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};

  const harness::ExperimentConfig cfg = default_config(3.0);  // deep enough for cwnd-gain differences to show as standing queue
  std::cout << "Figure 5: conformance of modified kernel BBR vs cwnd gain "
            << "(" << cfg.net.describe() << ")\n\n";

  RefPairCache cache;
  cache.get(ref, cfg);
  std::vector<conformance::ConformanceReport> reports(gains.size());
  runner::parallel_for(static_cast<int>(gains.size()), [&](int i) {
    const auto modified =
        stacks::modified_kernel_bbr(gains[static_cast<std::size_t>(i)]);
    reports[static_cast<std::size_t>(i)] =
        conformance_cell(modified, ref, cfg, cache);
  });

  CsvWriter csv(csv_path("fig05"),
                {"cwnd_gain", "conformance", "conformance_t", "delta_tput",
                 "delta_delay"});
  std::vector<std::vector<std::string>> table;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    const auto& rep = reports[i];
    table.push_back({fmt(gains[i], 1), fmt(rep.conformance),
                     fmt(rep.conformance_t), fmt(rep.delta_tput_mbps),
                     fmt(rep.delta_delay_ms)});
    csv.row({gains[i], rep.conformance, rep.conformance_t,
             rep.delta_tput_mbps, rep.delta_delay_ms});
  }
  std::cout << harness::render_table(
      {"cwnd gain", "Conf", "Conf-T", "d-tput (Mbps)", "d-delay (ms)"},
      table);
  std::cout << "\nCSV: " << csv.path() << "\n";
  return 0;
}
