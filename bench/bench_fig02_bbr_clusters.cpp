// Figure 2: kernel TCP BBR's Performance Envelope has two natural
// clusters, corresponding to the ProbeBW phase (high throughput, higher
// delay) and the ProbeRTT phase (throughput dips while draining).
//
// Expected: the k-selection picks k = 2 and the two cluster centroids are
// separated primarily along the throughput axis.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kBbr);

  harness::ExperimentConfig cfg = default_config(1.0);
  std::cout << "Figure 2: natural clusters of kernel BBR's PE ("
            << cfg.net.describe() << ")\n\n";

  const auto pair = harness::run_pair(ref, ref, cfg);
  const auto curve = conformance::iou_curve(pair.points_a);
  const int k = conformance::select_k(curve);
  const auto pe = conformance::build_pe_fixed_k(pair.points_a, k);

  std::cout << "R(k): ";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::cout << "k=" << i + 1 << ":" << fmt(curve[i]) << "  ";
  }
  std::cout << "\nselected k = " << k << "\n\n";
  std::cout << harness::render_pe_plot("kernel BBR PE (self-competition)",
                                       pe, conformance::PerformanceEnvelope{});
  std::cout << "\nclusters:\n";
  for (const auto& c : pe.cluster_centroids) {
    std::cout << "  (" << fmt(c.x) << " ms, " << fmt(c.y) << " Mbps)\n";
  }

  CsvWriter csv(csv_path("fig02"), {"delay_ms", "tput_mbps"});
  for (const auto& p : pe.all_points) csv.row({p.x, p.y});
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
