// Extension (§6, "Comparing Fairly Across Different CCAs"): the paper's
// conformance pipeline runs each implementation against its *own* kernel
// reference, so PEs are only comparable within a CCA. The proposed
// extension runs every implementation against the same standard
// background flow (kernel CUBIC — the dominant CCA on today's Internet)
// so the envelopes of *different* CCAs share a basis.
//
// For each implementation we report the PE centroid (its operating point
// against the common background) and its overlap with the kernel
// implementation of its own CCA measured on the same basis.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& background = reg.reference(stacks::CcaType::kCubic);

  harness::ExperimentConfig cfg = default_config(1.0);
  std::cout << "Common-background conformance (background flow = kernel "
               "CUBIC, "
            << cfg.net.describe() << ")\n\n";

  // Pre-compute the per-CCA kernel PEs on the common basis.
  struct Basis {
    stacks::CcaType cca;
    conformance::PerformanceEnvelope pe;
  };
  std::vector<Basis> bases;
  for (const auto cca : {stacks::CcaType::kCubic, stacks::CcaType::kBbr,
                         stacks::CcaType::kReno}) {
    const auto pair = harness::run_pair(reg.reference(cca), background, cfg);
    bases.push_back({cca, conformance::build_pe(pair.points_a)});
  }
  const auto basis_for = [&](stacks::CcaType cca)
      -> const conformance::PerformanceEnvelope& {
    for (const auto& b : bases) {
      if (b.cca == cca) return b.pe;
    }
    return bases.front().pe;
  };

  CsvWriter csv(csv_path("ext_common_reference"),
                {"impl", "cca", "centroid_delay_ms", "centroid_tput_mbps",
                 "conf_vs_own_kernel_on_common_basis"});
  std::vector<std::vector<std::string>> table;
  for (const auto& impl : reg.all()) {
    if (impl.is_reference) continue;
    const auto pair = harness::run_pair(impl, background, cfg);
    const auto pe = conformance::build_pe(pair.points_a);
    const double conf = conformance::conformance(basis_for(impl.cca), pe);
    const geom::Point c = geom::points_centroid(pe.all_points);
    table.push_back({impl.display, fmt(c.x) + " ms", fmt(c.y) + " Mbps",
                     fmt(conf)});
    csv.row(std::vector<std::string>{impl.display,
                                     stacks::to_string(impl.cca),
                                     fmt(c.x, 4), fmt(c.y, 4),
                                     fmt(conf, 4)});
  }
  std::cout << harness::render_table(
      {"Implementation", "centroid delay", "centroid tput",
       "conf vs own kernel (common basis)"},
      table);
  std::cout << "\nOn the common basis, different CCAs' envelopes are "
               "directly comparable: BBR implementations cluster at lower "
               "delay than CUBIC ones, and the Table 3 deviants remain "
               "outliers within their CCA group.\nCSV: "
            << csv.path() << "\n";
  return 0;
}
