// Extension (§4.1 caveat): the paper normalizes buffers by the BDP over
// "relatively stable network profiles" and explicitly warns the trend
// "may not hold in networks with highly volatile bandwidth variations,
// like 5G networks". With the Mahimahi-style trace-driven bottleneck we
// can test exactly that: conformance of representative implementations
// over (a) a constant-rate delivery trace (sanity: matches the fixed
// link) and (b) a volatile random-walk trace with the same average rate.

#include "bench_common.h"
#include "netsim/tracelink.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  struct Target {
    const char* stack;
    stacks::CcaType cca;
  };
  const std::vector<Target> targets{
      {"msquic", stacks::CcaType::kCubic},   // conformant baseline
      {"quiche", stacks::CcaType::kCubic},   // deviant
      {"mvfst", stacks::CcaType::kBbr},      // deviant (rate-based)
      {"chromium", stacks::CcaType::kBbr},   // conformant (rate-based)
  };

  // 20 Mbps average in both regimes.
  Rng trace_rng(2024);
  const auto stable = netsim::traces::constant_rate(rate::mbps(20));
  const auto volatile_trace = netsim::traces::random_walk(
      rate::mbps(6), rate::mbps(40), time::ms(200), time::sec(4), trace_rng);
  const double volatile_mbps = rate::to_mbps(
      rate_of(static_cast<Bytes>(volatile_trace.size()) * 1500,
              time::sec(4)));

  std::cout << "Conformance under volatile bandwidth (trace-driven "
               "bottleneck, 10 ms RTT, 1 BDP buffer)\n"
            << "volatile trace average: " << fmt(volatile_mbps)
            << " Mbps\n\n";

  CsvWriter csv(csv_path("ext_variable_bw"),
                {"impl", "regime", "conformance", "conformance_t",
                 "delta_tput"});
  std::vector<std::vector<std::string>> table;
  for (const auto& t : targets) {
    const auto* impl = reg.find(t.stack, t.cca);
    const auto& ref = reg.reference(t.cca);
    for (const bool volatile_bw : {false, true}) {
      harness::ExperimentConfig cfg = default_config(1.0);
      if (!fast_mode()) {
        cfg.duration = time::sec(60);
        cfg.trials = 3;
      }
      cfg.net.trace_opportunities = volatile_bw ? volatile_trace : stable;
      cfg.net.trace_period = volatile_bw ? time::sec(4) : time::sec(1);
      cfg.net.bandwidth =
          volatile_bw ? rate::mbps(volatile_mbps) : rate::mbps(20);

      const auto ref_pair = harness::run_pair(ref, ref, cfg);
      const auto test_pair = harness::run_pair(*impl, ref, cfg);
      const auto rep =
          conformance::evaluate(ref_pair.points_a, test_pair.points_a);
      const char* regime = volatile_bw ? "volatile" : "stable";
      table.push_back({impl->display, regime, fmt(rep.conformance),
                       fmt(rep.conformance_t), fmt(rep.delta_tput_mbps)});
      csv.row(std::vector<std::string>{impl->display, regime,
                                       fmt(rep.conformance, 4),
                                       fmt(rep.conformance_t, 4),
                                       fmt(rep.delta_tput_mbps, 4)});
    }
  }
  std::cout << harness::render_table(
      {"Implementation", "regime", "Conf", "Conf-T", "d-tput"}, table);
  std::cout << "\nExpected: stable-trace results match the fixed-link "
               "heatmap; under volatile bandwidth even conformant "
               "implementations lose conformance (the paper's caveat) "
               "while the deviants' ordering is preserved.\nCSV: "
            << csv.path() << "\n";
  return 0;
}
