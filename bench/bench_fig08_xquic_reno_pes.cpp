// Figure 8: Performance Envelopes for xquic Reno across buffer sizes —
// the sole non-conformant Reno implementation; the CCA itself is
// compliant, the offset comes from the stack (send-loop batching and
// conservative pacing), so expect a translated-but-similar PE
// (high Conformance-T, negative Δ-tput / Δ-delay).

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* impl = reg.find("xquic", stacks::CcaType::kReno);
  pe_across_buffers("Figure 8 (xquic Reno)", *impl,
                    reg.reference(stacks::CcaType::kReno),
                    {0.5, 1.0, 3.0, 5.0}, "fig08_xquic_reno");
  return 0;
}
