// Figure 13: different implementations of CUBIC and BBR competing, in
// shallow (1 BDP) and deep (5 BDP) buffers. Cell value = the BBR
// implementation's bandwidth share (1.0 means BBR starves CUBIC).
//
// Expected (classic inter-CCA results): BBR columns win nearly everywhere
// in shallow buffers; CUBIC rows win in deep buffers — except that the
// low-conformance implementations subvert this: xquic CUBIC holds its own
// against BBR even in shallow buffers, and xquic/mvfst BBR beat CUBIC
// even in deep buffers.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto cubics = reg.with_cca(stacks::CcaType::kCubic, true);
  const auto bbrs = reg.with_cca(stacks::CcaType::kBbr, true);

  std::cout << "Figure 13: CUBIC (rows) vs BBR (columns) — cell = BBR's "
            << "bandwidth share (20 Mbps, 50 ms RTT)\n\n";
  CsvWriter csv(csv_path("fig13"),
                {"buffer_bdp", "cubic", "bbr", "bbr_share"});

  // Both buffer depths go into one sweep so every trial shares the pool.
  const int nc = static_cast<int>(cubics.size());
  const int nb = static_cast<int>(bbrs.size());
  runner::Sweep sweep("fig13");
  std::vector<std::vector<runner::CellId>> ids;  // [buffer][i * nb + j]
  for (const double buf : {1.0, 5.0}) {
    harness::ExperimentConfig cfg =
        default_config(buf, rate::mbps(20), time::ms(50));
    std::vector<runner::CellId> per_buf;
    for (int i = 0; i < nc; ++i) {
      for (int j = 0; j < nb; ++j) {
        per_buf.push_back(sweep.add_pair(*bbrs[static_cast<std::size_t>(j)],
                                         *cubics[static_cast<std::size_t>(i)],
                                         cfg));
      }
    }
    ids.push_back(std::move(per_buf));
  }
  sweep.run();

  std::size_t buf_idx = 0;
  for (const double buf : {1.0, 5.0}) {
    std::vector<std::vector<double>> share(
        static_cast<std::size_t>(nc),
        std::vector<double>(static_cast<std::size_t>(nb), -1));
    for (int i = 0; i < nc; ++i) {
      for (int j = 0; j < nb; ++j) {
        share[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            sweep.pair_result(ids[buf_idx][static_cast<std::size_t>(i * nb + j)])
                .share_a;  // the BBR flow's share
      }
    }
    ++buf_idx;

    std::vector<std::string> rows, cols;
    for (const auto* c : cubics) rows.push_back(c->stack);
    for (const auto* b : bbrs) cols.push_back(b->stack);
    std::cout << harness::render_heatmap(
        "(" + std::string(buf == 1.0 ? "a" : "b") + ") " + fmt(buf, 0) +
            " BDP buffer — BBR share per cell",
        rows, cols, share);
    std::cout << '\n';
    for (int i = 0; i < nc; ++i) {
      for (int j = 0; j < nb; ++j) {
        csv.row(std::vector<std::string>{
            fmt(buf, 1), cubics[static_cast<std::size_t>(i)]->stack,
            bbrs[static_cast<std::size_t>(j)]->stack,
            fmt(share[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)],
                4)});
      }
    }
  }
  std::cout << "CSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
