// Hot-path attribution probe: where do the cycles of a canonical
// conformance trial go, per CCA?
//
// Runs one canonical trial (kernel reference vs itself, paper-default
// 1 BDP network) for Reno, CUBIC and BBR under the obs/attrib.h scope
// instrumentation and reports the per-scope cycle breakdown — the tool
// for answering "why is trial_bbr 3x slower than trial_cubic" with a
// subsystem name and a per-event cost instead of a guess.
//
// Requires a build configured with -DQB_ATTRIB=ON (the instrumentation
// sites compile away otherwise); exits 1 with a pointer at the CMake
// option when run from a default build. Honors QB_FAST=1 (30 s trials).
//
// Cycles are raw read_timestamp() ticks (TSC on x86-64); each trial's
// root cycles are calibrated against its wall-clock time, so the JSON
// carries both tick counts and derived seconds. Unlike the BENCH_engine
// numbers this is not a regression-gated throughput probe — wall time
// here includes the instrumentation overhead by construction.
//
// Output: a per-CCA table on stdout and bench_out/BENCH_attrib.json
// (schema quicbench.bench.attrib/v1, summarized by
// scripts/summarize_attrib.py).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/attrib.h"
#include "obs/run_options.h"
#include "runner/env.h"
#include "stacks/registry.h"
#include "util/json.h"
#include "util/units.h"

namespace quicbench {
namespace {

struct AttribTrial {
  std::string name;
  std::string cca;
  std::uint64_t events = 0;
  double wall_sec = 0;
  obs::attrib::Report report;
};

AttribTrial run_attributed_trial(const std::string& name,
                                 stacks::CcaType cca) {
  const auto& ref = stacks::Registry::instance().reference(cca);
  harness::ExperimentConfig cfg = runner::default_config(1.0);
  cfg.duration = runner::fast_mode() ? time::sec(30) : time::sec(120);
  cfg.trials = 1;

  AttribTrial t;
  t.name = name;
  t.cca = ref.make_cca()->name();

  obs::attrib::reset_thread();
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::attrib::ScopeTimer root(obs::attrib::Scope::kTrial);
    const harness::TrialResult r = harness::run_trial(ref, ref, cfg, 0);
    t.events = r.sim_events;
  }
  t.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  t.report = obs::attrib::thread_report();
  return t;
}

void print_trial(const AttribTrial& t) {
  const double total = static_cast<double>(t.report.total_cycles());
  std::printf("\n%s (%s): %llu events in %.2fs, coverage %.1f%%\n",
              t.name.c_str(), t.cca.c_str(),
              static_cast<unsigned long long>(t.events), t.wall_sec,
              100 * t.report.coverage());
  std::printf("  %-16s %14s %12s %8s %12s\n", "scope", "calls",
              "excl_ms", "excl_%", "ns/call");
  const double sec_per_cycle = total > 0 ? t.wall_sec / total : 0;
  for (std::size_t s = 0; s < obs::attrib::kScopeCount; ++s) {
    const obs::attrib::Report::Row& row = t.report.rows[s];
    if (row.calls == 0) continue;
    const double excl_sec =
        static_cast<double>(row.exclusive_cycles()) * sec_per_cycle;
    const double incl_sec =
        static_cast<double>(row.cycles) * sec_per_cycle;
    std::printf(
        "  %-16s %14llu %12.1f %8.1f %12.1f\n",
        std::string(obs::attrib::scope_name(
                        static_cast<obs::attrib::Scope>(s)))
            .c_str(),
        static_cast<unsigned long long>(row.calls), excl_sec * 1e3,
        total > 0 ? 100 * static_cast<double>(row.exclusive_cycles()) /
                        total
                  : 0,
        incl_sec * 1e9 / static_cast<double>(row.calls));
  }
}

void write_json(const std::vector<AttribTrial>& trials,
                const std::string& path) {
  JsonWriter j;
  j.begin_object();
  j.kv("schema", "quicbench.bench.attrib/v1");
  j.kv("compiled_in", obs::attrib::compiled_in());
  j.kv("timer", std::string(obs::attrib::timer_kind()));
  j.key("trials").begin_array();
  for (const AttribTrial& t : trials) {
    const double total = static_cast<double>(t.report.total_cycles());
    const double cycles_per_sec = t.wall_sec > 0 ? total / t.wall_sec : 0;
    j.begin_object();
    j.kv("name", t.name);
    j.kv("cca", t.cca);
    j.kv("events", static_cast<std::uint64_t>(t.events));
    j.kv("wall_sec", t.wall_sec);
    j.kv("events_per_sec",
         t.wall_sec > 0 ? static_cast<double>(t.events) / t.wall_sec : 0);
    j.kv("cycles_per_sec", cycles_per_sec);
    j.kv("coverage", t.report.coverage());
    j.key("scopes").begin_array();
    for (std::size_t s = 0; s < obs::attrib::kScopeCount; ++s) {
      const obs::attrib::Report::Row& row = t.report.rows[s];
      if (row.calls == 0) continue;
      const double excl = static_cast<double>(row.exclusive_cycles());
      j.begin_object();
      j.kv("scope", std::string(obs::attrib::scope_name(
                        static_cast<obs::attrib::Scope>(s))));
      j.kv("calls", row.calls);
      j.kv("cycles", row.cycles);
      j.kv("excl_cycles", row.exclusive_cycles());
      j.kv("excl_sec", cycles_per_sec > 0 ? excl / cycles_per_sec : 0);
      j.kv("excl_frac", total > 0 ? excl / total : 0);
      // Inclusive cost per entry into the scope, in nanoseconds.
      j.kv("ns_per_call",
           cycles_per_sec > 0
               ? static_cast<double>(row.cycles) / cycles_per_sec * 1e9 /
                     static_cast<double>(row.calls)
               : 0);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::ofstream out(path, std::ios::trunc);
  out << j.str() << '\n';
}

} // namespace
} // namespace quicbench

int main() {
  using namespace quicbench;

  if (!obs::attrib::compiled_in()) {
    std::fprintf(stderr,
                 "bench_attrib: this build carries no attribution "
                 "instrumentation; reconfigure with -DQB_ATTRIB=ON\n");
    return 1;
  }

  // Measure the datapath, not the invariant checker; force the runtime
  // attribution gate on regardless of the QB_ATTRIB env override.
  obs::RunOptions opts = obs::RunOptions::from_env();
  opts.invariants = false;
  opts.attrib = true;
  obs::RunOptions::set_current(opts);

  std::vector<AttribTrial> trials;
  trials.push_back(run_attributed_trial("trial_reno", stacks::CcaType::kReno));
  trials.push_back(
      run_attributed_trial("trial_cubic", stacks::CcaType::kCubic));
  trials.push_back(run_attributed_trial("trial_bbr", stacks::CcaType::kBbr));
  trials.push_back(
      run_attributed_trial("trial_bbr2", stacks::CcaType::kBbr2));

  std::printf("bench_attrib: hot-path cycle attribution (%s)\n",
              std::string(obs::attrib::timer_kind()).c_str());
  for (const AttribTrial& t : trials) print_trial(t);

  const std::string path = runner::out_dir() + "/BENCH_attrib.json";
  write_json(trials, path);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
