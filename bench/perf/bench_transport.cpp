// Transport-datapath microbenchmarks: a SenderEndpoint and a
// ReceiverEndpoint connected back-to-back over fixed-delay wires (no
// Link, no harness), isolating the ACK/loss scoreboard — the SentLog
// SoA ring, the intrusive unresolved list, interval ACK processing and
// time-threshold loss detection — from the rest of the stack. Three
// ACK-stream shapes:
//
//   transport_clean    in-order delivery, cumulative single-range ACKs:
//                      the pure ack_pn / compact_sent_log fast path;
//   transport_lossy    deterministic drops: gaps, multi-range ACKs,
//                      packet/time-threshold losses, retransmissions;
//   transport_reorder  deterministic late packets (no drops): gap ACKs
//                      that heal, spurious-loss rollbacks, RACK
//                      reorder-threshold adaptation.
//
// The work metric folds the simulator's fired-event count with the
// sender's packet ledger (sent/lost/spurious/retx), all exact functions
// of integer simulated time and fixed seeds — bit-identical across
// runs and machines, so check_perf.py gates on it exactly.
//
// Output: a table on stdout and bench_out/BENCH_transport.json
// (schema quicbench.bench.transport/v1).

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cca/cubic.h"
#include "netsim/event.h"
#include "netsim/packet.h"
#include "obs/run_options.h"
#include "runner/env.h"
#include "transport/receiver.h"
#include "transport/sender.h"
#include "util/rng.h"
#include "util/units.h"

namespace quicbench {
namespace {

using benchutil::BenchResult;
using benchutil::timed;
using netsim::Packet;
using netsim::PacketKind;
using netsim::Simulator;

// One-way wire with a fixed propagation delay plus deterministic
// impairments: drop every `drop_every`-th packet, delay every
// `late_every`-th packet by `late_extra` (overtaking = reordering).
// Packets are parked in a pooled slot so the scheduled closure captures
// only {this, slot} and stays inline in the event entry.
class Wire : public netsim::PacketSink {
 public:
  Wire(Simulator& sim, Time delay) : sim_(sim), delay_(delay) {}

  void connect(netsim::PacketSink* dst) { dst_ = dst; }
  void set_drop_every(std::uint64_t n) { drop_every_ = n; }
  void set_late(std::uint64_t every, Time extra) {
    late_every_ = every;
    late_extra_ = extra;
  }
  // Every n-th packet is delivered twice at the same release tick — the
  // same-tick duplicate shape the receiver's dup stash absorbs.
  void set_dup_every(std::uint64_t n) { dup_every_ = n; }

  void deliver(Packet p) override {
    ++seen_;
    if (drop_every_ != 0 && seen_ % drop_every_ == 0) return;
    Time d = delay_;
    if (late_every_ != 0 && seen_ % late_every_ == 0) d += late_extra_;
    if (dup_every_ != 0 && seen_ % dup_every_ == 0) schedule_at(d, p);
    schedule_at(d, std::move(p));
  }

 private:
  void schedule_at(Time d, Packet p) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      pool_[slot] = std::move(p);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(p));
    }
    sim_.schedule_in(d, [this, slot] {
      Packet q = std::move(pool_[slot]);
      free_.push_back(slot);
      dst_->deliver(std::move(q));
    });
  }

  Simulator& sim_;
  netsim::PacketSink* dst_ = nullptr;
  Time delay_;
  std::uint64_t drop_every_ = 0;
  std::uint64_t late_every_ = 0;
  Time late_extra_ = 0;
  std::uint64_t dup_every_ = 0;
  std::uint64_t seen_ = 0;
  std::vector<Packet> pool_;
  std::vector<std::uint32_t> free_;
};

struct Scenario {
  std::uint64_t drop_every = 0;   // forward wire, 0 = no drops
  std::uint64_t late_every = 0;   // forward wire, 0 = in-order
  Time late_extra = 0;
  std::uint64_t dup_every = 0;    // forward wire, 0 = no duplicates
  int ack_every_n = 0;            // 0 = profile default
  bool coalesce_dups = false;     // receiver same-tick dup stash
  Time duration = time::sec(20);
};

std::uint64_t run_scenario(const Scenario& sc) {
  Simulator sim;
  Wire fwd(sim, time::ms(5));
  Wire rev(sim, time::ms(5));
  fwd.set_drop_every(sc.drop_every);
  fwd.set_late(sc.late_every, sc.late_extra);
  fwd.set_dup_every(sc.dup_every);

  transport::SenderProfile sp;  // defaults: ack-clocked kernel-style TCP
  // The wires have no bandwidth limit, so without a flow-control cap
  // slow start doubles the flight every RTT for the whole run. Cap the
  // flight at 256 packets: a steady ~25k packets/sec ACK-clocked stream,
  // which is exactly the scoreboard regime worth measuring.
  sp.flow_control_window = 256 * (sp.mss + sp.header_overhead);
  cca::CubicConfig ccfg;
  ccfg.mss = sp.mss;
  transport::SenderEndpoint sender(sim, 0, sp,
                                   std::make_unique<cca::Cubic>(ccfg), &fwd,
                                   Rng(42));
  transport::ReceiverProfile rp;
  if (sc.ack_every_n > 0) rp.ack_every_n = sc.ack_every_n;
  transport::ReceiverEndpoint receiver(sim, 0, rp, &rev);
  receiver.set_coalesce_same_tick_dups(sc.coalesce_dups);
  fwd.connect(&receiver);
  rev.connect(&sender);

  sender.start(0);
  sim.run_until(sc.duration);

  const transport::SenderStats& st = sender.stats();
  std::uint64_t metric =
      sim.events_fired() +
      static_cast<std::uint64_t>(st.packets_sent) +
      static_cast<std::uint64_t>(st.losses_detected) * 3 +
      static_cast<std::uint64_t>(st.spurious_losses) * 5 +
      static_cast<std::uint64_t>(st.retransmissions) * 7;
  // Only the duplication scenario folds receiver-side dup counters, so
  // the historical probes' metrics are untouched byte for byte.
  if (sc.dup_every != 0) {
    metric +=
        static_cast<std::uint64_t>(receiver.stats().duplicate_packets) * 11 +
        static_cast<std::uint64_t>(receiver.stats().dups_coalesced) * 13;
  }
  return metric;
}

} // namespace
} // namespace quicbench

int main() {
  using namespace quicbench;

  // Measure the datapath, not the checker.
  obs::RunOptions opts = obs::RunOptions::from_env();
  opts.invariants = false;
  obs::RunOptions::set_current(opts);

  std::vector<BenchResult> results;
  results.push_back(timed(
      "transport_clean", [] { return run_scenario({}); }, 3));
  results.push_back(timed(
      "transport_lossy",
      [] {
        // Loss collapses cwnd, so the packet rate is ~20x lower than the
        // clean run; simulate longer so the wall time stays measurable.
        Scenario sc;
        sc.drop_every = 499;
        sc.duration = time::sec(240);
        return run_scenario(sc);
      },
      3));
  results.push_back(timed(
      "transport_reorder",
      [] {
        Scenario sc;
        sc.late_every = 23;
        sc.late_extra = time::us(700);
        sc.duration = time::sec(80);
        return run_scenario(sc);
      },
      3));
  results.push_back(timed(
      "transport_dup_burst",
      [] {
        // Heavy same-tick duplication with per-packet immediate acks:
        // every other data packet arrives twice at the same tick, and
        // the receiver's dup stash (enabled, as in the harness) replays
        // the stashed ACK instead of re-running the range search. The
        // metric folds duplicate/coalesced counters, so it pins both
        // the dup volume and the stash hit count.
        Scenario sc;
        sc.dup_every = 2;
        sc.ack_every_n = 1;
        sc.coalesce_dups = true;
        sc.duration = time::sec(40);
        return run_scenario(sc);
      },
      3));

  benchutil::print_table("Transport-datapath microbenchmarks", results);

  const std::string path = runner::out_dir() + "/BENCH_transport.json";
  benchutil::write_json(results, "quicbench.bench.transport/v1", path);
  std::cout << "\nJSON: " << path << "\n";
  return 0;
}
