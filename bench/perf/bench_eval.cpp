// Analysis-path microbenchmarks: the evaluation pipeline that turns
// per-trial (delay, throughput) point clouds into Performance Envelopes
// and conformance scores, isolated from the simulator. Probes:
//
//   eval_kmeans       k-means (kmeans++ seeding, restarts, Lloyd with
//                     the x-axis early-exit) on a pooled gaussian-blob
//                     cloud — the inner loop of PE construction;
//   eval_build_pe     the full PE pipeline (IOU curve, k selection,
//                     per-trial clustering, cluster matching, quorum
//                     intersection) over synthetic trials;
//   eval_conformance  conformance::evaluate — two PEs, point-in-convex
//                     scans via PreparedConvex and the translation
//                     search.
//
// The work metric folds llround() of the floating-point outputs
// (inertia, IOU, conformance scaled to nanounits) with integer shape
// counts, so the determinism gate in check_perf.py catches any change
// to FP evaluation order, not just control flow.
//
// Output: a table on stdout and bench_out/BENCH_eval.json
// (schema quicbench.bench.eval/v1).

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/kmeans.h"
#include "conformance/conformance.h"
#include "conformance/pe.h"
#include "geom/geom.h"
#include "runner/env.h"
#include "util/rng.h"

namespace quicbench {
namespace {

using benchutil::BenchResult;
using benchutil::timed;
using conformance::TrialPoints;
using geom::Point;

// Gaussian-blob trial cloud shaped like real trace scatter: a dominant
// steady-state cluster plus smaller phase clusters, axes in the natural
// units (ms, Mbps) so the Normalizer path is exercised.
TrialPoints make_trial(Rng& rng, int points, double delay_shift,
                       double tput_shift) {
  struct Blob {
    double cx, cy, sx, sy, share;
  };
  static constexpr Blob kBlobs[] = {
      {22.0, 17.5, 2.0, 1.2, 0.72},   // steady state
      {34.0, 9.0, 3.0, 1.8, 0.20},    // post-loss recovery
      {12.0, 3.5, 1.0, 0.8, 0.08},    // startup / drain
  };
  TrialPoints out;
  out.reserve(points);
  for (int i = 0; i < points; ++i) {
    const double u = rng.uniform();
    const Blob* b = &kBlobs[2];
    if (u < kBlobs[0].share) {
      b = &kBlobs[0];
    } else if (u < kBlobs[0].share + kBlobs[1].share) {
      b = &kBlobs[1];
    }
    out.push_back({rng.normal(b->cx + delay_shift, b->sx),
                   rng.normal(b->cy + tput_shift, b->sy)});
  }
  return out;
}

std::vector<TrialPoints> make_trials(std::uint64_t seed, int trials,
                                     int points, double delay_shift,
                                     double tput_shift) {
  Rng rng(seed);
  std::vector<TrialPoints> out;
  out.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    out.push_back(make_trial(rng, points, delay_shift, tput_shift));
  }
  return out;
}

std::uint64_t fold(double v, double scale) {
  return static_cast<std::uint64_t>(std::llround(v * scale));
}

std::uint64_t fold_pe(const conformance::PerformanceEnvelope& pe) {
  std::uint64_t acc = static_cast<std::uint64_t>(pe.k) * 1000003;
  for (const auto& h : pe.hulls) acc += h.size();
  acc += fold(pe.iou, 1e9);
  acc += pe.points_inside();
  return acc;
}

} // namespace
} // namespace quicbench

int main() {
  using namespace quicbench;

  // Shared inputs, generated once: the probes time evaluation, not
  // cloud synthesis.
  const auto ref_trials = make_trials(101, 8, 600, 0.0, 0.0);
  const auto test_trials = make_trials(202, 8, 600, 4.0, -1.5);

  std::vector<TrialPoints> pooled_holder(1);
  for (const auto& t : ref_trials) {
    pooled_holder[0].insert(pooled_holder[0].end(), t.begin(), t.end());
  }
  const TrialPoints& pooled = pooled_holder[0];

  std::vector<BenchResult> results;

  results.push_back(timed(
      "eval_kmeans",
      [&pooled] {
        std::uint64_t acc = 0;
        for (int rep = 0; rep < 40; ++rep) {
          Rng rng(1000 + rep);
          const auto res = cluster::kmeans(pooled, 4, rng);
          acc += fold(res.inertia, 1e6);
          for (const int a : res.assignment) {
            acc += static_cast<std::uint64_t>(a);
          }
        }
        return acc;
      },
      3));

  results.push_back(timed(
      "eval_build_pe",
      [&ref_trials] {
        std::uint64_t acc = 0;
        for (int rep = 0; rep < 6; ++rep) {
          conformance::PeConfig cfg;
          cfg.seed = 7 + rep;
          acc += fold_pe(conformance::build_pe(ref_trials, cfg));
        }
        return acc;
      },
      3));

  results.push_back(timed(
      "eval_contain",
      [&ref_trials, &pooled] {
        // Isolates the batched point-in-convex kernel: one PE build,
        // then repeated count_in_any scans of the pooled cloud against
        // the prepared hulls (the inner loop of every conformance
        // score). The scan loop dominates the build by design.
        conformance::PeConfig cfg;
        cfg.seed = 7;
        const auto pe = conformance::build_pe(ref_trials, cfg);
        std::vector<geom::PreparedConvex> prep;
        prep.reserve(pe.hulls.size());
        for (const auto& h : pe.hulls) prep.emplace_back(h);
        std::uint64_t acc = 0;
        for (int rep = 0; rep < 500; ++rep) {
          acc += geom::count_in_any(prep, pooled);
        }
        return acc;
      },
      3));

  results.push_back(timed(
      "eval_conformance",
      [&ref_trials, &test_trials] {
        std::uint64_t acc = 0;
        for (int rep = 0; rep < 4; ++rep) {
          conformance::PeConfig cfg;
          cfg.seed = 7 + rep;
          const auto report =
              conformance::evaluate(ref_trials, test_trials, cfg);
          acc += fold(report.conformance, 1e9);
          acc += fold(report.conformance_old, 1e9);
          acc += fold(report.conformance_t, 1e9);
          acc += fold_pe(report.ref_pe);
          acc += fold_pe(report.test_pe);
        }
        return acc;
      },
      3));

  benchutil::print_table("Analysis-path microbenchmarks", results);

  const std::string path = runner::out_dir() + "/BENCH_eval.json";
  benchutil::write_json(results, "quicbench.bench.eval/v1", path);
  std::cout << "\nJSON: " << path << "\n";
  return 0;
}
