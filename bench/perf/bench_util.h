#pragma once
// Shared scaffolding for the bench/perf probe binaries (bench_engine,
// bench_transport, bench_eval): best-of-N timing with an in-process
// determinism check, the result table printer, and the JSON emitter
// scripts/check_perf.py consumes.
//
// Every probe returns a deterministic work metric ("events"): an exact
// function of the simulation / analysis inputs (integer time, fixed
// seeds, IEEE arithmetic with no FMA contraction), so the count is
// bit-identical across runs and machines. check_perf.py gates on that
// count exactly and on events/sec with a soft margin.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace quicbench::benchutil {

struct BenchResult {
  std::string name;
  std::uint64_t events = 0;  // deterministic work metric
  double wall_sec = 0;
  double events_per_sec = 0;
};

// Best-of-`reps` timing: short probes are noisy on a busy machine, so
// take the fastest repetition. Every repetition must produce the same
// work metric (in-process determinism check).
template <typename Fn>
BenchResult timed(const std::string& name, Fn&& body, int reps = 1) {
  BenchResult r;
  r.name = name;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t events = body();
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (i == 0) {
      r.events = events;
      r.wall_sec = wall;
    } else if (events != r.events) {
      std::cerr << "FATAL: " << name << " nondeterministic event count ("
                << events << " vs " << r.events << ")\n";
      std::exit(1);
    } else if (wall < r.wall_sec) {
      r.wall_sec = wall;
    }
  }
  r.events_per_sec =
      r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0;
  return r;
}

// `schema` is the family tag, e.g. "quicbench.bench.engine/v1".
inline void write_json(const std::vector<BenchResult>& results,
                       const std::string& schema, const std::string& path) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", schema);
  w.key("benchmarks");
  w.begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("events", static_cast<std::uint64_t>(r.events));
    w.kv("wall_sec", r.wall_sec);
    w.kv("events_per_sec", r.events_per_sec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path);
  out << w.str() << '\n';
}

inline void print_table(const std::string& title,
                        const std::vector<BenchResult>& results) {
  std::cout << title << "\n\n";
  std::cout << std::left << std::setw(26) << "benchmark" << std::right
            << std::setw(12) << "events" << std::setw(12) << "wall_s"
            << std::setw(16) << "events/sec" << '\n';
  for (const auto& r : results) {
    std::cout << std::left << std::setw(26) << r.name << std::right
              << std::setw(12) << r.events << std::setw(12) << std::fixed
              << std::setprecision(3) << r.wall_sec << std::setw(16)
              << std::setprecision(0) << r.events_per_sec << '\n';
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
}

} // namespace quicbench::benchutil
