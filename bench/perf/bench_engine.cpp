// Event-engine performance microbenchmarks. Two families:
//
//   engine_*  raw Simulator workloads (timer chains, schedule+cancel
//             churn, rearm fast path, wheel/heap mix) isolating the
//             event-store hot paths from the transport stack;
//   trial_*   one canonical 120 s conformance trial per CCA (kernel
//             reference vs itself, paper-default 1 BDP network),
//             the end-to-end events/sec number the sweeps see.
//
// Every benchmark's event count is a pure function of the simulation
// (integer time, fixed seeds), so counts are bit-identical across runs
// and machines — scripts/check_perf.py uses that as a hard determinism
// gate, while wall-clock throughput is compared against the committed
// baseline with a generous regression margin.
//
// Output: a human-readable table on stdout and
// bench_out/BENCH_engine.json (schema quicbench.bench.engine/v1).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/experiment.h"
#include "netsim/event.h"
#include "obs/run_options.h"
#include "runner/env.h"
#include "runner/sweep.h"
#include "stacks/registry.h"
#include "util/units.h"

namespace quicbench {
namespace {

using benchutil::BenchResult;
using benchutil::timed;

// Four self-rescheduling schedule_in chains at co-prime periods: the
// pure schedule+fire cycle (slot reuse, wheel insert, bucket
// activation) with no cancels and no stale entries.
std::uint64_t run_timer_chain() {
  netsim::Simulator sim;
  struct Chain {
    netsim::Simulator* sim;
    Time period;
    void tick() { sim->schedule_in(period, [this] { tick(); }); }
  };
  Chain chains[] = {{&sim, time::us(3)},
                    {&sim, time::us(5)},
                    {&sim, time::us(7)},
                    {&sim, time::us(11)}};
  for (auto& c : chains) c.tick();
  sim.run_until(time::sec(2));
  return sim.events_fired();
}

// Schedule two events, cancel one: exercises slot alloc/free and the
// cancelled-entry skip in run_next. Half of all entries die stale.
std::uint64_t run_schedule_cancel() {
  netsim::Simulator sim;
  std::uint64_t sink = 0;
  constexpr int kIters = 500000;
  for (int i = 0; i < kIters; ++i) {
    const Time dt = static_cast<Time>((i % 97) * 41 + 1);  // ns scale
    const netsim::EventId keep =
        sim.schedule_in(dt, [&sink] { ++sink; });
    const netsim::EventId drop =
        sim.schedule_in(dt + 13, [&sink] { sink += 100; });
    (void)keep;
    sim.cancel(drop);
    if ((i & 63) == 63) sim.run_until(sim.now() + time::us(4));
  }
  while (sim.run_next()) {
  }
  // Work metric: schedules + cancels + fires, all deterministic.
  return sim.events_scheduled() + kIters + sim.events_fired();
}

// The Timer::rearm fast path: a 2 us driver chain repeatedly postpones
// a long timer that almost never fires, so nearly every operation is an
// in-place slot update (no cancel+schedule, no allocation).
std::uint64_t run_rearm_fastpath() {
  netsim::Simulator sim;
  netsim::Timer idle(sim);
  std::uint64_t idle_fires = 0;
  idle.set([&idle_fires] { ++idle_fires; });
  struct Driver {
    netsim::Simulator* sim;
    netsim::Timer* idle;
    void tick() {
      idle->rearm(sim->now() + time::us(10));
      sim->schedule_in(time::us(2), [this] { tick(); });
    }
  };
  Driver d{&sim, &idle};
  d.tick();
  sim.run_until(time::sec(2));
  // Reschedules count toward events_scheduled; fires are the chain.
  return sim.events_scheduled() + sim.events_fired();
}

// Near deadlines land in the wheel, 10 ms deadlines are beyond the
// wheel horizon and take the heap path; both tiers stay busy and the
// global (time, seq) merge in run_next is exercised continuously.
std::uint64_t run_wheel_heap_mix() {
  netsim::Simulator sim;
  struct Near {
    netsim::Simulator* sim;
    void tick() { sim->schedule_in(time::us(4), [this] { tick(); }); }
  };
  struct Far {
    netsim::Simulator* sim;
    void tick() { sim->schedule_in(time::ms(10), [this] { tick(); }); }
  };
  Near near{&sim};
  Far far[8] = {{&sim}, {&sim}, {&sim}, {&sim},
                {&sim}, {&sim}, {&sim}, {&sim}};
  near.tick();
  for (auto& f : far) f.tick();
  sim.run_until(time::sec(2));
  return sim.events_fired();
}

// One canonical conformance trial (kernel reference vs itself, 120 s on
// the paper-default 1 BDP network), independent of QB_FAST. This is the
// number the full sweeps are built out of.
BenchResult run_canonical_trial(const std::string& name,
                                stacks::CcaType cca) {
  const auto& ref = stacks::Registry::instance().reference(cca);
  harness::ExperimentConfig cfg = runner::default_config(1.0);
  cfg.duration = time::sec(120);
  cfg.trials = 1;
  return timed(
      name,
      [&] {
        const harness::TrialResult r = harness::run_trial(ref, ref, cfg, 0);
        return r.sim_events;
      },
      3);
}

// Miniature full-sweep aggregate: pair-conformance cells across the CCA
// population plus a raw 2-flow contention scenario, run through
// runner::Sweep with caching off and one pinned worker. The metric is
// the simulator events executed, so this probe's events/sec is the
// end-to-end sweep throughput — simulation plus PE evaluation plus
// scheduling overhead — that the committed floor in the baseline
// ratchets (the number the paper-figure sweeps are built out of).
std::uint64_t run_sweep_mixed() {
  runner::SweepOptions opts;
  opts.threads = 1;
  opts.use_cache = false;
  runner::Sweep sweep("bench_sweep_mixed", opts);
  const auto& reg = stacks::Registry::instance();
  harness::ExperimentConfig cfg = runner::default_config(1.0);
  cfg.duration = time::sec(60);
  cfg.trials = 1;
  for (const auto cca : {stacks::CcaType::kReno, stacks::CcaType::kCubic,
                         stacks::CcaType::kBbr, stacks::CcaType::kBbr2}) {
    const auto& ref = reg.reference(cca);
    sweep.add_conformance(ref, ref, cfg);
  }
  harness::ScenarioConfig sc = harness::to_scenario_config(
      reg.reference(stacks::CcaType::kCubic),
      reg.reference(stacks::CcaType::kBbr), cfg);
  sc.flows.push_back(sc.flows.back());
  sc.flows.back().start_at = time::sec(5);
  sweep.add_scenario(sc);
  sweep.run();
  return sweep.stats().events_executed;
}

} // namespace
} // namespace quicbench

int main() {
  using namespace quicbench;

  // The committed events/sec baseline predates the invariant checker and
  // CI gates on a 30% margin; keep the perf probes measuring the engine,
  // not the checker. (The checker is on everywhere else by default.)
  obs::RunOptions opts = obs::RunOptions::from_env();
  opts.invariants = false;
  obs::RunOptions::set_current(opts);

  std::vector<BenchResult> results;
  results.push_back(timed("engine_timer_chain", run_timer_chain, 3));
  results.push_back(timed("engine_schedule_cancel", run_schedule_cancel, 3));
  results.push_back(timed("engine_rearm_fastpath", run_rearm_fastpath, 3));
  results.push_back(timed("engine_wheel_heap_mix", run_wheel_heap_mix, 3));
  results.push_back(run_canonical_trial("trial_reno", stacks::CcaType::kReno));
  results.push_back(
      run_canonical_trial("trial_cubic", stacks::CcaType::kCubic));
  results.push_back(run_canonical_trial("trial_bbr", stacks::CcaType::kBbr));
  results.push_back(run_canonical_trial("trial_bbr2", stacks::CcaType::kBbr2));
  results.push_back(timed("sweep_mixed", run_sweep_mixed, 3));

  benchutil::print_table("Event-engine microbenchmarks", results);

  const std::string path = runner::out_dir() + "/BENCH_engine.json";
  benchutil::write_json(results, "quicbench.bench.engine/v1", path);
  std::cout << "\nJSON: " << path << "\n";
  return 0;
}
