// Figure 7: Performance Envelopes of the non-conformant CUBIC
// implementations (neqo, quiche, xquic) across bottleneck buffer sizes.
// Expected: neqo sits below/left of the reference (starved by its
// flow-control cap), quiche above (rollback keeps its cwnd high), xquic
// mostly overlapping but offset in delay (no HyStart).

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kCubic);
  const std::vector<double> buffers{0.5, 1.0, 3.0, 5.0};
  for (const char* stack : {"neqo", "quiche", "xquic"}) {
    const auto* impl = reg.find(stack, stacks::CcaType::kCubic);
    pe_across_buffers(std::string("Figure 7 (") + stack + " CUBIC)", *impl,
                      ref, buffers, std::string("fig07_") + stack);
    std::cout << "\n";
  }
  return 0;
}
