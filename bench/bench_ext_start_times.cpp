// Extension (§6, "Refining bandwidth-share analysis"): the paper's
// fairness experiments launch both flows together and note that the
// impact of different start times is worth studying. Here the second
// flow starts 0 / 5 / 20 / 60 seconds after the first and we measure the
// late flow's bandwidth share over the remaining time plus the time it
// needs to reach 80% of its fair share.

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

namespace {

// Time (from the late flow's start) to first reach `target_mbps` averaged
// over one second, or -1 if never.
double time_to_rate(const trace::FlowTrace& tr, Time start,
                    double target_mbps, Time end) {
  for (Time t = start; t + time::sec(1) <= end; t += time::ms(500)) {
    const double mbps = rate::to_mbps(
        trace::average_throughput(tr, t, t + time::sec(1)));
    if (mbps >= target_mbps) return time::to_sec(t - start);
  }
  return -1;
}

} // namespace

int main() {
  const auto& reg = stacks::Registry::instance();
  const std::vector<std::pair<const char*, stacks::CcaType>> matchups{
      {"tcp", stacks::CcaType::kCubic},
      {"tcp", stacks::CcaType::kBbr},
      {"quiche", stacks::CcaType::kCubic},
  };
  const std::vector<double> offsets_sec{0, 5, 20, 60};

  std::cout << "Late-start fairness (20 Mbps, 10 ms RTT, 1 BDP; late flow "
               "= kernel CUBIC)\n\n";
  CsvWriter csv(csv_path("ext_start_times"),
                {"first_flow", "offset_sec", "late_share",
                 "late_ramp_sec"});

  const auto& late = reg.reference(stacks::CcaType::kCubic);
  std::vector<std::vector<std::string>> table;
  for (const auto& [stack, cca] : matchups) {
    const auto* first = reg.find(stack, cca);
    for (const double off : offsets_sec) {
      harness::ExperimentConfig cfg = default_config(1.0);
      cfg.duration = time::sec(fast_mode() ? 60 : 150) +
                     time::from_sec(off);
      cfg.trials = fast_mode() ? 1 : 3;
      cfg.start_spread = 0;

      cfg.flow_b_start = time::from_sec(off);

      double share_sum = 0;
      double ramp_sum = 0;
      int ramp_n = 0;
      for (int t = 0; t < cfg.trials; ++t) {
        const auto tr = harness::run_trial(*first, late, cfg,
                                           static_cast<std::uint64_t>(t));
        const Time late_start = time::from_sec(off);
        const Time end = cfg.duration;
        const Rate first_rate =
            trace::average_throughput(tr.flow[0].trace, late_start, end);
        const Rate late_rate =
            trace::average_throughput(tr.flow[1].trace, late_start, end);
        const double total =
            rate::to_mbps(first_rate) + rate::to_mbps(late_rate);
        share_sum += total > 0 ? rate::to_mbps(late_rate) / total : 0;
        const double ramp =
            time_to_rate(tr.flow[1].trace, late_start, 0.8 * 10.0, end);
        if (ramp >= 0) {
          ramp_sum += ramp;
          ++ramp_n;
        }
      }
      const double share = share_sum / cfg.trials;
      const double ramp = ramp_n ? ramp_sum / ramp_n : -1;
      table.push_back({first->display, fmt(off, 0), fmt(share),
                       ramp >= 0 ? fmt(ramp, 1) + " s" : "never"});
      csv.row(std::vector<std::string>{first->display, fmt(off, 0),
                                       fmt(share, 4), fmt(ramp, 2)});
    }
  }
  std::cout << harness::render_table(
      {"first flow", "offset", "late flow share", "ramp to 80% fair"},
      table);
  std::cout << "\nExpected: a late flow against kernel CUBIC/BBR converges "
               "to ~0.5; against quiche CUBIC (rollback bug) it stays "
               "starved regardless of offset.\nCSV: "
            << csv.path() << "\n";
  return 0;
}
