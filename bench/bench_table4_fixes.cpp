// Table 4: summary of modifications to the low-conformant
// implementations (1 BDP buffer). For each fixable implementation, the
// original and modified Conf / Conf-T / Δ values; for xquic CUBIC, the
// comparison against a HyStart-disabled kernel reference that confirms
// the missing mechanism; for xquic Reno and neqo CUBIC, originals only
// (the paper verified those CCAs to be compliant — the deviation is in
// the stack).

#include <optional>
#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto cfg = default_config(1.0);
  std::cout << "Table 4: fixes to low-conformant implementations ("
            << cfg.net.describe() << ")\n\n";

  struct Row {
    std::string label;
    const stacks::Implementation* test;
    std::optional<stacks::Implementation> modified;  // fixed variant
    std::optional<stacks::Implementation> alt_ref;   // alternative reference
    std::string remark;
  };
  std::vector<Row> rows;
  const auto add = [&](const char* stack, stacks::CcaType cca,
                       std::string remark) {
    const auto* impl = reg.find(stack, cca);
    Row row{impl->display, impl, stacks::fixed_variant(*impl), std::nullopt,
            std::move(remark)};
    rows.push_back(std::move(row));
  };
  add("chromium", stacks::CcaType::kCubic,
      "Emulated flows reduced from 2 to 1");
  add("mvfst", stacks::CcaType::kBbr, "pacing rate scale 1.2 -> 1.0");
  add("xquic", stacks::CcaType::kBbr, "cwnd gain reduced from 2.5 to 2");
  add("quiche", stacks::CcaType::kCubic, "Disabled RFC8312bis rollback");
  {
    const auto* impl = reg.find("xquic", stacks::CcaType::kCubic);
    rows.push_back({impl->display + " (vs kernel)", impl, std::nullopt,
                    std::nullopt, "xquic does not implement HyStart"});
    rows.push_back({impl->display + " (vs no-HyStart ref)", impl,
                    std::nullopt, stacks::reference_cubic_no_hystart(),
                    "Compared to TCP CUBIC w/o HyStart"});
  }
  {
    const auto* impl = reg.find("xquic", stacks::CcaType::kReno);
    rows.push_back({impl->display, impl, std::nullopt, std::nullopt,
                    "CCA compliant; stack-level artifact"});
    const auto* neqo = reg.find("neqo", stacks::CcaType::kCubic);
    rows.push_back({neqo->display, neqo, std::nullopt, std::nullopt,
                    "CCA compliant; stack-level artifact"});
  }

  struct Result {
    conformance::ConformanceReport original;
    std::optional<conformance::ConformanceReport> modified;
  };
  runner::Sweep sweep("table4");
  std::vector<runner::CellId> orig_ids;
  std::vector<std::optional<runner::CellId>> mod_ids;
  for (const auto& row : rows) {
    const stacks::Implementation& ref =
        row.alt_ref.has_value() ? *row.alt_ref
                                : reg.reference(row.test->cca);
    orig_ids.push_back(sweep.add_conformance(*row.test, ref, cfg));
    mod_ids.push_back(
        row.modified.has_value()
            ? std::optional<runner::CellId>(
                  sweep.add_conformance(*row.modified, ref, cfg))
            : std::nullopt);
  }
  sweep.run();
  std::vector<Result> results(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    results[i].original = sweep.conformance_result(orig_ids[i]);
    if (mod_ids[i].has_value()) {
      results[i].modified = sweep.conformance_result(*mod_ids[i]);
    }
  }

  CsvWriter csv(csv_path("table4"),
                {"impl", "variant", "conf", "conf_t", "delta_tput",
                 "delta_delay", "remark"});
  std::vector<std::vector<std::string>> table;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& res = results[i];
    const auto cells = [&](const conformance::ConformanceReport& rep) {
      return std::vector<std::string>{
          fmt(rep.conformance), fmt(rep.conformance_t),
          fmt(rep.delta_tput_mbps), fmt(rep.delta_delay_ms)};
    };
    std::vector<std::string> line{row.label};
    auto orig = cells(res.original);
    line.insert(line.end(), orig.begin(), orig.end());
    if (res.modified.has_value()) {
      auto mod = cells(*res.modified);
      line.insert(line.end(), mod.begin(), mod.end());
    } else {
      line.insert(line.end(), {"-", "-", "-", "-"});
    }
    line.push_back(row.remark);
    table.push_back(line);

    csv.row(std::vector<std::string>{
        row.label, "original", fmt(res.original.conformance, 4),
        fmt(res.original.conformance_t, 4),
        fmt(res.original.delta_tput_mbps, 4),
        fmt(res.original.delta_delay_ms, 4), row.remark});
    if (res.modified.has_value()) {
      csv.row(std::vector<std::string>{
          row.label, "modified", fmt(res.modified->conformance, 4),
          fmt(res.modified->conformance_t, 4),
          fmt(res.modified->delta_tput_mbps, 4),
          fmt(res.modified->delta_delay_ms, 4), row.remark});
    }
  }
  std::cout << harness::render_table(
      {"Implementation", "Conf", "Conf-T", "d-tput", "d-delay", "Conf'",
       "Conf-T'", "d-tput'", "d-delay'", "Remark"},
      table);
  std::cout << "\n(primed columns = after modification)\nCSV: " << csv.path()
            << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
