// Extension: the Figure 6 conformance matrix re-run over the ENLARGED
// CCA population — BBRv2 and CUBIC+RACK-TLP rows alongside the original
// CUBIC/BBR/Reno columns. A separate binary from bench_fig06 so the
// committed fig06 artifact stays bit-identical; the sweep here covers
// every non-reference (stack, CCA) cell at 1 BDP and 5 BDP against its
// kernel reference.
//
// Expected shape: the documented BBRv2 deviations separate cleanly —
// mvfst's 1.2x pacing scale and xquic's headroom-0 / 5% loss-threshold
// profile land as low-conformance cells while chromium bbr2 tracks the
// reference; cubic-rack stays conformant with plain cubic rows (RACK
// changes loss detection timing, not the control law).

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const std::vector<stacks::CcaType> ccas{
      stacks::CcaType::kCubic, stacks::CcaType::kBbr, stacks::CcaType::kReno,
      stacks::CcaType::kBbr2, stacks::CcaType::kCubicRack};

  struct Cell {
    const stacks::Implementation* impl;
    double buffer_bdp;
    runner::CellId id = -1;
  };
  std::vector<Cell> cells;
  for (const double buf : {5.0, 1.0}) {
    for (const auto cca : ccas) {
      for (const auto* impl : reg.with_cca(cca, /*include_reference=*/false)) {
        cells.push_back({impl, buf});
      }
    }
  }

  runner::Sweep sweep("ext_population");
  for (auto& cell : cells) {
    cell.id = sweep.add_conformance(*cell.impl, reg.reference(cell.impl->cca),
                                    default_config(cell.buffer_bdp));
  }
  sweep.run();

  CsvWriter csv(csv_path("ext_population"),
                {"stack", "cca", "buffer_bdp", "conformance"});
  for (const double buf : {5.0, 1.0}) {
    std::vector<std::string> row_labels;
    std::vector<std::vector<double>> values;
    for (const auto cca : ccas) {
      for (const auto* impl : reg.with_cca(cca, false)) {
        double conf = -1;
        for (const auto& cell : cells) {
          if (cell.impl == impl && cell.buffer_bdp == buf) {
            conf = sweep.conformance_result(cell.id).conformance;
          }
        }
        row_labels.push_back(impl->display);
        values.push_back({conf});
        csv.row(std::vector<std::string>{impl->stack,
                                         stacks::to_string(cca),
                                         fmt(buf, 1), fmt(conf, 4)});
      }
    }
    std::cout << harness::render_heatmap(
        "Population conformance, " + fmt(buf, 1) +
            " BDP buffer (10 ms RTT, 20 Mbps; incl. bbr2 + cubic-rack)",
        row_labels, {"conf"}, values);
    std::cout << '\n';
  }
  std::cout << "CSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
