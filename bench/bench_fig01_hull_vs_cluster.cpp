// Figure 1: why one convex hull is not enough. For quiche CUBIC vs the
// kernel reference, compare the single-hull conformance (the IMC'22
// definition) against the clustering-based definition. The single hull
// spans empty space between the lobes of the point cloud and
// overestimates similarity.
//
// Paper values: single hull 0.48 vs clustered 0.12 (we expect the same
// ordering: clustered <= single hull, with a visible gap).

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* quiche = reg.find("quiche", stacks::CcaType::kCubic);
  const auto& ref = reg.reference(stacks::CcaType::kCubic);

  const harness::ExperimentConfig cfg = default_config(1.0);
  std::cout << "Figure 1: single-hull vs clustered PE for quiche CUBIC ("
            << cfg.net.describe() << ")\n\n";

  const auto ref_pair = harness::run_pair(ref, ref, cfg);
  const auto test_pair = harness::run_pair(*quiche, ref, cfg);

  const auto ref_old = conformance::build_pe_old(ref_pair.points_a);
  const auto test_old = conformance::build_pe_old(test_pair.points_a);
  const double conf_old = conformance::conformance(ref_old, test_old);

  const auto ref_new = conformance::build_pe(ref_pair.points_a);
  const auto test_new = conformance::build_pe(test_pair.points_a);
  const double conf_new = conformance::conformance(ref_new, test_new);

  std::cout << harness::render_pe_plot(
      "(a) single-hull definition, conformance = " + fmt(conf_old), ref_old,
      test_old);
  std::cout << '\n';
  std::cout << harness::render_pe_plot(
      "(b) clustering-based definition, conformance = " + fmt(conf_new),
      ref_new, test_new);

  std::cout << "\nsingle-hull conformance : " << fmt(conf_old)
            << "\nclustered conformance   : " << fmt(conf_new) << "\n";
  std::cout << (conf_new <= conf_old + 0.05
                    ? "OK: clustering does not inflate conformance\n"
                    : "WARNING: clustered conformance above single hull\n");

  CsvWriter csv(csv_path("fig01"), {"definition", "conformance"});
  csv.row(std::vector<std::string>{"single_hull", fmt(conf_old, 4)});
  csv.row(std::vector<std::string>{"clustered", fmt(conf_new, 4)});
  std::cout << "CSV: " << csv.path() << "\n";
  return 0;
}
