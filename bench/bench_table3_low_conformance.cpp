// Table 3: summary of low-conformant implementations at a 1 BDP buffer
// (20 Mbps, 10 ms RTT). For each implementation the paper flags, print
// Conformance-old (IMC'22 single hull), Conformance (clustered),
// Conformance-T and the translation hints (Δ-tput, Δ-delay).
//
// Expected shapes (paper values in brackets):
//   chromium CUBIC  moderate conf, higher conf-T, +Δ-tput   [0.6/0.74/+3]
//   neqo     CUBIC  ~zero conf, high conf-T, -Δ-tput/-Δ-delay [0/0.62/-6/-5]
//   quiche   CUBIC  ~zero conf, mid conf-T, +Δ-tput          [0.08/0.55/+5.5]
//   xquic    CUBIC  mid conf, mid conf-T, -Δ-delay           [0.55/0.64/0/-5]
//   mvfst    BBR    ~zero conf, high conf-T, +Δ-tput         [0/0.7/+9]
//   xquic    BBR    low conf, higher conf-T, +Δ-tput         [0.15/0.42/+4]
//   xquic    Reno   low conf, high conf-T, -Δ-tput/-Δ-delay  [0.38/0.81/-4/-3]

#include <vector>

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  struct Row {
    const char* stack;
    stacks::CcaType cca;
  };
  const std::vector<Row> rows{
      {"chromium", stacks::CcaType::kCubic},
      {"neqo", stacks::CcaType::kCubic},
      {"quiche", stacks::CcaType::kCubic},
      {"xquic", stacks::CcaType::kCubic},
      {"mvfst", stacks::CcaType::kBbr},
      {"xquic", stacks::CcaType::kBbr},
      {"xquic", stacks::CcaType::kReno},
  };

  const harness::ExperimentConfig cfg = default_config(1.0);
  std::cout << "Table 3: low-conformant implementations (1 BDP buffer, "
            << cfg.net.describe() << ")\n\n";

  runner::Sweep sweep("table3");
  std::vector<runner::CellId> ids;
  for (const auto& row : rows) {
    const auto* impl = reg.find(row.stack, row.cca);
    ids.push_back(sweep.add_conformance(*impl, reg.reference(row.cca), cfg));
  }
  sweep.run();
  std::vector<conformance::ConformanceReport> reports;
  for (const auto id : ids) reports.push_back(sweep.conformance_result(id));

  CsvWriter csv(csv_path("table3"),
                {"stack", "cca", "conf_old", "conf", "conf_t", "delta_tput",
                 "delta_delay"});
  std::vector<std::vector<std::string>> table;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& rep = reports[i];
    const std::string cca = stacks::to_string(rows[i].cca);
    table.push_back({rows[i].stack, cca, fmt(rep.conformance_old),
                     fmt(rep.conformance), fmt(rep.conformance_t),
                     fmt(rep.delta_tput_mbps) + " Mbps",
                     fmt(rep.delta_delay_ms) + " ms"});
    csv.row(std::vector<std::string>{
        rows[i].stack, cca, fmt(rep.conformance_old, 4),
        fmt(rep.conformance, 4), fmt(rep.conformance_t, 4),
        fmt(rep.delta_tput_mbps, 4), fmt(rep.delta_delay_ms, 4)});
  }
  std::cout << harness::render_table(
      {"Stack", "Type", "Conf-old", "Conf", "Conf-T", "d-tput", "d-delay"},
      table);
  std::cout << "\nCSV: " << csv.path() << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
