// Figure 9: Performance Envelopes for mvfst BBR (1, 3, 5 BDP buffers).
// Paper: Conf ~0 at every depth but Conf-T ~0.7, with a large positive
// Δ-tput at 1 BDP (the 1.2x pacing-rate scale lets it take bandwidth
// from the reference flow) that shrinks in deeper buffers.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* impl = reg.find("mvfst", stacks::CcaType::kBbr);
  pe_across_buffers("Figure 9 (mvfst BBR)", *impl,
                    reg.reference(stacks::CcaType::kBbr), {1.0, 3.0, 5.0},
                    "fig09_mvfst_bbr");
  return 0;
}
