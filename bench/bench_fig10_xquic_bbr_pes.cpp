// Figure 10: Performance Envelopes for xquic BBR (1, 3, 5 BDP buffers).
// Paper: low conformance that degrades further in deep buffers (the 2.5
// cwnd gain keeps 25% more data in flight, which costs ever more delay
// as the buffer deepens), with positive Δ-tput.

#include "bench_common.h"

using namespace quicbench;
using namespace quicbench::bench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto* impl = reg.find("xquic", stacks::CcaType::kBbr);
  pe_across_buffers("Figure 10 (xquic BBR)", *impl,
                    reg.reference(stacks::CcaType::kBbr), {1.0, 3.0, 5.0},
                    "fig10_xquic_bbr");
  return 0;
}
