// Minimal tour of the runner API: build a sweep mixing raw pairings and
// conformance cells, run it, and inspect results + scheduler stats.
//
// Run it twice: the second run is served from bench_out/cache/ and the
// manifest reports simulations_executed = 0. Environment knobs:
//   QB_FAST=1      short runs (also the default here)
//   QB_THREADS=N   worker pool size
//   QB_PROGRESS=1  per-pair progress lines on stderr
//   QB_NO_CACHE=1  disable the persistent result cache
//   QB_CACHE_DIR   override the cache directory

#include <iostream>

#include "runner/env.h"
#include "runner/sweep.h"
#include "stacks/registry.h"

using namespace quicbench;

int main() {
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(stacks::CcaType::kCubic);
  const auto* quiche = reg.find("quiche", stacks::CcaType::kCubic);
  const auto* chromium = reg.find("chromium", stacks::CcaType::kCubic);

  // Short runs so the demo finishes quickly even without QB_FAST.
  harness::ExperimentConfig cfg = runner::default_config(1.0);
  cfg.duration = time::sec(20);
  cfg.trials = 2;

  runner::Sweep sweep("sweep_demo");
  const auto fairness = sweep.add_pair(*quiche, *chromium, cfg);
  const auto conf_quiche = sweep.add_conformance(*quiche, ref, cfg);
  const auto conf_chromium = sweep.add_conformance(*chromium, ref, cfg);
  sweep.run();

  const auto& pr = sweep.pair_result(fairness);
  std::cout << "quiche vs chromium share: " << pr.share_a << " / "
            << pr.share_b << "\n";
  std::cout << "quiche conformance:   "
            << sweep.conformance_result(conf_quiche).conformance << "\n";
  std::cout << "chromium conformance: "
            << sweep.conformance_result(conf_chromium).conformance << "\n";

  const auto& st = sweep.stats();
  std::cout << "\nunique pairs: " << st.unique_pairs << " (cache hits "
            << st.cache_hits << ", misses " << st.cache_misses << ")\n"
            << "simulated trials: " << st.simulations_executed << "\n"
            << "threads: " << st.threads
            << ", utilization: " << st.thread_utilization << "\n"
            << "events/sec: " << st.events_per_sec << "\n";
  std::cout << "manifest: " << sweep.write_manifest() << "\n";
  return 0;
}
