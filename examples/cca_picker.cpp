// CCA picker: the paper's §6 "Extending the Performance Envelope to
// other applications" idea, implemented. An application states the
// operating region it wants on the delay-throughput plane (e.g.
// live-streaming wants low delay, bulk download wants high throughput);
// we compute the PEs of the three kernel CCAs over the given network and
// pick the one whose envelope overlaps the desired region the most.
//
//   cca_picker lowlatency|bulk|balanced [bandwidth_mbps] [rtt_ms] [buf_bdp]

#include <iostream>
#include <string>

#include "geom/geom.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace quicbench;

namespace {

// Desired region as a rectangle on the (delay ms, tput Mbps) plane.
geom::Polygon desired_region(const std::string& profile, double bw_mbps,
                             double base_rtt_ms, double max_delay_ms) {
  const double fair = bw_mbps / 2;  // two flows share the link
  double d_lo = base_rtt_ms, d_hi = max_delay_ms;
  double t_lo = 0, t_hi = bw_mbps;
  if (profile == "lowlatency") {
    // At most ~40% queueing headroom over the base RTT.
    d_hi = base_rtt_ms + 0.4 * (max_delay_ms - base_rtt_ms);
    t_lo = 0.5 * fair;  // still want a usable rate
  } else if (profile == "bulk") {
    t_lo = 0.9 * fair;  // throughput first, delay irrelevant
  } else {  // balanced
    d_hi = base_rtt_ms + 0.7 * (max_delay_ms - base_rtt_ms);
    t_lo = 0.7 * fair;
  }
  return {{d_lo, t_lo}, {d_hi, t_lo}, {d_hi, t_hi}, {d_lo, t_hi}};
}

// Share of an implementation's PE points that land in the desired region.
double region_score(const conformance::PerformanceEnvelope& pe,
                    const geom::Polygon& region) {
  if (pe.all_points.empty()) return 0;
  std::size_t in = 0;
  for (const auto& p : pe.all_points) {
    if (geom::point_in_convex(region, p)) ++in;
  }
  return static_cast<double>(in) / static_cast<double>(pe.all_points.size());
}

} // namespace

int main(int argc, char** argv) {
  const std::string profile = argc > 1 ? argv[1] : "lowlatency";
  const double bw = argc > 2 ? std::atof(argv[2]) : 20;
  const double rtt = argc > 3 ? std::atof(argv[3]) : 10;
  const double buf = argc > 4 ? std::atof(argv[4]) : 3.0;

  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(bw);
  cfg.net.base_rtt = time::from_ms(rtt);
  cfg.net.buffer_bdp = buf;
  cfg.duration = time::sec(60);
  cfg.trials = 3;

  // Worst-case standing queue delay on this path.
  const double max_delay_ms = rtt * (1.0 + buf);
  const geom::Polygon region = desired_region(profile, bw, rtt, max_delay_ms);

  std::cout << "cca_picker: application profile '" << profile << "' on "
            << cfg.net.describe() << "\n"
            << "desired region: delay [" << region[0].x << ", "
            << region[1].x << "] ms, tput >= " << region[0].y << " Mbps\n\n";

  const auto& reg = stacks::Registry::instance();
  std::string best;
  double best_score = -1;
  for (const auto cca : {stacks::CcaType::kCubic, stacks::CcaType::kBbr,
                         stacks::CcaType::kReno}) {
    const auto& impl = reg.reference(cca);
    const auto pair = harness::run_pair(impl, impl, cfg);
    const auto pe = conformance::build_pe(pair.points_a);
    const double score = region_score(pe, region);
    const geom::Point c = geom::points_centroid(pe.all_points);
    std::cout << "  " << stacks::to_string(cca) << ": score "
              << harness::format_double(score) << "  (PE centroid "
              << harness::format_double(c.x) << " ms, "
              << harness::format_double(c.y) << " Mbps, k=" << pe.k << ")\n";
    if (score > best_score) {
      best_score = score;
      best = stacks::to_string(cca);
    }
  }
  std::cout << "\nRecommendation: " << best << " (overlap "
            << harness::format_double(best_score) << ")\n";
  return 0;
}
