// Quickstart: measure the conformance of one QUIC CCA implementation
// against its Linux-kernel reference, exactly like the paper's §3
// methodology, and print the Performance Envelopes plus all metrics.
//
//   quickstart [stack] [cca] [buffer_bdp] [duration_sec] [trials]
//   e.g.: quickstart quiche cubic 1.0 120 5

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace quicbench;

int main(int argc, char** argv) {
  const std::string stack = argc > 1 ? argv[1] : "msquic";
  const std::string cca_name = argc > 2 ? argv[2] : "cubic";
  const double buffer_bdp = argc > 3 ? std::atof(argv[3]) : 1.0;
  const int duration_sec = argc > 4 ? std::atoi(argv[4]) : 60;
  const int trials = argc > 5 ? std::atoi(argv[5]) : 5;

  const auto parsed = stacks::parse_cca(cca_name);
  if (!parsed.has_value()) {
    std::cerr << "unknown CCA '" << cca_name
              << "' (cubic|bbr|reno|bbr2|cubic-rack)\n";
    return 1;
  }
  const stacks::CcaType type = *parsed;

  const auto& registry = stacks::Registry::instance();
  // "fixed:<stack>" selects the Table 4 fixed variant.
  stacks::Implementation fixed_storage;
  const stacks::Implementation* test = nullptr;
  if (stack.rfind("fixed:", 0) == 0) {
    const auto* base = registry.find(stack.substr(6), type);
    if (base != nullptr) {
      if (auto fixed = stacks::fixed_variant(*base); fixed.has_value()) {
        fixed_storage = *fixed;
        test = &fixed_storage;
      }
    }
  } else {
    test = registry.find(stack, type);
  }
  if (test == nullptr) {
    std::cerr << "no implementation '" << stack << " " << cca_name
              << "' (see Table 1)\navailable stacks:\n";
    for (const auto& impl : registry.all()) {
      std::cerr << "  " << impl.display << '\n';
    }
    return 1;
  }
  const stacks::Implementation& ref = registry.reference(type);

  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(20);
  cfg.net.base_rtt = time::ms(10);
  cfg.net.buffer_bdp = buffer_bdp;
  cfg.duration = time::sec(duration_sec);
  cfg.trials = trials;

  std::cout << "== QUICbench-cpp quickstart ==\n"
            << "test:      " << test->display << "\n"
            << "reference: " << ref.display << "\n"
            << "network:   " << cfg.net.describe() << "\n"
            << "duration:  " << duration_sec << " s x " << trials
            << " trials\n\n";

  const auto rep = harness::measure_conformance(*test, ref, cfg);

  std::cout << harness::render_pe_plot("Performance Envelopes", rep.ref_pe,
                                       rep.test_pe)
            << '\n';

  const auto pe_info = [](const char* name,
                          const conformance::PerformanceEnvelope& pe) {
    const geom::Point c = geom::points_centroid(pe.all_points);
    std::cout << name << ": k=" << pe.k << " hulls=" << pe.hulls.size()
              << " points=" << pe.all_points.size()
              << " iou=" << harness::format_double(pe.iou)
              << " centroid=(" << harness::format_double(c.x) << " ms, "
              << harness::format_double(c.y) << " Mbps)\n";
    for (const auto& cc : pe.cluster_centroids) {
      std::cout << "    cluster @ (" << harness::format_double(cc.x)
                << " ms, " << harness::format_double(cc.y) << " Mbps)\n";
    }
  };
  pe_info("reference PE", rep.ref_pe);
  pe_info("test PE     ", rep.test_pe);

  std::cout << "\nConformance      = "
            << harness::format_double(rep.conformance) << "\n"
            << "Conformance-old  = "
            << harness::format_double(rep.conformance_old) << "\n"
            << "Conformance-T    = "
            << harness::format_double(rep.conformance_t) << "\n"
            << "Delta-throughput = "
            << harness::format_double(rep.delta_tput_mbps) << " Mbps\n"
            << "Delta-delay      = "
            << harness::format_double(rep.delta_delay_ms) << " ms\n";

  if (rep.conformance < 0.5 && rep.conformance_t > rep.conformance + 0.15) {
    std::cout << "\nHint: high Conformance-T suggests simple parameter "
                 "tuning could fix this implementation.\n";
    if (rep.delta_tput_mbps > 1 && std::abs(rep.delta_delay_ms) < 2) {
      std::cout << "Positive delta-tput with flat delay points at an "
                   "overdriven sending rate (pacing gain).\n";
    } else if (rep.delta_tput_mbps > 1 && rep.delta_delay_ms > 1) {
      std::cout << "Positive delta-tput and delta-delay point at an "
                   "oversized cwnd (cwnd gain).\n";
    }
  }
  return 0;
}
