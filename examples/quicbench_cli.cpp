// quicbench_cli: the command-line orchestrator, equivalent in spirit to
// the paper's QUICbench tool. Subcommands:
//
//   list                                   implementations of Table 1
//   conformance <stack> <cca>              the §3 pipeline + hints
//   fairness <stackA> <ccaA> <stackB> <ccaB>   bandwidth shares
//   heatmap <cca>                          conformance across all stacks
//   pe <stack> <cca>                       dump the PE point cloud as CSV
//
// Common options (after the subcommand arguments):
//   --bw <mbps>  --rtt <ms>  --buf <bdp>  --secs <s>  --trials <n>
//   --seed <n>   --csv <path>
//
// Examples:
//   quicbench_cli conformance quiche cubic --buf 1 --secs 120 --trials 5
//   quicbench_cli fairness lsquic cubic tcp cubic --rtt 50
//   quicbench_cli heatmap bbr --buf 5

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "util/csv.h"

using namespace quicbench;

namespace {

struct Options {
  double bw_mbps = 20;
  double rtt_ms = 10;
  double buf_bdp = 1.0;
  int secs = 60;
  int trials = 5;
  std::uint64_t seed = 42;
  std::string csv;
};

std::optional<stacks::CcaType> parse_cca(const std::string& s) {
  return stacks::parse_cca(s);
}

Options parse_options(const std::vector<std::string>& args,
                      std::size_t from) {
  Options opt;
  for (std::size_t i = from; i + 1 < args.size() + 1; ++i) {
    const auto next = [&](double& out) {
      if (i + 1 < args.size()) out = std::atof(args[++i].c_str());
    };
    if (i >= args.size()) break;
    if (args[i] == "--bw") next(opt.bw_mbps);
    else if (args[i] == "--rtt") next(opt.rtt_ms);
    else if (args[i] == "--buf") next(opt.buf_bdp);
    else if (args[i] == "--secs") {
      double v = opt.secs;
      next(v);
      opt.secs = static_cast<int>(v);
    } else if (args[i] == "--trials") {
      double v = opt.trials;
      next(v);
      opt.trials = static_cast<int>(v);
    } else if (args[i] == "--seed") {
      double v = 0;
      next(v);
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      opt.csv = args[++i];
    }
  }
  return opt;
}

harness::ExperimentConfig to_config(const Options& o) {
  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(o.bw_mbps);
  cfg.net.base_rtt = time::from_ms(o.rtt_ms);
  cfg.net.buffer_bdp = o.buf_bdp;
  cfg.duration = time::sec(o.secs);
  cfg.trials = o.trials;
  cfg.seed = o.seed;
  return cfg;
}

const stacks::Implementation* find_or_die(const std::string& stack,
                                          const std::string& cca) {
  const auto type = parse_cca(cca);
  if (!type.has_value()) {
    std::cerr << "unknown CCA '" << cca << "'\n";
    std::exit(1);
  }
  const auto* impl = stacks::Registry::instance().find(stack, *type);
  if (impl == nullptr) {
    std::cerr << "no implementation '" << stack << " " << cca
              << "' (try: quicbench_cli list)\n";
    std::exit(1);
  }
  return impl;
}

int cmd_list() {
  std::vector<std::vector<std::string>> rows;
  for (const auto& impl : stacks::Registry::instance().all()) {
    rows.push_back({impl.stack, stacks::to_string(impl.cca),
                    impl.is_reference ? "reference" : "",
                    impl.profile.sender.describe()});
  }
  std::cout << harness::render_table({"stack", "cca", "", "profile"}, rows);
  return 0;
}

int cmd_conformance(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::cerr << "usage: quicbench_cli conformance <stack> <cca> [opts]\n";
    return 1;
  }
  const auto* impl = find_or_die(args[1], args[2]);
  const Options opt = parse_options(args, 3);
  const auto cfg = to_config(opt);
  const auto& ref = stacks::Registry::instance().reference(impl->cca);

  std::cout << impl->display << " vs " << ref.display << " on "
            << cfg.net.describe() << "\n";
  const auto rep = harness::measure_conformance(*impl, ref, cfg);
  std::cout << harness::render_pe_plot("Performance Envelopes", rep.ref_pe,
                                       rep.test_pe);
  std::cout << "Conformance   = " << harness::format_double(rep.conformance)
            << "\nConformance-T = "
            << harness::format_double(rep.conformance_t)
            << "\nDelta-tput    = "
            << harness::format_double(rep.delta_tput_mbps)
            << " Mbps\nDelta-delay   = "
            << harness::format_double(rep.delta_delay_ms) << " ms\n";
  if (!opt.csv.empty()) {
    CsvWriter csv(opt.csv, {"metric", "value"});
    csv.row(std::vector<std::string>{
        "conformance", harness::format_double(rep.conformance, 4)});
    csv.row(std::vector<std::string>{
        "conformance_t", harness::format_double(rep.conformance_t, 4)});
    csv.row(std::vector<std::string>{
        "delta_tput_mbps", harness::format_double(rep.delta_tput_mbps, 4)});
    csv.row(std::vector<std::string>{
        "delta_delay_ms", harness::format_double(rep.delta_delay_ms, 4)});
    std::cout << "wrote " << opt.csv << "\n";
  }
  return 0;
}

int cmd_fairness(const std::vector<std::string>& args) {
  if (args.size() < 5) {
    std::cerr << "usage: quicbench_cli fairness <stackA> <ccaA> <stackB> "
                 "<ccaB> [opts]\n";
    return 1;
  }
  const auto* a = find_or_die(args[1], args[2]);
  const auto* b = find_or_die(args[3], args[4]);
  const Options opt = parse_options(args, 5);
  const auto cfg = to_config(opt);
  const auto pr = harness::run_pair(*a, *b, cfg);
  std::cout << a->display << ": " << harness::format_double(pr.tput_a_mbps)
            << " Mbps (share " << harness::format_double(pr.share_a)
            << ")\n"
            << b->display << ": " << harness::format_double(pr.tput_b_mbps)
            << " Mbps (share " << harness::format_double(pr.share_b)
            << ")\n";
  return 0;
}

int cmd_heatmap(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "usage: quicbench_cli heatmap <cca> [opts]\n";
    return 1;
  }
  const auto type = parse_cca(args[1]);
  if (!type.has_value()) {
    std::cerr << "unknown CCA\n";
    return 1;
  }
  const Options opt = parse_options(args, 2);
  const auto cfg = to_config(opt);
  const auto& reg = stacks::Registry::instance();
  const auto& ref = reg.reference(*type);
  const auto ref_pair = harness::run_pair(ref, ref, cfg);

  std::vector<std::string> labels;
  std::vector<std::vector<double>> values;
  for (const auto* impl : reg.with_cca(*type, false)) {
    const auto test_pair = harness::run_pair(*impl, ref, cfg);
    const auto rep =
        conformance::evaluate(ref_pair.points_a, test_pair.points_a);
    labels.push_back(impl->display);
    values.push_back({rep.conformance, rep.conformance_t});
  }
  std::cout << harness::render_heatmap(
      "conformance heatmap (" + cfg.net.describe() + ")", labels,
      {"conf", "confT"}, values);
  return 0;
}

int cmd_pe(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::cerr << "usage: quicbench_cli pe <stack> <cca> [opts]\n";
    return 1;
  }
  const auto* impl = find_or_die(args[1], args[2]);
  const Options opt = parse_options(args, 3);
  const auto cfg = to_config(opt);
  const auto& ref = stacks::Registry::instance().reference(impl->cca);
  const auto pair = harness::run_pair(*impl, ref, cfg);
  const auto pe = conformance::build_pe(pair.points_a);

  const std::string path = opt.csv.empty() ? "pe_points.csv" : opt.csv;
  CsvWriter csv(path, {"delay_ms", "tput_mbps"});
  for (const auto& p : pe.all_points) csv.row({p.x, p.y});
  std::cout << "k=" << pe.k << " hulls=" << pe.hulls.size()
            << " iou=" << harness::format_double(pe.iou) << "\nwrote "
            << pe.all_points.size() << " points to " << path << "\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: quicbench_cli "
                 "list|conformance|fairness|heatmap|pe ...\n";
    return 1;
  }
  if (args[0] == "list") return cmd_list();
  if (args[0] == "conformance") return cmd_conformance(args);
  if (args[0] == "fairness") return cmd_fairness(args);
  if (args[0] == "heatmap") return cmd_heatmap(args);
  if (args[0] == "pe") return cmd_pe(args);
  std::cerr << "unknown subcommand '" << args[0] << "'\n";
  return 1;
}
