// Wild probe: measure an implementation's conformance twice — on the
// clean emulated testbed and on a noisy wide-area path (jitter + on/off
// cross traffic), the Figure 11 methodology — and report whether the
// verdict changes. The paper found in-the-wild conformance close to the
// 1 BDP testbed values.
//
//   wild_probe [stack] [cca]

#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace quicbench;

int main(int argc, char** argv) {
  const std::string stack = argc > 1 ? argv[1] : "quiche";
  const std::string cca_name = argc > 2 ? argv[2] : "cubic";

  const auto parsed = stacks::parse_cca(cca_name);
  if (!parsed.has_value()) {
    std::cerr << "unknown CCA '" << cca_name
              << "' (cubic|bbr|reno|bbr2|cubic-rack)\n";
    return 1;
  }
  const stacks::CcaType type = *parsed;

  const auto& reg = stacks::Registry::instance();
  const auto* impl = reg.find(stack, type);
  if (impl == nullptr) {
    std::cerr << "unknown implementation " << stack << " " << cca_name
              << "\n";
    return 1;
  }
  const auto& ref = reg.reference(type);

  harness::ExperimentConfig testbed;
  testbed.net.bandwidth = rate::mbps(20);
  testbed.net.base_rtt = time::ms(10);
  testbed.net.buffer_bdp = 1.0;
  testbed.duration = time::sec(60);
  testbed.trials = 5;

  harness::ExperimentConfig wild = testbed;
  wild.net.bandwidth = rate::mbps(100);
  wild.net.base_rtt = time::ms(50);
  wild.net.path_jitter = time::ms(2);
  wild.net.cross_traffic_rate = rate::mbps(8);
  wild.duration = time::sec(40);

  std::cout << "wild_probe: " << impl->display << " vs " << ref.display
            << "\n\n";
  const auto lab = harness::measure_conformance(*impl, ref, testbed);
  std::cout << "testbed (" << testbed.net.describe() << "):\n"
            << "  Conf=" << harness::format_double(lab.conformance)
            << "  Conf-T=" << harness::format_double(lab.conformance_t)
            << "  d-tput=" << harness::format_double(lab.delta_tput_mbps)
            << " Mbps\n";

  const auto net = harness::measure_conformance(*impl, ref, wild);
  std::cout << "wild    (" << wild.net.describe()
            << " + jitter + cross traffic):\n"
            << "  Conf=" << harness::format_double(net.conformance)
            << "  Conf-T=" << harness::format_double(net.conformance_t)
            << "  d-tput=" << harness::format_double(net.delta_tput_mbps)
            << " Mbps\n\n";

  const bool lab_low = lab.conformance < 0.5;
  const bool net_low = net.conformance < 0.5;
  if (lab_low == net_low) {
    std::cout << "Verdicts agree: the testbed conformance result holds in "
                 "the wild.\n";
  } else {
    std::cout << "Verdicts DISAGREE — network artifacts change the "
                 "picture; investigate before trusting either.\n";
  }
  return 0;
}
