// qlog export: run one flow of a chosen implementation against the
// kernel reference and dump a qlog (draft-ietf-quic-qlog) JSON event
// trace for the test flow — loadable in qvis, the visualization tool the
// QUIC community (and the speciation study this paper builds on) uses to
// inspect real stacks.
//
//   qlog_export [stack] [cca] [out.qlog] [secs]

#include <iostream>
#include <memory>
#include <string>

#include "cca/cubic.h"
#include "harness/experiment.h"
#include "netsim/topology.h"
#include "trace/qlog.h"
#include "transport/receiver.h"
#include "transport/sender.h"

using namespace quicbench;

int main(int argc, char** argv) {
  const std::string stack = argc > 1 ? argv[1] : "quiche";
  const std::string cca_name = argc > 2 ? argv[2] : "cubic";
  const std::string out = argc > 3 ? argv[3] : "flow.qlog";
  const int secs = argc > 4 ? std::atoi(argv[4]) : 20;

  const auto parsed = stacks::parse_cca(cca_name);
  if (!parsed.has_value()) {
    std::cerr << "unknown CCA '" << cca_name
              << "' (cubic|bbr|reno|bbr2|cubic-rack)\n";
    return 1;
  }
  const stacks::CcaType type = *parsed;

  const auto& reg = stacks::Registry::instance();
  const auto* impl = reg.find(stack, type);
  if (impl == nullptr) {
    std::cerr << "unknown implementation\n";
    return 1;
  }
  const auto& ref = reg.reference(type);

  netsim::Simulator sim;
  netsim::DumbbellConfig dc;
  dc.bandwidth = rate::mbps(20);
  dc.base_rtt = time::ms(10);
  dc.buffer_bytes = bdp_bytes(dc.bandwidth, dc.base_rtt);
  netsim::Dumbbell db(sim, dc, 2);

  trace::QlogWriter qlog(impl->display + " vs " + ref.display,
                         stacks::to_string(type));

  std::vector<std::unique_ptr<transport::SenderEndpoint>> senders;
  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> receivers;
  Rng master(7);
  for (int i = 0; i < 2; ++i) {
    const stacks::Implementation& im = (i == 0) ? *impl : ref;
    auto recv = std::make_unique<transport::ReceiverEndpoint>(
        sim, i, im.profile.receiver, db.reverse_in(i));
    auto send = std::make_unique<transport::SenderEndpoint>(
        sim, i, im.profile.sender, im.make_cca(), db.forward_in(),
        master.fork(static_cast<std::uint64_t>(i)));
    if (i == 0) {
      send->set_packet_sent_callback(
          [&qlog](Time t, std::uint64_t pn, Bytes size, bool retx) {
            qlog.packet_sent(t, pn, size, retx);
          });
      send->set_packet_lost_callback([&qlog](Time t, std::uint64_t pn) {
        qlog.packet_lost(t, pn);
      });
      send->set_cwnd_callback(
          [&qlog, s = send.get()](Time t, Bytes cwnd, Bytes inflight) {
            qlog.metrics_updated(t, cwnd, inflight, s->rtt().smoothed());
          });
      send->controller().set_phase_callback(
          [&qlog](Time t, std::string_view from, std::string_view to) {
            qlog.congestion_state_updated(t, from, to);
          });
      send->set_timer_callback(
          [&qlog](Time t, transport::SenderEndpoint::LossTimerKind kind,
                  transport::SenderEndpoint::LossTimerEvent event,
                  Time expiry) {
            using Kind = transport::SenderEndpoint::LossTimerKind;
            using Ev = transport::SenderEndpoint::LossTimerEvent;
            const auto type = kind == Kind::kPto
                                  ? trace::QlogWriter::TimerType::kPto
                                  : trace::QlogWriter::TimerType::kLossDetection;
            const auto ev = event == Ev::kSet
                                ? trace::QlogWriter::TimerEvent::kSet
                                : event == Ev::kExpired
                                      ? trace::QlogWriter::TimerEvent::kExpired
                                      : trace::QlogWriter::TimerEvent::kCancelled;
            qlog.loss_timer_updated(t, type, ev, expiry);
          });
      send->set_spurious_loss_callback([&qlog](Time t, std::uint64_t pn) {
        qlog.spurious_loss_detected(t, pn);
      });
      recv->set_packet_callback(
          [&qlog](Time t, std::uint64_t pn, Bytes size) {
            qlog.packet_received(t, pn, size);
          });
    }
    db.attach_receiver(i, recv.get());
    db.attach_sender_ack_sink(i, send.get());
    send->start(0);
    receivers.push_back(std::move(recv));
    senders.push_back(std::move(send));
  }

  sim.run_until(time::sec(secs));

  std::string error;
  if (!qlog.write_file(out, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  std::cout << "wrote " << qlog.event_count() << " events to " << out
            << " (" << impl->display << ", " << secs << " s, "
            << senders[0]->stats().packets_sent << " packets sent, "
            << senders[0]->stats().losses_detected << " losses)\n";
  return 0;
}
