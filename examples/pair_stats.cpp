// Run one A-vs-B pairing and print per-flow throughput, shares and sender
// statistics. Useful for debugging fairness questions before trusting the
// bigger fairness matrices.
//
//   pair_stats <stackA> <ccaA> <stackB> <ccaB> [buffer_bdp] [secs]

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace quicbench;

namespace {

stacks::CcaType parse_cca(const std::string& s) {
  if (const auto t = stacks::parse_cca(s); t.has_value()) return *t;
  std::cerr << "unknown cca " << s << "\n";
  std::exit(1);
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::cerr << "usage: pair_stats <stackA> <ccaA> <stackB> <ccaB> "
                 "[buffer_bdp] [secs]\n";
    return 1;
  }
  const auto& reg = stacks::Registry::instance();
  const auto* a = reg.find(argv[1], parse_cca(argv[2]));
  const auto* b = reg.find(argv[3], parse_cca(argv[4]));
  if (a == nullptr || b == nullptr) {
    std::cerr << "implementation not found\n";
    return 1;
  }
  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(20);
  cfg.net.base_rtt = time::ms(10);
  cfg.net.buffer_bdp = argc > 5 ? std::atof(argv[5]) : 1.0;
  cfg.duration = time::sec(argc > 6 ? std::atoi(argv[6]) : 60);
  cfg.trials = 3;

  std::cout << a->display << " vs " << b->display << " @ "
            << cfg.net.describe() << "\n";
  for (int t = 0; t < cfg.trials; ++t) {
    const auto tr = harness::run_trial(*a, *b, cfg,
                                       static_cast<std::uint64_t>(t));
    for (int i = 0; i < 2; ++i) {
      const auto& f = tr.flow[i];
      std::cout << "  trial " << t << " flow " << i << " ("
                << (i == 0 ? a->display : b->display) << "): "
                << harness::format_double(rate::to_mbps(f.avg_throughput))
                << " Mbps  sent=" << f.sender_stats.packets_sent
                << " losses=" << f.sender_stats.losses_detected
                << " events=" << f.sender_stats.loss_events
                << " retx=" << f.sender_stats.retransmissions
                << " spurious=" << f.sender_stats.spurious_losses
                << " ptos=" << f.sender_stats.ptos_fired << "\n";
    }
  }
  const auto pr = harness::run_pair(*a, *b, cfg);
  std::cout << "mean: " << harness::format_double(pr.tput_a_mbps) << " vs "
            << harness::format_double(pr.tput_b_mbps)
            << " Mbps   share_a=" << harness::format_double(pr.share_a)
            << "\n";
  return 0;
}
