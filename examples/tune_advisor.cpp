// Tune advisor: the workflow the paper proposes for CCA developers (§3.3,
// §5). Configure a custom QUIC CUBIC or BBR with your own parameters,
// measure Conformance / Conformance-T against the kernel reference, and
// get a hint about which knob is off.
//
//   tune_advisor cubic [beta] [c] [hystart 0|1] [emulated_flows]
//   tune_advisor bbr   [cwnd_gain] [pacing_scale]
//
// Examples:
//   tune_advisor cubic 0.85 0.4 1 2     # chromium-like (2 emulated flows)
//   tune_advisor bbr 2.5 1.0            # xquic-like cwnd gain
//   tune_advisor bbr 2.0 1.2            # mvfst-like hot pacer

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace quicbench;

int main(int argc, char** argv) {
  const std::string cca = argc > 1 ? argv[1] : "cubic";
  const auto& reg = stacks::Registry::instance();

  stacks::Implementation custom;
  stacks::CcaType type;
  if (cca == "cubic") {
    type = stacks::CcaType::kCubic;
    custom = *reg.find("msquic", type);  // a conformant baseline profile
    custom.display = "custom cubic";
    if (argc > 2) custom.cubic.beta = std::atof(argv[2]);
    if (argc > 3) custom.cubic.c = std::atof(argv[3]);
    if (argc > 4) custom.cubic.hystart = std::atoi(argv[4]) != 0;
    if (argc > 5) custom.cubic.emulated_flows = std::atoi(argv[5]);
    std::cout << "custom CUBIC: beta=" << custom.cubic.beta
              << " C=" << custom.cubic.c
              << " hystart=" << custom.cubic.hystart
              << " emulated_flows=" << custom.cubic.emulated_flows << "\n";
  } else if (cca == "bbr") {
    type = stacks::CcaType::kBbr;
    custom = *reg.find("lsquic", type);
    custom.profile = transport::default_quic_profile();
    custom.display = "custom bbr";
    if (argc > 2) custom.bbr.cwnd_gain = std::atof(argv[2]);
    if (argc > 3) custom.bbr.pacing_rate_scale = std::atof(argv[3]);
    std::cout << "custom BBR: cwnd_gain=" << custom.bbr.cwnd_gain
              << " pacing_scale=" << custom.bbr.pacing_rate_scale << "\n";
  } else {
    std::cerr << "usage: tune_advisor cubic|bbr [params...]\n";
    return 1;
  }

  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = rate::mbps(20);
  cfg.net.base_rtt = time::ms(10);
  cfg.net.buffer_bdp = 1.0;
  cfg.duration = time::sec(60);
  cfg.trials = 5;

  const auto rep =
      harness::measure_conformance(custom, reg.reference(type), cfg);

  std::cout << "\nConformance   = " << harness::format_double(rep.conformance)
            << "\nConformance-T = "
            << harness::format_double(rep.conformance_t)
            << "\nDelta-tput    = "
            << harness::format_double(rep.delta_tput_mbps) << " Mbps"
            << "\nDelta-delay   = "
            << harness::format_double(rep.delta_delay_ms) << " ms\n\n";

  // The paper's diagnosis matrix (§3.3).
  if (rep.conformance >= 0.5) {
    std::cout << "Verdict: conformant. Ship it.\n";
    return 0;
  }
  std::cout << "Verdict: LOW conformance.\n";
  if (rep.conformance_t > rep.conformance + 0.15) {
    std::cout << "Conformance-T is much higher: a parameter-tuning fix is "
                 "likely.\n";
    const bool tput_up = rep.delta_tput_mbps > 1.0;
    const bool tput_down = rep.delta_tput_mbps < -1.0;
    const bool delay_up = rep.delta_delay_ms > 1.0;
    if (tput_up && delay_up) {
      std::cout << "  +tput and +delay: the cwnd is oversized — check "
                   "cwnd gain / emulated flows / beta.\n";
    } else if (tput_up) {
      std::cout << "  +tput with flat delay: the sending rate is "
                   "overdriven — check the pacing gain/rate scale.\n";
    } else if (tput_down) {
      std::cout << "  -tput: the implementation undershoots — check flow "
                   "control limits, pacing, or missing HyStart.\n";
    }
  } else {
    std::cout << "Conformance-T is also low: the PE shape itself differs — "
                 "look for algorithmic or stack-level differences, not "
                 "parameters.\n";
  }
  return 0;
}
