#include "harness/scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/attrib.h"
#include "obs/invariants.h"
#include "transport/receiver.h"

namespace quicbench::harness {

using netsim::Dumbbell;
using netsim::DumbbellConfig;
using netsim::Simulator;
using stacks::Implementation;

Bytes NetworkConfig::buffer_bytes() const {
  const Bytes bdp = bdp_bytes(bandwidth, base_rtt);
  const auto buf = static_cast<Bytes>(static_cast<double>(bdp) * buffer_bdp);
  return std::max<Bytes>(buf, 3000);  // at least a couple of packets
}

std::string NetworkConfig::describe() const {
  std::ostringstream os;
  os << rate::to_mbps(bandwidth) << " Mbps, " << time::to_ms(base_rtt)
     << " ms RTT, " << buffer_bdp << " BDP buffer";
  return os.str();
}

void NetworkConfig::validate(const std::string& context) const {
  const auto fail = [&context](const std::string& msg) {
    throw std::invalid_argument(context + ": " + msg);
  };
  if (bandwidth <= 0) {
    fail("net.bandwidth must be positive (got " +
         std::to_string(rate::to_mbps(bandwidth)) +
         " Mbps); a zero-rate bottleneck never delivers");
  }
  if (base_rtt <= 0) {
    fail("net.base_rtt must be positive (got " +
         std::to_string(time::to_ms(base_rtt)) +
         " ms); the dumbbell needs a propagation delay");
  }
  if (trace_period > 0 && trace_opportunities.empty()) {
    fail("net.trace_period is set but net.trace_opportunities is empty; "
         "a delivery trace needs at least one opportunity timestamp");
  }
  if (!trace_opportunities.empty() && trace_period <= 0) {
    fail("net.trace_opportunities is set but net.trace_period is not "
         "positive; set trace_period to the trace's wrap-around length");
  }
  impairment.validate();
}

netsim::DumbbellConfig to_dumbbell_config(const NetworkConfig& net) {
  DumbbellConfig dc;
  dc.bandwidth = net.bandwidth;
  dc.base_rtt = net.base_rtt;
  dc.buffer_bytes = net.buffer_bytes();
  dc.path_jitter = std::max(net.base_jitter, net.path_jitter);
  dc.jitter_allows_reorder = net.jitter_reorder;
  dc.trace_opportunities = net.trace_opportunities;
  dc.trace_period = net.trace_period;
  dc.impairment = net.impairment;
  // Same-tick bottleneck delivery batching: order-identical (no in-tree
  // sink schedules same-tick events — every downstream delay and flush
  // window is positive), fewer timer events.
  dc.batch_same_tick_delivery = true;
  return dc;
}

std::string to_string(FlowRole role) {
  switch (role) {
    case FlowRole::kTest: return "test";
    case FlowRole::kReference: return "reference";
    case FlowRole::kBackground: return "background";
  }
  return "unknown";
}

void ScenarioConfig::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ScenarioConfig: " + msg);
  };
  if (trials < 1) {
    fail("trials must be >= 1 (got " + std::to_string(trials) +
         "); every experiment needs at least one trial");
  }
  if (duration <= 0) {
    fail("duration must be positive (got " +
         std::to_string(time::to_sec(duration)) +
         " s); flows need time to reach steady state");
  }
  if (flows.empty()) {
    fail("flows must not be empty; a scenario needs at least one FlowSpec");
  }
  if (fairness_window < 0) {
    fail("fairness_window must be >= 0 (got " +
         std::to_string(time::to_sec(fairness_window)) +
         " s); use 0 to compute only the overall Jain index");
  }
  bool any_sampled = false;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& f = flows[i];
    const std::string field = "flows[" + std::to_string(i) + "]";
    if (f.arrival_rate < 0) {
      fail(field + ".arrival_rate must be >= 0 (got " +
           std::to_string(f.arrival_rate) +
           " /s); a Poisson arrival process needs a non-negative rate");
    }
    if (f.flow_size == 0) {
      fail(field + ".flow_size must not be 0: a zero-size finite flow never "
           "sends; use FlowSpec::kUnlimited for an unbounded flow");
    }
    if (f.flow_size < 0 && f.flow_size != FlowSpec::kUnlimited) {
      fail(field + ".flow_size must be positive or FlowSpec::kUnlimited (got " +
           std::to_string(f.flow_size) + ")");
    }
    if (f.start_at < 0) {
      fail(field + ".start_at must be >= 0 (got " +
           std::to_string(time::to_sec(f.start_at)) + " s)");
    }
    if (f.start_spread < 0) {
      fail(field + ".start_spread must be >= 0 (got " +
           std::to_string(time::to_sec(f.start_spread)) + " s)");
    }
    if (f.sample_size && !size_dist.enabled()) {
      fail(field + ".sample_size is set but size_dist is disabled; set "
           "size_dist.min_bytes (and max_bytes) to the sampled size range");
    }
    any_sampled = any_sampled || f.sample_size;
  }
  if (any_sampled) {
    if (size_dist.max_bytes < size_dist.min_bytes) {
      fail("size_dist.max_bytes must be >= size_dist.min_bytes (got " +
           std::to_string(size_dist.max_bytes) + " < " +
           std::to_string(size_dist.min_bytes) + ")");
    }
    if (size_dist.shape <= 0) {
      fail("size_dist.shape must be positive (got " +
           std::to_string(size_dist.shape) +
           "); the bounded Pareto tail exponent");
    }
  }
  net.validate("ScenarioConfig");
}

std::size_t test_flow_index(const ScenarioConfig& cfg) {
  for (std::size_t i = 0; i < cfg.flows.size(); ++i) {
    if (cfg.flows[i].role == FlowRole::kTest) return i;
  }
  return 0;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

ScenarioTrialResult run_scenario_trial(const ScenarioConfig& cfg,
                                       std::uint64_t trial_index) {
  return run_scenario_trial(cfg, trial_index, ScenarioObservers{});
}

namespace {

// Accumulates per-flow CCA phase residency from the observation-only
// phase callbacks. `current`/`since` track the open interval; the trial
// closes it against the configured duration.
struct PhaseAccum {
  std::map<std::string, double, std::less<>> sec;
  std::string current;
  Time since = 0;
};

// Bounded-Pareto inverse CDF: heavy-tailed flow sizes clamped to
// [min_bytes, max_bytes].
Bytes sample_bounded_pareto(Rng& rng, const FlowSizeDist& d) {
  const double u = rng.uniform();
  const double l = static_cast<double>(d.min_bytes);
  const double h = static_cast<double>(d.max_bytes);
  const double ratio = std::pow(l / h, d.shape);
  const double x = l / std::pow(1.0 - u * (1.0 - ratio), 1.0 / d.shape);
  return std::clamp(static_cast<Bytes>(x), d.min_bytes, d.max_bytes);
}

// Payload bytes delivered within [t0, t1). Deliveries are recorded in
// time order, so a binary search finds the window start.
Bytes bytes_in_window(const trace::FlowTrace& tr, Time t0, Time t1) {
  const auto begin = std::lower_bound(
      tr.deliveries.begin(), tr.deliveries.end(), t0,
      [](const trace::DeliveryRecord& d, Time t) { return d.time < t; });
  Bytes sum = 0;
  for (auto it = begin; it != tr.deliveries.end() && it->time < t1; ++it) {
    sum += it->payload;
  }
  return sum;
}

// Jain's index over the flows active in [t0, t1): a flow participates if
// its [start, finish) interval intersects the window, contributing the
// bytes it delivered inside the window (possibly zero).
double window_jain(const ScenarioTrialResult& result, Time t0, Time t1,
                   Time duration) {
  std::vector<double> xs;
  for (const ScenarioFlowTrial& ft : result.flows) {
    const Time end = ft.finish >= 0 ? ft.finish : duration;
    if (ft.start >= t1 || end <= t0) continue;
    xs.push_back(
        static_cast<double>(bytes_in_window(ft.result.trace, t0, t1)));
  }
  return jain_index(xs);
}

} // namespace

ScenarioTrialResult run_scenario_trial(const ScenarioConfig& cfg,
                                       std::uint64_t trial_index,
                                       const ScenarioObservers& observers) {
  const std::size_t n = cfg.flows.size();
  // A dumbbell trial keeps well under kDefaultSizeHint concurrent events
  // (see ScenarioTrialResult::engine), so the default hint avoids all
  // slot-table and heap growth in steady state.
  Simulator sim(Simulator::kDefaultSizeHint);
  Rng master(cfg.seed * 0x9E3779B97F4A7C15ULL + trial_index * 1000003ULL + 1);
  Rng jitter_rng = master.fork(1);

  const DumbbellConfig dc = to_dumbbell_config(cfg.net);
  Dumbbell db(sim, dc, static_cast<int>(n), &jitter_rng);

  obs::MetricsRegistry& reg = observers.metrics != nullptr
                                  ? *observers.metrics
                                  : obs::MetricsRegistry::noop();
  if (reg.enabled() && db.trace_bottleneck() == nullptr) {
    db.bottleneck().attach_metrics(reg, "bottleneck");
  }
  if (reg.enabled() && db.forward_impairment() != nullptr) {
    db.forward_impairment()->attach_metrics(reg, "impairment.forward");
  }

  ScenarioTrialResult result;
  result.flows.resize(n);  // sized up front: callbacks hold references
  std::vector<PhaseAccum> phase_acc(n);
  std::vector<std::unique_ptr<transport::SenderEndpoint>> senders;
  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> receivers;
  senders.reserve(n);
  receivers.reserve(n);

  // Runtime invariant checking (QB_INVARIANTS, default on): one checker
  // per flow, fed from the same passive hooks as the flight recorder, so
  // every trial — and thus every ctest target — doubles as a correctness
  // probe. The checkers never influence the simulation; violations throw
  // at trial end.
  const bool inv = obs::invariants_enabled();
  std::vector<std::unique_ptr<obs::InvariantChecker>> checkers(n);
  if (inv) {
    for (std::size_t i = 0; i < n; ++i) {
      checkers[i] = std::make_unique<obs::InvariantChecker>(
          "flow" + std::to_string(i), cfg.net.base_rtt);
    }
  }

  std::vector<Time> starts(n);
  std::vector<Bytes> sizes(n);

  for (std::size_t i = 0; i < n; ++i) {
    const FlowSpec& spec = cfg.flows[i];
    const Implementation& impl = spec.impl;
    starts[i] = spec.start_at;
    sizes[i] = spec.flow_size;

    const int fi = static_cast<int>(i);
    auto receiver = std::make_unique<transport::ReceiverEndpoint>(
        sim, fi, impl.profile.receiver, db.reverse_in(fi));
    auto sender = std::make_unique<transport::SenderEndpoint>(
        sim, fi, impl.profile.sender, impl.make_cca(), db.forward_in(),
        master.fork(static_cast<std::uint64_t>(10 + i)));
    // Duplicate same-tick ACK deliveries (duplication impairment) are
    // absorbed without reprocessing; provably a no-op, and the sender
    // disarms itself whenever a loss-timer observer (qlog) is attached.
    sender->set_coalesce_same_tick_acks(true);
    // Receiver-side mirror: a same-tick duplicate of the packet just
    // immediate-acked replays the stashed ACK frame byte-for-byte.
    receiver->set_coalesce_same_tick_dups(true);

    trace::QlogWriter* ql =
        i < observers.qlog.size() ? observers.qlog[i] : nullptr;
    obs::FlowSampler* fs =
        i < observers.flight.size() ? observers.flight[i] : nullptr;
    transport::SenderEndpoint* snd = sender.get();
    obs::InvariantChecker* chk = checkers[i].get();
    const std::string fp = "flow" + std::to_string(i);

    trace::FlowTrace& tr = result.flows[i].result.trace;
    // Pre-size the recording arrays to the most the bottleneck could
    // deliver over the trial (capped, and scaled to an even share for
    // many-flow scenarios), so the per-packet record calls never
    // reallocate mid-run.
    {
      const double pkts = time::to_sec(cfg.duration) *
                          (static_cast<double>(cfg.net.bandwidth) / 8.0) /
                          static_cast<double>(impl.profile.sender.mss);
      const double share = n <= 2 ? 1.0 : 2.0 / static_cast<double>(n);
      const auto est = static_cast<std::size_t>(std::min(pkts * share, 2.5e6));
      tr.deliveries.reserve(est);
      tr.rtt_samples.reserve(est / 2 + 1);
    }
    if (fs == nullptr) {
      receiver->set_delivery_callback(
          [&tr](Time now, Bytes payload, Time) {
            tr.record_delivery(now, payload);
          });
    } else {
      // Flight recorder piggybacks on deliveries: when the sampling
      // interval has elapsed, snapshot the sender's state (reads only),
      // then account this delivery toward the next sample's rate window.
      receiver->set_delivery_callback(
          [&tr, fs, snd](Time now, Bytes payload, Time) {
            tr.record_delivery(now, payload);
            if (fs->due(now)) {
              fs->record(now, snd->controller().cwnd(),
                         snd->bytes_in_flight(), snd->rtt().smoothed(),
                         snd->controller().pacing_rate(),
                         snd->controller().phase());
            }
            fs->on_delivery(now, payload);
          });
    }
    obs::Histogram* rtt_hist =
        reg.enabled() ? &reg.histogram(fp + ".rtt_ms") : nullptr;
    sender->set_rtt_callback([&tr, rtt_hist, chk](Time now, Time rtt) {
      tr.record_rtt(now, rtt);
      if (rtt_hist != nullptr) rtt_hist->observe(time::to_ms(rtt));
      if (chk != nullptr) chk->on_rtt_sample(now, rtt);
    });
    const bool rec = cfg.record_cwnd;
    if (rec || ql != nullptr || chk != nullptr) {
      sender->set_cwnd_callback(
          [&tr, ql, rec, snd, chk](Time now, Bytes cwnd, Bytes inflight) {
            if (rec) tr.record_cwnd(now, cwnd, inflight);
            if (ql != nullptr) {
              ql->metrics_updated(now, cwnd, inflight, snd->rtt().smoothed());
            }
            if (chk != nullptr) chk->on_cwnd_update(now, cwnd, inflight);
          });
    }

    // Phase residency is tracked in every trial; the qlog state event and
    // the recovery-entry counter piggyback on the same transition.
    PhaseAccum& acc = phase_acc[i];
    obs::Counter* recovery_ctr =
        reg.enabled() ? &reg.counter(fp + ".recovery_entries") : nullptr;
    sender->controller().set_phase_callback(
        [&acc, ql, recovery_ctr](Time now, std::string_view from,
                                 std::string_view to) {
          acc.sec[std::string(from)] += time::to_sec(now - acc.since);
          acc.current.assign(to);
          acc.since = now;
          if (ql != nullptr) ql->congestion_state_updated(now, from, to);
          if (recovery_ctr != nullptr && to == "recovery") {
            recovery_ctr->add();
          }
        });

    if (ql != nullptr || chk != nullptr) {
      sender->set_packet_sent_callback(
          [ql, chk, snd](Time now, std::uint64_t pn, Bytes size, bool retx) {
            if (ql != nullptr) ql->packet_sent(now, pn, size, retx);
            if (chk != nullptr) {
              chk->on_packet_sent(now, pn, size, retx, snd->bytes_in_flight(),
                                  snd->controller().cwnd());
            }
          });
      sender->set_packet_lost_callback(
          [ql, chk](Time now, std::uint64_t pn) {
            if (ql != nullptr) ql->packet_lost(now, pn);
            if (chk != nullptr) chk->on_packet_lost(now, pn);
          });
    }
    if (chk != nullptr) {
      sender->set_packet_acked_callback(
          [chk, snd](Time now, std::uint64_t pn, Bytes size) {
            chk->on_packet_acked(now, pn, size, snd->bytes_in_flight());
          });
    }
    if (ql != nullptr) {
      receiver->set_packet_callback(
          [ql](Time now, std::uint64_t pn, Bytes size) {
            ql->packet_received(now, pn, size);
          });
      sender->set_timer_callback(
          [ql](Time now, transport::SenderEndpoint::LossTimerKind kind,
               transport::SenderEndpoint::LossTimerEvent event, Time expiry) {
            using TK = transport::SenderEndpoint::LossTimerKind;
            using TE = transport::SenderEndpoint::LossTimerEvent;
            const auto type = kind == TK::kPto
                                  ? trace::QlogWriter::TimerType::kPto
                                  : trace::QlogWriter::TimerType::kLossDetection;
            auto ev = trace::QlogWriter::TimerEvent::kSet;
            if (event == TE::kExpired) {
              ev = trace::QlogWriter::TimerEvent::kExpired;
            } else if (event == TE::kCancelled) {
              ev = trace::QlogWriter::TimerEvent::kCancelled;
            }
            ql->loss_timer_updated(now, type, ev, expiry);
          });
    }
    obs::Histogram* pto_hist =
        reg.enabled() ? &reg.histogram(fp + ".pto_time_sec") : nullptr;
    if (pto_hist != nullptr || chk != nullptr) {
      sender->set_pto_callback([pto_hist, chk](Time now, int count) {
        if (pto_hist != nullptr) pto_hist->observe(time::to_sec(now));
        if (chk != nullptr) chk->on_pto(now, count);
      });
    }
    obs::Histogram* spur_hist =
        reg.enabled() ? &reg.histogram(fp + ".spurious_loss_time_sec")
                      : nullptr;
    if (ql != nullptr || spur_hist != nullptr || chk != nullptr) {
      sender->set_spurious_loss_callback(
          [ql, spur_hist, chk](Time now, std::uint64_t pn) {
            if (ql != nullptr) ql->spurious_loss_detected(now, pn);
            if (spur_hist != nullptr) spur_hist->observe(time::to_sec(now));
            if (chk != nullptr) chk->on_spurious_loss(now, pn);
          });
    }

    db.attach_receiver(fi, receiver.get());
    db.attach_sender_ack_sink(fi, sender.get());
    receivers.push_back(std::move(receiver));
    senders.push_back(std::move(sender));
  }

  std::unique_ptr<netsim::CrossTrafficSource> cross;
  if (cfg.net.cross_traffic_rate > 0) {
    cross = std::make_unique<netsim::CrossTrafficSource>(
        sim, db.forward_in(), cfg.net.cross_traffic_rate, 1200,
        cfg.net.cross_on, cfg.net.cross_off, master.fork(99));
    cross->start();
  }

  // Start-time spread draws consume the master stream in flow order
  // (matching the historical second-flow draw of the pair harness).
  for (std::size_t i = 0; i < n; ++i) {
    const FlowSpec& spec = cfg.flows[i];
    if (spec.start_spread > 0) {
      starts[i] += static_cast<Time>(master.uniform() *
                                     static_cast<double>(spec.start_spread));
    }
  }

  // Churn draws come from their own stream, forked only when some flow
  // actually uses Poisson arrivals or sampled sizes, so churn-free
  // scenarios stay bit-identical to builds that predate churn. Arrivals
  // accumulate exponential gaps along the spec order; sizes are drawn in
  // the same single deterministic pass.
  bool churny = false;
  for (const FlowSpec& spec : cfg.flows) {
    churny = churny || spec.arrival_rate > 0 || spec.sample_size;
  }
  if (churny) {
    Rng churn = master.fork(500);
    Time arrival_clock = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const FlowSpec& spec = cfg.flows[i];
      if (spec.arrival_rate > 0) {
        arrival_clock += static_cast<Time>(
            churn.exponential(1e9 / spec.arrival_rate));
        starts[i] = arrival_clock;
      }
      if (spec.sample_size) {
        sizes[i] = sample_bounded_pareto(churn, cfg.size_dist);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.flows[i].start = starts[i];
    result.flows[i].target_size = sizes[i];
    if (sizes[i] > 0) {
      senders[i]->set_data_limit(sizes[i]);
      ScenarioFlowTrial& ft = result.flows[i];
      senders[i]->set_finished_callback([&ft](Time now) { ft.finish = now; });
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    senders[i]->start(starts[i]);
  }

  sim.run_until(cfg.duration);

  // Post-run collection: series sampling, fairness, telemetry, final
  // invariant checks. One attribution scope for the whole block.
  QB_ATTRIB_SCOPE(kHarnessCollect);

  for (std::size_t i = 0; i < n; ++i) {
    FlowResult& fr = result.flows[i].result;
    fr.points = trace::sample_series(fr.trace, cfg.duration,
                                     cfg.net.base_rtt, cfg.sampling);
    const Time t0 = static_cast<Time>(static_cast<double>(cfg.duration) *
                                      cfg.sampling.truncate_fraction);
    fr.avg_throughput =
        trace::average_throughput(fr.trace, t0, cfg.duration - t0);
    fr.sender_stats = senders[i]->stats();
    if (!cfg.record_cwnd) fr.trace.cwnd_samples.clear();
    result.flows[i].bytes_delivered = fr.trace.total_delivered();

    // Close the open phase interval against the trial duration. A flow
    // that never transitioned spent the whole run in its current phase.
    PhaseAccum& acc = phase_acc[i];
    const std::string last =
        acc.current.empty()
            ? std::string(senders[i]->controller().phase())
            : acc.current;
    acc.sec[last] += time::to_sec(cfg.duration - acc.since);
    fr.phase_residency_sec.assign(acc.sec.begin(), acc.sec.end());

    if (reg.enabled()) {
      const transport::SenderStats& ss = fr.sender_stats;
      const std::string fp = "flow" + std::to_string(i);
      reg.counter(fp + ".packets_sent").add(ss.packets_sent);
      reg.counter(fp + ".losses_detected").add(ss.losses_detected);
      reg.counter(fp + ".retransmissions").add(ss.retransmissions);
      reg.counter(fp + ".ptos_fired").add(ss.ptos_fired);
      reg.counter(fp + ".spurious_losses").add(ss.spurious_losses);
    }
  }

  const netsim::LinkStats& ls = db.trace_bottleneck() != nullptr
                                    ? db.trace_bottleneck()->stats()
                                    : db.bottleneck().stats();
  BottleneckTelemetry& bt = result.bottleneck;
  bt.queue_hwm_bytes = ls.max_queue_bytes;
  bt.packets_in = ls.packets_in;
  bt.packets_out = ls.packets_out;
  bt.drops = ls.packets_dropped;
  bt.bytes_out = ls.bytes_out;
  bt.utilization = static_cast<double>(ls.bytes_out) * 8.0 /
                   (static_cast<double>(cfg.net.bandwidth) *
                    time::to_sec(cfg.duration));
  if (reg.enabled()) {
    reg.counter("bottleneck.packets_in").add(bt.packets_in);
    reg.counter("bottleneck.packets_out").add(bt.packets_out);
    reg.gauge("bottleneck.queue_hwm_bytes")
        .set(static_cast<double>(bt.queue_hwm_bytes));
    reg.gauge("bottleneck.utilization").set(bt.utilization);
  }

  // Scenario-level fairness: overall Jain index over the truncated
  // steady-state interval, plus one index per configured window. Pure
  // post-processing over the recorded traces — never perturbs the run.
  {
    const Time t0 = static_cast<Time>(static_cast<double>(cfg.duration) *
                                      cfg.sampling.truncate_fraction);
    result.jain_overall = window_jain(result, t0, cfg.duration - t0,
                                      cfg.duration);
    if (cfg.fairness_window > 0) {
      for (Time w0 = 0; w0 < cfg.duration; w0 += cfg.fairness_window) {
        const Time w1 = std::min(w0 + cfg.fairness_window, cfg.duration);
        result.jain_windows.push_back(
            window_jain(result, w0, w1, cfg.duration));
      }
    }
  }

  // Churn bookkeeping: arrivals within the trial, departures (finite
  // flows that drained), peak concurrency from the start/finish deltas.
  {
    ChurnTelemetry& ch = result.churn;
    double completion_sum = 0;
    std::vector<std::pair<Time, int>> deltas;
    for (std::size_t i = 0; i < n; ++i) {
      const ScenarioFlowTrial& ft = result.flows[i];
      if (ft.start >= cfg.duration) continue;  // never joined
      ++ch.arrivals;
      deltas.emplace_back(ft.start, +1);
      if (ft.finish >= 0) {
        ++ch.departures;
        completion_sum += time::to_sec(ft.finish - ft.start);
        deltas.emplace_back(ft.finish, -1);
      } else {
        deltas.emplace_back(cfg.duration, -1);
      }
    }
    ch.mean_completion_sec =
        ch.departures > 0 ? completion_sum / ch.departures : 0;
    // Sorting pairs orders -1 before +1 at equal times, so a departure
    // coinciding with an arrival does not inflate the peak.
    std::sort(deltas.begin(), deltas.end());
    int active = 0;
    for (const auto& [t, d] : deltas) {
      active += d;
      ch.peak_concurrent = std::max(ch.peak_concurrent, active);
    }
  }

  if (inv) {
    for (std::size_t i = 0; i < n; ++i) {
      checkers[i]->final_check(result.flows[i].result.sender_stats,
                               senders[i]->bytes_in_flight());
    }
    // Network-layer conservation, checked at whatever instant the trial
    // ended (the identities hold continuously, not just at quiescence).
    obs::InvariantChecker& net_chk = *checkers[0];
    if (db.trace_bottleneck() != nullptr) {
      net_chk.check_element_conservation(
          "trace bottleneck", ls.packets_in, ls.packets_out,
          ls.packets_dropped, db.trace_bottleneck()->packets_resident());
    } else {
      net_chk.check_element_conservation(
          "bottleneck", ls.packets_in, ls.packets_out, ls.packets_dropped,
          db.bottleneck().packets_resident());
    }
    const auto check_stage = [&net_chk](const std::string& what,
                                        netsim::ImpairmentStage* st) {
      if (st == nullptr) return;
      const netsim::ImpairmentStats& is = st->stats();
      net_chk.check_element_conservation(what, is.packets_in + is.duplicated,
                                         is.forwarded, is.dropped,
                                         st->packets_resident());
    };
    check_stage("forward impairment", db.forward_impairment());
    for (std::size_t i = 0; i < n; ++i) {
      check_stage("ack impairment " + std::to_string(i),
                  db.ack_impairment(static_cast<int>(i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      checkers[i]->throw_if_violated();
    }
  }

  result.sim_events = sim.events_fired();
  result.engine = sim.stats();
  return result;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  cfg.validate();
  std::vector<ScenarioTrialResult> trials;
  trials.reserve(static_cast<std::size_t>(cfg.trials));
  for (int t = 0; t < cfg.trials; ++t) {
    trials.push_back(run_scenario_trial(cfg, static_cast<std::uint64_t>(t)));
  }
  return aggregate_scenario_trials(std::move(trials), cfg);
}

ScenarioResult aggregate_scenario_trials(
    std::vector<ScenarioTrialResult> trials, const ScenarioConfig& cfg) {
  ScenarioResult sr;
  const std::size_t n = cfg.flows.size();
  sr.flows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sr.flows[i].role = cfg.flows[i].role;
    sr.flows[i].display = cfg.flows[i].impl.display;
  }
  if (!trials.empty()) {
    sr.jain_windows.assign(trials.front().jain_windows.size(), 0.0);
  }

  std::vector<double> tput_sum(n, 0.0);
  std::vector<int> completed(n, 0);
  std::vector<double> completion_sum(n, 0.0);
  double jain_sum = 0, util_sum = 0;
  double arrivals_sum = 0, departures_sum = 0, churn_completion_sum = 0;
  int churn_trials = 0;
  for (ScenarioTrialResult& trial : trials) {
    for (std::size_t i = 0; i < n; ++i) {
      const ScenarioFlowTrial& ft = trial.flows[i];
      conformance::TrialPoints tp;
      for (const auto& p : ft.result.points) {
        tp.push_back({p.delay_ms, p.tput_mbps});
      }
      sr.flows[i].points.push_back(std::move(tp));
      tput_sum[i] += rate::to_mbps(ft.result.avg_throughput);
      if (ft.finish >= 0) {
        ++completed[i];
        completion_sum[i] += time::to_sec(ft.finish - ft.start);
      }
    }
    jain_sum += trial.jain_overall;
    for (std::size_t w = 0; w < sr.jain_windows.size(); ++w) {
      sr.jain_windows[w] += trial.jain_windows[w];
    }
    arrivals_sum += trial.churn.arrivals;
    departures_sum += trial.churn.departures;
    sr.churn.peak_concurrent =
        std::max(sr.churn.peak_concurrent, trial.churn.peak_concurrent);
    if (trial.churn.departures > 0) {
      churn_completion_sum += trial.churn.mean_completion_sec;
      ++churn_trials;
    }
    sr.queue_hwm_bytes =
        std::max(sr.queue_hwm_bytes, trial.bottleneck.queue_hwm_bytes);
    sr.bottleneck_drops += trial.bottleneck.drops;
    util_sum += trial.bottleneck.utilization;
    if (cfg.record_cwnd) sr.trials.push_back(std::move(trial));
  }

  const double nt = static_cast<double>(cfg.trials);
  double tput_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sr.flows[i].tput_mbps = tput_sum[i] / nt;
    tput_total += sr.flows[i].tput_mbps;
    sr.flows[i].completed_frac = static_cast<double>(completed[i]) / nt;
    sr.flows[i].mean_completion_sec =
        completed[i] > 0 ? completion_sum[i] / completed[i] : 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sr.flows[i].share = tput_total > 0 ? sr.flows[i].tput_mbps / tput_total : 0;
  }
  sr.jain_overall = jain_sum / nt;
  for (double& w : sr.jain_windows) w /= nt;
  sr.churn.arrivals = arrivals_sum / nt;
  sr.churn.departures = departures_sum / nt;
  sr.churn.mean_completion_sec =
      churn_trials > 0 ? churn_completion_sum / churn_trials : 0;
  sr.utilization = util_sum / nt;
  return sr;
}

} // namespace quicbench::harness
