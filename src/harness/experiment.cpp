#include "harness/experiment.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "netsim/topology.h"
#include "obs/invariants.h"
#include "transport/receiver.h"

namespace quicbench::harness {

using netsim::Dumbbell;
using netsim::DumbbellConfig;
using netsim::Simulator;
using stacks::Implementation;

Bytes NetworkConfig::buffer_bytes() const {
  const Bytes bdp = bdp_bytes(bandwidth, base_rtt);
  const auto buf = static_cast<Bytes>(static_cast<double>(bdp) * buffer_bdp);
  return std::max<Bytes>(buf, 3000);  // at least a couple of packets
}

std::string NetworkConfig::describe() const {
  std::ostringstream os;
  os << rate::to_mbps(bandwidth) << " Mbps, " << time::to_ms(base_rtt)
     << " ms RTT, " << buffer_bdp << " BDP buffer";
  return os.str();
}

void ExperimentConfig::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ExperimentConfig: " + msg);
  };
  if (trials < 1) {
    fail("trials must be >= 1 (got " + std::to_string(trials) +
         "); every experiment needs at least one trial");
  }
  if (duration <= 0) {
    fail("duration must be positive (got " +
         std::to_string(time::to_sec(duration)) +
         " s); flows need time to reach steady state");
  }
  if (net.bandwidth <= 0) {
    fail("net.bandwidth must be positive (got " +
         std::to_string(rate::to_mbps(net.bandwidth)) +
         " Mbps); a zero-rate bottleneck never delivers");
  }
  if (net.base_rtt <= 0) {
    fail("net.base_rtt must be positive (got " +
         std::to_string(time::to_ms(net.base_rtt)) +
         " ms); the dumbbell needs a propagation delay");
  }
  if (net.trace_period > 0 && net.trace_opportunities.empty()) {
    fail("net.trace_period is set but net.trace_opportunities is empty; "
         "a delivery trace needs at least one opportunity timestamp");
  }
  if (!net.trace_opportunities.empty() && net.trace_period <= 0) {
    fail("net.trace_opportunities is set but net.trace_period is not "
         "positive; set trace_period to the trace's wrap-around length");
  }
  net.impairment.validate();
}

TrialResult run_trial(const Implementation& a, const Implementation& b,
                      const ExperimentConfig& cfg,
                      std::uint64_t trial_index) {
  return run_trial(a, b, cfg, trial_index, TrialObservers{});
}

namespace {

// Accumulates per-flow CCA phase residency from the observation-only
// phase callbacks. `current`/`since` track the open interval; the trial
// closes it against the configured duration.
struct PhaseAccum {
  std::map<std::string, double, std::less<>> sec;
  std::string current;
  Time since = 0;
};

}  // namespace

TrialResult run_trial(const Implementation& a, const Implementation& b,
                      const ExperimentConfig& cfg, std::uint64_t trial_index,
                      const TrialObservers& observers) {
  // A dumbbell trial keeps well under kDefaultSizeHint concurrent events
  // (see TrialResult::engine), so the default hint avoids all slot-table
  // and heap growth in steady state.
  Simulator sim(Simulator::kDefaultSizeHint);
  Rng master(cfg.seed * 0x9E3779B97F4A7C15ULL + trial_index * 1000003ULL + 1);
  Rng jitter_rng = master.fork(1);

  DumbbellConfig dc;
  dc.bandwidth = cfg.net.bandwidth;
  dc.base_rtt = cfg.net.base_rtt;
  dc.buffer_bytes = cfg.net.buffer_bytes();
  dc.path_jitter = std::max(cfg.net.base_jitter, cfg.net.path_jitter);
  dc.jitter_allows_reorder = cfg.net.jitter_reorder;
  dc.trace_opportunities = cfg.net.trace_opportunities;
  dc.trace_period = cfg.net.trace_period;
  dc.impairment = cfg.net.impairment;

  Dumbbell db(sim, dc, 2, &jitter_rng);

  obs::MetricsRegistry& reg = observers.metrics != nullptr
                                  ? *observers.metrics
                                  : obs::MetricsRegistry::noop();
  if (reg.enabled() && db.trace_bottleneck() == nullptr) {
    db.bottleneck().attach_metrics(reg, "bottleneck");
  }
  if (reg.enabled() && db.forward_impairment() != nullptr) {
    db.forward_impairment()->attach_metrics(reg, "impairment.forward");
  }

  TrialResult result;
  PhaseAccum phase_acc[2];
  std::vector<std::unique_ptr<transport::SenderEndpoint>> senders;
  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> receivers;

  // Runtime invariant checking (QB_INVARIANTS, default on): one checker
  // per flow, fed from the same passive hooks as the flight recorder, so
  // every trial — and thus every ctest target — doubles as a correctness
  // probe. The checkers never influence the simulation; violations throw
  // at trial end.
  const bool inv = obs::invariants_enabled();
  std::unique_ptr<obs::InvariantChecker> checkers[2];
  if (inv) {
    for (int i = 0; i < 2; ++i) {
      checkers[i] = std::make_unique<obs::InvariantChecker>(
          i == 0 ? "flow0" : "flow1", cfg.net.base_rtt);
    }
  }

  for (int i = 0; i < 2; ++i) {
    const Implementation& impl = (i == 0) ? a : b;
    auto receiver = std::make_unique<transport::ReceiverEndpoint>(
        sim, i, impl.profile.receiver, db.reverse_in(i));
    auto sender = std::make_unique<transport::SenderEndpoint>(
        sim, i, impl.profile.sender, impl.make_cca(), db.forward_in(),
        master.fork(static_cast<std::uint64_t>(10 + i)));

    trace::QlogWriter* ql = observers.qlog[i];
    transport::SenderEndpoint* snd = sender.get();
    obs::InvariantChecker* chk = checkers[i].get();
    const std::string fp = i == 0 ? "flow0" : "flow1";

    trace::FlowTrace& tr = result.flow[i].trace;
    // Pre-size the recording arrays to the most the bottleneck could
    // deliver over the trial (capped), so the per-packet record calls
    // never reallocate mid-run.
    {
      const double pkts = time::to_sec(cfg.duration) *
                          (static_cast<double>(cfg.net.bandwidth) / 8.0) /
                          static_cast<double>(impl.profile.sender.mss);
      const auto est = static_cast<std::size_t>(std::min(pkts, 2.5e6));
      tr.deliveries.reserve(est);
      tr.rtt_samples.reserve(est / 2 + 1);
    }
    receiver->set_delivery_callback(
        [&tr](Time now, Bytes payload, Time) {
          tr.record_delivery(now, payload);
        });
    obs::Histogram* rtt_hist =
        reg.enabled() ? &reg.histogram(fp + ".rtt_ms") : nullptr;
    sender->set_rtt_callback([&tr, rtt_hist, chk](Time now, Time rtt) {
      tr.record_rtt(now, rtt);
      if (rtt_hist != nullptr) rtt_hist->observe(time::to_ms(rtt));
      if (chk != nullptr) chk->on_rtt_sample(now, rtt);
    });
    const bool rec = cfg.record_cwnd;
    if (rec || ql != nullptr || chk != nullptr) {
      sender->set_cwnd_callback(
          [&tr, ql, rec, snd, chk](Time now, Bytes cwnd, Bytes inflight) {
            if (rec) tr.record_cwnd(now, cwnd, inflight);
            if (ql != nullptr) {
              ql->metrics_updated(now, cwnd, inflight, snd->rtt().smoothed());
            }
            if (chk != nullptr) chk->on_cwnd_update(now, cwnd, inflight);
          });
    }

    // Phase residency is tracked in every trial; the qlog state event and
    // the recovery-entry counter piggyback on the same transition.
    PhaseAccum& acc = phase_acc[i];
    obs::Counter* recovery_ctr =
        reg.enabled() ? &reg.counter(fp + ".recovery_entries") : nullptr;
    sender->controller().set_phase_callback(
        [&acc, ql, recovery_ctr](Time now, std::string_view from,
                                 std::string_view to) {
          acc.sec[std::string(from)] += time::to_sec(now - acc.since);
          acc.current.assign(to);
          acc.since = now;
          if (ql != nullptr) ql->congestion_state_updated(now, from, to);
          if (recovery_ctr != nullptr && to == "recovery") {
            recovery_ctr->add();
          }
        });

    if (ql != nullptr || chk != nullptr) {
      sender->set_packet_sent_callback(
          [ql, chk, snd](Time now, std::uint64_t pn, Bytes size, bool retx) {
            if (ql != nullptr) ql->packet_sent(now, pn, size, retx);
            if (chk != nullptr) {
              chk->on_packet_sent(now, pn, size, retx, snd->bytes_in_flight(),
                                  snd->controller().cwnd());
            }
          });
      sender->set_packet_lost_callback(
          [ql, chk](Time now, std::uint64_t pn) {
            if (ql != nullptr) ql->packet_lost(now, pn);
            if (chk != nullptr) chk->on_packet_lost(now, pn);
          });
    }
    if (chk != nullptr) {
      sender->set_packet_acked_callback(
          [chk, snd](Time now, std::uint64_t pn, Bytes size) {
            chk->on_packet_acked(now, pn, size, snd->bytes_in_flight());
          });
    }
    if (ql != nullptr) {
      receiver->set_packet_callback(
          [ql](Time now, std::uint64_t pn, Bytes size) {
            ql->packet_received(now, pn, size);
          });
      sender->set_timer_callback(
          [ql](Time now, transport::SenderEndpoint::LossTimerKind kind,
               transport::SenderEndpoint::LossTimerEvent event, Time expiry) {
            using TK = transport::SenderEndpoint::LossTimerKind;
            using TE = transport::SenderEndpoint::LossTimerEvent;
            const auto type = kind == TK::kPto
                                  ? trace::QlogWriter::TimerType::kPto
                                  : trace::QlogWriter::TimerType::kLossDetection;
            auto ev = trace::QlogWriter::TimerEvent::kSet;
            if (event == TE::kExpired) {
              ev = trace::QlogWriter::TimerEvent::kExpired;
            } else if (event == TE::kCancelled) {
              ev = trace::QlogWriter::TimerEvent::kCancelled;
            }
            ql->loss_timer_updated(now, type, ev, expiry);
          });
    }
    obs::Histogram* pto_hist =
        reg.enabled() ? &reg.histogram(fp + ".pto_time_sec") : nullptr;
    if (pto_hist != nullptr || chk != nullptr) {
      sender->set_pto_callback([pto_hist, chk](Time now, int count) {
        if (pto_hist != nullptr) pto_hist->observe(time::to_sec(now));
        if (chk != nullptr) chk->on_pto(now, count);
      });
    }
    obs::Histogram* spur_hist =
        reg.enabled() ? &reg.histogram(fp + ".spurious_loss_time_sec")
                      : nullptr;
    if (ql != nullptr || spur_hist != nullptr || chk != nullptr) {
      sender->set_spurious_loss_callback(
          [ql, spur_hist, chk](Time now, std::uint64_t pn) {
            if (ql != nullptr) ql->spurious_loss_detected(now, pn);
            if (spur_hist != nullptr) spur_hist->observe(time::to_sec(now));
            if (chk != nullptr) chk->on_spurious_loss(now, pn);
          });
    }

    db.attach_receiver(i, receiver.get());
    db.attach_sender_ack_sink(i, sender.get());
    receivers.push_back(std::move(receiver));
    senders.push_back(std::move(sender));
  }

  std::unique_ptr<netsim::CrossTrafficSource> cross;
  if (cfg.net.cross_traffic_rate > 0) {
    cross = std::make_unique<netsim::CrossTrafficSource>(
        sim, db.forward_in(), cfg.net.cross_traffic_rate, 1200,
        cfg.net.cross_on, cfg.net.cross_off, master.fork(99));
    cross->start();
  }

  senders[0]->start(0);
  Time offset = 0;
  if (cfg.flow_b_start >= 0) {
    offset = cfg.flow_b_start;
  } else if (cfg.start_spread > 0) {
    offset = static_cast<Time>(master.uniform() *
                               static_cast<double>(cfg.start_spread));
  }
  senders[1]->start(offset);

  sim.run_until(cfg.duration);

  for (int i = 0; i < 2; ++i) {
    FlowResult& fr = result.flow[i];
    fr.points = trace::sample_series(fr.trace, cfg.duration,
                                     cfg.net.base_rtt, cfg.sampling);
    const Time t0 = static_cast<Time>(static_cast<double>(cfg.duration) *
                                      cfg.sampling.truncate_fraction);
    fr.avg_throughput =
        trace::average_throughput(fr.trace, t0, cfg.duration - t0);
    fr.sender_stats = senders[static_cast<std::size_t>(i)]->stats();
    if (!cfg.record_cwnd) fr.trace.cwnd_samples.clear();

    // Close the open phase interval against the trial duration. A flow
    // that never transitioned spent the whole run in its current phase.
    PhaseAccum& acc = phase_acc[i];
    const std::string last =
        acc.current.empty()
            ? std::string(senders[static_cast<std::size_t>(i)]
                              ->controller()
                              .phase())
            : acc.current;
    acc.sec[last] += time::to_sec(cfg.duration - acc.since);
    fr.phase_residency_sec.assign(acc.sec.begin(), acc.sec.end());

    if (reg.enabled()) {
      const transport::SenderStats& ss = fr.sender_stats;
      const std::string fp = i == 0 ? "flow0" : "flow1";
      reg.counter(fp + ".packets_sent").add(ss.packets_sent);
      reg.counter(fp + ".losses_detected").add(ss.losses_detected);
      reg.counter(fp + ".retransmissions").add(ss.retransmissions);
      reg.counter(fp + ".ptos_fired").add(ss.ptos_fired);
      reg.counter(fp + ".spurious_losses").add(ss.spurious_losses);
    }
  }

  const netsim::LinkStats& ls = db.trace_bottleneck() != nullptr
                                    ? db.trace_bottleneck()->stats()
                                    : db.bottleneck().stats();
  BottleneckTelemetry& bt = result.bottleneck;
  bt.queue_hwm_bytes = ls.max_queue_bytes;
  bt.packets_in = ls.packets_in;
  bt.packets_out = ls.packets_out;
  bt.drops = ls.packets_dropped;
  bt.bytes_out = ls.bytes_out;
  bt.utilization = static_cast<double>(ls.bytes_out) * 8.0 /
                   (static_cast<double>(cfg.net.bandwidth) *
                    time::to_sec(cfg.duration));
  if (reg.enabled()) {
    reg.counter("bottleneck.packets_in").add(bt.packets_in);
    reg.counter("bottleneck.packets_out").add(bt.packets_out);
    reg.gauge("bottleneck.queue_hwm_bytes")
        .set(static_cast<double>(bt.queue_hwm_bytes));
    reg.gauge("bottleneck.utilization").set(bt.utilization);
  }

  if (inv) {
    for (int i = 0; i < 2; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      checkers[idx]->final_check(result.flow[i].sender_stats,
                                 senders[idx]->bytes_in_flight());
    }
    // Network-layer conservation, checked at whatever instant the trial
    // ended (the identities hold continuously, not just at quiescence).
    obs::InvariantChecker& net_chk = *checkers[0];
    if (db.trace_bottleneck() != nullptr) {
      net_chk.check_element_conservation(
          "trace bottleneck", ls.packets_in, ls.packets_out,
          ls.packets_dropped, db.trace_bottleneck()->packets_resident());
    } else {
      net_chk.check_element_conservation(
          "bottleneck", ls.packets_in, ls.packets_out, ls.packets_dropped,
          db.bottleneck().packets_resident());
    }
    const auto check_stage = [&net_chk](const char* what,
                                        netsim::ImpairmentStage* st) {
      if (st == nullptr) return;
      const netsim::ImpairmentStats& is = st->stats();
      net_chk.check_element_conservation(what, is.packets_in + is.duplicated,
                                         is.forwarded, is.dropped,
                                         st->packets_resident());
    };
    check_stage("forward impairment", db.forward_impairment());
    check_stage("ack impairment 0", db.ack_impairment(0));
    check_stage("ack impairment 1", db.ack_impairment(1));
    checkers[0]->throw_if_violated();
    checkers[1]->throw_if_violated();
  }

  result.sim_events = sim.events_fired();
  result.engine = sim.stats();
  return result;
}

PairResult run_pair(const Implementation& a, const Implementation& b,
                    const ExperimentConfig& cfg) {
  cfg.validate();
  std::vector<TrialResult> trials;
  trials.reserve(static_cast<std::size_t>(cfg.trials));
  for (int t = 0; t < cfg.trials; ++t) {
    trials.push_back(run_trial(a, b, cfg, static_cast<std::uint64_t>(t)));
  }
  return aggregate_trials(std::move(trials), cfg);
}

PairResult aggregate_trials(std::vector<TrialResult> trials,
                            const ExperimentConfig& cfg) {
  PairResult pr;
  double sum_a = 0, sum_b = 0;
  std::int64_t pkts[2] = {0, 0}, losses[2] = {0, 0}, retx[2] = {0, 0};
  std::int64_t ptos[2] = {0, 0}, spurious[2] = {0, 0};
  std::map<std::string, double, std::less<>> phase_sum[2];
  double util_sum = 0;
  for (TrialResult& trial : trials) {
    conformance::TrialPoints pa, pb;
    for (const auto& p : trial.flow[0].points) {
      pa.push_back({p.delay_ms, p.tput_mbps});
    }
    for (const auto& p : trial.flow[1].points) {
      pb.push_back({p.delay_ms, p.tput_mbps});
    }
    pr.points_a.push_back(std::move(pa));
    pr.points_b.push_back(std::move(pb));
    sum_a += rate::to_mbps(trial.flow[0].avg_throughput);
    sum_b += rate::to_mbps(trial.flow[1].avg_throughput);
    for (int i = 0; i < 2; ++i) {
      const transport::SenderStats& ss = trial.flow[i].sender_stats;
      pkts[i] += ss.packets_sent;
      losses[i] += ss.losses_detected;
      retx[i] += ss.retransmissions;
      ptos[i] += ss.ptos_fired;
      spurious[i] += ss.spurious_losses;
      for (const auto& [name, sec] : trial.flow[i].phase_residency_sec) {
        phase_sum[i][name] += sec;
      }
    }
    pr.diagnostics.queue_hwm_bytes = std::max(
        pr.diagnostics.queue_hwm_bytes, trial.bottleneck.queue_hwm_bytes);
    pr.diagnostics.bottleneck_drops += trial.bottleneck.drops;
    util_sum += trial.bottleneck.utilization;
    if (cfg.record_cwnd) pr.trials.push_back(std::move(trial));
  }
  pr.tput_a_mbps = sum_a / cfg.trials;
  pr.tput_b_mbps = sum_b / cfg.trials;
  const double total = pr.tput_a_mbps + pr.tput_b_mbps;
  pr.share_a = total > 0 ? pr.tput_a_mbps / total : 0;
  pr.share_b = total > 0 ? pr.tput_b_mbps / total : 0;
  const double n = static_cast<double>(cfg.trials);
  for (int i = 0; i < 2; ++i) {
    FlowDiagnostics& fd = pr.diagnostics.flow[i];
    fd.loss_rate = pkts[i] > 0
                       ? static_cast<double>(losses[i]) /
                             static_cast<double>(pkts[i])
                       : 0;
    fd.retx_rate = pkts[i] > 0
                       ? static_cast<double>(retx[i]) /
                             static_cast<double>(pkts[i])
                       : 0;
    fd.ptos_per_trial = static_cast<double>(ptos[i]) / n;
    fd.spurious_per_trial = static_cast<double>(spurious[i]) / n;
    for (const auto& [name, sec] : phase_sum[i]) {
      fd.phase_residency_sec.emplace_back(name, sec / n);
    }
  }
  pr.diagnostics.utilization = util_sum / n;
  pr.diagnostics.valid = true;
  return pr;
}

conformance::ConformanceReport measure_conformance(
    const Implementation& test, const Implementation& reference,
    const ExperimentConfig& cfg, const conformance::PeConfig& pe_cfg) {
  // Reference PE: reference vs itself, observed in the test position.
  const PairResult ref_pair = run_pair(reference, reference, cfg);
  // Test PE: test implementation vs the reference flow.
  const PairResult test_pair = run_pair(test, reference, cfg);
  return conformance::evaluate(ref_pair.points_a, test_pair.points_a,
                               pe_cfg);
}

std::vector<conformance::TrialPoints> test_position_clouds(
    const PairResult& pair) {
  return pair.points_a;
}

} // namespace quicbench::harness
