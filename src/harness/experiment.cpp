#include "harness/experiment.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "netsim/topology.h"
#include "transport/receiver.h"

namespace quicbench::harness {

using netsim::Dumbbell;
using netsim::DumbbellConfig;
using netsim::Simulator;
using stacks::Implementation;

Bytes NetworkConfig::buffer_bytes() const {
  const Bytes bdp = bdp_bytes(bandwidth, base_rtt);
  const auto buf = static_cast<Bytes>(static_cast<double>(bdp) * buffer_bdp);
  return std::max<Bytes>(buf, 3000);  // at least a couple of packets
}

std::string NetworkConfig::describe() const {
  std::ostringstream os;
  os << rate::to_mbps(bandwidth) << " Mbps, " << time::to_ms(base_rtt)
     << " ms RTT, " << buffer_bdp << " BDP buffer";
  return os.str();
}

void ExperimentConfig::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ExperimentConfig: " + msg);
  };
  if (trials < 1) {
    fail("trials must be >= 1 (got " + std::to_string(trials) +
         "); every experiment needs at least one trial");
  }
  if (duration <= 0) {
    fail("duration must be positive (got " +
         std::to_string(time::to_sec(duration)) +
         " s); flows need time to reach steady state");
  }
  if (net.bandwidth <= 0) {
    fail("net.bandwidth must be positive (got " +
         std::to_string(rate::to_mbps(net.bandwidth)) +
         " Mbps); a zero-rate bottleneck never delivers");
  }
  if (net.base_rtt <= 0) {
    fail("net.base_rtt must be positive (got " +
         std::to_string(time::to_ms(net.base_rtt)) +
         " ms); the dumbbell needs a propagation delay");
  }
  if (net.trace_period > 0 && net.trace_opportunities.empty()) {
    fail("net.trace_period is set but net.trace_opportunities is empty; "
         "a delivery trace needs at least one opportunity timestamp");
  }
  if (!net.trace_opportunities.empty() && net.trace_period <= 0) {
    fail("net.trace_opportunities is set but net.trace_period is not "
         "positive; set trace_period to the trace's wrap-around length");
  }
}

TrialResult run_trial(const Implementation& a, const Implementation& b,
                      const ExperimentConfig& cfg,
                      std::uint64_t trial_index) {
  Simulator sim;
  Rng master(cfg.seed * 0x9E3779B97F4A7C15ULL + trial_index * 1000003ULL + 1);
  Rng jitter_rng = master.fork(1);

  DumbbellConfig dc;
  dc.bandwidth = cfg.net.bandwidth;
  dc.base_rtt = cfg.net.base_rtt;
  dc.buffer_bytes = cfg.net.buffer_bytes();
  dc.path_jitter = std::max(cfg.net.base_jitter, cfg.net.path_jitter);
  dc.jitter_allows_reorder = cfg.net.jitter_reorder;
  dc.trace_opportunities = cfg.net.trace_opportunities;
  dc.trace_period = cfg.net.trace_period;

  Dumbbell db(sim, dc, 2, &jitter_rng);

  TrialResult result;
  std::vector<std::unique_ptr<transport::SenderEndpoint>> senders;
  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> receivers;

  for (int i = 0; i < 2; ++i) {
    const Implementation& impl = (i == 0) ? a : b;
    auto receiver = std::make_unique<transport::ReceiverEndpoint>(
        sim, i, impl.profile.receiver, db.reverse_in(i));
    auto sender = std::make_unique<transport::SenderEndpoint>(
        sim, i, impl.profile.sender, impl.make_cca(), db.forward_in(),
        master.fork(static_cast<std::uint64_t>(10 + i)));

    trace::FlowTrace& tr = result.flow[i].trace;
    receiver->set_delivery_callback(
        [&tr](Time now, Bytes payload, Time) {
          tr.record_delivery(now, payload);
        });
    sender->set_rtt_callback(
        [&tr](Time now, Time rtt) { tr.record_rtt(now, rtt); });
    if (cfg.record_cwnd) {
      sender->set_cwnd_callback([&tr](Time now, Bytes cwnd, Bytes inflight) {
        tr.record_cwnd(now, cwnd, inflight);
      });
    }

    db.attach_receiver(i, receiver.get());
    db.attach_sender_ack_sink(i, sender.get());
    receivers.push_back(std::move(receiver));
    senders.push_back(std::move(sender));
  }

  std::unique_ptr<netsim::CrossTrafficSource> cross;
  if (cfg.net.cross_traffic_rate > 0) {
    cross = std::make_unique<netsim::CrossTrafficSource>(
        sim, db.forward_in(), cfg.net.cross_traffic_rate, 1200,
        cfg.net.cross_on, cfg.net.cross_off, master.fork(99));
    cross->start();
  }

  senders[0]->start(0);
  Time offset = 0;
  if (cfg.flow_b_start >= 0) {
    offset = cfg.flow_b_start;
  } else if (cfg.start_spread > 0) {
    offset = static_cast<Time>(master.uniform() *
                               static_cast<double>(cfg.start_spread));
  }
  senders[1]->start(offset);

  sim.run_until(cfg.duration);

  for (int i = 0; i < 2; ++i) {
    FlowResult& fr = result.flow[i];
    fr.points = trace::sample_series(fr.trace, cfg.duration,
                                     cfg.net.base_rtt, cfg.sampling);
    const Time t0 = static_cast<Time>(static_cast<double>(cfg.duration) *
                                      cfg.sampling.truncate_fraction);
    fr.avg_throughput =
        trace::average_throughput(fr.trace, t0, cfg.duration - t0);
    fr.sender_stats = senders[static_cast<std::size_t>(i)]->stats();
    if (!cfg.record_cwnd) fr.trace.cwnd_samples.clear();
  }
  result.sim_events = sim.events_fired();
  return result;
}

PairResult run_pair(const Implementation& a, const Implementation& b,
                    const ExperimentConfig& cfg) {
  cfg.validate();
  std::vector<TrialResult> trials;
  trials.reserve(static_cast<std::size_t>(cfg.trials));
  for (int t = 0; t < cfg.trials; ++t) {
    trials.push_back(run_trial(a, b, cfg, static_cast<std::uint64_t>(t)));
  }
  return aggregate_trials(std::move(trials), cfg);
}

PairResult aggregate_trials(std::vector<TrialResult> trials,
                            const ExperimentConfig& cfg) {
  PairResult pr;
  double sum_a = 0, sum_b = 0;
  for (TrialResult& trial : trials) {
    conformance::TrialPoints pa, pb;
    for (const auto& p : trial.flow[0].points) {
      pa.push_back({p.delay_ms, p.tput_mbps});
    }
    for (const auto& p : trial.flow[1].points) {
      pb.push_back({p.delay_ms, p.tput_mbps});
    }
    pr.points_a.push_back(std::move(pa));
    pr.points_b.push_back(std::move(pb));
    sum_a += rate::to_mbps(trial.flow[0].avg_throughput);
    sum_b += rate::to_mbps(trial.flow[1].avg_throughput);
    if (cfg.record_cwnd) pr.trials.push_back(std::move(trial));
  }
  pr.tput_a_mbps = sum_a / cfg.trials;
  pr.tput_b_mbps = sum_b / cfg.trials;
  const double total = pr.tput_a_mbps + pr.tput_b_mbps;
  pr.share_a = total > 0 ? pr.tput_a_mbps / total : 0;
  pr.share_b = total > 0 ? pr.tput_b_mbps / total : 0;
  return pr;
}

conformance::ConformanceReport measure_conformance(
    const Implementation& test, const Implementation& reference,
    const ExperimentConfig& cfg, const conformance::PeConfig& pe_cfg) {
  // Reference PE: reference vs itself, observed in the test position.
  const PairResult ref_pair = run_pair(reference, reference, cfg);
  // Test PE: test implementation vs the reference flow.
  const PairResult test_pair = run_pair(test, reference, cfg);
  return conformance::evaluate(ref_pair.points_a, test_pair.points_a,
                               pe_cfg);
}

std::vector<conformance::TrialPoints> test_position_clouds(
    const PairResult& pair) {
  return pair.points_a;
}

} // namespace quicbench::harness
