#include "harness/experiment.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace quicbench::harness {

using stacks::Implementation;

void ExperimentConfig::validate() const {
  const auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ExperimentConfig: " + msg);
  };
  if (trials < 1) {
    fail("trials must be >= 1 (got " + std::to_string(trials) +
         "); every experiment needs at least one trial");
  }
  if (duration <= 0) {
    fail("duration must be positive (got " +
         std::to_string(time::to_sec(duration)) +
         " s); flows need time to reach steady state");
  }
  net.validate("ExperimentConfig");
}

ScenarioConfig to_scenario_config(const Implementation& a,
                                  const Implementation& b,
                                  const ExperimentConfig& cfg) {
  ScenarioConfig sc;
  sc.net = cfg.net;
  sc.duration = cfg.duration;
  sc.trials = cfg.trials;
  sc.seed = cfg.seed;
  sc.sampling = cfg.sampling;
  sc.record_cwnd = cfg.record_cwnd;

  FlowSpec fa;
  fa.impl = a;
  fa.role = FlowRole::kTest;
  FlowSpec fb;
  fb.impl = b;
  fb.role = FlowRole::kReference;
  if (cfg.flow_b_start >= 0) {
    fb.start_at = cfg.flow_b_start;
  } else {
    fb.start_spread = cfg.start_spread;
  }
  sc.flows = {std::move(fa), std::move(fb)};
  return sc;
}

TrialResult run_trial(const Implementation& a, const Implementation& b,
                      const ExperimentConfig& cfg,
                      std::uint64_t trial_index) {
  return run_trial(a, b, cfg, trial_index, TrialObservers{});
}

TrialResult run_trial(const Implementation& a, const Implementation& b,
                      const ExperimentConfig& cfg, std::uint64_t trial_index,
                      const TrialObservers& observers) {
  ScenarioObservers sobs;
  sobs.qlog = {observers.qlog[0], observers.qlog[1]};
  sobs.metrics = observers.metrics;
  sobs.flight = {observers.flight[0], observers.flight[1]};
  ScenarioTrialResult str =
      run_scenario_trial(to_scenario_config(a, b, cfg), trial_index, sobs);

  TrialResult result;
  result.flow[0] = std::move(str.flows[0].result);
  result.flow[1] = std::move(str.flows[1].result);
  result.bottleneck = str.bottleneck;
  result.sim_events = str.sim_events;
  result.engine = str.engine;
  return result;
}

PairResult run_pair(const Implementation& a, const Implementation& b,
                    const ExperimentConfig& cfg) {
  cfg.validate();
  std::vector<TrialResult> trials;
  trials.reserve(static_cast<std::size_t>(cfg.trials));
  for (int t = 0; t < cfg.trials; ++t) {
    trials.push_back(run_trial(a, b, cfg, static_cast<std::uint64_t>(t)));
  }
  return aggregate_trials(std::move(trials), cfg);
}

PairResult aggregate_trials(std::vector<TrialResult> trials,
                            const ExperimentConfig& cfg) {
  PairResult pr;
  double sum_a = 0, sum_b = 0;
  std::int64_t pkts[2] = {0, 0}, losses[2] = {0, 0}, retx[2] = {0, 0};
  std::int64_t ptos[2] = {0, 0}, spurious[2] = {0, 0};
  std::map<std::string, double, std::less<>> phase_sum[2];
  double util_sum = 0;
  for (TrialResult& trial : trials) {
    conformance::TrialPoints pa, pb;
    for (const auto& p : trial.flow[0].points) {
      pa.push_back({p.delay_ms, p.tput_mbps});
    }
    for (const auto& p : trial.flow[1].points) {
      pb.push_back({p.delay_ms, p.tput_mbps});
    }
    pr.points_a.push_back(std::move(pa));
    pr.points_b.push_back(std::move(pb));
    sum_a += rate::to_mbps(trial.flow[0].avg_throughput);
    sum_b += rate::to_mbps(trial.flow[1].avg_throughput);
    for (int i = 0; i < 2; ++i) {
      const transport::SenderStats& ss = trial.flow[i].sender_stats;
      pkts[i] += ss.packets_sent;
      losses[i] += ss.losses_detected;
      retx[i] += ss.retransmissions;
      ptos[i] += ss.ptos_fired;
      spurious[i] += ss.spurious_losses;
      for (const auto& [name, sec] : trial.flow[i].phase_residency_sec) {
        phase_sum[i][name] += sec;
      }
    }
    pr.diagnostics.queue_hwm_bytes = std::max(
        pr.diagnostics.queue_hwm_bytes, trial.bottleneck.queue_hwm_bytes);
    pr.diagnostics.bottleneck_drops += trial.bottleneck.drops;
    util_sum += trial.bottleneck.utilization;
    if (cfg.record_cwnd) pr.trials.push_back(std::move(trial));
  }
  pr.tput_a_mbps = sum_a / cfg.trials;
  pr.tput_b_mbps = sum_b / cfg.trials;
  const double total = pr.tput_a_mbps + pr.tput_b_mbps;
  pr.share_a = total > 0 ? pr.tput_a_mbps / total : 0;
  pr.share_b = total > 0 ? pr.tput_b_mbps / total : 0;
  const double n = static_cast<double>(cfg.trials);
  for (int i = 0; i < 2; ++i) {
    FlowDiagnostics& fd = pr.diagnostics.flow[i];
    fd.loss_rate = pkts[i] > 0
                       ? static_cast<double>(losses[i]) /
                             static_cast<double>(pkts[i])
                       : 0;
    fd.retx_rate = pkts[i] > 0
                       ? static_cast<double>(retx[i]) /
                             static_cast<double>(pkts[i])
                       : 0;
    fd.ptos_per_trial = static_cast<double>(ptos[i]) / n;
    fd.spurious_per_trial = static_cast<double>(spurious[i]) / n;
    for (const auto& [name, sec] : phase_sum[i]) {
      fd.phase_residency_sec.emplace_back(name, sec / n);
    }
  }
  pr.diagnostics.utilization = util_sum / n;
  pr.diagnostics.valid = true;
  return pr;
}

conformance::ConformanceReport measure_conformance(
    const Implementation& test, const Implementation& reference,
    const ExperimentConfig& cfg, const conformance::PeConfig& pe_cfg) {
  // Reference PE: reference vs itself, observed in the test position.
  const PairResult ref_pair = run_pair(reference, reference, cfg);
  // Test PE: test implementation vs the reference flow.
  const PairResult test_pair = run_pair(test, reference, cfg);
  return conformance::evaluate(ref_pair.points_a, test_pair.points_a,
                               pe_cfg);
}

std::vector<conformance::TrialPoints> test_position_clouds(
    const PairResult& pair) {
  return pair.points_a;
}

} // namespace quicbench::harness
