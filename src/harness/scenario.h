#pragma once
// N-flow scenario engine: the core experiment layer. A scenario is a set
// of FlowSpecs — each an Implementation plus a start policy (fixed time,
// randomised spread, or Poisson arrival), a flow size (unbounded or
// finite, optionally sampled from a heavy-tailed distribution) and a role
// tag — sharing one dumbbell bottleneck. run_scenario returns per-flow
// FlowResults plus scenario-level fairness (Jain's index over configured
// windows), churn and bottleneck telemetry.
//
// The paper's 1-vs-1 experiments (harness/experiment.h) are thin 2-flow
// adapters over this engine: for a two-flow scenario built by
// to_scenario_config the RNG fork order, endpoint construction order and
// event sequence reproduce the historical run_trial bit-for-bit.
//
// RNG fork discipline (per trial, from the master seeded by
// seed * golden + trial * 1000003 + 1):
//   fork(1)      path/impairment jitter (Dumbbell-internal sub-forks)
//   fork(10+i)   flow i's sender egress jitter, in flow order
//   fork(99)     cross traffic, only when enabled
//   uniform()    one draw per flow with start_spread > 0, in flow order
//   fork(500)    churn stream (Poisson gaps + size sampling), only when
//                some flow uses arrival_rate/sample_size
// Streams are forked only when their feature is enabled, so a scenario
// without churn is bit-identical to builds that predate churn.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conformance/conformance.h"
#include "netsim/event.h"
#include "netsim/impairment.h"
#include "netsim/topology.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "stacks/registry.h"
#include "trace/qlog.h"
#include "trace/trace.h"
#include "transport/sender.h"
#include "util/units.h"

namespace quicbench::harness {

struct NetworkConfig {
  Rate bandwidth = rate::mbps(20);
  Time base_rtt = time::ms(10);
  double buffer_bdp = 1.0;  // droptail buffer in BDP multiples

  // Baseline testbed noise (keeps repeated trials distinct, as on real
  // hardware). Non-reordering.
  Time base_jitter = time::us(250);

  // "In the wild" extras (Fig 11): heavier jitter and on/off cross
  // traffic sharing the bottleneck.
  Time path_jitter = 0;
  bool jitter_reorder = false;
  Rate cross_traffic_rate = 0;
  Time cross_on = time::ms(200);
  Time cross_off = time::ms(800);

  // Mahimahi-style delivery trace; when non-empty it replaces the
  // fixed-rate bottleneck and `bandwidth` is only used for BDP/buffer
  // sizing (set it to the trace's average rate).
  std::vector<Time> trace_opportunities;
  Time trace_period = 0;

  // Adversarial path impairments (seeded loss/reorder/duplication, RTT
  // step, ACK loss); part of the experiment fingerprint. Disabled by
  // default, in which case results are bit-identical to pre-impairment
  // builds.
  netsim::ImpairmentConfig impairment;

  Bytes buffer_bytes() const;
  std::string describe() const;

  // Shared validation for every config type that embeds a NetworkConfig;
  // throws std::invalid_argument with messages prefixed "<context>: ".
  void validate(const std::string& context) const;
};

// The single owner of netsim wiring: every harness path builds its
// DumbbellConfig through this translation.
netsim::DumbbellConfig to_dumbbell_config(const NetworkConfig& net);

enum class FlowRole { kTest, kReference, kBackground };
std::string to_string(FlowRole role);

// Heavy-tailed (bounded Pareto) flow-size distribution for FlowSpecs with
// sample_size set. Disabled (min_bytes == 0) by default.
struct FlowSizeDist {
  double shape = 1.2;
  Bytes min_bytes = 0;
  Bytes max_bytes = 0;
  bool enabled() const { return min_bytes > 0; }
};

struct FlowSpec {
  static constexpr Bytes kUnlimited = -1;

  stacks::Implementation impl;
  FlowRole role = FlowRole::kReference;

  // Start policy, in priority order:
  //   arrival_rate > 0   start drawn from the scenario's Poisson arrival
  //                      process (flows with a rate arrive in spec order;
  //                      each adds an Exp(1/rate) gap to the arrival clock)
  //   start_spread > 0   start_at plus a uniform draw in [0, start_spread)
  //   otherwise          exactly start_at
  Time start_at = 0;
  Time start_spread = 0;
  double arrival_rate = 0;  // arrivals per second

  // Flow size: kUnlimited keeps the endpoint's unbounded bulk stream; a
  // positive value stops the sender after that many payload bytes of new
  // data (the flow then departs). sample_size draws the size from the
  // scenario's FlowSizeDist instead.
  Bytes flow_size = kUnlimited;
  bool sample_size = false;
};

struct ScenarioConfig {
  NetworkConfig net;
  Time duration = time::sec(120);
  int trials = 5;
  std::uint64_t seed = 42;
  trace::SamplingConfig sampling;
  bool record_cwnd = false;

  std::vector<FlowSpec> flows;
  FlowSizeDist size_dist;  // used by FlowSpecs with sample_size

  // Jain's-index windows: 0 computes only the overall index (over the
  // truncated steady-state interval); > 0 additionally tiles [0, duration)
  // into windows of this length.
  Time fairness_window = 0;

  // Rejects nonsensical configurations (no flows, negative arrival rates,
  // zero-size finite flows, bad size distributions, plus the shared
  // network checks) with an actionable std::invalid_argument. Called at
  // run_scenario entry and by the sweep runner when a cell is added.
  void validate() const;
};

struct FlowResult {
  std::vector<trace::DTPoint> points;
  Rate avg_throughput = 0;  // over the truncated steady-state interval
  transport::SenderStats sender_stats;
  trace::FlowTrace trace;  // full trace (cwnd series etc.)
  // Seconds spent in each CCA phase over the trial (name-sorted). Always
  // recorded — the phase hooks observe only, so tracking them never
  // perturbs the simulation.
  std::vector<std::pair<std::string, double>> phase_residency_sec;
};

// Bottleneck-side counters read off the dumbbell at trial end.
struct BottleneckTelemetry {
  Bytes queue_hwm_bytes = 0;
  std::int64_t packets_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t drops = 0;
  Bytes bytes_out = 0;
  double utilization = 0;  // delivered bits / (configured rate * duration)
};

// One flow's outcome within a scenario trial: the familiar FlowResult
// plus arrival/departure bookkeeping.
struct ScenarioFlowTrial {
  FlowResult result;
  Time start = 0;            // actual start time after draws
  Time finish = -1;          // departure time; -1 = still active at end
  Bytes target_size = FlowSpec::kUnlimited;  // resolved size after sampling
  Bytes bytes_delivered = 0;  // receiver-side payload
};

struct ChurnTelemetry {
  int arrivals = 0;         // flows that started within the trial
  int departures = 0;       // finite flows that drained and stopped
  int peak_concurrent = 0;  // max simultaneously active flows
  double mean_completion_sec = 0;  // mean (finish - start) over departures
};

struct ScenarioTrialResult {
  std::vector<ScenarioFlowTrial> flows;
  BottleneckTelemetry bottleneck;
  // Jain's fairness index over delivered bytes: the steady-state interval
  // plus one entry per configured fairness window.
  double jain_overall = 1.0;
  std::vector<double> jain_windows;
  ChurnTelemetry churn;
  // Simulator events executed by this trial (netsim throughput metric).
  std::uint64_t sim_events = 0;
  // Engine sizing telemetry (heap/wheel peaks, slot-table size).
  netsim::Simulator::Stats engine;
};

// Optional flight-recorder attachments. All observers are strictly
// passive: with or without them, a trial produces bit-identical results.
struct ScenarioObservers {
  // Per-flow qlog writers, indexed by flow; shorter than the flow list
  // (or null entries) skips those flows.
  std::vector<trace::QlogWriter*> qlog;
  // Metrics registry populated by the link and transport instruments;
  // null means the shared noop registry.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-flow time-series samplers, indexed like `qlog`. Fed from the
  // receiver's delivery callback (never from scheduled events, so event
  // counts are unchanged); null entries skip those flows.
  std::vector<obs::FlowSampler*> flight;
};

ScenarioTrialResult run_scenario_trial(const ScenarioConfig& cfg,
                                       std::uint64_t trial_index);
ScenarioTrialResult run_scenario_trial(const ScenarioConfig& cfg,
                                       std::uint64_t trial_index,
                                       const ScenarioObservers& observers);

// Cross-trial aggregate for one flow position.
struct ScenarioFlowSummary {
  FlowRole role = FlowRole::kReference;
  std::string display;  // implementation display name
  // Per-trial PE point clouds for this flow position.
  std::vector<conformance::TrialPoints> points;
  double tput_mbps = 0;  // mean across trials
  double share = 0;      // of the scenario's total mean throughput
  double completed_frac = 0;       // share of trials in which it departed
  double mean_completion_sec = 0;  // over trials in which it departed
};

struct ChurnSummary {
  double arrivals = 0;    // mean per trial
  double departures = 0;  // mean per trial
  int peak_concurrent = 0;  // max across trials
  double mean_completion_sec = 0;  // mean over trials with departures
};

struct ScenarioResult {
  std::vector<ScenarioFlowSummary> flows;
  double jain_overall = 1.0;          // mean across trials
  std::vector<double> jain_windows;   // element-wise mean across trials
  ChurnSummary churn;
  Bytes queue_hwm_bytes = 0;          // max across trials
  std::int64_t bottleneck_drops = 0;  // sum across trials
  double utilization = 0;             // mean across trials
  std::vector<ScenarioTrialResult> trials;  // retained when record_cwnd
};

ScenarioResult run_scenario(const ScenarioConfig& cfg);

// Fold per-trial results (ordered by trial index) into a ScenarioResult —
// exactly the aggregation run_scenario performs, exposed so the sweep
// runner can execute trials in parallel with bit-identical output.
// Consumes `trials`; they are retained in the result only when
// cfg.record_cwnd is set.
ScenarioResult aggregate_scenario_trials(std::vector<ScenarioTrialResult> trials,
                                         const ScenarioConfig& cfg);

// Index of the scenario's flow in the "test position": the first FlowSpec
// tagged FlowRole::kTest, falling back to flow 0. Conformance-on-scenario
// evaluations compare the clouds of this flow.
std::size_t test_flow_index(const ScenarioConfig& cfg);

// Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for empty or
// all-zero inputs.
double jain_index(const std::vector<double>& xs);

} // namespace quicbench::harness
