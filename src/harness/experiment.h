#pragma once
// Pair-experiment harness: the paper's 1-vs-1 dumbbell experiments
// (§3.4), expressed as thin 2-flow adapters over the N-flow scenario
// engine (harness/scenario.h). run_trial/run_pair/measure_conformance
// keep their historical API and produce bit-identical results: the
// adapter builds a two-flow ScenarioConfig whose RNG fork order and
// endpoint wiring reproduce the original pair harness exactly.
//
// Trials differ through the seeded randomness real testbeds exhibit: a
// small non-reordering path jitter and a randomised start offset for the
// second flow.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conformance/conformance.h"
#include "harness/scenario.h"
#include "netsim/impairment.h"
#include "obs/metrics.h"
#include "stacks/registry.h"
#include "trace/qlog.h"
#include "trace/trace.h"
#include "transport/sender.h"
#include "util/units.h"

namespace quicbench::harness {

struct ExperimentConfig {
  NetworkConfig net;
  Time duration = time::sec(120);
  int trials = 5;
  std::uint64_t seed = 42;
  trace::SamplingConfig sampling;
  // Second flow starts within [0, start_spread) of the first, or at the
  // exact offset `flow_b_start` when that is >= 0 (late-start studies).
  Time start_spread = time::ms(20);
  Time flow_b_start = -1;
  bool record_cwnd = false;

  // Rejects nonsensical configurations (trials < 1, non-positive
  // duration/bandwidth/RTT, a delivery trace with no opportunities) with
  // an actionable std::invalid_argument. Called at run_pair entry and by
  // the sweep runner when a cell is added.
  void validate() const;
};

// The 2-flow adapter mapping: flow 0 = `a` in the test position starting
// at 0, flow 1 = `b` with the configured start offset or spread. Exposed
// so the sweep runner and benches can hand pair workloads to the scenario
// engine directly.
ScenarioConfig to_scenario_config(const stacks::Implementation& a,
                                  const stacks::Implementation& b,
                                  const ExperimentConfig& cfg);

struct TrialResult {
  FlowResult flow[2];
  BottleneckTelemetry bottleneck;
  // Simulator events executed by this trial (netsim throughput metric).
  std::uint64_t sim_events = 0;
  // Engine sizing telemetry (heap/wheel peaks, slot-table size); the
  // sweep manifest reports the maxima across trials.
  netsim::Simulator::Stats engine;
};

// Optional flight-recorder attachments for a trial. All observers are
// strictly passive: with or without them, a trial produces bit-identical
// results.
struct TrialObservers {
  // Per-flow qlog writers (flow 0 = a, flow 1 = b); null to skip.
  trace::QlogWriter* qlog[2] = {nullptr, nullptr};
  // Metrics registry populated by the link and transport instruments;
  // null means the shared noop registry.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-flow time-series samplers (flow 0 = a, flow 1 = b); null to skip.
  obs::FlowSampler* flight[2] = {nullptr, nullptr};
};

// One trial: implementation `a` (flow 0) vs `b` (flow 1).
TrialResult run_trial(const stacks::Implementation& a,
                      const stacks::Implementation& b,
                      const ExperimentConfig& cfg, std::uint64_t trial_index);
TrialResult run_trial(const stacks::Implementation& a,
                      const stacks::Implementation& b,
                      const ExperimentConfig& cfg, std::uint64_t trial_index,
                      const TrialObservers& observers);

// Aggregated per-flow diagnostics for a pairing (means across trials).
struct FlowDiagnostics {
  double loss_rate = 0;  // losses detected / packets sent
  double retx_rate = 0;
  double ptos_per_trial = 0;
  double spurious_per_trial = 0;
  // Mean seconds per CCA phase across trials (name-sorted).
  std::vector<std::pair<std::string, double>> phase_residency_sec;
};

// Pair-level flight-recorder summary, always computed by aggregate_trials
// (and round-tripped through the sweep cache, schema v2).
struct PairDiagnostics {
  FlowDiagnostics flow[2];
  Bytes queue_hwm_bytes = 0;     // max across trials
  std::int64_t bottleneck_drops = 0;  // sum across trials
  double utilization = 0;        // mean across trials
  bool valid = false;            // false on pre-v2 cache entries
};

struct PairResult {
  // Per-trial PE point clouds, flow 0 = a, flow 1 = b.
  std::vector<conformance::TrialPoints> points_a;
  std::vector<conformance::TrialPoints> points_b;
  double tput_a_mbps = 0;  // mean across trials
  double tput_b_mbps = 0;
  double share_a = 0;  // Ta / (Ta + Tb)
  double share_b = 0;
  PairDiagnostics diagnostics;
  std::vector<TrialResult> trials;  // retained when cfg.record_cwnd
};

PairResult run_pair(const stacks::Implementation& a,
                    const stacks::Implementation& b,
                    const ExperimentConfig& cfg);

// Fold per-trial results (ordered by trial index) into a PairResult —
// exactly the aggregation run_pair performs, exposed so the sweep runner
// can execute trials in parallel and still produce bit-identical results.
// Consumes `trials`; they are retained in the result only when
// cfg.record_cwnd is set.
PairResult aggregate_trials(std::vector<TrialResult> trials,
                            const ExperimentConfig& cfg);

// The paper's conformance pipeline (§3.1): the test implementation's PE
// comes from `test` competing with the kernel reference; the reference PE
// comes from the reference competing with itself. Both PEs describe the
// flow in the "test position" (flow 0).
conformance::ConformanceReport measure_conformance(
    const stacks::Implementation& test,
    const stacks::Implementation& reference, const ExperimentConfig& cfg,
    const conformance::PeConfig& pe_cfg = {});

// Raw per-trial clouds for one side of a pairing (helper for benches that
// need the clouds themselves, e.g. the PE figures).
std::vector<conformance::TrialPoints> test_position_clouds(
    const PairResult& pair);

} // namespace quicbench::harness
