#pragma once
// Text renderers for benches and examples: heatmaps (Figs 6, 11, 12, 13),
// markdown-style tables (Tables 3, 4) and ASCII scatter plots of
// Performance Envelopes (Figs 1-3, 7-10).

#include <string>
#include <vector>

#include "conformance/pe.h"

namespace quicbench::harness {

// Grid of values rendered with row/column labels; NaN cells print "-".
std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int width = 7, int precision = 2);

// Markdown table.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

// ASCII scatter of up to two point clouds ('o' = reference, 'x' = test,
// '*' = both in the same cell). Hull vertices are marked '#'.
std::string render_pe_plot(const std::string& title,
                           const conformance::PerformanceEnvelope& ref,
                           const conformance::PerformanceEnvelope& test,
                           int cols = 72, int rows = 24);

std::string format_double(double v, int precision = 2);

// parallel_for used to live here; it is now runner::parallel_for in
// runner/parallel.h — a text-renderer header is no place for a scheduler.

} // namespace quicbench::harness
