#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace quicbench::harness {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string render_heatmap(const std::string& title,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::vector<std::vector<double>>& values,
                           int width, int precision) {
  std::ostringstream os;
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  label_w = std::max<std::size_t>(label_w, 4);

  os << title << '\n';
  os << std::string(label_w, ' ') << " |";
  for (const auto& c : col_labels) {
    os << std::setw(width) << c.substr(0, static_cast<std::size_t>(width) - 1);
  }
  os << '\n';
  os << std::string(label_w, '-') << "-+"
     << std::string(col_labels.size() * static_cast<std::size_t>(width), '-')
     << '\n';
  for (std::size_t r = 0; r < row_labels.size(); ++r) {
    os << std::setw(static_cast<int>(label_w)) << row_labels[r] << " |";
    for (std::size_t c = 0; c < col_labels.size(); ++c) {
      const double v =
          r < values.size() && c < values[r].size() ? values[r][c] : NAN;
      if (std::isnan(v)) {
        os << std::setw(width) << "-";
      } else {
        os << std::setw(width) << format_double(v, precision);
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t i = 0; i < header.size(); ++i) widths[i] = header[i].size();
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };
  emit_row(header);
  os << '|';
  for (std::size_t i = 0; i < widths.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows) emit_row(row);
  return os.str();
}

std::string render_pe_plot(const std::string& title,
                           const conformance::PerformanceEnvelope& ref,
                           const conformance::PerformanceEnvelope& test,
                           int cols, int rows) {
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  const auto scan = [&](const std::vector<geom::Point>& pts) {
    for (const auto& p : pts) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  };
  scan(ref.all_points);
  scan(test.all_points);
  if (min_x > max_x) return title + "\n(no data)\n";
  const double pad_x = std::max((max_x - min_x) * 0.05, 1e-6);
  const double pad_y = std::max((max_y - min_y) * 0.05, 1e-6);
  min_x -= pad_x;
  max_x += pad_x;
  min_y -= pad_y;
  max_y += pad_y;

  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols),
                                            ' '));
  const auto place = [&](const geom::Point& p, char ch) {
    const int cx = static_cast<int>((p.x - min_x) / (max_x - min_x) *
                                    (cols - 1));
    const int cy = static_cast<int>((p.y - min_y) / (max_y - min_y) *
                                    (rows - 1));
    const auto r = static_cast<std::size_t>(rows - 1 - cy);
    const auto c = static_cast<std::size_t>(cx);
    char& cell = grid[r][c];
    if (cell == ' ' || cell == ch) {
      cell = ch;
    } else if (ch == '#') {
      cell = '#';
    } else {
      cell = '*';
    }
  };
  for (const auto& p : ref.all_points) place(p, 'o');
  for (const auto& p : test.all_points) place(p, 'x');
  for (const auto& h : ref.hulls) {
    for (const auto& v : h) place(v, '#');
  }
  for (const auto& h : test.hulls) {
    for (const auto& v : h) place(v, '#');
  }

  std::ostringstream os;
  os << title << "  [o=reference x=test #=hull vertex]\n";
  os << "throughput " << format_double(max_y, 1) << " Mbps\n";
  for (const auto& line : grid) os << '|' << line << '\n';
  os << '+' << std::string(static_cast<std::size_t>(cols), '-') << '\n';
  os << " delay " << format_double(min_x, 1) << " .. "
     << format_double(max_x, 1) << " ms   (tput floor "
     << format_double(min_y, 1) << " Mbps)\n";
  return os.str();
}

} // namespace quicbench::harness
