#pragma once
// The population under study: Table 1 of the paper. Every (stack, CCA)
// pair is an Implementation — a transport StackProfile plus a CCA
// configuration. The per-stack deviations encoded here are exactly the
// implementation-level differences the paper documents:
//
//   chromium CUBIC  emulates 2 flows (shallower backoff, faster AI)
//   quiche  CUBIC   RFC 8312bis spurious-loss rollback enabled
//   xquic   CUBIC   no HyStart
//   xquic   BBR     cwnd gain 2.5 instead of 2
//   mvfst   BBR     final sending rate scaled by ~1.2x
//   lsquic  stack   ack-clocked (no pacing), like the kernel
//   xquic   stack   send-loop batching + conservative pacing (artifact)
//   neqo    stack   connection flow-control cap (artifact)
//   mvfst   BBR2    inherits the stack's 1.2x pacer overdrive
//   xquic   BBR2    no cruise headroom, 5% loss threshold
//   msquic  stack   RACK-style time-based loss detection (cubic-rack)
//
// plus the Table 4 "fixed" variants and the HyStart-disabled kernel
// reference used to diagnose xquic CUBIC.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cca/bbr.h"
#include "cca/bbr2.h"
#include "cca/cca.h"
#include "cca/cubic.h"
#include "cca/reno.h"
#include "transport/profile.h"

namespace quicbench::stacks {

// kCubicRack is kernel CUBIC paired with RACK-TLP loss detection (the
// transport-level `LossDetection` axis) — same control law, different
// loss inputs, its own population member.
enum class CcaType { kCubic, kBbr, kReno, kBbr2, kCubicRack };

std::string to_string(CcaType t);

// Inverse of to_string ("cubic", "bbr", "reno", "bbr2", "cubic-rack");
// the one parser the CLI surfaces share, so growing the population here
// grows it everywhere.
std::optional<CcaType> parse_cca(const std::string& s);

struct Implementation {
  std::string stack;    // "tcp", "mvfst", "chromium", ...
  CcaType cca = CcaType::kCubic;
  std::string display;  // e.g. "quiche cubic"
  bool is_reference = false;  // the kernel TCP implementation

  transport::StackProfile profile;
  cca::CubicConfig cubic;
  cca::BbrConfig bbr;
  cca::Bbr2Config bbr2;
  cca::RenoConfig reno;

  std::unique_ptr<cca::CongestionController> make_cca() const;
};

class Registry {
 public:
  static const Registry& instance();

  // All (stack, CCA) pairs of Table 1, kernel TCP included.
  const std::vector<Implementation>& all() const { return impls_; }

  std::vector<const Implementation*> with_cca(CcaType t,
                                              bool include_reference) const;

  // nullptr when the stack does not implement that CCA (Table 1 gaps).
  const Implementation* find(std::string_view stack, CcaType t) const;

  // The Linux-kernel reference for a CCA.
  const Implementation& reference(CcaType t) const;

 private:
  Registry();
  std::vector<Implementation> impls_;
};

// Table 4 fixes. Returns nullopt for implementations with no known fix.
std::optional<Implementation> fixed_variant(const Implementation& impl);

// Kernel CUBIC with HyStart disabled (used to show xquic CUBIC conforms
// to a HyStart-less reference, Table 4).
Implementation reference_cubic_no_hystart();

// Kernel BBR with a modified cwnd gain (the Figure 5 sweep).
Implementation modified_kernel_bbr(double cwnd_gain);

} // namespace quicbench::stacks
