#include "stacks/registry.h"

#include <stdexcept>

namespace quicbench::stacks {

using transport::StackProfile;

std::string to_string(CcaType t) {
  switch (t) {
    case CcaType::kCubic: return "cubic";
    case CcaType::kBbr: return "bbr";
    case CcaType::kReno: return "reno";
    case CcaType::kBbr2: return "bbr2";
    case CcaType::kCubicRack: return "cubic-rack";
  }
  return "?";
}

std::optional<CcaType> parse_cca(const std::string& s) {
  if (s == "cubic") return CcaType::kCubic;
  if (s == "bbr") return CcaType::kBbr;
  if (s == "reno") return CcaType::kReno;
  if (s == "bbr2") return CcaType::kBbr2;
  if (s == "cubic-rack") return CcaType::kCubicRack;
  return std::nullopt;
}

std::unique_ptr<cca::CongestionController> Implementation::make_cca() const {
  switch (cca) {
    case CcaType::kCubic: {
      cca::CubicConfig c = cubic;
      c.mss = profile.sender.mss;
      c.initial_cwnd_packets = profile.sender.initial_cwnd_packets;
      return std::make_unique<cca::Cubic>(c);
    }
    case CcaType::kBbr: {
      cca::BbrConfig c = bbr;
      c.mss = profile.sender.mss;
      c.initial_cwnd_packets = profile.sender.initial_cwnd_packets;
      return std::make_unique<cca::Bbr>(c);
    }
    case CcaType::kReno: {
      cca::RenoConfig c = reno;
      c.mss = profile.sender.mss;
      c.initial_cwnd_packets = profile.sender.initial_cwnd_packets;
      return std::make_unique<cca::Reno>(c);
    }
    case CcaType::kBbr2: {
      cca::Bbr2Config c = bbr2;
      c.mss = profile.sender.mss;
      c.initial_cwnd_packets = profile.sender.initial_cwnd_packets;
      return std::make_unique<cca::Bbr2>(c);
    }
    case CcaType::kCubicRack: {
      cca::CubicConfig c = cubic;
      c.mss = profile.sender.mss;
      c.initial_cwnd_packets = profile.sender.initial_cwnd_packets;
      return std::make_unique<cca::CubicRack>(c);
    }
  }
  throw std::logic_error("unknown CCA type");
}

namespace {

Implementation make(std::string stack, CcaType cca, StackProfile profile,
                    bool reference = false) {
  Implementation impl;
  impl.stack = std::move(stack);
  impl.cca = cca;
  impl.display = impl.stack + " " + to_string(cca);
  impl.is_reference = reference;
  impl.profile = profile;
  return impl;
}

} // namespace

Registry::Registry() {
  const StackProfile tcp = transport::kernel_tcp_profile();
  const StackProfile quic = transport::default_quic_profile();

  // --- Linux kernel TCP: the reference implementations ---
  {
    Implementation cub = make("tcp", CcaType::kCubic, tcp, true);
    cub.cubic.classic_hystart = true;  // 5.13 ships classic HyStart
    impls_.push_back(std::move(cub));
    impls_.push_back(make("tcp", CcaType::kBbr, tcp, true));
    impls_.push_back(make("tcp", CcaType::kReno, tcp, true));
    // BBRv2 reference: the kernel's bbr2 branch with draft defaults.
    impls_.push_back(make("tcp", CcaType::kBbr2, tcp, true));
    // Modern-kernel reference: CUBIC with RACK-TLP loss detection (the
    // kernel default since 4.18 — the paper's 5.13 reference actually
    // ships this; the plain kCubic reference keeps the RFC 9002-style
    // packet-threshold path for comparability with the QUIC stacks).
    {
      StackProfile rack = tcp;
      rack.sender.loss_detection = transport::LossDetection::kRackTlp;
      Implementation cr = make("tcp", CcaType::kCubicRack, rack, true);
      cr.cubic.classic_hystart = true;
      impls_.push_back(std::move(cr));
    }
  }

  // --- mvfst (Facebook): CUBIC, BBR, Reno. BBR overdrives its pacer. ---
  {
    impls_.push_back(make("mvfst", CcaType::kCubic, quic));
    Implementation bbr = make("mvfst", CcaType::kBbr, quic);
    bbr.bbr.pacing_rate_scale = 1.2;  // "multiplies its final sending rate
                                      // by 120%" (§3.3, Table 4)
    impls_.push_back(std::move(bbr));
    impls_.push_back(make("mvfst", CcaType::kReno, quic));
    // mvfst's BBR2 port keeps the stack-level 1.2x pacer overdrive its
    // BBRv1 ships — the deviation follows the stack, not the algorithm.
    Implementation bbr2 = make("mvfst", CcaType::kBbr2, quic);
    bbr2.bbr2.pacing_rate_scale = 1.2;
    impls_.push_back(std::move(bbr2));
  }

  // --- chromium (Google): CUBIC, BBR. CUBIC emulates 2 flows. ---
  {
    Implementation cub = make("chromium", CcaType::kCubic, quic);
    cub.cubic.emulated_flows = 2;  // cubic_bytes.cc default (Table 4)
    impls_.push_back(std::move(cub));
    impls_.push_back(make("chromium", CcaType::kBbr, quic));
    // chromium's BBRv2 (tcp_bbr2.c port in QUICHE): draft-faithful.
    impls_.push_back(make("chromium", CcaType::kBbr2, quic));
  }

  // --- msquic (Microsoft): CUBIC only. Conformant. msquic's loss
  //     detection is RACK-style (time-based, RFC 8985 semantics), so its
  //     kernel-reference pairing is cubic-rack. ---
  impls_.push_back(make("msquic", CcaType::kCubic, quic));
  {
    StackProfile p = quic;
    p.sender.loss_detection = transport::LossDetection::kRackTlp;
    impls_.push_back(make("msquic", CcaType::kCubicRack, p));
  }

  // --- quiche (Cloudflare): CUBIC, Reno. CUBIC implements the RFC
  //     8312bis spurious-congestion rollback that the kernel does not
  //     have; its classifier misfires on ordinary droptail overflows and
  //     keeps undoing backoffs (Fig 15). ---
  {
    Implementation cub = make("quiche", CcaType::kCubic, quic);
    cub.cubic.spurious_loss_rollback = true;
    impls_.push_back(std::move(cub));
    impls_.push_back(make("quiche", CcaType::kReno, quic));
  }

  // --- lsquic (LiteSpeed): CUBIC, BBR. Paces noticeably hotter than the
  //     other stacks: conformant PE shape, but mildly aggressive against
  //     other implementations (Fig 12's residual unfairness). ---
  {
    StackProfile p = quic;
    p.sender.window_pacing_factor = 1.45;
    impls_.push_back(make("lsquic", CcaType::kCubic, p));
    impls_.push_back(make("lsquic", CcaType::kBbr, p));
  }

  // --- quic-go: CUBIC, Reno. Conformant. ---
  impls_.push_back(make("quicgo", CcaType::kCubic, quic));
  impls_.push_back(make("quicgo", CcaType::kReno, quic));

  // --- quicly (H2O): CUBIC, Reno. Conformant. ---
  impls_.push_back(make("quicly", CcaType::kCubic, quic));
  impls_.push_back(make("quicly", CcaType::kReno, quic));

  // --- quinn (Rust): CUBIC, Reno. Conformant. ---
  impls_.push_back(make("quinn", CcaType::kCubic, quic));
  impls_.push_back(make("quinn", CcaType::kReno, quic));

  // --- s2n-quic (AWS): CUBIC only. Conformant. ---
  impls_.push_back(make("s2n", CcaType::kCubic, quic));

  // --- xquic (Alibaba): CUBIC, BBR, Reno. CUBIC lacks HyStart; BBR ships
  //     cwnd gain 2.5. The stack also keeps noticeably less data in
  //     flight than its window allows (modelled as a connection-level
  //     flow-control cap plus send-loop batching) — the "wider
  //     stack-level issue" of §5 that drags down all of its CCAs. ---
  {
    StackProfile p = quic;
    p.sender.send_quantum = time::us(500);
    // The in-flight shortfall shows on the loss-based CCAs only — the
    // paper measured xquic BBR overshooting (+Δ-tput) while xquic CUBIC
    // and Reno undershoot, so whatever the real artifact is, the BBR
    // path bypasses it.
    StackProfile loss_based = p;
    loss_based.sender.flow_control_window = 20 * 1024;
    Implementation cub = make("xquic", CcaType::kCubic, loss_based);
    cub.cubic.hystart = false;
    impls_.push_back(std::move(cub));
    Implementation bbr = make("xquic", CcaType::kBbr, p);
    bbr.bbr.cwnd_gain = 2.5;
    impls_.push_back(std::move(bbr));
    impls_.push_back(make("xquic", CcaType::kReno, loss_based));
    // xquic's BBRv2 keeps the stack's aggressive streak: no cruise
    // headroom (never leaves room for coexisting flows) and a loss
    // threshold of 5% instead of the draft's 2% (probes shrug off loss
    // rates that should end them) — a separable low-conformance cell.
    Implementation bbr2 = make("xquic", CcaType::kBbr2, p);
    bbr2.bbr2.inflight_headroom = 0.0;
    bbr2.bbr2.loss_thresh = 0.05;
    impls_.push_back(std::move(bbr2));
  }

  // --- neqo (Mozilla): CUBIC, Reno. CCA verified compliant; the stack's
  //     connection-level flow-control cap limits in-flight data (the
  //     unexplained artifact the paper leaves as future work). ---
  {
    StackProfile p = quic;
    p.sender.flow_control_window = 10 * 1024;
    Implementation cub = make("neqo", CcaType::kCubic, p);
    impls_.push_back(std::move(cub));
    impls_.push_back(make("neqo", CcaType::kReno, p));
  }
}

const Registry& Registry::instance() {
  static const Registry reg;
  return reg;
}

std::vector<const Implementation*> Registry::with_cca(
    CcaType t, bool include_reference) const {
  std::vector<const Implementation*> out;
  for (const auto& impl : impls_) {
    if (impl.cca != t) continue;
    if (impl.is_reference && !include_reference) continue;
    out.push_back(&impl);
  }
  return out;
}

const Implementation* Registry::find(std::string_view stack,
                                     CcaType t) const {
  for (const auto& impl : impls_) {
    if (impl.stack == stack && impl.cca == t) return &impl;
  }
  return nullptr;
}

const Implementation& Registry::reference(CcaType t) const {
  const Implementation* ref = find("tcp", t);
  if (ref == nullptr) throw std::logic_error("missing reference CCA");
  return *ref;
}

std::optional<Implementation> fixed_variant(const Implementation& impl) {
  Implementation fixed = impl;
  fixed.display += " (fixed)";
  if (impl.stack == "chromium" && impl.cca == CcaType::kCubic) {
    fixed.cubic.emulated_flows = 1;  // "Emulated flows reduced from 2 to 1"
    return fixed;
  }
  if (impl.stack == "mvfst" && impl.cca == CcaType::kBbr) {
    fixed.bbr.pacing_rate_scale = 1.0;  // "pacing gain reduced ... to 1"
    return fixed;
  }
  if (impl.stack == "xquic" && impl.cca == CcaType::kBbr) {
    fixed.bbr.cwnd_gain = 2.0;  // "cwnd gain reduced from 2.5 to 2"
    return fixed;
  }
  if (impl.stack == "quiche" && impl.cca == CcaType::kCubic) {
    fixed.cubic.spurious_loss_rollback = false;  // "Disabled RFC8312"
    return fixed;
  }
  if (impl.stack == "mvfst" && impl.cca == CcaType::kBbr2) {
    fixed.bbr2.pacing_rate_scale = 1.0;  // drop the stack pacer overdrive
    return fixed;
  }
  if (impl.stack == "xquic" && impl.cca == CcaType::kBbr2) {
    fixed.bbr2.inflight_headroom = 0.15;  // restore draft defaults
    fixed.bbr2.loss_thresh = 0.02;
    return fixed;
  }
  return std::nullopt;
}

Implementation reference_cubic_no_hystart() {
  Implementation impl = Registry::instance().reference(CcaType::kCubic);
  impl.display = "tcp cubic (no hystart)";
  impl.cubic.hystart = false;
  return impl;
}

Implementation modified_kernel_bbr(double cwnd_gain) {
  Implementation impl = Registry::instance().reference(CcaType::kBbr);
  impl.display = "tcp bbr (cwnd gain " + std::to_string(cwnd_gain) + ")";
  impl.bbr.cwnd_gain = cwnd_gain;
  return impl;
}

} // namespace quicbench::stacks
