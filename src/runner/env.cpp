#include "runner/env.h"

#include <cstdlib>
#include <filesystem>

#include "obs/run_options.h"

namespace quicbench::runner {

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] == '1';
}

} // namespace

bool fast_mode() { return env_flag("QB_FAST"); }

bool progress_enabled() { return env_flag("QB_PROGRESS"); }

int env_threads() {
  const char* v = std::getenv("QB_THREADS");
  if (v == nullptr) return 0;
  const int n = std::atoi(v);
  return n > 0 ? n : 0;
}

std::string qlog_dir() { return obs::RunOptions::current().qlog_dir; }

bool profile_enabled() { return obs::RunOptions::current().profile; }

harness::ExperimentConfig default_config(double buffer_bdp, Rate bw,
                                         Time rtt) {
  harness::ExperimentConfig cfg;
  cfg.net.bandwidth = bw;
  cfg.net.base_rtt = rtt;
  cfg.net.buffer_bdp = buffer_bdp;
  if (fast_mode()) {
    cfg.duration = time::sec(30);
    cfg.trials = 2;
  } else {
    cfg.duration = time::sec(120);  // the paper's flow duration
    cfg.trials = 5;                 // the paper's trial count
  }
  return cfg;
}

std::string out_dir() {
  std::filesystem::create_directories("bench_out");
  return "bench_out";
}

std::string csv_path(const std::string& bench_name) {
  return out_dir() + "/" + bench_name + ".csv";
}

} // namespace quicbench::runner
