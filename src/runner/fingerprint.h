#pragma once
// Canonical fingerprints of everything that determines an experiment's
// outcome: the Implementation(s), the ExperimentConfig, optionally the
// PeConfig, and the code schema version. The fingerprint keys the
// persistent result cache and identifies cells in run manifests, so it
// must cover EVERY field that can change a result — the old hand-rolled
// RefPairCache key omitted sampling, start_spread, flow_b_start and
// record_cwnd, silently sharing results between configs that differ only
// there. tests/runner/fingerprint_test.cpp perturbs every field; keep it
// in sync when adding configuration knobs.

#include <string>

#include "conformance/pe.h"
#include "harness/experiment.h"
#include "stacks/registry.h"
#include "util/hash.h"

namespace quicbench::runner {

// Bump whenever simulation semantics, any config default, or the cached
// PairResult layout changes: a bump invalidates every on-disk cache
// entry and every manifest comparison across versions.
// v4: N-flow scenario engine (pair results unchanged, but the harness
// core and the scenario cell kinds are new).
// v5: BBRv2 + cubic-rack population growth (Bbr2Config hashed, RACK-TLP
// loss-detection knobs added to the sender profile hash).
inline constexpr std::uint32_t kSchemaVersion = 5;

// Field-by-field feeds, composable into larger keys.
void hash_implementation(StableHasher& h, const stacks::Implementation& impl);
void hash_experiment_config(StableHasher& h,
                            const harness::ExperimentConfig& cfg);
void hash_scenario_config(StableHasher& h, const harness::ScenarioConfig& cfg);
void hash_pe_config(StableHasher& h, const conformance::PeConfig& cfg);

// Identity of one implementation under one experiment + PE extraction
// config (the issue-level cell identity reported in manifests).
std::string fingerprint(const stacks::Implementation& impl,
                        const harness::ExperimentConfig& cfg,
                        const conformance::PeConfig& pe_cfg = {});

// Cache key for run_pair(a, b, cfg). Order-sensitive: flow 0 vs flow 1
// matters. PeConfig is deliberately absent — it only affects the
// downstream PE evaluation, never the simulated PairResult.
std::string pair_fingerprint(const stacks::Implementation& a,
                             const stacks::Implementation& b,
                             const harness::ExperimentConfig& cfg);

// Identity of a conformance cell: test and reference implementations,
// experiment config and PE config.
std::string conformance_fingerprint(const stacks::Implementation& test,
                                    const stacks::Implementation& ref,
                                    const harness::ExperimentConfig& cfg,
                                    const conformance::PeConfig& pe_cfg);

// Identity of run_scenario(cfg): every FlowSpec (implementation, role,
// start policy, size policy), the size distribution, fairness windows
// and the shared network/trial knobs. PeConfig is deliberately absent,
// as with pair_fingerprint.
std::string scenario_fingerprint(const harness::ScenarioConfig& cfg);

// Identity of a scenario-conformance cell: the test scenario's clouds
// judged against the reference scenario's under one PE config.
std::string scenario_conformance_fingerprint(
    const harness::ScenarioConfig& test_cfg,
    const harness::ScenarioConfig& ref_cfg,
    const conformance::PeConfig& pe_cfg);

} // namespace quicbench::runner
