#pragma once
// The sweep engine: QUICbench's unit of work is a *sweep* — a set of
// cells covering a figure or table — and this class runs one end to end.
// Cells come in two families: classic pair cells ((Implementation a, b,
// ExperimentConfig), with conformance variants) and N-flow scenario
// cells (harness::ScenarioConfig, with scenario-conformance variants for
// conformance-under-contention studies).
//
//  * cells are decomposed into trial-granular work items scheduled over
//    a shared-counter worker pool, so one slow 120 s cell no longer
//    straggles a whole figure the way coarse per-cell fan-out did;
//  * simulated pairs are deduplicated by canonical fingerprint and
//    served from the persistent on-disk ResultCache when unchanged —
//    reference self-pairs in particular are computed once *across*
//    bench binaries. Scenarios are fingerprint-deduplicated within the
//    sweep but never disk-cached (the cache format stores PairResults);
//  * per-task results aggregate in trial-index order and PE evaluation
//    is seeded, so results are bit-identical at any thread count;
//  * every run can emit a structured JSON manifest (schema documented in
//    README.md): cell list, per-pair/per-scenario wall time and
//    simulator events/sec, cache hits/misses, thread utilization.
//
// Typical bench usage:
//
//   runner::Sweep sweep("fig06");
//   std::vector<runner::CellId> ids;
//   for (...) ids.push_back(sweep.add_conformance(impl, ref, cfg));
//   sweep.run();
//   ... sweep.conformance_result(ids[i]).conformance ...
//   sweep.write_manifest();

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "conformance/conformance.h"
#include "harness/experiment.h"
#include "obs/profiler.h"
#include "runner/cache.h"
#include "stacks/registry.h"

namespace quicbench::runner {

using CellId = int;

struct SweepOptions {
  // 0 = QB_THREADS if set, else hardware concurrency.
  int threads = 0;
  // Persistent caching; QB_NO_CACHE=1 forces it off regardless.
  bool use_cache = true;
  // "" = ResultCache::default_dir() (bench_out/cache or $QB_CACHE_DIR).
  std::string cache_dir;
  std::string manifest_dir = "bench_out/manifests";
  // Progress lines on stderr; QB_PROGRESS=1 forces them on.
  bool progress = false;
  // Flight recorder: emit per-flow qlog files for every simulated trial
  // under <qlog_dir>/<sweep>/. "" = QB_QLOG_DIR (off when that is unset
  // too). Cached pairs are not re-simulated and emit nothing.
  std::string qlog_dir;
  // Chrome-trace-event profile of the sweep (per-worker trial spans);
  // QB_PROFILE=1 forces it on. Written to <profile_dir>/<name>.trace.json
  // at the end of run().
  bool profile = false;
  std::string profile_dir = "bench_out/profile";
};

struct SweepStats {
  int cells = 0;
  int unique_pairs = 0;      // after fingerprint dedup
  int unique_scenarios = 0;  // after fingerprint dedup; always simulated
  int cache_hits = 0;        // pairs served from the persistent cache
  int cache_misses = 0;      // pairs simulated this run
  long long simulations_executed = 0;  // trials actually simulated
  std::uint64_t events_executed = 0;   // simulator events across trials
  int threads = 0;
  double wall_sec = 0;             // run() span
  double busy_sec = 0;             // summed worker time in trials/evals
  double events_per_sec = 0;       // events_executed / wall_sec
  double thread_utilization = 0;   // busy / (threads * wall)
};

class Sweep {
 public:
  explicit Sweep(std::string name, SweepOptions opts = {});
  ~Sweep();
  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  // Raw pairing: flow 0 = a vs flow 1 = b under cfg (fairness matrices).
  // Validates cfg; throws std::invalid_argument on a bad config and
  // std::logic_error after run().
  CellId add_pair(const stacks::Implementation& a,
                  const stacks::Implementation& b,
                  const harness::ExperimentConfig& cfg);

  // Conformance cell: evaluate(test-vs-ref, ref-vs-ref) under pe_cfg.
  // The ref self-pair is shared across cells with equal fingerprints.
  CellId add_conformance(const stacks::Implementation& test,
                         const stacks::Implementation& ref,
                         const harness::ExperimentConfig& cfg,
                         const conformance::PeConfig& pe_cfg = {});

  // Raw N-flow scenario cell (fairness/churn studies). Validates cfg.
  CellId add_scenario(const harness::ScenarioConfig& cfg);

  // Scenario-conformance cell (conformance under contention): the test
  // scenario's test-position clouds are judged against the reference
  // scenario's under pe_cfg. Typically ref_cfg is test_cfg with the
  // reference implementation swapped into the test position; scenarios
  // shared between cells (equal fingerprints) are simulated once.
  CellId add_scenario_conformance(const harness::ScenarioConfig& test_cfg,
                                  const harness::ScenarioConfig& ref_cfg,
                                  const conformance::PeConfig& pe_cfg = {});

  // Execute all cells. Callable once.
  void run();

  // Results, valid after run(). Throws std::logic_error on kind/state
  // mismatch. conformance_result serves both pair-conformance and
  // scenario-conformance cells.
  const harness::PairResult& pair_result(CellId id) const;
  const harness::ScenarioResult& scenario_result(CellId id) const;
  const conformance::ConformanceReport& conformance_result(CellId id) const;

  const SweepStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  // Flight-recorder output locations, valid after run(). Empty when the
  // corresponding recorder was off.
  const std::string& profile_path() const { return profile_path_; }
  const std::string& qlog_dir_used() const { return qlog_dir_; }

  // Write <manifest_dir>/<name>.json and return its path.
  std::string write_manifest() const;

 private:
  struct PairTask;
  struct ScenarioTask;
  struct Cell;

  int intern_pair(const stacks::Implementation& a,
                  const stacks::Implementation& b,
                  const harness::ExperimentConfig& cfg);
  int intern_scenario(const harness::ScenarioConfig& cfg);
  void finalize_pair(PairTask& pair, double* busy_sec, int worker_id);
  void finalize_scenario(ScenarioTask& scen, double* busy_sec,
                         int worker_id);
  void publish_unblocked_cells(const std::vector<int>& dependent_cells);
  void eval_cell(Cell& cell, double* busy_sec, int worker_id);
  void push_ready_cell(Cell* cell);
  // Claim the next ready cell, waiting for in-flight task finalizes to
  // publish theirs; nullptr once no further cell can become ready.
  Cell* claim_ready_cell();
  harness::TrialResult run_observed_trial(PairTask& pair, int pair_idx,
                                          int trial);

  std::string name_;
  SweepOptions opts_;
  ResultCache* cache_ = nullptr;         // may point at owned_cache_
  std::unique_ptr<ResultCache> owned_cache_;
  std::vector<std::unique_ptr<PairTask>> pairs_;
  std::map<std::string, int> pair_index_;  // pair fingerprint -> index
  std::vector<std::unique_ptr<ScenarioTask>> scenarios_;
  std::map<std::string, int> scenario_index_;  // fingerprint -> index
  std::vector<std::unique_ptr<Cell>> cells_;
  SweepStats stats_;
  bool ran_ = false;
  bool progress_ = false;
  std::string qlog_dir_;    // "" = qlog recorder off
  std::unique_ptr<obs::TraceProfiler> profiler_;  // null = profiler off
  std::string profile_path_;
  std::atomic<int> tasks_done_{0};
  int tasks_to_simulate_ = 0;  // uncached pairs + scenarios
  std::mutex progress_mu_;

  // PE-evaluation work queue: cells whose pair/scenario dependencies are
  // all satisfied. Grows as tasks finalize (push under ready_mu_, index
  // claims via next_ready_cell_), so the expensive conformance::evaluate
  // calls spread across every worker instead of serializing on whichever
  // worker finished a task's last trial. tasks_active_ counts uncached
  // pairs and scenarios not yet finalized — when it reaches zero no
  // further cell can become ready and waiting claimants drain out.
  std::mutex ready_mu_;
  std::vector<Cell*> ready_cells_;
  std::atomic<std::size_t> next_ready_cell_{0};
  std::atomic<int> tasks_active_{0};
};

// ---------------------------------------------------------------------
// Library versions of helpers that previously lived in bench_common.h so
// examples/ and tests can use them too.

// Reference self-pairs (reference vs itself) are reused by every
// implementation sharing a CCA and network config. In-memory per
// process, optionally backed by the persistent ResultCache so they are
// computed once across binaries. Keys are canonical pair fingerprints —
// the old hand-rolled string key dropped sampling/start_spread/
// flow_b_start/record_cwnd and silently shared results across configs
// differing only there.
class RefPairCache {
 public:
  explicit RefPairCache(ResultCache* disk = ResultCache::default_cache())
      : disk_(disk) {}

  const harness::PairResult& get(const stacks::Implementation& ref,
                                 const harness::ExperimentConfig& cfg);

  ResultCache* disk() const { return disk_; }

 private:
  std::mutex mu_;
  std::map<std::string, harness::PairResult> mem_;
  ResultCache* disk_;
};

// run_pair through the persistent cache (when `disk` is non-null and the
// config is cacheable).
harness::PairResult run_pair_cached(const stacks::Implementation& a,
                                    const stacks::Implementation& b,
                                    const harness::ExperimentConfig& cfg,
                                    ResultCache* disk);

// Conformance of `test` given a cached reference pair.
conformance::ConformanceReport conformance_cell(
    const stacks::Implementation& test, const stacks::Implementation& ref,
    const harness::ExperimentConfig& cfg, RefPairCache& cache,
    const conformance::PeConfig& pe_cfg = {});

} // namespace quicbench::runner
