#pragma once
// Persistent on-disk cache of PairResults keyed by canonical
// fingerprints (runner/fingerprint.h). One binary file per entry under
// the cache directory, `<fingerprint>.qbr`:
//
//   u32 magic 'QBR1'   u32 kSchemaVersion
//   u32 #trials_a  { u64 #points { f64 delay  f64 tput } ... } ...
//   u32 #trials_b  { ... }
//   f64 tput_a_mbps  f64 tput_b_mbps  f64 share_a  f64 share_b
//
// All integers little-endian, doubles as IEEE-754 bit patterns, so a
// loaded PairResult is bit-identical to the stored one. Any size/magic/
// version mismatch reads as a miss (never an error): the cache is an
// accelerator, correctness never depends on it. Writes go to a temp file
// renamed into place, so concurrent bench binaries sharing the directory
// at worst redo work. Results that retain raw trial traces
// (cfg.record_cwnd) are not cacheable and store() declines them.
//
// Invalidation: delete the directory, or bump runner::kSchemaVersion
// (stale entries are then ignored by the version check).

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "harness/experiment.h"

namespace quicbench::runner {

class ResultCache {
 public:
  // Creates `dir` (and parents) if needed.
  explicit ResultCache(std::string dir);

  // nullopt on miss, corrupt entry, or schema-version mismatch.
  std::optional<harness::PairResult> load(const std::string& fingerprint);

  // False when the result is not cacheable (retained trial traces) or
  // the write failed; the caller proceeds either way.
  bool store(const std::string& fingerprint,
             const harness::PairResult& result);

  const std::string& dir() const { return dir_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t stores() const { return stores_; }

  // Directory benches share: $QB_CACHE_DIR or "bench_out/cache".
  static std::string default_dir();

  // Process-wide cache in default_dir(), created on first use; nullptr
  // when caching is disabled via QB_NO_CACHE=1.
  static ResultCache* default_cache();

 private:
  std::string entry_path(const std::string& fingerprint) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
};

} // namespace quicbench::runner
