#pragma once
// Parallel index loop over a shared atomic work counter (moved here from
// harness/report.h — a text-renderer header was no place for a
// scheduler). Workers pull the next index as soon as they finish one, so
// uneven item costs balance automatically; the sweep engine builds its
// trial-granular scheduling on the same primitive.

#include <functional>

namespace quicbench::runner {

// Run `fn(i)` for i in [0, n). Each index must be independent (all our
// trials are: they own their Simulator). `threads` == 0 uses the
// hardware concurrency; 1 runs inline on the calling thread.
void parallel_for(int n, const std::function<void(int)>& fn,
                  int threads = 0);

} // namespace quicbench::runner
