#include "runner/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "obs/attrib.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/run_options.h"
#include "runner/env.h"
#include "runner/fingerprint.h"
#include "trace/qlog.h"
#include "util/json.h"

namespace quicbench::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool cache_disabled_by_env() {
  const char* v = std::getenv("QB_NO_CACHE");
  return v != nullptr && v[0] == '1';
}

// Display names become path components of qlog output; keep them to a
// conservative portable character set.
std::string sanitize_path_component(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("x") : out;
}

// Per-pair flight-recorder summary in the manifest ("diagnostics" key).
void write_diagnostics(JsonWriter& j, const harness::PairDiagnostics& d) {
  j.begin_object();
  j.kv("valid", d.valid);
  j.key("flows").begin_array();
  for (const auto& f : d.flow) {
    j.begin_object();
    j.kv("loss_rate", f.loss_rate);
    j.kv("retx_rate", f.retx_rate);
    j.kv("ptos_per_trial", f.ptos_per_trial);
    j.kv("spurious_per_trial", f.spurious_per_trial);
    j.key("phase_residency_sec").begin_object();
    for (const auto& [phase, sec] : f.phase_residency_sec) {
      j.kv(phase, sec);
    }
    j.end_object();
    j.end_object();
  }
  j.end_array();
  j.kv("queue_hwm_bytes", static_cast<std::int64_t>(d.queue_hwm_bytes));
  j.kv("bottleneck_drops", d.bottleneck_drops);
  j.kv("utilization", d.utilization);
  j.end_object();
}

std::string iso_utc_now() {
  const std::time_t t =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

// Run one trial under the kTrial attribution root and leave the
// thread-local cycle delta it produced in *delta (untouched when
// attribution is compiled out or runtime-disabled — a single TLS read
// per trial).
template <typename Fn>
auto run_attributed(obs::attrib::Report* delta, Fn&& fn) {
  if (!obs::attrib::compiled_in() || !obs::attrib::enabled()) {
    return fn();
  }
  const obs::attrib::Report before = obs::attrib::thread_report();
  auto result = [&] {
    obs::attrib::ScopeTimer root(obs::attrib::Scope::kTrial);
    return fn();
  }();
  *delta = obs::attrib::thread_report() - before;
  return result;
}

// Per-task hot-path attribution for the manifest ("attrib" key):
// coverage, a cycles->seconds calibration against the task's wall time,
// and per-scope call/cycle counts (scopes never entered are omitted).
void write_attrib(JsonWriter& j, const obs::attrib::Report& r,
                  double wall_sec) {
  j.begin_object();
  j.kv("coverage", r.coverage());
  j.kv("cycles_per_sec",
       wall_sec > 0 ? static_cast<double>(r.total_cycles()) / wall_sec
                    : 0.0);
  j.key("scopes").begin_object();
  for (std::size_t s = 0; s < obs::attrib::kScopeCount; ++s) {
    const obs::attrib::Report::Row& row = r.rows[s];
    if (row.calls == 0) continue;
    j.key(std::string(
         obs::attrib::scope_name(static_cast<obs::attrib::Scope>(s))))
        .begin_object();
    j.kv("calls", row.calls);
    j.kv("cycles", row.cycles);
    j.kv("excl_cycles", row.exclusive_cycles());
    j.end_object();
  }
  j.end_object();
  j.end_object();
}

} // namespace

struct Sweep::PairTask {
  stacks::Implementation a, b;
  harness::ExperimentConfig cfg;
  std::string fingerprint;
  bool cached = false;
  harness::PairResult result;
  std::vector<harness::TrialResult> trial_results;
  std::atomic<int> remaining{0};
  std::vector<int> dependent_cells;
  std::mutex mu;            // guards wall_sec/events/engine accumulation
  double wall_sec = 0;      // summed trial wall time (transport/sim)
  double finalize_sec = 0;  // aggregate_trials + cache store
  std::uint64_t events = 0;
  // Engine sizing maxima across this pair's trials.
  netsim::Simulator::Stats engine;
  // Summed per-trial cycle attribution (empty unless QB_ATTRIB builds).
  obs::attrib::Report attrib;
};

// An N-flow scenario shared by one or more cells. Mirrors PairTask but is
// never disk-cached: the persistent ResultCache stores PairResults, and
// many-flow scenarios are both cheap to recompute relative to their size
// on disk and new enough that cache-format churn would hurt more than the
// re-simulation.
struct Sweep::ScenarioTask {
  harness::ScenarioConfig cfg;
  std::string fingerprint;
  harness::ScenarioResult result;
  std::vector<harness::ScenarioTrialResult> trial_results;
  std::atomic<int> remaining{0};
  std::vector<int> dependent_cells;
  std::mutex mu;            // guards wall_sec/events/engine accumulation
  double wall_sec = 0;      // summed trial wall time (transport/sim)
  double finalize_sec = 0;  // aggregate_scenario_trials
  std::uint64_t events = 0;
  // Engine sizing maxima across this scenario's trials.
  netsim::Simulator::Stats engine;
  // Summed per-trial cycle attribution (empty unless QB_ATTRIB builds).
  obs::attrib::Report attrib;
};

struct Sweep::Cell {
  enum class Kind { kPair, kConformance, kScenario, kScenarioConformance };
  Kind kind = Kind::kPair;
  int pair_idx = -1;      // kPair: the pair; kConformance: test-vs-ref
  int ref_pair_idx = -1;  // kConformance only: ref-vs-ref
  int scen_idx = -1;      // kScenario*: the (test) scenario
  int ref_scen_idx = -1;  // kScenarioConformance only: reference scenario
  std::vector<int> deps;   // unique pair indices this cell needs
  std::vector<int> sdeps;  // unique scenario indices this cell needs
  conformance::PeConfig pe_cfg;
  std::string fingerprint;
  conformance::ConformanceReport report;
  std::atomic<int> remaining{0};
  double eval_sec = 0;

  bool needs_eval() const {
    return kind == Kind::kConformance || kind == Kind::kScenarioConformance;
  }
};

Sweep::Sweep(std::string name, SweepOptions opts)
    : name_(std::move(name)), opts_(std::move(opts)) {
  progress_ = opts_.progress || progress_enabled();
  if (opts_.use_cache && !cache_disabled_by_env()) {
    if (!opts_.cache_dir.empty()) {
      owned_cache_ = std::make_unique<ResultCache>(opts_.cache_dir);
      cache_ = owned_cache_.get();
    } else {
      cache_ = ResultCache::default_cache();
    }
  }
  qlog_dir_ = !opts_.qlog_dir.empty() ? opts_.qlog_dir : qlog_dir();
  if (opts_.profile || profile_enabled()) {
    profiler_ =
        std::make_unique<obs::TraceProfiler>("qb-sweep " + name_);
    // Arm the abnormal-exit flush now (the handler cannot mkdir, so the
    // directory must exist before a crash): an aborted sweep — invariant
    // violation, uncaught exception — still leaves a valid partial
    // profile. Disarmed by the successful write at the end of run().
    std::error_code ec;
    std::filesystem::create_directories(opts_.profile_dir, ec);
    profiler_->arm_exit_flush(opts_.profile_dir + "/" + name_ +
                              ".trace.json");
  }
}

Sweep::~Sweep() = default;

int Sweep::intern_pair(const stacks::Implementation& a,
                       const stacks::Implementation& b,
                       const harness::ExperimentConfig& cfg) {
  std::string fp = pair_fingerprint(a, b, cfg);
  if (const auto it = pair_index_.find(fp); it != pair_index_.end()) {
    return it->second;
  }
  auto task = std::make_unique<PairTask>();
  task->a = a;
  task->b = b;
  task->cfg = cfg;
  task->fingerprint = fp;
  const int idx = static_cast<int>(pairs_.size());
  pairs_.push_back(std::move(task));
  pair_index_.emplace(std::move(fp), idx);
  return idx;
}

int Sweep::intern_scenario(const harness::ScenarioConfig& cfg) {
  std::string fp = scenario_fingerprint(cfg);
  if (const auto it = scenario_index_.find(fp);
      it != scenario_index_.end()) {
    return it->second;
  }
  auto task = std::make_unique<ScenarioTask>();
  task->cfg = cfg;
  task->fingerprint = fp;
  const int idx = static_cast<int>(scenarios_.size());
  scenarios_.push_back(std::move(task));
  scenario_index_.emplace(std::move(fp), idx);
  return idx;
}

CellId Sweep::add_pair(const stacks::Implementation& a,
                       const stacks::Implementation& b,
                       const harness::ExperimentConfig& cfg) {
  if (ran_) throw std::logic_error("Sweep: add_pair after run()");
  cfg.validate();
  auto cell = std::make_unique<Cell>();
  cell->kind = Cell::Kind::kPair;
  cell->pair_idx = intern_pair(a, b, cfg);
  cell->deps = {cell->pair_idx};
  cell->fingerprint = pair_fingerprint(a, b, cfg);
  const auto id = static_cast<CellId>(cells_.size());
  pairs_[static_cast<std::size_t>(cell->pair_idx)]
      ->dependent_cells.push_back(id);
  cells_.push_back(std::move(cell));
  return id;
}

CellId Sweep::add_conformance(const stacks::Implementation& test,
                              const stacks::Implementation& ref,
                              const harness::ExperimentConfig& cfg,
                              const conformance::PeConfig& pe_cfg) {
  if (ran_) throw std::logic_error("Sweep: add_conformance after run()");
  cfg.validate();
  auto cell = std::make_unique<Cell>();
  cell->kind = Cell::Kind::kConformance;
  cell->pair_idx = intern_pair(test, ref, cfg);
  cell->ref_pair_idx = intern_pair(ref, ref, cfg);
  cell->deps = {cell->pair_idx};
  if (cell->ref_pair_idx != cell->pair_idx) {
    cell->deps.push_back(cell->ref_pair_idx);
  }
  cell->pe_cfg = pe_cfg;
  cell->fingerprint = conformance_fingerprint(test, ref, cfg, pe_cfg);
  const auto id = static_cast<CellId>(cells_.size());
  for (const int d : cell->deps) {
    pairs_[static_cast<std::size_t>(d)]->dependent_cells.push_back(id);
  }
  cells_.push_back(std::move(cell));
  return id;
}

CellId Sweep::add_scenario(const harness::ScenarioConfig& cfg) {
  if (ran_) throw std::logic_error("Sweep: add_scenario after run()");
  cfg.validate();
  auto cell = std::make_unique<Cell>();
  cell->kind = Cell::Kind::kScenario;
  cell->scen_idx = intern_scenario(cfg);
  cell->sdeps = {cell->scen_idx};
  cell->fingerprint = scenario_fingerprint(cfg);
  const auto id = static_cast<CellId>(cells_.size());
  scenarios_[static_cast<std::size_t>(cell->scen_idx)]
      ->dependent_cells.push_back(id);
  cells_.push_back(std::move(cell));
  return id;
}

CellId Sweep::add_scenario_conformance(
    const harness::ScenarioConfig& test_cfg,
    const harness::ScenarioConfig& ref_cfg,
    const conformance::PeConfig& pe_cfg) {
  if (ran_) {
    throw std::logic_error("Sweep: add_scenario_conformance after run()");
  }
  test_cfg.validate();
  ref_cfg.validate();
  auto cell = std::make_unique<Cell>();
  cell->kind = Cell::Kind::kScenarioConformance;
  cell->scen_idx = intern_scenario(test_cfg);
  cell->ref_scen_idx = intern_scenario(ref_cfg);
  cell->sdeps = {cell->scen_idx};
  if (cell->ref_scen_idx != cell->scen_idx) {
    cell->sdeps.push_back(cell->ref_scen_idx);
  }
  cell->pe_cfg = pe_cfg;
  cell->fingerprint =
      scenario_conformance_fingerprint(test_cfg, ref_cfg, pe_cfg);
  const auto id = static_cast<CellId>(cells_.size());
  for (const int d : cell->sdeps) {
    scenarios_[static_cast<std::size_t>(d)]->dependent_cells.push_back(id);
  }
  cells_.push_back(std::move(cell));
  return id;
}

void Sweep::eval_cell(Cell& cell, double* busy_sec, int worker_id) {
  if (!cell.needs_eval()) return;
  const auto t0 = Clock::now();
  const double ts_us = profiler_ != nullptr ? profiler_->now_us() : 0;
  std::string label;
  if (cell.kind == Cell::Kind::kConformance) {
    const harness::PairResult& ref_pair =
        pairs_[static_cast<std::size_t>(cell.ref_pair_idx)]->result;
    const harness::PairResult& test_pair =
        pairs_[static_cast<std::size_t>(cell.pair_idx)]->result;
    cell.report = conformance::evaluate(ref_pair.points_a,
                                        test_pair.points_a, cell.pe_cfg);
    if (profiler_ != nullptr) {
      const PairTask& mp = *pairs_[static_cast<std::size_t>(cell.pair_idx)];
      label = "eval " + mp.a.display + " vs " + mp.b.display;
    }
  } else {
    // Scenario conformance: compare the clouds of each scenario's flow in
    // the test position.
    const ScenarioTask& test_scen =
        *scenarios_[static_cast<std::size_t>(cell.scen_idx)];
    const ScenarioTask& ref_scen =
        *scenarios_[static_cast<std::size_t>(cell.ref_scen_idx)];
    const auto& ref_points =
        ref_scen.result.flows[harness::test_flow_index(ref_scen.cfg)].points;
    const auto& test_points =
        test_scen.result.flows[harness::test_flow_index(test_scen.cfg)]
            .points;
    cell.report = conformance::evaluate(ref_points, test_points,
                                        cell.pe_cfg);
    if (profiler_ != nullptr) {
      const std::size_t ti = harness::test_flow_index(test_scen.cfg);
      label = "eval scenario " + test_scen.cfg.flows[ti].impl.display +
              " vs " + std::to_string(test_scen.cfg.flows.size() - 1) +
              " competitors";
    }
  }
  cell.eval_sec = seconds_since(t0);
  *busy_sec += cell.eval_sec;
  if (profiler_ != nullptr) {
    profiler_->record_complete(label, "eval", worker_id + 1, ts_us,
                               cell.eval_sec * 1e6);
  }
}

void Sweep::finalize_pair(PairTask& pair, double* busy_sec, int worker_id) {
  const auto t0 = Clock::now();
  const double ts_us = profiler_ != nullptr ? profiler_->now_us() : 0;
  pair.result =
      harness::aggregate_trials(std::move(pair.trial_results), pair.cfg);
  pair.trial_results = {};
  if (cache_ != nullptr) cache_->store(pair.fingerprint, pair.result);
  pair.finalize_sec = seconds_since(t0);
  *busy_sec += pair.finalize_sec;
  if (profiler_ != nullptr) {
    profiler_->record_complete(
        "finalize " + pair.a.display + " vs " + pair.b.display, "finalize",
        worker_id + 1, ts_us, profiler_->now_us() - ts_us);
  }
  const int done = tasks_done_.fetch_add(1) + 1;
  if (progress_) {
    // Health counters alongside progress: simulator throughput and the
    // sim-time rate (simulated seconds per busy second) expose a trial
    // that is running but crawling, long before the sweep total does.
    const double evps =
        pair.wall_sec > 0
            ? static_cast<double>(pair.events) / pair.wall_sec
            : 0;
    const double sim_rate =
        pair.wall_sec > 0 ? time::to_sec(pair.cfg.duration) *
                                static_cast<double>(pair.cfg.trials) /
                                pair.wall_sec
                          : 0;
    std::lock_guard<std::mutex> lock(progress_mu_);
    std::fprintf(stderr,
                 "[qb-sweep %s] task %d/%d done: %s vs %s (%.2fs, %llu "
                 "events, %.2fM ev/s, %.0fx real-time)\n",
                 name_.c_str(), done, tasks_to_simulate_,
                 pair.a.display.c_str(), pair.b.display.c_str(),
                 pair.wall_sec,
                 static_cast<unsigned long long>(pair.events),
                 evps / 1e6, sim_rate);
  }
  publish_unblocked_cells(pair.dependent_cells);
}

void Sweep::finalize_scenario(ScenarioTask& scen, double* busy_sec,
                              int worker_id) {
  const auto t0 = Clock::now();
  const double ts_us = profiler_ != nullptr ? profiler_->now_us() : 0;
  scen.result = harness::aggregate_scenario_trials(
      std::move(scen.trial_results), scen.cfg);
  scen.trial_results = {};
  scen.finalize_sec = seconds_since(t0);
  *busy_sec += scen.finalize_sec;
  const std::size_t n_flows = scen.cfg.flows.size();
  if (profiler_ != nullptr) {
    profiler_->record_complete(
        "finalize scenario (" + std::to_string(n_flows) + " flows)",
        "finalize", worker_id + 1, ts_us, profiler_->now_us() - ts_us);
  }
  const int done = tasks_done_.fetch_add(1) + 1;
  if (progress_) {
    // Scenario health counters: simulator throughput, sim-time rate, and
    // flow churn (arrivals / completed departures, peak concurrency) —
    // the signals that tell a stalled 256-flow study from a slow one.
    const double evps =
        scen.wall_sec > 0
            ? static_cast<double>(scen.events) / scen.wall_sec
            : 0;
    const double sim_rate =
        scen.wall_sec > 0 ? time::to_sec(scen.cfg.duration) *
                                static_cast<double>(scen.cfg.trials) /
                                scen.wall_sec
                          : 0;
    std::lock_guard<std::mutex> lock(progress_mu_);
    std::fprintf(stderr,
                 "[qb-sweep %s] task %d/%d done: scenario with %zu flows "
                 "(%.2fs, %llu events, %.2fM ev/s, %.0fx real-time, "
                 "%lld arrived / %lld completed, peak %lld concurrent)\n",
                 name_.c_str(), done, tasks_to_simulate_, n_flows,
                 scen.wall_sec,
                 static_cast<unsigned long long>(scen.events),
                 evps / 1e6, sim_rate,
                 static_cast<long long>(scen.result.churn.arrivals),
                 static_cast<long long>(scen.result.churn.departures),
                 static_cast<long long>(scen.result.churn.peak_concurrent));
  }
  publish_unblocked_cells(scen.dependent_cells);
}

// Publish newly-unblocked cells to the shared queue (instead of
// evaluating them inline on this worker), then retire this task —
// strictly in that order, so a claimant that observes tasks_active_
// == 0 is guaranteed to see every push.
void Sweep::publish_unblocked_cells(const std::vector<int>& dependent_cells) {
  for (const int ci : dependent_cells) {
    Cell& cell = *cells_[static_cast<std::size_t>(ci)];
    if (cell.needs_eval() && cell.remaining.fetch_sub(1) == 1) {
      push_ready_cell(&cell);
    }
  }
  tasks_active_.fetch_sub(1, std::memory_order_release);
}

void Sweep::push_ready_cell(Cell* cell) {
  std::lock_guard<std::mutex> lock(ready_mu_);
  ready_cells_.push_back(cell);
}

Sweep::Cell* Sweep::claim_ready_cell() {
  const std::size_t i = next_ready_cell_.fetch_add(1);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      if (i < ready_cells_.size()) return ready_cells_[i];
    }
    if (tasks_active_.load(std::memory_order_acquire) == 0) {
      // No more pushes can happen; re-check under the lock in case one
      // landed between the size check and the counter read.
      std::lock_guard<std::mutex> lock(ready_mu_);
      return i < ready_cells_.size() ? ready_cells_[i] : nullptr;
    }
    std::this_thread::yield();
  }
}

// Flight-recorder variant of a trial: attach per-flow qlog writers and a
// per-trial metrics registry, then dump both next to the manifest. The
// observers are strictly passive, so the TrialResult is bit-identical to
// the plain run_trial path. All I/O failures are reported and swallowed —
// losing a qlog must never fail a sweep.
harness::TrialResult Sweep::run_observed_trial(PairTask& pair, int pair_idx,
                                               int trial) {
  const std::string pair_dir =
      qlog_dir_ + "/" + name_ + "/p" + std::to_string(pair_idx) + "_" +
      sanitize_path_component(pair.a.display) + "_vs_" +
      sanitize_path_component(pair.b.display);
  std::error_code ec;
  std::filesystem::create_directories(pair_dir, ec);

  const std::string title = name_ + ": " + pair.a.display + " vs " +
                            pair.b.display + ", trial " +
                            std::to_string(trial);
  trace::QlogWriter qlog_a(title + ", flow 0", pair.a.make_cca()->name());
  trace::QlogWriter qlog_b(title + ", flow 1", pair.b.make_cca()->name());
  obs::MetricsRegistry metrics;
  // Per-flow time-series samplers (QB_FLIGHT_MS, default 100 ms; <= 0
  // disables them while keeping the qlog/metrics recorders).
  const double flight_ms = obs::RunOptions::current().flight_interval_ms;
  const Time flight_interval =
      flight_ms > 0 ? time::from_ms(flight_ms) : 0;
  obs::FlowSampler flight_a(flight_interval);
  obs::FlowSampler flight_b(flight_interval);

  harness::TrialObservers observers;
  observers.qlog[0] = &qlog_a;
  observers.qlog[1] = &qlog_b;
  observers.metrics = &metrics;
  if (flight_interval > 0) {
    observers.flight[0] = &flight_a;
    observers.flight[1] = &flight_b;
  }
  harness::TrialResult tr =
      harness::run_trial(pair.a, pair.b, pair.cfg,
                         static_cast<std::uint64_t>(trial), observers);

  const std::string stem = pair_dir + "/trial" + std::to_string(trial);
  std::string err;
  if (!qlog_a.write_file(stem + "_flow0.qlog", &err)) {
    std::fprintf(stderr, "[qb-sweep %s] qlog write failed: %s\n",
                 name_.c_str(), err.c_str());
  }
  if (!qlog_b.write_file(stem + "_flow1.qlog", &err)) {
    std::fprintf(stderr, "[qb-sweep %s] qlog write failed: %s\n",
                 name_.c_str(), err.c_str());
  }
  const std::string metrics_path = stem + "_metrics.json";
  std::ofstream mf(metrics_path, std::ios::trunc);
  if (mf) mf << metrics.to_json_string();
  if (!mf) {
    std::fprintf(stderr, "[qb-sweep %s] metrics write failed: %s\n",
                 name_.c_str(), metrics_path.c_str());
  }
  if (flight_interval > 0) {
    const obs::FlowSampler* flights[2] = {&flight_a, &flight_b};
    const stacks::Implementation* impls[2] = {&pair.a, &pair.b};
    for (int f = 0; f < 2; ++f) {
      const std::string fstem =
          stem + "_flow" + std::to_string(f) + "_flight";
      if (!flights[f]->write_csv(fstem + ".csv", &err)) {
        std::fprintf(stderr, "[qb-sweep %s] flight csv write failed: %s\n",
                     name_.c_str(), err.c_str());
      }
      if (!flights[f]->write_qlog(fstem + ".qlog",
                                  title + ", flow " + std::to_string(f),
                                  impls[f]->make_cca()->name(), &err)) {
        std::fprintf(stderr,
                     "[qb-sweep %s] flight qlog write failed: %s\n",
                     name_.c_str(), err.c_str());
      }
    }
  }
  return tr;
}

void Sweep::run() {
  if (ran_) throw std::logic_error("Sweep: run() called twice");
  ran_ = true;
  const auto t0 = Clock::now();

  // Probe the persistent cache; misses become trial-granular work items.
  const double probe_ts = profiler_ != nullptr ? profiler_->now_us() : 0;
  for (const auto& p : pairs_) {
    if (cache_ != nullptr) {
      if (auto hit = cache_->load(p->fingerprint)) {
        p->result = std::move(*hit);
        p->cached = true;
        ++stats_.cache_hits;
        continue;
      }
    }
    ++stats_.cache_misses;
    p->remaining.store(p->cfg.trials);
    p->trial_results.resize(static_cast<std::size_t>(p->cfg.trials));
  }
  if (profiler_ != nullptr) {
    profiler_->record_complete("cache probe", "cache", 0, probe_ts,
                               profiler_->now_us() - probe_ts);
  }

  // Scenarios are never disk-cached: every one is simulated this run.
  for (const auto& s : scenarios_) {
    s->remaining.store(s->cfg.trials);
    s->trial_results.resize(static_cast<std::size_t>(s->cfg.trials));
  }

  // Cells whose dependencies are all cached are ready immediately; the
  // rest are published by finalize_pair/finalize_scenario as their last
  // dependency lands.
  tasks_to_simulate_ =
      stats_.cache_misses + static_cast<int>(scenarios_.size());
  tasks_active_.store(tasks_to_simulate_);
  for (const auto& c : cells_) {
    int rem = static_cast<int>(c->sdeps.size());
    for (const int d : c->deps) {
      if (!pairs_[static_cast<std::size_t>(d)]->cached) ++rem;
    }
    c->remaining.store(rem);
    if (rem == 0 && c->needs_eval()) {
      ready_cells_.push_back(c.get());
    }
  }

  struct Item {
    bool scenario;  // index into scenarios_ instead of pairs_
    int task;
    int trial;
  };
  std::vector<Item> items;
  for (std::size_t pi = 0; pi < pairs_.size(); ++pi) {
    if (pairs_[pi]->cached) continue;
    for (int t = 0; t < pairs_[pi]->cfg.trials; ++t) {
      items.push_back({false, static_cast<int>(pi), t});
    }
  }
  for (std::size_t si = 0; si < scenarios_.size(); ++si) {
    for (int t = 0; t < scenarios_[si]->cfg.trials; ++t) {
      items.push_back({true, static_cast<int>(si), t});
    }
  }

  const unsigned hw =
      std::max(1u, std::thread::hardware_concurrency());
  int requested = opts_.threads > 0 ? opts_.threads : env_threads();
  if (requested <= 0) requested = static_cast<int>(hw);
  const int workers = std::max(
      1, std::min<int>(requested,
                       static_cast<int>(items.size() + ready_cells_.size())));

  stats_.cells = static_cast<int>(cells_.size());
  stats_.unique_pairs = static_cast<int>(pairs_.size());
  stats_.unique_scenarios = static_cast<int>(scenarios_.size());
  stats_.simulations_executed = static_cast<long long>(items.size());
  stats_.threads = workers;

  if (progress_) {
    std::fprintf(stderr,
                 "[qb-sweep %s] %d cells -> %d unique pairs (%d cached) + "
                 "%d scenarios, %zu trials on %d threads\n",
                 name_.c_str(), stats_.cells, stats_.unique_pairs,
                 stats_.cache_hits, stats_.unique_scenarios, items.size(),
                 workers);
  }

  std::atomic<std::size_t> next_item{0};
  std::mutex busy_mu;
  double total_busy = 0;

  const auto worker = [&](int wid) {
    double busy = 0;
    for (;;) {
      const std::size_t i = next_item.fetch_add(1);
      if (i >= items.size()) break;
      if (items[i].scenario) {
        // Scenario trials skip the per-trial qlog flight recorder: a
        // 256-flow trial would write hundreds of qlogs per trial, and
        // the contention studies only need the aggregate result.
        ScenarioTask& s = *scenarios_[static_cast<std::size_t>(
            items[i].task)];
        const auto ts = Clock::now();
        const double ts_us =
            profiler_ != nullptr ? profiler_->now_us() : 0;
        obs::attrib::Report adelta;
        harness::ScenarioTrialResult tr = run_attributed(&adelta, [&] {
          return harness::run_scenario_trial(
              s.cfg, static_cast<std::uint64_t>(items[i].trial));
        });
        const double dt = seconds_since(ts);
        if (profiler_ != nullptr) {
          profiler_->record_complete(
              "scenario(" + std::to_string(s.cfg.flows.size()) +
                  " flows) #" + std::to_string(items[i].trial),
              "trial", wid + 1, ts_us, dt * 1e6);
        }
        busy += dt;
        {
          std::lock_guard<std::mutex> lock(s.mu);
          s.wall_sec += dt;
          s.events += tr.sim_events;
          s.engine.heap_peak = std::max(s.engine.heap_peak,
                                        tr.engine.heap_peak);
          s.engine.wheel_peak = std::max(s.engine.wheel_peak,
                                         tr.engine.wheel_peak);
          s.engine.slot_count = std::max(s.engine.slot_count,
                                         tr.engine.slot_count);
          s.attrib += adelta;
        }
        s.trial_results[static_cast<std::size_t>(items[i].trial)] =
            std::move(tr);
        if (s.remaining.fetch_sub(1) == 1) {
          finalize_scenario(s, &busy, wid);
        }
        continue;
      }
      PairTask& p = *pairs_[static_cast<std::size_t>(items[i].task)];
      const auto ts = Clock::now();
      const double ts_us = profiler_ != nullptr ? profiler_->now_us() : 0;
      obs::attrib::Report adelta;
      harness::TrialResult tr = run_attributed(&adelta, [&] {
        return !qlog_dir_.empty()
                   ? run_observed_trial(p, items[i].task, items[i].trial)
                   : harness::run_trial(p.a, p.b, p.cfg,
                                        static_cast<std::uint64_t>(
                                            items[i].trial));
      });
      const double dt = seconds_since(ts);
      if (profiler_ != nullptr) {
        profiler_->record_complete(p.a.display + " vs " + p.b.display +
                                       " #" + std::to_string(items[i].trial),
                                   "trial", wid + 1, ts_us, dt * 1e6);
      }
      busy += dt;
      {
        std::lock_guard<std::mutex> lock(p.mu);
        p.wall_sec += dt;
        p.events += tr.sim_events;
        p.engine.heap_peak = std::max(p.engine.heap_peak,
                                      tr.engine.heap_peak);
        p.engine.wheel_peak = std::max(p.engine.wheel_peak,
                                       tr.engine.wheel_peak);
        p.engine.slot_count = std::max(p.engine.slot_count,
                                       tr.engine.slot_count);
        p.attrib += adelta;
      }
      p.trial_results[static_cast<std::size_t>(items[i].trial)] =
          std::move(tr);
      if (p.remaining.fetch_sub(1) == 1) finalize_pair(p, &busy, wid);
    }
    // Trial items exhausted: drain PE evaluations. Cells published by
    // workers still finalizing their last pair are waited for, so the
    // eval fan-out is as wide as the worker pool.
    for (;;) {
      Cell* cell = claim_ready_cell();
      if (cell == nullptr) break;
      eval_cell(*cell, &busy, wid);
    }
    std::lock_guard<std::mutex> lock(busy_mu);
    total_busy += busy;
  };

  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  for (const auto& p : pairs_) {
    if (!p->cached) stats_.events_executed += p->events;
  }
  for (const auto& s : scenarios_) stats_.events_executed += s->events;
  stats_.wall_sec = seconds_since(t0);
  stats_.busy_sec = total_busy;
  if (stats_.wall_sec > 0) {
    stats_.events_per_sec =
        static_cast<double>(stats_.events_executed) / stats_.wall_sec;
    stats_.thread_utilization =
        total_busy / (static_cast<double>(workers) * stats_.wall_sec);
  }
  if (profiler_ != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.profile_dir, ec);
    const std::string path =
        opts_.profile_dir + "/" + name_ + ".trace.json";
    std::string err;
    if (profiler_->write_file(path, &err)) {
      profile_path_ = path;
      profiler_->disarm_exit_flush();
    } else {
      std::fprintf(stderr, "[qb-sweep %s] profile write failed: %s\n",
                   name_.c_str(), err.c_str());
    }
  }
  if (progress_) {
    std::fprintf(stderr,
                 "[qb-sweep %s] done in %.2fs: %lld trials, %.2fM events "
                 "(%.2fM events/s), utilization %.0f%%\n",
                 name_.c_str(), stats_.wall_sec,
                 stats_.simulations_executed,
                 static_cast<double>(stats_.events_executed) / 1e6,
                 stats_.events_per_sec / 1e6,
                 100 * stats_.thread_utilization);
  }
}

const harness::PairResult& Sweep::pair_result(CellId id) const {
  if (!ran_) throw std::logic_error("Sweep: pair_result before run()");
  const Cell& cell = *cells_.at(static_cast<std::size_t>(id));
  if (cell.pair_idx < 0) {
    throw std::logic_error(
        "Sweep: pair_result on a scenario cell; use scenario_result");
  }
  return pairs_[static_cast<std::size_t>(cell.pair_idx)]->result;
}

const harness::ScenarioResult& Sweep::scenario_result(CellId id) const {
  if (!ran_) throw std::logic_error("Sweep: scenario_result before run()");
  const Cell& cell = *cells_.at(static_cast<std::size_t>(id));
  if (cell.scen_idx < 0) {
    throw std::logic_error(
        "Sweep: scenario_result on a pair cell; use pair_result");
  }
  return scenarios_[static_cast<std::size_t>(cell.scen_idx)]->result;
}

const conformance::ConformanceReport& Sweep::conformance_result(
    CellId id) const {
  if (!ran_) {
    throw std::logic_error("Sweep: conformance_result before run()");
  }
  const Cell& cell = *cells_.at(static_cast<std::size_t>(id));
  if (!cell.needs_eval()) {
    throw std::logic_error(
        "Sweep: conformance_result on a raw pair/scenario cell; use "
        "pair_result or scenario_result");
  }
  return cell.report;
}

std::string Sweep::write_manifest() const {
  if (!ran_) throw std::logic_error("Sweep: write_manifest before run()");
  JsonWriter j;
  j.begin_object();
  j.kv("schema", "quicbench.sweep.manifest/v6");
  j.kv("code_schema_version",
       static_cast<std::uint64_t>(kSchemaVersion));
  j.kv("sweep", name_);
  j.kv("generated_at", iso_utc_now());
  j.kv("threads", stats_.threads);
  j.kv("wall_sec", stats_.wall_sec);
  j.kv("busy_sec", stats_.busy_sec);
  j.kv("thread_utilization", stats_.thread_utilization);
  j.kv("simulations_executed",
       static_cast<std::int64_t>(stats_.simulations_executed));
  j.kv("events_executed", stats_.events_executed);
  j.kv("events_per_sec", stats_.events_per_sec);

  j.key("cache").begin_object();
  j.kv("enabled", cache_ != nullptr);
  j.kv("dir", cache_ != nullptr ? cache_->dir() : "");
  j.kv("hits", stats_.cache_hits);
  j.kv("misses", stats_.cache_misses);
  j.end_object();

  // Where the flight recorder wrote, if it was on ("" = off / not
  // written), plus which observers were live this run.
  j.key("observability").begin_object();
  j.kv("qlog_dir", qlog_dir_);
  j.kv("profile", profile_path_);
  j.kv("flight_interval_ms",
       qlog_dir_.empty() ? 0.0
                         : obs::RunOptions::current().flight_interval_ms);
  j.kv("attrib", obs::attrib::compiled_in() && obs::attrib::enabled());
  j.kv("attrib_timer", std::string(obs::attrib::timer_kind()));
  j.end_object();

  j.key("pairs").begin_array();
  for (const auto& p : pairs_) {
    j.begin_object();
    j.kv("fingerprint", p->fingerprint);
    j.kv("a", p->a.display);
    j.kv("b", p->b.display);
    j.kv("network", p->cfg.net.describe());
    j.kv("impairment", p->cfg.net.impairment.describe());
    j.kv("duration_sec", time::to_sec(p->cfg.duration));
    j.kv("trials", p->cfg.trials);
    j.kv("seed", p->cfg.seed);
    j.kv("cached", p->cached);
    j.kv("wall_sec", p->wall_sec);
    j.kv("finalize_sec", p->finalize_sec);
    j.kv("events", p->events);
    j.kv("events_per_sec",
         p->wall_sec > 0 ? static_cast<double>(p->events) / p->wall_sec
                         : 0.0);
    // Engine sizing maxima across the pair's trials (zero for cached
    // pairs, which were not simulated this run).
    j.key("engine").begin_object();
    j.kv("heap_peak", static_cast<std::uint64_t>(p->engine.heap_peak));
    j.kv("wheel_peak", static_cast<std::uint64_t>(p->engine.wheel_peak));
    j.kv("slot_count", static_cast<std::uint64_t>(p->engine.slot_count));
    j.end_object();
    if (!p->attrib.empty()) {
      j.key("attrib");
      write_attrib(j, p->attrib, p->wall_sec);
    }
    j.key("diagnostics");
    write_diagnostics(j, p->result.diagnostics);
    j.end_object();
  }
  j.end_array();

  j.key("scenarios").begin_array();
  for (const auto& s : scenarios_) {
    const harness::ScenarioConfig& cfg = s->cfg;
    const harness::ScenarioResult& r = s->result;
    int n_test = 0, n_ref = 0, n_bg = 0;
    for (const harness::FlowSpec& f : cfg.flows) {
      switch (f.role) {
        case harness::FlowRole::kTest: ++n_test; break;
        case harness::FlowRole::kReference: ++n_ref; break;
        case harness::FlowRole::kBackground: ++n_bg; break;
      }
    }
    j.begin_object();
    j.kv("fingerprint", s->fingerprint);
    j.kv("n_flows", static_cast<std::int64_t>(cfg.flows.size()));
    j.key("roles").begin_object();
    j.kv("test", n_test);
    j.kv("reference", n_ref);
    j.kv("background", n_bg);
    j.end_object();
    j.kv("test_flow",
         cfg.flows[harness::test_flow_index(cfg)].impl.display);
    j.kv("network", cfg.net.describe());
    j.kv("impairment", cfg.net.impairment.describe());
    j.kv("duration_sec", time::to_sec(cfg.duration));
    j.kv("trials", cfg.trials);
    j.kv("seed", cfg.seed);
    j.kv("wall_sec", s->wall_sec);
    j.kv("finalize_sec", s->finalize_sec);
    j.kv("events", s->events);
    j.kv("events_per_sec",
         s->wall_sec > 0 ? static_cast<double>(s->events) / s->wall_sec
                         : 0.0);
    j.key("engine").begin_object();
    j.kv("heap_peak", static_cast<std::uint64_t>(s->engine.heap_peak));
    j.kv("wheel_peak", static_cast<std::uint64_t>(s->engine.wheel_peak));
    j.kv("slot_count", static_cast<std::uint64_t>(s->engine.slot_count));
    j.end_object();
    if (!s->attrib.empty()) {
      j.key("attrib");
      write_attrib(j, s->attrib, s->wall_sec);
    }
    j.key("result").begin_object();
    j.kv("jain_overall", r.jain_overall);
    j.key("jain_windows").begin_array();
    for (const double w : r.jain_windows) j.value(w);
    j.end_array();
    j.key("churn").begin_object();
    j.kv("arrivals", r.churn.arrivals);
    j.kv("departures", r.churn.departures);
    j.kv("peak_concurrent", r.churn.peak_concurrent);
    j.kv("mean_completion_sec", r.churn.mean_completion_sec);
    j.end_object();
    j.kv("queue_hwm_bytes",
         static_cast<std::int64_t>(r.queue_hwm_bytes));
    j.kv("bottleneck_drops", r.bottleneck_drops);
    j.kv("utilization", r.utilization);
    j.end_object();
    j.end_object();
  }
  j.end_array();

  j.key("cells").begin_array();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = *cells_[i];
    j.begin_object();
    j.kv("id", static_cast<std::int64_t>(i));
    switch (c.kind) {
      case Cell::Kind::kPair: j.kv("kind", "pair"); break;
      case Cell::Kind::kConformance: j.kv("kind", "conformance"); break;
      case Cell::Kind::kScenario: j.kv("kind", "scenario"); break;
      case Cell::Kind::kScenarioConformance:
        j.kv("kind", "scenario_conformance");
        break;
    }
    j.kv("fingerprint", c.fingerprint);
    double wall = c.eval_sec;
    if (c.pair_idx >= 0) {
      const PairTask& main_pair =
          *pairs_[static_cast<std::size_t>(c.pair_idx)];
      j.kv("a", main_pair.a.display);
      j.kv("b", main_pair.b.display);
      j.key("pair_fingerprints").begin_array();
      for (const int d : c.deps) {
        j.value(pairs_[static_cast<std::size_t>(d)]->fingerprint);
      }
      j.end_array();
      for (const int d : c.deps) {
        wall += pairs_[static_cast<std::size_t>(d)]->wall_sec;
      }
    } else {
      const ScenarioTask& main_scen =
          *scenarios_[static_cast<std::size_t>(c.scen_idx)];
      j.kv("test_flow",
           main_scen.cfg.flows[harness::test_flow_index(main_scen.cfg)]
               .impl.display);
      j.kv("n_flows",
           static_cast<std::int64_t>(main_scen.cfg.flows.size()));
      j.key("scenario_fingerprints").begin_array();
      for (const int d : c.sdeps) {
        j.value(scenarios_[static_cast<std::size_t>(d)]->fingerprint);
      }
      j.end_array();
      for (const int d : c.sdeps) {
        wall += scenarios_[static_cast<std::size_t>(d)]->wall_sec;
      }
    }
    j.kv("eval_sec", c.eval_sec);
    j.kv("wall_sec", wall);  // shared tasks are counted in every cell
    if (c.kind == Cell::Kind::kConformance) {
      // How far the test pair's bottleneck behaviour sits from the
      // kernel-reference pair's (flow 0 = the test position).
      const harness::PairDiagnostics& td =
          pairs_[static_cast<std::size_t>(c.pair_idx)]
              ->result.diagnostics;
      const harness::PairDiagnostics& rd =
          pairs_[static_cast<std::size_t>(c.ref_pair_idx)]
              ->result.diagnostics;
      if (td.valid && rd.valid) {
        j.key("diagnostics_vs_ref").begin_object();
        j.kv("loss_rate_delta",
             td.flow[0].loss_rate - rd.flow[0].loss_rate);
        j.kv("queue_hwm_delta_bytes",
             static_cast<std::int64_t>(td.queue_hwm_bytes) -
                 static_cast<std::int64_t>(rd.queue_hwm_bytes));
        j.kv("utilization_delta", td.utilization - rd.utilization);
        j.end_object();
      }
    } else if (c.kind == Cell::Kind::kScenarioConformance) {
      // Fairness alongside conformance: how evenly each scenario's
      // bottleneck was shared.
      const harness::ScenarioResult& tr =
          scenarios_[static_cast<std::size_t>(c.scen_idx)]->result;
      const harness::ScenarioResult& rr =
          scenarios_[static_cast<std::size_t>(c.ref_scen_idx)]->result;
      j.key("fairness").begin_object();
      j.kv("test_jain", tr.jain_overall);
      j.kv("ref_jain", rr.jain_overall);
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();

  std::filesystem::create_directories(opts_.manifest_dir);
  const std::string path = opts_.manifest_dir + "/" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << j.str();
  return path;
}

// ---------------------------------------------------------------------

const harness::PairResult& RefPairCache::get(
    const stacks::Implementation& ref,
    const harness::ExperimentConfig& cfg) {
  const std::string key = pair_fingerprint(ref, ref, cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = mem_.find(key); it != mem_.end()) {
      return it->second;
    }
  }
  if (disk_ != nullptr && !cfg.record_cwnd) {
    if (auto hit = disk_->load(key)) {
      std::lock_guard<std::mutex> lock(mu_);
      return mem_.emplace(key, std::move(*hit)).first->second;
    }
  }
  harness::PairResult pr = harness::run_pair(ref, ref, cfg);
  if (disk_ != nullptr) disk_->store(key, pr);
  std::lock_guard<std::mutex> lock(mu_);
  return mem_.emplace(key, std::move(pr)).first->second;
}

harness::PairResult run_pair_cached(const stacks::Implementation& a,
                                    const stacks::Implementation& b,
                                    const harness::ExperimentConfig& cfg,
                                    ResultCache* disk) {
  if (disk == nullptr || cfg.record_cwnd) {
    return harness::run_pair(a, b, cfg);
  }
  const std::string key = pair_fingerprint(a, b, cfg);
  if (auto hit = disk->load(key)) return std::move(*hit);
  harness::PairResult pr = harness::run_pair(a, b, cfg);
  disk->store(key, pr);
  return pr;
}

conformance::ConformanceReport conformance_cell(
    const stacks::Implementation& test, const stacks::Implementation& ref,
    const harness::ExperimentConfig& cfg, RefPairCache& cache,
    const conformance::PeConfig& pe_cfg) {
  const harness::PairResult& ref_pair = cache.get(ref, cfg);
  const harness::PairResult test_pair =
      run_pair_cached(test, ref, cfg, cache.disk());
  return conformance::evaluate(ref_pair.points_a, test_pair.points_a,
                               pe_cfg);
}

} // namespace quicbench::runner
