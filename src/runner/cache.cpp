#include "runner/cache.h"

#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "runner/fingerprint.h"

namespace quicbench::runner {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x31524251;  // "QBR1" little-endian

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// Cursor over a loaded file; all gets fail soft by flagging `ok`.
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (pos + 4 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (pos + 8 > buf.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }
};

void put_clouds(std::string& out,
                const std::vector<conformance::TrialPoints>& trials) {
  put_u32(out, static_cast<std::uint32_t>(trials.size()));
  for (const auto& cloud : trials) {
    put_u64(out, cloud.size());
    for (const auto& p : cloud) {
      put_f64(out, p.x);
      put_f64(out, p.y);
    }
  }
}

bool get_clouds(Reader& r, std::vector<conformance::TrialPoints>& trials) {
  const std::uint32_t n = r.u32();
  if (!r.ok || n > 1'000'000) return false;
  trials.resize(n);
  for (auto& cloud : trials) {
    const std::uint64_t m = r.u64();
    if (!r.ok || m > 100'000'000) return false;
    cloud.resize(m);
    for (auto& p : cloud) {
      p.x = r.f64();
      p.y = r.f64();
    }
    if (!r.ok) return false;
  }
  return true;
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

bool get_str(Reader& r, std::string& s) {
  const std::uint32_t n = r.u32();
  if (!r.ok || n > 1'000'000 || r.pos + n > r.buf.size()) return false;
  s.assign(r.buf, r.pos, n);
  r.pos += n;
  return true;
}

// Pair diagnostics block (schema v2): per-flow rates plus the phase
// residency table, then the bottleneck summary.
void put_diagnostics(std::string& out, const harness::PairDiagnostics& d) {
  for (const auto& f : d.flow) {
    put_f64(out, f.loss_rate);
    put_f64(out, f.retx_rate);
    put_f64(out, f.ptos_per_trial);
    put_f64(out, f.spurious_per_trial);
    put_u32(out, static_cast<std::uint32_t>(f.phase_residency_sec.size()));
    for (const auto& [name, sec] : f.phase_residency_sec) {
      put_str(out, name);
      put_f64(out, sec);
    }
  }
  put_u64(out, static_cast<std::uint64_t>(d.queue_hwm_bytes));
  put_u64(out, static_cast<std::uint64_t>(d.bottleneck_drops));
  put_f64(out, d.utilization);
  put_u32(out, d.valid ? 1 : 0);
}

bool get_diagnostics(Reader& r, harness::PairDiagnostics& d) {
  for (auto& f : d.flow) {
    f.loss_rate = r.f64();
    f.retx_rate = r.f64();
    f.ptos_per_trial = r.f64();
    f.spurious_per_trial = r.f64();
    const std::uint32_t n = r.u32();
    if (!r.ok || n > 1024) return false;
    f.phase_residency_sec.resize(n);
    for (auto& [name, sec] : f.phase_residency_sec) {
      if (!get_str(r, name)) return false;
      sec = r.f64();
    }
  }
  d.queue_hwm_bytes = static_cast<Bytes>(r.u64());
  d.bottleneck_drops = static_cast<std::int64_t>(r.u64());
  d.utilization = r.f64();
  d.valid = r.u32() != 0;
  return r.ok;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // best effort; load/store fail soft
}

std::string ResultCache::entry_path(const std::string& fingerprint) const {
  return dir_ + "/" + fingerprint + ".qbr";
}

std::optional<harness::PairResult> ResultCache::load(
    const std::string& fingerprint) {
  std::ifstream in(entry_path(fingerprint), std::ios::binary);
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  Reader r{buf};
  harness::PairResult pr;
  const bool parsed = [&] {
    if (r.u32() != kMagic) return false;
    if (r.u32() != kSchemaVersion) return false;
    if (!get_clouds(r, pr.points_a)) return false;
    if (!get_clouds(r, pr.points_b)) return false;
    pr.tput_a_mbps = r.f64();
    pr.tput_b_mbps = r.f64();
    pr.share_a = r.f64();
    pr.share_b = r.f64();
    if (!get_diagnostics(r, pr.diagnostics)) return false;
    return r.ok && r.pos == buf.size();
  }();
  if (!parsed) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return pr;
}

bool ResultCache::store(const std::string& fingerprint,
                        const harness::PairResult& result) {
  if (!result.trials.empty()) return false;  // raw traces: not cacheable
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kSchemaVersion);
  put_clouds(out, result.points_a);
  put_clouds(out, result.points_b);
  put_f64(out, result.tput_a_mbps);
  put_f64(out, result.tput_b_mbps);
  put_f64(out, result.share_a);
  put_f64(out, result.share_b);
  put_diagnostics(out, result.diagnostics);

  // Write-then-rename so readers never observe a half-written entry.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = entry_path(fingerprint) + ".tmp." + tid.str();
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    if (!f) return false;
  }
  std::error_code ec;
  fs::rename(tmp, entry_path(fingerprint), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  ++stores_;
  return true;
}

std::string ResultCache::default_dir() {
  if (const char* dir = std::getenv("QB_CACHE_DIR"); dir && dir[0] != '\0') {
    return dir;
  }
  return "bench_out/cache";
}

ResultCache* ResultCache::default_cache() {
  const char* off = std::getenv("QB_NO_CACHE");
  if (off != nullptr && off[0] == '1') return nullptr;
  static ResultCache cache(default_dir());
  return &cache;
}

} // namespace quicbench::runner
