#pragma once
// Shared bench/sweep conventions (previously duplicated in
// bench/bench_common.h, promoted so examples/ and tests can use them):
// the paper-default network config, the QB_FAST smoke-mode switch and
// the bench_out/ output layout.
//
// Environment switches honoured across the runner subsystem:
//   QB_FAST=1      30 s runs x 2 trials instead of 120 s x 5
//   QB_PROGRESS=1  per-pair progress lines on stderr during sweeps
//   QB_NO_CACHE=1  disable the persistent result cache entirely
//   QB_CACHE_DIR   cache directory (default bench_out/cache)
//   QB_THREADS     worker count for sweeps (default: hardware)
//
// Observability switches (QB_QLOG_DIR, QB_PROFILE, QB_INVARIANTS,
// QB_ATTRIB, QB_FLIGHT_MS) live on obs::RunOptions (obs/run_options.h) —
// the one switchboard for observer opt-ins/opt-outs. qlog_dir() and
// profile_enabled() below are thin shims over RunOptions::current() kept
// for call-site convenience.

#include <string>

#include "harness/experiment.h"

namespace quicbench::runner {

bool fast_mode();         // QB_FAST=1
bool progress_enabled();  // QB_PROGRESS=1
int env_threads();        // QB_THREADS, 0 when unset/invalid
std::string qlog_dir();   // RunOptions::current().qlog_dir
bool profile_enabled();   // RunOptions::current().profile

// The paper's default network (§4: representative plots use 10 ms RTT,
// 20 Mbps; fairness experiments use 50 ms RTT). Paper-fidelity duration
// and trial count (120 s x 5) unless fast_mode().
harness::ExperimentConfig default_config(double buffer_bdp,
                                         Rate bw = rate::mbps(20),
                                         Time rtt = time::ms(10));

std::string out_dir();  // ./bench_out, created on first call
std::string csv_path(const std::string& bench_name);

} // namespace quicbench::runner
