#include "runner/fingerprint.h"

namespace quicbench::runner {

namespace {

void hash_sender_profile(StableHasher& h,
                         const transport::SenderProfile& s) {
  h.str("sender");
  h.i64(s.mss);
  h.i64(s.header_overhead);
  h.i64(s.ack_packet_size);
  h.i64(s.initial_cwnd_packets);
  h.i64(s.min_cwnd_packets);
  h.b(s.pace_window_ccas);
  h.f64(s.window_pacing_factor);
  h.i64(s.pacing_burst_packets);
  h.i64(static_cast<std::int64_t>(s.loss_detection));
  h.i64(s.packet_reorder_threshold);
  h.f64(s.time_reorder_fraction);
  h.i64(static_cast<std::int64_t>(s.time_threshold_base));
  h.b(s.adapt_reorder_threshold);
  h.i64(s.max_packet_reorder_threshold);
  h.f64(s.rack_reo_wnd_fraction);
  h.i64(s.rack_max_reo_wnd_mult);
  h.f64(s.tlp_srtt_factor);
  h.i64(s.max_ack_delay_assumed);
  h.i64(s.persistent_congestion_ptos);
  h.i64(s.flow_control_window);
  h.i64(s.egress_jitter);
  h.b(s.egress_reorder);
  h.i64(s.send_quantum);
}

void hash_receiver_profile(StableHasher& h,
                           const transport::ReceiverProfile& r) {
  h.str("receiver");
  h.i64(r.ack_every_n);
  h.i64(r.max_ack_delay);
  h.b(r.ack_on_gap);
}

void hash_cubic(StableHasher& h, const cca::CubicConfig& c) {
  h.str("cubic");
  h.i64(c.mss);
  h.i64(c.initial_cwnd_packets);
  h.i64(c.min_cwnd_packets);
  h.f64(c.c);
  h.f64(c.beta);
  h.b(c.fast_convergence);
  h.b(c.tcp_friendly);
  h.i64(c.emulated_flows);
  h.b(c.hystart);
  h.b(c.classic_hystart);
  h.b(c.hystart_ack_train);
  h.b(c.spurious_loss_rollback);
}

void hash_bbr(StableHasher& h, const cca::BbrConfig& c) {
  h.str("bbr");
  h.i64(c.mss);
  h.i64(c.initial_cwnd_packets);
  h.i64(c.min_cwnd_packets);
  h.f64(c.cwnd_gain);
  h.f64(c.pacing_rate_scale);
  h.f64(c.startup_gain);
  h.f64(c.drain_gain);
  h.i64(c.probe_rtt_interval);
  h.i64(c.probe_rtt_duration);
  h.i64(c.min_rtt_window);
  h.i64(c.btlbw_window_rounds);
}

void hash_bbr2(StableHasher& h, const cca::Bbr2Config& c) {
  h.str("bbr2");
  h.i64(c.mss);
  h.i64(c.initial_cwnd_packets);
  h.i64(c.min_cwnd_packets);
  h.f64(c.startup_pacing_gain);
  h.f64(c.startup_cwnd_gain);
  h.f64(c.drain_pacing_gain);
  h.f64(c.cwnd_gain);
  h.f64(c.probe_up_pacing_gain);
  h.f64(c.probe_down_pacing_gain);
  h.f64(c.pacing_rate_scale);
  h.f64(c.beta);
  h.f64(c.loss_thresh);
  h.f64(c.inflight_headroom);
  h.i64(c.bw_probe_wait);
  h.i64(c.bw_filter_window_cycles);
  h.i64(c.probe_rtt_interval);
  h.i64(c.probe_rtt_duration);
  h.f64(c.probe_rtt_cwnd_gain);
  h.i64(c.full_bw_rounds);
  h.i64(c.startup_loss_rounds);
}

void hash_reno(StableHasher& h, const cca::RenoConfig& c) {
  h.str("reno");
  h.i64(c.mss);
  h.i64(c.initial_cwnd_packets);
  h.i64(c.min_cwnd_packets);
  h.f64(c.beta);
  h.f64(c.ai_scale);
}

void hash_schema(StableHasher& h) {
  h.str("qb");
  h.u64(kSchemaVersion);
}

void hash_network_config(StableHasher& h, const harness::NetworkConfig& net) {
  h.f64(net.bandwidth);
  h.i64(net.base_rtt);
  h.f64(net.buffer_bdp);
  h.i64(net.base_jitter);
  h.i64(net.path_jitter);
  h.b(net.jitter_reorder);
  h.f64(net.cross_traffic_rate);
  h.i64(net.cross_on);
  h.i64(net.cross_off);
  h.u64(net.trace_opportunities.size());
  for (const Time t : net.trace_opportunities) h.i64(t);
  h.i64(net.trace_period);
  h.str("impairment");
  h.f64(net.impairment.loss_rate);
  h.f64(net.impairment.ge_loss_good);
  h.f64(net.impairment.ge_loss_bad);
  h.f64(net.impairment.ge_p_good_to_bad);
  h.f64(net.impairment.ge_p_bad_to_good);
  h.f64(net.impairment.reorder_rate);
  h.i64(net.impairment.reorder_gap);
  h.i64(net.impairment.reorder_flush);
  h.f64(net.impairment.duplicate_rate);
  h.i64(net.impairment.rtt_step_at);
  h.i64(net.impairment.rtt_step_delta);
  h.f64(net.impairment.ack_loss_rate);
}

} // namespace

void hash_implementation(StableHasher& h,
                         const stacks::Implementation& impl) {
  h.str("impl");
  h.str(impl.stack);
  h.i64(static_cast<std::int64_t>(impl.cca));
  h.str(impl.display);
  h.b(impl.is_reference);
  hash_sender_profile(h, impl.profile.sender);
  hash_receiver_profile(h, impl.profile.receiver);
  // All CCA configs are hashed even though only impl.cca's is
  // active: cheaper than special-casing and safe against future reuse.
  hash_cubic(h, impl.cubic);
  hash_bbr(h, impl.bbr);
  hash_bbr2(h, impl.bbr2);
  hash_reno(h, impl.reno);
}

void hash_experiment_config(StableHasher& h,
                            const harness::ExperimentConfig& cfg) {
  h.str("experiment");
  hash_network_config(h, cfg.net);
  h.i64(cfg.duration);
  h.i64(cfg.trials);
  h.u64(cfg.seed);
  h.f64(cfg.sampling.truncate_fraction);
  h.i64(cfg.sampling.rtts_per_sample);
  h.i64(cfg.start_spread);
  h.i64(cfg.flow_b_start);
  h.b(cfg.record_cwnd);
}

void hash_scenario_config(StableHasher& h,
                          const harness::ScenarioConfig& cfg) {
  h.str("scenario");
  hash_network_config(h, cfg.net);
  h.i64(cfg.duration);
  h.i64(cfg.trials);
  h.u64(cfg.seed);
  h.f64(cfg.sampling.truncate_fraction);
  h.i64(cfg.sampling.rtts_per_sample);
  h.b(cfg.record_cwnd);
  h.u64(cfg.flows.size());
  for (const harness::FlowSpec& f : cfg.flows) {
    h.str("flow");
    hash_implementation(h, f.impl);
    h.i64(static_cast<std::int64_t>(f.role));
    h.i64(f.start_at);
    h.i64(f.start_spread);
    h.f64(f.arrival_rate);
    h.i64(f.flow_size);
    h.b(f.sample_size);
  }
  h.str("size_dist");
  h.f64(cfg.size_dist.shape);
  h.i64(cfg.size_dist.min_bytes);
  h.i64(cfg.size_dist.max_bytes);
  h.i64(cfg.fairness_window);
}

void hash_pe_config(StableHasher& h, const conformance::PeConfig& cfg) {
  h.str("pe");
  h.i64(cfg.max_k);
  h.i64(cfg.kmeans.restarts);
  h.i64(cfg.kmeans.max_iters);
  h.b(cfg.normalize);
  h.u64(cfg.seed);
  h.f64(cfg.min_cluster_share);
  h.b(cfg.per_trial_clustering);
  h.f64(cfg.trial_quorum);
  h.f64(cfg.min_iou_drop);
}

std::string fingerprint(const stacks::Implementation& impl,
                        const harness::ExperimentConfig& cfg,
                        const conformance::PeConfig& pe_cfg) {
  StableHasher h;
  hash_schema(h);
  hash_implementation(h, impl);
  hash_experiment_config(h, cfg);
  hash_pe_config(h, pe_cfg);
  return h.hex();
}

std::string pair_fingerprint(const stacks::Implementation& a,
                             const stacks::Implementation& b,
                             const harness::ExperimentConfig& cfg) {
  StableHasher h;
  hash_schema(h);
  h.str("pair");
  hash_implementation(h, a);
  hash_implementation(h, b);
  hash_experiment_config(h, cfg);
  return h.hex();
}

std::string conformance_fingerprint(const stacks::Implementation& test,
                                    const stacks::Implementation& ref,
                                    const harness::ExperimentConfig& cfg,
                                    const conformance::PeConfig& pe_cfg) {
  StableHasher h;
  hash_schema(h);
  h.str("conformance");
  hash_implementation(h, test);
  hash_implementation(h, ref);
  hash_experiment_config(h, cfg);
  hash_pe_config(h, pe_cfg);
  return h.hex();
}

std::string scenario_fingerprint(const harness::ScenarioConfig& cfg) {
  StableHasher h;
  hash_schema(h);
  hash_scenario_config(h, cfg);
  return h.hex();
}

std::string scenario_conformance_fingerprint(
    const harness::ScenarioConfig& test_cfg,
    const harness::ScenarioConfig& ref_cfg,
    const conformance::PeConfig& pe_cfg) {
  StableHasher h;
  hash_schema(h);
  h.str("scenario_conformance");
  hash_scenario_config(h, test_cfg);
  hash_scenario_config(h, ref_cfg);
  hash_pe_config(h, pe_cfg);
  return h.hex();
}

} // namespace quicbench::runner
