#include "runner/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace quicbench::runner {

void parallel_for(int n, const std::function<void(int)>& fn, int threads) {
  if (n <= 0) return;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned requested = threads > 0 ? static_cast<unsigned>(threads) : hw;
  const int workers = static_cast<int>(
      std::min<unsigned>(requested, static_cast<unsigned>(n)));
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

} // namespace quicbench::runner
