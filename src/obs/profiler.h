#pragma once
// Wall-clock profiler emitting the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. The sweep
// runner records one complete ("ph":"X") span per trial, cache lookup and
// cell evaluation, keyed by worker thread, so a run's schedule — stragglers,
// cache stalls, idle tails — is visible on a timeline.
//
// Thread-safe: spans are recorded under a mutex (a handful of records per
// trial, so contention is irrelevant next to the seconds-long trials).

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace quicbench::obs {

class TraceProfiler {
 public:
  explicit TraceProfiler(std::string process_name);
  ~TraceProfiler();

  // Microseconds since an arbitrary steady epoch; pair with
  // record_complete's ts/dur.
  std::int64_t now_us() const;

  // One complete span: [ts_us, ts_us + dur_us) on lane `tid`.
  void record_complete(std::string_view name, std::string_view category,
                       int tid, std::int64_t ts_us, std::int64_t dur_us);

  std::size_t span_count() const;

  // Serialise {"traceEvents": [...]}; false on I/O failure, with the
  // failing path reported through `error` when provided.
  bool write_file(const std::string& path, std::string* error = nullptr) const;
  std::string to_json_string() const;

  // Abnormal-exit safety net: register this profiler to be serialised to
  // `path` by an atexit/terminate handler, so a crashed or aborted run
  // (invariant violation, uncaught exception, plain exit() mid-sweep)
  // still leaves a valid partial profile on disk. Disarm after a
  // successful write_file — or let the destructor do it. flush_armed()
  // is the handler body, exposed for tests; it writes every armed
  // profiler once and disarms them.
  void arm_exit_flush(const std::string& path);
  void disarm_exit_flush();
  static void flush_armed();

 private:
  struct Span {
    std::string name;
    std::string category;
    int tid = 0;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
  };

  std::string process_name_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

} // namespace quicbench::obs
