#pragma once
// Per-flow time-series flight recorder.
//
// A FlowSampler turns one flow's run into a periodic time series of
// cwnd, bytes-in-flight, smoothed RTT, pacing rate, delivery rate and
// CCA phase — the signals where pacing burstiness, BBR phase dynamics
// and churn response actually live, and which the end-of-run aggregates
// throw away.
//
// Passivity is the design constraint: the sampler must never perturb the
// simulation (the on/off runs have to be bit-identical, including event
// counts), so it schedules nothing. Instead the harness piggybacks on
// the receiver's delivery callback: each delivery accumulates bytes via
// on_delivery(), and when due(now) says the sampling interval has
// elapsed the harness reads the sender's current state and calls
// record(). Sample spacing is therefore "at least `interval`, at the
// next delivery" — exact grid alignment is not promised (nor needed;
// intervals are ~100 ms against sub-ms packet spacing).
//
// Samples land in a preallocated ring buffer keeping the last `capacity`
// entries (total_samples() counts everything observed); phase strings
// are interned so the steady state allocates nothing. Export as CSV or
// as a qlog document of `metrics_updated`-style events (qvis-compatible,
// same shape QlogWriter uses).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace quicbench::obs {

class FlowSampler {
 public:
  // interval <= 0 disables: due() is never true.
  explicit FlowSampler(Time interval, std::size_t capacity = 4096);

  struct Sample {
    Time t = 0;
    Bytes cwnd = 0;
    Bytes bytes_in_flight = 0;
    Time srtt = 0;
    double pacing_mbps = -1.0;    // -1 = CCA exposes no pacing rate
    double delivery_mbps = -1.0;  // -1 = no delivery window yet
    int phase = -1;               // index into phase_names(), -1 = unknown
  };

  Time interval() const { return interval_; }

  // Bytes delivered to the receiver; feeds the delivery-rate estimate.
  void on_delivery(Time /*now*/, Bytes payload) { delivered_ += payload; }

  // True when the next periodic sample is due at `now`.
  bool due(Time now) const { return interval_ > 0 && now >= next_; }

  // Record one sample (caller checked due()). `pacing` is the CCA's
  // pacing_rate(), `phase` its current phase name.
  void record(Time now, Bytes cwnd, Bytes bytes_in_flight, Time srtt,
              std::optional<Rate> pacing, std::string_view phase);

  std::size_t total_samples() const { return total_; }
  // Retained samples, oldest first (at most `capacity`).
  std::vector<Sample> samples() const;
  const std::vector<std::string>& phase_names() const { return phases_; }
  std::string_view phase_name(int idx) const {
    return idx >= 0 && static_cast<std::size_t>(idx) < phases_.size()
               ? std::string_view(phases_[static_cast<std::size_t>(idx)])
               : std::string_view("");
  }

  // t_ms,cwnd_bytes,bytes_in_flight,srtt_ms,pacing_mbps,delivery_mbps,phase
  bool write_csv(const std::string& path, std::string* error = nullptr) const;
  // qlog document of metrics_updated events (one per sample).
  bool write_qlog(const std::string& path, const std::string& title,
                  const std::string& cca_name,
                  std::string* error = nullptr) const;

 private:
  int intern(std::string_view phase);

  Time interval_;
  Time next_ = 0;     // earliest time the next sample is due
  Time last_t_ = 0;   // previous sample time (delivery-rate window start)
  Bytes delivered_ = 0;
  std::vector<Sample> ring_;
  std::size_t total_ = 0;
  std::vector<std::string> phases_;
};

} // namespace quicbench::obs
