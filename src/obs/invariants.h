#pragma once
// Runtime invariant checker: a passive flight-recorder observer that
// turns every trial — every existing sweep and every new impairment
// scenario — into a differential correctness probe. It hangs off the
// sender's observability hooks (packet sent/acked/lost/spurious, RTT
// samples, cwnd updates) and asserts the transport's accounting
// identities hold at every step:
//
//   * packet conservation: every packet is in exactly one of
//     {outstanding, acked, lost}, transitions are legal (sent -> acked,
//     sent -> lost, lost -> acked-as-spurious), and the implied
//     bytes-in-flight matches the sender's own counter exactly;
//   * cwnd bound: a non-probe send never leaves bytes_in_flight above
//     cwnd (probes and retransmissions may — RFC 9002 PTO probes ignore
//     the window);
//   * clocks: hook timestamps are non-negative and monotone;
//   * RTT samples: positive, finite, and never below the configured
//     propagation floor;
//   * stats consistency: the sender's SenderStats counters agree with
//     the callback-observed event counts (retransmissions, spurious
//     losses, PTOs, and losses up to persistent-congestion marking).
//
// The checker only reads; with or without it a trial is bit-identical.
// Enablement is process-wide via QB_INVARIANTS (default ON; set
// QB_INVARIANTS=0 to opt out, e.g. for perf microbenchmarks). The
// harness runs one checker per flow in every trial and throws
// std::logic_error at trial end when any invariant was violated, so
// every ctest target exercising the harness gets checking for free.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace quicbench::transport {
struct SenderStats;
}  // namespace quicbench::transport

namespace quicbench::obs {

// Shorthand for RunOptions::current().invariants (env QB_INVARIANTS
// unset or != "0" => on; override with RunOptions::set_current, see
// obs/run_options.h).
bool invariants_enabled();

class InvariantChecker {
 public:
  // `label` prefixes violation messages ("flow0" etc.). `min_rtt_floor`
  // is the smallest plausible RTT sample (the path's propagation RTT);
  // 0 disables the floor check.
  explicit InvariantChecker(std::string label, Time min_rtt_floor = 0)
      : label_(std::move(label)), min_rtt_floor_(min_rtt_floor) {}

  // --- hook feeds (call from the sender's observability callbacks) ---
  // `bytes_in_flight` and `cwnd` are the sender's values after the send.
  void on_packet_sent(Time now, std::uint64_t pn, Bytes size, bool is_retx,
                      Bytes bytes_in_flight, Bytes cwnd);
  void on_packet_acked(Time now, std::uint64_t pn, Bytes size,
                       Bytes bytes_in_flight);
  void on_packet_lost(Time now, std::uint64_t pn);
  void on_spurious_loss(Time now, std::uint64_t pn);
  void on_rtt_sample(Time now, Time rtt);
  void on_cwnd_update(Time now, Bytes cwnd, Bytes bytes_in_flight);
  void on_pto(Time now, int pto_count);

  // End-of-trial reconciliation against the sender's own counters and
  // final in-flight value.
  void final_check(const transport::SenderStats& stats,
                   Bytes bytes_in_flight);

  // Generic conservation check for network elements:
  //   packets_in == forwarded + dropped + resident.
  // `what` names the element in the violation message.
  void check_element_conservation(const std::string& what,
                                  std::int64_t packets_in,
                                  std::int64_t forwarded,
                                  std::int64_t dropped,
                                  std::int64_t resident);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  // Throws std::logic_error listing the violations (no-op when ok()).
  void throw_if_violated() const;

  // Observed event tallies (test hooks).
  std::int64_t sent() const { return n_sent_; }
  std::int64_t acked() const { return n_acked_; }
  std::int64_t lost() const { return n_lost_; }
  std::int64_t spurious() const { return n_spurious_; }

 private:
  enum class PnState : std::uint8_t {
    kUnknown = 0,
    kOutstanding,
    kAcked,
    kLost
  };

  PnState state(std::uint64_t pn) const;
  void set_state(std::uint64_t pn, PnState s);
  void note_clock(Time now);
  void violate(const std::string& msg);

  std::string label_;
  Time min_rtt_floor_ = 0;
  Time last_now_ = 0;

  // Dense per-pn state/size, indexed by pn (senders number from 0).
  std::vector<PnState> pn_state_;
  std::vector<std::uint32_t> pn_size_;

  Bytes in_flight_ = 0;  // implied by the event stream
  std::int64_t n_sent_ = 0;
  std::int64_t n_acked_ = 0;  // direct acks (spurious tracked separately)
  std::int64_t n_lost_ = 0;
  std::int64_t n_spurious_ = 0;
  std::int64_t n_retx_ = 0;
  std::int64_t n_ptos_ = 0;

  std::vector<std::string> violations_;
  static constexpr std::size_t kMaxViolations = 32;
};

} // namespace quicbench::obs
