#include "obs/metrics.h"

#include <cmath>

namespace quicbench::obs {

void Histogram::observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
    buckets_.assign(kBuckets, 0);
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  int b = 0;
  if (v >= 1.0) {
    b = std::min(kBuckets - 1, std::ilogb(v) + 1);
  }
  ++buckets_[static_cast<std::size_t>(b)];
}

MetricsRegistry& MetricsRegistry::noop() {
  static MetricsRegistry reg{NoopTag{}};
  return reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (!enabled_) {
    // Scratch instrument: absorbs writes, never read. thread_local because
    // the noop registry is the one instance shared across sweep workers.
    static thread_local Counter scratch;
    return scratch;
  }
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second;
  }
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (!enabled_) {
    static thread_local Gauge scratch;
    return scratch;
  }
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second;
  }
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (!enabled_) {
    static thread_local Histogram scratch;
    return scratch;
  }
  if (const auto it = histograms_.find(name); it != histograms_.end()) {
    return it->second;
  }
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

void MetricsRegistry::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.kv(name, c.value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).begin_object();
    w.kv("value", g.value());
    w.kv("min", g.min());
    w.kv("max", g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    // Sparse bucket dump: [bucket_index, count] pairs, upper bound of
    // bucket i is 2^i (bucket 0 is [0,1)).
    w.key("log2_buckets").begin_array();
    const auto& buckets = h.buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::int64_t>(i));
      w.value(buckets[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::to_json_string() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

} // namespace quicbench::obs
