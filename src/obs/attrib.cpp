#include "obs/attrib.h"

#include "obs/run_options.h"

namespace quicbench::obs::attrib {

namespace {

constexpr std::string_view kScopeNames[kScopeCount] = {
    "trial",           // kTrial
    "engine.run",      // kEngineRun
    "engine.wheel",    // kEngineWheel
    "engine.heap",     // kEngineHeap
    "engine.schedule", // kEngineSchedule
    "sender.ack",       // kSenderAck
    "sender.ack_range", // kSenderAckRange
    "sender.ack_merge", // kSenderAckMerge
    "sender.loss",     // kSenderLoss
    "sender.compact",  // kSenderCompact
    "sender.send",     // kSenderSend
    "sender.pacer",    // kSenderPacer
    "cca.on_ack",      // kCcaOnAck
    "cca.on_loss",     // kCcaOnLoss
    "cca.on_sent",     // kCcaOnSent
    "link",            // kLink
    "receiver",        // kReceiver
    "impairment",      // kImpairment
    "harness.collect", // kHarnessCollect
    "eval.kmeans",     // kEvalKmeans
    "eval.pe",         // kEvalPe
    "eval.kmeans_assign", // kEvalKmeansAssign
    "eval.contain",    // kEvalContain
};

} // namespace

std::string_view scope_name(Scope s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kScopeCount ? kScopeNames[i] : std::string_view("?");
}

Scope scope_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    if (kScopeNames[i] == name) return static_cast<Scope>(i);
  }
  return Scope::kCount;
}

Report& Report::operator+=(const Report& other) {
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    rows[i].calls += other.rows[i].calls;
    rows[i].cycles += other.rows[i].cycles;
    rows[i].child_cycles += other.rows[i].child_cycles;
  }
  return *this;
}

Report Report::operator-(const Report& other) const {
  auto sat = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : std::uint64_t{0};
  };
  Report out;
  for (std::size_t i = 0; i < kScopeCount; ++i) {
    out.rows[i].calls = sat(rows[i].calls, other.rows[i].calls);
    out.rows[i].cycles = sat(rows[i].cycles, other.rows[i].cycles);
    out.rows[i].child_cycles =
        sat(rows[i].child_cycles, other.rows[i].child_cycles);
  }
  return out;
}

double Report::coverage() const {
  const Row& root = row(Scope::kTrial);
  if (root.cycles == 0) return 0.0;
  return 1.0 - static_cast<double>(root.exclusive_cycles()) /
                   static_cast<double>(root.cycles);
}

bool Report::empty() const {
  for (const Row& r : rows) {
    if (r.calls != 0 || r.cycles != 0) return false;
  }
  return true;
}

namespace detail {

Table::Table() : enabled(RunOptions::current().attrib) {}

Table& table() {
  thread_local Table t;
  return t;
}

} // namespace detail

void reset_thread() {
  detail::Table& t = detail::table();
  t.enabled = RunOptions::current().attrib;
  t.current = Scope::kCount;
  t.rows = {};
}

Report thread_report() {
  Report r;
  r.rows = detail::table().rows;
  return r;
}

} // namespace quicbench::obs::attrib
