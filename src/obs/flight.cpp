#include "obs/flight.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/json.h"

namespace quicbench::obs {

FlowSampler::FlowSampler(Time interval, std::size_t capacity)
    : interval_(interval) {
  if (capacity == 0) capacity = 1;
  if (interval_ > 0) ring_.resize(capacity);
}

void FlowSampler::record(Time now, Bytes cwnd, Bytes bytes_in_flight,
                         Time srtt, std::optional<Rate> pacing,
                         std::string_view phase) {
  if (interval_ <= 0) return;
  Sample s;
  s.t = now;
  s.cwnd = cwnd;
  s.bytes_in_flight = bytes_in_flight;
  s.srtt = srtt;
  s.pacing_mbps = pacing.has_value() ? rate::to_mbps(*pacing) : -1.0;
  // Delivery rate over the window since the previous sample (or since
  // t=0 for the first one): bytes fed by on_delivery() before this
  // record() call.
  const Time window = now - last_t_;
  s.delivery_mbps = window > 0 ? rate::to_mbps(rate_of(delivered_, window))
                               : -1.0;
  s.phase = intern(phase);
  ring_[total_ % ring_.size()] = s;
  ++total_;
  delivered_ = 0;
  last_t_ = now;
  // Grid-aligned advance: skip whole intervals with no delivery rather
  // than bunching catch-up samples.
  next_ = now + interval_ - now % interval_;
}

int FlowSampler::intern(std::string_view phase) {
  if (phase.empty()) return -1;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i] == phase) return static_cast<int>(i);
  }
  phases_.emplace_back(phase);
  return static_cast<int>(phases_.size()) - 1;
}

std::vector<FlowSampler::Sample> FlowSampler::samples() const {
  std::vector<Sample> out;
  if (ring_.empty() || total_ == 0) return out;
  const std::size_t n = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(n);
  const std::size_t start = total_ < ring_.size() ? 0 : total_ % ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

bool FlowSampler::write_csv(const std::string& path,
                            std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "flight: cannot open " + path + " for writing (" +
               std::strerror(errno) + ")";
    }
    return false;
  }
  out << "t_ms,cwnd_bytes,bytes_in_flight,srtt_ms,pacing_mbps,"
         "delivery_mbps,phase\n";
  char buf[160];
  for (const Sample& s : samples()) {
    std::snprintf(buf, sizeof(buf), "%.6f,%lld,%lld,%.6f,%.6f,%.6f,",
                  time::to_ms(s.t), static_cast<long long>(s.cwnd),
                  static_cast<long long>(s.bytes_in_flight),
                  time::to_ms(s.srtt), s.pacing_mbps, s.delivery_mbps);
    out << buf << phase_name(s.phase) << '\n';
  }
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "flight: short write to " + path;
    return false;
  }
  return true;
}

bool FlowSampler::write_qlog(const std::string& path, const std::string& title,
                             const std::string& cca_name,
                             std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "flight: cannot open " + path + " for writing (" +
               std::strerror(errno) + ")";
    }
    return false;
  }
  // Same document shape as trace::QlogWriter, so qvis and the existing
  // validation tooling accept flight-recorder output unchanged.
  out << "{\"qlog_version\":\"0.3\",\"title\":\"" << json_escape(title)
      << "\",\"traces\":[{\"common_fields\":{\"time_format\":"
         "\"relative\",\"reference_time\":0},\"vantage_point\":{\"type\":"
         "\"server\"},\"configuration\":{\"congestion_control\":\""
      << json_escape(cca_name) << "\"},\"events\":[";
  bool first = true;
  for (const Sample& s : samples()) {
    if (!first) out << ',';
    first = false;
    out << "[" << json_number(time::to_ms(s.t))
        << ",\"recovery\",\"metrics_updated\",{"
        << "\"congestion_window\":" << s.cwnd
        << ",\"bytes_in_flight\":" << s.bytes_in_flight
        << ",\"smoothed_rtt\":" << json_number(time::to_ms(s.srtt));
    if (s.pacing_mbps >= 0) {
      out << ",\"pacing_rate\":"
          << json_number(s.pacing_mbps * 1e6);  // bits/sec, per qlog spec
    }
    if (s.delivery_mbps >= 0) {
      out << ",\"delivery_rate\":" << json_number(s.delivery_mbps * 1e6);
    }
    if (s.phase >= 0) {
      out << ",\"congestion_state\":\"" << json_escape(phase_name(s.phase))
          << "\"";
    }
    out << "}]";
  }
  out << "]}]}";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "flight: short write to " + path;
    return false;
  }
  return true;
}

} // namespace quicbench::obs
