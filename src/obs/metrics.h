#pragma once
// Per-simulation metrics registry: named counters, gauges and histograms
// populated by the netsim links (queue high-watermark, drops by cause,
// utilization), the transport (PTO / spurious-loss timelines) and the
// CCAs (phase transitions). The flight-recorder companion to the qlog
// event stream: qlog answers "what happened when", the registry answers
// "how much of it happened".
//
// Cost model: instruments are looked up once (string hash + map insert)
// and then held by reference — `Counter&`/`Gauge&` handles stay valid for
// the registry's lifetime because std::map nodes never move. Uninstrumented
// runs use the shared `MetricsRegistry::noop()` registry, whose accessors
// hand back thread-local scratch instruments, so call sites stay
// unconditional and the disabled path costs one pointer compare.
//
// Registries are single-simulation objects: one trial populates one
// registry on one thread. The only instance shared across threads is the
// noop registry, which is why its scratch instruments are thread_local.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace quicbench::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

// Last-value gauge that also tracks the extremes seen.
class Gauge {
 public:
  void set(double v) {
    if (!seen_) {
      min_ = max_ = v;
      seen_ = true;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
    value_ = v;
  }
  bool seen() const { return seen_; }
  double value() const { return value_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  bool seen_ = false;
  double value_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Log2-bucketed histogram of non-negative samples: bucket i counts
// samples in [2^(i-1), 2^i) (bucket 0 is [0, 1)). Coarse but enough to
// see the shape of RTTs or queue depths without per-sample storage.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<std::int64_t> buckets_;  // sized lazily on first observe
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The shared disabled registry: accessors return thread-local scratch
  // instruments and to_json emits an empty document.
  static MetricsRegistry& noop();

  bool enabled() const { return enabled_; }

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Emit {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  // name-sorted keys (std::map order), so equal runs serialise equally.
  void to_json(JsonWriter& w) const;
  std::string to_json_string() const;

 private:
  struct NoopTag {};
  explicit MetricsRegistry(NoopTag) : enabled_(false) {}

  bool enabled_ = true;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

} // namespace quicbench::obs
