#include "obs/profiler.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <utility>

#include "util/json.h"

namespace quicbench::obs {

namespace {

// Armed-profiler registry for the abnormal-exit flush. Lives behind a
// function-local static so handler registration order cannot race static
// destruction of the registry itself; profilers must disarm before they
// are destroyed (the TraceProfiler destructor does).
struct ExitFlushRegistry {
  std::mutex mu;
  std::vector<std::pair<TraceProfiler*, std::string>> armed;
  std::terminate_handler previous_terminate = nullptr;
  bool handlers_installed = false;
};

ExitFlushRegistry& exit_registry() {
  static ExitFlushRegistry r;
  return r;
}

[[noreturn]] void flush_then_terminate() {
  TraceProfiler::flush_armed();
  std::terminate_handler prev = exit_registry().previous_terminate;
  if (prev != nullptr) prev();
  std::abort();
}

} // namespace

TraceProfiler::TraceProfiler(std::string process_name)
    : process_name_(std::move(process_name)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceProfiler::~TraceProfiler() { disarm_exit_flush(); }

void TraceProfiler::arm_exit_flush(const std::string& path) {
  ExitFlushRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [p, armed_path] : r.armed) {
    if (p == this) {
      armed_path = path;
      return;
    }
  }
  r.armed.emplace_back(this, path);
  if (!r.handlers_installed) {
    r.handlers_installed = true;
    std::atexit([] { TraceProfiler::flush_armed(); });
    r.previous_terminate = std::set_terminate(flush_then_terminate);
  }
}

void TraceProfiler::disarm_exit_flush() {
  ExitFlushRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::erase_if(r.armed, [this](const auto& e) { return e.first == this; });
}

void TraceProfiler::flush_armed() {
  ExitFlushRegistry& r = exit_registry();
  std::vector<std::pair<TraceProfiler*, std::string>> to_flush;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    to_flush.swap(r.armed);
  }
  for (const auto& [p, path] : to_flush) {
    p->write_file(path);  // best effort; nowhere to report at exit
  }
}

std::int64_t TraceProfiler::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceProfiler::record_complete(std::string_view name,
                                    std::string_view category, int tid,
                                    std::int64_t ts_us, std::int64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::string(name), std::string(category), tid, ts_us,
                        dur_us});
}

std::size_t TraceProfiler::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceProfiler::to_json_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter j;
  j.begin_object();
  j.kv("displayTimeUnit", "ms");
  j.key("traceEvents").begin_array();
  // Process-name metadata record so Perfetto labels the track group.
  j.begin_object();
  j.kv("name", "process_name");
  j.kv("ph", "M");
  j.kv("pid", 1);
  j.kv("tid", 0);
  j.key("args").begin_object();
  j.kv("name", process_name_);
  j.end_object();
  j.end_object();
  for (const Span& s : spans_) {
    j.begin_object();
    j.kv("name", s.name);
    j.kv("cat", s.category);
    j.kv("ph", "X");
    j.kv("pid", 1);
    j.kv("tid", s.tid);
    j.kv("ts", s.ts_us);
    j.kv("dur", s.dur_us);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

bool TraceProfiler::write_file(const std::string& path,
                               std::string* error) const {
  const std::string doc = to_json_string();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << doc;
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

} // namespace quicbench::obs
