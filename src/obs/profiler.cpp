#include "obs/profiler.h"

#include <chrono>
#include <fstream>

#include "util/json.h"

namespace quicbench::obs {

TraceProfiler::TraceProfiler(std::string process_name)
    : process_name_(std::move(process_name)),
      epoch_(std::chrono::steady_clock::now()) {}

std::int64_t TraceProfiler::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceProfiler::record_complete(std::string_view name,
                                    std::string_view category, int tid,
                                    std::int64_t ts_us, std::int64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{std::string(name), std::string(category), tid, ts_us,
                        dur_us});
}

std::size_t TraceProfiler::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string TraceProfiler::to_json_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter j;
  j.begin_object();
  j.kv("displayTimeUnit", "ms");
  j.key("traceEvents").begin_array();
  // Process-name metadata record so Perfetto labels the track group.
  j.begin_object();
  j.kv("name", "process_name");
  j.kv("ph", "M");
  j.kv("pid", 1);
  j.kv("tid", 0);
  j.key("args").begin_object();
  j.kv("name", process_name_);
  j.end_object();
  j.end_object();
  for (const Span& s : spans_) {
    j.begin_object();
    j.kv("name", s.name);
    j.kv("cat", s.category);
    j.kv("ph", "X");
    j.kv("pid", 1);
    j.kv("tid", s.tid);
    j.kv("ts", s.ts_us);
    j.kv("dur", s.dur_us);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

bool TraceProfiler::write_file(const std::string& path,
                               std::string* error) const {
  const std::string doc = to_json_string();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << doc;
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

} // namespace quicbench::obs
