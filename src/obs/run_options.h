#pragma once
// The one switchboard for observability opt-ins/opt-outs.
//
// Every runtime toggle for the passive observer layers — invariant
// checking, hot-path performance attribution, the per-flow flight
// recorder, qlog export, Chrome-trace profiling — is a field here, read
// once from the QB_* environment at first use. Code that needs a knob
// asks RunOptions::current(); code that wants to override one (e.g. a
// perf benchmark protecting its baseline from invariant-checker cost)
// builds a RunOptions and installs it with set_current() instead of
// calling setenv() behind the runtime's back.
//
// Environment mapping (all optional):
//   QB_INVARIANTS=0   disable the runtime invariant checker (default on)
//   QB_ATTRIB=0       disable perf attribution at runtime (default on;
//                     only meaningful in builds configured with
//                     -DQB_ATTRIB=ON, see obs/attrib.h)
//   QB_FLIGHT_MS=<ms> flight-recorder sampling interval in milliseconds
//                     (default 100; <= 0 disables the sampler)
//   QB_QLOG_DIR=<dir> emit per-flow qlog + flight-recorder files for
//                     every simulated trial under this directory
//   QB_PROFILE=1      write a Chrome-trace-event profile of each sweep
//
// set_current() swaps the whole struct and is NOT synchronized: install
// overrides before spawning sweep workers (the bench mains do this in
// main() before any trial runs).

#include <string>

namespace quicbench::obs {

struct RunOptions {
  bool invariants = true;
  bool attrib = true;
  double flight_interval_ms = 100.0;
  std::string qlog_dir;  // empty = no qlog / flight-recorder export
  bool profile = false;

  // One struct populated from the QB_* environment (defaults above when
  // a variable is unset).
  static RunOptions from_env();

  // The active options. First call initializes from from_env().
  static const RunOptions& current();
  static void set_current(const RunOptions& opts);
};

} // namespace quicbench::obs
