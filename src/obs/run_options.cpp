#include "obs/run_options.h"

#include <cstdlib>

namespace quicbench::obs {

namespace {

// "Off" means an explicit leading '0'; unset or anything else is on.
// Matches the historical QB_INVARIANTS contract.
bool env_on(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr) return dflt;
  return v[0] != '0';
}

RunOptions& mutable_current() {
  static RunOptions opts = RunOptions::from_env();
  return opts;
}

} // namespace

RunOptions RunOptions::from_env() {
  RunOptions o;
  o.invariants = env_on("QB_INVARIANTS", true);
  o.attrib = env_on("QB_ATTRIB", true);
  if (const char* v = std::getenv("QB_FLIGHT_MS")) {
    o.flight_interval_ms = std::atof(v);
  }
  if (const char* v = std::getenv("QB_QLOG_DIR")) {
    o.qlog_dir = v;
  }
  const char* p = std::getenv("QB_PROFILE");
  o.profile = p != nullptr && p[0] == '1';
  return o;
}

const RunOptions& RunOptions::current() { return mutable_current(); }

void RunOptions::set_current(const RunOptions& opts) {
  mutable_current() = opts;
}

} // namespace quicbench::obs
