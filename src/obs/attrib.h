#pragma once
// Hot-path performance attribution: where do the cycles of a trial go?
//
// A fixed enum of named subsystem scopes (timer-wheel dispatch, ACK
// scoreboard pass, CCA on_ack, pacer, eval kernels, ...) is timed with
// thread-local, zero-allocation cycle-and-call accumulators. A scope is
// opened with the RAII ScopeTimer (usually via the QB_ATTRIB_SCOPE
// macro); on close it adds the elapsed timestamp delta to its own
// inclusive total and to its dynamic parent's child total, so
//
//   exclusive(scope) = cycles(scope) - child_cycles(scope)
//
// partitions the root's inclusive time: every cycle is attributed to
// exactly one scope, and coverage() = 1 - root_exclusive/root_inclusive
// says how much of the trial the instrumentation explains.
//
// Two gates:
//  * Compile time: the QB_ATTRIB_SCOPE macro expands to nothing unless
//    the build was configured with -DQB_ATTRIB=ON (which defines
//    QB_ATTRIB_ENABLED). Default builds carry zero instrumentation in
//    the hot path — the bit-identity and perf baselines are untouched.
//    The machinery itself (ScopeTimer, Report) always compiles so tests
//    can exercise it in any build.
//  * Run time: RunOptions::current().attrib (env QB_ATTRIB, default on)
//    is latched into each thread's table; when off, ScopeTimer is a
//    single branch. reset_thread() re-reads the gate.
//
// Timestamps are raw TSC ticks on x86-64 (__rdtsc — monotone and
// constant-rate on every machine we target) and steady_clock nanoseconds
// elsewhere; convert to seconds by calibrating root cycles against a
// wall-clock measurement of the same region (bench_attrib and the sweep
// manifests do this per trial).
//
// Accumulators are per-thread: snapshot with thread_report() before and
// after a region run on this thread and subtract (Report::operator-) to
// get that region's delta. A whole trial runs on one worker thread, so
// per-trial attribution needs no cross-thread merge; merge per-task
// deltas with operator+= under the task's lock.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace quicbench::obs::attrib {

enum class Scope : std::uint8_t {
  kTrial = 0,       // root: one whole harness trial (wrapped by the runner)
  kEngineRun,       // Simulator::run_until loop: event selection machinery
  kEngineWheel,     // timer-wheel dispatch, inclusive of fired callbacks
  kEngineHeap,      // fallback-heap dispatch, inclusive of fired callbacks
  kEngineSchedule,  // Simulator::schedule/reschedule inserts
  kSenderAck,       // SenderEndpoint::on_ack_frame scoreboard ACK pass
  kSenderAckRange,  // batched range ops over the SoA arrays (child of ack)
  kSenderAckMerge,  // step-2 straggler/spurious three-way merge (child)
  kSenderLoss,      // detect_losses time-threshold scan
  kSenderCompact,   // SentLog compaction
  kSenderSend,      // do_send_loop: packet build + egress + pacing rearm
  kSenderPacer,     // pacing_interval: rate lookup / window-pacing cache
  kCcaOnAck,        // CongestionController::on_ack
  kCcaOnLoss,       // CongestionController::on_loss
  kCcaOnSent,       // CongestionController::on_packet_sent
  kLink,            // Link enqueue + transmit/propagation completions
  kReceiver,        // ReceiverEndpoint::deliver (+ ACK build)
  kImpairment,      // ImpairmentStage::deliver
  kHarnessCollect,  // post-run series/fairness/telemetry collection
  kEvalKmeans,      // cluster::kmeans
  kEvalPe,          // conformance::build_pe
  kEvalKmeansAssign,  // Lloyd assignment step (vector distance kernels)
  kEvalContain,     // batched point-in-convex containment scans
  kCount
};

inline constexpr std::size_t kScopeCount =
    static_cast<std::size_t>(Scope::kCount);

// Stable dotted name ("engine.wheel", "cca.on_ack", ...) used in JSON
// output; scope_from_name is the inverse (Scope::kCount when unknown).
std::string_view scope_name(Scope s);
Scope scope_from_name(std::string_view name);

// True when this binary was configured with -DQB_ATTRIB=ON, i.e. the
// QB_ATTRIB_SCOPE instrumentation sites are live.
constexpr bool compiled_in() {
#if defined(QB_ATTRIB_ENABLED)
  return true;
#else
  return false;
#endif
}

// "rdtsc" or "steady_clock" — which timestamp source read_timestamp uses.
constexpr std::string_view timer_kind() {
#if defined(__x86_64__) || defined(_M_X64)
  return "rdtsc";
#else
  return "steady_clock";
#endif
}

inline std::uint64_t read_timestamp() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct Report {
  struct Row {
    std::uint64_t calls = 0;
    std::uint64_t cycles = 0;        // inclusive
    std::uint64_t child_cycles = 0;  // spent inside nested scopes
    std::uint64_t exclusive_cycles() const {
      return cycles >= child_cycles ? cycles - child_cycles : 0;
    }
  };

  std::array<Row, kScopeCount> rows{};

  const Row& row(Scope s) const {
    return rows[static_cast<std::size_t>(s)];
  }

  Report& operator+=(const Report& other);
  // Counter delta (counters are monotone within a thread); saturates at 0.
  Report operator-(const Report& other) const;

  // Root (kTrial) inclusive cycles; 0 when no root scope was timed.
  std::uint64_t total_cycles() const { return row(Scope::kTrial).cycles; }
  // Fraction of root time spent inside some named child scope.
  double coverage() const;
  bool empty() const;
};

namespace detail {

struct Table {
  bool enabled;                  // latched runtime gate
  Scope current = Scope::kCount; // kCount = no scope open
  std::array<Report::Row, kScopeCount> rows{};
  Table();
};

Table& table();  // this thread's accumulators

} // namespace detail

// Runtime gate as latched by this thread's table (compile gate excluded:
// tests drive ScopeTimer directly in default builds).
inline bool enabled() { return detail::table().enabled; }

// Zero this thread's accumulators and re-latch the runtime gate from
// RunOptions::current().
void reset_thread();

// Snapshot of this thread's accumulators since the last reset_thread().
Report thread_report();

class ScopeTimer {
 public:
  explicit ScopeTimer(Scope s) : t_(detail::table()) {
    if (!t_.enabled) return;
    scope_ = s;
    parent_ = t_.current;
    t_.current = s;
    start_ = read_timestamp();
  }
  ~ScopeTimer() {
    if (scope_ == Scope::kCount) return;
    const std::uint64_t dt = read_timestamp() - start_;
    Report::Row& r = t_.rows[static_cast<std::size_t>(scope_)];
    ++r.calls;
    r.cycles += dt;
    if (parent_ != Scope::kCount) {
      t_.rows[static_cast<std::size_t>(parent_)].child_cycles += dt;
    }
    t_.current = parent_;
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  detail::Table& t_;
  Scope scope_ = Scope::kCount;  // kCount = constructed while disabled
  Scope parent_ = Scope::kCount;
  std::uint64_t start_ = 0;
};

} // namespace quicbench::obs::attrib

// Instrumentation-site macro: opens a scope for the rest of the
// enclosing block. Compiles away entirely unless -DQB_ATTRIB=ON.
#if defined(QB_ATTRIB_ENABLED)
#define QB_ATTRIB_CONCAT_INNER(a, b) a##b
#define QB_ATTRIB_CONCAT(a, b) QB_ATTRIB_CONCAT_INNER(a, b)
#define QB_ATTRIB_SCOPE(s)                              \
  ::quicbench::obs::attrib::ScopeTimer QB_ATTRIB_CONCAT( \
      qb_attrib_scope_, __LINE__)(::quicbench::obs::attrib::Scope::s)
#else
#define QB_ATTRIB_SCOPE(s) ((void)0)
#endif
