#include "obs/invariants.h"

#include <sstream>
#include <stdexcept>

#include "obs/run_options.h"
#include "transport/sender.h"

namespace quicbench::obs {

bool invariants_enabled() { return RunOptions::current().invariants; }

InvariantChecker::PnState InvariantChecker::state(std::uint64_t pn) const {
  return pn < pn_state_.size() ? pn_state_[pn] : PnState::kUnknown;
}

void InvariantChecker::set_state(std::uint64_t pn, PnState s) {
  if (pn >= pn_state_.size()) {
    pn_state_.resize(pn + 1, PnState::kUnknown);
    pn_size_.resize(pn + 1, 0);
  }
  pn_state_[pn] = s;
}

void InvariantChecker::violate(const std::string& msg) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(label_ + ": " + msg);
  }
}

void InvariantChecker::note_clock(Time now) {
  if (now < 0) {
    violate("negative hook timestamp " + std::to_string(now));
  }
  if (now < last_now_) {
    violate("clock went backwards: " + std::to_string(now) + " after " +
            std::to_string(last_now_));
  }
  last_now_ = now;
}

void InvariantChecker::on_packet_sent(Time now, std::uint64_t pn, Bytes size,
                                      bool is_retx, Bytes bytes_in_flight,
                                      Bytes cwnd) {
  note_clock(now);
  ++n_sent_;
  if (is_retx) ++n_retx_;
  if (size <= 0) {
    violate("pn " + std::to_string(pn) + " sent with non-positive size " +
            std::to_string(size));
  }
  if (state(pn) != PnState::kUnknown) {
    violate("pn " + std::to_string(pn) + " sent twice");
  }
  set_state(pn, PnState::kOutstanding);
  pn_size_[pn] = static_cast<std::uint32_t>(size);
  in_flight_ += size;
  if (in_flight_ != bytes_in_flight) {
    violate("bytes_in_flight mismatch after send of pn " + std::to_string(pn) +
            ": sender says " + std::to_string(bytes_in_flight) +
            ", event stream implies " + std::to_string(in_flight_));
  }
  // PTO probes and retransmissions may legitimately exceed the window
  // (RFC 9002 §7.5); a fresh cwnd-gated send must not.
  if (!is_retx && cwnd > 0 && bytes_in_flight > cwnd) {
    violate("cwnd bound violated by fresh send of pn " + std::to_string(pn) +
            ": bytes_in_flight " + std::to_string(bytes_in_flight) + " > cwnd " +
            std::to_string(cwnd));
  }
}

void InvariantChecker::on_packet_acked(Time now, std::uint64_t pn, Bytes size,
                                       Bytes bytes_in_flight) {
  note_clock(now);
  ++n_acked_;
  if (state(pn) != PnState::kOutstanding) {
    violate("pn " + std::to_string(pn) +
            " acked while not outstanding (state " +
            std::to_string(static_cast<int>(state(pn))) + ")");
    return;
  }
  if (pn < pn_size_.size() &&
      size != static_cast<Bytes>(pn_size_[pn])) {
    violate("pn " + std::to_string(pn) + " acked with size " +
            std::to_string(size) + " but was sent with size " +
            std::to_string(pn_size_[pn]));
  }
  set_state(pn, PnState::kAcked);
  in_flight_ -= size;
  if (in_flight_ < 0) {
    violate("bytes_in_flight went negative after ack of pn " +
            std::to_string(pn));
  }
  if (in_flight_ != bytes_in_flight) {
    violate("bytes_in_flight mismatch after ack of pn " + std::to_string(pn) +
            ": sender says " + std::to_string(bytes_in_flight) +
            ", event stream implies " + std::to_string(in_flight_));
  }
}

void InvariantChecker::on_packet_lost(Time now, std::uint64_t pn) {
  note_clock(now);
  ++n_lost_;
  if (state(pn) != PnState::kOutstanding) {
    violate("pn " + std::to_string(pn) + " declared lost while not "
            "outstanding (state " +
            std::to_string(static_cast<int>(state(pn))) + ")");
    return;
  }
  set_state(pn, PnState::kLost);
  if (pn < pn_size_.size()) {
    in_flight_ -= static_cast<Bytes>(pn_size_[pn]);
  }
  if (in_flight_ < 0) {
    violate("bytes_in_flight went negative after loss of pn " +
            std::to_string(pn));
  }
}

void InvariantChecker::on_spurious_loss(Time now, std::uint64_t pn) {
  note_clock(now);
  ++n_spurious_;
  if (state(pn) != PnState::kLost) {
    violate("pn " + std::to_string(pn) + " reported spuriously lost but was "
            "never declared lost (state " +
            std::to_string(static_cast<int>(state(pn))) + ")");
    return;
  }
  // The original transmission was acked after all; it does not re-enter
  // the flight (the sender already removed it on the loss declaration).
  set_state(pn, PnState::kAcked);
}

void InvariantChecker::on_rtt_sample(Time now, Time rtt) {
  note_clock(now);
  if (rtt <= 0) {
    violate("non-positive RTT sample " + std::to_string(rtt));
  } else if (rtt >= time::kInfinite) {
    violate("non-finite RTT sample");
  } else if (min_rtt_floor_ > 0 && rtt < min_rtt_floor_) {
    violate("RTT sample " + std::to_string(rtt) +
            "ns below propagation floor " + std::to_string(min_rtt_floor_) +
            "ns — time travel");
  }
}

void InvariantChecker::on_cwnd_update(Time now, Bytes cwnd,
                                      Bytes bytes_in_flight) {
  note_clock(now);
  if (cwnd <= 0) {
    violate("non-positive cwnd " + std::to_string(cwnd));
  }
  if (bytes_in_flight < 0) {
    violate("negative bytes_in_flight " + std::to_string(bytes_in_flight) +
            " in cwnd update");
  }
}

void InvariantChecker::on_pto(Time now, int pto_count) {
  note_clock(now);
  ++n_ptos_;
  if (pto_count < 1) {
    violate("PTO fired with pto_count " + std::to_string(pto_count));
  }
}

void InvariantChecker::final_check(const transport::SenderStats& stats,
                                   Bytes bytes_in_flight) {
  if (in_flight_ != bytes_in_flight) {
    violate("final bytes_in_flight mismatch: sender says " +
            std::to_string(bytes_in_flight) + ", event stream implies " +
            std::to_string(in_flight_));
  }
  if (n_sent_ != stats.packets_sent) {
    violate("packets_sent mismatch: stats " +
            std::to_string(stats.packets_sent) + ", observed " +
            std::to_string(n_sent_));
  }
  if (n_retx_ != stats.retransmissions) {
    violate("retransmissions mismatch: stats " +
            std::to_string(stats.retransmissions) + ", observed " +
            std::to_string(n_retx_));
  }
  if (n_spurious_ != stats.spurious_losses) {
    violate("spurious_losses mismatch: stats " +
            std::to_string(stats.spurious_losses) + ", observed " +
            std::to_string(n_spurious_));
  }
  if (n_ptos_ != stats.ptos_fired) {
    violate("ptos_fired mismatch: stats " + std::to_string(stats.ptos_fired) +
            ", observed " + std::to_string(n_ptos_));
  }
  // Persistent congestion marks packets lost via the same callback but
  // does not count them in losses_detected, so observed >= stats, with
  // equality when no persistent-congestion event fired.
  if (n_lost_ < stats.losses_detected) {
    violate("losses_detected mismatch: stats " +
            std::to_string(stats.losses_detected) + " > observed " +
            std::to_string(n_lost_));
  }
  if (stats.persistent_congestion_events == 0 &&
      n_lost_ != stats.losses_detected) {
    violate("losses_detected mismatch without persistent congestion: stats " +
            std::to_string(stats.losses_detected) + ", observed " +
            std::to_string(n_lost_));
  }
  // Packet conservation: sent = acked + lost + in-flight, in packets.
  // Spuriously-lost packets were counted in n_lost_ when declared and moved
  // to acked later, so they appear exactly once on the right-hand side.
  std::int64_t outstanding = 0;
  std::int64_t acked_or_spurious = 0;
  std::int64_t still_lost = 0;
  for (PnState s : pn_state_) {
    switch (s) {
      case PnState::kOutstanding: ++outstanding; break;
      case PnState::kAcked: ++acked_or_spurious; break;
      case PnState::kLost: ++still_lost; break;
      case PnState::kUnknown: break;
    }
  }
  if (n_sent_ != outstanding + acked_or_spurious + still_lost) {
    violate("packet conservation broken: sent " + std::to_string(n_sent_) +
            " != outstanding " + std::to_string(outstanding) + " + acked " +
            std::to_string(acked_or_spurious) + " + lost " +
            std::to_string(still_lost));
  }
}

void InvariantChecker::check_element_conservation(const std::string& what,
                                                 std::int64_t packets_in,
                                                 std::int64_t forwarded,
                                                 std::int64_t dropped,
                                                 std::int64_t resident) {
  if (packets_in != forwarded + dropped + resident) {
    violate(what + " conservation broken: in " + std::to_string(packets_in) +
            " != forwarded " + std::to_string(forwarded) + " + dropped " +
            std::to_string(dropped) + " + resident " +
            std::to_string(resident));
  }
}

void InvariantChecker::throw_if_violated() const {
  if (violations_.empty()) return;
  std::ostringstream os;
  os << "invariant violation(s) [" << label_ << "]:";
  for (const std::string& v : violations_) os << "\n  - " << v;
  throw std::logic_error(os.str());
}

} // namespace quicbench::obs
