#include "util/rng.h"

#include <cmath>

namespace quicbench {

double Rng::normal(double mean, double stddev) {
  // Box-Muller. Guard against log(0).
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

} // namespace quicbench
