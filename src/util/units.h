#pragma once
// Strong-ish unit types for simulation time, data sizes and rates.
//
// All simulation time is integer nanoseconds (no floating point time), all
// data sizes are bytes, and rates are bits per second. Helper constructors
// and converters keep call sites readable: `time::ms(10)`, `rate::mbps(20)`.

#include <cstdint>
#include <limits>

namespace quicbench {

using Time = std::int64_t;  // nanoseconds since simulation start
using Bytes = std::int64_t; // data size in bytes
using Rate = double;        // bits per second

namespace time {

inline constexpr Time kInfinite = std::numeric_limits<Time>::max();

constexpr Time ns(std::int64_t v) { return v; }
constexpr Time us(std::int64_t v) { return v * 1'000; }
constexpr Time ms(std::int64_t v) { return v * 1'000'000; }
constexpr Time sec(std::int64_t v) { return v * 1'000'000'000; }

constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }

// Time from a (possibly fractional) number of seconds / milliseconds.
constexpr Time from_sec(double s) { return static_cast<Time>(s * 1e9); }
constexpr Time from_ms(double ms) { return static_cast<Time>(ms * 1e6); }

} // namespace time

namespace rate {

constexpr Rate bps(double v) { return v; }
constexpr Rate kbps(double v) { return v * 1e3; }
constexpr Rate mbps(double v) { return v * 1e6; }
constexpr Rate gbps(double v) { return v * 1e9; }

constexpr double to_mbps(Rate r) { return r / 1e6; }

} // namespace rate

// Time to serialize `size` bytes onto a link of rate `r` bits/sec.
constexpr Time serialization_time(Bytes size, Rate r) {
  return static_cast<Time>(static_cast<double>(size) * 8.0 / r * 1e9);
}

// Bandwidth-delay product in bytes for a link rate and round-trip time.
constexpr Bytes bdp_bytes(Rate r, Time rtt) {
  return static_cast<Bytes>(r / 8.0 * time::to_sec(rtt));
}

// Rate achieved by `size` bytes delivered over interval `t`.
constexpr Rate rate_of(Bytes size, Time t) {
  return t > 0 ? static_cast<double>(size) * 8.0 / time::to_sec(t) : 0.0;
}

} // namespace quicbench
