#pragma once
// Stable, platform-independent hashing for configuration fingerprints.
//
// FNV-1a (64-bit) over a canonical byte stream: every integer is fed in
// little-endian order regardless of host endianness, doubles are fed as
// their IEEE-754 bit pattern, and strings are length-prefixed so that
// adjacent fields cannot alias ("ab","c" vs "a","bc"). Not cryptographic
// — this keys the on-disk result cache and detects config drift, nothing
// more.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace quicbench {

class StableHasher {
 public:
  StableHasher& u8(std::uint8_t v) {
    h_ = (h_ ^ v) * kPrime;
    return *this;
  }

  StableHasher& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  StableHasher& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }

  StableHasher& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  StableHasher& b(bool v) { return u8(v ? 1 : 0); }

  StableHasher& str(std::string_view s) {
    u64(s.size());
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
    return *this;
  }

  std::uint64_t digest() const { return h_; }

  // 16 lowercase hex chars — the canonical fingerprint rendering.
  std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] =
          kDigits[(h_ >> (60 - 4 * i)) & 0xF];
    }
    return out;
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = 14695981039346656037ULL;  // FNV offset basis
};

} // namespace quicbench
