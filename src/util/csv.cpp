#include "util/csv.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace quicbench {

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  if (values.size() != columns_) {
    throw std::runtime_error("CsvWriter: column count mismatch in " + path_);
  }
  std::size_t i = 0;
  out_ << std::setprecision(12);
  for (double v : values) {
    if (i++) out_ << ',';
    out_ << v;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::runtime_error("CsvWriter: column count mismatch in " + path_);
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

} // namespace quicbench
