#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every experiment trial derives its own Rng from (master seed, trial index,
// flow index, ...) via `fork`, so results are identical across runs and
// independent of evaluation order.

#include <cstdint>

namespace quicbench {

// splitmix64: used for seeding and cheap stateless mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Small, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is negligible for the ranges we use (n << 2^64).
    return next_u64() % n;
  }

  // Standard normal via Box-Muller (polar form avoided for determinism of
  // call count: always consumes exactly two uniforms).
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given mean.
  double exponential(double mean);

  // Derive an independent stream for a sub-component.
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t s = next_u64() ^ (0xA0761D6478BD642FULL * (stream_id + 1));
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

} // namespace quicbench
