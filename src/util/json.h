#pragma once
// Minimal streaming JSON writer for the sweep run manifests. Emits
// pretty-printed UTF-8 with two-space indentation; doubles are written
// with round-trip precision and non-finite values become null (JSON has
// no NaN/Inf). No reading/parsing — manifests are consumed by external
// tooling (jq, python), not by us.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quicbench {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Inside an object: the key of the next value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  // The finished document. Valid once every container has been closed.
  std::string str() const;

 private:
  void before_value();
  void newline_indent();

  struct Frame {
    bool array = false;
    bool has_items = false;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

} // namespace quicbench
