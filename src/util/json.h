#pragma once
// Minimal JSON support for the sweep run manifests and the observability
// layer.
//
// JsonWriter: streaming writer emitting pretty-printed UTF-8 with
// two-space indentation; doubles are written with round-trip precision
// and non-finite values become null (JSON has no NaN/Inf).
//
// json_parse/JsonValue: a small recursive-descent reader, added so tests
// can validate the documents we emit (qlog files, Chrome trace profiles,
// sweep manifests) without external tooling. Numbers are held as double —
// fine for validation, not a general-purpose JSON library.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace quicbench {

std::string json_escape(std::string_view s);

// A double as a JSON number token: round-trip precision (%.17g), "null"
// for non-finite values (JSON has no NaN/Inf). For hand-rolled emitters
// (qlog, flight recorder) that bypass JsonWriter — `os << d` truncates
// to 6 significant digits, which loses sub-ms timestamp resolution past
// 100 s and round-trips nothing.
std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Inside an object: the key of the next value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  // The finished document. Valid once every container has been closed.
  std::string str() const;

 private:
  void before_value();
  void newline_indent();

  struct Frame {
    bool array = false;
    bool has_items = false;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

// Parsed JSON document node. Object members keep insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  const JsonValue* find(std::string_view key) const;
};

// Parse a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected). nullopt on malformed input, with a position-tagged
// message in `error` when provided.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

} // namespace quicbench
