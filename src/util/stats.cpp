#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace quicbench::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void Running::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Running::stddev() const { return std::sqrt(variance()); }

} // namespace quicbench::stats
