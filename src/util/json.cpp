#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace quicbench {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    newline_indent();
  }
  if (!stack_.empty()) stack_.back().has_items = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({/*array=*/false, false});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({/*array=*/true, false});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const { return out_ + "\n"; }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser. Depth-limited so hostile inputs cannot blow
// the stack; the documents we validate nest a handful of levels.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: a low surrogate escape must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& v) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return true;
  }

  bool parse_value(JsonValue& v, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        v.type = JsonValue::Type::kObject;
        skip_ws();
        if (consume('}')) return true;
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          v.object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) return true;
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos_;
        v.type = JsonValue::Type::kArray;
        skip_ws();
        if (consume(']')) return true;
        for (;;) {
          JsonValue item;
          if (!parse_value(item, depth + 1)) return false;
          v.array.push_back(std::move(item));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) return true;
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        v.type = JsonValue::Type::kString;
        return parse_string(v.string);
      case 't':
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return literal("true");
      case 'f':
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return literal("false");
      case 'n':
        v.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return parse_number(v);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

} // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return JsonParser(text).parse(error);
}

} // namespace quicbench
