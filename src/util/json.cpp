#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace quicbench {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_items) out_ += ',';
    newline_indent();
  }
  if (!stack_.empty()) stack_.back().has_items = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back({/*array=*/false, false});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back({/*array=*/true, false});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.back().has_items) out_ += ',';
  newline_indent();
  stack_.back().has_items = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const { return out_ + "\n"; }

} // namespace quicbench
