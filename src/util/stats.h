#pragma once
// Small statistics helpers shared by the trace pipeline and the harness.

#include <cstddef>
#include <span>
#include <vector>

namespace quicbench::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

// Linear-interpolated percentile; p in [0, 100]. Empty input returns 0.
double percentile(std::span<const double> xs, double p);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

// Streaming mean/variance (Welford). Useful inside the simulator where we
// do not want to retain every sample.
class Running {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // population variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Windowed min/max filter over (time, value) samples, as used by BBR for
// its bottleneck-bandwidth max filter and min-RTT filter. Keeps a monotonic
// deque of candidate samples within `window`.
template <typename T, bool kMax>
class WindowedExtremum {
 public:
  explicit WindowedExtremum(long long window) : window_(window) {}

  void update(long long now, T value) {
    // Drop samples that can never be the extremum again.
    while (!samples_.empty() && better(value, samples_.back().value)) {
      samples_.pop_back();
    }
    samples_.push_back({now, value});
    expire(now);
  }

  bool empty() const { return samples_.empty(); }

  T get() const { return samples_.front().value; }

  void expire(long long now) {
    while (!samples_.empty() && samples_.front().time < now - window_) {
      samples_.erase(samples_.begin());
    }
  }

  void set_window(long long window) { window_ = window; }
  void clear() { samples_.clear(); }

 private:
  struct Sample {
    long long time;
    T value;
  };

  static bool better(T a, T b) { return kMax ? a >= b : a <= b; }

  long long window_;
  std::vector<Sample> samples_;
};

template <typename T>
using WindowedMax = WindowedExtremum<T, true>;
template <typename T>
using WindowedMin = WindowedExtremum<T, false>;

} // namespace quicbench::stats
