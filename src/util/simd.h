// Explicitly vectorized inner-loop kernels for the datapath hot spots:
// the SoA sent-log range ops, the kmeans assignment/seeding distance
// loops, and the point-in-convex containment scans.
//
// Discipline (see DESIGN.md "Vectorization discipline"):
//
//   * Every kernel has a `*_scalar` twin compiled unconditionally; the
//     unsuffixed entry point is the vector variant unless the build
//     forces the fallback with -DQB_NO_SIMD=ON, in which case it is an
//     alias for the scalar twin. Randomized tests compare the two at
//     runtime for exact (bitwise) equality in every build mode.
//   * Vectorization is expressed portably with `#pragma omp simd`
//     (honored under -fopenmp-simd with no OpenMP runtime); there are
//     no intrinsics, so the scalar fallback is always available.
//   * Bit-identical FP policy: only loops whose lanes are independent
//     (one result per element, no cross-lane FP accumulation) or whose
//     reductions are exact under reassociation (integer sums, bitwise
//     OR, per-lane min of identically computed values) may carry a simd
//     pragma. Order-dependent FP reductions (kmeans inertia/centroid
//     sums, seeding totals) stay scalar in fixed accumulation order at
//     the call sites — they are deliberately absent here.
//
// `#pragma omp simd` does not relax IEEE semantics per lane (that would
// require an explicit fp-model switch we never pass), so each lane of a
// vectorized loop performs literally the same double ops as the scalar
// twin and produces the same bits.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#if !defined(QB_NO_SIMD)
#define QB_PRAGMA(x) _Pragma(#x)
#define QB_SIMD QB_PRAGMA(omp simd)
#define QB_SIMD_REDUCE(clause) QB_PRAGMA(omp simd reduction(clause))
#else
#define QB_SIMD
#define QB_SIMD_REDUCE(clause)
#endif

namespace quicbench::util::simd {

// True when the vector variants are compiled with simd pragmas; false
// when -DQB_NO_SIMD forces the scalar fallback. Tests use this only for
// reporting — equality between the paths is asserted either way.
#if !defined(QB_NO_SIMD)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// ---------------------------------------------------------------------------
// Integer range kernels (sent-log SoA passes). Integer + bitwise
// reductions are exact under any association, so these may reduce.

inline std::uint64_t sum_u32_scalar(const std::uint32_t* v, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

inline std::uint64_t sum_u32(const std::uint32_t* v, std::size_t n) {
  std::uint64_t sum = 0;
  QB_SIMD_REDUCE(+ : sum)
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

inline std::uint8_t or_u8_scalar(const std::uint8_t* v, std::size_t n) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= v[i];
  return acc;
}

inline std::uint8_t or_u8(const std::uint8_t* v, std::size_t n) {
  std::uint8_t acc = 0;
  QB_SIMD_REDUCE(| : acc)
  for (std::size_t i = 0; i < n; ++i) acc |= v[i];
  return acc;
}

inline void or_assign_u8_scalar(std::uint8_t* v, std::size_t n,
                                std::uint8_t bits) {
  for (std::size_t i = 0; i < n; ++i) v[i] |= bits;
}

inline void or_assign_u8(std::uint8_t* v, std::size_t n, std::uint8_t bits) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) v[i] |= bits;
}

// v[i] = start + i — the intrusive-list link fill for an all-live
// gap run (next_/prev_ hold packet numbers, which are affine in the
// slot index across a contiguous run).
inline void fill_affine_u64_scalar(std::uint64_t* v, std::size_t n,
                                   std::uint64_t start) {
  for (std::size_t i = 0; i < n; ++i) v[i] = start + i;
}

inline void fill_affine_u64(std::uint64_t* v, std::size_t n,
                            std::uint64_t start) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) v[i] = start + i;
}

// ---------------------------------------------------------------------------
// kmeans distance kernels. All lanes are independent: one double out
// per point, computed with the exact op sequence of the scalar twin.

// d2[i] = (px[i]-cx)^2 + (py[i]-cy)^2
inline void sqdist_init_scalar(const double* px, const double* py,
                               std::size_t n, double cx, double cy,
                               double* d2) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    d2[i] = dx * dx + dy * dy;
  }
}

inline void sqdist_init(const double* px, const double* py, std::size_t n,
                        double cx, double cy, double* d2) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    d2[i] = dx * dx + dy * dy;
  }
}

// d2[i] = min(d2[i], sqdist(p[i], c)) — the kmeans++ seeding update.
// Exact: each lane takes the min of two identically computed values.
inline void sqdist_fold_min_scalar(const double* px, const double* py,
                                   std::size_t n, double cx, double cy,
                                   double* d2) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    const double d = dx * dx + dy * dy;
    if (d < d2[i]) d2[i] = d;
  }
}

inline void sqdist_fold_min(const double* px, const double* py, std::size_t n,
                            double cx, double cy, double* d2) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    const double d = dx * dx + dy * dy;
    if (d < d2[i]) d2[i] = d;
  }
}

// The Lloyd assignment fold: against centroid (cx, cy) with index c,
// update each point's (bestd, best) pair. The scalar assignment loop's
// x-axis early exit (`if (dx*dx >= bestd) continue;`) is provably
// equivalent to this branchless full evaluation: under round-to-nearest
// fl(fl(dx*dx) + fl(dy*dy)) >= fl(dx*dx), so whenever the scalar path
// skips, the full distance also fails `d < bestd` and the lane is
// unchanged. Ties keep the lower centroid index in both paths (strict
// `<`), so assignments — and everything downstream — are bit-identical.
inline void assign_fold_best_scalar(const double* px, const double* py,
                                    std::size_t n, double cx, double cy,
                                    std::int32_t c, double* bestd,
                                    std::int32_t* best) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    const double d = dx * dx + dy * dy;
    if (d < bestd[i]) {
      bestd[i] = d;
      best[i] = c;
    }
  }
}

inline void assign_fold_best(const double* px, const double* py,
                             std::size_t n, double cx, double cy,
                             std::int32_t c, double* bestd,
                             std::int32_t* best) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px[i] - cx;
    const double dy = py[i] - cy;
    const double d = dx * dx + dy * dy;
    if (d < bestd[i]) {
      bestd[i] = d;
      best[i] = c;
    }
  }
}

// ---------------------------------------------------------------------------
// Containment kernels (point-in-convex batch tests). One byte mask per
// point; each lane evaluates the same half-plane test as the scalar
// `PreparedConvex::contains` edge loop, so the boolean results match
// exactly (the scalar path's early exit only skips work, never changes
// the outcome).

// mask[i] &= (ex*(py[i]-ay) - ey*(px[i]-ax) >= -eps)
inline void mask_halfplane_scalar(const double* px, const double* py,
                                  std::size_t n, double ax, double ay,
                                  double ex, double ey, double eps,
                                  std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const double cr = ex * (py[i] - ay) - ey * (px[i] - ax);
    if (cr < -eps) mask[i] = 0;
  }
}

inline void mask_halfplane(const double* px, const double* py, std::size_t n,
                           double ax, double ay, double ex, double ey,
                           double eps, std::uint8_t* mask) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double cr = ex * (py[i] - ay) - ey * (px[i] - ax);
    if (cr < -eps) mask[i] = 0;
  }
}

// mask[i] &= point i inside the closed box [minx,maxx]x[miny,maxy].
// Matches PreparedConvex::contains_boxed's strict pre-reject.
inline void mask_box_scalar(const double* px, const double* py, std::size_t n,
                            double minx, double miny, double maxx, double maxy,
                            std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool in = px[i] >= minx && px[i] <= maxx && py[i] >= miny &&
                    py[i] <= maxy;
    if (!in) mask[i] = 0;
  }
}

inline void mask_box(const double* px, const double* py, std::size_t n,
                     double minx, double miny, double maxx, double maxy,
                     std::uint8_t* mask) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const bool in = px[i] >= minx && px[i] <= maxx && py[i] >= miny &&
                    py[i] <= maxy;
    if (!in) mask[i] = 0;
  }
}

// dst[i] |= src[i] — folds one hull's mask into the "inside any" mask.
inline void or_arrays_u8_scalar(std::uint8_t* dst, const std::uint8_t* src,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

inline void or_arrays_u8(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t n) {
  QB_SIMD
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

// count of i where both masks are set (conformance overlap count).
inline std::size_t count_and_mask_scalar(const std::uint8_t* a,
                                         const std::uint8_t* b,
                                         std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += (a[i] & b[i]) != 0;
  return c;
}

inline std::size_t count_and_mask(const std::uint8_t* a, const std::uint8_t* b,
                                  std::size_t n) {
  std::size_t c = 0;
  QB_SIMD_REDUCE(+ : c)
  for (std::size_t i = 0; i < n; ++i) c += (a[i] & b[i]) != 0;
  return c;
}

// popcount of a byte mask (0/1 values after the passes above).
inline std::size_t count_mask_scalar(const std::uint8_t* mask,
                                     std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += mask[i] != 0;
  return c;
}

inline std::size_t count_mask(const std::uint8_t* mask, std::size_t n) {
  std::size_t c = 0;
  QB_SIMD_REDUCE(+ : c)
  for (std::size_t i = 0; i < n; ++i) c += mask[i] != 0;
  return c;
}

} // namespace quicbench::util::simd
