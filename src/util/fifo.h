#pragma once
// FifoVec: a FIFO queue over a single contiguous vector, for hot paths
// that previously used std::deque. A deque allocates and frees map
// chunks as the head chases the tail even when the queue's size is
// bounded; FifoVec instead pops by advancing a head index and recycles
// the whole buffer (capacity retained) every time the queue drains, so a
// queue that repeatedly fills and empties performs zero steady-state
// allocations. If the queue never fully drains, the dead prefix is
// compacted once it dominates the buffer, keeping memory proportional to
// the live size (amortized O(1) per operation).
//
// Only the operations the netsim/transport hot paths need are provided.
// Iteration order is front-to-back, as with std::deque.

#include <cstddef>
#include <utility>
#include <vector>

namespace quicbench::util {

template <typename T>
class FifoVec {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  // Random access relative to the front (stable across pop_front).
  T& operator[](std::size_t i) { return buf_[head_ + i]; }
  const T& operator[](std::size_t i) const { return buf_[head_ + i]; }
  T& back() { return buf_.back(); }
  const T& back() const { return buf_.back(); }

  void push_back(T v) { buf_.push_back(std::move(v)); }

  template <typename... A>
  void emplace_back(A&&... args) {
    buf_.emplace_back(std::forward<A>(args)...);
  }

  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();  // capacity retained: the common drain-to-empty case
      head_ = 0;
    } else if (head_ >= kCompactThreshold && head_ >= buf_.size() - head_) {
      // Dead prefix at least as large as the live suffix: compact.
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  void reserve(std::size_t n) { buf_.reserve(n); }

  auto begin() { return buf_.begin() + static_cast<std::ptrdiff_t>(head_); }
  auto end() { return buf_.end(); }
  auto begin() const {
    return buf_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  auto end() const { return buf_.end(); }

 private:
  static constexpr std::size_t kCompactThreshold = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
};

} // namespace quicbench::util
