#pragma once
// Minimal CSV writer used by benches and examples to dump series that a
// plotting script can consume. Values are written with enough precision to
// round-trip doubles.

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace quicbench {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws
  // std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Append one row; the number of fields must match the header.
  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& fields);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;
};

// Quote a field if it contains separators/quotes, per RFC 4180.
std::string csv_escape(std::string_view field);

} // namespace quicbench
