#pragma once
// InlineFn: a move-only callable wrapper with guaranteed small-buffer
// storage, built for the discrete-event hot path where std::function's
// implementation-defined SBO threshold is not a contract we can lean on.
//
// Callables whose size fits kInlineFnBytes (and that are nothrow
// move-constructible) are stored inline: constructing, moving and
// invoking them never touches the heap. Oversized or throwing-move
// callables fall back to a single heap allocation; moves of a heap-backed
// InlineFn still never allocate (the pointer relocates). The inline
// capacity is sized for the `[this]`- and `[this, index]`-capture lambdas
// that dominate simulator events, with headroom for a copied
// std::function (32 bytes on libstdc++) so test code composing the two
// stays inline as well.
//
// Differences from std::function, all deliberate:
//   * move-only (events are scheduled once and fired once; copies would
//     hide allocations);
//   * no target()/target_type() RTTI;
//   * invoking an empty InlineFn is undefined (asserts in debug) rather
//     than throwing std::bad_function_call.

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace quicbench::util {

inline constexpr std::size_t kInlineFnBytes = 48;

template <typename Sig, std::size_t InlineBytes = kInlineFnBytes>
class InlineFn;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFn<R(Args...), InlineBytes> {
 public:
  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty InlineFn");
    return ops_->invoke(&buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  // True when the stored callable lives in the inline buffer (test hook
  // for the zero-allocation guarantee).
  bool is_inline() const { return ops_ != nullptr && !ops_->heap; }

 private:
  struct Ops {
    R (*invoke)(void* obj, Args&&... args);
    // Move-construct the stored callable from `src` into `dst` and
    // destroy the source. Must not allocate.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool heap;
    // Trivially-relocatable / trivially-destructible fast-path flags:
    // nearly every event callback captures only pointers and integers,
    // and the event store relocates entries several times per dispatch
    // (heap sift, wheel bucket sort). These flags let moves be a plain
    // memcpy of the buffer and destruction a no-op, skipping the
    // indirect call either would otherwise make.
    bool trivial_relocate;
    bool trivial_destroy;
  };

  template <typename F>
  static F* as(void* buf) {
    return std::launder(reinterpret_cast<F*>(buf));
  }

  template <typename F>
  struct InlineModel {
    static R invoke(void* buf, Args&&... args) {
      return (*as<F>(buf))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      F* s = as<F>(src);
      ::new (dst) F(std::move(*s));
      s->~F();
    }
    static void destroy(void* buf) noexcept { as<F>(buf)->~F(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy, /*heap=*/false,
                              /*trivial_relocate=*/
                              std::is_trivially_copyable_v<F> &&
                                  std::is_trivially_destructible_v<F>,
                              /*trivial_destroy=*/
                              std::is_trivially_destructible_v<F>};
  };

  template <typename F>
  struct HeapModel {
    static F* ptr(void* buf) { return *as<F*>(buf); }
    static R invoke(void* buf, Args&&... args) {
      return (*ptr(buf))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(ptr(src));  // pointer relocation only
    }
    static void destroy(void* buf) noexcept { delete ptr(buf); }
    // The owning pointer relocates by value, so moves are trivially a
    // memcpy; destruction still frees the heap object.
    static constexpr Ops kOps{&invoke, &relocate, &destroy, /*heap=*/true,
                              /*trivial_relocate=*/true,
                              /*trivial_destroy=*/false};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    static_assert(alignof(D*) <= alignof(std::max_align_t));
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (&buf_) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::kOps;
    } else {
      ::new (&buf_) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::kOps;
    }
  }

  void steal(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial_relocate) {
        std::memcpy(&buf_, &other.buf_, InlineBytes);
      } else {
        ops_->relocate(&buf_, &other.buf_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

} // namespace quicbench::util
