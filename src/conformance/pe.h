#pragma once
// Performance Envelope (PE) construction, §3.1–3.2.
//
// A PE summarises the (delay, throughput) behaviour of a CCA
// implementation competing against the reference flow. The enhanced
// definition used in the paper:
//   1. run multiple trials, each yielding a point cloud;
//   2. cluster the points with k-means (k chosen by the IOU-drop rule);
//   3. per trial, build one convex hull per cluster;
//   4. match clusters across trials by centroid proximity and intersect
//      the corresponding hulls — the intersection step replaces ad-hoc
//      outlier trimming;
//   5. the PE is the resulting set of convex hulls.

#include <span>
#include <vector>

#include "cluster/kmeans.h"
#include "geom/geom.h"

namespace quicbench::conformance {

struct PerformanceEnvelope {
  int k = 0;                                 // number of clusters used
  std::vector<geom::Polygon> hulls;          // final (intersected) hulls
  std::vector<geom::Point> cluster_centroids;  // pooled, original units
  std::vector<geom::Point> all_points;       // pooled across trials
  double iou = 0;  // R: share of pooled points retained inside the PE

  bool contains(const geom::Point& p) const {
    for (const auto& h : hulls) {
      if (geom::point_in_convex(h, p)) return true;
    }
    return false;
  }

  // Bulk variant of contains(): prepares each hull once, then scans the
  // pooled cloud. Same hull order, same per-edge arithmetic — the count
  // matches a contains() loop exactly. Scalar on purpose: the iou site
  // is dominated by points outside most hulls, where the
  // first-failing-edge exit beats geom::count_in_any's mask passes
  // (see DESIGN.md, vectorization discipline).
  std::size_t points_inside() const {
    std::vector<geom::PreparedConvex> prep;
    prep.reserve(hulls.size());
    for (const auto& h : hulls) prep.emplace_back(h);
    std::size_t n = 0;
    for (const auto& p : all_points) {
      for (const auto& h : prep) {
        if (h.contains(p)) {
          ++n;
          break;
        }
      }
    }
    return n;
  }
};

struct PeConfig {
  int max_k = 6;
  cluster::KMeansConfig kmeans;
  bool normalize = true;   // z-score axes before clustering
  std::uint64_t seed = 7;  // clustering is randomised but seeded
  // Minimum share of pooled points a cluster must hold to produce a hull
  // (guards against one-off stragglers forming fake clusters; BBR's
  // ProbeRTT cluster holds ~2% of samples, so the floor sits below that).
  double min_cluster_share = 0.01;
  // Cluster each trial independently and match clusters by centroid (the
  // paper's construction — the steep R(k) drop past the natural k comes
  // precisely from per-trial clustering disagreeing there). The pooled
  // alternative clusters all trials at once; kept for the ablation.
  bool per_trial_clustering = true;
  // Robust cross-trial combination: the final region for a cluster is
  // the area covered by at least ceil(quorum x trials) of the per-trial
  // hulls (computed exactly as the union of all quorum-sized subset
  // intersections). quorum = 1.0 is the paper's strict all-trials
  // intersection; the 0.6 default tolerates one or two outlier trials
  // (e.g. a BBR trial that spent most of its run on the losing side of
  // the ProbeRTT bandwidth seesaw). Ablated in bench_ablations.
  double trial_quorum = 0.6;
  // k grows past 1 only when R(k) drops by at least this much somewhere.
  double min_iou_drop = 0.06;
};

// Point cloud of one trial.
using TrialPoints = std::vector<geom::Point>;

// Build a PE with a fixed number of clusters.
PerformanceEnvelope build_pe_fixed_k(std::span<const TrialPoints> trials,
                                     int k, const PeConfig& cfg = {});

// R(k) for k = 1..max_k: the information-retained curve of Figure 4.
std::vector<double> iou_curve(std::span<const TrialPoints> trials,
                              const PeConfig& cfg = {});

// Pick the "natural" k: the k immediately before the steepest drop of
// R(k) (§3.2, "How many clusters is enough?"). Drops smaller than
// `min_drop` are treated as noise (no structure -> k = 1).
int select_k(std::span<const double> iou, double min_drop = 0.06);

// Full pipeline: compute the IOU curve, select k, build the PE.
PerformanceEnvelope build_pe(std::span<const TrialPoints> trials,
                             const PeConfig& cfg = {});

// The earlier (IMC'22) definition: pool everything, drop the 5% of points
// farthest from the centroid, take a single convex hull.
PerformanceEnvelope build_pe_old(std::span<const TrialPoints> trials,
                                 double outlier_fraction = 0.05);

} // namespace quicbench::conformance
