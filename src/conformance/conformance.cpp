#include "conformance/conformance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/attrib.h"

namespace quicbench::conformance {

using geom::Point;
using geom::Polygon;

namespace {

// Prepared hulls with a bounding-box cheap reject before the exact
// point-in-polygon test; the quorum regions can make PEs hold dozens of
// polygons. PreparedConvex::contains_boxed keeps the historical BoxedPe
// semantics (strict box filter in front of the eps-relaxed edge tests).
// Deliberately scalar: most queried points are outside most hulls, so
// the 4-compare box reject + first-failing-edge exit beats the batched
// mask kernels here even with lane compaction (measured 2.4x on
// bench_eval's eval_conformance — see DESIGN.md, vectorization
// discipline).
struct BoxedPe {
  std::vector<geom::PreparedConvex> hulls;

  explicit BoxedPe(const PerformanceEnvelope& p) {
    hulls.reserve(p.hulls.size());
    for (const auto& h : p.hulls) hulls.emplace_back(h);
  }

  bool contains(const Point& p) const {
    for (const auto& h : hulls) {
      if (h.contains_boxed(p)) return true;
    }
    return false;
  }
};

} // namespace

double conformance(const PerformanceEnvelope& ref,
                   const PerformanceEnvelope& test) {
  QB_ATTRIB_SCOPE(kEvalContain);
  const std::size_t total = ref.all_points.size() + test.all_points.size();
  if (total == 0) return 0;
  const BoxedPe bref(ref), btest(test);
  std::size_t in_overlap = 0;
  for (const auto& p : ref.all_points) {
    if (bref.contains(p) && btest.contains(p)) ++in_overlap;
  }
  for (const auto& p : test.all_points) {
    if (bref.contains(p) && btest.contains(p)) ++in_overlap;
  }
  return static_cast<double>(in_overlap) / static_cast<double>(total);
}

PerformanceEnvelope translate_pe(const PerformanceEnvelope& pe, double dx,
                                 double dy) {
  PerformanceEnvelope out = pe;
  for (auto& h : out.hulls) h = geom::translate(h, dx, dy);
  for (auto& p : out.all_points) {
    p.x += dx;
    p.y += dy;
  }
  for (auto& c : out.cluster_centroids) {
    c.x += dx;
    c.y += dy;
  }
  return out;
}

namespace {

// Evaluate conformance with `test` translated by (dx, dy), on point
// subsets chosen by `stride` (1 = exact). Membership of each side's own
// points in its own (untranslated) envelope is precomputed by the caller.
// Scalar for the same reason BoxedPe is: translated points mostly miss
// the other side's hulls, and the early exits win there.
double conformance_translated(const BoxedPe& ref, const BoxedPe& test,
                              std::span<const Point> ref_pts_in_ref,
                              std::span<const Point> test_pts_in_test,
                              std::size_t total, double dx, double dy,
                              std::size_t stride) {
  if (total == 0) return 0;
  std::size_t in_overlap = 0;
  for (std::size_t i = 0; i < ref_pts_in_ref.size(); i += stride) {
    const Point& p = ref_pts_in_ref[i];
    if (test.contains({p.x - dx, p.y - dy})) ++in_overlap;
  }
  for (std::size_t i = 0; i < test_pts_in_test.size(); i += stride) {
    const Point& p = test_pts_in_test[i];
    if (ref.contains({p.x + dx, p.y + dy})) ++in_overlap;
  }
  return static_cast<double>(in_overlap * stride) /
         static_cast<double>(total);
}

void data_range(const PerformanceEnvelope& a, const PerformanceEnvelope& b,
                double& range_x, double& range_y) {
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  const auto scan = [&](const std::vector<Point>& pts) {
    for (const auto& p : pts) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  };
  scan(a.all_points);
  scan(b.all_points);
  range_x = std::max(max_x - min_x, 1e-6);
  range_y = std::max(max_y - min_y, 1e-6);
}

} // namespace

TranslationResult best_translation(const PerformanceEnvelope& ref,
                                   const PerformanceEnvelope& test,
                                   const TranslationSearchConfig& cfg) {
  TranslationResult best;
  QB_ATTRIB_SCOPE(kEvalContain);

  const BoxedPe bref(ref), btest(test);
  const std::size_t total = ref.all_points.size() + test.all_points.size();

  // A point can only ever be in the overlap if it is inside its own
  // envelope; precompute those subsets (translation-invariant).
  std::vector<Point> ref_in_ref, test_in_test;
  for (const auto& p : ref.all_points) {
    if (bref.contains(p)) ref_in_ref.push_back(p);
  }
  for (const auto& p : test.all_points) {
    if (btest.contains(p)) test_in_test.push_back(p);
  }

  // Search on a subsample for speed; re-score exactly at the end.
  const std::size_t stride =
      std::max<std::size_t>(1, (ref_in_ref.size() + test_in_test.size()) /
                                   2000);
  const auto score = [&](double dx, double dy) {
    return conformance_translated(bref, btest, ref_in_ref, test_in_test,
                                  total, dx, dy, stride);
  };

  best.conformance_t = score(0, 0);

  // Candidate translations: align every test centroid onto every ref
  // centroid, plus the overall centroid alignment.
  std::vector<std::pair<double, double>> candidates{{0.0, 0.0}};
  for (const auto& rc : ref.cluster_centroids) {
    for (const auto& tc : test.cluster_centroids) {
      candidates.emplace_back(rc.x - tc.x, rc.y - tc.y);
    }
  }
  const Point ref_c = geom::points_centroid(ref.all_points);
  const Point test_c = geom::points_centroid(test.all_points);
  candidates.emplace_back(ref_c.x - test_c.x, ref_c.y - test_c.y);

  for (const auto& [dx, dy] : candidates) {
    const double c = score(dx, dy);
    if (c > best.conformance_t) {
      best.conformance_t = c;
      best.dx_delay_ms = dx;
      best.dy_tput_mbps = dy;
    }
  }

  // Coarse-to-fine grid refinement around the best candidate.
  double range_x = 0, range_y = 0;
  data_range(ref, test, range_x, range_y);
  double span_x = range_x * cfg.grid_span_frac;
  double span_y = range_y * cfg.grid_span_frac;
  const int steps = std::max(cfg.grid_steps / 2, 2);
  for (int level = 0; level < 3; ++level) {
    const double cx = best.dx_delay_ms;
    const double cy = best.dy_tput_mbps;
    for (int ix = -steps; ix <= steps; ++ix) {
      for (int iy = -steps; iy <= steps; ++iy) {
        if (ix == 0 && iy == 0) continue;
        const double dx = cx + span_x * ix / steps;
        const double dy = cy + span_y * iy / steps;
        const double c = score(dx, dy);
        if (c > best.conformance_t) {
          best.conformance_t = c;
          best.dx_delay_ms = dx;
          best.dy_tput_mbps = dy;
        }
      }
    }
    span_x /= steps;
    span_y /= steps;
  }

  // Exact score at the chosen translation (and at identity, which must
  // remain a lower bound).
  const double exact = conformance_translated(
      bref, btest, ref_in_ref, test_in_test, total, best.dx_delay_ms,
      best.dy_tput_mbps, 1);
  const double identity = conformance_translated(bref, btest, ref_in_ref,
                                                 test_in_test, total, 0, 0,
                                                 1);
  if (identity >= exact) {
    best.conformance_t = identity;
    best.dx_delay_ms = 0;
    best.dy_tput_mbps = 0;
  } else {
    best.conformance_t = exact;
  }
  return best;
}

ConformanceReport evaluate(std::span<const TrialPoints> ref_trials,
                           std::span<const TrialPoints> test_trials,
                           const PeConfig& cfg) {
  ConformanceReport rep;
  rep.ref_pe = build_pe(ref_trials, cfg);
  rep.test_pe = build_pe(test_trials, cfg);
  rep.conformance = conformance(rep.ref_pe, rep.test_pe);

  const PerformanceEnvelope ref_old = build_pe_old(ref_trials);
  const PerformanceEnvelope test_old = build_pe_old(test_trials);
  rep.conformance_old = conformance(ref_old, test_old);

  const TranslationResult tr = best_translation(rep.ref_pe, rep.test_pe);
  rep.conformance_t = std::max(tr.conformance_t, rep.conformance);
  rep.delta_tput_mbps = tr.delta_tput_mbps();
  rep.delta_delay_ms = tr.delta_delay_ms();
  return rep;
}

} // namespace quicbench::conformance
