#pragma once
// The conformance metrics of §3.1/§3.3:
//
//   Conformance   = (# points in the overlap of the two PEs)
//                   / (total # points in both PEs)
//   Conformance-T = the maximum conformance achievable by translating the
//                   test PE (and its points) on the delay-throughput plane
//   (Δ-throughput, Δ-delay) = the test implementation's systematic offset
//                   from the reference, i.e. minus the optimal translation.

#include "conformance/pe.h"

namespace quicbench::conformance {

// Conformance between a reference PE and a test PE. A point is "in the
// overlap" when it lies inside both envelopes.
double conformance(const PerformanceEnvelope& ref,
                   const PerformanceEnvelope& test);

struct TranslationResult {
  double conformance_t = 0;
  // Translation applied to the *test* PE to maximise the overlap.
  double dx_delay_ms = 0;
  double dy_tput_mbps = 0;
  // The implementation's offset from the reference: Δ = -translation.
  double delta_delay_ms() const { return -dx_delay_ms; }
  double delta_tput_mbps() const { return -dy_tput_mbps; }
};

struct TranslationSearchConfig {
  // Local grid refinement around the best centroid-alignment candidate.
  int grid_steps = 8;          // +/- steps per axis
  double grid_span_frac = 0.5; // span as a fraction of the data range
};

// Find the translation of `test` maximising conformance. Candidates are
// all pairings of ref/test cluster centroids, refined by a local grid.
TranslationResult best_translation(const PerformanceEnvelope& ref,
                                   const PerformanceEnvelope& test,
                                   const TranslationSearchConfig& cfg = {});

// Translate a PE (hulls, points, centroids) by (dx, dy).
PerformanceEnvelope translate_pe(const PerformanceEnvelope& pe, double dx,
                                 double dy);

// Everything the paper reports per implementation (Tables 3 and 4).
struct ConformanceReport {
  double conformance = 0;      // new (clustered) definition
  double conformance_old = 0;  // IMC'22 single-hull definition
  double conformance_t = 0;
  double delta_tput_mbps = 0;
  double delta_delay_ms = 0;
  PerformanceEnvelope ref_pe;
  PerformanceEnvelope test_pe;
};

// Full evaluation given per-trial point clouds for the reference
// implementation (self-competition) and the test implementation
// (competing against the reference).
ConformanceReport evaluate(std::span<const TrialPoints> ref_trials,
                           std::span<const TrialPoints> test_trials,
                           const PeConfig& cfg = {});

} // namespace quicbench::conformance
