#include "conformance/pe.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/attrib.h"

namespace quicbench::conformance {

using cluster::KMeansResult;
using cluster::Normalizer;
using geom::Point;
using geom::Polygon;

namespace {

std::vector<Point> pool(std::span<const TrialPoints> trials) {
  std::size_t total = 0;
  for (const auto& t : trials) total += t.size();
  std::vector<Point> all;
  all.reserve(total);
  for (const auto& t : trials) all.insert(all.end(), t.begin(), t.end());
  return all;
}

// Region covered by at least `q_count` of `hulls`: the union of all
// q_count-sized subset intersections (exact). Subset regions fully
// contained in an already-kept region are pruned.
std::vector<Polygon> quorum_region(const std::vector<Polygon>& hulls,
                                   int q_count) {
  const int m = static_cast<int>(hulls.size());
  std::vector<Polygon> regions;
  if (m == 0 || q_count <= 0) return regions;
  q_count = std::min(q_count, m);
  if (q_count == m) {
    Polygon inter = geom::intersect_all(hulls);
    if (inter.size() >= 3) regions.push_back(std::move(inter));
    return regions;
  }

  const auto contained_in = [](const Polygon& a, const Polygon& b) {
    for (const auto& v : a) {
      if (!geom::point_in_convex(b, v, 1e-7)) return false;
    }
    return true;
  };

  // Enumerate combinations of size q_count.
  std::vector<int> idx(static_cast<std::size_t>(q_count));
  for (int i = 0; i < q_count; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (;;) {
    // Fold the subset intersection directly over the selected hulls
    // (same accumulate-and-early-empty order as intersect_all) instead
    // of copying q_count polygons into a scratch vector first.
    Polygon inter = hulls[static_cast<std::size_t>(idx[0])];
    for (int j = 1; j < q_count && !inter.empty(); ++j) {
      inter = geom::clip_convex(
          inter, hulls[static_cast<std::size_t>(idx[static_cast<std::size_t>(j)])]);
    }
    if (inter.size() >= 3) {
      bool redundant = false;
      for (const auto& kept : regions) {
        if (contained_in(inter, kept)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) {
        // Drop previously-kept regions that this one subsumes.
        std::erase_if(regions, [&](const Polygon& kept) {
          return contained_in(kept, inter);
        });
        regions.push_back(std::move(inter));
      }
    }
    // Next combination.
    int pos = q_count - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] == m - q_count + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++idx[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < q_count; ++j) {
      idx[static_cast<std::size_t>(j)] =
          idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return regions;
}

// Pooled-clustering construction: one k-means over all trials' points,
// then per-trial hulls per cluster, intersected across trials.
void build_pooled(std::span<const TrialPoints> trials, int k,
                  const PeConfig& cfg, const Normalizer& norm,
                  PerformanceEnvelope& pe) {
  Rng rng(cfg.seed);
  const std::vector<Point> npts =
      cfg.normalize ? norm.apply_all(pe.all_points)
                    : std::vector<Point>(pe.all_points.begin(),
                                         pe.all_points.end());
  const KMeansResult km = cluster::kmeans(npts, k, rng, cfg.kmeans);
  const int eff_k = static_cast<int>(km.centroids.size());
  pe.k = eff_k;

  // Per-trial, per-cluster member points (original space).
  const std::size_t n_trials = trials.size();
  std::vector<std::vector<std::vector<Point>>> members(
      n_trials, std::vector<std::vector<Point>>(
                    static_cast<std::size_t>(eff_k)));
  std::size_t idx = 0;
  for (std::size_t t = 0; t < n_trials; ++t) {
    for (const Point& p : trials[t]) {
      members[t][static_cast<std::size_t>(km.assignment[idx++])].push_back(p);
    }
  }

  const std::size_t total_points = pe.all_points.size();
  for (int c = 0; c < eff_k; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    // Intersect the hulls of the trials that actually visited this
    // cluster; trials with too few points there impose no constraint.
    std::vector<Polygon> hulls;
    std::size_t cluster_points = 0;
    for (std::size_t t = 0; t < n_trials; ++t) {
      cluster_points += members[t][ci].size();
      if (members[t][ci].size() >= 3) {
        Polygon h = geom::convex_hull(members[t][ci]);
        if (h.size() >= 3) hulls.push_back(std::move(h));
      }
    }
    if (hulls.empty()) continue;
    if (static_cast<double>(cluster_points) <
        cfg.min_cluster_share * static_cast<double>(total_points)) {
      continue;
    }
    const int q_count = std::max(
        1, static_cast<int>(std::ceil(cfg.trial_quorum *
                                      static_cast<double>(n_trials))));
    if (static_cast<int>(hulls.size()) < q_count) continue;
    std::vector<Polygon> regions = quorum_region(hulls, q_count);
    if (regions.empty()) continue;
    // Centroid of the cluster's points, original units.
    std::vector<Point> all_members;
    for (std::size_t t = 0; t < n_trials; ++t) {
      all_members.insert(all_members.end(), members[t][ci].begin(),
                         members[t][ci].end());
    }
    pe.cluster_centroids.push_back(geom::points_centroid(all_members));
    for (auto& r : regions) pe.hulls.push_back(std::move(r));
  }
}

// Literal per-trial construction from the paper: cluster each trial
// independently, match clusters across trials by centroid proximity,
// intersect matched hulls. Noisier; kept for the ablation study.
void build_per_trial(std::span<const TrialPoints> trials, int k,
                     const PeConfig& cfg, const Normalizer& norm,
                     PerformanceEnvelope& pe) {
  Rng rng(cfg.seed);

  struct TrialClusters {
    KMeansResult km;                    // normalised space
    std::vector<Polygon> hulls;         // original space
    std::vector<Point> centroids_orig;  // original space
  };
  std::vector<TrialClusters> per_trial;
  per_trial.reserve(trials.size());

  for (const auto& t : trials) {
    TrialClusters tc;
    const std::vector<Point> npts =
        cfg.normalize ? norm.apply_all(t)
                      : std::vector<Point>(t.begin(), t.end());
    tc.km = cluster::kmeans(npts, k, rng, cfg.kmeans);
    const int eff_k = static_cast<int>(tc.km.centroids.size());
    tc.hulls.resize(static_cast<std::size_t>(eff_k));
    tc.centroids_orig.resize(static_cast<std::size_t>(eff_k));
    std::vector<std::vector<Point>> members(static_cast<std::size_t>(eff_k));
    for (std::size_t i = 0; i < t.size(); ++i) {
      members[static_cast<std::size_t>(tc.km.assignment[i])].push_back(t[i]);
    }
    for (int c = 0; c < eff_k; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      tc.hulls[ci] = geom::convex_hull(members[ci]);
      tc.centroids_orig[ci] = geom::points_centroid(members[ci]);
    }
    per_trial.push_back(std::move(tc));
  }

  const TrialClusters& ref = per_trial.front();
  const int eff_k = static_cast<int>(ref.km.centroids.size());
  pe.k = eff_k;

  // Match every trial's clusters against the first trial once.
  std::vector<std::vector<int>> matches(per_trial.size());
  for (std::size_t t = 1; t < per_trial.size(); ++t) {
    matches[t] = cluster::match_clusters(ref.km.centroids,
                                         per_trial[t].km.centroids);
  }

  const std::size_t total_points = pe.all_points.size();
  for (int c = 0; c < eff_k; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    std::vector<Polygon> to_intersect;
    if (ref.hulls[ci].size() >= 3) to_intersect.push_back(ref.hulls[ci]);
    for (std::size_t t = 1; t < per_trial.size(); ++t) {
      const int j = matches[t][ci];
      if (j >= 0 &&
          per_trial[t].hulls[static_cast<std::size_t>(j)].size() >= 3) {
        to_intersect.push_back(
            per_trial[t].hulls[static_cast<std::size_t>(j)]);
      }
    }
    // Quorum: enough trials must have seen this cluster; the rest impose
    // no constraint (e.g. a trial whose ProbeRTT dip fell outside the
    // truncated window).
    const bool dbg = std::getenv("QB_PE_DEBUG") != nullptr;
    const int q_count = std::max(
        1, static_cast<int>(std::ceil(
               cfg.trial_quorum * static_cast<double>(per_trial.size()))));
    if (static_cast<int>(to_intersect.size()) < q_count) {
      if (dbg) std::fprintf(stderr, "PE dbg: cluster %d quorum fail (%zu)\n",
                            c, to_intersect.size());
      continue;
    }
    std::vector<Polygon> regions = quorum_region(to_intersect, q_count);
    if (regions.empty()) {
      if (dbg) {
        std::fprintf(stderr, "PE dbg: cluster %d empty quorum region of "
                             "%zu hulls\n",
                     c, to_intersect.size());
      }
      continue;
    }
    std::vector<geom::PreparedConvex> prep;
    prep.reserve(regions.size());
    for (const auto& r : regions) prep.emplace_back(r);
    // Scalar on purpose: most pooled points lie outside each candidate
    // region, so the first-failing-edge exit in contains() beats the
    // batched mask kernels (measured 1.7x on bench_eval's eval_build_pe
    // even with lane compaction — see DESIGN.md, vectorization
    // discipline).
    std::size_t inside = 0;
    for (const auto& p : pe.all_points) {
      for (const auto& r : prep) {
        if (r.contains(p)) {
          ++inside;
          break;
        }
      }
    }
    if (static_cast<double>(inside) <
        cfg.min_cluster_share * static_cast<double>(total_points)) {
      if (dbg) std::fprintf(stderr, "PE dbg: cluster %d share fail (%zu)\n",
                            c, inside);
      continue;
    }
    for (auto& r : regions) pe.hulls.push_back(std::move(r));
    pe.cluster_centroids.push_back(ref.centroids_orig[ci]);
  }
}

} // namespace

PerformanceEnvelope build_pe_fixed_k(std::span<const TrialPoints> trials,
                                     int k, const PeConfig& cfg) {
  QB_ATTRIB_SCOPE(kEvalPe);
  PerformanceEnvelope pe;
  pe.all_points = pool(trials);
  if (pe.all_points.empty() || trials.empty()) return pe;

  const Normalizer norm =
      cfg.normalize ? Normalizer::fit(pe.all_points) : Normalizer{};
  if (cfg.per_trial_clustering) {
    build_per_trial(trials, k, cfg, norm, pe);
  } else {
    build_pooled(trials, k, cfg, norm, pe);
  }

  pe.iou = pe.all_points.empty()
               ? 0.0
               : static_cast<double>(pe.points_inside()) /
                     static_cast<double>(pe.all_points.size());
  return pe;
}

std::vector<double> iou_curve(std::span<const TrialPoints> trials,
                              const PeConfig& cfg) {
  // The selection curve always uses the paper's strict all-trials
  // intersection: that is what makes R(k) drop steeply once k exceeds
  // the natural cluster count (per-trial clusterings stop agreeing).
  // The robust quorum region would mask the signal.
  PeConfig strict = cfg;
  strict.trial_quorum = 1.0;
  std::vector<double> curve;
  for (int k = 1; k <= cfg.max_k; ++k) {
    curve.push_back(build_pe_fixed_k(trials, k, strict).iou);
  }
  return curve;
}

int select_k(std::span<const double> iou, double min_drop) {
  if (iou.size() <= 1) return 1;
  // R(k) is (approximately) decreasing; the "natural" k is the one right
  // before the steepest drop. If no drop is pronounced, the cloud has no
  // cluster structure: keep k = 1.
  int best_k = 1;
  double best_drop = min_drop;
  for (std::size_t k = 0; k + 1 < iou.size(); ++k) {
    const double drop = iou[k] - iou[k + 1];
    if (drop > best_drop) {
      best_drop = drop;
      best_k = static_cast<int>(k) + 1;  // 1-based
    }
  }
  return best_k;
}

PerformanceEnvelope build_pe(std::span<const TrialPoints> trials,
                             const PeConfig& cfg) {
  const std::vector<double> curve = iou_curve(trials, cfg);
  return build_pe_fixed_k(trials, select_k(curve, cfg.min_iou_drop), cfg);
}

PerformanceEnvelope build_pe_old(std::span<const TrialPoints> trials,
                                 double outlier_fraction) {
  PerformanceEnvelope pe;
  std::vector<Point> all = pool(trials);
  pe.all_points = all;
  if (all.empty()) return pe;
  pe.k = 1;

  const Point c = geom::points_centroid(all);
  std::sort(all.begin(), all.end(), [&c](const Point& a, const Point& b) {
    return geom::distance(a, c) < geom::distance(b, c);
  });
  const auto keep = static_cast<std::size_t>(
      std::ceil(static_cast<double>(all.size()) * (1.0 - outlier_fraction)));
  all.resize(std::max<std::size_t>(keep, 1));

  Polygon hull = geom::convex_hull(all);
  if (hull.size() >= 3) {
    pe.cluster_centroids.push_back(geom::polygon_centroid(hull));
    pe.hulls.push_back(std::move(hull));
  }
  pe.iou = static_cast<double>(pe.points_inside()) /
           static_cast<double>(pe.all_points.size());
  return pe;
}

} // namespace quicbench::conformance
