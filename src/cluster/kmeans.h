#pragma once
// k-means clustering (Hartigan-Wong-style Lloyd iterations with kmeans++
// seeding and restarts) for grouping (delay, throughput) samples before
// convex-hull construction (§3.2, "One convex hull is not enough"), plus
// the cross-trial cluster matching used to intersect corresponding hulls.

#include <span>
#include <vector>

#include "geom/geom.h"
#include "util/rng.h"

namespace quicbench::cluster {

struct KMeansResult {
  std::vector<int> assignment;          // cluster index per input point
  std::vector<geom::Point> centroids;   // k centroids
  double inertia = 0;                   // sum of squared distances
};

struct KMeansConfig {
  int restarts = 5;
  int max_iters = 100;
};

// Standard k-means. k is clamped to the number of distinct points; the
// result's centroids.size() reports the effective k.
KMeansResult kmeans(std::span<const geom::Point> points, int k, Rng& rng,
                    const KMeansConfig& cfg = {});

// Match `centroids` to `ref_centroids` one-to-one, minimising total
// distance (exact for k <= 7, greedy beyond). Returns m where m[i] is the
// index in `centroids` assigned to ref cluster i, or -1 when `centroids`
// has fewer entries.
std::vector<int> match_clusters(std::span<const geom::Point> ref_centroids,
                                std::span<const geom::Point> centroids);

// Mean/stddev normalisation so clustering is insensitive to the differing
// units of the two axes (ms vs Mbps).
struct Normalizer {
  double mean_x = 0, mean_y = 0, std_x = 1, std_y = 1;

  static Normalizer fit(std::span<const geom::Point> points);
  geom::Point apply(const geom::Point& p) const {
    return {(p.x - mean_x) / std_x, (p.y - mean_y) / std_y};
  }
  std::vector<geom::Point> apply_all(std::span<const geom::Point> pts) const;
};

} // namespace quicbench::cluster
