#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/attrib.h"

namespace quicbench::cluster {

using geom::Point;

namespace {

double sqdist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// `d2` is caller-owned scratch so restarts reuse one buffer. d2[i] is
// maintained incrementally as min over the centroids chosen so far:
// folding the newest centroid into the running min applies std::min in
// the same order as the full per-round rescan did, so the values (and
// the ascending-i total, summed in the same order) are bit-identical
// while the per-round cost drops from O(n*k) to O(n).
std::vector<Point> kmeanspp_seed(std::span<const Point> pts, int k, Rng& rng,
                                 std::vector<double>& d2) {
  std::vector<Point> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(pts[rng.uniform_int(pts.size())]);
  d2.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    d2[i] = sqdist(pts[i], centroids[0]);
  }
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0;
    for (const double d : d2) total += d;
    if (total <= 0) {
      // All points coincide with existing centroids; duplicate one.
      // (The duplicate cannot lower any d2, so no refresh is needed.)
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = pts.size() - 1;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      r -= d2[i];
      if (r <= 0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(pts[pick]);
    const Point c = centroids.back();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      d2[i] = std::min(d2[i], sqdist(pts[i], c));
    }
  }
  return centroids;
}

KMeansResult lloyd(std::span<const Point> pts, std::vector<Point> centroids,
                   int max_iters) {
  const std::size_t n = pts.size();
  const int k = static_cast<int>(centroids.size());
  KMeansResult res;
  res.assignment.assign(n, 0);
  std::vector<Point> sums(static_cast<std::size_t>(k));
  std::vector<int> counts(static_cast<std::size_t>(k), 0);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      const Point p = pts[i];
      int best = 0;
      double bestd = sqdist(p, centroids[0]);
      for (int c = 1; c < k; ++c) {
        const Point cc = centroids[static_cast<std::size_t>(c)];
        // x-axis reject: d = fl(fl(dx*dx) + fl(dy*dy)) >= fl(dx*dx)
        // under round-to-nearest (the addend is non-negative and
        // rounding is monotone), so dx*dx >= bestd already rules out
        // d < bestd — skipping is exact, not an approximation.
        const double dx = p.x - cc.x;
        const double ddx = dx * dx;
        if (ddx >= bestd) continue;
        const double dy = p.y - cc.y;
        const double d = ddx + dy * dy;
        if (d < bestd) {
          bestd = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    std::fill(sums.begin(), sums.end(), Point{});
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      sums[c].x += pts[i].x;
      sums[c].y += pts[i].y;
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (counts[ci] == 0) {
        // Empty cluster: reseat on the point farthest from its centroid.
        std::size_t far = 0;
        double fard = -1;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sqdist(
              pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
          if (d > fard) {
            fard = d;
            far = i;
          }
        }
        centroids[ci] = pts[far];
      } else {
        centroids[ci] = {sums[ci].x / counts[ci], sums[ci].y / counts[ci]};
      }
    }
  }

  res.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia +=
        sqdist(pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
  }
  res.centroids = std::move(centroids);
  return res;
}

} // namespace

KMeansResult kmeans(std::span<const Point> pts, int k, Rng& rng,
                    const KMeansConfig& cfg) {
  QB_ATTRIB_SCOPE(kEvalKmeans);
  KMeansResult best;
  if (pts.empty() || k <= 0) return best;

  // Clamp k to the number of distinct points. Only min(k, #distinct)
  // matters, so scan with early exit (k is single digits) instead of
  // sorting a full copy of the cloud.
  {
    std::vector<Point> seen;
    seen.reserve(static_cast<std::size_t>(k));
    for (const Point& p : pts) {
      if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
        seen.push_back(p);
        if (static_cast<int>(seen.size()) >= k) break;
      }
    }
    k = std::min<int>(k, static_cast<int>(seen.size()));
  }
  if (k <= 0) return best;

  best.inertia = std::numeric_limits<double>::max();
  std::vector<double> d2;  // seeding scratch, shared across restarts
  for (int r = 0; r < std::max(cfg.restarts, 1); ++r) {
    KMeansResult cand =
        lloyd(pts, kmeanspp_seed(pts, k, rng, d2), cfg.max_iters);
    if (cand.inertia < best.inertia) best = std::move(cand);
  }
  return best;
}

std::vector<int> match_clusters(std::span<const Point> ref,
                                std::span<const Point> cand) {
  const int k = static_cast<int>(ref.size());
  std::vector<int> out(static_cast<std::size_t>(k), -1);
  if (cand.empty() || k == 0) return out;

  if (k <= 7 && cand.size() <= 7 && ref.size() <= cand.size()) {
    // Exact: try all assignments of candidate indices to ref slots.
    std::vector<int> idx(cand.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end());
    double best_cost = std::numeric_limits<double>::max();
    do {
      double cost = 0;
      for (int i = 0; i < k; ++i) {
        cost += geom::distance(ref[static_cast<std::size_t>(i)],
                               cand[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]);
      }
      if (cost < best_cost) {
        best_cost = cost;
        for (int i = 0; i < k; ++i) out[static_cast<std::size_t>(i)] = idx[static_cast<std::size_t>(i)];
      }
    } while (std::next_permutation(idx.begin(), idx.end()));
    return out;
  }

  // Greedy fallback: repeatedly take the globally closest (ref, cand) pair.
  std::vector<bool> ref_used(ref.size(), false), cand_used(cand.size(), false);
  for (std::size_t round = 0; round < std::min(ref.size(), cand.size());
       ++round) {
    double best = std::numeric_limits<double>::max();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref_used[i]) continue;
      for (std::size_t j = 0; j < cand.size(); ++j) {
        if (cand_used[j]) continue;
        const double d = geom::distance(ref[i], cand[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    ref_used[bi] = true;
    cand_used[bj] = true;
    out[bi] = static_cast<int>(bj);
  }
  return out;
}

Normalizer Normalizer::fit(std::span<const Point> points) {
  Normalizer n;
  if (points.empty()) return n;
  for (const Point& p : points) {
    n.mean_x += p.x;
    n.mean_y += p.y;
  }
  n.mean_x /= static_cast<double>(points.size());
  n.mean_y /= static_cast<double>(points.size());
  double vx = 0, vy = 0;
  for (const Point& p : points) {
    vx += (p.x - n.mean_x) * (p.x - n.mean_x);
    vy += (p.y - n.mean_y) * (p.y - n.mean_y);
  }
  n.std_x = std::sqrt(vx / static_cast<double>(points.size()));
  n.std_y = std::sqrt(vy / static_cast<double>(points.size()));
  if (n.std_x < 1e-12) n.std_x = 1;
  if (n.std_y < 1e-12) n.std_y = 1;
  return n;
}

std::vector<Point> Normalizer::apply_all(std::span<const Point> pts) const {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(apply(p));
  return out;
}

} // namespace quicbench::cluster
