#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/attrib.h"
#include "util/simd.h"

namespace quicbench::cluster {

using geom::Point;

namespace {

double sqdist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// SoA mirror of the input cloud plus per-point scratch, shared across
// seeding, restarts, and Lloyd iterations so the vector kernels run over
// contiguous doubles without per-call allocation.
struct KMeansScratch {
  std::vector<double> px, py;   // the cloud, split once per kmeans() call
  std::vector<double> d2;       // seeding: running min distance
  std::vector<double> bestd;    // assignment: best distance so far
  std::vector<std::int32_t> best;  // assignment: best centroid index

  void split(std::span<const Point> pts) {
    const std::size_t n = pts.size();
    px.resize(n);
    py.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      px[i] = pts[i].x;
      py[i] = pts[i].y;
    }
  }
};

// `scr` is caller-owned so restarts reuse one set of buffers. d2[i] is
// maintained incrementally as min over the centroids chosen so far:
// folding the newest centroid into the running min applies the min in
// the same order as the full per-round rescan did, so the values (and
// the ascending-i total, summed in the same order) are bit-identical
// while the per-round cost drops from O(n*k) to O(n). The init and
// min-fold passes are per-lane-independent vector kernels; the total
// and the weighted pick stay scalar (order-dependent FP accumulation).
std::vector<Point> kmeanspp_seed(std::span<const Point> pts, int k, Rng& rng,
                                 KMeansScratch& scr) {
  std::vector<Point> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(pts[rng.uniform_int(pts.size())]);
  const std::size_t n = pts.size();
  std::vector<double>& d2 = scr.d2;
  d2.resize(n);
  util::simd::sqdist_init(scr.px.data(), scr.py.data(), n, centroids[0].x,
                          centroids[0].y, d2.data());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0;
    for (const double d : d2) total += d;
    if (total <= 0) {
      // All points coincide with existing centroids; duplicate one.
      // (The duplicate cannot lower any d2, so no refresh is needed.)
      centroids.push_back(centroids.back());
      continue;
    }
    double r = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      r -= d2[i];
      if (r <= 0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(pts[pick]);
    const Point c = centroids.back();
    util::simd::sqdist_fold_min(scr.px.data(), scr.py.data(), n, c.x, c.y,
                                d2.data());
  }
  return centroids;
}

KMeansResult lloyd(std::span<const Point> pts, std::vector<Point> centroids,
                   int max_iters, KMeansScratch& scr) {
  const std::size_t n = pts.size();
  const int k = static_cast<int>(centroids.size());
  KMeansResult res;
  res.assignment.assign(n, 0);
  std::vector<Point> sums(static_cast<std::size_t>(k));
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  std::vector<double>& bestd = scr.bestd;
  std::vector<std::int32_t>& best = scr.best;
  bestd.resize(n);
  best.resize(n);

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step, vectorized across points: one distance-init pass
    // against centroid 0, then a fold-best pass per remaining centroid.
    // The scalar loop's x-axis reject (`if (dx*dx >= bestd) continue;`
    // — exact under round-to-nearest, see util/simd.h) only ever skips
    // updates the full evaluation also rejects, so the branchless fold
    // assigns every point to the identical centroid with the identical
    // bestd bits.
    {
      QB_ATTRIB_SCOPE(kEvalKmeansAssign);
      util::simd::sqdist_init(scr.px.data(), scr.py.data(), n,
                              centroids[0].x, centroids[0].y, bestd.data());
      std::fill(best.begin(), best.end(), 0);
      for (int c = 1; c < k; ++c) {
        const Point cc = centroids[static_cast<std::size_t>(c)];
        util::simd::assign_fold_best(scr.px.data(), scr.py.data(), n, cc.x,
                                     cc.y, c, bestd.data(), best.data());
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (res.assignment[i] != best[i]) {
        res.assignment[i] = best[i];
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    std::fill(sums.begin(), sums.end(), Point{});
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(res.assignment[i]);
      sums[c].x += pts[i].x;
      sums[c].y += pts[i].y;
      ++counts[c];
    }
    for (int c = 0; c < k; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (counts[ci] == 0) {
        // Empty cluster: reseat on the point farthest from its centroid.
        std::size_t far = 0;
        double fard = -1;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sqdist(
              pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
          if (d > fard) {
            fard = d;
            far = i;
          }
        }
        centroids[ci] = pts[far];
      } else {
        centroids[ci] = {sums[ci].x / counts[ci], sums[ci].y / counts[ci]};
      }
    }
  }

  res.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia +=
        sqdist(pts[i], centroids[static_cast<std::size_t>(res.assignment[i])]);
  }
  res.centroids = std::move(centroids);
  return res;
}

} // namespace

KMeansResult kmeans(std::span<const Point> pts, int k, Rng& rng,
                    const KMeansConfig& cfg) {
  QB_ATTRIB_SCOPE(kEvalKmeans);
  KMeansResult best;
  if (pts.empty() || k <= 0) return best;

  // Clamp k to the number of distinct points. Only min(k, #distinct)
  // matters, so scan with early exit (k is single digits) instead of
  // sorting a full copy of the cloud.
  {
    std::vector<Point> seen;
    seen.reserve(static_cast<std::size_t>(k));
    for (const Point& p : pts) {
      if (std::find(seen.begin(), seen.end(), p) == seen.end()) {
        seen.push_back(p);
        if (static_cast<int>(seen.size()) >= k) break;
      }
    }
    k = std::min<int>(k, static_cast<int>(seen.size()));
  }
  if (k <= 0) return best;

  best.inertia = std::numeric_limits<double>::max();
  KMeansScratch scr;  // SoA cloud + per-point scratch, shared by restarts
  scr.split(pts);
  for (int r = 0; r < std::max(cfg.restarts, 1); ++r) {
    KMeansResult cand =
        lloyd(pts, kmeanspp_seed(pts, k, rng, scr), cfg.max_iters, scr);
    if (cand.inertia < best.inertia) best = std::move(cand);
  }
  return best;
}

std::vector<int> match_clusters(std::span<const Point> ref,
                                std::span<const Point> cand) {
  const int k = static_cast<int>(ref.size());
  std::vector<int> out(static_cast<std::size_t>(k), -1);
  if (cand.empty() || k == 0) return out;

  if (k <= 7 && cand.size() <= 7 && ref.size() <= cand.size()) {
    // Exact: try all assignments of candidate indices to ref slots.
    std::vector<int> idx(cand.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end());
    double best_cost = std::numeric_limits<double>::max();
    do {
      double cost = 0;
      for (int i = 0; i < k; ++i) {
        cost += geom::distance(ref[static_cast<std::size_t>(i)],
                               cand[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])]);
      }
      if (cost < best_cost) {
        best_cost = cost;
        for (int i = 0; i < k; ++i) out[static_cast<std::size_t>(i)] = idx[static_cast<std::size_t>(i)];
      }
    } while (std::next_permutation(idx.begin(), idx.end()));
    return out;
  }

  // Greedy fallback: repeatedly take the globally closest (ref, cand) pair.
  std::vector<bool> ref_used(ref.size(), false), cand_used(cand.size(), false);
  for (std::size_t round = 0; round < std::min(ref.size(), cand.size());
       ++round) {
    double best = std::numeric_limits<double>::max();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref_used[i]) continue;
      for (std::size_t j = 0; j < cand.size(); ++j) {
        if (cand_used[j]) continue;
        const double d = geom::distance(ref[i], cand[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    ref_used[bi] = true;
    cand_used[bj] = true;
    out[bi] = static_cast<int>(bj);
  }
  return out;
}

Normalizer Normalizer::fit(std::span<const Point> points) {
  Normalizer n;
  if (points.empty()) return n;
  for (const Point& p : points) {
    n.mean_x += p.x;
    n.mean_y += p.y;
  }
  n.mean_x /= static_cast<double>(points.size());
  n.mean_y /= static_cast<double>(points.size());
  double vx = 0, vy = 0;
  for (const Point& p : points) {
    vx += (p.x - n.mean_x) * (p.x - n.mean_x);
    vy += (p.y - n.mean_y) * (p.y - n.mean_y);
  }
  n.std_x = std::sqrt(vx / static_cast<double>(points.size()));
  n.std_y = std::sqrt(vy / static_cast<double>(points.size()));
  if (n.std_x < 1e-12) n.std_x = 1;
  if (n.std_y < 1e-12) n.std_y = 1;
  return n;
}

std::vector<Point> Normalizer::apply_all(std::span<const Point> pts) const {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(apply(p));
  return out;
}

} // namespace quicbench::cluster
