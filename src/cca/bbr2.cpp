#include "cca/bbr2.h"

#include <algorithm>

namespace quicbench::cca {

Bbr2::Bbr2(Bbr2Config cfg)
    : cfg_(cfg),
      pacing_gain_(cfg.startup_pacing_gain),
      cwnd_gain_(cfg.startup_cwnd_gain),
      max_bw_filter_(cfg.bw_filter_window_cycles),
      cwnd_(cfg.mss * cfg.initial_cwnd_packets) {}

Rate Bbr2::max_bw() const {
  return max_bw_filter_.empty() ? 0.0 : max_bw_filter_.get();
}

Rate Bbr2::bw() const {
  const Rate mb = max_bw();
  return bw_lo_ > 0 ? std::min(mb, bw_lo_) : mb;
}

std::string_view Bbr2::phase() const {
  switch (mode_) {
    case Mode::kStartup: return "startup";
    case Mode::kDrain: return "drain";
    case Mode::kProbeRtt: return "probe_rtt";
    case Mode::kProbeBw: break;
  }
  switch (cycle_) {
    case CyclePhase::kDown: return "probe_bw_down";
    case CyclePhase::kCruise: return "probe_bw_cruise";
    case CyclePhase::kRefill: return "probe_bw_refill";
    case CyclePhase::kUp: break;
  }
  return "probe_bw_up";
}

Bytes Bbr2::bdp_bytes_est(double gain) const {
  if (max_bw_filter_.empty() || rt_prop_ == time::kInfinite) {
    return cfg_.mss * cfg_.initial_cwnd_packets;
  }
  const double bdp = bw() / 8.0 * time::to_sec(rt_prop_);
  return static_cast<Bytes>(gain * bdp);
}

Bytes Bbr2::inflight_with_headroom() const {
  if (inflight_hi_ == kInfBytes) return bdp_bytes_est(1.0);
  const Bytes headroom =
      static_cast<Bytes>(cfg_.inflight_headroom *
                         static_cast<double>(inflight_hi_));
  return std::max(inflight_hi_ - headroom, min_cwnd_bytes());
}

Bytes Bbr2::probe_rtt_cwnd() const {
  return std::max(bdp_bytes_est(cfg_.probe_rtt_cwnd_gain), min_cwnd_bytes());
}

double Bbr2::round_loss_rate() const {
  const Bytes total = bytes_acked_round_ + bytes_lost_round_;
  if (total <= 0) return 0.0;
  return static_cast<double>(bytes_lost_round_) / static_cast<double>(total);
}

void Bbr2::update_round(const AckEvent& ev) {
  new_round_ = false;
  bytes_acked_round_ += ev.bytes_acked;
  if (!round_started_ || ev.largest_newly_acked >= round_end_pn_) {
    round_end_pn_ = ev.largest_sent_pn;
    round_started_ = true;
    new_round_ = true;
    on_round_start(ev);
  }
}

void Bbr2::on_round_start(const AckEvent&) {
  // Startup loss exit: count consecutive rounds whose loss rate crossed
  // the threshold; `startup_loss_rounds` of them mean the pipe is full
  // and further exponential growth only feeds the queue.
  if (mode_ == Mode::kStartup) {
    if (bytes_lost_round_ > 0 && round_loss_rate() > cfg_.loss_thresh) {
      ++lossy_round_count_;
    } else {
      lossy_round_count_ = 0;
    }
  }
  // Advance the bw-filter epoch once per round until ProbeBW's cycle
  // structure takes over (then enter_down advances it per cycle).
  if (mode_ == Mode::kStartup || mode_ == Mode::kDrain) {
    ++bw_epoch_;
  }
  bytes_acked_round_ = 0;
  bytes_lost_round_ = 0;
  loss_round_applied_ = false;
}

void Bbr2::update_max_bw(const AckEvent& ev) {
  // ProbeRTT's throttled delivery says nothing about the bottleneck.
  if (mode_ != Mode::kProbeRtt && ev.rate_valid &&
      (!ev.rate_app_limited || ev.delivery_rate > max_bw())) {
    max_bw_filter_.update(bw_epoch_, ev.delivery_rate);
    max_bw_filter_.set_window(cfg_.bw_filter_window_cycles);
    max_bw_filter_.expire(bw_epoch_);
  }
}

void Bbr2::update_min_rtt(const AckEvent& ev) {
  if (ev.rtt <= 0) return;
  rt_prop_expired_ = ev.now > rt_prop_stamp_ + cfg_.probe_rtt_interval;
  if (ev.rtt <= rt_prop_ || rt_prop_expired_) {
    rt_prop_ = ev.rtt;
    rt_prop_stamp_ = ev.now;
  }
}

void Bbr2::check_startup(const AckEvent& ev) {
  if (mode_ != Mode::kStartup || filled_pipe_) return;
  if (new_round_) {
    if (max_bw() >= full_bw_ * 1.25) {
      full_bw_ = max_bw();
      full_bw_count_ = 0;
    } else if (++full_bw_count_ >= cfg_.full_bw_rounds) {
      filled_pipe_ = true;
    }
    if (!filled_pipe_ && lossy_round_count_ >= cfg_.startup_loss_rounds) {
      // Loss-based exit: the pipe is full even though the bw plateau has
      // not registered yet. Cap in-flight at what the path sustained.
      filled_pipe_ = true;
      inflight_hi_ = std::max(
          std::max(ev.bytes_in_flight, bdp_bytes_est(1.0)), min_cwnd_bytes());
    }
  }
}

void Bbr2::check_drain(const AckEvent& ev) {
  if (mode_ == Mode::kStartup && filled_pipe_) {
    mode_ = Mode::kDrain;
    pacing_gain_ = cfg_.drain_pacing_gain;
    cwnd_gain_ = cfg_.startup_cwnd_gain;
  }
  if (mode_ == Mode::kDrain && ev.bytes_in_flight <= bdp_bytes_est(1.0)) {
    mode_ = Mode::kProbeBw;
    cwnd_gain_ = cfg_.cwnd_gain;
    enter_down(ev.now);
  }
}

void Bbr2::enter_down(Time now) {
  cycle_ = CyclePhase::kDown;
  pacing_gain_ = cfg_.probe_down_pacing_gain;
  cycle_stamp_ = now;
  // One probe cycle completed: advance the max-bw filter window and start
  // the clock on the next probe.
  ++bw_epoch_;
  max_bw_filter_.expire(bw_epoch_);
  probe_wait_deadline_ = now + cfg_.bw_probe_wait;
}

void Bbr2::enter_cruise() {
  cycle_ = CyclePhase::kCruise;
  pacing_gain_ = 1.0;
}

void Bbr2::enter_refill(const AckEvent& ev) {
  cycle_ = CyclePhase::kRefill;
  pacing_gain_ = 1.0;
  // The short-term loss bounds expire with the new probe: the point of
  // Refill is to re-fill the pipe to the long-term estimate before Up
  // pushes beyond it.
  bw_lo_ = 0;
  inflight_lo_ = kInfBytes;
  // Exit to Up after one full round of refilling.
  refill_end_pn_ = ev.largest_sent_pn;
}

void Bbr2::enter_up(Time now) {
  cycle_ = CyclePhase::kUp;
  pacing_gain_ = cfg_.probe_up_pacing_gain;
  cycle_stamp_ = now;
}

void Bbr2::update_probe_bw_cycle(const AckEvent& ev) {
  if (mode_ != Mode::kProbeBw) return;
  switch (cycle_) {
    case CyclePhase::kDown:
      if (ev.bytes_in_flight <= inflight_with_headroom()) enter_cruise();
      break;
    case CyclePhase::kCruise:
      if (ev.now >= probe_wait_deadline_) enter_refill(ev);
      break;
    case CyclePhase::kRefill:
      if (ev.largest_newly_acked >= refill_end_pn_) enter_up(ev.now);
      break;
    case CyclePhase::kUp: {
      // Raise the long-term bound while the path absorbs the probe.
      if (inflight_hi_ != kInfBytes && ev.bytes_in_flight > inflight_hi_) {
        inflight_hi_ = ev.bytes_in_flight;
      }
      const bool probe_filled =
          ev.now - cycle_stamp_ > rt_prop_ &&
          ev.bytes_in_flight >= bdp_bytes_est(cfg_.probe_up_pacing_gain);
      const bool loss_ended =
          bytes_lost_round_ > 0 && round_loss_rate() > cfg_.loss_thresh;
      if (probe_filled || loss_ended) enter_down(ev.now);
      break;
    }
  }
}

void Bbr2::check_probe_rtt(const AckEvent& ev) {
  if (mode_ != Mode::kProbeRtt && rt_prop_expired_ && filled_pipe_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    probe_rtt_done_stamp_ = -1;
  }
  if (mode_ != Mode::kProbeRtt) return;
  const Bytes probe_cwnd = probe_rtt_cwnd();
  if (probe_rtt_done_stamp_ < 0 && ev.bytes_in_flight <= probe_cwnd) {
    probe_rtt_done_stamp_ = ev.now + cfg_.probe_rtt_duration;
    probe_rtt_round_done_ = false;
    probe_rtt_round_end_ = ev.largest_sent_pn;
  }
  if (probe_rtt_done_stamp_ < 0) return;
  if (ev.largest_newly_acked >= probe_rtt_round_end_) {
    probe_rtt_round_done_ = true;
  }
  if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_stamp_) {
    rt_prop_stamp_ = ev.now;
    cwnd_ = std::max(cwnd_, prior_cwnd_);
    if (filled_pipe_) {
      mode_ = Mode::kProbeBw;
      cwnd_gain_ = cfg_.cwnd_gain;
      enter_down(ev.now);
    } else {
      mode_ = Mode::kStartup;
      pacing_gain_ = cfg_.startup_pacing_gain;
      cwnd_gain_ = cfg_.startup_cwnd_gain;
    }
  }
}

void Bbr2::update_cwnd(const AckEvent& ev) {
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = probe_rtt_cwnd();
    return;
  }
  const Bytes target = bdp_bytes_est(cwnd_gain_);
  if (filled_pipe_) {
    cwnd_ = std::min(cwnd_ + ev.bytes_acked, target);
  } else {
    // Startup: grow unconditionally (slow-start-like).
    cwnd_ += ev.bytes_acked;
  }
  // Volume-model bounds. inflight_lo is the short-term post-loss bound;
  // inflight_hi the long-term probe-discovered bound, shaved by the
  // cruise headroom when not actively probing.
  Bytes cap = kInfBytes;
  if (inflight_hi_ != kInfBytes) {
    cap = (mode_ == Mode::kProbeBw && cycle_ == CyclePhase::kCruise)
              ? inflight_with_headroom()
              : inflight_hi_;
  }
  if (inflight_lo_ != kInfBytes) cap = std::min(cap, inflight_lo_);
  cwnd_ = std::min(cwnd_, cap);
  cwnd_ = std::max(cwnd_, min_cwnd_bytes());
}

void Bbr2::on_ack(const AckEvent& ev) {
  update_round(ev);
  update_max_bw(ev);
  update_min_rtt(ev);
  check_startup(ev);
  check_drain(ev);
  update_probe_bw_cycle(ev);
  check_probe_rtt(ev);
  update_cwnd(ev);
  sync_phase(ev.now);
}

void Bbr2::on_loss(const LossEvent& ev) {
  bytes_lost_round_ += ev.bytes_lost;

  // Short-term bounds: one multiplicative decrease per round.
  if (!loss_round_applied_) {
    loss_round_applied_ = true;
    const Rate base_bw = bw_lo_ > 0 ? bw_lo_ : max_bw();
    if (base_bw > 0) bw_lo_ = cfg_.beta * base_bw;
    const Bytes base_inflight =
        inflight_lo_ != kInfBytes ? inflight_lo_ : cwnd_;
    inflight_lo_ = std::max(
        static_cast<Bytes>(cfg_.beta * static_cast<double>(base_inflight)),
        min_cwnd_bytes());
  }

  // A bandwidth probe that ran into excessive loss caps inflight_hi at
  // what the path actually carried.
  if (mode_ == Mode::kProbeBw && cycle_ == CyclePhase::kUp &&
      round_loss_rate() > cfg_.loss_thresh) {
    inflight_hi_ = std::max(ev.bytes_in_flight, min_cwnd_bytes());
    enter_down(ev.now);
  }

  if (ev.is_persistent_congestion) {
    cwnd_ = min_cwnd_bytes();
    bw_lo_ = 0;
    inflight_lo_ = kInfBytes;
  }
  cwnd_ = std::min(cwnd_, std::max(inflight_lo_, min_cwnd_bytes()));
  cwnd_ = std::max(cwnd_, min_cwnd_bytes());
  sync_phase(ev.now);
}

void Bbr2::on_spurious_loss(const SpuriousLossEvent& ev) {
  // The loss was noise, not congestion: drop the short-term bounds so the
  // model returns to the long-term estimates.
  bw_lo_ = 0;
  inflight_lo_ = kInfBytes;
  sync_phase(ev.now);
}

Bytes Bbr2::cwnd() const { return cwnd_; }

std::optional<Rate> Bbr2::pacing_rate() const {
  if (max_bw_filter_.empty() || rt_prop_ == time::kInfinite) {
    // No estimates yet: stay window-limited (burst out the initial cwnd).
    return std::nullopt;
  }
  return pacing_gain_ * bw() * cfg_.pacing_rate_scale;
}

} // namespace quicbench::cca
