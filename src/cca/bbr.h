#pragma once
// BBR v1 (Cardwell et al., 2017) with the Startup / Drain / ProbeBW /
// ProbeRTT state machine, a 10-round windowed-max bottleneck-bandwidth
// filter and a 10-second windowed-min RTprop filter.
//
// Variant knobs reproduce the deviations the paper documents:
//  - `cwnd_gain` (kernel default 2.0; xquic ships 2.5, §5 / Fig 14)
//  - `pacing_rate_scale` (mvfst multiplies its final sending rate by
//    ~1.2x, §4.1.2 / Table 4)

#include "cca/cca.h"
#include "util/stats.h"

namespace quicbench::cca {

struct BbrConfig {
  Bytes mss = 1448;
  int initial_cwnd_packets = 10;
  int min_cwnd_packets = 4;

  double cwnd_gain = 2.0;
  double pacing_rate_scale = 1.0;  // stack-level scaling of the final rate

  double startup_gain = 2.885;  // 2 / ln(2)
  double drain_gain = 1.0 / 2.885;
  Time probe_rtt_interval = time::sec(10);
  Time probe_rtt_duration = time::ms(200);
  Time min_rtt_window = time::sec(10);
  int btlbw_window_rounds = 10;
};

class Bbr : public CongestionController {
 public:
  explicit Bbr(BbrConfig cfg);

  void on_packet_sent(const SentPacketEvent& ev) override;
  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  Bytes cwnd() const override;
  std::optional<Rate> pacing_rate() const override;
  bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  std::string name() const override { return "bbr"; }
  std::string_view phase() const override {
    switch (mode_) {
      case Mode::kStartup: return "startup";
      case Mode::kDrain: return "drain";
      case Mode::kProbeBw: return "probe_bw";
      case Mode::kProbeRtt: break;
    }
    return "probe_rtt";
  }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  Rate btl_bw() const;
  Time rt_prop() const { return rt_prop_; }
  bool filled_pipe() const { return filled_pipe_; }
  int probe_bw_phase() const { return cycle_index_; }

 private:
  Bytes bdp_bytes_est(double gain) const;
  void update_round(const AckEvent& ev);
  void update_filters(const AckEvent& ev);
  void check_full_pipe();
  void check_drain(const AckEvent& ev);
  void update_probe_bw_cycle(const AckEvent& ev);
  void check_probe_rtt(const AckEvent& ev);
  void update_cwnd(const AckEvent& ev);

  BbrConfig cfg_;
  Mode mode_ = Mode::kStartup;

  double pacing_gain_;
  double cwnd_gain_;

  stats::WindowedMax<double> btl_bw_filter_;  // bits/sec, windowed by round
  Time rt_prop_ = time::kInfinite;
  Time rt_prop_stamp_ = 0;
  bool rt_prop_expired_ = false;

  // Round counting via packet numbers.
  std::uint64_t round_end_pn_ = 0;
  bool round_started_ = false;
  std::uint64_t round_count_ = 0;
  bool new_round_ = false;

  // Startup full-pipe detection.
  bool filled_pipe_ = false;
  Rate full_bw_ = 0;
  int full_bw_count_ = 0;

  // ProbeBW gain cycling.
  int cycle_index_ = 0;
  Time cycle_stamp_ = 0;
  bool loss_in_round_ = false;

  // ProbeRTT.
  Time probe_rtt_done_stamp_ = -1;
  bool probe_rtt_round_done_ = false;
  std::uint64_t probe_rtt_round_end_ = 0;

  Bytes cwnd_;
  Bytes prior_cwnd_ = 0;

  static constexpr double kPacingGainCycle[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
};

} // namespace quicbench::cca
