#pragma once
// Congestion-controller interface shared by the kernel-reference CCAs
// (NewReno, CUBIC, BBR) and all per-stack QUIC variants.
//
// The transport feeds the controller three kinds of events — sends, acks
// and losses — and polls it for the congestion window and (optionally) a
// pacing rate. The event structs carry the delivery-rate bookkeeping BBR
// needs, so controllers stay stateless with respect to the transport's
// internals.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/units.h"

namespace quicbench::cca {

// Per-packet info captured at send time.
struct SentPacketEvent {
  Time now = 0;
  std::uint64_t pn = 0;
  Bytes size = 0;
  Bytes bytes_in_flight = 0;  // including this packet
  bool is_retransmission = false;
  bool app_limited = false;
};

// One call per processed ACK frame (which may newly ack several packets).
struct AckEvent {
  Time now = 0;
  Bytes bytes_acked = 0;       // newly acked by this frame
  Bytes bytes_in_flight = 0;   // after removing acked packets
  Time rtt = 0;                // latest RTT sample (0 if none this frame)
  Time smoothed_rtt = 0;
  Time min_rtt = 0;            // transport-global minimum
  std::uint64_t largest_newly_acked = 0;
  Time largest_newly_acked_sent_time = 0;
  std::uint64_t largest_sent_pn = 0;  // highest pn sent so far (round tracking)

  // Delivery-rate sample (BBR-style), valid when `rate_valid`.
  bool rate_valid = false;
  Rate delivery_rate = 0;
  bool rate_app_limited = false;

  // Size of the same-tick ACK train this event represents. Same-tick
  // duplicate frames coalesce without reprocessing (see
  // SenderEndpoint::set_coalesce_same_tick_acks); the dups absorbed
  // since the previous frame ride along on this one, so a CCA can see
  // the duplication pressure without the transport re-walking the
  // scoreboard. Current controllers ignore it (the train's delivery
  // sample is by construction identical to this frame's).
  std::int32_t train_frames = 1;
};

struct LossEvent {
  Time now = 0;
  Bytes bytes_lost = 0;
  Bytes bytes_in_flight = 0;  // after removing lost packets
  std::uint64_t largest_lost_pn = 0;
  Time largest_lost_sent_time = 0;
  bool is_persistent_congestion = false;
};

// A packet previously declared lost was later acknowledged.
struct SpuriousLossEvent {
  Time now = 0;
  std::uint64_t pn = 0;
  Bytes bytes = 0;
  Time sent_time = 0;  // when the spuriously-marked packet was sent
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(const SentPacketEvent&) {}
  virtual void on_ack(const AckEvent& ev) = 0;
  virtual void on_loss(const LossEvent& ev) = 0;
  virtual void on_spurious_loss(const SpuriousLossEvent&) {}

  // Congestion window in bytes. The transport never sends beyond it
  // (except PTO probes).
  virtual Bytes cwnd() const = 0;

  // Pacing rate in bits/sec, or nullopt for pure ack-clocked (window
  // limited) sending.
  virtual std::optional<Rate> pacing_rate() const { return std::nullopt; }

  virtual bool in_slow_start() const { return false; }

  virtual std::string name() const = 0;

  // --- phase observation (flight-recorder hooks) -----------------------
  //
  // Each controller exposes its current phase as a stable name drawn from
  // a small static set:
  //   Reno:  slow_start | congestion_avoidance | recovery
  //   CUBIC: slow_start | conservative_slow_start (HyStart++ CSS) |
  //          congestion_avoidance | recovery
  //   BBR:   startup | drain | probe_bw | probe_rtt
  // and reports transitions through the phase callback (from, to). The
  // hooks observe only — they must never influence controller behaviour —
  // so instrumented and uninstrumented runs stay bit-identical.

  using PhaseCallback =
      std::function<void(Time now, std::string_view from, std::string_view to)>;

  void set_phase_callback(PhaseCallback cb) { phase_cb_ = std::move(cb); }

  // Current phase name; string_views point at static storage.
  virtual std::string_view phase() const {
    return in_slow_start() ? "slow_start" : "congestion_avoidance";
  }

 protected:
  // Compare the current phase against the last synced one and notify on
  // change. Controllers call this at the end of each event handler, which
  // covers every transition site without instrumenting each assignment.
  void sync_phase(Time now) {
    if (!phase_cb_ && !last_phase_.empty()) return;  // nothing to observe
    const std::string_view p = phase();
    if (last_phase_.empty()) {
      last_phase_ = p;  // first observation: no transition to report
      return;
    }
    if (p != last_phase_) {
      if (phase_cb_) phase_cb_(now, last_phase_, p);
      last_phase_ = p;
    }
  }

 private:
  PhaseCallback phase_cb_;
  std::string_view last_phase_;
};

using CcaFactory = std::unique_ptr<CongestionController> (*)();

// Helper shared by loss-based CCAs: one cwnd reduction per congestion
// event ("round"), keyed by the send time of the lost packet relative to
// the start of the current recovery episode (QUIC RFC 9002 semantics,
// equivalent to TCP's once-per-window rule).
class RecoveryEpochTracker {
 public:
  // Returns true if this loss starts a new congestion event.
  bool on_congestion_event(Time now, Time lost_sent_time) {
    if (lost_sent_time <= recovery_start_) return false;
    recovery_start_ = now;
    return true;
  }
  Time recovery_start() const { return recovery_start_; }
  void reset() { recovery_start_ = -1; }

 private:
  Time recovery_start_ = -1;
};

} // namespace quicbench::cca
