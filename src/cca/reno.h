#pragma once
// NewReno congestion control (bytes-based, appropriate-byte-counting),
// matching the Linux kernel / RFC 9002 Reno behaviour: slow start doubles
// per RTT, congestion avoidance adds one MSS per RTT, multiplicative
// decrease halves the window once per congestion event.

#include "cca/cca.h"

namespace quicbench::cca {

struct RenoConfig {
  Bytes mss = 1448;
  int initial_cwnd_packets = 10;
  int min_cwnd_packets = 2;
  double beta = 0.5;  // multiplicative-decrease factor
  // Stack-artifact hook: scale the additive increase (1.0 = standard).
  double ai_scale = 1.0;
};

class Reno : public CongestionController {
 public:
  explicit Reno(RenoConfig cfg);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  Bytes cwnd() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::string name() const override { return "reno"; }
  std::string_view phase() const override {
    if (in_recovery_) return "recovery";
    return in_slow_start() ? "slow_start" : "congestion_avoidance";
  }

  Bytes ssthresh() const { return ssthresh_; }

 private:
  RenoConfig cfg_;
  Bytes cwnd_;
  Bytes ssthresh_;
  double ca_accumulator_ = 0.0;  // fractional cwnd growth in CA
  RecoveryEpochTracker epoch_;
  // Observation-only recovery overlay (RFC 9002 semantics: in recovery
  // until a packet sent after the recovery episode began is acked). Never
  // consulted by the control law.
  bool in_recovery_ = false;
};

} // namespace quicbench::cca
