#include "cca/cubic.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace quicbench::cca {

namespace {
constexpr double kSecPerNs = 1e-9;
}

Cubic::Cubic(CubicConfig cfg)
    : cfg_(cfg),
      cwnd_(cfg.mss * cfg.initial_cwnd_packets),
      ssthresh_(std::numeric_limits<Bytes>::max()) {}

bool Cubic::in_slow_start() const { return phase_ != Phase::kAvoidance; }

double Cubic::effective_beta() const {
  // chromium-style emulated connections: beta_hat = (n - 1 + beta) / n.
  const double n = static_cast<double>(std::max(cfg_.emulated_flows, 1));
  return (n - 1.0 + cfg_.beta) / n;
}

double Cubic::aimd_alpha() const {
  // TCP-friendly additive increase; chromium scales by n^2.
  const double n = static_cast<double>(std::max(cfg_.emulated_flows, 1));
  const double b = effective_beta();
  return 3.0 * n * n * (1.0 - b) / (1.0 + b);
}

void Cubic::hystart_round_start(std::uint64_t largest_sent_pn) {
  last_round_min_rtt_ = current_round_min_rtt_;
  current_round_min_rtt_ = time::kInfinite;
  rtt_sample_count_ = 0;
  round_end_pn_ = largest_sent_pn;
  round_open_ = true;
  round_start_time_ = -1;  // stamped by the first ack of the round
  if (phase_ == Phase::kCss) {
    ++css_rounds_;
    if (css_rounds_ >= kCssRounds) {
      // CSS confirmed the delay increase: leave slow start for good.
      enter_avoidance_from(cwnd_);
    }
  }
}

void Cubic::hystart_on_ack(const AckEvent& ev) {
  if (!cfg_.hystart) return;
  if (!round_open_ || ev.largest_newly_acked >= round_end_pn_) {
    hystart_round_start(ev.largest_sent_pn);
  }
  if (ev.rtt <= 0) return;
  if (round_start_time_ < 0) round_start_time_ = ev.now;
  current_round_min_rtt_ = std::min(current_round_min_rtt_, ev.rtt);
  delay_min_ = std::min(delay_min_, ev.rtt);
  ++rtt_sample_count_;

  if (cfg_.classic_hystart) {
    // Kernel-style HyStart: two detectors, immediate exit to CA.
    if (phase_ != Phase::kSlowStart) return;
    // (1) ACK train: consecutive closely-spaced acks spanning at least
    // half the minimum RTT mean the pipe is full.
    if (cfg_.hystart_ack_train) {
      if (last_ack_time_ >= 0 && ev.now - last_ack_time_ <= time::ms(2) &&
          round_start_time_ >= 0 &&
          ev.now - round_start_time_ >= delay_min_ / 2 &&
          delay_min_ != time::kInfinite) {
        last_ack_time_ = ev.now;
        enter_avoidance_from(cwnd_);
        return;
      }
    }
    last_ack_time_ = ev.now;
    // (2) Delay increase, after enough samples in the round.
    if (rtt_sample_count_ >= kHystartMinRttSamples &&
        delay_min_ != time::kInfinite) {
      const Time eta =
          std::clamp<Time>(delay_min_ / 8, time::ms(4), time::ms(16));
      if (current_round_min_rtt_ >= delay_min_ + eta) {
        enter_avoidance_from(cwnd_);
      }
    }
    return;
  }

  // HyStart++ (RFC 9406): delay detector moves to a conservative
  // slow-start phase first.
  if (phase_ == Phase::kSlowStart &&
      rtt_sample_count_ >= kHystartMinRttSamples &&
      last_round_min_rtt_ != time::kInfinite) {
    const Time eta = std::clamp<Time>(last_round_min_rtt_ / 8, time::ms(4),
                                      time::ms(16));
    if (current_round_min_rtt_ >= last_round_min_rtt_ + eta) {
      css_baseline_min_rtt_ = last_round_min_rtt_;
      phase_ = Phase::kCss;
      css_rounds_ = 0;
    }
  } else if (phase_ == Phase::kCss &&
             current_round_min_rtt_ < css_baseline_min_rtt_) {
    // Delay increase proved transient: resume standard slow start.
    phase_ = Phase::kSlowStart;
  }
}

void Cubic::enter_avoidance_from(Bytes at_cwnd) {
  phase_ = Phase::kAvoidance;
  ssthresh_ = std::min(ssthresh_, at_cwnd);
  epoch_start_ = -1;
  if (w_max_ <= 0.0) {
    w_max_ = static_cast<double>(at_cwnd) / static_cast<double>(cfg_.mss);
  }
}

void Cubic::on_ack(const AckEvent& ev) {
  if (in_recovery_ &&
      ev.largest_newly_acked_sent_time > epoch_.recovery_start()) {
    in_recovery_ = false;
  }
  // RFC 8312bis spurious-congestion classifier: if a full round trip has
  // passed since the last backoff without a further congestion event,
  // deem the event spurious and undo it.
  if (cfg_.spurious_loss_rollback && pre_backoff_.valid &&
      !rolled_back_current_ && last_backoff_time_ >= 0 &&
      ev.now >= last_backoff_time_ + 2 * ev.smoothed_rtt) {
    rollback();
  }
  switch (phase_) {
    case Phase::kSlowStart:
      cwnd_ += ev.bytes_acked;
      hystart_on_ack(ev);
      if (cwnd_ >= ssthresh_) enter_avoidance_from(cwnd_);
      break;
    case Phase::kCss:
      cwnd_ += ev.bytes_acked / kCssGrowthDivisor;
      hystart_on_ack(ev);
      if (cwnd_ >= ssthresh_) enter_avoidance_from(cwnd_);
      break;
    case Phase::kAvoidance:
      cubic_update(ev);
      break;
  }
  sync_phase(ev.now);
}

void Cubic::cubic_update(const AckEvent& ev) {
  const double mss = static_cast<double>(cfg_.mss);
  const double cwnd_seg = static_cast<double>(cwnd_) / mss;

  if (epoch_start_ < 0) {
    epoch_start_ = ev.now;
    if (cwnd_seg < w_max_) {
      k_ = std::cbrt((w_max_ - cwnd_seg) / cfg_.c);
    } else {
      k_ = 0.0;
      w_max_ = cwnd_seg;
    }
    w_est_ = cwnd_seg;
    ca_accumulator_ = 0.0;
  }

  // Target window one RTT ahead, per RFC 8312.
  const double t =
      static_cast<double>(ev.now - epoch_start_ + ev.smoothed_rtt) * kSecPerNs;
  const double w_cubic = cfg_.c * std::pow(t - k_, 3.0) + w_max_;

  // TCP-friendly region estimate (segments).
  if (cfg_.tcp_friendly) {
    w_est_ += aimd_alpha() * static_cast<double>(ev.bytes_acked) /
              static_cast<double>(cwnd_);
  }

  double target_seg = w_cubic;
  if (cfg_.tcp_friendly && w_est_ > target_seg) target_seg = w_est_;

  if (target_seg > cwnd_seg) {
    // Grow toward the target proportionally to bytes acked, capped at
    // one increment per two acked bytes (ABC-style safety cap).
    double grow_bytes = (target_seg - cwnd_seg) / cwnd_seg *
                        static_cast<double>(ev.bytes_acked);
    grow_bytes =
        std::min(grow_bytes, static_cast<double>(ev.bytes_acked) / 2.0);
    ca_accumulator_ += grow_bytes;
    if (ca_accumulator_ >= 1.0) {
      const auto inc = static_cast<Bytes>(ca_accumulator_);
      cwnd_ += inc;
      ca_accumulator_ -= static_cast<double>(inc);
    }
  }
}

void Cubic::on_loss(const LossEvent& ev) {
  const Bytes min_cwnd = cfg_.mss * cfg_.min_cwnd_packets;
  const double mss = static_cast<double>(cfg_.mss);

  if (ev.is_persistent_congestion) {
    epoch_.on_congestion_event(ev.now, ev.largest_lost_sent_time);
    ssthresh_ = std::max<Bytes>(
        static_cast<Bytes>(static_cast<double>(cwnd_) * effective_beta()),
        min_cwnd);
    cwnd_ = min_cwnd;
    w_max_ = 0.0;
    epoch_start_ = -1;
    phase_ = Phase::kSlowStart;
    pre_backoff_.valid = false;
    in_recovery_ = true;
    sync_phase(ev.now);
    return;
  }

  if (!epoch_.on_congestion_event(ev.now, ev.largest_lost_sent_time)) {
    sync_phase(ev.now);
    return;
  }

  // Snapshot for a possible RFC 8312bis rollback.
  pre_backoff_ = Snapshot{cwnd_, ssthresh_, w_max_, k_, epoch_start_, true};
  last_backoff_time_ = ev.now;
  rolled_back_current_ = false;

  const double cwnd_seg = static_cast<double>(cwnd_) / mss;
  if (cfg_.fast_convergence && cwnd_seg < w_max_) {
    w_max_ = cwnd_seg * (2.0 - effective_beta()) / 2.0;
  } else {
    w_max_ = cwnd_seg;
  }
  cwnd_ = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(cwnd_) * effective_beta()),
      min_cwnd);
  ssthresh_ = cwnd_;
  epoch_start_ = -1;
  phase_ = Phase::kAvoidance;
  in_recovery_ = true;
  sync_phase(ev.now);
}

void Cubic::on_spurious_loss(const SpuriousLossEvent& ev) {
  if (!cfg_.spurious_loss_rollback) return;
  if (!pre_backoff_.valid || rolled_back_current_) return;
  // The packet must have been sent before the most recent backoff, i.e. it
  // was part of the congestion event we are about to undo.
  if (ev.sent_time > last_backoff_time_) return;
  rollback();
  sync_phase(ev.now);
}

void Cubic::rollback() {
  cwnd_ = std::max(cwnd_, pre_backoff_.cwnd);
  ssthresh_ = pre_backoff_.ssthresh;
  w_max_ = pre_backoff_.w_max;
  k_ = pre_backoff_.k;
  epoch_start_ = -1;  // recompute K against the restored w_max
  rolled_back_current_ = true;
}

} // namespace quicbench::cca
