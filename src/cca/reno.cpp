#include "cca/reno.h"

#include <algorithm>
#include <limits>

namespace quicbench::cca {

Reno::Reno(RenoConfig cfg)
    : cfg_(cfg),
      cwnd_(cfg.mss * cfg.initial_cwnd_packets),
      ssthresh_(std::numeric_limits<Bytes>::max()) {}

void Reno::on_ack(const AckEvent& ev) {
  if (in_recovery_ &&
      ev.largest_newly_acked_sent_time > epoch_.recovery_start()) {
    in_recovery_ = false;
  }
  if (in_slow_start()) {
    cwnd_ += ev.bytes_acked;
    if (cwnd_ > ssthresh_) cwnd_ = ssthresh_ + (cwnd_ - ssthresh_) / 2;
    sync_phase(ev.now);
    return;
  }
  // Congestion avoidance: +1 MSS per cwnd's worth of acked bytes.
  ca_accumulator_ += cfg_.ai_scale * static_cast<double>(cfg_.mss) *
                     static_cast<double>(ev.bytes_acked) /
                     static_cast<double>(cwnd_);
  if (ca_accumulator_ >= 1.0) {
    const auto inc = static_cast<Bytes>(ca_accumulator_);
    cwnd_ += inc;
    ca_accumulator_ -= static_cast<double>(inc);
  }
  sync_phase(ev.now);
}

void Reno::on_loss(const LossEvent& ev) {
  const Bytes min_cwnd = cfg_.mss * cfg_.min_cwnd_packets;
  if (ev.is_persistent_congestion) {
    ssthresh_ = std::max<Bytes>(
        static_cast<Bytes>(static_cast<double>(cwnd_) * cfg_.beta), min_cwnd);
    cwnd_ = min_cwnd;
    epoch_.on_congestion_event(ev.now, ev.largest_lost_sent_time);
    in_recovery_ = true;
    sync_phase(ev.now);
    return;
  }
  if (!epoch_.on_congestion_event(ev.now, ev.largest_lost_sent_time)) {
    sync_phase(ev.now);
    return;
  }
  ssthresh_ = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(cwnd_) * cfg_.beta), min_cwnd);
  cwnd_ = ssthresh_;
  in_recovery_ = true;
  sync_phase(ev.now);
}

} // namespace quicbench::cca
