#pragma once
// BBR v2 (draft-cardwell-iccrg-bbr-congestion-control-02 structure): the
// Startup / Drain / ProbeBW / ProbeRTT machine of v1, with ProbeBW split
// into the Down -> Cruise -> Refill -> Up cycle and an explicit loss
// model ("An Evaluation of BBR and its variants", PAPERS.md):
//
//  - inflight_hi: long-term upper bound on data in flight, raised while
//    bandwidth probes survive and clamped when a probe's per-round loss
//    rate crosses `loss_thresh` (the ECN-less loss signal);
//  - bw_lo / inflight_lo: short-term per-round bounds after loss
//    (multiplicative decrease by `beta`), reset when the next probe
//    begins (Refill);
//  - Cruise keeps `inflight_headroom` of free space below inflight_hi so
//    coexisting flows can be discovered;
//  - ProbeRTT arrives every `probe_rtt_interval` (5 s, down from v1's
//    10 s) and sinks cwnd to a 0.5x BDP floor instead of 4 packets.
//
// Variant knobs mirror the per-stack deviations the registry documents
// (`pacing_rate_scale`, `loss_thresh`, `inflight_headroom`, `cwnd_gain`).
// The controller is deterministic: where the draft randomises the
// bw-probe wait time, a fixed `bw_probe_wait` dwell is used, so seeded
// trials reproduce bit-identically.

#include "cca/cca.h"
#include "util/stats.h"

namespace quicbench::cca {

struct Bbr2Config {
  Bytes mss = 1448;
  int initial_cwnd_packets = 10;
  int min_cwnd_packets = 4;

  // Gains. Startup paces at 4ln2 (reaches full pipe in ~2 RTTs but
  // overshoots less than v1's 2/ln2); ProbeBW probes up at 1.25x and
  // drains at 0.9x.
  double startup_pacing_gain = 2.773;
  double startup_cwnd_gain = 2.885;
  double drain_pacing_gain = 1.0 / 2.773;
  double cwnd_gain = 2.0;
  double probe_up_pacing_gain = 1.25;
  double probe_down_pacing_gain = 0.9;
  double pacing_rate_scale = 1.0;  // stack-level scaling of the final rate

  // Loss model.
  double beta = 0.7;               // bw_lo / inflight_lo multiplicative decrease
  double loss_thresh = 0.02;       // per-round loss rate that ends a bw probe
  double inflight_headroom = 0.15; // cruise headroom below inflight_hi

  // Probing cadence: wall-clock dwell between bandwidth probes, measured
  // from the start of Down. Deterministic stand-in for the draft's
  // randomised 2-3 s wait.
  Time bw_probe_wait = time::ms(2500);
  int bw_filter_window_cycles = 2;  // max-bw filter length, in probe cycles

  // ProbeRTT.
  Time probe_rtt_interval = time::sec(5);
  Time probe_rtt_duration = time::ms(200);
  double probe_rtt_cwnd_gain = 0.5;  // cwnd floor = 0.5 x estimated BDP

  // Startup exit: bandwidth plateau (v1-style) or sustained loss.
  int full_bw_rounds = 3;
  int startup_loss_rounds = 3;  // consecutive lossy rounds ending startup
};

class Bbr2 : public CongestionController {
 public:
  explicit Bbr2(Bbr2Config cfg);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_spurious_loss(const SpuriousLossEvent& ev) override;
  Bytes cwnd() const override;
  std::optional<Rate> pacing_rate() const override;
  bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  std::string name() const override { return "bbr2"; }
  std::string_view phase() const override;

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  enum class CyclePhase { kDown, kCruise, kRefill, kUp };
  Mode mode() const { return mode_; }
  CyclePhase cycle_phase() const { return cycle_; }
  Rate max_bw() const;
  Rate bw() const;  // min(max_bw, bw_lo)
  Time rt_prop() const { return rt_prop_; }
  bool filled_pipe() const { return filled_pipe_; }
  Bytes inflight_hi() const { return inflight_hi_; }  // kInfBytes = unset
  Bytes inflight_lo() const { return inflight_lo_; }  // kInfBytes = unset

  static constexpr Bytes kInfBytes = static_cast<Bytes>(1) << 60;

 private:
  Bytes min_cwnd_bytes() const { return cfg_.mss * cfg_.min_cwnd_packets; }
  Bytes bdp_bytes_est(double gain) const;
  Bytes inflight_with_headroom() const;
  Bytes probe_rtt_cwnd() const;
  void update_round(const AckEvent& ev);
  void on_round_start(const AckEvent& ev);
  void update_max_bw(const AckEvent& ev);
  void update_min_rtt(const AckEvent& ev);
  void check_startup(const AckEvent& ev);
  void check_drain(const AckEvent& ev);
  void enter_down(Time now);
  void enter_cruise();
  void enter_refill(const AckEvent& ev);
  void enter_up(Time now);
  void update_probe_bw_cycle(const AckEvent& ev);
  void check_probe_rtt(const AckEvent& ev);
  void update_cwnd(const AckEvent& ev);
  double round_loss_rate() const;

  Bbr2Config cfg_;
  Mode mode_ = Mode::kStartup;
  CyclePhase cycle_ = CyclePhase::kDown;

  double pacing_gain_;
  double cwnd_gain_;

  // Max-bandwidth filter, windowed by probe cycle (epoch advances once
  // per round in Startup/Drain, once per completed ProbeBW cycle after).
  stats::WindowedMax<double> max_bw_filter_;
  long long bw_epoch_ = 0;

  Rate bw_lo_ = 0;             // 0 = unset (no bound)
  Bytes inflight_lo_ = kInfBytes;
  Bytes inflight_hi_ = kInfBytes;

  Time rt_prop_ = time::kInfinite;
  Time rt_prop_stamp_ = 0;
  bool rt_prop_expired_ = false;

  // Round counting via packet numbers (as in v1).
  std::uint64_t round_end_pn_ = 0;
  bool round_started_ = false;
  bool new_round_ = false;

  // Per-round loss accounting.
  Bytes bytes_acked_round_ = 0;
  Bytes bytes_lost_round_ = 0;
  bool loss_round_applied_ = false;  // lower bounds move once per round

  // Startup exit detection.
  bool filled_pipe_ = false;
  Rate full_bw_ = 0;
  int full_bw_count_ = 0;
  int lossy_round_count_ = 0;

  // ProbeBW cycle timing.
  Time cycle_stamp_ = 0;
  Time probe_wait_deadline_ = 0;
  std::uint64_t refill_end_pn_ = 0;

  // ProbeRTT.
  Time probe_rtt_done_stamp_ = -1;
  bool probe_rtt_round_done_ = false;
  std::uint64_t probe_rtt_round_end_ = 0;

  Bytes cwnd_;
  Bytes prior_cwnd_ = 0;
};

} // namespace quicbench::cca
