#pragma once
// CUBIC congestion control per RFC 8312 / the Linux kernel structure, with
//  - HyStart++ (RFC 9406) delay-based slow-start exit (toggleable — the
//    paper shows xquic CUBIC omits it, §5 "Missing Mechanism"),
//  - optional emulated-connections scaling (chromium's CUBIC emulates
//    2 flows by default, §5 Table 4),
//  - optional RFC 8312bis spurious-loss rollback (quiche enables it, the
//    kernel does not; disabling it fixed quiche's conformance, Fig 15).

#include "cca/cca.h"

namespace quicbench::cca {

struct CubicConfig {
  Bytes mss = 1448;
  int initial_cwnd_packets = 10;
  int min_cwnd_packets = 2;

  double c = 0.4;           // cubic scaling constant (segments/sec^3)
  double beta = 0.7;        // multiplicative-decrease factor
  bool fast_convergence = true;
  bool tcp_friendly = true;

  // Number of emulated flows (chromium: 2). Scales beta and the
  // TCP-friendly additive-increase term the way chromium's
  // cubic_bytes.cc does.
  int emulated_flows = 1;

  bool hystart = true;  // HyStart++ (RFC 9406)
  // Classic kernel HyStart (delay detector with immediate exit to
  // congestion avoidance) instead of HyStart++'s conservative phase.
  // Linux 5.13 — the paper's reference — ships the classic variant;
  // HyStart++ is what the QUIC stacks that implement HyStart use.
  bool classic_hystart = false;
  // Classic HyStart's second detector. On a clean simulated path every
  // ack-clocked burst is a perfect "train", so the detector exits slow
  // start at a tiny cwnd on high-BDP paths (the very misfire that
  // motivated HyStart++); real links break trains with ack-compression
  // noise. Off by default, available for studying that behaviour.
  bool hystart_ack_train = false;

  // RFC 8312bis §4.9 spurious-congestion handling (quiche enables it, the
  // kernel does not). Two triggers roll back the most recent reduction:
  //  - Eifel-style: a packet declared lost in the event is later acked
  //    (genuinely spurious loss), and
  //  - the classifier heuristic: delivery resumes with no further
  //    congestion event for a full round trip after the backoff. On a
  //    droptail bottleneck almost every ordinary overflow passes this
  //    test, so the implementation keeps undoing its backoffs — the
  //    +Δ-throughput / flat-delay signature of Table 3.
  bool spurious_loss_rollback = false;
};

class Cubic : public CongestionController {
 public:
  explicit Cubic(CubicConfig cfg);

  void on_ack(const AckEvent& ev) override;
  void on_loss(const LossEvent& ev) override;
  void on_spurious_loss(const SpuriousLossEvent& ev) override;
  Bytes cwnd() const override { return cwnd_; }
  bool in_slow_start() const override;
  std::string name() const override { return "cubic"; }
  std::string_view phase() const override {
    if (in_recovery_) return "recovery";
    switch (phase_) {
      case Phase::kSlowStart: return "slow_start";
      case Phase::kCss: return "conservative_slow_start";
      case Phase::kAvoidance: break;
    }
    return "congestion_avoidance";
  }

  Bytes ssthresh() const { return ssthresh_; }
  double w_max_segments() const { return w_max_; }
  bool in_css() const { return phase_ == Phase::kCss; }

 private:
  enum class Phase { kSlowStart, kCss, kAvoidance };

  double effective_beta() const;
  double aimd_alpha() const;
  void enter_avoidance_from(Bytes at_cwnd);
  void on_congestion_event(const LossEvent& ev);
  void cubic_update(const AckEvent& ev);
  void rollback();
  void hystart_round_start(std::uint64_t largest_sent_pn);
  void hystart_on_ack(const AckEvent& ev);

  CubicConfig cfg_;
  Bytes cwnd_;
  Bytes ssthresh_;
  Phase phase_ = Phase::kSlowStart;

  // --- cubic state (w_max, K in segments / seconds, kernel-style) ---
  double w_max_ = 0.0;
  double k_ = 0.0;
  Time epoch_start_ = -1;
  double ca_accumulator_ = 0.0;
  double w_est_ = 0.0;  // TCP-friendly estimate (segments)

  // --- HyStart / HyStart++ state ---
  std::uint64_t round_end_pn_ = 0;
  bool round_open_ = false;
  Time current_round_min_rtt_ = time::kInfinite;
  Time last_round_min_rtt_ = time::kInfinite;
  int rtt_sample_count_ = 0;
  int css_rounds_ = 0;
  Time css_baseline_min_rtt_ = time::kInfinite;
  // classic ACK-train detector
  Time round_start_time_ = -1;
  Time last_ack_time_ = -1;
  Time delay_min_ = time::kInfinite;

  // --- spurious rollback state ---
  struct Snapshot {
    Bytes cwnd = 0;
    Bytes ssthresh = 0;
    double w_max = 0.0;
    double k = 0.0;
    Time epoch_start = -1;
    bool valid = false;
  };
  Snapshot pre_backoff_;
  Time last_backoff_time_ = -1;
  bool rolled_back_current_ = false;

  RecoveryEpochTracker epoch_;
  // Observation-only recovery overlay (see Reno). Never consulted by the
  // control law.
  bool in_recovery_ = false;

  static constexpr int kHystartMinRttSamples = 8;
  static constexpr int kCssRounds = 5;
  static constexpr int kCssGrowthDivisor = 4;
};

// CUBIC paired with RACK-TLP time-based loss detection (the modern-kernel
// reference: Linux enables RACK by default since 4.18). The control law is
// byte-for-byte CUBIC — RACK lives in the transport's loss-detection axis
// (`SenderProfile::loss_detection`) — but the pairing is a distinct member
// of the CCA population: its loss *inputs* differ (reordering tolerance as
// a time window instead of a packet count, tail-loss probes instead of a
// full PTO for the first missing tail), so its trace and conformance cell
// are its own.
class CubicRack : public Cubic {
 public:
  using Cubic::Cubic;
  std::string name() const override { return "cubic_rack"; }
};

} // namespace quicbench::cca
