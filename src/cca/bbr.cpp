#include "cca/bbr.h"

#include <algorithm>

namespace quicbench::cca {

constexpr double Bbr::kPacingGainCycle[8];

Bbr::Bbr(BbrConfig cfg)
    : cfg_(cfg),
      pacing_gain_(cfg.startup_gain),
      cwnd_gain_(cfg.startup_gain),
      btl_bw_filter_(cfg.btlbw_window_rounds),
      cwnd_(cfg.mss * cfg.initial_cwnd_packets) {}

Rate Bbr::btl_bw() const {
  return btl_bw_filter_.empty() ? 0.0 : btl_bw_filter_.get();
}

Bytes Bbr::bdp_bytes_est(double gain) const {
  if (btl_bw_filter_.empty() || rt_prop_ == time::kInfinite) {
    return cfg_.mss * cfg_.initial_cwnd_packets;
  }
  const double bdp = btl_bw() / 8.0 * time::to_sec(rt_prop_);
  return static_cast<Bytes>(gain * bdp);
}

void Bbr::on_packet_sent(const SentPacketEvent&) {}

void Bbr::update_round(const AckEvent& ev) {
  new_round_ = false;
  if (!round_started_ || ev.largest_newly_acked >= round_end_pn_) {
    round_end_pn_ = ev.largest_sent_pn;
    round_started_ = true;
    // Freeze the round counter in ProbeRTT: with the window collapsed to
    // 4 packets, "rounds" fly by at RTT granularity and would expire the
    // whole 10-round bandwidth filter during a single 200 ms dwell
    // (visible at small RTTs), leaving the flow starved on exit.
    if (mode_ != Mode::kProbeRtt) ++round_count_;
    new_round_ = true;
    loss_in_round_ = false;
  }
}

void Bbr::update_filters(const AckEvent& ev) {
  // During ProbeRTT the only estimate being refreshed is rt_prop; the
  // throttled delivery rate says nothing about the bottleneck.
  if (mode_ != Mode::kProbeRtt && ev.rate_valid &&
      (!ev.rate_app_limited || ev.delivery_rate > btl_bw())) {
    btl_bw_filter_.update(static_cast<long long>(round_count_),
                          ev.delivery_rate);
    btl_bw_filter_.set_window(cfg_.btlbw_window_rounds);
    btl_bw_filter_.expire(static_cast<long long>(round_count_));
  }

  if (ev.rtt > 0) {
    rt_prop_expired_ = ev.now > rt_prop_stamp_ + cfg_.probe_rtt_interval;
    if (ev.rtt <= rt_prop_ || rt_prop_expired_) {
      rt_prop_ = ev.rtt;
      rt_prop_stamp_ = ev.now;
    }
  }
}

void Bbr::check_full_pipe() {
  if (filled_pipe_ || !new_round_) return;
  if (btl_bw() >= full_bw_ * 1.25) {
    full_bw_ = btl_bw();
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr::check_drain(const AckEvent& ev) {
  if (mode_ == Mode::kStartup && filled_pipe_) {
    mode_ = Mode::kDrain;
    pacing_gain_ = cfg_.drain_gain;
    cwnd_gain_ = cfg_.startup_gain;
  }
  if (mode_ == Mode::kDrain && ev.bytes_in_flight <= bdp_bytes_est(1.0)) {
    mode_ = Mode::kProbeBw;
    cycle_index_ = 0;
    cycle_stamp_ = ev.now;
    pacing_gain_ = kPacingGainCycle[0];
    cwnd_gain_ = cfg_.cwnd_gain;
  }
}

void Bbr::update_probe_bw_cycle(const AckEvent& ev) {
  if (mode_ != Mode::kProbeBw) return;
  const Time elapsed = ev.now - cycle_stamp_;
  const double gain = kPacingGainCycle[cycle_index_];
  bool advance = false;
  if (gain == 1.0) {
    advance = elapsed > rt_prop_;
  } else if (gain > 1.0) {
    // Stay in the probing phase until we have actually filled the pipe to
    // gain x BDP or seen losses, but at least one RTprop.
    advance = elapsed > rt_prop_ &&
              (loss_in_round_ ||
               ev.bytes_in_flight >= bdp_bytes_est(gain));
  } else {
    // Drain phase of the cycle: leave as soon as the queue is gone.
    advance = elapsed > rt_prop_ || ev.bytes_in_flight <= bdp_bytes_est(1.0);
  }
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % 8;
    cycle_stamp_ = ev.now;
    pacing_gain_ = kPacingGainCycle[cycle_index_];
  }
}

void Bbr::check_probe_rtt(const AckEvent& ev) {
  if (mode_ != Mode::kProbeRtt && rt_prop_expired_ && filled_pipe_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    probe_rtt_done_stamp_ = -1;
  }
  if (mode_ == Mode::kProbeRtt) {
    const Bytes probe_cwnd = cfg_.mss * cfg_.min_cwnd_packets;
    if (probe_rtt_done_stamp_ < 0 && ev.bytes_in_flight <= probe_cwnd) {
      probe_rtt_done_stamp_ = ev.now + cfg_.probe_rtt_duration;
      probe_rtt_round_done_ = false;
      probe_rtt_round_end_ = ev.largest_sent_pn;
    }
    if (probe_rtt_done_stamp_ >= 0) {
      if (ev.largest_newly_acked >= probe_rtt_round_end_) {
        probe_rtt_round_done_ = true;
      }
      if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_stamp_) {
        rt_prop_stamp_ = ev.now;
        cwnd_ = std::max(cwnd_, prior_cwnd_);
        if (filled_pipe_) {
          mode_ = Mode::kProbeBw;
          cycle_index_ = 0;
          cycle_stamp_ = ev.now;
          pacing_gain_ = kPacingGainCycle[0];
          cwnd_gain_ = cfg_.cwnd_gain;
        } else {
          mode_ = Mode::kStartup;
          pacing_gain_ = cfg_.startup_gain;
          cwnd_gain_ = cfg_.startup_gain;
        }
      }
    }
  }
}

void Bbr::update_cwnd(const AckEvent& ev) {
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = cfg_.mss * cfg_.min_cwnd_packets;
    return;
  }
  const Bytes target = bdp_bytes_est(cwnd_gain_);
  if (filled_pipe_) {
    cwnd_ = std::min(cwnd_ + ev.bytes_acked, target);
  } else {
    // Startup: grow unconditionally (slow-start-like).
    cwnd_ += ev.bytes_acked;
  }
  cwnd_ = std::max(cwnd_, cfg_.mss * cfg_.min_cwnd_packets);
}

void Bbr::on_ack(const AckEvent& ev) {
  update_round(ev);
  update_filters(ev);
  check_full_pipe();
  check_drain(ev);
  update_probe_bw_cycle(ev);
  check_probe_rtt(ev);
  update_cwnd(ev);
  sync_phase(ev.now);
}

void Bbr::on_loss(const LossEvent& ev) {
  // BBRv1 is loss-agnostic apart from noting losses for the ProbeBW cycle
  // advance and collapsing on persistent congestion.
  loss_in_round_ = true;
  if (ev.is_persistent_congestion) {
    cwnd_ = cfg_.mss * cfg_.min_cwnd_packets;
  }
  sync_phase(ev.now);
}

Bytes Bbr::cwnd() const { return cwnd_; }

std::optional<Rate> Bbr::pacing_rate() const {
  if (btl_bw_filter_.empty() || rt_prop_ == time::kInfinite) {
    // No estimates yet: stay window-limited (burst out the initial cwnd).
    return std::nullopt;
  }
  return pacing_gain_ * btl_bw() * cfg_.pacing_rate_scale;
}

} // namespace quicbench::cca
