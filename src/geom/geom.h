#pragma once
// Computational geometry for Performance Envelopes: convex hulls (Andrew
// monotone chain), polygon area (shoelace), convex-convex intersection
// (Sutherland–Hodgman) and point-in-polygon tests.
//
// Convention: polygons are convex, counter-clockwise, no repeated first
// vertex. A polygon with fewer than 3 vertices is degenerate (area 0); all
// operations handle degenerate inputs by returning empty/false/0 results.

#include <span>
#include <vector>

namespace quicbench::geom {

struct Point {
  double x = 0;  // delay (ms) on the PE plane
  double y = 0;  // throughput (Mbps) on the PE plane

  friend bool operator==(const Point&, const Point&) = default;
};

using Polygon = std::vector<Point>;

// Cross product of (b-a) x (c-a); >0 means c is left of a->b.
double cross(const Point& a, const Point& b, const Point& c);

// Convex hull, CCW, starting from the lowest-then-leftmost point.
// Collinear points on the hull boundary are dropped. Fewer than 3 distinct
// non-collinear input points yield a degenerate polygon (size < 3).
Polygon convex_hull(std::vector<Point> points);

// Signed area is positive for CCW polygons; `polygon_area` returns the
// absolute value.
double signed_area(const Polygon& poly);
double polygon_area(const Polygon& poly);

Point polygon_centroid(const Polygon& poly);
Point points_centroid(std::span<const Point> points);

// True if p lies inside or on the boundary (within eps) of the convex CCW
// polygon. Degenerate polygons contain nothing.
bool point_in_convex(const Polygon& poly, const Point& p, double eps = 1e-9);

// Intersection of two convex polygons (Sutherland–Hodgman, clipping
// `subject` against `clip`). Result is convex CCW; empty when disjoint or
// when either input is degenerate.
Polygon clip_convex(const Polygon& subject, const Polygon& clip);

Polygon translate(const Polygon& poly, double dx, double dy);

// Intersect a sequence of convex polygons (used to combine per-trial hulls
// into the final PE). Empty input or any empty intermediate yields empty.
Polygon intersect_all(std::span<const Polygon> polys);

// Euclidean distance.
double distance(const Point& a, const Point& b);

} // namespace quicbench::geom
