#pragma once
// Computational geometry for Performance Envelopes: convex hulls (Andrew
// monotone chain), polygon area (shoelace), convex-convex intersection
// (Sutherland–Hodgman) and point-in-polygon tests.
//
// Convention: polygons are convex, counter-clockwise, no repeated first
// vertex. A polygon with fewer than 3 vertices is degenerate (area 0); all
// operations handle degenerate inputs by returning empty/false/0 results.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.h"

namespace quicbench::geom {

struct Point {
  double x = 0;  // delay (ms) on the PE plane
  double y = 0;  // throughput (Mbps) on the PE plane

  friend bool operator==(const Point&, const Point&) = default;
};

using Polygon = std::vector<Point>;

// Cross product of (b-a) x (c-a); >0 means c is left of a->b.
double cross(const Point& a, const Point& b, const Point& c);

// Convex hull, CCW, starting from the lowest-then-leftmost point.
// Collinear points on the hull boundary are dropped. Fewer than 3 distinct
// non-collinear input points yield a degenerate polygon (size < 3).
Polygon convex_hull(std::vector<Point> points);

// Signed area is positive for CCW polygons; `polygon_area` returns the
// absolute value.
double signed_area(const Polygon& poly);
double polygon_area(const Polygon& poly);

Point polygon_centroid(const Polygon& poly);
Point points_centroid(std::span<const Point> points);

// True if p lies inside or on the boundary (within eps) of the convex CCW
// polygon. Degenerate polygons contain nothing.
bool point_in_convex(const Polygon& poly, const Point& p, double eps = 1e-9);

// A convex CCW polygon preprocessed for repeated containment queries:
// edge origins and direction vectors are laid out as structure-of-arrays
// (no modular successor lookup per edge, vectorizable half-plane scans)
// together with the bounding box for an optional cheap reject. Each
// per-edge test evaluates exactly the expression point_in_convex
// evaluates — the edge vector (b - a) is the same subtraction, just
// performed once at build time — so contains() agrees with
// point_in_convex bit for bit.
class PreparedConvex {
 public:
  PreparedConvex() = default;
  explicit PreparedConvex(const Polygon& poly);

  // Identical to point_in_convex(poly, p, eps).
  bool contains(const Point& p, double eps = 1e-9) const {
    const std::size_t m = ax_.size();
    if (m == 0) return false;  // degenerate: contains nothing
    for (std::size_t e = 0; e < m; ++e) {
      if (ex_[e] * (p.y - ay_[e]) - ey_[e] * (p.x - ax_[e]) < -eps) {
        return false;
      }
    }
    return true;
  }

  // contains() behind a strict bounding-box pre-reject. NOT identical to
  // point_in_convex for points within ~eps of the boundary (the box test
  // ignores eps); callers that historically box-filtered (BoxedPe) keep
  // that semantic, everyone else uses contains().
  bool contains_boxed(const Point& p, double eps = 1e-9) const {
    if (p.x < min_x_ || p.x > max_x_ || p.y < min_y_ || p.y > max_y_) {
      return false;
    }
    return contains(p, eps);
  }

  // Batch forms over a SoA cloud: mask[i] &= contains({px[i], py[i]}).
  // Vectorized half-plane passes (util::simd) with gather-compaction
  // between blocks of edges: the scalar loop's first-failing-edge early
  // exit is mirrored by dropping rejected lanes from the live set, so
  // an outside point costs ~one edge block, not the full edge count.
  // Lanes whose incoming mask is already 0 are skipped entirely.
  // Compaction only skips work, never changes a boolean — the mask
  // matches a per-point contains() loop exactly.
  void mask_and_contains(const double* px, const double* py, std::size_t n,
                         std::uint8_t* mask, double eps = 1e-9) const;

  // mask[i] &= contains_boxed({px[i], py[i]}): the strict box pre-reject
  // runs as its own vector pass; box-rejected lanes are dead on entry to
  // the edge passes, which the compaction then never touches.
  void mask_and_contains_boxed(const double* px, const double* py,
                               std::size_t n, std::uint8_t* mask,
                               double eps = 1e-9) const {
    util::simd::mask_box(px, py, n, min_x_, min_y_, max_x_, max_y_, mask);
    mask_and_contains(px, py, n, mask, eps);
  }

  bool degenerate() const { return ax_.empty(); }

 private:
  // Edge origins (ax, ay) and vectors (ex, ey) = (b - a), SoA.
  std::vector<double> ax_, ay_, ex_, ey_;
  double min_x_ = 1e300, max_x_ = -1e300;
  double min_y_ = 1e300, max_y_ = -1e300;
};

// A point cloud split into SoA coordinate arrays for the batch
// containment kernels; reusable scratch (assign() never shrinks
// capacity).
struct BatchPoints {
  std::vector<double> xs, ys;

  void assign(std::span<const Point> pts) {
    xs.resize(pts.size());
    ys.resize(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      xs[i] = pts[i].x;
      ys[i] = pts[i].y;
    }
  }
  std::size_t size() const { return xs.size(); }
};

// Number of points contained in at least one of the prepared hulls
// (semantics of a per-point `any_of(contains)` loop, evaluated as one
// vectorized mask pass per hull edge). Convenience form that owns its
// scratch; for hot loops use the mask_and_* members directly.
std::size_t count_in_any(std::span<const PreparedConvex> hulls,
                         std::span<const Point> pts, double eps = 1e-9);

// Intersection of two convex polygons (Sutherland–Hodgman, clipping
// `subject` against `clip`). Result is convex CCW; empty when disjoint or
// when either input is degenerate.
Polygon clip_convex(const Polygon& subject, const Polygon& clip);

Polygon translate(const Polygon& poly, double dx, double dy);

// Intersect a sequence of convex polygons (used to combine per-trial hulls
// into the final PE). Empty input or any empty intermediate yields empty.
Polygon intersect_all(std::span<const Polygon> polys);

// Euclidean distance.
double distance(const Point& a, const Point& b);

} // namespace quicbench::geom
